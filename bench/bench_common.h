// Shared experiment configuration for the figure/table benches.
//
// The bench datasets are the Table-I-shaped synthetic profiles further
// scaled so that one full Fig. 4 sweep (2 datasets x 3 GPU configs x 4
// methods) completes in minutes on a laptop-class CPU while preserving the
// relationships the paper reports. compute_scale restores the full-scale
// compute-to-overhead ratio on the virtual GPUs (see TrainerConfig docs).
#pragma once

#include <cstdio>
#include <string>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "sim/profiles.h"
#include "slide/slide_trainer.h"
#include "util/cli.h"
#include "util/csv.h"

namespace hetero::bench {

/// Build type this binary was compiled as, injected by bench/CMakeLists.txt
/// (CMake's CMAKE_BUILD_TYPE). NDEBUG alone cannot distinguish Release from
/// RelWithDebInfo — both define it — hence the explicit definition.
inline const char* build_type() {
#ifdef HETERO_BUILD_TYPE
  return HETERO_BUILD_TYPE;
#else
  return "unknown";
#endif
}

/// Prints a loud stderr warning when the binary was not built Release.
/// Returns true when the warning fired. Every binary that includes this
/// header warns automatically at startup (see the initializer below), so
/// BENCH_*.json numbers recorded from a debug-ish build are never silent.
inline bool warn_if_not_release_build() {
  if (std::string(build_type()) == "Release") return false;
  std::fprintf(stderr,
               "========================================================\n"
               "  WARNING: benchmark built as '%s', not 'Release'.\n"
               "  Timings from this build are meaningless — do NOT record\n"
               "  them into BENCH_*.json. Rebuild with the bench preset:\n"
               "    cmake --preset bench && cmake --build --preset bench -j\n"
               "========================================================\n",
               build_type());
  return true;
}

namespace detail {
inline const bool build_type_warning = warn_if_not_release_build();
}  // namespace detail

/// Amazon-670k-shaped profile at bench scale.
inline data::SyntheticXmlConfig bench_amazon() {
  auto cfg = data::amazon670k_small();
  cfg.num_features = 4096;
  cfg.num_classes = 1024;
  cfg.num_train = 12'000;
  cfg.num_test = 2'400;
  cfg.salient_features_per_class = 20;
  // Harder task than the unit-test profiles: real XML datasets cap top-1
  // well below 100% (the paper's models stay below 50%), so keep the
  // signal fraction low enough that the accuracy ceiling discriminates
  // between methods instead of saturating.
  cfg.signal_fraction = 0.45;
  return cfg;
}

/// Delicious-200k-shaped profile at bench scale.
inline data::SyntheticXmlConfig bench_delicious() {
  auto cfg = data::delicious200k_small();
  cfg.num_features = 6'144;
  cfg.num_classes = 512;
  cfg.num_train = 8'000;
  cfg.num_test = 1'600;
  cfg.salient_features_per_class = 12;
  cfg.signal_fraction = 0.5;
  return cfg;
}

/// Trainer configuration following the paper's methodology (Section V-A):
/// initial batch = b_max, b_min = b_max/8, beta = b_min/2, mega-batch = a
/// fixed batch count, same hyperparameters for all algorithms.
inline core::TrainerConfig bench_trainer_config(std::size_t megabatches = 8) {
  core::TrainerConfig cfg;
  cfg.hidden = 64;
  cfg.batch_max = 128;
  cfg.batches_per_megabatch = 50;
  cfg.num_megabatches = megabatches;
  cfg.learning_rate = 0.5;
  cfg.eval_samples = 1000;
  cfg.compute_scale = 100.0;
  cfg.seed = 20220429;
  return cfg;
}

/// SLIDE configuration matched to the GPU runs (same sample budget and
/// evaluation cadence; compute_scale shared so virtual times compare).
inline slide::SlideConfig bench_slide_config(const core::TrainerConfig& gpu,
                                             std::size_t num_classes) {
  slide::SlideConfig cfg;
  cfg.hidden = gpu.hidden;
  // Per-sample updates: scale the batch rate down by ~an order of
  // magnitude (the linear scaling rule from b_max down to b = 1 would give
  // lr/128, but SLIDE-style training tolerates — and needs — larger steps).
  cfg.learning_rate = gpu.learning_rate / 10.0;
  cfg.min_active = num_classes / 16;
  cfg.max_active = num_classes / 6;
  cfg.rebuild_every = 4096;
  cfg.eval_every_samples = gpu.megabatch_samples();
  cfg.total_samples = gpu.megabatch_samples() * gpu.num_megabatches;
  cfg.eval_samples = gpu.eval_samples;
  cfg.compute_scale = gpu.compute_scale;
  cfg.seed = gpu.seed;
  return cfg;
}

/// Prints a result curve as "vtime top1" rows plus a summary line.
inline void print_curve(const core::TrainResult& r) {
  std::printf("  %-14s %4s | %10s %9s %8s %8s %9s\n", "method", "gpus",
              "vtime(s)", "samples", "passes", "top1", "trainloss");
  for (const auto& p : r.curve) {
    std::printf("  %-14s %4zu | %10.4f %9zu %8.2f %7.2f%% %9.3f\n",
                r.method.c_str(), r.num_gpus, p.vtime, p.samples, p.passes,
                100.0 * p.top1, p.train_loss);
  }
}

inline void append_curve_csv(util::CsvWriter& csv, const core::TrainResult& r) {
  for (const auto& p : r.curve) {
    csv.row({r.dataset, r.method, std::to_string(r.num_gpus),
             std::to_string(p.vtime), std::to_string(p.samples),
             std::to_string(p.passes), std::to_string(p.top1),
             std::to_string(p.test_loss)});
  }
}

}  // namespace hetero::bench
