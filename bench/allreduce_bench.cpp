// Section IV claim: multi-stream ring all-reduce performs model merging at
// least twice as fast as the single-stream (NCCL-style) tree, while the
// tree is more efficient than a single-stream ring.
//
// Sweeps model size x GPU count x stream count over the three implemented
// algorithms and prints the virtual merge time for each, plus the
// tree/ring speedup column the claim is about.
#include <cstdio>
#include <vector>

#include "comm/allreduce.h"
#include "sim/profiles.h"
#include "util/csv.h"

using namespace hetero;

int main() {
  std::printf("=== All-reduce model merging (Section IV) ===\n\n");

  const std::vector<std::size_t> sizes = {
      1u << 20, 16u << 20, 64u << 20, 256u << 20, 512u << 20};
  const std::vector<std::size_t> gpu_counts = {2, 4, 8};

  util::CsvWriter csv("allreduce_bench.csv",
                      {"gpus", "bytes", "algo", "streams", "seconds"});

  for (const auto gpus : gpu_counts) {
    const auto links = sim::default_links(gpus);
    std::printf("--- %zu GPUs ---\n", gpus);
    std::printf("%10s | %10s %10s %10s %12s | %14s\n", "model", "central",
                "tree-1s", "ring-1s", "ring-multi", "tree/ring-multi");
    for (const auto bytes : sizes) {
      comm::AllReducer central(comm::AllReduceAlgo::kCentral, links, 1);
      comm::AllReducer tree(comm::AllReduceAlgo::kTreeSingleStream, links, 1);
      comm::AllReducer ring1(comm::AllReduceAlgo::kRingMultiStream, links, 1);
      comm::AllReducer ringN(comm::AllReduceAlgo::kRingMultiStream, links,
                             gpus);  // paper: optimal streams == #GPUs
      const double t_central = central.cost(gpus, bytes).seconds;
      const double t_tree = tree.cost(gpus, bytes).seconds;
      const double t_ring1 = ring1.cost(gpus, bytes).seconds;
      const double t_ringN = ringN.cost(gpus, bytes).seconds;
      std::printf("%8.0fMB | %8.3fms %8.3fms %8.3fms %10.3fms | %13.2fx\n",
                  bytes / (1024.0 * 1024.0), 1e3 * t_central, 1e3 * t_tree,
                  1e3 * t_ring1, 1e3 * t_ringN, t_tree / t_ringN);
      csv.row_numeric({static_cast<double>(gpus), static_cast<double>(bytes),
                       0, 1, t_central});
      csv.row_numeric({static_cast<double>(gpus), static_cast<double>(bytes),
                       1, 1, t_tree});
      csv.row_numeric({static_cast<double>(gpus), static_cast<double>(bytes),
                       2, 1, t_ring1});
      csv.row_numeric({static_cast<double>(gpus), static_cast<double>(bytes),
                       2, static_cast<double>(gpus), t_ringN});
    }
    std::printf("\n");
  }

  std::printf("--- stream count sweep (4 GPUs, 256 MB model) ---\n");
  std::printf("%8s %12s\n", "streams", "ring(ms)");
  const auto links = sim::default_links(4);
  for (const std::size_t streams : {1u, 2u, 4u, 8u, 16u}) {
    comm::AllReducer ring(comm::AllReduceAlgo::kRingMultiStream, links,
                          streams);
    std::printf("%8zu %10.3fms\n", streams,
                1e3 * ring.cost(4, 256u << 20).seconds);
  }
  std::printf(
      "\nShape check: ring-multi >= 2x faster than tree-1s at paper-scale "
      "models (>= 64MB),\nwhile tree-1s beats ring-1s — both Section IV "
      "observations.\nseries written to allreduce_bench.csv\n");
  return 0;
}
