// Figure 6: do batch size scaling and perturbation activate in practice?
//
//   (a) the evolution of every GPU's batch size across mega-batches:
//       initialized at b_max, fluctuating, then converging to a stable band
//       in which update counts equalize (fast GPUs hold larger batches).
//   (b) the activation frequency of weight perturbation in normalized model
//       merging: high, because replicas stay well-regularized.
#include <cstdio>

#include "bench_common.h"

using namespace hetero;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto megabatches =
      static_cast<std::size_t>(args.get_int("megabatches", 16));
  const auto gpus = static_cast<std::size_t>(args.get_int("gpus", 4));
  if (args.report_unknown()) return 1;

  auto cfg = bench::bench_trainer_config(megabatches);
  const auto dataset = data::generate_xml_dataset(bench::bench_amazon());

  auto trainer = core::make_trainer(core::Method::kAdaptive, dataset, cfg,
                                    sim::v100_heterogeneous(gpus, 0.32));
  const auto result = trainer->train();

  std::printf("=== Figure 6a: batch size per GPU after every mega-batch ===\n");
  std::printf("(b_max = %zu, b_min = %zu, beta = %.0f)\n\n", cfg.batch_max,
              cfg.derived_batch_min(), cfg.derived_beta());
  std::printf("%-10s", "megabatch");
  for (std::size_t g = 0; g < gpus; ++g) std::printf("  gpu%zu-b", g);
  for (std::size_t g = 0; g < gpus; ++g) std::printf("  gpu%zu-u", g);
  std::printf("\n");
  const std::size_t rows = result.gpus[0].batch_size.size();
  util::CsvWriter csv("fig6_adaptivity.csv",
                      {"megabatch", "gpu", "batch_size", "updates"});
  for (std::size_t m = 0; m < rows; ++m) {
    std::printf("%-10zu", m + 1);
    for (std::size_t g = 0; g < gpus; ++g) {
      std::printf("  %6zu", result.gpus[g].batch_size[m]);
    }
    for (std::size_t g = 0; g < gpus; ++g) {
      std::printf("  %6zu", result.gpus[g].updates[m]);
      csv.row({std::to_string(m + 1), std::to_string(g),
               std::to_string(result.gpus[g].batch_size[m]),
               std::to_string(result.gpus[g].updates[m])});
    }
    std::printf("\n");
  }

  std::printf("\n=== Figure 6b: perturbation activation ===\n");
  std::printf("merges: %zu, perturbed: %zu, frequency: %.1f%%  "
              "(paper: very high frequency)\n",
              result.merges, result.perturbed_merges,
              100.0 * result.perturbation_frequency());
  std::printf("mega-batches where batch size scaling moved at least one GPU: "
              "%zu / %zu\n",
              result.scaling_updates, result.merges);

  std::printf("\nfinal accuracy: top1 %.2f%% after %.4fs virtual time\n",
              100.0 * result.final_top1(), result.total_vtime);
  std::printf("series written to fig6_adaptivity.csv\n");
  return 0;
}
