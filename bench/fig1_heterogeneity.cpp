// Figure 1: multi-GPU heterogeneity on training a deep learning model with
// an IDENTICAL batch of sparse data.
//
// Replays the paper's measurement: the same batch is executed as one SGD
// epoch on each of the 4 simulated V100s, many times; the per-GPU epoch-time
// distributions show a fastest-to-slowest gap of up to ~32%. A homogeneous
// profile (jitter only) is included to separate the two heterogeneity
// sources.
#include <cstdio>

#include "bench_common.h"
#include "nn/train_step.h"
#include "sim/virtual_gpu.h"
#include "util/stats.h"

using namespace hetero;

namespace {

void run_profile(const char* name, std::vector<sim::DeviceSpec> specs,
                 const data::XmlDataset& dataset,
                 const core::TrainerConfig& cfg) {
  nn::MlpConfig model_cfg;
  model_cfg.num_features = dataset.train.features.cols();
  model_cfg.num_classes = dataset.train.labels.cols();
  model_cfg.hidden = cfg.hidden;

  // One identical batch for every GPU and every trial.
  const auto batch = dataset.train.features.slice_rows(0, cfg.batch_max);
  auto kernels = nn::step_kernels(model_cfg, batch);
  for (auto& k : kernels) {
    k.flops *= cfg.compute_scale;
    k.bytes *= cfg.compute_scale;
  }

  constexpr int kTrials = 200;
  std::printf("\n--- %s (batch=%zu, nnz=%zu, %d trials) ---\n", name,
              batch.rows(), batch.nnz(), kTrials);
  std::printf("  %-12s %10s %10s %10s %8s\n", "gpu", "mean(ms)", "min(ms)",
              "max(ms)", "stddev");

  std::vector<double> means;
  util::Rng seeder(cfg.seed);
  for (std::size_t g = 0; g < specs.size(); ++g) {
    sim::VirtualGpu gpu(static_cast<int>(g), specs[g], seeder.next_u64());
    util::RunningStats stats;
    double t = 0.0;
    for (int trial = 0; trial < kTrials; ++trial) {
      const double finish = gpu.submit(0, kernels, t, cfg.fused_kernels,
                                       specs.size());
      stats.add((finish - t) * 1e3);
      t = finish;
    }
    means.push_back(stats.mean());
    std::printf("  gpu%-9zu %10.4f %10.4f %10.4f %8.4f\n", g, stats.mean(),
                stats.min(), stats.max(), stats.stddev());
  }
  std::printf("  fastest-to-slowest epoch-time gap: %.1f%%  (paper: up to 32%%)\n",
              100.0 * util::relative_spread(means));
}

}  // namespace

int main() {
  std::printf("=== Figure 1: per-GPU epoch time on an identical sparse batch ===\n");
  const auto cfg = bench::bench_trainer_config();
  const auto dataset = data::generate_xml_dataset(bench::bench_amazon());

  run_profile("heterogeneous V100 server (static spread + jitter)",
              sim::v100_heterogeneous(4, 0.32, 0.03), dataset, cfg);
  run_profile("homogeneous V100 server (jitter only)",
              sim::v100_homogeneous(4, 0.03), dataset, cfg);
  run_profile("heterogeneous, jitter disabled (static spread only)",
              sim::v100_heterogeneous(4, 0.32, 0.0), dataset, cfg);
  return 0;
}
