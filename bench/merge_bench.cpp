// google-benchmark sweep of the mega-batch merge path (Section IV
// "All-reduce Model Merging"): model size x replicas x threads x touched-row
// fraction, measuring real wall-clock of merge_and_update's numeric work.
//
// Three implementations are compared:
//   BM_MergePr1Path    — faithful re-creation of the PR-1 merge: per-merge
//                        to_flat() staging copies into freshly allocated
//                        flats, a model-sized double accumulator
//                        (zero-filled then accumulated), write-back into
//                        every flat, a separate momentum pass, from_flat(),
//                        and the dense broadcast.
//   BM_MergeFusedDense — the sharded zero-copy path: fused reduce+momentum
//                        over the in-place model segments, then broadcast.
//   BM_MergeFusedDelta — the sparse_merge path: only the cross-replica
//                        union of touched W1 rows is reduced; untouched
//                        rows get the closed-form scaling. Includes the
//                        per-merge union + sort, as the runtime pays it.
//
// The headline shape is the ISSUE acceptance point: 2M features (0.005%
// density => ~100 nnz/sample => ~23% of rows touched per replica per
// mega-batch), hidden 64, 4 replicas, 8 threads. Unless the caller passes
// --benchmark_out, results are written to BENCH_merge.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <span>
#include <vector>

#include "comm/allreduce.h"
#include "comm/quant.h"
#include "core/adaptive_sgd.h"
#include "core/merging.h"
#include "data/synthetic.h"
#include "nn/deep_mlp.h"
#include "nn/mlp.h"
#include "sim/profiles.h"
#include "sparse/sparse_gradient.h"
#include "tensor/vec/vec.h"
#include "util/kernel_context.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace hetero;

namespace {

constexpr std::size_t kHidden = 64;
constexpr std::size_t kClasses = 512;
constexpr double kGamma = 0.9;
constexpr std::size_t kStreams = 4;  // paper optimum: one per GPU

// Cheap deterministic fill (init_gaussian over 2^21 x 64 would dominate
// setup); values are ordinary normalized floats so the kernels run at
// real-data speed.
void fill_pattern(std::span<float> v, std::uint32_t seed) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    const std::uint32_t h = (static_cast<std::uint32_t>(i) + seed) *
                            2654435761u;
    v[i] = 0.001f * static_cast<float>(h & 1023u) - 0.5f;
  }
}

struct MergeSetup {
  nn::MlpConfig cfg;
  std::vector<nn::MlpModel> replicas;
  nn::MlpModel global;
  nn::MlpModel prev;
  std::vector<double> weights;
  // Per-replica touched W1 rows (delta path only).
  std::vector<sparse::RowSet> touched;

  MergeSetup(std::size_t features, std::size_t hidden, std::size_t classes,
             std::size_t num_replicas, std::size_t touched_permille) {
    cfg.num_features = features;
    cfg.hidden = hidden;
    cfg.num_classes = classes;
    global = nn::MlpModel(cfg);
    for (auto seg : global.segment_views()) fill_pattern(seg, 1);
    prev = global;
    for (std::size_t i = 0; i < num_replicas; ++i) {
      replicas.push_back(global);
      // Perturb a slice so the first merge does real mixing work.
      auto w1 = replicas.back().segment_views()[0];
      fill_pattern(w1.subspan(0, std::min<std::size_t>(w1.size(), 4096)),
                   static_cast<std::uint32_t>(17 * (i + 1)));
    }
    const double base = 1.0 / static_cast<double>(num_replicas);
    for (std::size_t i = 0; i < num_replicas; ++i) {
      weights.push_back(base * (i % 2 == 0 ? 1.1 : 0.9));
    }
    if (touched_permille > 0) {
      util::Rng rng(99);
      const std::size_t target = features * touched_permille / 1000;
      touched.resize(num_replicas);
      for (auto& set : touched) {
        set.reset(features);
        std::uint32_t row[1];
        while (set.size() < target) {
          row[0] = static_cast<std::uint32_t>(rng.next_below(features));
          set.add(row);
        }
      }
    }
  }

  void broadcast() {
    for (auto& r : replicas) r = global;
  }
};

// The PR-1 serial reduction: zero-filled double accumulator + write-back
// into every staged flat (kept verbatim so the bench tracks the true
// before/after of this PR, independent of the current AllReducer).
void pr1_weighted_average(std::vector<std::span<float>>& views,
                          std::span<const double> weights,
                          std::vector<double>& acc) {
  const std::size_t len = views[0].size();
  acc.assign(len, 0.0);
  for (std::size_t i = 0; i < views.size(); ++i) {
    const double w = weights[i];
    const float* x = views[i].data();
    for (std::size_t j = 0; j < len; ++j) acc[j] += w * x[j];
  }
  for (auto& r : views) {
    for (std::size_t j = 0; j < len; ++j) {
      r[j] = static_cast<float>(acc[j]);
    }
  }
}

void run_pr1_merge(MergeSetup& s, std::vector<float>& global_flat,
                   std::vector<float>& prev_flat, std::vector<double>& acc) {
  std::vector<std::vector<float>> flats;
  flats.reserve(s.replicas.size());
  for (auto& r : s.replicas) flats.push_back(r.to_flat());
  std::vector<std::span<float>> views;
  views.reserve(flats.size());
  for (auto& f : flats) views.emplace_back(f.data(), f.size());
  pr1_weighted_average(views, s.weights, acc);
  core::momentum_global_update(views[0], global_flat, prev_flat, kGamma);
  s.global.from_flat(global_flat);
  s.broadcast();
}

void run_fused_dense_merge(MergeSetup& s, const kernels::Context& ctx) {
  const core::MergeUpdate u{s.weights, kGamma, true};
  auto global_segs = s.global.segment_views();
  auto prev_segs = s.prev.segment_views();
  std::vector<const float*> bases(s.replicas.size());
  for (std::size_t seg = 0; seg < global_segs.size(); ++seg) {
    for (std::size_t i = 0; i < s.replicas.size(); ++i) {
      bases[i] = s.replicas[i].segment_views()[seg].data();
    }
    core::merge_segment(bases, global_segs[seg].size(), u, global_segs[seg],
                        prev_segs[seg], kStreams, ctx);
  }
  s.broadcast();
}

void run_fused_delta_merge(MergeSetup& s, sparse::RowSet& merge_union,
                           std::vector<std::uint32_t>& sorted,
                           const kernels::Context& ctx) {
  const core::MergeUpdate u{s.weights, kGamma, true};
  merge_union.clear();
  for (const auto& t : s.touched) merge_union.add(t);
  merge_union.sorted_rows(sorted);
  auto global_segs = s.global.segment_views();
  auto prev_segs = s.prev.segment_views();
  std::vector<const float*> bases(s.replicas.size());
  for (std::size_t i = 0; i < s.replicas.size(); ++i) {
    bases[i] = s.replicas[i].w1().data();
  }
  core::merge_touched_rows(bases, sorted, s.cfg.hidden, u,
                           s.global.w1().data(), s.prev.w1().data(), ctx);
  core::merge_untouched_rows(merge_union, s.cfg.num_features, s.cfg.hidden,
                             u, global_segs[0], prev_segs[0], ctx);
  for (std::size_t seg = 1; seg < global_segs.size(); ++seg) {
    for (std::size_t i = 0; i < s.replicas.size(); ++i) {
      bases[i] = s.replicas[i].segment_views()[seg].data();
    }
    core::merge_segment(bases, global_segs[seg].size(), u, global_segs[seg],
                        prev_segs[seg], kStreams, ctx);
  }
  s.broadcast();
}

// Deep-model variant of the fused delta merge, run exactly as the runtime
// now does it for any nn::Model: delta-merge segment 0 (the sparse input
// layer) over the touched-row union, fused dense merge for every remaining
// [W,b] segment of the layer stack.
struct DeepMergeSetup {
  nn::DeepMlpConfig cfg;
  nn::DeepMlp global;
  nn::DeepMlp prev;
  std::vector<nn::DeepMlp> replicas;
  std::vector<double> weights;
  std::vector<sparse::RowSet> touched;

  static nn::DeepMlpConfig make_cfg(std::size_t features) {
    nn::DeepMlpConfig c;
    c.num_features = features;
    c.hidden = {kHidden, kHidden / 2};
    c.num_classes = kClasses;
    return c;
  }

  DeepMergeSetup(std::size_t features, std::size_t num_replicas,
                 std::size_t touched_permille)
      : cfg(make_cfg(features)), global(cfg), prev(cfg) {
    for (auto seg : global.segment_views()) fill_pattern(seg, 1);
    prev.copy_from(global);
    for (std::size_t i = 0; i < num_replicas; ++i) {
      replicas.push_back(global);
      auto w0 = replicas.back().segment_views()[0];
      fill_pattern(w0.subspan(0, std::min<std::size_t>(w0.size(), 4096)),
                   static_cast<std::uint32_t>(17 * (i + 1)));
    }
    const double base = 1.0 / static_cast<double>(num_replicas);
    for (std::size_t i = 0; i < num_replicas; ++i) {
      weights.push_back(base * (i % 2 == 0 ? 1.1 : 0.9));
    }
    util::Rng rng(99);
    const std::size_t target = features * touched_permille / 1000;
    touched.resize(num_replicas);
    for (auto& set : touched) {
      set.reset(features);
      std::uint32_t row[1];
      while (set.size() < target) {
        row[0] = static_cast<std::uint32_t>(rng.next_below(features));
        set.add(row);
      }
    }
  }
};

void run_fused_delta_merge_deep(DeepMergeSetup& s,
                                sparse::RowSet& merge_union,
                                std::vector<std::uint32_t>& sorted,
                                const kernels::Context& ctx) {
  const core::MergeUpdate u{s.weights, kGamma, true};
  merge_union.clear();
  for (const auto& t : s.touched) merge_union.add(t);
  merge_union.sorted_rows(sorted);
  auto global_segs = s.global.segment_views();
  auto prev_segs = s.prev.segment_views();
  const auto& info = s.global.info();
  const std::size_t hidden = info.input_cols();
  std::vector<const float*> bases(s.replicas.size());
  for (std::size_t i = 0; i < s.replicas.size(); ++i) {
    bases[i] = s.replicas[i].segment_views()[0].data();
  }
  core::merge_touched_rows(bases, sorted, hidden, u, global_segs[0].data(),
                           prev_segs[0].data(), ctx);
  core::merge_untouched_rows(merge_union, info.input_rows(), hidden, u,
                             global_segs[0], prev_segs[0], ctx);
  for (std::size_t seg = 1; seg < global_segs.size(); ++seg) {
    for (std::size_t i = 0; i < s.replicas.size(); ++i) {
      bases[i] = s.replicas[i].segment_views()[seg].data();
    }
    core::merge_segment(bases, global_segs[seg].size(), u, global_segs[seg],
                        prev_segs[seg], kStreams, ctx);
  }
  for (auto& r : s.replicas) r.copy_from(s.global);
}

// Quantized delta merge (DESIGN.md §10): the same work merge_and_update
// does under --merge-precision fp16/int8 — error-feedback delta pass,
// per-group quantization, fused dequant-reduce, residual update — over the
// union-row + dense-tail payload layout the runtime ships.
struct QuantDeltaScratch {
  // One scale group per union W1 row, then 512-blocks of the dense tail.
  struct Group {
    std::size_t seg, off, dst, len;
  };
  sparse::RowSet merge_union;
  std::vector<std::uint32_t> sorted;
  std::vector<Group> groups;
  std::size_t elems = 0;
  std::vector<std::vector<float>> residual;          // packed payload layout
  std::vector<std::vector<std::uint16_t>> q16;
  std::vector<std::vector<std::int8_t>> q8;
  std::vector<std::vector<float>> scales;
  comm::LossScaleGuard guard;

  void build(MergeSetup& s) {
    merge_union.reset(s.cfg.num_features);
    for (const auto& t : s.touched) merge_union.add(t);
    merge_union.sorted_rows(sorted);
    const auto segs = s.global.segment_views();
    std::size_t dst = 0;
    for (const auto row : sorted) {
      groups.push_back({0, row * s.cfg.hidden, dst, s.cfg.hidden});
      dst += s.cfg.hidden;
    }
    for (std::size_t seg = 1; seg < segs.size(); ++seg) {
      for (std::size_t off = 0; off < segs[seg].size();
           off += core::kQuantGroupCols) {
        const std::size_t len =
            std::min(core::kQuantGroupCols, segs[seg].size() - off);
        groups.push_back({seg, off, dst, len});
        dst += len;
      }
    }
    elems = dst;
    const std::size_t n = s.replicas.size();
    residual.assign(n, std::vector<float>(elems, 0.0f));
    q16.assign(n, std::vector<std::uint16_t>(elems));
    q8.assign(n, std::vector<std::int8_t>(elems));
    scales.assign(n, std::vector<float>(groups.size(), 0.0f));
  }
};

void run_quantized_delta_merge(MergeSetup& s, comm::MergePrecision prec,
                               QuantDeltaScratch& qs,
                               const kernels::Context& ctx) {
  const auto& vk = *vec::kernels_for(vec::active_isa());
  const core::MergeUpdate u{s.weights, kGamma, true};
  double wsum = 0.0;
  for (const double w : s.weights) wsum += w;

  // Pass A: fold this merge's delta into each replica's residual.
  for (std::size_t i = 0; i < s.replicas.size(); ++i) {
    const auto rsegs = s.replicas[i].segment_views();
    const auto gsegs = s.global.segment_views();
    float* res = qs.residual[i].data();
    kernels::parallel_for_ranges(
        ctx, qs.groups.size(), qs.elems,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t k = begin; k < end; ++k) {
            const auto& q = qs.groups[k];
            vk.ef_delta(rsegs[q.seg].data() + q.off,
                        gsegs[q.seg].data() + q.off, res + q.dst, q.len);
          }
        });
  }

  // Pass B: quantize the residuals into the wire codes.
  float inv_scale = 1.0f;
  if (prec == comm::MergePrecision::kInt8) {
    for (std::size_t i = 0; i < s.replicas.size(); ++i) {
      const float* res = qs.residual[i].data();
      std::int8_t* codes = qs.q8[i].data();
      float* scales = qs.scales[i].data();
      kernels::parallel_for_ranges(
          ctx, qs.groups.size(), qs.elems,
          [&](std::size_t begin, std::size_t end) {
            for (std::size_t k = begin; k < end; ++k) {
              const auto& q = qs.groups[k];
              const float amax = vk.absmax(res + q.dst, q.len);
              const bool ok = amax > 0.0f && std::isfinite(amax);
              scales[k] = ok ? amax / 127.0f : 0.0f;
              vk.quant_i8(res + q.dst, codes + q.dst,
                          ok ? 127.0f / amax : 0.0f, q.len);
            }
          });
    }
  } else {
    for (std::size_t i = 0; i < s.replicas.size(); ++i) {
      if (vk.quant_fp16(qs.residual[i].data(), qs.q16[i].data(),
                        qs.guard.scale, qs.elems) > 0) {
        qs.guard.on_overflow();
        vk.quant_fp16(qs.residual[i].data(), qs.q16[i].data(),
                      qs.guard.scale, qs.elems);
      }
    }
    inv_scale = 1.0f / qs.guard.scale;
  }

  // Pass C: fused dequant-reduce into the global/momentum models.
  std::vector<const std::uint16_t*> r16(s.replicas.size());
  std::vector<const std::int8_t*> r8(s.replicas.size());
  std::vector<const float*> rsc(s.replicas.size());
  const auto region = [&](std::size_t code_off, std::size_t scale_off) {
    core::QuantizedSources src;
    src.precision = prec;
    src.dequant_scale = inv_scale;
    for (std::size_t i = 0; i < s.replicas.size(); ++i) {
      r16[i] = qs.q16[i].data() + code_off;
      r8[i] = qs.q8[i].data() + code_off;
      rsc[i] = qs.scales[i].data() + scale_off;
    }
    src.fp16 = {r16.data(), r16.size()};
    src.i8 = {r8.data(), r8.size()};
    src.scales = {rsc.data(), rsc.size()};
    return src;
  };
  auto global_segs = s.global.segment_views();
  auto prev_segs = s.prev.segment_views();
  core::merge_touched_rows_quantized(region(0, 0), qs.sorted, s.cfg.hidden,
                                     wsum, u, global_segs[0].data(),
                                     prev_segs[0].data(), ctx);
  core::merge_untouched_rows(qs.merge_union, s.cfg.num_features,
                             s.cfg.hidden, u, global_segs[0], prev_segs[0],
                             ctx);
  std::size_t code_off = qs.sorted.size() * s.cfg.hidden;
  std::size_t scale_off = qs.sorted.size();
  for (std::size_t seg = 1; seg < global_segs.size(); ++seg) {
    const std::size_t len = global_segs[seg].size();
    core::merge_segment_quantized(region(code_off, scale_off), len, wsum, u,
                                  global_segs[seg], prev_segs[seg], kStreams,
                                  ctx);
    code_off += len;
    scale_off += (len + core::kQuantGroupCols - 1) / core::kQuantGroupCols;
  }

  // Pass D: subtract what was shipped — the residual keeps the error.
  for (std::size_t i = 0; i < s.replicas.size(); ++i) {
    float* res = qs.residual[i].data();
    kernels::parallel_for_ranges(
        ctx, qs.groups.size(), qs.elems,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t k = begin; k < end; ++k) {
            const auto& q = qs.groups[k];
            if (prec == comm::MergePrecision::kInt8) {
              vk.residual_i8(qs.q8[i].data() + q.dst, qs.scales[i][k],
                             res + q.dst, q.len);
            } else {
              vk.residual_fp16(qs.q16[i].data() + q.dst, inv_scale,
                               res + q.dst, q.len);
            }
          }
        });
  }
  s.broadcast();
}

// args: {log2(features), replicas}
void BM_MergePr1Path(benchmark::State& state) {
  MergeSetup s(std::size_t{1} << state.range(0), kHidden, kClasses,
               static_cast<std::size_t>(state.range(1)), 0);
  std::vector<float> global_flat = s.global.to_flat();
  std::vector<float> prev_flat = global_flat;
  std::vector<double> acc;
  for (auto _ : state) {
    run_pr1_merge(s, global_flat, prev_flat, acc);
    benchmark::DoNotOptimize(s.global.w1().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(s.cfg.num_parameters()));
}

// args: {log2(features), replicas, threads}
void BM_MergeFusedDense(benchmark::State& state) {
  MergeSetup s(std::size_t{1} << state.range(0), kHidden, kClasses,
               static_cast<std::size_t>(state.range(1)), 0);
  const auto threads = static_cast<std::size_t>(state.range(2));
  util::ThreadPool pool(threads);
  const kernels::Context ctx{threads > 1 ? &pool : nullptr, threads};
  for (auto _ : state) {
    run_fused_dense_merge(s, ctx);
    benchmark::DoNotOptimize(s.global.w1().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(s.cfg.num_parameters()));
}

// args: {log2(features), replicas, threads, per-replica touched permille}
void BM_MergeFusedDelta(benchmark::State& state) {
  MergeSetup s(std::size_t{1} << state.range(0), kHidden, kClasses,
               static_cast<std::size_t>(state.range(1)),
               static_cast<std::size_t>(state.range(3)));
  const auto threads = static_cast<std::size_t>(state.range(2));
  util::ThreadPool pool(threads);
  const kernels::Context ctx{threads > 1 ? &pool : nullptr, threads};
  sparse::RowSet merge_union;
  merge_union.reset(s.cfg.num_features);
  std::vector<std::uint32_t> sorted;
  for (auto _ : state) {
    run_fused_delta_merge(s, merge_union, sorted, ctx);
    benchmark::DoNotOptimize(s.global.w1().data());
  }
  state.counters["union_rows"] =
      static_cast<double>(merge_union.size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(s.cfg.num_parameters()));
}

// Headline acceptance shape: 2M features, 0.005% density => ~23% of W1 rows
// touched per replica per mega-batch (1 - exp(-40 batches * 128 rows * 100
// nnz / 2M)), 4 replicas, 8 threads — vs the PR-1 path at the same shape.
BENCHMARK(BM_MergePr1Path)->Args({21, 4})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MergeFusedDense)
    ->Args({21, 4, 8})
    ->Args({21, 4, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MergeFusedDelta)
    ->Args({21, 4, 8, 226})
    ->Args({21, 4, 1, 226})
    ->Args({21, 4, 8, 50})
    ->Args({21, 4, 8, 500})
    ->Unit(benchmark::kMillisecond);

// Smaller sweep: model size x replicas x threads x touched fraction.
BENCHMARK(BM_MergePr1Path)
    ->Args({17, 4})
    ->Args({17, 2})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MergeFusedDense)
    ->Args({17, 4, 1})
    ->Args({17, 4, 2})
    ->Args({17, 4, 4})
    ->Args({17, 4, 8})
    ->Args({17, 2, 8})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MergeFusedDelta)
    ->Args({17, 4, 8, 50})
    ->Args({17, 4, 8, 226})
    ->Args({17, 4, 8, 500})
    ->Args({17, 4, 2, 226})
    ->Args({17, 2, 8, 226})
    ->Unit(benchmark::kMillisecond);

// args: {log2(features), replicas, threads, touched permille, precision}
// The quantized delta merge at the same shapes as BM_MergeFusedDelta:
// precision 1 = fp16, 2 = int8. payload_bytes / wire_bytes counters record
// the simulated transfer size next to the fp32 delta payload, so one JSON
// row carries precision x payload x merge-time.
void BM_MergeQuantizedDelta(benchmark::State& state) {
  MergeSetup s(std::size_t{1} << state.range(0), kHidden, kClasses,
               static_cast<std::size_t>(state.range(1)),
               static_cast<std::size_t>(state.range(3)));
  const auto prec = static_cast<comm::MergePrecision>(state.range(4));
  const auto threads = static_cast<std::size_t>(state.range(2));
  util::ThreadPool pool(threads);
  const kernels::Context ctx{threads > 1 ? &pool : nullptr, threads};
  QuantDeltaScratch qs;
  qs.build(s);
  for (auto _ : state) {
    run_quantized_delta_merge(s, prec, qs, ctx);
    benchmark::DoNotOptimize(s.global.w1().data());
  }
  const auto wire = comm::wire_payload(
      prec, qs.groups.size(), qs.elems);
  state.counters["union_rows"] = static_cast<double>(qs.merge_union.size());
  state.counters["payload_bytes"] = static_cast<double>(wire.payload_bytes);
  state.counters["wire_bytes"] = static_cast<double>(wire.total());
  state.counters["fp32_payload_bytes"] =
      static_cast<double>(qs.elems * sizeof(float));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(s.cfg.num_parameters()));
}
BENCHMARK(BM_MergeQuantizedDelta)
    ->Args({21, 4, 8, 226, 1})
    ->Args({21, 4, 8, 226, 2})
    ->Args({21, 4, 1, 226, 2})
    ->Args({17, 4, 8, 226, 1})
    ->Args({17, 4, 8, 226, 2})
    ->Args({17, 4, 8, 50, 2})
    ->Unit(benchmark::kMillisecond);

// args: {precision} — end-to-end time-to-accuracy parity on the tiny
// synthetic dataset: same adaptive trainer, merges at fp32 / fp16 / int8.
// Counters record final top-1 and the simulated clock; the acceptance bar
// is quantized top1 within 1% of the fp32 row at a smaller vtime.
void BM_TrainTimeToAccuracy(benchmark::State& state) {
  static const data::XmlDataset dataset =
      data::generate_xml_dataset(data::tiny_profile());
  core::TrainerConfig cfg;
  cfg.hidden = 16;
  cfg.batch_max = 32;
  cfg.batches_per_megabatch = 8;
  cfg.eval_samples = 200;
  cfg.compute_scale = 100.0;
  cfg.num_megabatches = 8;
  cfg.sparse_merge = true;
  cfg.merge_precision = static_cast<comm::MergePrecision>(state.range(0));
  for (auto _ : state) {
    core::AdaptiveSgdTrainer trainer(dataset, cfg,
                                     sim::v100_heterogeneous(4));
    const auto result = trainer.train();
    state.counters["top1"] = result.curve.back().top1;
    state.counters["vtime"] = result.total_vtime;
    state.counters["comm_seconds"] = result.comm_seconds;
  }
}
BENCHMARK(BM_TrainTimeToAccuracy)
    ->Args({0})
    ->Args({1})
    ->Args({2})
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

// args: {log2(bytes), nodes, cpu replicas} — virtual-time cost of one merge
// of a fixed 4-GPU budget spread across the hierarchy (two-level merge:
// intra-node multi-stream ring, chunked inter-node ring over one leader per
// node, intra-node broadcast). The measured wall-clock is the cost-model
// evaluation itself (cheap by construction); the row's payload is the
// virtual_merge_ms counter — the simulated milliseconds that topology bills
// one merge, the number Figure 5's node sweep is built on.
void BM_HierarchicalMergeCost(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(1));
  const auto cpus = static_cast<std::size_t>(state.range(2));
  const auto topo = sim::Topology::partitioned(nodes, 4, cpus);
  const comm::AllReducer reducer(comm::AllReduceAlgo::kRingMultiStream,
                                 sim::cluster_links(topo), kStreams);
  const comm::WirePayload wire{
      static_cast<double>(std::size_t{1} << state.range(0)), 0.0};
  std::vector<std::size_t> ranks(topo.num_replicas());
  std::iota(ranks.begin(), ranks.end(), std::size_t{0});
  const std::span<const std::size_t> rspan(ranks);
  const double vseconds = reducer.cost(rspan, wire).seconds;
  for (auto _ : state) {
    auto cost = reducer.cost(rspan, wire);
    benchmark::DoNotOptimize(cost);
  }
  state.counters["virtual_merge_ms"] = 1e3 * vseconds;
}
BENCHMARK(BM_HierarchicalMergeCost)
    ->Args({24, 1, 0})
    ->Args({24, 2, 0})
    ->Args({24, 4, 0})
    ->Args({24, 2, 1})
    ->Unit(benchmark::kMicrosecond);

// args: {log2(features), replicas, threads, per-replica touched permille}
// Deep model (hidden 64,32): one extra dense [W,b] segment pair vs the
// two-layer MLP, merged through the same generic segment path the runtime
// uses for any nn::Model.
void BM_MergeFusedDeltaDeep(benchmark::State& state) {
  DeepMergeSetup s(std::size_t{1} << state.range(0),
                   static_cast<std::size_t>(state.range(1)),
                   static_cast<std::size_t>(state.range(3)));
  const auto threads = static_cast<std::size_t>(state.range(2));
  util::ThreadPool pool(threads);
  const kernels::Context ctx{threads > 1 ? &pool : nullptr, threads};
  sparse::RowSet merge_union;
  merge_union.reset(s.cfg.num_features);
  std::vector<std::uint32_t> sorted;
  for (auto _ : state) {
    run_fused_delta_merge_deep(s, merge_union, sorted, ctx);
    benchmark::DoNotOptimize(s.global.segment_views()[0].data());
  }
  state.counters["union_rows"] = static_cast<double>(merge_union.size());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(s.cfg.num_parameters()));
}
BENCHMARK(BM_MergeFusedDeltaDeep)
    ->Args({21, 4, 8, 226})
    ->Args({17, 4, 8, 226})
    ->Args({17, 4, 1, 226})
    ->Unit(benchmark::kMillisecond);

// Tiny smoke shape for the bench-smoke ctest label (exercises all merge
// paths — including the int8/fp16 quantized delta merge — plus JSON
// emission without paying for the sweep).
void BM_SmokeMergePaths(benchmark::State& state) {
  MergeSetup s(4096, 16, 64, 2, 100);
  DeepMergeSetup deep(4096, 2, 100);
  util::ThreadPool pool(2);
  kernels::Context ctx{&pool, 2};
  ctx.serial_grain = 1;
  std::vector<float> global_flat = s.global.to_flat();
  std::vector<float> prev_flat = global_flat;
  std::vector<double> acc;
  sparse::RowSet merge_union;
  merge_union.reset(s.cfg.num_features);
  std::vector<std::uint32_t> sorted;
  sparse::RowSet deep_union;
  deep_union.reset(deep.cfg.num_features);
  std::vector<std::uint32_t> deep_sorted;
  QuantDeltaScratch qs8, qs16;
  qs8.build(s);
  qs16.build(s);
  for (auto _ : state) {
    run_pr1_merge(s, global_flat, prev_flat, acc);
    run_fused_dense_merge(s, ctx);
    run_fused_delta_merge(s, merge_union, sorted, ctx);
    run_quantized_delta_merge(s, comm::MergePrecision::kInt8, qs8, ctx);
    run_quantized_delta_merge(s, comm::MergePrecision::kFp16, qs16, ctx);
    run_fused_delta_merge_deep(deep, deep_union, deep_sorted, ctx);
    benchmark::DoNotOptimize(s.global.w1().data());
    benchmark::DoNotOptimize(deep.global.segment_views()[0].data());
  }
}
BENCHMARK(BM_SmokeMergePaths)->Unit(benchmark::kMicrosecond);

}  // namespace

// Custom main: unless the caller chose an output file, record the run to
// BENCH_merge.json (the perf-trajectory artifact tracked across PRs).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char out_flag[] = "--benchmark_out=BENCH_merge.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
