// Strong scaling: wall-clock speedup and parallel efficiency of Adaptive
// SGD as GPUs are added (the tech-report companion of Figure 5a). The work
// is fixed (same sample budget); perfect scaling would halve the time per
// doubling. Reported against both a heterogeneous ladder (every added GPU
// is slower than the last, the realistic case) and a homogeneous server
// (upper bound).
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace hetero;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto megabatches =
      static_cast<std::size_t>(args.get_int("megabatches", 5));
  if (args.report_unknown()) return 1;

  const auto dataset = data::generate_xml_dataset(bench::bench_amazon());
  auto cfg = bench::bench_trainer_config(megabatches);
  cfg.learning_rate = 0.25;

  for (const bool heterogeneous : {true, false}) {
    std::printf("\n=== strong scaling, %s server ===\n",
                heterogeneous ? "heterogeneous (32% gap)" : "homogeneous");
    std::printf("%6s | %10s | %9s | %11s | %10s\n", "gpus", "vtime(s)",
                "speedup", "efficiency", "best top1");
    double t1 = 0.0;
    for (const std::size_t gpus : {1u, 2u, 4u, 8u}) {
      const auto devices = heterogeneous
                               ? sim::v100_heterogeneous(gpus, 0.32)
                               : sim::v100_homogeneous(gpus);
      auto trainer =
          core::make_trainer(core::Method::kAdaptive, dataset, cfg, devices);
      const auto r = trainer->train();
      if (gpus == 1) t1 = r.total_vtime;
      const double speedup = t1 / r.total_vtime;
      std::printf("%6zu | %10.4f | %8.2fx | %10.1f%% | %9.2f%%\n", gpus,
                  r.total_vtime, speedup,
                  100.0 * speedup / static_cast<double>(gpus),
                  100 * r.best_top1());
    }
  }
  std::printf(
      "\nReading: heterogeneous efficiency trails homogeneous because each "
      "added GPU is slower\nthan the first (aggregate throughput grows "
      "sub-linearly by construction); Adaptive SGD\nstays close to the "
      "aggregate-throughput bound at every width.\n");
  return 0;
}
