// Staleness study: the SSP parameter-server trade-off curve and the async
// extreme, versus Adaptive SGD's elastic-averaging approach.
//
// The paper motivates Algorithm 1's b_min/b_max bounds by appeal to stale
// synchronous SGD convergence results (Ho et al. [11], Lian et al. [14]):
// bounded staleness preserves convergence, unbounded staleness (fully
// asynchronous) degrades it. This bench traces that curve directly:
// sweeping the SSP window from 0 (synchronous) to wide-open, measuring the
// realized average gradient staleness, the wall-clock (tighter windows
// stall on stragglers), and the accuracy reached.
#include <cstdio>

#include "bench_common.h"
#include "core/param_server.h"

using namespace hetero;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto megabatches =
      static_cast<std::size_t>(args.get_int("megabatches", 5));
  if (args.report_unknown()) return 1;

  const auto dataset = data::generate_xml_dataset(bench::bench_amazon());
  auto cfg = bench::bench_trainer_config(megabatches);
  cfg.learning_rate = 0.25;
  const auto devices = sim::v100_heterogeneous(4, 0.32);

  std::printf(
      "=== Bounded staleness (SSP parameter server, 4 GPUs, 32%% gap) ===\n\n");
  std::printf("%-18s | %10s | %12s | %10s | %10s\n", "config", "vtime(s)",
              "avg staleness", "ssp stalls", "best top1");

  for (const std::size_t bound : {0u, 1u, 2u, 4u, 8u, 32u}) {
    core::ParamServerTrainer trainer(dataset, cfg, devices, bound);
    const auto r = trainer.train();
    char label[64];
    std::snprintf(label, sizeof(label), "ssp bound = %zu", bound);
    std::printf("%-18s | %10.4f | %12.2f | %10zu | %9.2f%%\n", label,
                r.total_vtime, r.avg_staleness, trainer.ssp_stalls(),
                100 * r.best_top1());
  }
  {
    auto trainer =
        core::make_trainer(core::Method::kAsync, dataset, cfg, devices);
    const auto r = trainer->train();
    std::printf("%-18s | %10.4f | %12.2f | %10s | %9.2f%%\n",
                "async (unbounded)", r.total_vtime, r.avg_staleness, "n/a",
                100 * r.best_top1());
  }
  {
    auto trainer =
        core::make_trainer(core::Method::kAdaptive, dataset, cfg, devices);
    const auto r = trainer->train();
    std::printf("%-18s | %10.4f | %12s | %10s | %9.2f%%\n",
                "adaptive (elastic)", r.total_vtime, "merge-based", "n/a",
                100 * r.best_top1());
  }
  std::printf(
      "\nReading: tightening the SSP window costs wall-clock (straggler "
      "stalls) and buys\nstatistical quality; Adaptive SGD sidesteps the "
      "trade-off by bounding the update-count\ndiscrepancy through "
      "b_min/b_max instead of blocking (Section III-A).\n");
  return 0;
}
