// Figure 4: time-to-accuracy for a given number of GPUs.
//
// For each dataset (Amazon-670k-shaped, Delicious-200k-shaped) and each GPU
// configuration {1, 2, 4}, trains all four methods — Adaptive SGD, Elastic
// SGD, TensorFlow-style synchronous gradient aggregation, CROSSBOW-style
// synchronous model averaging — on identical sample budgets and identical
// initial models, and prints top-1 accuracy after every mega-batch against
// virtual wall-clock. (On a single GPU Adaptive and Elastic are the same
// algorithm; both are run to confirm the curves coincide.)
//
// Expected shape (paper): Adaptive reaches the highest accuracy in the
// shortest time in every configuration; TensorFlow is the slowest (slower
// epochs + per-batch global updates); CROSSBOW is dataset-sensitive.
//
// Series are also written to fig4_time_to_accuracy.csv for plotting.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"

using namespace hetero;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto megabatches =
      static_cast<std::size_t>(args.get_int("megabatches", 6));
  const bool quick = args.get_bool("quick", false);
  if (args.report_unknown()) return 1;

  auto cfg = bench::bench_trainer_config(megabatches);
  if (quick) {
    cfg.num_megabatches = 3;
    cfg.batches_per_megabatch = 20;
  }

  util::CsvWriter csv("fig4_time_to_accuracy.csv",
                      {"dataset", "method", "gpus", "vtime", "samples",
                       "passes", "top1", "test_loss"});

  const std::vector<std::pair<data::SyntheticXmlConfig, double>> datasets = {
      {bench::bench_amazon(), 0.25}, {bench::bench_delicious(), 0.25}};
  const std::vector<std::size_t> gpu_configs{1, 2, 4};
  const std::vector<core::Method> methods{
      core::Method::kAdaptive, core::Method::kElastic, core::Method::kSync,
      core::Method::kCrossbow};

  for (const auto& [data_cfg, lr] : datasets) {
    const auto dataset = data::generate_xml_dataset(data_cfg);
    std::printf("\n=== Figure 4: %s ===\n", dataset.name.c_str());
    for (const auto gpus : gpu_configs) {
      std::printf("\n--- %zu GPU(s) ---\n", gpus);
      std::map<std::string, core::TrainResult> results;
      for (const auto method : methods) {
        auto run_cfg = cfg;
        run_cfg.learning_rate = lr;
        auto trainer = core::make_trainer(method, dataset, run_cfg,
                                          sim::v100_heterogeneous(gpus));
        auto result = trainer->train();
        bench::append_curve_csv(csv, result);
        bench::print_curve(result);
        results[result.method] = std::move(result);
      }

      // Summary: best accuracy and time-to-target per method.
      double min_best = 1.0;
      for (const auto& [name, r] : results) {
        min_best = std::min(min_best, r.best_top1());
      }
      const double target = 0.8 * min_best;
      std::printf("\n  summary (target top1 = %.1f%%):\n", 100 * target);
      std::printf("  %-14s %10s %10s %12s\n", "method", "best top1",
                  "final(s)", "tta(s)");
      for (const auto& [name, r] : results) {
        const auto tta = r.time_to_accuracy(target);
        std::printf("  %-14s %9.2f%% %10.4f %12s\n", name.c_str(),
                    100 * r.best_top1(), r.total_vtime,
                    tta ? std::to_string(*tta).c_str() : "never");
      }
    }
  }
  std::printf("\nseries written to fig4_time_to_accuracy.csv\n");
  return 0;
}
