// Ablation study over Adaptive SGD's design choices (DESIGN.md experiment
// A1): each of the paper's mechanisms is disabled or varied in isolation on
// the 4-GPU heterogeneous server, holding everything else fixed.
//
//   - dynamic scheduling off  -> static round-robin dispatch
//   - batch size scaling off  -> fixed b_max everywhere (update-count skew
//                                persists; merging must compensate)
//   - perturbation off        -> Algorithm 2 without the (1 +/- delta) push
//   - momentum off            -> plain weighted-average global update
//   - kernel fusion off       -> every primitive kernel pays launch overhead
//   - beta sweep              -> Algorithm 1 step size
//   - mega-batch size sweep   -> merge frequency
#include <cstdio>

#include "bench_common.h"

using namespace hetero;

namespace {

void report(const char* label, const core::TrainResult& r) {
  std::printf("  %-28s | %9.4fs | best %6.2f%% | final %6.2f%% | pert %5.1f%%\n",
              label, r.total_vtime, 100 * r.best_top1(), 100 * r.final_top1(),
              100 * r.perturbation_frequency());
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto megabatches =
      static_cast<std::size_t>(args.get_int("megabatches", 8));
  if (args.report_unknown()) return 1;

  const auto dataset = data::generate_xml_dataset(bench::bench_amazon());
  const auto devices = sim::v100_heterogeneous(4, 0.32);
  const auto base_cfg = bench::bench_trainer_config(megabatches);

  const auto run = [&](core::TrainerConfig cfg) {
    auto trainer =
        core::make_trainer(core::Method::kAdaptive, dataset, cfg, devices);
    return trainer->train();
  };

  std::printf("=== Ablation: Adaptive SGD mechanisms (4 heterogeneous GPUs) ===\n");
  std::printf("  %-28s | %10s | %-11s | %-12s | %s\n", "variant", "vtime",
              "best top1", "final top1", "pert freq");

  report("full adaptive (baseline)", run(base_cfg));
  {
    auto cfg = base_cfg;
    cfg.dynamic_scheduling = false;
    report("- dynamic scheduling", run(cfg));
  }
  {
    auto cfg = base_cfg;
    cfg.enable_batch_scaling = false;
    report("- batch size scaling", run(cfg));
  }
  {
    auto cfg = base_cfg;
    cfg.enable_perturbation = false;
    report("- perturbation", run(cfg));
  }
  {
    auto cfg = base_cfg;
    cfg.enable_momentum = false;
    report("- momentum", run(cfg));
  }
  {
    auto cfg = base_cfg;
    cfg.fused_kernels = false;
    report("- kernel fusion", run(cfg));
  }

  std::printf("\n--- beta sweep (Algorithm 1 step size; default b_min/2 = %.0f) ---\n",
              base_cfg.derived_beta());
  for (const double beta : {1.0, 4.0, 8.0, 16.0, 32.0}) {
    auto cfg = base_cfg;
    cfg.beta = beta;
    char label[64];
    std::snprintf(label, sizeof(label), "beta = %.0f", beta);
    report(label, run(cfg));
  }

  std::printf("\n--- mega-batch size sweep (batches of b_max per merge) ---\n");
  for (const std::size_t batches : {10u, 25u, 50u, 100u}) {
    auto cfg = base_cfg;
    cfg.batches_per_megabatch = batches;
    // Keep the total sample budget constant.
    cfg.num_megabatches =
        base_cfg.num_megabatches * base_cfg.batches_per_megabatch / batches;
    char label[64];
    std::snprintf(label, sizeof(label), "mega-batch = %zu batches", batches);
    report(label, run(cfg));
  }

  std::printf("\n--- perturbation threshold sweep (default 0.1) ---\n");
  for (const double thr : {0.0, 0.01, 0.1, 1.0}) {
    auto cfg = base_cfg;
    cfg.pert_threshold = thr;
    char label[64];
    std::snprintf(label, sizeof(label), "pert_thr = %.2f", thr);
    report(label, run(cfg));
  }

  std::printf("\n--- merge normalization (Algorithm 2 / Section III-B) ---\n");
  const std::pair<const char*, core::MergeNormalization> norms[] = {
      {"auto (paper default)", core::MergeNormalization::kAuto},
      {"by updates", core::MergeNormalization::kUpdates},
      {"by batch size", core::MergeNormalization::kBatchSize},
      {"updates x batch", core::MergeNormalization::kUpdatesTimesBatch},
  };
  for (const auto& [label, norm] : norms) {
    auto cfg = base_cfg;
    cfg.merge_normalization = norm;
    report(label, run(cfg));
  }

  // Transient stragglers: on top of the static 32% spread, every device
  // randomly degrades to 40% throughput for a stretch (thermal throttling /
  // interference). Dynamic scheduling absorbs these; static assignment
  // stalls the whole mega-batch on whichever GPU is degraded.
  std::printf("\n--- transient stragglers (p=0.02/step, 0.4x for 5ms) ---\n");
  auto straggler_devices = sim::v100_heterogeneous(4, 0.32);
  for (auto& d : straggler_devices) {
    d.transient_probability = 0.02;
    d.transient_factor = 0.4;
    d.transient_duration = 5e-3;
  }
  for (const auto method : {core::Method::kAdaptive, core::Method::kElastic}) {
    auto trainer =
        core::make_trainer(method, dataset, base_cfg, straggler_devices);
    const auto r = trainer->train();
    report(r.method.c_str(), r);
  }
  return 0;
}
