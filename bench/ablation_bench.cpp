// Ablation study over Adaptive SGD's design choices (DESIGN.md experiment
// A1): each of the paper's mechanisms is disabled or varied in isolation on
// the 4-GPU heterogeneous server, holding everything else fixed.
//
//   - dynamic scheduling off  -> static round-robin dispatch
//   - batch size scaling off  -> fixed b_max everywhere (update-count skew
//                                persists; merging must compensate)
//   - perturbation off        -> Algorithm 2 without the (1 +/- delta) push
//   - momentum off            -> plain weighted-average global update
//   - kernel fusion off       -> every primitive kernel pays launch overhead
//   - beta sweep              -> Algorithm 1 step size
//   - mega-batch size sweep   -> merge frequency
//
// Plus the optimizer ablation (DESIGN.md §11): time-to-accuracy over the
// {sgd, adam, adamw, adagrad} x {average, keep, reset moment-merge} x
// {dense, sparse merge} grid at per-optimizer tuned learning rates, written
// to BENCH_ablation.json (override with --out). The shared accuracy target
// is derived from the SGD baseline, so each stateful optimizer's TTA reads
// directly as "how much sooner (or later) than SGD it reaches SGD-grade
// accuracy".
//
//   ./build/bench/ablation_bench           # full text tables + TTA grid
//   ./build/bench/ablation_bench --smoke   # tiny TTA grid only (bench-smoke)
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/result_io.h"

using namespace hetero;

namespace {

void report(const char* label, const core::TrainResult& r) {
  std::printf("  %-28s | %9.4fs | best %6.2f%% | final %6.2f%% | pert %5.1f%%\n",
              label, r.total_vtime, 100 * r.best_top1(), 100 * r.final_top1(),
              100 * r.perturbation_frequency());
}

struct OptimizerRun {
  nn::OptimizerKind kind;
  core::MomentMerge policy;
  bool sparse_merge;
  double lr;
  core::TrainResult result;
};

/// Per-optimizer learning rate for the TTA grid. SGD keeps the bench
/// baseline rate; the adaptive rules run at their own scale (Adam-family
/// steps are preconditioned by sqrt(v), so SGD-sized rates diverge).
double grid_lr(nn::OptimizerKind kind, double sgd_lr) {
  switch (kind) {
    case nn::OptimizerKind::kSgd:
      return sgd_lr;
    case nn::OptimizerKind::kAdam:
    case nn::OptimizerKind::kAdamW:
      return 0.02;
    case nn::OptimizerKind::kAdagrad:
      return 0.1;
  }
  return sgd_lr;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto megabatches =
      static_cast<std::size_t>(args.get_int("megabatches", 8));
  const bool smoke = args.get_bool("smoke", false);
  const auto out_path = args.get_string("out", "BENCH_ablation.json");
  if (args.report_unknown()) return 1;

  auto data_cfg = bench::bench_amazon();
  auto base_cfg = bench::bench_trainer_config(megabatches);
  if (smoke) {
    data_cfg.num_train = 3'000;
    data_cfg.num_test = 600;
    base_cfg.num_megabatches = 4;
    base_cfg.batches_per_megabatch = 10;
    base_cfg.batch_max = 64;
    base_cfg.eval_samples = 300;
  }
  const auto dataset = data::generate_xml_dataset(data_cfg);
  const auto devices = sim::v100_heterogeneous(4, 0.32);

  const auto run = [&](core::TrainerConfig cfg) {
    auto trainer =
        core::make_trainer(core::Method::kAdaptive, dataset, cfg, devices);
    return trainer->train();
  };

  // ---- optimizer x moment-merge x sparse-merge TTA grid -----------------
  std::vector<OptimizerRun> opt_runs;
  {
    constexpr nn::OptimizerKind kKinds[] = {
        nn::OptimizerKind::kSgd, nn::OptimizerKind::kAdam,
        nn::OptimizerKind::kAdamW, nn::OptimizerKind::kAdagrad};
    constexpr core::MomentMerge kPolicies[] = {core::MomentMerge::kAverage,
                                               core::MomentMerge::kKeep,
                                               core::MomentMerge::kReset};
    std::printf(
        "=== Ablation: optimizer x moment-merge x sparse-merge (TTA) ===\n");
    std::printf("  %-8s %-8s %-6s %-6s | %9s | %-10s | %s\n", "opt",
                "moments", "sparse", "lr", "vtime", "best top1", "final");
    for (const bool sparse : {false, true}) {
      for (const auto kind : kKinds) {
        for (const auto policy : kPolicies) {
          auto cfg = base_cfg;
          cfg.optimizer.kind = kind;
          cfg.moment_merge = policy;
          cfg.sparse_merge = sparse;
          cfg.learning_rate = grid_lr(kind, base_cfg.learning_rate);
          cfg.weight_decay = 1e-4;  // makes adam vs adamw a real contrast
          OptimizerRun r{kind, policy, sparse, cfg.learning_rate, run(cfg)};
          std::printf("  %-8s %-8s %-6s %-6.3f | %9.4fs | %9.2f%% | %6.2f%%\n",
                      nn::to_string(kind).c_str(),
                      core::to_string(policy).c_str(), sparse ? "on" : "off",
                      r.lr, r.result.total_vtime, 100 * r.result.best_top1(),
                      100 * r.result.final_top1());
          opt_runs.push_back(std::move(r));
        }
      }
    }

    // Shared target from the SGD baseline: 95% of the best top-1 any SGD
    // arm reached. Every optimizer's TTA then answers "when did it reach
    // SGD-grade accuracy" on the same virtual timeline.
    double sgd_best = 0.0;
    for (const auto& r : opt_runs) {
      if (r.kind == nn::OptimizerKind::kSgd) {
        sgd_best = std::max(sgd_best, r.result.best_top1());
      }
    }
    const double target = 0.95 * sgd_best;
    std::printf("  (TTA target: %.2f%% = 95%% of best SGD top-1)\n",
                100 * target);
    for (const auto& r : opt_runs) {
      const auto tta = r.result.time_to_accuracy(target);
      std::printf("  tta %-8s %-8s sparse=%-3s : %s\n",
                  nn::to_string(r.kind).c_str(),
                  core::to_string(r.policy).c_str(),
                  r.sparse_merge ? "on" : "off",
                  tta ? (std::to_string(*tta) + "s").c_str() : "never");
    }

    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
    out << "{\"bench\":\"ablation\",\"gpus\":4,\"weight_decay\":1e-4,"
        << "\"target_top1\":" << target << ",\"runs\":[";
    for (std::size_t i = 0; i < opt_runs.size(); ++i) {
      const auto& r = opt_runs[i];
      if (i > 0) out << ',';
      const auto tta = r.result.time_to_accuracy(target);
      out << "{\"optimizer\":\"" << nn::to_string(r.kind) << "\","
          << "\"moment_merge\":\"" << core::to_string(r.policy) << "\","
          << "\"sparse_merge\":" << (r.sparse_merge ? "true" : "false")
          << ",\"lr\":" << r.lr
          << ",\"tta\":" << (tta ? std::to_string(*tta) : "null")
          << ",\"result\":";
      core::write_result_json(out, r.result);
      out << '}';
    }
    out << "]}\n";
    std::printf("results written to %s\n", out_path.c_str());
  }
  if (smoke) return 0;

  std::printf("\n=== Ablation: Adaptive SGD mechanisms (4 heterogeneous GPUs) ===\n");
  std::printf("  %-28s | %10s | %-11s | %-12s | %s\n", "variant", "vtime",
              "best top1", "final top1", "pert freq");

  report("full adaptive (baseline)", run(base_cfg));
  {
    auto cfg = base_cfg;
    cfg.dynamic_scheduling = false;
    report("- dynamic scheduling", run(cfg));
  }
  {
    auto cfg = base_cfg;
    cfg.enable_batch_scaling = false;
    report("- batch size scaling", run(cfg));
  }
  {
    auto cfg = base_cfg;
    cfg.enable_perturbation = false;
    report("- perturbation", run(cfg));
  }
  {
    auto cfg = base_cfg;
    cfg.enable_momentum = false;
    report("- momentum", run(cfg));
  }
  {
    auto cfg = base_cfg;
    cfg.fused_kernels = false;
    report("- kernel fusion", run(cfg));
  }

  std::printf("\n--- beta sweep (Algorithm 1 step size; default b_min/2 = %.0f) ---\n",
              base_cfg.derived_beta());
  for (const double beta : {1.0, 4.0, 8.0, 16.0, 32.0}) {
    auto cfg = base_cfg;
    cfg.beta = beta;
    char label[64];
    std::snprintf(label, sizeof(label), "beta = %.0f", beta);
    report(label, run(cfg));
  }

  std::printf("\n--- mega-batch size sweep (batches of b_max per merge) ---\n");
  for (const std::size_t batches : {10u, 25u, 50u, 100u}) {
    auto cfg = base_cfg;
    cfg.batches_per_megabatch = batches;
    // Keep the total sample budget constant.
    cfg.num_megabatches =
        base_cfg.num_megabatches * base_cfg.batches_per_megabatch / batches;
    char label[64];
    std::snprintf(label, sizeof(label), "mega-batch = %zu batches", batches);
    report(label, run(cfg));
  }

  std::printf("\n--- perturbation threshold sweep (default 0.1) ---\n");
  for (const double thr : {0.0, 0.01, 0.1, 1.0}) {
    auto cfg = base_cfg;
    cfg.pert_threshold = thr;
    char label[64];
    std::snprintf(label, sizeof(label), "pert_thr = %.2f", thr);
    report(label, run(cfg));
  }

  std::printf("\n--- merge normalization (Algorithm 2 / Section III-B) ---\n");
  const std::pair<const char*, core::MergeNormalization> norms[] = {
      {"auto (paper default)", core::MergeNormalization::kAuto},
      {"by updates", core::MergeNormalization::kUpdates},
      {"by batch size", core::MergeNormalization::kBatchSize},
      {"updates x batch", core::MergeNormalization::kUpdatesTimesBatch},
  };
  for (const auto& [label, norm] : norms) {
    auto cfg = base_cfg;
    cfg.merge_normalization = norm;
    report(label, run(cfg));
  }

  // Transient stragglers: on top of the static 32% spread, every device
  // randomly degrades to 40% throughput for a stretch (thermal throttling /
  // interference). Dynamic scheduling absorbs these; static assignment
  // stalls the whole mega-batch on whichever GPU is degraded.
  std::printf("\n--- transient stragglers (p=0.02/step, 0.4x for 5ms) ---\n");
  auto straggler_devices = sim::v100_heterogeneous(4, 0.32);
  for (auto& d : straggler_devices) {
    d.transient_probability = 0.02;
    d.transient_factor = 0.4;
    d.transient_duration = 5e-3;
  }
  for (const auto method : {core::Method::kAdaptive, core::Method::kElastic}) {
    auto trainer =
        core::make_trainer(method, dataset, base_cfg, straggler_devices);
    const auto r = trainer->train();
    report(r.method.c_str(), r);
  }
  return 0;
}
