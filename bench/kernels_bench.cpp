// google-benchmark microbenchmarks of the real CPU kernels backing the
// framework: sparse products, dense GEMM, softmax, SimHash, and the numeric
// all-reduce path. These measure actual wall-clock (not virtual time) and
// exist to keep the reference kernels honest as the code evolves.
//
// The parallel-backend benchmarks sweep worker threads x batch sparsity for
// the sparsity-aware hot path (spmm, touched-row gradient, full sgd_step at
// XML-like shape) against BM_SgdStepXmlSeedReference, a faithful re-creation
// of the seed implementation's serial dense-gradient step (per-step
// O(F x H) zero-fill + sort/unique in the update). Unless the caller passes
// --benchmark_out, results are written to BENCH_kernels.json so the speedup
// trajectory is tracked across PRs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "comm/allreduce.h"
#include "core/merging.h"
#include "nn/train_step.h"
#include "sim/profiles.h"
#include "slide/simhash.h"
#include "sparse/ops.h"
#include "sparse/sparse_gradient.h"
#include "tensor/ops.h"
#include "tensor/vec/vec.h"
#include "util/kernel_context.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace hetero;

namespace {

sparse::CsrMatrix make_sparse_batch(std::size_t rows, std::size_t cols,
                                    std::size_t nnz_per_row,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  sparse::CsrBuilder b(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<sparse::Entry> entries;
    for (std::size_t i = 0; i < nnz_per_row; ++i) {
      entries.push_back({static_cast<std::uint32_t>(rng.next_below(cols)),
                         static_cast<float>(rng.uniform(0.1, 1.0))});
    }
    b.add_row(std::move(entries));
  }
  return b.build();
}

sparse::CsrMatrix make_labels(std::size_t rows, std::size_t classes,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  sparse::CsrBuilder yb(classes);
  for (std::size_t r = 0; r < rows; ++r) {
    yb.add_indicator_row(
        {static_cast<std::uint32_t>(rng.next_below(classes))});
  }
  return yb.build();
}

void BM_Spmm(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto x = make_sparse_batch(batch, 8192, 76, 1);
  util::Rng rng(2);
  tensor::Matrix w(8192, 64);
  tensor::init_gaussian(w, 0.05, rng);
  tensor::Matrix y;
  for (auto _ : state) {
    sparse::spmm(x, w, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.nnz()) * 64);
}
BENCHMARK(BM_Spmm)->Arg(32)->Arg(128)->Arg(512);

// Threads x sparsity sweep of the parallel spmm. Args: {threads, nnz/row}.
void BM_SpmmParallel(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto nnz_per_row = static_cast<std::size_t>(state.range(1));
  const std::size_t features = 1 << 17;
  const auto x = make_sparse_batch(128, features, nnz_per_row, 1);
  util::Rng rng(2);
  tensor::Matrix w(features, 64);
  tensor::init_gaussian(w, 0.05, rng);
  tensor::Matrix y;
  util::ThreadPool pool(threads);
  const kernels::Context ctx{&pool, threads};
  for (auto _ : state) {
    sparse::spmm(x, w, y, ctx);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.nnz()) * 64);
}
BENCHMARK(BM_SpmmParallel)
    ->Args({1, 16})->Args({1, 100})->Args({1, 400})
    ->Args({2, 100})
    ->Args({4, 16})->Args({4, 100})->Args({4, 400})
    ->Args({8, 16})->Args({8, 100})->Args({8, 400});

void BM_SpmmTranspose(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto x = make_sparse_batch(batch, 8192, 76, 3);
  util::Rng rng(4);
  tensor::Matrix d(batch, 64);
  tensor::init_gaussian(d, 0.05, rng);
  tensor::Matrix g(8192, 64, 0.0f);
  for (auto _ : state) {
    g.fill(0.0f);
    sparse::spmm_t_accumulate(x, d, g);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_SpmmTranspose)->Arg(32)->Arg(128);

// Touched-row gradient backward scatter (key + accumulate), threads x
// sparsity. This is the kernel that replaces the seed's dense zero-fill +
// scatter. Args: {threads, nnz/row}.
void BM_SparseGradientAccumulate(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto nnz_per_row = static_cast<std::size_t>(state.range(1));
  const std::size_t features = 1 << 17;
  const auto x = make_sparse_batch(128, features, nnz_per_row, 3);
  util::Rng rng(4);
  tensor::Matrix d(128, 64);
  tensor::init_gaussian(d, 0.05, rng);
  util::ThreadPool pool(threads);
  const kernels::Context ctx{&pool, threads};
  sparse::SparseGradient g;
  for (auto _ : state) {
    g.reset(x, 64);
    g.accumulate_spmm_t(x, d, ctx);
    benchmark::DoNotOptimize(g.values().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.nnz()) * 64);
}
BENCHMARK(BM_SparseGradientAccumulate)
    ->Args({1, 16})->Args({1, 100})->Args({1, 400})
    ->Args({4, 100})
    ->Args({8, 16})->Args({8, 100})->Args({8, 400});

void BM_DenseGemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  tensor::Matrix a(128, 64), b(64, n), c;
  tensor::init_gaussian(a, 0.05, rng);
  tensor::init_gaussian(b, 0.05, rng);
  for (auto _ : state) {
    tensor::gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 128 * 64 *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DenseGemm)->Arg(256)->Arg(1024)->Arg(4096);

// Blocked parallel GEMM. Args: {threads, n}.
void BM_DenseGemmParallel(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  util::Rng rng(5);
  tensor::Matrix a(128, 64), b(64, n), c;
  tensor::init_gaussian(a, 0.05, rng);
  tensor::init_gaussian(b, 0.05, rng);
  util::ThreadPool pool(threads);
  const kernels::Context ctx{&pool, threads};
  for (auto _ : state) {
    tensor::gemm(a, b, c, ctx);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 128 * 64 *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DenseGemmParallel)
    ->Args({2, 1024})->Args({4, 1024})->Args({8, 1024})->Args({8, 4096});

void BM_SoftmaxRows(benchmark::State& state) {
  util::Rng rng(6);
  tensor::Matrix logits(128, static_cast<std::size_t>(state.range(0)));
  tensor::init_gaussian(logits, 1.0, rng);
  tensor::Matrix scratch = logits;
  for (auto _ : state) {
    scratch = logits;
    tensor::softmax_rows(scratch);
    benchmark::DoNotOptimize(scratch.data());
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(1024)->Arg(4096);

void BM_FullSgdStep(benchmark::State& state) {
  nn::MlpConfig cfg;
  cfg.num_features = 8192;
  cfg.hidden = 64;
  cfg.num_classes = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  nn::MlpModel model(cfg);
  model.init(rng);
  const auto x = make_sparse_batch(128, cfg.num_features, 76, 8);
  const auto y = make_labels(128, cfg.num_classes, 7);
  nn::Workspace ws;
  for (auto _ : state) {
    nn::sgd_step(model, x, y, 0.01f, ws);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_FullSgdStep)->Arg(1024)->Arg(2048);

// XML-like shape (Table 1 regime): >= 100k features at <= 0.1% density.
constexpr std::size_t kXmlFeatures = 1 << 21;  // 2097152 (Wiki-500K scale)
constexpr std::size_t kXmlNnzPerRow = 100;     // 0.0048% density
constexpr std::size_t kXmlClasses = 512;
constexpr std::size_t kXmlBatch = 128;

// End-to-end sgd_step on the sparsity-aware backend. Args: {threads}.
void BM_SgdStepXml(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  nn::MlpConfig cfg;
  cfg.num_features = kXmlFeatures;
  cfg.hidden = 64;
  cfg.num_classes = kXmlClasses;
  util::Rng rng(7);
  nn::MlpModel model(cfg);
  model.init(rng);
  const auto x = make_sparse_batch(kXmlBatch, cfg.num_features,
                                   kXmlNnzPerRow, 8);
  const auto y = make_labels(kXmlBatch, cfg.num_classes, 9);
  nn::Workspace ws;
  util::ThreadPool pool(threads);
  if (threads > 1) ws.ctx = kernels::Context{&pool, threads};
  for (auto _ : state) {
    nn::sgd_step(model, x, y, 0.01f, ws);
  }
  state.SetItemsProcessed(state.iterations() * kXmlBatch);
}
BENCHMARK(BM_SgdStepXml)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The seed implementation's hot path, kept here as the speedup baseline: a
// dense F x H layer-1 gradient that is zero-filled every step, serial
// kernels throughout, and a per-update sort/unique of the batch columns.
void BM_SgdStepXmlSeedReference(benchmark::State& state) {
  nn::MlpConfig cfg;
  cfg.num_features = kXmlFeatures;
  cfg.hidden = 64;
  cfg.num_classes = kXmlClasses;
  util::Rng rng(7);
  nn::MlpModel model(cfg);
  model.init(rng);
  const auto x = make_sparse_batch(kXmlBatch, cfg.num_features,
                                   kXmlNnzPerRow, 8);
  const auto y = make_labels(kXmlBatch, cfg.num_classes, 9);

  const std::size_t h = cfg.hidden;
  tensor::Matrix h_pre, hact, probs, delta2, delta1;
  tensor::Matrix grad_w1(cfg.num_features, h, 0.0f);
  tensor::Matrix grad_w2;
  std::vector<float> grad_b1, grad_b2;
  const float lr = 0.01f;

  for (auto _ : state) {
    // Forward.
    sparse::spmm(x, model.w1(), h_pre);
    tensor::add_row_bias(h_pre, {model.b1().data(), model.b1().size()});
    hact = h_pre;
    tensor::relu(hact);
    tensor::gemm(hact, model.w2(), probs);
    tensor::add_row_bias(probs, {model.b2().data(), model.b2().size()});
    tensor::softmax_rows(probs);
    // Backward.
    delta2 = probs;
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const auto labels = y.row_cols(r);
      const float share = 1.0f / static_cast<float>(labels.size());
      float* dd = delta2.data() + r * cfg.num_classes;
      for (auto c : labels) dd[c] -= share;
    }
    tensor::scale(delta2.flat(), 1.0f / static_cast<float>(x.rows()));
    tensor::gemm_at_b(hact, delta2, grad_w2);
    grad_b2.assign(cfg.num_classes, 0.0f);
    tensor::column_sums(delta2, {grad_b2.data(), grad_b2.size()});
    tensor::gemm_a_bt(delta2, model.w2(), delta1);
    tensor::relu_backward(h_pre, delta1);
    grad_w1.fill(0.0f);  // the O(F x H) per-step cost the backend removes
    sparse::spmm_t_accumulate(x, delta1, grad_w1);
    grad_b1.assign(h, 0.0f);
    tensor::column_sums(delta1, {grad_b1.data(), grad_b1.size()});
    // Update (seed apply_gradients: re-sorts the batch columns).
    std::vector<std::uint32_t> touched(x.col_idx());
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    for (auto row : touched) {
      float* w = model.w1().data() + static_cast<std::size_t>(row) * h;
      const float* g = grad_w1.data() + static_cast<std::size_t>(row) * h;
      for (std::size_t j = 0; j < h; ++j) w[j] -= lr * g[j];
    }
    tensor::axpy(-lr, {grad_b1.data(), grad_b1.size()},
                 {model.b1().data(), model.b1().size()});
    tensor::axpy(-lr, grad_w2.flat(), model.w2().flat());
    tensor::axpy(-lr, {grad_b2.data(), grad_b2.size()},
                 {model.b2().data(), model.b2().size()});
    benchmark::DoNotOptimize(model.w1().data());
  }
  state.SetItemsProcessed(state.iterations() * kXmlBatch);
}
BENCHMARK(BM_SgdStepXmlSeedReference)->Unit(benchmark::kMillisecond);

// Tiny-shape smoke benchmark: the `bench-smoke` ctest label runs only this,
// so the perf plumbing (threaded kernels included) is exercised on every
// tier-1 run without paying for the full sweep.
void BM_SmokeSgdStep(benchmark::State& state) {
  nn::MlpConfig cfg;
  cfg.num_features = 256;
  cfg.hidden = 16;
  cfg.num_classes = 32;
  util::Rng rng(7);
  nn::MlpModel model(cfg);
  model.init(rng);
  const auto x = make_sparse_batch(16, cfg.num_features, 8, 8);
  const auto y = make_labels(16, cfg.num_classes, 9);
  nn::Workspace ws;
  util::ThreadPool pool(2);
  ws.ctx = kernels::Context{&pool, 2};
  ws.ctx.serial_grain = 0;  // force the threaded path even at this size
  for (auto _ : state) {
    nn::sgd_step(model, x, y, 0.01f, ws);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_SmokeSgdStep);

// ---- Per-ISA kernel rows -------------------------------------------------
//
// The same serial kernel at the same shape, once per ISA the host supports,
// so BENCH_kernels.json carries a scalar/avx2/avx512 column for each
// vectorized hot path (the ISA is the benchmark name suffix). Registered
// from main() via register_isa_benchmarks() because the supported set is
// only known at runtime. Each row pins the global dispatch table to its
// ISA for the duration of the run and restores the previous table after.

class IsaScope {
 public:
  explicit IsaScope(vec::Isa isa) : prev_(vec::active_isa()) {
    vec::set_isa(isa);
  }
  ~IsaScope() { vec::set_isa(prev_); }

 private:
  vec::Isa prev_;
};

// spmm at hidden 64 — the forward hot path (row-major axpy inner loop).
void run_spmm_isa(benchmark::State& state, vec::Isa isa) {
  const IsaScope scope(isa);
  const auto x = make_sparse_batch(128, 8192, 76, 1);
  util::Rng rng(2);
  tensor::Matrix w(8192, 64);
  tensor::init_gaussian(w, 0.05, rng);
  tensor::Matrix y;
  for (auto _ : state) {
    sparse::spmm(x, w, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.nnz()) * 64);
}

// spmm_t_accumulate at hidden 64 — the backward scatter.
void run_spmm_t_isa(benchmark::State& state, vec::Isa isa) {
  const IsaScope scope(isa);
  const auto x = make_sparse_batch(128, 8192, 76, 3);
  util::Rng rng(4);
  tensor::Matrix d(128, 64);
  tensor::init_gaussian(d, 0.05, rng);
  tensor::Matrix g(8192, 64, 0.0f);
  for (auto _ : state) {
    g.fill(0.0f);
    sparse::spmm_t_accumulate(x, d, g);
    benchmark::DoNotOptimize(g.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.nnz()) * 64);
}

// Dense gemm 128x64 * 64x1024 — broadcast-axpy inner loop.
void run_gemm_isa(benchmark::State& state, vec::Isa isa) {
  const IsaScope scope(isa);
  util::Rng rng(5);
  tensor::Matrix a(128, 64), b(64, 1024), c;
  tensor::init_gaussian(a, 0.05, rng);
  tensor::init_gaussian(b, 0.05, rng);
  for (auto _ : state) {
    tensor::gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 128 * 64 * 1024);
}

// Fused dense merge + momentum over a 1M-float segment, 4 replicas.
void run_merge_isa(benchmark::State& state, vec::Isa isa) {
  const IsaScope scope(isa);
  const std::size_t len = 1 << 20;
  util::Rng rng(6);
  std::vector<std::vector<float>> replicas(4, std::vector<float>(len));
  for (auto& r : replicas) {
    for (auto& v : r) v = static_cast<float>(rng.uniform(-1, 1));
  }
  std::vector<float> global(replicas[0]), prev(len, 0.0f);
  std::vector<const float*> ptrs;
  for (const auto& r : replicas) ptrs.push_back(r.data());
  const std::vector<double> weights{0.3, 0.3, 0.2, 0.2};
  core::MergeUpdate u;
  u.weights = weights;
  u.gamma = 0.9;
  u.momentum = true;
  const kernels::Context ctx{};
  for (auto _ : state) {
    core::merge_segment(ptrs, len, u, global, prev, 1, ctx);
    benchmark::DoNotOptimize(global.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(len));
}

// Touched-row SGD apply (w = keep*w - lr*g over packed rows, hidden 64).
void run_sgd_apply_isa(benchmark::State& state, vec::Isa isa) {
  const IsaScope scope(isa);
  const std::size_t features = 1 << 17;
  const auto x = make_sparse_batch(128, features, 100, 3);
  util::Rng rng(4);
  tensor::Matrix d(128, 64), w(features, 64);
  tensor::init_gaussian(d, 0.05, rng);
  tensor::init_gaussian(w, 0.05, rng);
  const kernels::Context ctx{};
  sparse::SparseGradient g;
  g.reset(x, 64);
  g.accumulate_spmm_t(x, d, ctx);
  for (auto _ : state) {
    g.apply_to(w, 0.01f, 1.0f, ctx);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(g.num_rows()) * 64);
}

void register_isa_benchmarks() {
  for (const vec::Isa isa :
       {vec::Isa::kScalar, vec::Isa::kAvx2, vec::Isa::kAvx512}) {
    if (!vec::isa_supported(isa)) continue;
    const std::string tag = vec::isa_name(isa);
    benchmark::RegisterBenchmark(("BM_SpmmIsa/" + tag).c_str(),
                                 run_spmm_isa, isa);
    benchmark::RegisterBenchmark(("BM_SpmmTransposeIsa/" + tag).c_str(),
                                 run_spmm_t_isa, isa);
    benchmark::RegisterBenchmark(("BM_DenseGemmIsa/" + tag).c_str(),
                                 run_gemm_isa, isa);
    benchmark::RegisterBenchmark(("BM_MergeSegmentIsa/" + tag).c_str(),
                                 run_merge_isa, isa);
    benchmark::RegisterBenchmark(("BM_SgdApplyIsa/" + tag).c_str(),
                                 run_sgd_apply_isa, isa);
  }
}

void BM_SimHashSignature(benchmark::State& state) {
  util::Rng rng(9);
  slide::SimHash hasher(64, 6, 8, rng);
  std::vector<float> v(64);
  for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
  for (auto _ : state) {
    for (std::size_t t = 0; t < hasher.tables(); ++t) {
      benchmark::DoNotOptimize(hasher.signature(t, v));
    }
  }
}
BENCHMARK(BM_SimHashSignature);

void BM_WeightedAllReduceNumerics(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  util::Rng rng(10);
  std::vector<std::vector<float>> replicas(4, std::vector<float>(len));
  for (auto& r : replicas) {
    for (auto& v : r) v = static_cast<float>(rng.uniform(-1, 1));
  }
  const std::vector<double> weights{0.3, 0.3, 0.2, 0.2};
  comm::AllReducer reducer(comm::AllReduceAlgo::kRingMultiStream,
                           sim::default_links(4), 4);
  for (auto _ : state) {
    std::vector<std::span<float>> views;
    for (auto& r : replicas) views.emplace_back(r.data(), r.size());
    reducer.weighted_average(views, weights);
    benchmark::DoNotOptimize(replicas[0].data());
  }
  state.SetBytesProcessed(state.iterations() * 4 *
                          static_cast<std::int64_t>(len) * sizeof(float));
}
BENCHMARK(BM_WeightedAllReduceNumerics)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

// Custom main: unless the caller chose an output file, record the run to
// BENCH_kernels.json (the perf-trajectory artifact tracked across PRs).
// `--isa=scalar|avx2|avx512` pins the default dispatch table (the per-ISA
// rows still sweep every supported ISA); HETERO_ISA does the same via the
// environment. The recorded JSON context carries the build type and the
// default ISA so a result file is self-describing.
int main(int argc, char** argv) {
  std::vector<char*> args;
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--isa=", 6) == 0) {
      hetero::vec::set_isa_from_string(argv[i] + 6);
      continue;  // ours, not google-benchmark's
    }
    args.push_back(argv[i]);
  }
  static char out_flag[] = "--benchmark_out=BENCH_kernels.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  bool has_out = false;
  for (const char* a : args) {
    if (std::strncmp(a, "--benchmark_out", 15) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  register_isa_benchmarks();
  benchmark::AddCustomContext("hetero_build_type", hetero::bench::build_type());
  benchmark::AddCustomContext(
      "hetero_default_isa",
      hetero::vec::isa_name(hetero::vec::active_isa()));
  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
