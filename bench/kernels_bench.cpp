// google-benchmark microbenchmarks of the real CPU kernels backing the
// framework: sparse products, dense GEMM, softmax, SimHash, and the numeric
// all-reduce path. These measure actual wall-clock (not virtual time) and
// exist to keep the reference kernels honest as the code evolves.
#include <benchmark/benchmark.h>

#include "comm/allreduce.h"
#include "nn/train_step.h"
#include "sim/profiles.h"
#include "slide/simhash.h"
#include "sparse/ops.h"
#include "tensor/ops.h"
#include "util/rng.h"

using namespace hetero;

namespace {

sparse::CsrMatrix make_sparse_batch(std::size_t rows, std::size_t cols,
                                    std::size_t nnz_per_row,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  sparse::CsrBuilder b(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<sparse::Entry> entries;
    for (std::size_t i = 0; i < nnz_per_row; ++i) {
      entries.push_back({static_cast<std::uint32_t>(rng.next_below(cols)),
                         static_cast<float>(rng.uniform(0.1, 1.0))});
    }
    b.add_row(std::move(entries));
  }
  return b.build();
}

void BM_Spmm(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto x = make_sparse_batch(batch, 8192, 76, 1);
  util::Rng rng(2);
  tensor::Matrix w(8192, 64);
  tensor::init_gaussian(w, 0.05, rng);
  tensor::Matrix y;
  for (auto _ : state) {
    sparse::spmm(x, w, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(x.nnz()) * 64);
}
BENCHMARK(BM_Spmm)->Arg(32)->Arg(128)->Arg(512);

void BM_SpmmTranspose(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto x = make_sparse_batch(batch, 8192, 76, 3);
  util::Rng rng(4);
  tensor::Matrix d(batch, 64);
  tensor::init_gaussian(d, 0.05, rng);
  tensor::Matrix g(8192, 64, 0.0f);
  for (auto _ : state) {
    g.fill(0.0f);
    sparse::spmm_t_accumulate(x, d, g);
    benchmark::DoNotOptimize(g.data());
  }
}
BENCHMARK(BM_SpmmTranspose)->Arg(32)->Arg(128);

void BM_DenseGemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  tensor::Matrix a(128, 64), b(64, n), c;
  tensor::init_gaussian(a, 0.05, rng);
  tensor::init_gaussian(b, 0.05, rng);
  for (auto _ : state) {
    tensor::gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 128 * 64 *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DenseGemm)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SoftmaxRows(benchmark::State& state) {
  util::Rng rng(6);
  tensor::Matrix logits(128, static_cast<std::size_t>(state.range(0)));
  tensor::init_gaussian(logits, 1.0, rng);
  tensor::Matrix scratch = logits;
  for (auto _ : state) {
    scratch = logits;
    tensor::softmax_rows(scratch);
    benchmark::DoNotOptimize(scratch.data());
  }
}
BENCHMARK(BM_SoftmaxRows)->Arg(1024)->Arg(4096);

void BM_FullSgdStep(benchmark::State& state) {
  nn::MlpConfig cfg;
  cfg.num_features = 8192;
  cfg.hidden = 64;
  cfg.num_classes = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  nn::MlpModel model(cfg);
  model.init(rng);
  const auto x = make_sparse_batch(128, cfg.num_features, 76, 8);
  sparse::CsrBuilder yb(cfg.num_classes);
  for (std::size_t r = 0; r < 128; ++r) {
    yb.add_indicator_row({static_cast<std::uint32_t>(
        rng.next_below(cfg.num_classes))});
  }
  const auto y = yb.build();
  nn::Workspace ws;
  for (auto _ : state) {
    nn::sgd_step(model, x, y, 0.01f, ws);
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_FullSgdStep)->Arg(1024)->Arg(2048);

void BM_SimHashSignature(benchmark::State& state) {
  util::Rng rng(9);
  slide::SimHash hasher(64, 6, 8, rng);
  std::vector<float> v(64);
  for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
  for (auto _ : state) {
    for (std::size_t t = 0; t < hasher.tables(); ++t) {
      benchmark::DoNotOptimize(hasher.signature(t, v));
    }
  }
}
BENCHMARK(BM_SimHashSignature);

void BM_WeightedAllReduceNumerics(benchmark::State& state) {
  const auto len = static_cast<std::size_t>(state.range(0));
  util::Rng rng(10);
  std::vector<std::vector<float>> replicas(4, std::vector<float>(len));
  for (auto& r : replicas) {
    for (auto& v : r) v = static_cast<float>(rng.uniform(-1, 1));
  }
  const std::vector<double> weights{0.3, 0.3, 0.2, 0.2};
  comm::AllReducer reducer(comm::AllReduceAlgo::kRingMultiStream,
                           sim::default_links(4), 4);
  for (auto _ : state) {
    std::vector<std::span<float>> views;
    for (auto& r : replicas) views.emplace_back(r.data(), r.size());
    reducer.weighted_average(views, weights);
    benchmark::DoNotOptimize(replicas[0].data());
  }
  state.SetBytesProcessed(state.iterations() * 4 *
                          static_cast<std::int64_t>(len) * sizeof(float));
}
BENCHMARK(BM_WeightedAllReduceNumerics)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
