// Table I: experimental datasets for XML classification.
//
// Regenerates the dataset-characteristics table for the synthetic stand-ins
// of Amazon-670k and Delicious-200k, at both the "small" profile scale
// (what the repository ships) and the bench scale the figures use. Also
// reports the nnz-variation statistics that motivate the paper's sparse-data
// heterogeneity argument (Section I).
#include <iostream>

#include "bench_common.h"
#include "data/dataset_stats.h"

using namespace hetero;

int main() {
  std::printf("=== Table I: experimental datasets (synthetic stand-ins) ===\n");
  std::printf(
      "paper reference: Amazon-670k  135,909 features  670,091 classes  "
      "490,449 train  153,025 test   76 f/sample   5 c/sample\n"
      "                 Delicious-200k 782,585 features 205,443 classes  "
      "196,606 train  100,095 test  302 f/sample  75 c/sample\n\n");

  data::print_stats_header(std::cout);
  for (const auto& cfg :
       {data::amazon670k_small(), data::delicious200k_small(),
        bench::bench_amazon(), bench::bench_delicious()}) {
    const auto dataset = data::generate_xml_dataset(cfg);
    data::print_stats_row(std::cout, data::compute_stats(dataset, 128));
  }

  std::printf(
      "\nColumns `avg f/sample` and `avg c/sample` match the paper's Table I "
      "targets;\nnnz CV and batch nnz max/min quantify the per-sample and "
      "per-batch sparsity variation\nthat drives GPU-time variance "
      "(Section I).\n");
  return 0;
}
