// Fault-tolerance benchmark: time-to-accuracy under elastic membership.
//
// Trains the adaptive trainer three times on the same dataset, seed, and
// hyperparameters:
//
//   healthy      — no faults
//   one-crash    — one replica crashes ~35% into the healthy run's span and
//                  never returns; survivors absorb its share of the merge
//   crash-rejoin — the same crash, but the replica rejoins ~65% in, seeded
//                  from the global model with a reset update count
//
// and reports best top-1, time-to-accuracy at a shared target, and the fault
// counters for each. Results are written to BENCH_fault.json (override with
// --out). The interesting comparison is the degradation ordering: healthy
// <= crash-rejoin <= one-crash in time-to-accuracy, with the rejoin run
// recovering most of the crash's slowdown.
//
//   ./build/bench/fault_bench            # full shapes
//   ./build/bench/fault_bench --smoke    # tiny shapes for CI (fault-smoke)
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/adaptive_sgd.h"
#include "core/result_io.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "sim/profiles.h"

using namespace hetero;

namespace {

struct NamedRun {
  std::string name;
  core::TrainResult result;
};

core::TrainResult run_with_plan(const data::XmlDataset& dataset,
                                const core::TrainerConfig& cfg,
                                std::size_t gpus,
                                const fault::FaultPlan& plan) {
  core::AdaptiveSgdTrainer trainer(dataset, cfg,
                                   sim::v100_heterogeneous(gpus));
  if (!plan.empty()) fault::FaultInjector(plan).arm(trainer.runtime());
  return trainer.train();
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const auto gpus = static_cast<std::size_t>(args.get_int("gpus", 4));
  const auto out_path = args.get_string("out", "BENCH_fault.json");
  if (args.report_unknown()) return 1;

  auto data_cfg = bench::bench_amazon();
  auto cfg = bench::bench_trainer_config(8);
  cfg.learning_rate = 0.25;
  if (smoke) {
    data_cfg.num_train = 3'000;
    data_cfg.num_test = 600;
    cfg.num_megabatches = 4;
    cfg.batches_per_megabatch = 10;
    cfg.batch_max = 64;
    cfg.eval_samples = 300;
  }
  const auto dataset = data::generate_xml_dataset(data_cfg);

  // Healthy baseline first: its span places the crash and rejoin times.
  std::vector<NamedRun> runs;
  runs.push_back(
      {"healthy", run_with_plan(dataset, cfg, gpus, fault::FaultPlan{})});
  const double span = runs[0].result.total_vtime;
  const double crash_at = 0.35 * span;
  const double rejoin_at = 0.65 * span;

  fault::FaultPlan crash_only;
  crash_only.events.push_back(
      {fault::FaultKind::kCrash, 1, crash_at, 0.0, 1.0, 0});
  runs.push_back({"one-crash", run_with_plan(dataset, cfg, gpus, crash_only)});

  fault::FaultPlan crash_rejoin = crash_only;
  crash_rejoin.events.push_back(
      {fault::FaultKind::kJoin, 1, rejoin_at, 0.0, 1.0, 0});
  runs.push_back(
      {"crash-rejoin", run_with_plan(dataset, cfg, gpus, crash_rejoin)});

  // Shared accuracy target: 90% of the worst run's best top-1, so every run
  // reaches it and the virtual-time ordering is meaningful.
  double min_best = 1.0;
  for (const auto& r : runs) min_best = std::min(min_best, r.result.best_top1());
  const double target = 0.9 * min_best;

  std::printf("\n%-14s %10s %10s %12s %8s %8s %10s\n", "scenario",
              "best top1", "final(s)", "tta(s)", "crashes", "joins",
              "degr.merges");
  for (const auto& r : runs) {
    const auto tta = r.result.time_to_accuracy(target);
    std::printf("%-14s %9.2f%% %10.4f %12s %8zu %8zu %10zu\n", r.name.c_str(),
                100 * r.result.best_top1(), r.result.total_vtime,
                tta ? std::to_string(*tta).c_str() : "never",
                r.result.faults.crashes, r.result.faults.joins,
                r.result.faults.degraded_merges);
  }
  std::printf("(target top1 = %.2f%%; crash at %.4fs, rejoin at %.4fs)\n",
              100 * target, crash_at, rejoin_at);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << "{\"bench\":\"fault\",\"gpus\":" << gpus
      << ",\"target_top1\":" << target << ",\"crash_at\":" << crash_at
      << ",\"rejoin_at\":" << rejoin_at << ",\"runs\":[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i > 0) out << ',';
    out << "{\"scenario\":\"" << runs[i].name << "\",";
    const auto tta = runs[i].result.time_to_accuracy(target);
    out << "\"tta\":" << (tta ? std::to_string(*tta) : "null") << ",";
    out << "\"result\":";
    core::write_result_json(out, runs[i].result);
    out << '}';
  }
  out << "]}\n";
  std::printf("results written to %s\n", out_path.c_str());
  return 0;
}
