// Hardware vs statistical efficiency decomposition (Section II:
// "Two factors determine the time-to-accuracy. The first is the number of
// epochs required by SGD, known as statistical efficiency, while the second
// factor is the execution time of an epoch — known as hardware
// efficiency.").
//
// For every method this bench separates the two: samples processed per
// virtual second (hardware efficiency) and data passes needed to reach the
// shared accuracy target (statistical efficiency), whose ratio explains the
// Figure 4/5 time-to-accuracy results.
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace hetero;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto megabatches =
      static_cast<std::size_t>(args.get_int("megabatches", 6));
  const auto gpus = static_cast<std::size_t>(args.get_int("gpus", 4));
  if (args.report_unknown()) return 1;

  const auto dataset = data::generate_xml_dataset(bench::bench_amazon());
  auto cfg = bench::bench_trainer_config(megabatches);
  cfg.learning_rate = 0.25;
  const auto devices = sim::v100_heterogeneous(gpus);

  std::vector<core::TrainResult> results;
  for (const auto method :
       {core::Method::kAdaptive, core::Method::kElastic, core::Method::kSync,
        core::Method::kCrossbow, core::Method::kAsync}) {
    results.push_back(
        core::make_trainer(method, dataset, cfg, devices)->train());
  }
  {
    auto slide_cfg = bench::bench_slide_config(cfg, dataset.train.labels.cols());
    results.push_back(slide::SlideTrainer(dataset, slide_cfg).train());
  }

  double min_best = 1.0;
  for (const auto& r : results) min_best = std::min(min_best, r.best_top1());
  const double target = 0.8 * min_best;

  std::printf(
      "=== Hardware vs statistical efficiency (%zu GPUs, amazon-shaped, "
      "target top1 %.1f%%) ===\n\n",
      gpus, 100 * target);
  std::printf("%-14s | %14s | %14s | %12s | %10s\n", "method",
              "hw eff (samp/s)", "stat eff (passes)", "tta(s)", "best top1");
  for (const auto& r : results) {
    const double samples =
        static_cast<double>(r.curve.empty() ? 0 : r.curve.back().samples);
    const double hw = r.total_vtime > 0 ? samples / r.total_vtime : 0.0;
    const auto passes = r.passes_to_accuracy(target);
    const auto tta = r.time_to_accuracy(target);
    std::printf("%-14s | %14.0f | %17s | %12s | %9.2f%%\n", r.method.c_str(),
                hw, passes ? std::to_string(*passes).c_str() : "never",
                tta ? std::to_string(*tta).c_str() : "never",
                100 * r.best_top1());
  }
  std::printf(
      "\nReading: time-to-accuracy = statistical / hardware efficiency. "
      "SLIDE tops the\nstatistical column (one update per sample) but its "
      "samples/s is orders of magnitude\nlower; async tops hardware "
      "efficiency (no barriers) but staleness costs statistical\n"
      "efficiency. Adaptive SGD wins the product.\n");
  return 0;
}
