// Online-serving benchmark: train-while-serve under Poisson traffic.
//
// Phase 1 (traffic): an adaptive training run publishes a snapshot at every
// merge boundary while a client thread fires test-row queries at the server
// with exponential interarrival times (Poisson process at --qps). Records
// p50/p99 service latency, achieved QPS, queue/wave shape, sheds, and the
// model-freshness lag observed per response.
//
// Phase 2 (recall): on the final snapshot, every recall-probe query is
// answered twice — exact output-layer scan and SLIDE LSH candidates — and
// scored as |exact ∩ lsh| / k. This is measured single-threaded after the
// traffic run so the number is deterministic for a given model state.
//
// Results land in BENCH_serve.json (override with --out).
//
//   ./build-bench/bench/serve_bench            # full shapes
//   ./build-bench/bench/serve_bench --smoke    # tiny shapes for CI
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/adaptive_sgd.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "sim/profiles.h"
#include "util/stats.h"

using namespace hetero;

namespace {

serve::Request row_request(const sparse::CsrMatrix& features,
                           std::size_t row) {
  serve::Request req;
  const auto cols = features.row_cols(row);
  const auto vals = features.row_values(row);
  req.features.reserve(cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    req.features.push_back({cols[i], vals[i]});
  }
  return req;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const auto out_path = args.get_string("out", "BENCH_serve.json");
  const auto qps = args.get_double("qps", 4000.0);
  auto requests = static_cast<std::size_t>(args.get_int("requests", 4000));
  const auto workers = static_cast<std::size_t>(args.get_int("workers", 4));
  const auto max_batch =
      static_cast<std::size_t>(args.get_int("max-batch", 8));
  const auto latency_budget_us =
      static_cast<std::uint64_t>(args.get_int("latency-budget-us", 2000));
  const auto queue_cap =
      static_cast<std::size_t>(args.get_int("queue-cap", 1024));
  const auto topk = static_cast<std::size_t>(args.get_int("topk", 5));
  const auto gpus = static_cast<std::size_t>(args.get_int("gpus", 3));
  auto megabatches =
      static_cast<std::size_t>(args.get_int("megabatches", 6));
  auto recall_queries =
      static_cast<std::size_t>(args.get_int("recall-queries", 256));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 12345));
  if (args.report_unknown()) return 1;

  auto data_cfg = bench::bench_amazon();
  auto cfg = bench::bench_trainer_config(megabatches);
  if (smoke) {
    data_cfg.num_train = 3'000;
    data_cfg.num_test = 600;
    cfg.num_megabatches = megabatches = 3;
    cfg.batches_per_megabatch = 10;
    cfg.batch_max = 64;
    cfg.eval_samples = 300;
    requests = std::min<std::size_t>(requests, 400);
    recall_queries = std::min<std::size_t>(recall_queries, 64);
  }
  data_cfg.seed = seed;
  cfg.seed = seed;
  const auto dataset = data::generate_xml_dataset(data_cfg);
  const auto& queries = dataset.test.features;

  // --- phase 1: train-while-serve under Poisson traffic --------------------
  serve::SnapshotStore store;
  core::AdaptiveSgdTrainer trainer(dataset, cfg,
                                   sim::v100_heterogeneous(gpus, 0.32));
  store.publish(trainer.runtime().global_model(), 0.0);
  trainer.runtime().set_publish_hook(
      [&store](const nn::Model& m, double vtime) { store.publish(m, vtime); });

  serve::ServerConfig scfg;
  scfg.workers = workers;
  scfg.max_batch = max_batch;
  scfg.queue_cap = queue_cap;
  scfg.latency_budget_us = latency_budget_us;
  scfg.topk = topk;
  scfg.use_lsh = false;  // exact path under traffic; LSH measured in phase 2
  serve::Server server(store, scfg);

  std::thread training([&trainer] { trainer.train(); });

  util::Rng traffic_rng(seed ^ 0x5e57e);
  std::vector<std::future<serve::Response>> futures;
  futures.reserve(requests);
  const auto traffic_start = std::chrono::steady_clock::now();
  auto next_send = traffic_start;
  for (std::size_t r = 0; r < requests; ++r) {
    // Exponential interarrival: a Poisson arrival process at `qps`.
    const double gap_s =
        -std::log(1.0 - traffic_rng.next_double()) / std::max(qps, 1.0);
    next_send += std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(gap_s));
    std::this_thread::sleep_until(next_send);
    futures.push_back(server.submit(row_request(queries, r % queries.rows())));
  }

  std::vector<double> service_us, queue_us, freshness, wave_sizes;
  std::uint64_t first_version = 0, last_version = 0;
  std::size_t shed = 0;
  for (auto& f : futures) {
    const auto resp = f.get();
    if (resp.shed) {
      ++shed;
      continue;
    }
    if (first_version == 0) first_version = resp.snapshot_version;
    last_version = resp.snapshot_version;
    service_us.push_back(static_cast<double>(resp.service_us));
    queue_us.push_back(static_cast<double>(resp.queue_us));
    freshness.push_back(resp.freshness_lag);
    wave_sizes.push_back(static_cast<double>(resp.wave_size));
  }
  const double traffic_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    traffic_start)
          .count();
  training.join();
  server.stop();
  const auto stats = server.stats();

  const double p50 = util::quantile(service_us, 0.5);
  const double p99 = util::quantile(service_us, 0.99);
  const double achieved_qps =
      traffic_seconds > 0.0
          ? static_cast<double>(service_us.size()) / traffic_seconds
          : 0.0;
  const double max_freshness =
      freshness.empty() ? 0.0
                        : *std::max_element(freshness.begin(), freshness.end());

  std::printf(
      "traffic: %zu served, %zu shed, p50 %.0fus p99 %.0fus, %.0f qps "
      "achieved (%.0f offered), mean wave %.2f, versions %llu..%llu\n",
      service_us.size(), shed, p50, p99, achieved_qps, qps,
      mean(wave_sizes), static_cast<unsigned long long>(first_version),
      static_cast<unsigned long long>(last_version));
  std::printf("freshness lag: mean %.4fs max %.4fs (virtual time)\n",
              mean(freshness), max_freshness);

  // --- phase 2: exact-vs-LSH top-k recall on the final snapshot ------------
  const auto snap = store.current();
  serve::QueryScratch exact_scratch, lsh_scratch;
  std::vector<serve::ScoredLabel> exact_topk, lsh_topk;
  std::vector<double> recalls;
  std::size_t fallback_rows = 0;
  for (std::size_t q = 0; q < recall_queries; ++q) {
    const std::size_t row = q % queries.rows();
    sparse::CsrBuilder builder(queries.cols());
    builder.add_row(row_request(queries, row).features);
    const auto x = builder.build();
    snap->forward_hidden(x, exact_scratch);
    snap->score_output(exact_scratch);
    snap->topk_exact(exact_scratch, 0, topk, exact_topk);
    snap->forward_hidden(x, lsh_scratch);
    if (!snap->topk_lsh(0, topk, lsh_scratch, lsh_topk)) ++fallback_rows;
    std::size_t hits = 0;
    for (const auto& e : exact_topk) {
      for (const auto& l : lsh_topk) {
        if (l.label == e.label) {
          ++hits;
          break;
        }
      }
    }
    recalls.push_back(static_cast<double>(hits) /
                      static_cast<double>(std::max<std::size_t>(1, topk)));
  }
  const double mean_recall = mean(recalls);
  const double min_recall =
      recalls.empty() ? 0.0 : *std::min_element(recalls.begin(), recalls.end());
  std::printf(
      "recall@%zu over %zu queries: mean %.4f min %.4f (%zu exact fallbacks)\n",
      topk, recall_queries, mean_recall, min_recall, fallback_rows);

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  out << "{\"bench\":\"serve\",\"smoke\":" << (smoke ? "true" : "false")
      << ",\"gpus\":" << gpus << ",\"megabatches\":" << megabatches
      << ",\"workers\":" << workers << ",\"max_batch\":" << max_batch
      << ",\"latency_budget_us\":" << latency_budget_us
      << ",\"queue_cap\":" << queue_cap << ",\"topk\":" << topk
      << ",\"offered_qps\":" << qps << ",\"requests\":" << requests
      << ",\"traffic\":{\"served\":" << service_us.size()
      << ",\"shed\":" << shed << ",\"p50_us\":" << p50
      << ",\"p99_us\":" << p99 << ",\"queue_p50_us\":"
      << util::quantile(queue_us, 0.5)
      << ",\"achieved_qps\":" << achieved_qps
      << ",\"mean_wave\":" << mean(wave_sizes)
      << ",\"waves\":" << stats.waves
      << ",\"first_version\":" << first_version
      << ",\"last_version\":" << last_version
      << ",\"freshness_mean_vs\":" << mean(freshness)
      << ",\"freshness_max_vs\":" << max_freshness << "}"
      << ",\"recall\":{\"queries\":" << recall_queries
      << ",\"mean\":" << mean_recall << ",\"min\":" << min_recall
      << ",\"exact_fallbacks\":" << fallback_rows << "}}\n";
  std::printf("results written to %s\n", out_path.c_str());

  // Recall is an acceptance bar (>= 0.95 at the default L/K), so fail the
  // smoke test loudly rather than recording a silent regression.
  if (mean_recall < 0.95) {
    std::fprintf(stderr, "FAIL: mean recall %.4f < 0.95\n", mean_recall);
    return 1;
  }
  return 0;
}
