// Figure 5: scalability of Adaptive SGD vs the SLIDE CPU baseline — now
// including the multi-node hierarchy.
//
//   (a) time-to-accuracy: Adaptive SGD on {1, 2, 4} GPUs and SLIDE on the
//       32-thread CPU, same sample budget, accuracy vs virtual wall-clock.
//   (b) statistical efficiency: the same runs plotted against data passes
//       ("epochs") instead of time.
//   (c) node-count series: the same GPU budget spread over {1, 2, 4} nodes
//       (two-level merge: intra-node ring + chunked inter-node ring), plus
//       a 2-node cluster with a slow CPU compute replica absorbed by the
//       adaptive batch scaler.
//
// Expected shape (paper + hierarchy): every GPU configuration beats SLIDE
// on time-to-accuracy; more GPUs => faster. Spreading a fixed GPU budget
// across nodes keeps accuracy bit-identical (the merged model does not
// depend on topology) while comm time grows with the network crossings.
//
// --smoke runs a tiny single-dataset shape for CI.
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"

using namespace hetero;

namespace {

struct NodeSweepPoint {
  std::size_t nodes = 1;
  std::size_t gpus_per_node = 1;
  std::size_t cpu_replicas = 0;
};

void append_rows(util::CsvWriter& csv, const core::TrainResult& r) {
  for (const auto& p : r.curve) {
    csv.row({r.dataset, r.method, std::to_string(r.num_gpus),
             std::to_string(r.num_nodes), std::to_string(r.cpu_replicas),
             std::to_string(p.vtime), std::to_string(p.samples),
             std::to_string(p.passes), std::to_string(p.top1),
             std::to_string(p.test_loss)});
  }
}

std::string label_of(const core::TrainResult& r) {
  if (r.method == "slide-cpu") return "slide-cpu(32t)";
  std::string label = r.method + "x" + std::to_string(r.num_gpus);
  if (r.num_nodes > 1) label += "@" + std::to_string(r.num_nodes) + "n";
  if (r.cpu_replicas > 0) label += "+cpu";
  return label;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const auto megabatches = static_cast<std::size_t>(
      args.get_int("megabatches", smoke ? 3 : 8));
  if (args.report_unknown()) return 1;

  util::CsvWriter csv("fig5_scalability.csv",
                      {"dataset", "method", "gpus", "nodes", "cpus", "vtime",
                       "samples", "passes", "top1", "test_loss"});

  std::vector<std::pair<data::SyntheticXmlConfig, double>> datasets = {
      {bench::bench_amazon(), 0.25}};
  if (!smoke) datasets.push_back({bench::bench_delicious(), 0.25});

  const std::vector<std::size_t> gpu_counts =
      smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4};
  // Fixed GPU budget spread over more nodes, plus a CPU-replica cluster.
  const std::vector<NodeSweepPoint> node_sweep =
      smoke ? std::vector<NodeSweepPoint>{{1, 2, 0}, {2, 1, 0}, {2, 1, 1}}
            : std::vector<NodeSweepPoint>{
                  {1, 4, 0}, {2, 2, 0}, {4, 1, 0}, {2, 2, 1}};

  for (const auto& [data_cfg, lr] : datasets) {
    const auto dataset = data::generate_xml_dataset(data_cfg);
    std::printf("\n=== Figure 5: %s ===\n", dataset.name.c_str());

    std::vector<core::TrainResult> results;
    for (const std::size_t gpus : gpu_counts) {
      auto cfg = bench::bench_trainer_config(megabatches);
      cfg.learning_rate = lr;
      auto trainer = core::make_trainer(core::Method::kAdaptive, dataset, cfg,
                                        sim::v100_heterogeneous(gpus));
      results.push_back(trainer->train());
    }
    if (!smoke) {
      auto gpu_cfg = bench::bench_trainer_config(megabatches);
      gpu_cfg.learning_rate = lr;
      auto slide_cfg =
          bench::bench_slide_config(gpu_cfg, dataset.train.labels.cols());
      results.push_back(slide::SlideTrainer(dataset, slide_cfg).train());
    }
    // (c) node-count series: same adaptive method over the hierarchy.
    for (const auto& point : node_sweep) {
      auto cfg = bench::bench_trainer_config(megabatches);
      cfg.learning_rate = lr;
      cfg.num_nodes = point.nodes;
      cfg.cpu_replicas = point.cpu_replicas;
      // The CPU replica is 10-50x slower; give Algorithm 1 a batch floor
      // deep enough to absorb it.
      if (point.cpu_replicas > 0) cfg.batch_min = 4;
      auto trainer = core::make_trainer(
          core::Method::kAdaptive, dataset, cfg,
          sim::cluster_devices(point.nodes, point.gpus_per_node,
                               point.cpu_replicas));
      results.push_back(trainer->train());
    }

    std::printf("\n(a) time-to-accuracy        (b) statistical efficiency\n");
    for (const auto& r : results) {
      append_rows(csv, r);
      std::printf("\n  %s:\n", label_of(r).c_str());
      std::printf("    %10s %8s %8s\n", "vtime(s)", "passes", "top1");
      for (const auto& p : r.curve) {
        std::printf("    %10.4f %8.2f %7.2f%%\n", p.vtime, p.passes,
                    100.0 * p.top1);
      }
    }

    // Summary: time and passes to a shared accuracy target, plus the comm
    // cost the topology imposed.
    double min_best = 1.0;
    for (const auto& r : results) min_best = std::min(min_best, r.best_top1());
    const double target = 0.8 * min_best;
    std::printf("\n  summary (target top1 = %.1f%%):\n", 100 * target);
    std::printf("  %-20s %12s %14s %10s\n", "config", "tta(s)",
                "passes-to-acc", "comm(s)");
    for (const auto& r : results) {
      const auto tta = r.time_to_accuracy(target);
      const auto pta = r.passes_to_accuracy(target);
      std::printf("  %-20s %12s %14s %10.4f\n", label_of(r).c_str(),
                  tta ? std::to_string(*tta).c_str() : "never",
                  pta ? std::to_string(*pta).c_str() : "never",
                  r.comm_seconds);
    }
  }
  std::printf("\nseries written to fig5_scalability.csv\n");
  return 0;
}
