// Figure 5: scalability of Adaptive SGD vs the SLIDE CPU baseline.
//
//   (a) time-to-accuracy: Adaptive SGD on {1, 2, 4} GPUs and SLIDE on the
//       32-thread CPU, same sample budget, accuracy vs virtual wall-clock.
//   (b) statistical efficiency: the same runs plotted against data passes
//       ("epochs") instead of time.
//
// Expected shape (paper): every GPU configuration beats SLIDE on
// time-to-accuracy (hardware efficiency), while SLIDE needs fewer passes to
// a given accuracy (statistical efficiency) thanks to one model update per
// sample. More GPUs => faster time-to-accuracy.
#include <cstdio>
#include <vector>

#include "bench_common.h"

using namespace hetero;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);
  const auto megabatches =
      static_cast<std::size_t>(args.get_int("megabatches", 8));
  if (args.report_unknown()) return 1;

  util::CsvWriter csv("fig5_scalability.csv",
                      {"dataset", "method", "gpus", "vtime", "samples",
                       "passes", "top1", "test_loss"});

  const std::vector<std::pair<data::SyntheticXmlConfig, double>> datasets = {
      {bench::bench_amazon(), 0.25}, {bench::bench_delicious(), 0.25}};

  for (const auto& [data_cfg, lr] : datasets) {
    const auto dataset = data::generate_xml_dataset(data_cfg);
    std::printf("\n=== Figure 5: %s ===\n", dataset.name.c_str());

    std::vector<core::TrainResult> results;
    for (const std::size_t gpus : {1u, 2u, 4u}) {
      auto cfg = bench::bench_trainer_config(megabatches);
      cfg.learning_rate = lr;
      auto trainer = core::make_trainer(core::Method::kAdaptive, dataset, cfg,
                                        sim::v100_heterogeneous(gpus));
      results.push_back(trainer->train());
    }
    {
      auto gpu_cfg = bench::bench_trainer_config(megabatches);
      gpu_cfg.learning_rate = lr;
      auto slide_cfg =
          bench::bench_slide_config(gpu_cfg, dataset.train.labels.cols());
      results.push_back(slide::SlideTrainer(dataset, slide_cfg).train());
    }

    std::printf("\n(a) time-to-accuracy        (b) statistical efficiency\n");
    for (const auto& r : results) {
      bench::append_curve_csv(csv, r);
      const std::string label =
          r.method == "slide-cpu" ? "slide-cpu(32t)"
                                  : r.method + "x" + std::to_string(r.num_gpus);
      std::printf("\n  %s:\n", label.c_str());
      std::printf("    %10s %8s %8s\n", "vtime(s)", "passes", "top1");
      for (const auto& p : r.curve) {
        std::printf("    %10.4f %8.2f %7.2f%%\n", p.vtime, p.passes,
                    100.0 * p.top1);
      }
    }

    // Summary: time and passes to a shared accuracy target.
    double min_best = 1.0;
    for (const auto& r : results) min_best = std::min(min_best, r.best_top1());
    const double target = 0.8 * min_best;
    std::printf("\n  summary (target top1 = %.1f%%):\n", 100 * target);
    std::printf("  %-16s %12s %14s\n", "config", "tta(s)", "passes-to-acc");
    for (const auto& r : results) {
      const auto tta = r.time_to_accuracy(target);
      const auto pta = r.passes_to_accuracy(target);
      const std::string label =
          r.method == "slide-cpu" ? "slide-cpu(32t)"
                                  : r.method + "x" + std::to_string(r.num_gpus);
      std::printf("  %-16s %12s %14s\n", label.c_str(),
                  tta ? std::to_string(*tta).c_str() : "never",
                  pta ? std::to_string(*pta).c_str() : "never");
    }
  }
  std::printf("\nseries written to fig5_scalability.csv\n");
  return 0;
}
