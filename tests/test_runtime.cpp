#include "core/runtime.h"

#include <gtest/gtest.h>

#include "core/merging.h"
#include "data/synthetic.h"
#include "sim/profiles.h"

namespace hetero::core {
namespace {

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : dataset_(data::generate_xml_dataset(data::tiny_profile())) {}

  TrainerConfig config() const {
    TrainerConfig cfg;
    cfg.hidden = 16;
    cfg.batch_max = 32;
    cfg.batches_per_megabatch = 8;
    cfg.eval_samples = 100;
    cfg.compute_scale = 100.0;
    return cfg;
  }

  data::XmlDataset dataset_;
};

TEST_F(RuntimeTest, ConstructionBroadcastsGlobal) {
  MultiGpuRuntime rt(dataset_, config(), sim::v100_heterogeneous(4));
  ASSERT_EQ(rt.num_gpus(), 4u);
  for (std::size_t g = 0; g < 4; ++g) {
    EXPECT_DOUBLE_EQ(rt.replica(g).squared_distance(rt.global_model()), 0.0);
  }
}

TEST_F(RuntimeTest, ModelConfigFromDataset) {
  MultiGpuRuntime rt(dataset_, config(), sim::v100_heterogeneous(2));
  EXPECT_EQ(rt.model_info().num_features, dataset_.train.features.cols());
  EXPECT_EQ(rt.model_info().num_classes, dataset_.train.labels.cols());
  EXPECT_EQ(rt.model_info().input_cols(), 16u);
}

TEST_F(RuntimeTest, NextBatchDrawsRequestedSize) {
  MultiGpuRuntime rt(dataset_, config(), sim::v100_heterogeneous(2));
  const auto batch = rt.next_batch(17);
  EXPECT_EQ(batch.x.rows(), 17u);
  EXPECT_EQ(batch.y.rows(), 17u);
  EXPECT_EQ(rt.samples_served(), 17u);
}

TEST_F(RuntimeTest, RunUpdateStepAdvancesClockAndModel) {
  MultiGpuRuntime rt(dataset_, config(), sim::v100_heterogeneous(2));
  const auto before = rt.replica(0).to_flat();
  const double t0 = rt.gpu_free_at(0);
  const double finish =
      rt.run_update_step(0, rt.next_batch(32), 0.1, rt.gpu_free_at(0));
  rt.math_barrier();
  EXPECT_GT(finish, t0);
  EXPECT_DOUBLE_EQ(rt.gpu_free_at(0), finish);
  EXPECT_NE(rt.replica(0).to_flat(), before);
  EXPECT_EQ(rt.replica(1).to_flat(), before);  // other replica untouched
}

TEST_F(RuntimeTest, NextFreeGpuPicksEarliest) {
  MultiGpuRuntime rt(dataset_, config(), sim::v100_heterogeneous(3));
  rt.run_update_step(0, rt.next_batch(32), 0.1, 0.0);
  rt.run_update_step(1, rt.next_batch(32), 0.1, 0.0);
  // GPU 2 has done nothing.
  EXPECT_EQ(rt.next_free_gpu(), 2u);
}

TEST_F(RuntimeTest, FasterGpuCompletesIdenticalWorkSooner) {
  auto devices = sim::v100_heterogeneous(2, 0.32, /*jitter=*/0.0);
  MultiGpuRuntime rt(dataset_, config(), devices);
  const auto batch = rt.next_batch(32);
  const double f0 = rt.charge_step(0, batch.x, 0.0);
  const double f1 = rt.charge_step(1, batch.x, 0.0);
  EXPECT_LT(f0, f1);
}

TEST_F(RuntimeTest, StepCostGrowsWithBatchNnz) {
  MultiGpuRuntime rt(dataset_, config(), sim::v100_homogeneous(1, 0.0));
  const auto small = rt.next_batch(8);
  const auto large = rt.next_batch(128);
  const double t_small = rt.charge_step(0, small.x, 1000.0) - 1000.0;
  // Reset-free: charge on a fresh timeline offset.
  const double start = rt.gpu_free_at(0);
  const double t_large = rt.charge_step(0, large.x, start) - start;
  EXPECT_GT(t_large, t_small);
}

TEST_F(RuntimeTest, MergeProducesWeightedAverageWithMomentum) {
  auto cfg = config();
  cfg.momentum_gamma = 0.9;
  MultiGpuRuntime rt(dataset_, cfg, sim::v100_heterogeneous(2));
  const auto w0 = rt.global_model().to_flat();

  rt.run_update_step(0, rt.next_batch(32), 0.5, 0.0);
  rt.run_update_step(1, rt.next_batch(32), 0.5, 0.0);
  rt.math_barrier();
  const auto r0 = rt.replica(0).to_flat();
  const auto r1 = rt.replica(1).to_flat();

  const std::vector<double> weights{0.75, 0.25};
  const auto timing = rt.merge_and_update(weights, 1.0);

  // First merge: momentum term gamma*(w - w_prev) = 0, so the global model
  // equals the weighted average exactly.
  const auto merged = rt.global_model().to_flat();
  for (std::size_t i = 0; i < merged.size(); i += 37) {
    EXPECT_NEAR(merged[i], 0.75f * r0[i] + 0.25f * r1[i], 1e-5f) << i;
  }
  // Replicas hold the new global model.
  EXPECT_DOUBLE_EQ(rt.replica(0).squared_distance(rt.global_model()), 0.0);
  EXPECT_DOUBLE_EQ(rt.replica(1).squared_distance(rt.global_model()), 0.0);
  // Clocks synchronized past the merge.
  EXPECT_DOUBLE_EQ(rt.gpu(0).device_free_at(), timing.finish);
  EXPECT_DOUBLE_EQ(rt.gpu(1).device_free_at(), timing.finish);
  EXPECT_GT(timing.allreduce_seconds, 0.0);
  EXPECT_GT(timing.host_roundtrip_seconds, 0.0);
  (void)w0;
}

TEST_F(RuntimeTest, SecondMergeAppliesMomentum) {
  auto cfg = config();
  cfg.momentum_gamma = 0.9;
  MultiGpuRuntime rt(dataset_, cfg, sim::v100_heterogeneous(2));
  const std::vector<double> weights{0.5, 0.5};

  rt.run_update_step(0, rt.next_batch(32), 0.5, 0.0);
  rt.run_update_step(1, rt.next_batch(32), 0.5, 0.0);
  rt.merge_and_update(weights, 1.0);
  const auto g1 = rt.global_model().to_flat();

  rt.run_update_step(0, rt.next_batch(32), 0.5, 0.0);
  rt.run_update_step(1, rt.next_batch(32), 0.5, 0.0);
  rt.math_barrier();
  const auto r0 = rt.replica(0).to_flat();
  const auto r1 = rt.replica(1).to_flat();
  rt.merge_and_update(weights, 2.0);
  const auto g2 = rt.global_model().to_flat();

  // g2 = avg + gamma*(g1 - g0): differs from the plain average.
  bool momentum_visible = false;
  for (std::size_t i = 0; i < g2.size(); i += 13) {
    const float avg = 0.5f * (r0[i] + r1[i]);
    if (std::abs(g2[i] - avg) > 1e-6f) momentum_visible = true;
  }
  EXPECT_TRUE(momentum_visible);
  (void)g1;
}

TEST_F(RuntimeTest, MomentumDisabledGivesPlainAverage) {
  auto cfg = config();
  cfg.enable_momentum = false;
  MultiGpuRuntime rt(dataset_, cfg, sim::v100_heterogeneous(2));
  const std::vector<double> weights{0.5, 0.5};
  for (int round = 0; round < 2; ++round) {
    rt.run_update_step(0, rt.next_batch(32), 0.5, 0.0);
    rt.run_update_step(1, rt.next_batch(32), 0.5, 0.0);
    rt.math_barrier();
    const auto r0 = rt.replica(0).to_flat();
    const auto r1 = rt.replica(1).to_flat();
    rt.merge_and_update(weights, 1.0 + round);
    const auto g = rt.global_model().to_flat();
    for (std::size_t i = 0; i < g.size(); i += 41) {
      EXPECT_NEAR(g[i], 0.5f * (r0[i] + r1[i]), 1e-5f);
    }
  }
}

TEST_F(RuntimeTest, TakeMeanLossResets) {
  MultiGpuRuntime rt(dataset_, config(), sim::v100_heterogeneous(2));
  rt.run_update_step(0, rt.next_batch(32), 0.1, 0.0);
  rt.math_barrier();
  EXPECT_GT(rt.take_mean_loss(), 0.0);
  EXPECT_EQ(rt.take_mean_loss(), 0.0);  // drained
}

TEST_F(RuntimeTest, RecordCurvePointPopulatesFields) {
  MultiGpuRuntime rt(dataset_, config(), sim::v100_heterogeneous(2));
  TrainResult result;
  rt.next_batch(150);  // pretend some samples were consumed
  rt.record_curve_point(result, 3.5, 2, 1.25);
  ASSERT_EQ(result.curve.size(), 1u);
  const auto& p = result.curve[0];
  EXPECT_DOUBLE_EQ(p.vtime, 3.5);
  EXPECT_EQ(p.samples, 150u);
  EXPECT_EQ(p.megabatch, 2u);
  EXPECT_NEAR(p.passes, 150.0 / 1500.0, 1e-12);
  EXPECT_DOUBLE_EQ(p.train_loss, 1.25);
  EXPECT_GE(p.top1, 0.0);
}

TEST_F(RuntimeTest, DeterministicAcrossIdenticalRuns) {
  auto run_once = [&]() {
    MultiGpuRuntime rt(dataset_, config(), sim::v100_heterogeneous(3));
    for (int i = 0; i < 6; ++i) {
      const auto g = rt.next_free_gpu();
      rt.run_update_step(g, rt.next_batch(32), 0.2, rt.gpu_free_at(g));
    }
    rt.math_barrier();
    const std::vector<double> weights{0.4, 0.3, 0.3};
    rt.merge_and_update(weights, rt.gpu(0).device_free_at());
    return rt.global_model().to_flat();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(RuntimeTest, ThreadedModeMatchesDeterministic) {
  auto run_with = [&](ExecutionMode mode) {
    auto cfg = config();
    cfg.mode = mode;
    MultiGpuRuntime rt(dataset_, cfg, sim::v100_heterogeneous(3));
    for (int i = 0; i < 9; ++i) {
      const auto g = rt.next_free_gpu();
      rt.run_update_step(g, rt.next_batch(32), 0.2, rt.gpu_free_at(g));
    }
    rt.math_barrier();
    const std::vector<double> weights{0.5, 0.25, 0.25};
    rt.merge_and_update(weights, rt.gpu(0).device_free_at());
    return rt.global_model().to_flat();
  };
  EXPECT_EQ(run_with(ExecutionMode::kDeterministic),
            run_with(ExecutionMode::kThreaded));
}

TEST_F(RuntimeTest, MaxFeasibleBatchPositiveAndFinite) {
  MultiGpuRuntime rt(dataset_, config(), sim::v100_heterogeneous(2));
  const auto b = rt.max_feasible_batch(0);
  EXPECT_GT(b, 128u);               // 16 GB fits far more than b_max
  EXPECT_LT(b, 1'000'000'000ull);   // but not unbounded
}

TEST_F(RuntimeTest, StepMemoryIsTransient) {
  MultiGpuRuntime rt(dataset_, config(), sim::v100_heterogeneous(1));
  const auto resident = rt.gpu(0).memory_used();
  rt.run_update_step(0, rt.next_batch(64), 0.1, 0.0);
  rt.math_barrier();
  // Step buffers are freed once the step is accounted; only the model +
  // optimizer state stay resident.
  EXPECT_EQ(rt.gpu(0).memory_used(), resident);
}

TEST_F(RuntimeTest, OversizedBatchThrowsOutOfMemory) {
  auto devices = sim::v100_heterogeneous(1);
  devices[0].memory_bytes = 2 * 1024 * 1024;  // 2 MB card
  // Model (2x ~160KB) fits; a huge batch's activations do not.
  MultiGpuRuntime rt(dataset_, config(), devices);
  EXPECT_THROW(rt.run_update_step(0, rt.next_batch(1400), 0.1, 0.0),
               sim::OutOfDeviceMemory);
}

TEST_F(RuntimeTest, TracerWorksInThreadedMode) {
  auto cfg = config();
  cfg.mode = ExecutionMode::kThreaded;
  MultiGpuRuntime rt(dataset_, cfg, sim::v100_heterogeneous(2));
  sim::Tracer tracer;
  rt.set_tracer(&tracer);
  rt.run_update_step(0, rt.next_batch(32), 0.1, 0.0);
  rt.run_update_step(1, rt.next_batch(32), 0.1, 0.0);
  rt.math_barrier();
  EXPECT_EQ(tracer.size(), 2u);
}

TEST_F(RuntimeTest, HostRoundtripPositive) {
  MultiGpuRuntime rt(dataset_, config(), sim::v100_heterogeneous(2));
  EXPECT_GT(rt.host_roundtrip_seconds(), 0.0);
}

}  // namespace
}  // namespace hetero::core
