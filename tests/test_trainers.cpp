#include "core/trainer.h"

#include <gtest/gtest.h>

#include "core/adaptive_sgd.h"
#include "data/synthetic.h"
#include "sim/profiles.h"

namespace hetero::core {
namespace {

const data::XmlDataset& tiny_dataset() {
  static const data::XmlDataset dataset = [] {
    auto cfg = data::tiny_profile();
    cfg.num_train = 2000;
    return data::generate_xml_dataset(cfg);
  }();
  return dataset;
}

TrainerConfig fast_config() {
  TrainerConfig cfg;
  cfg.hidden = 16;
  cfg.batch_max = 32;
  cfg.batches_per_megabatch = 16;
  cfg.num_megabatches = 4;
  cfg.learning_rate = 0.5;
  cfg.eval_samples = 200;
  // Large enough that per-batch compute dominates kernel-launch overhead —
  // otherwise the simulated GPUs look homogeneous (see TrainerConfig docs).
  cfg.compute_scale = 2000.0;
  return cfg;
}

TrainResult run(Method method, TrainerConfig cfg, std::size_t gpus,
                double gap = 0.32) {
  auto trainer = make_trainer(method, tiny_dataset(), cfg,
                              sim::v100_heterogeneous(gpus, gap));
  return trainer->train();
}

TEST(Trainers, AllMethodsImproveAccuracy) {
  for (auto method : {Method::kAdaptive, Method::kElastic, Method::kSync,
                      Method::kCrossbow}) {
    const auto result = run(method, fast_config(), 2);
    ASSERT_GE(result.curve.size(), 2u) << to_string(method);
    EXPECT_GT(result.final_top1(), result.curve.front().top1 + 0.15)
        << to_string(method);
    EXPECT_GT(result.total_vtime, 0.0);
  }
}

TEST(Trainers, CurveHasExpectedCadence) {
  auto cfg = fast_config();
  cfg.num_megabatches = 3;
  const auto result = run(Method::kAdaptive, cfg, 2);
  ASSERT_EQ(result.curve.size(), 4u);  // initial + 3 mega-batches
  EXPECT_EQ(result.curve[0].samples, 0u);
  for (std::size_t i = 1; i < result.curve.size(); ++i) {
    EXPECT_EQ(result.curve[i].samples - result.curve[i - 1].samples,
              cfg.megabatch_samples());
    EXPECT_GT(result.curve[i].vtime, result.curve[i - 1].vtime);
  }
}

TEST(Trainers, AdaptiveFasterThanElasticOnHeterogeneousServer) {
  // The core claim: with the same total work, dynamic scheduling finishes a
  // mega-batch sooner than static partitioning under GPU heterogeneity.
  const auto adaptive = run(Method::kAdaptive, fast_config(), 4);
  const auto elastic = run(Method::kElastic, fast_config(), 4);
  EXPECT_LT(adaptive.total_vtime, elastic.total_vtime);
}

TEST(Trainers, AdaptiveMatchesElasticOnHomogeneousSingleGpu) {
  // Section V: with one GPU both degrade to mini-batch SGD and are
  // "identical" — same samples, same update rule, same accuracy curve.
  auto cfg = fast_config();
  auto a = make_trainer(Method::kAdaptive, tiny_dataset(), cfg,
                        sim::v100_heterogeneous(1));
  auto e = make_trainer(Method::kElastic, tiny_dataset(), cfg,
                        sim::v100_heterogeneous(1));
  const auto ra = a->train();
  const auto re = e->train();
  ASSERT_EQ(ra.curve.size(), re.curve.size());
  for (std::size_t i = 0; i < ra.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.curve[i].top1, re.curve[i].top1) << i;
  }
}

TEST(Trainers, SyncSlowerThanAdaptive) {
  // Per-batch global updates + framework overhead make the TF-style
  // baseline the slowest GPU method (Fig. 4).
  const auto adaptive = run(Method::kAdaptive, fast_config(), 4);
  const auto sync = run(Method::kSync, fast_config(), 4);
  EXPECT_GT(sync.total_vtime, adaptive.total_vtime);
}

TEST(Trainers, AdaptiveUpdateCountsSkewWithHeterogeneity) {
  auto cfg = fast_config();
  cfg.enable_batch_scaling = false;  // isolate dynamic scheduling
  cfg.batches_per_megabatch = 32;
  const auto result = run(Method::kAdaptive, cfg, 4, 0.5);
  // Fastest GPU (0) must process more batches than the slowest (3).
  EXPECT_GT(result.gpus[0].total_updates, result.gpus[3].total_updates);
}

TEST(Trainers, BatchScalingKeepsBatchInBounds) {
  auto cfg = fast_config();
  cfg.num_megabatches = 6;
  const auto result = run(Method::kAdaptive, cfg, 4, 0.5);
  for (const auto& gpu : result.gpus) {
    for (auto b : gpu.batch_size) {
      EXPECT_GE(b, cfg.derived_batch_min());
      EXPECT_LE(b, cfg.batch_max);
    }
  }
}

TEST(Trainers, BatchScalingReducesUpdateSpread) {
  auto cfg = fast_config();
  cfg.batches_per_megabatch = 32;
  cfg.num_megabatches = 8;
  const auto result = run(Method::kAdaptive, cfg, 4, 0.5);
  const auto spread_at = [&](std::size_t m) {
    std::size_t mn = result.gpus[0].updates[m], mx = mn;
    for (const auto& g : result.gpus) {
      mn = std::min(mn, g.updates[m]);
      mx = std::max(mx, g.updates[m]);
    }
    return mx - mn;
  };
  // The final mega-batch should be at least as balanced as the first.
  EXPECT_LE(spread_at(result.merges - 1), spread_at(0));
}

TEST(Trainers, ScalingDisabledKeepsBatchConstant) {
  auto cfg = fast_config();
  cfg.enable_batch_scaling = false;
  const auto result = run(Method::kAdaptive, cfg, 4);
  for (const auto& gpu : result.gpus) {
    for (auto b : gpu.batch_size) EXPECT_EQ(b, cfg.batch_max);
  }
  EXPECT_EQ(result.scaling_updates, 0u);
}

TEST(Trainers, PerturbationCountedOnlyWhenEnabled) {
  auto cfg = fast_config();
  const auto with = run(Method::kAdaptive, cfg, 4);
  cfg.enable_perturbation = false;
  const auto without = run(Method::kAdaptive, cfg, 4);
  EXPECT_GT(with.perturbation_frequency(), 0.0);
  EXPECT_EQ(without.perturbed_merges, 0u);
}

TEST(Trainers, ElasticUpdatesEqualAcrossGpus) {
  const auto result = run(Method::kElastic, fast_config(), 4);
  for (std::size_t m = 0; m < result.merges; ++m) {
    for (const auto& gpu : result.gpus) {
      EXPECT_EQ(gpu.updates[m], result.gpus[0].updates[m]);
    }
  }
}

TEST(Trainers, VirtualTimeBudgetStopsEarly) {
  auto cfg = fast_config();
  cfg.num_megabatches = 100;
  cfg.virtual_time_budget = 1e-9;  // expires immediately after first merge
  const auto result = run(Method::kAdaptive, cfg, 2);
  EXPECT_EQ(result.merges, 1u);
}

TEST(Trainers, DeterministicRepeatability) {
  const auto a = run(Method::kAdaptive, fast_config(), 4);
  const auto b = run(Method::kAdaptive, fast_config(), 4);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.curve[i].top1, b.curve[i].top1);
    EXPECT_DOUBLE_EQ(a.curve[i].vtime, b.curve[i].vtime);
  }
}

TEST(Trainers, ThreadedModeMatchesDeterministicCurve) {
  auto cfg = fast_config();
  cfg.num_megabatches = 2;
  const auto det = run(Method::kAdaptive, cfg, 3);
  cfg.mode = ExecutionMode::kThreaded;
  const auto thr = run(Method::kAdaptive, cfg, 3);
  ASSERT_EQ(det.curve.size(), thr.curve.size());
  for (std::size_t i = 0; i < det.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(det.curve[i].top1, thr.curve[i].top1);
  }
}

TEST(Trainers, TimeToAccuracyInterpolates) {
  TrainResult r;
  r.curve.push_back({.vtime = 0.0, .top1 = 0.0});
  r.curve.push_back({.vtime = 10.0, .top1 = 0.5});
  const auto t = r.time_to_accuracy(0.25);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 5.0, 1e-12);
  EXPECT_FALSE(r.time_to_accuracy(0.9).has_value());
}

TEST(Trainers, AdaptiveUtilizationBeatsElasticUnderHeterogeneity) {
  // The straggler problem IS low utilization: Elastic's fast GPUs idle at
  // the mega-batch barrier while Adaptive fills the gaps (Figure 2).
  const auto adaptive = run(Method::kAdaptive, fast_config(), 4, 0.5);
  const auto elastic = run(Method::kElastic, fast_config(), 4, 0.5);
  EXPECT_GT(adaptive.min_utilization(), elastic.min_utilization());
  EXPECT_GT(adaptive.mean_utilization(), elastic.mean_utilization());
  EXPECT_LE(adaptive.mean_utilization(), 1.0);
}

TEST(Trainers, UtilizationZeroForEmptyResult) {
  TrainResult empty;
  EXPECT_EQ(empty.mean_utilization(), 0.0);
  EXPECT_EQ(empty.min_utilization(), 0.0);
}

TEST(Trainers, BusySecondsBelowTotal) {
  const auto result = run(Method::kAdaptive, fast_config(), 4);
  for (const auto& gpu : result.gpus) {
    EXPECT_GT(gpu.busy_seconds, 0.0);
    EXPECT_LE(gpu.busy_seconds, result.total_vtime);
  }
}

TEST(Trainers, MergesMatchMegabatches) {
  auto cfg = fast_config();
  cfg.num_megabatches = 5;
  for (auto method : {Method::kAdaptive, Method::kElastic}) {
    const auto result = run(method, cfg, 2);
    EXPECT_EQ(result.merges, 5u) << to_string(method);
  }
}

TEST(Trainers, FactoryNames) {
  auto t = make_trainer(Method::kCrossbow, tiny_dataset(), fast_config(),
                        sim::v100_heterogeneous(2));
  EXPECT_EQ(t->method_name(), "crossbow-sma");
}

TEST(Trainers, WarmupStillConverges) {
  auto cfg = fast_config();
  cfg.warmup_megabatches = 2;
  const auto r = run(Method::kAdaptive, cfg, 2);
  EXPECT_GT(r.final_top1(), r.curve.front().top1 + 0.15);
}

TEST(Trainers, WarmupChangesEarlyTrajectory) {
  auto base = fast_config();
  const auto without = run(Method::kAdaptive, base, 2);
  base.warmup_megabatches = 3;
  const auto with = run(Method::kAdaptive, base, 2);
  // Smaller effective learning rate on the first mega-batch -> different
  // (typically lower) accuracy at the first evaluation point.
  ASSERT_GE(with.curve.size(), 2u);
  EXPECT_NE(with.curve[1].top1, without.curve[1].top1);
}

TEST(Trainers, AutoBatchMaxDerivedFromMemory) {
  auto cfg = fast_config();
  cfg.batch_max = 0;  // derive from device memory
  auto devices = sim::v100_heterogeneous(2);
  auto trainer = make_trainer(Method::kAdaptive, tiny_dataset(), cfg,
                              devices);
  const auto r = trainer->train();
  // 16 GB fits far more than the 1024 cap.
  ASSERT_FALSE(r.gpus[0].batch_size.empty());
  EXPECT_EQ(r.gpus[0].batch_size[0], 1024u);
}

TEST(Trainers, AutoBatchMaxRespectsSmallMemory) {
  auto cfg = fast_config();
  cfg.batch_max = 0;
  auto devices = sim::v100_heterogeneous(2);
  for (auto& d : devices) d.memory_bytes = 4 * 1024 * 1024;  // 4 MB cards
  auto trainer = make_trainer(Method::kAdaptive, tiny_dataset(), cfg,
                              devices);
  const auto r = trainer->train();
  ASSERT_FALSE(r.gpus[0].batch_size.empty());
  EXPECT_LT(r.gpus[0].batch_size[0], 1024u);
  EXPECT_GE(r.gpus[0].batch_size[0], 16u);
}

TEST(Trainers, AdaptiveCadenceStillConverges) {
  auto cfg = fast_config();
  cfg.adaptive_scaling_cadence = true;
  cfg.num_megabatches = 6;
  const auto r = run(Method::kAdaptive, cfg, 4);
  EXPECT_GT(r.final_top1(), 0.3);
  for (const auto& gpu : r.gpus) {
    for (auto b : gpu.batch_size) {
      EXPECT_GE(b, cfg.derived_batch_min());
      EXPECT_LE(b, cfg.batch_max);
    }
  }
}

TEST(Trainers, ProductNormalizationConfigRuns) {
  auto cfg = fast_config();
  cfg.merge_normalization = MergeNormalization::kUpdatesTimesBatch;
  const auto r = run(Method::kAdaptive, cfg, 4);
  EXPECT_GT(r.final_top1(), 0.3);
}

TEST(Trainers, LrDecayScheduleFactorsIntoUpdates) {
  auto base = fast_config();
  base.num_megabatches = 4;
  const auto plain = run(Method::kElastic, base, 2);
  base.lr_decay = 0.1;  // aggressive decay to make the effect unmistakable
  base.lr_decay_every = 1;
  const auto decayed = run(Method::kElastic, base, 2);
  // After the first mega-batch the decayed run moves far less; accuracy
  // trajectories must diverge.
  ASSERT_EQ(plain.curve.size(), decayed.curve.size());
  EXPECT_EQ(plain.curve[1].top1, decayed.curve[1].top1);  // same first mb
  bool diverged = false;
  for (std::size_t i = 2; i < plain.curve.size(); ++i) {
    diverged |= plain.curve[i].top1 != decayed.curve[i].top1;
  }
  EXPECT_TRUE(diverged);
}

TEST(Trainers, EarlyStoppingCutsRunShort) {
  auto cfg = fast_config();
  cfg.num_megabatches = 50;
  cfg.learning_rate = 0.0;  // cannot improve -> stop after patience
  cfg.early_stop_patience = 2;
  cfg.early_stop_delta = 0.001;
  const auto r = run(Method::kAdaptive, cfg, 2);
  EXPECT_LE(r.merges, 4u);  // 1 boundary + ~patience mega-batches
}

TEST(Trainers, EarlyStoppingDisabledRunsFull) {
  auto cfg = fast_config();
  cfg.num_megabatches = 5;
  cfg.learning_rate = 0.0;
  cfg.early_stop_patience = 0;
  const auto r = run(Method::kAdaptive, cfg, 2);
  EXPECT_EQ(r.merges, 5u);
}

TEST(Trainers, CustomSpeedProfileSkewsWork) {
  auto cfg = fast_config();
  cfg.enable_batch_scaling = false;
  cfg.batches_per_megabatch = 32;
  auto trainer = make_trainer(Method::kAdaptive, tiny_dataset(), cfg,
                              sim::v100_custom({1.0, 1.0, 0.4}));
  const auto r = trainer->train();
  // The 0.4-speed device must process clearly fewer batches.
  EXPECT_GT(r.gpus[0].total_updates, r.gpus[2].total_updates);
  EXPECT_GT(r.gpus[1].total_updates, r.gpus[2].total_updates);
}

TEST(Trainers, WeightDecayRegularizesGlobalModel) {
  auto cfg = fast_config();
  const auto plain = run(Method::kAdaptive, cfg, 2);
  cfg.weight_decay = 0.05;
  const auto decayed = run(Method::kAdaptive, cfg, 2);
  // Both learn; decayed run keeps a tighter parameter norm (reflected in
  // the perturbation gate staying active at least as often).
  EXPECT_GT(decayed.final_top1(), 0.2);
  EXPECT_GE(decayed.perturbation_frequency(),
            plain.perturbation_frequency() - 1e-9);
}

class GpuCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GpuCountSweep, AdaptiveRunsAtAnyGpuCount) {
  const auto result = run(Method::kAdaptive, fast_config(), GetParam());
  EXPECT_EQ(result.num_gpus, GetParam());
  EXPECT_GT(result.final_top1(), 0.1);
}

INSTANTIATE_TEST_SUITE_P(Counts, GpuCountSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace hetero::core
