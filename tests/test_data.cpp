#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "data/dataset_stats.h"
#include "data/binary_cache.h"
#include "data/feature_hashing.h"
#include "data/sample_stream.h"

namespace hetero::data {
namespace {

TEST(Synthetic, ShapesMatchConfig) {
  auto cfg = tiny_profile();
  const auto ds = generate_xml_dataset(cfg);
  EXPECT_EQ(ds.train.num_samples(), cfg.num_train);
  EXPECT_EQ(ds.test.num_samples(), cfg.num_test);
  EXPECT_EQ(ds.train.features.cols(), cfg.num_features);
  EXPECT_EQ(ds.train.labels.cols(), cfg.num_classes);
  EXPECT_TRUE(ds.train.features.validate());
  EXPECT_TRUE(ds.train.labels.validate());
  EXPECT_TRUE(ds.test.features.validate());
}

TEST(Synthetic, Deterministic) {
  const auto a = generate_xml_dataset(tiny_profile());
  const auto b = generate_xml_dataset(tiny_profile());
  ASSERT_EQ(a.train.features.nnz(), b.train.features.nnz());
  EXPECT_EQ(a.train.features.col_idx(), b.train.features.col_idx());
  EXPECT_EQ(a.train.labels.col_idx(), b.train.labels.col_idx());
}

TEST(Synthetic, SeedChangesData) {
  auto cfg = tiny_profile();
  cfg.seed = 999;
  const auto a = generate_xml_dataset(tiny_profile());
  const auto b = generate_xml_dataset(cfg);
  EXPECT_NE(a.train.features.col_idx(), b.train.features.col_idx());
}

TEST(Synthetic, EveryRowHasLabelsAndFeatures) {
  const auto ds = generate_xml_dataset(tiny_profile());
  for (std::size_t r = 0; r < ds.train.num_samples(); ++r) {
    EXPECT_GE(ds.train.labels.row_nnz(r), 1u);
    EXPECT_GE(ds.train.features.row_nnz(r), 2u);
  }
}

TEST(Synthetic, AverageNnzNearTarget) {
  auto cfg = tiny_profile();
  cfg.num_train = 5000;
  const auto ds = generate_xml_dataset(cfg);
  EXPECT_NEAR(ds.train.features.avg_row_nnz(), cfg.avg_features_per_sample,
              cfg.avg_features_per_sample * 0.15);
  EXPECT_NEAR(ds.train.labels.avg_row_nnz(), cfg.avg_labels_per_sample,
              cfg.avg_labels_per_sample * 0.25);
}

TEST(Synthetic, NnzVariesAcrossSamples) {
  // The per-sample nnz lognormal multiplier is the paper's sparse-data
  // heterogeneity source; a degenerate generator would break Fig. 1/4.
  const auto ds = generate_xml_dataset(tiny_profile());
  std::set<std::size_t> distinct;
  for (std::size_t r = 0; r < ds.train.num_samples(); ++r) {
    distinct.insert(ds.train.features.row_nnz(r));
  }
  EXPECT_GT(distinct.size(), 5u);
}

TEST(Synthetic, ProfilesMatchTableOneShape) {
  const auto amazon = amazon670k_small();
  EXPECT_NEAR(amazon.avg_features_per_sample, 76.0, 1e-9);
  EXPECT_NEAR(amazon.avg_labels_per_sample, 5.0, 1e-9);
  const auto delicious = delicious200k_small();
  EXPECT_NEAR(delicious.avg_features_per_sample, 302.0, 1e-9);
  EXPECT_NEAR(delicious.avg_labels_per_sample, 75.0, 1e-9);
  // Delicious has more features but fewer classes than its scale partner —
  // same ordering as Table I.
  EXPECT_GT(delicious.num_features, amazon.num_features);
  EXPECT_LT(delicious.num_classes, amazon.num_classes);
}

TEST(DatasetStats, ComputesTableOneColumns) {
  auto cfg = tiny_profile();
  const auto ds = generate_xml_dataset(cfg);
  const auto stats = compute_stats(ds, 64);
  EXPECT_EQ(stats.num_train, cfg.num_train);
  EXPECT_EQ(stats.num_test, cfg.num_test);
  EXPECT_GT(stats.avg_features_per_sample, 0.0);
  EXPECT_GT(stats.feature_nnz_cv, 0.05);
  EXPECT_GT(stats.batch_nnz_spread, 1.0);
}

TEST(SampleStream, ServesRequestedCounts) {
  SampleStream s(100, 1);
  const auto batch = s.next(30);
  EXPECT_EQ(batch.size(), 30u);
  EXPECT_EQ(s.samples_served(), 30u);
}

TEST(SampleStream, FirstPassIsPermutationPrefix) {
  SampleStream s(50, 2);
  const auto batch = s.next(50);
  std::set<std::size_t> unique(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), 50u);
  for (auto id : batch) EXPECT_LT(id, 50u);
}

TEST(SampleStream, ReshufflesAcrossPasses) {
  SampleStream s(40, 3);
  const auto first = s.next(40);
  EXPECT_EQ(s.passes(), 0u);
  const auto second = s.next(40);
  EXPECT_EQ(s.passes(), 1u);
  EXPECT_NE(first, second);  // reshuffled order
  std::set<std::size_t> unique(second.begin(), second.end());
  EXPECT_EQ(unique.size(), 40u);  // still a permutation
}

TEST(SampleStream, CrossesBoundaryCorrectly) {
  SampleStream s(10, 4);
  const auto batch = s.next(25);
  EXPECT_EQ(batch.size(), 25u);
  EXPECT_EQ(s.passes(), 2u);
  EXPECT_EQ(s.samples_served(), 25u);
}

TEST(SampleStream, Deterministic) {
  SampleStream a(30, 5), b(30, 5);
  EXPECT_EQ(a.next(45), b.next(45));
}

TEST(FeatureHashing, TargetDimensionality) {
  const auto ds = generate_xml_dataset(tiny_profile());
  FeatureHashConfig cfg;
  cfg.bits = 8;
  const auto hashed = hash_features(ds.train.features, cfg);
  EXPECT_EQ(hashed.cols(), 256u);
  EXPECT_EQ(hashed.rows(), ds.train.features.rows());
  EXPECT_TRUE(hashed.validate());
}

TEST(FeatureHashing, Deterministic) {
  const auto ds = generate_xml_dataset(tiny_profile());
  FeatureHashConfig cfg;
  cfg.bits = 8;
  const auto a = hash_features(ds.train.features, cfg);
  const auto b = hash_features(ds.train.features, cfg);
  EXPECT_EQ(a.col_idx(), b.col_idx());
  EXPECT_EQ(a.values(), b.values());
}

TEST(FeatureHashing, SeedChangesProjection) {
  const auto ds = generate_xml_dataset(tiny_profile());
  FeatureHashConfig a_cfg, b_cfg;
  a_cfg.bits = b_cfg.bits = 8;
  b_cfg.seed = 999;
  const auto a = hash_features(ds.train.features, a_cfg);
  const auto b = hash_features(ds.train.features, b_cfg);
  EXPECT_NE(a.col_idx(), b.col_idx());
}

TEST(FeatureHashing, PreservesRowMassUnsigned) {
  // Without signs, collisions sum: total value mass per row is conserved.
  const auto ds = generate_xml_dataset(tiny_profile());
  FeatureHashConfig cfg;
  cfg.bits = 6;
  cfg.signed_hash = false;
  const auto hashed = hash_features(ds.train.features, cfg);
  for (std::size_t r = 0; r < 20; ++r) {
    double before = 0.0, after = 0.0;
    for (float v : ds.train.features.row_values(r)) before += v;
    for (float v : hashed.row_values(r)) after += v;
    EXPECT_NEAR(before, after, 1e-3);
  }
}

TEST(FeatureHashing, HashedDatasetKeepsLabels) {
  auto ds = generate_xml_dataset(tiny_profile());
  const auto labels_before = ds.train.labels.nnz();
  FeatureHashConfig cfg;
  cfg.bits = 8;
  hash_dataset_features(ds.train, cfg);
  EXPECT_EQ(ds.train.features.cols(), 256u);
  EXPECT_EQ(ds.train.labels.nnz(), labels_before);
  EXPECT_TRUE(ds.train.features.validate());
}

TEST(BinaryCache, RoundTripPreservesEverything) {
  const auto ds = generate_xml_dataset(tiny_profile());
  std::stringstream buffer;
  save_dataset(buffer, ds);
  const auto back = load_dataset(buffer);
  EXPECT_EQ(back.name, ds.name);
  EXPECT_EQ(back.train.features.col_idx(), ds.train.features.col_idx());
  EXPECT_EQ(back.train.features.values(), ds.train.features.values());
  EXPECT_EQ(back.train.labels.row_ptr(), ds.train.labels.row_ptr());
  EXPECT_EQ(back.test.features.nnz(), ds.test.features.nnz());
  EXPECT_EQ(back.test.labels.col_idx(), ds.test.labels.col_idx());
}

TEST(BinaryCache, FileRoundTrip) {
  const auto ds = generate_xml_dataset(tiny_profile());
  const std::string path = ::testing::TempDir() + "/ds.hgds";
  save_dataset_file(path, ds);
  const auto back = load_dataset_file(path);
  EXPECT_EQ(back.train.features.nnz(), ds.train.features.nnz());
  std::remove(path.c_str());
}

TEST(BinaryCache, RejectsGarbage) {
  std::stringstream garbage("not a dataset at all");
  EXPECT_THROW(load_dataset(garbage), std::runtime_error);
}

TEST(BinaryCache, RejectsTruncation) {
  const auto ds = generate_xml_dataset(tiny_profile());
  std::stringstream buffer;
  save_dataset(buffer, ds);
  std::string data = buffer.str();
  data.resize(data.size() / 3);
  std::stringstream truncated(data);
  EXPECT_THROW(load_dataset(truncated), std::runtime_error);
}

TEST(BinaryCache, MissingFileThrows) {
  EXPECT_THROW(load_dataset_file("/nonexistent/x.hgds"), std::runtime_error);
}

class ProfileParam : public ::testing::TestWithParam<SyntheticXmlConfig> {};

TEST_P(ProfileParam, GeneratesValidDatasets) {
  auto cfg = GetParam();
  cfg.num_train = 400;  // shrink for test speed
  cfg.num_test = 100;
  const auto ds = generate_xml_dataset(cfg);
  EXPECT_TRUE(ds.train.features.validate());
  EXPECT_TRUE(ds.train.labels.validate());
  EXPECT_GT(ds.train.features.nnz(), 0u);
  EXPECT_EQ(ds.name, cfg.name);
}

INSTANTIATE_TEST_SUITE_P(Profiles, ProfileParam,
                         ::testing::Values(tiny_profile(), amazon670k_small(),
                                           delicious200k_small()),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (auto& c : n)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

}  // namespace
}  // namespace hetero::data
