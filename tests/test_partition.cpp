// Unit tests for kernels::nnz_balanced_ranges — the CSR prefix-sum row
// splitter extracted from spmm. Covers skewed nnz distributions, empty
// matrices, empty rows, single-row inputs, and workers > rows, and checks
// the structural invariants every caller relies on: disjoint ascending
// ranges covering [0, rows) exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "util/partition.h"
#include "util/rng.h"

namespace hetero {
namespace {

using kernels::RowRange;
using kernels::nnz_balanced_ranges;

// row_ptr from per-row nnz counts.
std::vector<std::size_t> prefix(const std::vector<std::size_t>& row_nnz) {
  std::vector<std::size_t> row_ptr(row_nnz.size() + 1, 0);
  std::partial_sum(row_nnz.begin(), row_nnz.end(), row_ptr.begin() + 1);
  return row_ptr;
}

void expect_valid_cover(const std::vector<RowRange>& ranges,
                        std::size_t rows) {
  if (rows == 0) {
    EXPECT_TRUE(ranges.empty());
    return;
  }
  ASSERT_FALSE(ranges.empty());
  EXPECT_EQ(ranges.front().first, 0u);
  EXPECT_EQ(ranges.back().second, rows);
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_LT(ranges[i].first, ranges[i].second);  // non-empty
    if (i > 0) {
      EXPECT_EQ(ranges[i - 1].second, ranges[i].first);
    }
  }
}

TEST(NnzBalancedRanges, EmptyMatrix) {
  EXPECT_TRUE(nnz_balanced_ranges({}, 4).empty());
  const std::vector<std::size_t> zero_rows = {0};  // 0 rows, row_ptr = {0}
  EXPECT_TRUE(nnz_balanced_ranges(zero_rows, 4).empty());
}

TEST(NnzBalancedRanges, SingleRow) {
  const auto row_ptr = prefix({17});
  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    const auto ranges = nnz_balanced_ranges(row_ptr, workers);
    expect_valid_cover(ranges, 1);
    ASSERT_EQ(ranges.size(), 1u);  // one row can never split
  }
}

TEST(NnzBalancedRanges, AllRowsEmpty) {
  const auto row_ptr = prefix({0, 0, 0, 0, 0});
  const auto ranges = nnz_balanced_ranges(row_ptr, 3);
  // nnz == 0: no balance to find, but every row must still be covered.
  expect_valid_cover(ranges, 5);
}

TEST(NnzBalancedRanges, UniformSplitsEvenly) {
  const auto row_ptr = prefix(std::vector<std::size_t>(8, 10));
  const auto ranges = nnz_balanced_ranges(row_ptr, 4);
  expect_valid_cover(ranges, 8);
  ASSERT_EQ(ranges.size(), 4u);
  for (const auto& [b, e] : ranges) EXPECT_EQ(e - b, 2u);
}

TEST(NnzBalancedRanges, SkewedHeavyFirstRow) {
  // One row holds ~all the nnz: it must get its own range instead of
  // dragging the whole matrix onto one worker.
  const auto row_ptr = prefix({1000, 1, 1, 1, 1, 1, 1, 1});
  const auto ranges = nnz_balanced_ranges(row_ptr, 4);
  expect_valid_cover(ranges, 8);
  EXPECT_EQ(ranges.front(), (RowRange{0, 1}));
}

TEST(NnzBalancedRanges, SkewedHeavyLastRow) {
  const auto row_ptr = prefix({1, 1, 1, 1, 1, 1, 1, 1000});
  const auto ranges = nnz_balanced_ranges(row_ptr, 4);
  expect_valid_cover(ranges, 8);
  EXPECT_EQ(ranges.back(), (RowRange{7, 8}));
}

TEST(NnzBalancedRanges, WorkersExceedRows) {
  const auto row_ptr = prefix({3, 3, 3});
  const auto ranges = nnz_balanced_ranges(row_ptr, 16);
  expect_valid_cover(ranges, 3);
  EXPECT_LE(ranges.size(), 3u);  // never more ranges than rows
}

TEST(NnzBalancedRanges, ZeroWorkersTreatedAsOne) {
  const auto row_ptr = prefix({2, 4, 6});
  const auto ranges = nnz_balanced_ranges(row_ptr, 0);
  expect_valid_cover(ranges, 3);
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (RowRange{0, 3}));
}

TEST(NnzBalancedRanges, FuzzedInvariantsAndBalance) {
  util::Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t rows = rng.next_below(40);
    std::vector<std::size_t> row_nnz(rows);
    for (auto& c : row_nnz) {
      // Heavy-tailed: mostly small rows, occasional huge one.
      c = rng.bernoulli(0.1) ? rng.next_below(500) : rng.next_below(5);
    }
    const auto row_ptr = prefix(row_nnz);
    const std::size_t workers = 1 + rng.next_below(9);
    const auto ranges = nnz_balanced_ranges(row_ptr, workers);
    expect_valid_cover(ranges, rows);
    EXPECT_LE(ranges.size(), workers);

    // Balance: no range may exceed one worker-quantile plus the single row
    // that straddles the cut (the unavoidable granularity).
    const std::size_t nnz = row_ptr.empty() ? 0 : row_ptr.back();
    const std::size_t quantile = nnz / workers;
    const std::size_t max_row =
        row_nnz.empty()
            ? 0
            : *std::max_element(row_nnz.begin(), row_nnz.end());
    for (const auto& [b, e] : ranges) {
      const std::size_t range_nnz = row_ptr[e] - row_ptr[b];
      EXPECT_LE(range_nnz, quantile + max_row)
          << "range [" << b << "," << e << ") too heavy";
    }
  }
}

}  // namespace
}  // namespace hetero
