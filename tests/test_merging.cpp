// Algorithm 2 (Normalized Model Merging) unit tests.
#include "core/merging.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.h"

namespace hetero::core {
namespace {

MergeInputs base_inputs() {
  MergeInputs in;
  in.updates = {25, 25, 25, 25};
  in.batch_sizes = {64, 64, 64, 64};
  in.l2_per_param = {0.5, 0.5, 0.5, 0.5};  // NOT regularized by default
  in.pert_threshold = 0.1;
  in.pert_delta = 0.1;
  return in;
}

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(Merging, EqualUpdatesNormalizeByBatchSize) {
  auto in = base_inputs();
  in.batch_sizes = {100, 50, 25, 25};
  const auto w = compute_merge_weights(in);
  EXPECT_FALSE(w.by_updates);
  EXPECT_NEAR(w.alpha[0], 0.5, 1e-12);
  EXPECT_NEAR(w.alpha[1], 0.25, 1e-12);
  EXPECT_NEAR(sum(w.alpha), 1.0, 1e-12);
}

TEST(Merging, UnequalUpdatesNormalizeByUpdates) {
  auto in = base_inputs();
  in.updates = {30, 20, 25, 25};
  const auto w = compute_merge_weights(in);
  EXPECT_TRUE(w.by_updates);
  EXPECT_NEAR(w.alpha[0], 0.30, 1e-12);
  EXPECT_NEAR(w.alpha[1], 0.20, 1e-12);
  EXPECT_NEAR(sum(w.alpha), 1.0, 1e-12);
}

TEST(Merging, NoPerturbationWhenUnregularized) {
  auto in = base_inputs();
  in.updates = {30, 20, 25, 25};
  in.l2_per_param = {0.05, 0.05, 0.5, 0.05};  // one replica skewed
  const auto w = compute_merge_weights(in);
  EXPECT_FALSE(w.perturbed);
  EXPECT_NEAR(sum(w.alpha), 1.0, 1e-12);
}

TEST(Merging, PerturbationWhenAllRegularized) {
  auto in = base_inputs();
  in.updates = {30, 20, 25, 25};
  in.l2_per_param = {0.05, 0.04, 0.06, 0.05};
  const auto w = compute_merge_weights(in);
  EXPECT_TRUE(w.perturbed);
  // Most updated (index 0) boosted, least updated (index 1) reduced.
  EXPECT_NEAR(w.alpha[0], 0.30 * 1.1, 1e-12);
  EXPECT_NEAR(w.alpha[1], 0.20 * 0.9, 1e-12);
  EXPECT_NEAR(w.alpha[2], 0.25, 1e-12);
  // Deliberate denormalization: the sum may differ from 1.
  EXPECT_NE(sum(w.alpha), 1.0);
}

TEST(Merging, PerturbationDisabledByFlag) {
  auto in = base_inputs();
  in.updates = {30, 20, 25, 25};
  in.l2_per_param = {0.05, 0.04, 0.06, 0.05};
  in.enable_perturbation = false;
  const auto w = compute_merge_weights(in);
  EXPECT_FALSE(w.perturbed);
  EXPECT_NEAR(sum(w.alpha), 1.0, 1e-12);
}

TEST(Merging, ThresholdBoundaryIsExclusive) {
  auto in = base_inputs();
  in.updates = {30, 20};
  in.batch_sizes = {64, 64};
  in.l2_per_param = {0.1, 0.05};  // exactly at threshold -> not "below"
  const auto w = compute_merge_weights(in);
  EXPECT_FALSE(w.perturbed);
}

TEST(Merging, CustomDelta) {
  auto in = base_inputs();
  in.updates = {30, 20};
  in.batch_sizes = {64, 64};
  in.l2_per_param = {0.01, 0.01};
  in.pert_delta = 0.25;
  const auto w = compute_merge_weights(in);
  EXPECT_NEAR(w.alpha[0], 0.6 * 1.25, 1e-12);
  EXPECT_NEAR(w.alpha[1], 0.4 * 0.75, 1e-12);
}

TEST(Merging, SingleGpuWeightIsOne) {
  MergeInputs in;
  in.updates = {25};
  in.batch_sizes = {64};
  in.l2_per_param = {0.01};
  const auto w = compute_merge_weights(in);
  ASSERT_EQ(w.alpha.size(), 1u);
  EXPECT_DOUBLE_EQ(w.alpha[0], 1.0);
  EXPECT_FALSE(w.perturbed);  // perturbation needs n > 1
}

TEST(Merging, TieBreaksFirstIndex) {
  auto in = base_inputs();
  in.updates = {30, 30, 20, 20};
  in.l2_per_param = {0.01, 0.01, 0.01, 0.01};
  const auto w = compute_merge_weights(in);
  EXPECT_TRUE(w.perturbed);
  EXPECT_NEAR(w.alpha[0], 0.3 * 1.1, 1e-12);  // argmax = first max
  EXPECT_NEAR(w.alpha[1], 0.3, 1e-12);
  EXPECT_NEAR(w.alpha[2], 0.2 * 0.9, 1e-12);  // argmin = first min
  EXPECT_NEAR(w.alpha[3], 0.2, 1e-12);
}

TEST(Merging, MomentumUpdateFormula) {
  // w' = merged + gamma*(w - w_prev); w_prev <- w; w <- w'.
  std::vector<float> merged{1.0f, 2.0f};
  std::vector<float> global{3.0f, 5.0f};
  std::vector<float> prev{2.0f, 5.0f};
  momentum_global_update({merged.data(), 2}, {global.data(), 2},
                         {prev.data(), 2}, 0.9);
  EXPECT_FLOAT_EQ(global[0], 1.0f + 0.9f * (3.0f - 2.0f));
  EXPECT_FLOAT_EQ(global[1], 2.0f + 0.9f * (5.0f - 5.0f));
  EXPECT_FLOAT_EQ(prev[0], 3.0f);  // previous global moved forward
  EXPECT_FLOAT_EQ(prev[1], 5.0f);
}

TEST(Merging, MomentumZeroReducesToAssignment) {
  std::vector<float> merged{7.0f};
  std::vector<float> global{1.0f};
  std::vector<float> prev{0.0f};
  momentum_global_update({merged.data(), 1}, {global.data(), 1},
                         {prev.data(), 1}, 0.0);
  EXPECT_FLOAT_EQ(global[0], 7.0f);
}

TEST(Merging, MomentumAccumulatesDirection) {
  // Repeated merges toward larger values build velocity with gamma > 0.
  std::vector<float> global{0.0f}, prev{0.0f};
  for (int i = 1; i <= 3; ++i) {
    std::vector<float> merged{static_cast<float>(i)};
    momentum_global_update({merged.data(), 1}, {global.data(), 1},
                           {prev.data(), 1}, 0.9);
  }
  // Without momentum the result would be 3.0; with momentum it overshoots.
  EXPECT_GT(global[0], 3.0f);
}

TEST(Merging, AllEqualUpdatesPerturbSameIndex) {
  // Literal Algorithm 2: with all update counts equal, argmax == argmin, so
  // the same weight receives both (1+delta) and (1-delta) — a near-no-op
  // factor of (1 - delta^2). The merge still counts as perturbed.
  auto in = base_inputs();
  in.l2_per_param = {0.01, 0.01, 0.01, 0.01};
  const auto w = compute_merge_weights(in);
  EXPECT_TRUE(w.perturbed);
  EXPECT_NEAR(w.alpha[0], 0.25 * (1.0 - 0.01), 1e-12);
  EXPECT_NEAR(w.alpha[1], 0.25, 1e-12);
}

TEST(Merging, ExplicitUpdatesNormalization) {
  auto in = base_inputs();  // equal updates
  in.batch_sizes = {100, 50, 25, 25};
  in.normalization = MergeNormalization::kUpdates;
  const auto w = compute_merge_weights(in);
  EXPECT_TRUE(w.by_updates);
  for (double a : w.alpha) EXPECT_NEAR(a, 0.25, 1e-12);  // ignores batches
}

TEST(Merging, ExplicitBatchSizeNormalization) {
  auto in = base_inputs();
  in.updates = {30, 20, 25, 25};  // unequal
  in.batch_sizes = {100, 50, 25, 25};
  in.normalization = MergeNormalization::kBatchSize;
  const auto w = compute_merge_weights(in);
  EXPECT_FALSE(w.by_updates);
  EXPECT_NEAR(w.alpha[0], 0.5, 1e-12);  // ignores updates
}

TEST(Merging, ProductNormalization) {
  // Section III-B alternative: weight by samples consumed (u_i * b_i).
  auto in = base_inputs();
  in.updates = {30, 20};
  in.batch_sizes = {64, 96};
  in.l2_per_param = {0.5, 0.5};
  in.updates.resize(2);
  in.batch_sizes.resize(2);
  in.l2_per_param.resize(2);
  in.normalization = MergeNormalization::kUpdatesTimesBatch;
  const auto w = compute_merge_weights(in);
  const double s0 = 30.0 * 64.0, s1 = 20.0 * 96.0;
  EXPECT_NEAR(w.alpha[0], s0 / (s0 + s1), 1e-12);
  EXPECT_NEAR(w.alpha[1], s1 / (s0 + s1), 1e-12);
}

class DeltaParam : public ::testing::TestWithParam<double> {};

TEST_P(DeltaParam, PerturbationMagnitude) {
  auto in = base_inputs();
  in.updates = {40, 10};
  in.batch_sizes = {64, 64};
  in.l2_per_param = {0.01, 0.01};
  in.pert_delta = GetParam();
  const auto w = compute_merge_weights(in);
  EXPECT_NEAR(w.alpha[0], 0.8 * (1.0 + GetParam()), 1e-12);
  EXPECT_NEAR(w.alpha[1], 0.2 * (1.0 - GetParam()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Deltas, DeltaParam,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2, 0.5));

// Randomized invariants of Algorithm 2 over arbitrary valid inputs.
class RandomMergeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomMergeSweep, WeightsWellFormed) {
  util::Rng rng(GetParam());
  const std::size_t n = 1 + rng.next_below(8);
  MergeInputs in;
  for (std::size_t i = 0; i < n; ++i) {
    in.updates.push_back(1 + rng.next_below(50));
    in.batch_sizes.push_back(16 + rng.next_below(112));
    in.l2_per_param.push_back(rng.uniform(0.0, 0.3));
  }
  in.pert_threshold = rng.uniform(0.0, 0.2);
  in.pert_delta = rng.uniform(0.0, 0.5);
  in.enable_perturbation = rng.bernoulli(0.7);
  const MergeNormalization norms[] = {
      MergeNormalization::kAuto, MergeNormalization::kUpdates,
      MergeNormalization::kBatchSize, MergeNormalization::kUpdatesTimesBatch};
  in.normalization = norms[rng.next_below(4)];

  const auto w = compute_merge_weights(in);
  ASSERT_EQ(w.alpha.size(), n);
  double total = 0.0;
  for (double a : w.alpha) {
    EXPECT_GE(a, 0.0);   // weights never negative (delta <= 0.5 here)
    EXPECT_LE(a, 1.6);   // and bounded by (1+delta)
    total += a;
  }
  if (!w.perturbed) {
    EXPECT_NEAR(total, 1.0, 1e-9);  // normalized unless perturbed
  } else {
    // Perturbation moves the sum by at most delta * (alpha_r - alpha_s).
    EXPECT_NEAR(total, 1.0, in.pert_delta + 1e-9);
  }
}

TEST_P(RandomMergeSweep, MomentumUpdateIsLinear) {
  // w'(a*m1 + b*m2) == a*w'(m1) + b*w'(m2) for the merged-input argument
  // (fixed global/previous): momentum_global_update is affine in `merged`.
  util::Rng rng(GetParam() ^ 0x1234);
  const std::size_t len = 16;
  std::vector<float> m1(len), m2(len), g0(len), p0(len);
  for (std::size_t i = 0; i < len; ++i) {
    m1[i] = static_cast<float>(rng.uniform(-1, 1));
    m2[i] = static_cast<float>(rng.uniform(-1, 1));
    g0[i] = static_cast<float>(rng.uniform(-1, 1));
    p0[i] = static_cast<float>(rng.uniform(-1, 1));
  }
  const double gamma = rng.uniform(0.0, 0.95);

  auto apply = [&](const std::vector<float>& merged) {
    auto g = g0;
    auto p = p0;
    momentum_global_update({merged.data(), len}, {g.data(), len},
                           {p.data(), len}, gamma);
    return g;
  };
  std::vector<float> mix(len);
  for (std::size_t i = 0; i < len; ++i) mix[i] = 0.25f * m1[i] + 0.75f * m2[i];
  const auto g_mix = apply(mix);
  const auto g1 = apply(m1);
  const auto g2 = apply(m2);
  for (std::size_t i = 0; i < len; ++i) {
    // Affine part cancels: g_mix - base == 0.25*(g1-base) + 0.75*(g2-base)
    const float base = g0[i] + static_cast<float>(gamma) * (g0[i] - p0[i]);
    EXPECT_NEAR(g_mix[i] - base,
                0.25f * (g1[i] - base) + 0.75f * (g2[i] - base), 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMergeSweep,
                         ::testing::Range<std::uint64_t>(50, 62));

}  // namespace
}  // namespace hetero::core
