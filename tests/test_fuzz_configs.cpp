// Randomized configuration fuzzing: train every method under randomly drawn
// (but valid) hyperparameter/config combinations and assert the structural
// invariants hold regardless. Catches interaction bugs that the targeted
// unit tests miss.
#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "sim/profiles.h"

namespace hetero::core {
namespace {

const data::XmlDataset& dataset() {
  static const data::XmlDataset d = [] {
    auto cfg = data::tiny_profile();
    cfg.num_train = 1200;
    return data::generate_xml_dataset(cfg);
  }();
  return d;
}

TrainerConfig random_config(util::Rng& rng) {
  TrainerConfig cfg;
  cfg.hidden = static_cast<std::size_t>(rng.uniform_int(4, 32));
  cfg.batch_max = static_cast<std::size_t>(8u << rng.next_below(4));  // 8..64
  cfg.batch_min = rng.bernoulli(0.5) ? 0 : cfg.batch_max / 4;
  cfg.beta = rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.5, 16.0);
  cfg.batches_per_megabatch = static_cast<std::size_t>(rng.uniform_int(4, 24));
  cfg.num_megabatches = 2;
  cfg.learning_rate = rng.uniform(0.05, 0.6);
  cfg.momentum_gamma = rng.uniform(0.0, 0.95);
  cfg.pert_threshold = rng.uniform(0.0, 0.3);
  cfg.pert_delta = rng.uniform(0.0, 0.4);
  cfg.enable_batch_scaling = rng.bernoulli(0.8);
  cfg.enable_perturbation = rng.bernoulli(0.8);
  cfg.enable_momentum = rng.bernoulli(0.8);
  cfg.dynamic_scheduling = rng.bernoulli(0.8);
  cfg.fused_kernels = rng.bernoulli(0.8);
  cfg.weight_decay = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.05) : 0.0;
  cfg.warmup_megabatches = rng.next_below(3);
  cfg.lr_decay = rng.bernoulli(0.3) ? 0.7 : 1.0;
  cfg.lr_decay_every = 1;
  cfg.adaptive_scaling_cadence = rng.bernoulli(0.3);
  cfg.eval_samples = 100;
  cfg.compute_scale = rng.uniform(100.0, 3000.0);
  cfg.seed = rng.next_u64();
  const MergeNormalization norms[] = {
      MergeNormalization::kAuto, MergeNormalization::kUpdates,
      MergeNormalization::kBatchSize, MergeNormalization::kUpdatesTimesBatch};
  cfg.merge_normalization = norms[rng.next_below(4)];
  return cfg;
}

void check_invariants(const TrainResult& r, const TrainerConfig& cfg,
                      Trainer& trainer, std::uint64_t seed) {
  SCOPED_TRACE("fuzz seed " + std::to_string(seed));
  ASSERT_GE(r.curve.size(), 2u);
  for (std::size_t i = 1; i < r.curve.size(); ++i) {
    EXPECT_GT(r.curve[i].vtime, r.curve[i - 1].vtime);
    EXPECT_GE(r.curve[i].samples, r.curve[i - 1].samples);
    EXPECT_GE(r.curve[i].top1, 0.0);
    EXPECT_LE(r.curve[i].top1, 1.0);
  }
  for (const auto& g : r.gpus) {
    for (auto b : g.batch_size) {
      EXPECT_GE(b, cfg.derived_batch_min());
      EXPECT_LE(b, cfg.batch_max);
    }
  }
  for (float v : trainer.runtime().global_model().to_flat()) {
    ASSERT_TRUE(std::isfinite(v));
  }
  EXPECT_GE(r.perturbation_frequency(), 0.0);
  EXPECT_LE(r.perturbation_frequency(), 1.0);
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, AdaptiveSurvivesRandomConfig) {
  util::Rng rng(GetParam());
  const auto cfg = random_config(rng);
  const auto gpus = 1 + rng.next_below(4);
  auto trainer = make_trainer(Method::kAdaptive, dataset(), cfg,
                              sim::v100_heterogeneous(gpus, 0.4));
  const auto r = trainer->train();
  check_invariants(r, cfg, *trainer, GetParam());
}

TEST_P(FuzzSeeds, RandomMethodSurvivesRandomConfig) {
  util::Rng rng(GetParam() ^ 0xabcdef);
  const auto cfg = random_config(rng);
  const Method methods[] = {Method::kElastic, Method::kSync,
                            Method::kCrossbow, Method::kAsync};
  const auto method = methods[rng.next_below(4)];
  const auto gpus = 1 + rng.next_below(4);
  auto trainer = make_trainer(method, dataset(), cfg,
                              sim::v100_heterogeneous(gpus, 0.4));
  const auto r = trainer->train();
  ASSERT_GE(r.curve.size(), 2u);
  for (float v : trainer->runtime().global_model().to_flat()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzSeeds,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace hetero::core
