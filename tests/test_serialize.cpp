// Model checkpointing and TrainResult export tests.
#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "core/result_io.h"
#include "nn/deep_mlp.h"
#include "util/rng.h"

namespace hetero {
namespace {

nn::MlpModel make_model() {
  nn::MlpConfig cfg;
  cfg.num_features = 20;
  cfg.hidden = 6;
  cfg.num_classes = 9;
  nn::MlpModel model(cfg);
  util::Rng rng(5);
  model.init(rng);
  return model;
}

TEST(Serialize, RoundTripPreservesModel) {
  const auto model = make_model();
  std::stringstream buffer;
  nn::save_model(buffer, model);
  const auto loaded = nn::load_model(buffer);
  EXPECT_EQ(loaded.config().num_features, 20u);
  EXPECT_EQ(loaded.config().hidden, 6u);
  EXPECT_EQ(loaded.config().num_classes, 9u);
  EXPECT_DOUBLE_EQ(loaded.squared_distance(model), 0.0);
}

TEST(Serialize, FileRoundTrip) {
  const auto model = make_model();
  const std::string path = ::testing::TempDir() + "/model.hgpu";
  nn::save_model_file(path, model);
  const auto loaded = nn::load_model_file(path);
  EXPECT_DOUBLE_EQ(loaded.squared_distance(model), 0.0);
  std::remove(path.c_str());
}

TEST(Serialize, BadMagicRejected) {
  std::stringstream buffer("NOPE rest of garbage");
  EXPECT_THROW(nn::load_model(buffer), std::runtime_error);
}

TEST(Serialize, TruncatedParametersRejected) {
  const auto model = make_model();
  std::stringstream buffer;
  nn::save_model(buffer, model);
  std::string data = buffer.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(nn::load_model(truncated), std::runtime_error);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(nn::load_model_file("/nonexistent/m.hgpu"),
               std::runtime_error);
  EXPECT_THROW(nn::save_model_file("/nonexistent/dir/m.hgpu", make_model()),
               std::runtime_error);
}

TEST(Serialize, V1BytesArePinned) {
  // An MlpModel must serialize to the exact legacy v1 byte layout:
  // "HGPU" | u32 1 | u64 F | u64 H | u64 C | float params. Checkpoints
  // written before the layer-list format existed must stay readable, and
  // new MlpModel checkpoints must stay readable by old builds.
  const auto model = make_model();
  std::stringstream buffer;
  nn::save_model(buffer, model);
  const std::string got = buffer.str();

  std::string expected = "HGPU";
  const auto append_pod = [&expected](const auto& value) {
    expected.append(reinterpret_cast<const char*>(&value), sizeof(value));
  };
  append_pod(std::uint32_t{1});
  append_pod(std::uint64_t{20});
  append_pod(std::uint64_t{6});
  append_pod(std::uint64_t{9});
  for (const float p : model.to_flat()) append_pod(p);

  ASSERT_EQ(got.size(), expected.size());
  EXPECT_EQ(got, expected);
}

TEST(Serialize, DeepModelRoundTripsAsV2) {
  nn::DeepMlpConfig cfg;
  cfg.num_features = 20;
  cfg.hidden = {10, 7};
  cfg.num_classes = 9;
  nn::DeepMlp model(cfg);
  util::Rng rng(6);
  model.init(rng);

  std::stringstream buffer;
  nn::save_model(buffer, model);
  // v2 header: magic + u32 version + u64 num_hidden.
  const std::string bytes = buffer.str();
  ASSERT_GE(bytes.size(), 16u);
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  EXPECT_EQ(version, 2u);

  const auto loaded = nn::load_any_model(buffer);
  EXPECT_EQ(loaded->info().num_features, 20u);
  EXPECT_EQ(loaded->info().hidden, (std::vector<std::size_t>{10, 7}));
  EXPECT_EQ(loaded->info().num_classes, 9u);
  EXPECT_EQ(loaded->to_flat(), model.to_flat());
}

TEST(Serialize, LoadAnyModelReadsV1AsMlp) {
  const auto model = make_model();
  std::stringstream buffer;
  nn::save_model(buffer, model);
  const auto loaded = nn::load_any_model(buffer);
  ASSERT_NE(dynamic_cast<const nn::MlpModel*>(loaded.get()), nullptr);
  EXPECT_DOUBLE_EQ(loaded->squared_distance(model), 0.0);
}

TEST(Serialize, LegacyLoaderAcceptsSingleHiddenV2) {
  nn::DeepMlpConfig cfg;
  cfg.num_features = 20;
  cfg.hidden = {6};
  cfg.num_classes = 9;
  nn::DeepMlp model(cfg);
  util::Rng rng(7);
  model.init(rng);

  std::stringstream buffer;
  nn::save_model(buffer, model);
  const auto loaded = nn::load_model(buffer);
  EXPECT_EQ(loaded.to_flat(), model.to_flat());
}

TEST(Serialize, LegacyLoaderRejectsMultiLayerV2) {
  nn::DeepMlpConfig cfg;
  cfg.num_features = 20;
  cfg.hidden = {10, 7};
  cfg.num_classes = 9;
  nn::DeepMlp model(cfg);
  util::Rng rng(8);
  model.init(rng);

  std::stringstream buffer;
  nn::save_model(buffer, model);
  EXPECT_THROW(nn::load_model(buffer), std::runtime_error);
}

TEST(Serialize, V2FileRoundTrip) {
  nn::DeepMlpConfig cfg;
  cfg.num_features = 20;
  cfg.hidden = {10, 7};
  cfg.num_classes = 9;
  nn::DeepMlp model(cfg);
  util::Rng rng(9);
  model.init(rng);

  const std::string path = ::testing::TempDir() + "/deep.hgpu";
  nn::save_model_file(path, model);
  const auto loaded = nn::load_any_model_file(path);
  EXPECT_EQ(loaded->to_flat(), model.to_flat());
  std::remove(path.c_str());
}

core::TrainResult sample_result() {
  core::TrainResult r;
  r.method = "adaptive-sgd";
  r.dataset = "tiny";
  r.num_gpus = 2;
  r.merges = 2;
  r.perturbed_merges = 1;
  r.total_vtime = 1.5;
  r.curve.push_back({0.0, 0, 0.0, 0, 0.01, 0.05, 4.0, 0.0});
  r.curve.push_back({1.5, 640, 0.32, 1, 0.5, 0.7, 2.0, 3.0});
  r.gpus.resize(2);
  r.gpus[0].batch_size = {64, 72};
  r.gpus[0].updates = {5, 6};
  r.gpus[0].total_updates = 11;
  r.gpus[0].busy_seconds = 1.2;
  r.gpus[1].batch_size = {64, 56};
  r.gpus[1].updates = {5, 4};
  return r;
}

TEST(ResultIo, CsvHasHeaderAndRows) {
  std::ostringstream out;
  core::write_curve_csv(out, sample_result());
  const auto text = out.str();
  EXPECT_NE(text.find("dataset,method,gpus,megabatch"), std::string::npos);
  EXPECT_NE(text.find("tiny,adaptive-sgd,2,1,1.5,640"), std::string::npos);
  // header + 2 rows = 3 lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(ResultIo, CsvMultipleResultsShareHeader) {
  std::ostringstream out;
  core::write_curve_csv(out, std::vector<core::TrainResult>{
                                 sample_result(), sample_result()});
  const auto text = out.str();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
}

TEST(ResultIo, JsonContainsSummaryAndTraces) {
  std::ostringstream out;
  core::write_result_json(out, sample_result());
  const auto json = out.str();
  EXPECT_NE(json.find("\"method\":\"adaptive-sgd\""), std::string::npos);
  EXPECT_NE(json.find("\"merges\":2"), std::string::npos);
  EXPECT_NE(json.find("\"batch_size\":[64,72]"), std::string::npos);
  EXPECT_NE(json.find("\"best_top1\":0.5"), std::string::npos);
  // Balanced braces / brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ResultIo, JsonFileWrite) {
  const std::string path = ::testing::TempDir() + "/result.json";
  core::write_result_json_file(path, sample_result());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_FALSE(json.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hetero
