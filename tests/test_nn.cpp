#include "nn/mlp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/evaluate.h"
#include "nn/train_step.h"
#include "sparse/csr.h"
#include "util/rng.h"

namespace hetero::nn {
namespace {

MlpConfig small_config() {
  MlpConfig cfg;
  cfg.num_features = 12;
  cfg.hidden = 5;
  cfg.num_classes = 7;
  return cfg;
}

sparse::CsrMatrix make_batch_x(std::size_t rows, std::size_t cols,
                               util::Rng& rng, double density = 0.3) {
  sparse::CsrBuilder b(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<sparse::Entry> entries;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(density)) {
        entries.push_back({static_cast<std::uint32_t>(c),
                           static_cast<float>(rng.uniform(0.1, 1.0))});
      }
    }
    if (entries.empty()) entries.push_back({0, 1.0f});
    b.add_row(std::move(entries));
  }
  return b.build();
}

sparse::CsrMatrix make_batch_y(std::size_t rows, std::size_t classes,
                               util::Rng& rng, std::size_t labels_per_row = 2) {
  sparse::CsrBuilder b(classes);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::uint32_t> labels;
    while (labels.size() < labels_per_row) {
      const auto c = static_cast<std::uint32_t>(rng.next_below(classes));
      if (std::find(labels.begin(), labels.end(), c) == labels.end()) {
        labels.push_back(c);
      }
    }
    b.add_indicator_row(std::move(labels));
  }
  return b.build();
}

TEST(MlpModel, ParameterCount) {
  const auto cfg = small_config();
  EXPECT_EQ(cfg.num_parameters(), 12u * 5 + 5 + 5 * 7 + 7);
  MlpModel m(cfg);
  EXPECT_EQ(m.num_parameters(), cfg.num_parameters());
  EXPECT_EQ(m.num_bytes(), cfg.num_parameters() * sizeof(float));
}

TEST(MlpModel, FlatRoundTrip) {
  util::Rng rng(1);
  MlpModel a(small_config());
  a.init(rng);
  const auto flat = a.to_flat();
  ASSERT_EQ(flat.size(), a.num_parameters());
  MlpModel b(small_config());
  b.from_flat(flat);
  EXPECT_DOUBLE_EQ(a.squared_distance(b), 0.0);
}

TEST(MlpModel, InitIsSeedDeterministic) {
  util::Rng r1(5), r2(5);
  MlpModel a(small_config()), b(small_config());
  a.init(r1);
  b.init(r2);
  EXPECT_DOUBLE_EQ(a.squared_distance(b), 0.0);
}

TEST(MlpModel, L2NormPerParameter) {
  MlpModel m(small_config());
  auto flat = m.to_flat();
  std::fill(flat.begin(), flat.end(), 2.0f);
  m.from_flat(flat);
  const double expected =
      std::sqrt(4.0 * static_cast<double>(m.num_parameters())) /
      static_cast<double>(m.num_parameters());
  EXPECT_NEAR(m.l2_norm_per_parameter(), expected, 1e-9);
}

TEST(MlpModel, BiasesStartZero) {
  util::Rng rng(2);
  MlpModel m(small_config());
  m.init(rng);
  for (float b : m.b1()) EXPECT_EQ(b, 0.0f);
  for (float b : m.b2()) EXPECT_EQ(b, 0.0f);
}

// Finite-difference gradient check: the most important test in this file.
// Perturb each of a sample of parameters and compare dL/dw to the computed
// gradient.
TEST(TrainStep, GradientsMatchFiniteDifferences) {
  const auto cfg = small_config();
  util::Rng rng(3);
  MlpModel model(cfg);
  model.init(rng);
  const auto x = make_batch_x(4, cfg.num_features, rng, 0.4);
  const auto y = make_batch_y(4, cfg.num_classes, rng);

  Workspace ws;
  compute_gradients(model, x, y, ws);

  // Gather analytic gradients in flat order (W1, b1, W2, b2). The layer-1
  // gradient is stored over touched rows only; scatter it dense for the
  // element-wise comparison.
  tensor::Matrix grad_w1_dense;
  ws.grad_w1.to_dense(grad_w1_dense);
  std::vector<float> analytic;
  analytic.insert(analytic.end(), grad_w1_dense.flat().begin(),
                  grad_w1_dense.flat().end());
  analytic.insert(analytic.end(), ws.grad_b1.begin(), ws.grad_b1.end());
  analytic.insert(analytic.end(), ws.grad_w2.flat().begin(),
                  ws.grad_w2.flat().end());
  analytic.insert(analytic.end(), ws.grad_b2.begin(), ws.grad_b2.end());

  auto flat = model.to_flat();
  const double eps = 1e-3;
  Workspace ws2;
  // Check a deterministic sample of parameters across all four tensors.
  for (std::size_t i = 0; i < flat.size(); i += 7) {
    const float saved = flat[i];
    flat[i] = saved + static_cast<float>(eps);
    model.from_flat(flat);
    const double lp = forward_loss(model, x, y, ws2);
    flat[i] = saved - static_cast<float>(eps);
    model.from_flat(flat);
    const double lm = forward_loss(model, x, y, ws2);
    flat[i] = saved;
    const double numeric = (lp - lm) / (2 * eps);
    EXPECT_NEAR(numeric, analytic[i], 2e-2 * std::max(1.0, std::abs(numeric)))
        << "param " << i;
  }
  model.from_flat(flat);
}

TEST(TrainStep, LossDecreasesOnRepeatedSteps) {
  const auto cfg = small_config();
  util::Rng rng(4);
  MlpModel model(cfg);
  model.init(rng);
  const auto x = make_batch_x(8, cfg.num_features, rng);
  const auto y = make_batch_y(8, cfg.num_classes, rng);
  Workspace ws;
  const double initial = forward_loss(model, x, y, ws);
  for (int i = 0; i < 100; ++i) sgd_step(model, x, y, 0.2f, ws);
  const double after = forward_loss(model, x, y, ws);
  // With 2 uniform labels per sample the loss floor is log(2) ~= 0.69, so
  // require meaningful progress toward it rather than halving.
  EXPECT_LT(after, initial * 0.75);
}

TEST(TrainStep, SgdStepEqualsComputePlusApply) {
  const auto cfg = small_config();
  util::Rng rng(5);
  MlpModel a(cfg), b(cfg);
  a.init(rng);
  b.from_flat(a.to_flat());
  const auto x = make_batch_x(4, cfg.num_features, rng);
  const auto y = make_batch_y(4, cfg.num_classes, rng);
  Workspace wa, wb;
  sgd_step(a, x, y, 0.1f, wa);
  compute_gradients(b, x, y, wb);
  apply_gradients(b, wb, 0.1f);
  EXPECT_NEAR(a.squared_distance(b), 0.0, 1e-12);
}

TEST(TrainStep, ComputeGradientsDoesNotTouchModel) {
  const auto cfg = small_config();
  util::Rng rng(6);
  MlpModel model(cfg);
  model.init(rng);
  const auto before = model.to_flat();
  const auto x = make_batch_x(4, cfg.num_features, rng);
  const auto y = make_batch_y(4, cfg.num_classes, rng);
  Workspace ws;
  compute_gradients(model, x, y, ws);
  EXPECT_EQ(model.to_flat(), before);
}

TEST(TrainStep, UntouchedW1RowsKeepValues) {
  // Sparse update property: feature rows absent from the batch must not
  // change (this is what makes sparse training cheap).
  const auto cfg = small_config();
  util::Rng rng(7);
  MlpModel model(cfg);
  model.init(rng);
  sparse::CsrBuilder bx(cfg.num_features);
  bx.add_row({{3, 1.0f}, {5, 0.5f}});
  const auto x = bx.build();
  const auto y = make_batch_y(1, cfg.num_classes, rng);
  const auto before = model.w1();
  Workspace ws;
  sgd_step(model, x, y, 0.5f, ws);
  bool touched_changed = false;
  for (std::size_t f = 0; f < cfg.num_features; ++f) {
    for (std::size_t h = 0; h < cfg.hidden; ++h) {
      if (f == 3 || f == 5) {
        touched_changed |= (model.w1()(f, h) != before(f, h));
        continue;
      }
      EXPECT_EQ(model.w1()(f, h), before(f, h)) << "row " << f;
    }
  }
  // Some hidden units may be ReLU-dead, but not the whole rows.
  EXPECT_TRUE(touched_changed);
}

TEST(TrainStep, StatsReportBatchShape) {
  const auto cfg = small_config();
  util::Rng rng(8);
  MlpModel model(cfg);
  model.init(rng);
  const auto x = make_batch_x(6, cfg.num_features, rng);
  const auto y = make_batch_y(6, cfg.num_classes, rng);
  Workspace ws;
  const auto stats = sgd_step(model, x, y, 0.1f, ws);
  EXPECT_EQ(stats.batch_size, 6u);
  EXPECT_EQ(stats.batch_nnz, x.nnz());
  EXPECT_GT(stats.loss, 0.0);
}

TEST(TrainStep, KernelDescriptorsCoverPipeline) {
  const auto cfg = small_config();
  util::Rng rng(9);
  const auto x = make_batch_x(4, cfg.num_features, rng);
  const auto kernels = step_kernels(cfg, x);
  EXPECT_GE(kernels.size(), 10u);
  double total_flops = 0.0;
  int sparse_count = 0;
  for (const auto& k : kernels) {
    EXPECT_GE(k.flops, 0.0);
    EXPECT_GE(k.bytes, 0.0);
    total_flops += k.flops;
    sparse_count += k.sparse;
  }
  EXPECT_GT(total_flops, 0.0);
  EXPECT_GE(sparse_count, 3);  // spmm fwd, spmm_t bwd, sparse update
}

TEST(TrainStep, KernelFlopsScaleWithNnz) {
  const auto cfg = small_config();
  sparse::CsrBuilder b1(cfg.num_features), b2(cfg.num_features);
  b1.add_row({{0, 1.0f}});
  b2.add_row({{0, 1.0f}, {1, 1.0f}, {2, 1.0f}, {3, 1.0f}});
  const auto k1 = step_kernels(cfg, b1.build());
  const auto k2 = step_kernels(cfg, b2.build());
  double f1 = 0, f2 = 0;
  for (const auto& k : k1)
    if (k.sparse) f1 += k.flops;
  for (const auto& k : k2)
    if (k.sparse) f2 += k.flops;
  EXPECT_GT(f2, 2 * f1);
}

TEST(TrainStep, MemoryEstimateMonotoneInBatch) {
  const auto cfg = small_config();
  EXPECT_LT(step_memory_bytes(cfg, 16, 10.0), step_memory_bytes(cfg, 64, 10.0));
  EXPECT_LT(step_memory_bytes(cfg, 16, 10.0), step_memory_bytes(cfg, 16, 40.0));
}

TEST(Evaluate, PerfectModelScoresFullAccuracy) {
  // Construct a model that maps feature f deterministically to class
  // f % classes, and a test set consistent with it.
  MlpConfig cfg;
  cfg.num_features = 8;
  cfg.hidden = 8;
  cfg.num_classes = 4;
  MlpModel model(cfg);
  // W1 = identity-ish: feature f activates hidden f.
  for (std::size_t f = 0; f < 8; ++f) model.w1()(f, f) = 1.0f;
  // W2: hidden h votes for class h % 4.
  for (std::size_t h = 0; h < 8; ++h) model.w2()(h, h % 4) = 5.0f;

  sparse::CsrBuilder fx(8);
  sparse::CsrBuilder fy(4);
  for (std::uint32_t f = 0; f < 8; ++f) {
    fx.add_row({{f, 1.0f}});
    fy.add_indicator_row({f % 4});
  }
  sparse::LabeledDataset test{fx.build(), fy.build()};
  const auto result = evaluate(model, test);
  EXPECT_EQ(result.samples, 8u);
  EXPECT_DOUBLE_EQ(result.top1, 1.0);
  EXPECT_DOUBLE_EQ(result.top5, 1.0);
}

TEST(TrainStep, WeightDecayShrinksParameters) {
  const auto cfg = small_config();
  util::Rng rng(21);
  MlpModel with_decay(cfg), without(cfg);
  with_decay.init(rng);
  without.from_flat(with_decay.to_flat());
  const auto x = make_batch_x(4, cfg.num_features, rng);
  const auto y = make_batch_y(4, cfg.num_classes, rng);
  Workspace wa, wb;
  for (int i = 0; i < 10; ++i) {
    sgd_step(with_decay, x, y, 0.1f, wa, /*weight_decay=*/0.1f);
    sgd_step(without, x, y, 0.1f, wb);
  }
  EXPECT_LT(with_decay.l2_norm_per_parameter(),
            without.l2_norm_per_parameter());
}

TEST(TrainStep, ZeroWeightDecayIsNoOp) {
  const auto cfg = small_config();
  util::Rng rng(22);
  MlpModel a(cfg), b(cfg);
  a.init(rng);
  b.from_flat(a.to_flat());
  const auto x = make_batch_x(4, cfg.num_features, rng);
  const auto y = make_batch_y(4, cfg.num_classes, rng);
  Workspace wa, wb;
  sgd_step(a, x, y, 0.1f, wa, 0.0f);
  sgd_step(b, x, y, 0.1f, wb);
  EXPECT_DOUBLE_EQ(a.squared_distance(b), 0.0);
}

TEST(TrainStep, WeightDecayOnlyTouchedW1Rows) {
  const auto cfg = small_config();
  util::Rng rng(23);
  MlpModel model(cfg);
  model.init(rng);
  sparse::CsrBuilder bx(cfg.num_features);
  bx.add_row({{2, 1.0f}});
  const auto x = bx.build();
  const auto y = make_batch_y(1, cfg.num_classes, rng);
  const auto before = model.w1();
  Workspace ws;
  sgd_step(model, x, y, 0.1f, ws, 0.5f);
  // Untouched rows keep their exact values even with decay enabled.
  for (std::size_t h = 0; h < cfg.hidden; ++h) {
    EXPECT_EQ(model.w1()(7, h), before(7, h));
  }
}

TEST(Evaluate, PrecisionAtKConsistency) {
  const auto cfg = small_config();
  util::Rng rng(24);
  MlpModel model(cfg);
  model.init(rng);
  sparse::LabeledDataset test{make_batch_x(60, cfg.num_features, rng),
                              make_batch_y(60, cfg.num_classes, rng, 3)};
  const auto r = evaluate(model, test);
  // P@1 == top1 by definition; precision can only dilute as k grows past
  // the number of true labels (3 here), so P@5 <= P@3 * (3/5)... at least
  // the weak bounds must hold.
  EXPECT_GE(r.p_at_3, 0.0);
  EXPECT_LE(r.p_at_3, 1.0);
  EXPECT_LE(r.p_at_5, r.p_at_3 + 1e-12);  // 3 labels cannot fill 5 slots
  EXPECT_GE(3.0 * r.p_at_3, r.top1 - 1e-12);  // top1 hit counts in p@3
}

TEST(Evaluate, PerfectModelPrecisionAtK) {
  // One true label per sample, perfectly ranked: P@1 = 1, P@3 = 1/3,
  // P@5 = 1/5.
  MlpConfig cfg;
  cfg.num_features = 4;
  cfg.hidden = 4;
  cfg.num_classes = 8;
  MlpModel model(cfg);
  for (std::size_t f = 0; f < 4; ++f) model.w1()(f, f) = 1.0f;
  for (std::size_t h = 0; h < 4; ++h) model.w2()(h, h) = 5.0f;
  sparse::CsrBuilder fx(4);
  sparse::CsrBuilder fy(8);
  for (std::uint32_t f = 0; f < 4; ++f) {
    fx.add_row({{f, 1.0f}});
    fy.add_indicator_row({f});
  }
  sparse::LabeledDataset test{fx.build(), fy.build()};
  const auto r = evaluate(model, test);
  EXPECT_DOUBLE_EQ(r.top1, 1.0);
  EXPECT_NEAR(r.p_at_3, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.p_at_5, 1.0 / 5.0, 1e-12);
}

TEST(Evaluate, Top5AtLeastTop1) {
  const auto cfg = small_config();
  util::Rng rng(10);
  MlpModel model(cfg);
  model.init(rng);
  sparse::LabeledDataset test{make_batch_x(50, cfg.num_features, rng),
                              make_batch_y(50, cfg.num_classes, rng)};
  const auto result = evaluate(model, test);
  EXPECT_GE(result.top5, result.top1);
  EXPECT_LE(result.top5, 1.0);
}

// Differential test: the partial-selection top-5 evaluator against a naive
// full-sort reference, over random models and datasets.
TEST(Evaluate, MatchesFullSortReference) {
  const auto cfg = small_config();
  for (std::uint64_t seed = 100; seed < 108; ++seed) {
    util::Rng rng(seed);
    MlpModel model(cfg);
    model.init(rng);
    sparse::LabeledDataset test{make_batch_x(40, cfg.num_features, rng),
                                make_batch_y(40, cfg.num_classes, rng, 2)};
    const auto fast = evaluate(model, test);

    // Reference: full forward + full sort per row.
    Workspace ws;
    std::size_t top1 = 0, top5 = 0, p3 = 0, p5 = 0;
    for (std::size_t r = 0; r < 40; ++r) {
      const auto x = test.features.slice_rows(r, r + 1);
      const auto y = test.labels.slice_rows(r, r + 1);
      forward_loss(model, x, y, ws);
      std::vector<std::pair<float, std::size_t>> scored;
      for (std::size_t c = 0; c < cfg.num_classes; ++c) {
        scored.push_back({ws.probs(0, c), c});
      }
      std::stable_sort(scored.begin(), scored.end(),
                       [](const auto& a, const auto& b) {
                         return a.first > b.first;
                       });
      const auto is_true = [&](std::size_t c) {
        return test.labels.row_contains(r, static_cast<std::uint32_t>(c));
      };
      if (is_true(scored[0].second)) ++top1;
      bool any5 = false;
      for (std::size_t k = 0; k < 5; ++k) {
        if (is_true(scored[k].second)) {
          any5 = true;
          if (k < 3) ++p3;
          ++p5;
        }
      }
      if (any5) ++top5;
    }
    EXPECT_NEAR(fast.top1, top1 / 40.0, 1e-12) << seed;
    EXPECT_NEAR(fast.top5, top5 / 40.0, 1e-12) << seed;
    EXPECT_NEAR(fast.p_at_3, p3 / (3.0 * 40.0), 1e-12) << seed;
    EXPECT_NEAR(fast.p_at_5, p5 / (5.0 * 40.0), 1e-12) << seed;
  }
}

TEST(Evaluate, MaxSamplesLimits) {
  const auto cfg = small_config();
  util::Rng rng(11);
  MlpModel model(cfg);
  model.init(rng);
  sparse::LabeledDataset test{make_batch_x(50, cfg.num_features, rng),
                              make_batch_y(50, cfg.num_classes, rng)};
  EXPECT_EQ(evaluate(model, test, 10).samples, 10u);
  EXPECT_EQ(evaluate(model, test, 0).samples, 50u);
  EXPECT_EQ(evaluate(model, test, 500).samples, 50u);
}

}  // namespace
}  // namespace hetero::nn
