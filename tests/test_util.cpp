// Thread pool, event queue, CSV writer, CLI parser.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/cli.h"
#include "util/error.h"
#include "util/csv.h"
#include "util/event_queue.h"
#include "util/thread_pool.h"

namespace hetero::util {
namespace {

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmpty) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ManyTasksComplete) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&] { counter++; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(EventQueue, FifoOrder) {
  EventQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(EventQueue, TryPopEmpty) {
  EventQueue<int> q;
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(EventQueue, CloseDrainsThenNullopt) {
  EventQueue<int> q;
  q.push(7);
  q.close();
  EXPECT_EQ(q.pop().value(), 7);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, PushAfterCloseIgnored) {
  EventQueue<int> q;
  q.close();
  q.push(1);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(EventQueue, CrossThreadDelivery) {
  EventQueue<int> q;
  std::thread producer([&] {
    for (int i = 0; i < 100; ++i) q.push(i);
    q.close();
  });
  int expected = 0;
  while (auto v = q.pop()) {
    EXPECT_EQ(*v, expected++);
  }
  EXPECT_EQ(expected, 100);
  producer.join();
}

TEST(EventQueue, SizeReflectsContent) {
  EventQueue<int> q;
  EXPECT_EQ(q.size(), 0u);
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.size(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = ::testing::TempDir() + "/test.csv";
  {
    CsvWriter w(path, {"x", "y"});
    ASSERT_TRUE(w.ok());
    w.row({"1", "2"});
    w.row_numeric({3.5, 4.25});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "3.5,4.25");
  std::remove(path.c_str());
}

TEST(Cli, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--alpha=3", "--name=abc"};
  ArgParser args(3, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_string("name", ""), "abc");
}

TEST(Cli, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--count", "7"};
  ArgParser args(3, argv);
  EXPECT_EQ(args.get_int("count", 0), 7);
}

TEST(Cli, BooleanFlag) {
  const char* argv[] = {"prog", "--verbose"};
  ArgParser args(2, argv);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("quiet", false));
}

TEST(Cli, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  ArgParser args(1, argv);
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.5), 0.5);
  EXPECT_EQ(args.get_string("s", "dft"), "dft");
}

TEST(Cli, DoubleParsing) {
  const char* argv[] = {"prog", "--lr=0.125"};
  ArgParser args(2, argv);
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.0), 0.125);
}

TEST(Cli, ReportUnknownFindsTypos) {
  const char* argv[] = {"prog", "--knwon=1"};
  ArgParser args(2, argv);
  args.get_int("known", 0);
  EXPECT_TRUE(args.report_unknown());
}

TEST(Cli, ReportUnknownCleanWhenAllConsumed) {
  const char* argv[] = {"prog", "--a=1"};
  ArgParser args(2, argv);
  args.get_int("a", 0);
  EXPECT_FALSE(args.report_unknown());
}

TEST(ThreadPool, NestedSubmitFromWorker) {
  // A worker may enqueue follow-up work without deadlocking.
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return 7; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 8);
}

TEST(EventQueue, MoveOnlyFriendlyTypes) {
  EventQueue<std::unique_ptr<int>> q;
  q.push(std::make_unique<int>(5));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

TEST(EventQueue, ManyProducersOneConsumer) {
  EventQueue<int> q;
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&q, t] {
      for (int i = 0; i < 50; ++i) q.push(t * 100 + i);
    });
  }
  for (auto& p : producers) p.join();
  q.close();
  int count = 0;
  while (q.pop()) ++count;
  EXPECT_EQ(count, 200);
}

TEST(Cli, LastValueWinsOnDuplicateFlags) {
  const char* argv[] = {"prog", "--n=1", "--n=2"};
  ArgParser args(3, argv);
  EXPECT_EQ(args.get_int("n", 0), 2);
}

TEST(Cli, NegativeNumbersViaEquals) {
  const char* argv[] = {"prog", "--delta=-0.5"};
  ArgParser args(2, argv);
  EXPECT_DOUBLE_EQ(args.get_double("delta", 0.0), -0.5);
}

TEST(Cli, ParseSizeList) {
  EXPECT_EQ(parse_size_list("256,128,64"),
            (std::vector<std::size_t>{256, 128, 64}));
  EXPECT_EQ(parse_size_list("48"), (std::vector<std::size_t>{48}));
  EXPECT_THROW(parse_size_list(""), hetero::ParseError);
  EXPECT_THROW(parse_size_list("128,"), hetero::ParseError);
  EXPECT_THROW(parse_size_list(",128"), hetero::ParseError);
  EXPECT_THROW(parse_size_list("128,0,64"), hetero::ParseError);
  EXPECT_THROW(parse_size_list("12x"), hetero::ParseError);
  EXPECT_THROW(parse_size_list("128,,64"), hetero::ParseError);
  // Overflow and negative entries go through the strict parser too; strtoul
  // used to wrap "99999999999999999999" and negate "-64" silently.
  EXPECT_THROW(parse_size_list("99999999999999999999"), hetero::ParseError);
  EXPECT_THROW(parse_size_list("256,-64"), hetero::ParseError);
}

TEST(Cli, NumericGettersRejectGarbageValues) {
  // Pre-fix, strtoll/strtod swallowed errors and "--gpus=abc" became 0.
  const char* argv[] = {"prog", "--gpus=abc", "--lr=0.5x", "--gap=1e999"};
  ArgParser args(4, argv);
  EXPECT_THROW(args.get_int("gpus", 4), hetero::ParseError);
  EXPECT_THROW(args.get_double("lr", 0.5), hetero::ParseError);
  EXPECT_THROW(args.get_double("gap", 0.3), hetero::ParseError);
}

TEST(Cli, ParseErrorMessageNamesTheFlag) {
  const char* argv[] = {"prog", "--gpus=abc"};
  ArgParser args(2, argv);
  try {
    args.get_int("gpus", 4);
    FAIL() << "expected ParseError";
  } catch (const hetero::ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("--gpus"), std::string::npos);
  }
}

TEST(Cli, GetSizeList) {
  const char* argv[] = {"prog", "--hidden=256,128"};
  ArgParser args(2, argv);
  EXPECT_EQ(args.get_size_list("hidden", {48}),
            (std::vector<std::size_t>{256, 128}));
  EXPECT_EQ(args.get_size_list("other", {48}),
            (std::vector<std::size_t>{48}));
  EXPECT_FALSE(args.report_unknown());
}

}  // namespace
}  // namespace hetero::util
