#include "sim/cost_model.h"

#include <gtest/gtest.h>

#include "sim/link_model.h"
#include "sim/profiles.h"
#include "sim/virtual_gpu.h"
#include "util/stats.h"

namespace hetero::sim {
namespace {

KernelDesc dense_kernel(double gflop) {
  return {gflop * 1e9, 0.0, false, "dense"};
}

TEST(CostModel, ComputeBoundKernel) {
  DeviceSpec spec;
  spec.dense_gflops = 1000.0;
  spec.jitter_sigma = 0.0;
  // 1 GFLOP on a 1000 GFLOP/s device = 1 ms.
  EXPECT_NEAR(CostModel::kernel_seconds(dense_kernel(1.0), spec), 1e-3,
              1e-9);
}

TEST(CostModel, MemoryBoundKernelUsesBandwidth) {
  DeviceSpec spec;
  spec.mem_bandwidth_gbs = 100.0;
  KernelDesc k{1.0, 1e9, false, "memcpy-ish"};  // 1 GB, negligible flops
  EXPECT_NEAR(CostModel::kernel_seconds(k, spec), 0.01, 1e-9);
}

TEST(CostModel, RooflineTakesMax) {
  DeviceSpec spec;
  spec.dense_gflops = 1.0;
  spec.mem_bandwidth_gbs = 1000.0;
  KernelDesc k{2e9, 1e3, false, "compute-bound"};
  EXPECT_NEAR(CostModel::kernel_seconds(k, spec), 2.0, 1e-9);
}

TEST(CostModel, SparseKernelsUseSparseRate) {
  DeviceSpec spec;
  spec.dense_gflops = 10000.0;
  spec.sparse_gflops = 100.0;
  KernelDesc sparse{1e9, 0.0, true, "spmm"};
  KernelDesc dense{1e9, 0.0, false, "gemm"};
  EXPECT_GT(CostModel::kernel_seconds(sparse, spec),
            50 * CostModel::kernel_seconds(dense, spec));
}

TEST(CostModel, SlowerDeviceTakesLonger) {
  DeviceSpec fast, slow;
  fast.speed_factor = 1.0;
  slow.speed_factor = 0.76;
  const auto k = dense_kernel(1.0);
  const double tf = CostModel::kernel_seconds(k, fast);
  const double ts = CostModel::kernel_seconds(k, slow);
  EXPECT_NEAR(ts / tf, 1.0 / 0.76, 1e-9);
}

TEST(CostModel, LaunchOverheadScalesWithLaunches) {
  DeviceSpec spec;
  EXPECT_NEAR(CostModel::launch_seconds(10, 1, spec),
              10 * CostModel::launch_seconds(1, 1, spec), 1e-12);
}

TEST(CostModel, LaunchContentionGrowsWithManagers) {
  // Section IV: kernel startup overhead increases with the number of GPUs
  // sharing the CUDA environment.
  DeviceSpec spec;
  const double one = CostModel::launch_seconds(1, 1, spec);
  const double four = CostModel::launch_seconds(1, 4, spec);
  EXPECT_GT(four, one);
  EXPECT_NEAR(four / one, 1.0 + spec.launch_contention * 3, 1e-9);
}

TEST(CostModel, FusionReducesLaunches) {
  DeviceSpec spec;
  spec.jitter_sigma = 0.0;
  util::Rng rng(1);
  std::vector<KernelDesc> kernels(12, dense_kernel(0.001));
  const double fused = CostModel::sequence_seconds(kernels, spec, true, 4, rng);
  const double unfused =
      CostModel::sequence_seconds(kernels, spec, false, 4, rng);
  EXPECT_GT(unfused, fused);
  EXPECT_NEAR(unfused - fused, CostModel::launch_seconds(11, 4, spec), 1e-9);
}

TEST(CostModel, JitterIsMultiplicativeAndSeeded) {
  DeviceSpec spec;
  spec.jitter_sigma = 0.2;
  util::Rng a(7), b(7);
  std::vector<KernelDesc> kernels{dense_kernel(1.0)};
  const double ta = CostModel::sequence_seconds(kernels, spec, true, 1, a);
  const double tb = CostModel::sequence_seconds(kernels, spec, true, 1, b);
  EXPECT_DOUBLE_EQ(ta, tb);  // same seed, same draw
  util::Rng c(8);
  const double tc = CostModel::sequence_seconds(kernels, spec, true, 1, c);
  EXPECT_NE(ta, tc);
}

TEST(VirtualGpu, StreamClockAdvances) {
  VirtualGpu gpu(0, DeviceSpec{}, 1);
  const double t1 = gpu.submit(0, {dense_kernel(0.1)}, 0.0);
  EXPECT_GT(t1, 0.0);
  const double t2 = gpu.submit(0, {dense_kernel(0.1)}, 0.0);
  EXPECT_GT(t2, t1);  // same stream serializes
}

TEST(VirtualGpu, EarliestStartRespected) {
  VirtualGpu gpu(0, DeviceSpec{}, 2);
  const double t = gpu.submit(0, {dense_kernel(0.01)}, 5.0);
  EXPECT_GT(t, 5.0);
}

TEST(VirtualGpu, StreamsAreIndependent) {
  DeviceSpec spec;
  spec.jitter_sigma = 0.0;
  VirtualGpu gpu(0, spec, 1, 2);
  gpu.submit(0, {dense_kernel(10.0)}, 0.0);
  const double t1 = gpu.submit(1, {dense_kernel(0.001)}, 0.0);
  EXPECT_LT(t1, gpu.stream_free_at(0));  // stream 1 unaffected by stream 0
}

TEST(VirtualGpu, DeviceFreeAtIsMaxOverStreams) {
  VirtualGpu gpu(0, DeviceSpec{}, 1, 3);
  gpu.submit(2, {dense_kernel(1.0)}, 0.0);
  EXPECT_DOUBLE_EQ(gpu.device_free_at(), gpu.stream_free_at(2));
}

TEST(VirtualGpu, WaitAllUntilSynchronizes) {
  VirtualGpu gpu(0, DeviceSpec{}, 1, 2);
  gpu.wait_all_until(42.0);
  EXPECT_DOUBLE_EQ(gpu.stream_free_at(0), 42.0);
  EXPECT_DOUBLE_EQ(gpu.stream_free_at(1), 42.0);
  gpu.wait_all_until(1.0);  // never goes backwards
  EXPECT_DOUBLE_EQ(gpu.stream_free_at(0), 42.0);
}

TEST(VirtualGpu, BusySecondsAccumulate) {
  DeviceSpec spec;
  spec.jitter_sigma = 0.0;
  VirtualGpu gpu(0, spec, 1);
  EXPECT_DOUBLE_EQ(gpu.busy_seconds(), 0.0);
  gpu.submit(0, {dense_kernel(1.0)}, 0.0);
  EXPECT_GT(gpu.busy_seconds(), 0.0);
}

TEST(VirtualGpu, MemoryAccounting) {
  DeviceSpec spec;
  spec.memory_bytes = 1000;
  VirtualGpu gpu(0, spec, 1);
  gpu.allocate(600);
  EXPECT_EQ(gpu.memory_used(), 600u);
  EXPECT_EQ(gpu.memory_free(), 400u);
  gpu.free(100);
  EXPECT_EQ(gpu.memory_used(), 500u);
}

TEST(VirtualGpu, OutOfMemoryThrows) {
  DeviceSpec spec;
  spec.memory_bytes = 1000;
  VirtualGpu gpu(3, spec, 1);
  gpu.allocate(900);
  EXPECT_THROW(gpu.allocate(200), OutOfDeviceMemory);
  try {
    gpu.allocate(200);
  } catch (const OutOfDeviceMemory& e) {
    EXPECT_EQ(e.device(), 3);
  }
}

TEST(VirtualGpu, MaxBatchForFootprint) {
  DeviceSpec spec;
  spec.memory_bytes = 1000;
  VirtualGpu gpu(0, spec, 1);
  gpu.allocate(200);
  EXPECT_EQ(gpu.max_batch_for(100), 8u);
  EXPECT_EQ(gpu.max_batch_for(0), 0u);
}

TEST(Profiles, HeterogeneousGapMatchesFigureOne) {
  const auto specs = v100_heterogeneous(4, 0.32, 0.0);
  ASSERT_EQ(specs.size(), 4u);
  // Epoch time ratio slowest/fastest = speed(fastest)/speed(slowest) = 1.32.
  std::vector<double> epoch_times;
  for (const auto& s : specs) epoch_times.push_back(1.0 / s.speed_factor);
  EXPECT_NEAR(util::relative_spread(epoch_times), 0.32, 1e-9);
}

TEST(Profiles, SingleDeviceIsNominal) {
  const auto specs = v100_heterogeneous(1);
  EXPECT_DOUBLE_EQ(specs[0].speed_factor, 1.0);
}

TEST(Profiles, HomogeneousAllEqual) {
  const auto specs = v100_homogeneous(4);
  for (const auto& s : specs) EXPECT_DOUBLE_EQ(s.speed_factor, 1.0);
}

TEST(Profiles, SpeedFactorsMonotone) {
  const auto specs = v100_heterogeneous(8, 0.32);
  for (std::size_t i = 1; i < specs.size(); ++i) {
    EXPECT_LT(specs[i].speed_factor, specs[i - 1].speed_factor);
  }
}

TEST(LinkModel, BandwidthAndLatency) {
  LinkSpec peer{10.0, 100.0};  // 10 GB/s, 100 us
  LinkModel links(4, peer, peer);
  // 1 GB at 10 GB/s = 0.1 s, plus 100 us latency.
  EXPECT_NEAR(links.transfer_seconds(1'000'000'000, 0, 1), 0.1001, 1e-6);
}

TEST(LinkModel, ConcurrencySharesBandwidth) {
  LinkSpec spec{10.0, 0.0};
  LinkModel links(4, spec, spec);
  const double alone = links.transfer_seconds(1'000'000, 0, 1, 1);
  const double shared = links.transfer_seconds(1'000'000, 0, 1, 4);
  EXPECT_NEAR(shared, 4 * alone, 1e-12);
}

TEST(LinkModel, HostLinkDistinctFromPeer) {
  LinkSpec peer{24.0, 10.0};
  LinkSpec host{12.0, 15.0};
  LinkModel links(4, peer, host);
  EXPECT_GT(links.transfer_seconds(1 << 20, LinkModel::kHost, 0),
            links.transfer_seconds(1 << 20, 0, 1));
}

TEST(VirtualGpu, TransientSlowdownStretchesWork) {
  DeviceSpec spec;
  spec.jitter_sigma = 0.0;
  spec.transient_probability = 1.0;  // always degraded
  spec.transient_factor = 0.5;
  spec.transient_duration = 1e9;
  VirtualGpu degraded(0, spec, 1);
  DeviceSpec healthy = spec;
  healthy.transient_probability = 0.0;
  VirtualGpu normal(1, healthy, 1);

  // Large kernel so constant launch overhead is negligible in the ratio.
  const auto k = dense_kernel(1000.0);
  const double t_degraded = degraded.submit(0, {k}, 0.0);
  const double t_normal = normal.submit(0, {k}, 0.0);
  EXPECT_NEAR(t_degraded / t_normal, 2.0, 0.01);
  EXPECT_EQ(degraded.transient_episodes(), 1u);
}

TEST(VirtualGpu, TransientEpisodeExpires) {
  DeviceSpec spec;
  spec.jitter_sigma = 0.0;
  spec.transient_probability = 1.0;
  spec.transient_factor = 0.5;
  spec.transient_duration = 1e-6;  // expires before the next submission
  VirtualGpu gpu(0, spec, 1);
  const double t1 = gpu.submit(0, {dense_kernel(1.0)}, 0.0);
  // Second submission starts after expiry; it re-enters a NEW episode
  // (probability 1), so episodes count twice.
  gpu.submit(0, {dense_kernel(1.0)}, t1 + 1.0);
  EXPECT_EQ(gpu.transient_episodes(), 2u);
}

TEST(VirtualGpu, NoTransientByDefault) {
  VirtualGpu gpu(0, DeviceSpec{}, 1);
  for (int i = 0; i < 20; ++i) gpu.submit(0, {dense_kernel(0.1)}, 0.0);
  EXPECT_EQ(gpu.transient_episodes(), 0u);
}

TEST(Profiles, CustomSpeeds) {
  const auto specs = v100_custom({1.0, 0.9, 0.4});
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_DOUBLE_EQ(specs[0].speed_factor, 1.0);
  EXPECT_DOUBLE_EQ(specs[2].speed_factor, 0.4);
}

class GapParam : public ::testing::TestWithParam<double> {};

TEST_P(GapParam, ProfileReproducesRequestedGap) {
  const double gap = GetParam();
  const auto specs = v100_heterogeneous(4, gap, 0.0);
  std::vector<double> times;
  for (const auto& s : specs) times.push_back(1.0 / s.speed_factor);
  EXPECT_NEAR(util::relative_spread(times), gap, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Gaps, GapParam,
                         ::testing::Values(0.0, 0.1, 0.2, 0.32, 0.5));

}  // namespace
}  // namespace hetero::sim
