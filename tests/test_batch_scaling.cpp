// Algorithm 1 (Batch Size Scaling) unit and property tests.
#include "core/batch_scaling.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hetero::core {
namespace {

BatchScalingParams default_params() {
  BatchScalingParams p;
  p.batch_min = 16;
  p.batch_max = 128;
  p.beta = 8.0;  // b_min / 2 per the paper's methodology
  return p;
}

std::vector<GpuSgdState> make_gpus(std::vector<std::size_t> batches,
                                   std::vector<std::size_t> updates,
                                   double lr = 0.1) {
  std::vector<GpuSgdState> gpus(batches.size());
  for (std::size_t i = 0; i < gpus.size(); ++i) {
    gpus[i].batch_size = batches[i];
    gpus[i].updates = updates[i];
    gpus[i].learning_rate = lr;
  }
  return gpus;
}

TEST(BatchScaling, EqualUpdatesNoChange) {
  auto gpus = make_gpus({64, 64, 64, 64}, {25, 25, 25, 25});
  const auto outcome = scale_batch_sizes(gpus, default_params());
  EXPECT_FALSE(outcome.any_change);
  EXPECT_DOUBLE_EQ(outcome.mean_updates, 25.0);
  for (const auto& g : gpus) EXPECT_EQ(g.batch_size, 64u);
}

TEST(BatchScaling, FasterGpuGetsLargerBatch) {
  auto gpus = make_gpus({64, 64}, {30, 20});
  const auto outcome = scale_batch_sizes(gpus, default_params());
  EXPECT_TRUE(outcome.any_change);
  // u0 = 30 > mean 25: b0 += beta * 5 = 104... wait beta=8: 64+8*5 = 104.
  EXPECT_EQ(gpus[0].batch_size, 104u);
  EXPECT_EQ(gpus[1].batch_size, 24u);
}

TEST(BatchScaling, LearningRateFollowsLinearScaling) {
  auto gpus = make_gpus({64, 64}, {30, 20}, 0.1);
  scale_batch_sizes(gpus, default_params());
  EXPECT_NEAR(gpus[0].learning_rate, 0.1 * 104.0 / 64.0, 1e-12);
  EXPECT_NEAR(gpus[1].learning_rate, 0.1 * 24.0 / 64.0, 1e-12);
}

TEST(BatchScaling, RespectsUpperBound) {
  auto gpus = make_gpus({120, 64}, {40, 10});
  scale_batch_sizes(gpus, default_params());
  // 120 + 8*15 = 240 > 128: no change for GPU 0 (Algorithm 1 guard).
  EXPECT_EQ(gpus[0].batch_size, 120u);
  EXPECT_DOUBLE_EQ(gpus[0].learning_rate, 0.1);
}

TEST(BatchScaling, RespectsLowerBound) {
  auto gpus = make_gpus({64, 20}, {40, 10});
  scale_batch_sizes(gpus, default_params());
  // 20 - 8*15 = -100 < 16: no change for GPU 1.
  EXPECT_EQ(gpus[1].batch_size, 20u);
}

TEST(BatchScaling, ExactBoundaryAllowed) {
  BatchScalingParams p = default_params();
  p.beta = 1.0;
  auto gpus = make_gpus({127, 17}, {26, 24});
  scale_batch_sizes(gpus, p);
  EXPECT_EQ(gpus[0].batch_size, 128u);  // == b_max allowed
  EXPECT_EQ(gpus[1].batch_size, 16u);   // == b_min allowed
}

TEST(BatchScaling, SingleGpuNeverChanges) {
  auto gpus = make_gpus({64}, {25});
  const auto outcome = scale_batch_sizes(gpus, default_params());
  EXPECT_FALSE(outcome.any_change);
}

TEST(BatchScaling, EmptyInputSafe) {
  std::vector<GpuSgdState> gpus;
  const auto outcome = scale_batch_sizes(gpus, default_params());
  EXPECT_FALSE(outcome.any_change);
}

TEST(BatchScaling, MeanIsFractional) {
  auto gpus = make_gpus({64, 64, 64}, {10, 10, 11});
  const auto outcome = scale_batch_sizes(gpus, default_params());
  EXPECT_NEAR(outcome.mean_updates, 31.0 / 3.0, 1e-12);
}

TEST(BatchScaling, AtMeanUnchanged) {
  auto gpus = make_gpus({64, 64, 64}, {20, 25, 30});
  scale_batch_sizes(gpus, default_params());
  EXPECT_EQ(gpus[1].batch_size, 64u);  // exactly the mean
  EXPECT_GT(gpus[2].batch_size, 64u);
  EXPECT_LT(gpus[0].batch_size, 64u);
}

// Property: iterating Algorithm 1 against a fixed speed model converges to a
// steady state where update counts equalize (the algorithm's stated goal).
TEST(BatchScaling, ConvergesToEqualUpdates) {
  BatchScalingParams p;
  p.batch_min = 16;
  p.batch_max = 256;
  p.beta = 8.0;

  // GPU speeds in samples/second; mega-batch fixed at 6400 samples.
  const std::vector<double> speed{1000, 930, 860, 760};
  auto gpus = make_gpus({256, 256, 256, 256}, {0, 0, 0, 0});

  double spread = 1e9;
  for (int iter = 0; iter < 60; ++iter) {
    // Simulate: every GPU processes batches until 6400 samples consumed,
    // proportioning work by speed (dynamic scheduling steady state).
    double total_rate = 0.0;
    for (std::size_t g = 0; g < 4; ++g) total_rate += speed[g];
    for (std::size_t g = 0; g < 4; ++g) {
      const double samples = 6400.0 * speed[g] / total_rate;
      gpus[g].updates = static_cast<std::size_t>(
          std::round(samples / static_cast<double>(gpus[g].batch_size)));
    }
    std::size_t mn = gpus[0].updates, mx = gpus[0].updates;
    for (const auto& g : gpus) {
      mn = std::min(mn, g.updates);
      mx = std::max(mx, g.updates);
    }
    spread = static_cast<double>(mx - mn);
    scale_batch_sizes(gpus, p);
  }
  // After convergence the fastest GPU holds a larger batch than the slowest
  // and the update-count spread is tiny.
  EXPECT_LE(spread, 1.0);
  EXPECT_GT(gpus[0].batch_size, gpus[3].batch_size);
  for (const auto& g : gpus) {
    EXPECT_GE(g.batch_size, p.batch_min);
    EXPECT_LE(g.batch_size, p.batch_max);
  }
}

TEST(ScalingScheduler, FirstObservationScales) {
  ScalingScheduler sched;
  EXPECT_TRUE(sched.observe({64, 64}));
  EXPECT_EQ(sched.interval(), 1u);
}

TEST(ScalingScheduler, StabilityWidensInterval) {
  ScalingScheduler sched(/*stability_window=*/2, /*max_interval=*/8);
  sched.observe({64, 64});
  // No movement for several mega-batches: declared stable, interval 2.
  sched.observe({64, 64});
  sched.observe({64, 64});
  EXPECT_TRUE(sched.stable());
  EXPECT_EQ(sched.interval(), 2u);
}

TEST(ScalingScheduler, OscillationWidensInterval) {
  ScalingScheduler sched(2, 8);
  sched.observe({64, 64});
  sched.observe({72, 56});  // first move (establishes direction)
  sched.observe({64, 64});  // reversal 1
  sched.observe({72, 56});  // reversal 2 -> oscillating
  EXPECT_TRUE(sched.oscillating());
  EXPECT_GE(sched.interval(), 2u);
}

TEST(ScalingScheduler, DriftResetsToEveryMegabatch) {
  ScalingScheduler sched(2, 8);
  sched.observe({64, 64});
  sched.observe({64, 64});
  sched.observe({64, 64});  // stable -> interval 2
  ASSERT_EQ(sched.interval(), 2u);
  sched.observe({80, 48});  // genuine drift
  EXPECT_EQ(sched.interval(), 1u);
  EXPECT_FALSE(sched.stable());
}

TEST(ScalingScheduler, IntervalSkipsScaling) {
  // Cap the interval at 2 so continued stability cannot widen it further;
  // observations then alternate skip/scale.
  ScalingScheduler sched(1, 2);
  sched.observe({64, 64});
  sched.observe({64, 64});  // stable after window 1 -> interval 2
  ASSERT_EQ(sched.interval(), 2u);
  const bool first = sched.observe({64, 64});
  const bool second = sched.observe({64, 64});
  EXPECT_NE(first, second);
}

TEST(ScalingScheduler, IntervalCapped) {
  ScalingScheduler sched(1, 4);
  sched.observe({64});
  for (int i = 0; i < 20; ++i) sched.observe({64});
  EXPECT_LE(sched.interval(), 4u);
}

class BetaParam : public ::testing::TestWithParam<double> {};

TEST_P(BetaParam, BoundsAlwaysRespected) {
  BatchScalingParams p = default_params();
  p.beta = GetParam();
  auto gpus = make_gpus({128, 96, 48, 16}, {50, 30, 12, 4});
  for (int i = 0; i < 10; ++i) {
    scale_batch_sizes(gpus, p);
    for (const auto& g : gpus) {
      EXPECT_GE(g.batch_size, p.batch_min);
      EXPECT_LE(g.batch_size, p.batch_max);
      EXPECT_GT(g.learning_rate, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, BetaParam,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0, 16.0));

}  // namespace
}  // namespace hetero::core
