// Fuzzes the fault-plan spec grammar (kind@time[+dur][xfactor]:gpuN) and
// its membership validator: parse + validate must accept or throw
// hetero::ParseError for any byte string, and every accepted plan must
// round-trip through to_string()/parse() unchanged (the grammar is how
// seeded Poisson plans are recorded and replayed for elastic-membership
// reproducibility).
#include <gtest/gtest.h>

#include <stdexcept>

#include "fault/fault_plan.h"
#include "util/error.h"
#include "util/fuzz.h"

namespace hetero::fault {
namespace {

namespace fuzz = util::fuzz;

TEST(FuzzFaultPlan, ParseAndValidateNeverCrash) {
  fuzz::Corpus corpus({
      "slow@0.5+1.0x0.4:gpu0;stall@1.0+0.25:gpu2;crash@2.5:gpu1;"
      "join@4.0:gpu1;oom@0.25+3.0x0.5:gpu3",
      "crash@2.5:gpu1;join@4.0:gpu1",
      "slow@0.125+0.75x0.333:gpu1",
      "oom@1+2x0.25:gpu0",
      "stall@3.5+0.5:gpu3",
  });
  const fuzz::Mutator mutator({"slow", "stall", "crash", "join", "oom", "@",
                               "+", "x", ":gpu", ";", "gpu", "-1", "1e308",
                               "nan", "inf", ".5", "0", "18446744073709551615"});
  auto opts = fuzz::Options::from_env({});
  const auto stats =
      fuzz::run(opts, corpus, mutator, [](const std::string& input) {
        const auto plan = FaultPlan::parse(input);
        plan.validate(4);  // may also reject (ParseError) — that is fine
        // A fully valid plan must survive the to_string()/parse()
        // round-trip: the rendered grammar is itself trusted output.
        const auto rendered = plan.to_string();
        FaultPlan reparsed;
        try {
          reparsed = FaultPlan::parse(rendered);
        } catch (const ParseError& e) {
          throw std::logic_error("accepted plan failed to round-trip: " +
                                 std::string(e.what()));
        }
        if (reparsed.events.size() != plan.events.size()) {
          throw std::logic_error("round-trip changed event count");
        }
      });
  EXPECT_GE(stats.iterations, 10000u);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.rejected, 0u);
}

TEST(FuzzFaultPlan, RandomPlansAlwaysValidateAndRoundTrip) {
  // The generator side of the grammar: seeded Poisson plans must be
  // valid and re-parseable for every seed (replay depends on it).
  RandomFaultConfig cfg;
  cfg.horizon = 6.0;
  cfg.slowdown_rate = 2.0;
  cfg.stall_rate = 1.0;
  cfg.crash_fraction = 0.5;
  cfg.rejoin = true;
  for (std::uint64_t seed = 0; seed < 256; ++seed) {
    const auto plan = FaultPlan::random(4, cfg, seed);
    ASSERT_NO_THROW(plan.validate(4)) << "seed " << seed;
    const auto reparsed = FaultPlan::parse(plan.to_string());
    ASSERT_EQ(reparsed.events.size(), plan.events.size()) << "seed " << seed;
    ASSERT_NO_THROW(reparsed.validate(4)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace hetero::fault
