// Fuzzes the libSVM dataset parser: for any byte string, read_libsvm must
// either return a structurally valid dataset or throw hetero::ParseError.
// Run under the asan/ubsan presets this also proves no heap corruption or
// UB on hostile datasets (the paper's pipeline ingests real XML-repository
// files; a malformed line must never take the trainer down).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "sparse/libsvm.h"
#include "util/error.h"
#include "util/fuzz.h"

namespace hetero::sparse {
namespace {

namespace fuzz = util::fuzz;

fuzz::Corpus make_corpus() {
  return fuzz::Corpus({
      "1,3 0:0.5 4:1.5\n2 1:2.0\n",
      "2 100 50\n0 1:1.0\n1 2:1.0\n",
      "# comment\n\n0 1:1.0\n",
      "0 0:7.0\n",
      "12,9,4 0:0.25 1:-1.5e-3 7:3\n",
      "5 4:1e2\n",
      "0:1.0 1:2.0\n",  // unlabeled row
  });
}

fuzz::Mutator make_mutator() {
  return fuzz::Mutator({":", ",", "#", " ", "\n", "-", ".", "e", "E",
                        "0:", ":1", "4294967295", "99999999999999999999",
                        "1e308", "1e-308", "nan", "inf", "-inf", "abc"});
}

// The parser's postcondition on success: both CSR matrices hold their
// structural invariants and share row order. Violations escape as
// logic_error, which fuzz::run propagates as a test failure.
void check_dataset(const LabeledDataset& ds) {
  if (!ds.features.validate() || !ds.labels.validate()) {
    throw std::logic_error("libsvm produced an invalid CSR matrix");
  }
  if (ds.features.rows() != ds.labels.rows()) {
    throw std::logic_error("libsvm feature/label row mismatch");
  }
}

TEST(FuzzLibsvm, AutoSizedParserNeverCrashes) {
  auto corpus = make_corpus();
  const auto mutator = make_mutator();
  auto opts = fuzz::Options::from_env({});
  const auto stats =
      fuzz::run(opts, corpus, mutator, [](const std::string& input) {
        std::istringstream in(input);
        check_dataset(read_libsvm(in));
      });
  EXPECT_GE(stats.iterations, 10000u);
  EXPECT_GT(stats.accepted, 0u);  // the pristine seeds must parse
  EXPECT_GT(stats.rejected, 0u);  // and mutation must reach the error paths
}

TEST(FuzzLibsvm, DeclaredDimensionsParserNeverCrashes) {
  auto corpus = make_corpus();
  const auto mutator = make_mutator();
  auto opts = fuzz::Options::from_env({});
  opts.seed = 0x11B5711ULL;
  const auto stats =
      fuzz::run(opts, corpus, mutator, [](const std::string& input) {
        std::istringstream in(input);
        check_dataset(read_libsvm(in, 128, 64));
      });
  EXPECT_GE(stats.iterations, 10000u);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.rejected, 0u);
}

TEST(FuzzLibsvm, OneBasedParserNeverCrashes) {
  fuzz::Corpus corpus({"0 1:7.0\n", "1,2 3:0.5 9:1.25\n2 1:2.0\n"});
  const auto mutator = make_mutator();
  auto opts = fuzz::Options::from_env({});
  opts.seed = 0x0E1BA5EDULL;
  const auto stats =
      fuzz::run(opts, corpus, mutator, [](const std::string& input) {
        std::istringstream in(input);
        check_dataset(read_libsvm(in, 0, 0, /*one_based_indices=*/true));
      });
  EXPECT_GE(stats.iterations, 10000u);
  EXPECT_GT(stats.rejected, 0u);
}

}  // namespace
}  // namespace hetero::sparse
