// Fuzzes the HQPK quantized-payload decoder (comm/quant.h). Seeds are real
// encode_fp16 / encode_i8 outputs over fuzzed float blocks; the mutator's
// integer smashing reaches the rows/elems/cols fields and the float scales,
// so this covers hostile scales (0 / inf / nan / denormal), truncated
// buffers, and length mismatches. Contract: decode_payload() either
// succeeds or throws hetero::ParseError — never UB, a crash, or an
// unbounded allocation — and every accepted payload dequantizes into a
// buffer bounded by its own wire bytes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "comm/quant.h"
#include "util/error.h"
#include "util/fuzz.h"
#include "util/rng.h"

namespace hetero::comm {
namespace {

namespace fuzz = util::fuzz;

std::vector<float> fuzzed_block(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) {
    // Mix magnitudes so the int8 per-group scales span several orders and
    // the fp16 encoding produces both normal and subnormal halves.
    const double mag = rng.uniform(-6.0, 4.0);
    x = static_cast<float>(rng.uniform(-1.0, 1.0) * std::pow(10.0, mag));
  }
  return v;
}

std::string encoded_seed(MergePrecision p, std::size_t elems,
                         std::uint32_t cols, std::uint64_t seed) {
  const auto x = fuzzed_block(elems, seed);
  std::vector<std::uint8_t> out;
  if (p == MergePrecision::kFp16) {
    // Halve the loss scale on overflow, exactly as the merge path does —
    // the seed must be a clean encoding (no inf halves).
    float scale = 1024.0f;
    while (encode_fp16({x.data(), x.size()}, cols, scale, out) > 0 &&
           scale > LossScaleGuard::kMinScale) {
      scale *= 0.5f;
    }
  } else {
    encode_i8({x.data(), x.size()}, cols, out);
  }
  return std::string(reinterpret_cast<const char*>(out.data()), out.size());
}

const fuzz::Mutator kBinaryMutator{};

TEST(FuzzQuantPayload, DecoderNeverCrashesOrOverAllocates) {
  fuzz::Corpus corpus({
      encoded_seed(MergePrecision::kFp16, 1037, 512, 11),
      encoded_seed(MergePrecision::kInt8, 1037, 512, 12),
      encoded_seed(MergePrecision::kFp16, 16, 16, 13),   // one ragged row
      encoded_seed(MergePrecision::kInt8, 97, 16, 14),   // short last group
      encoded_seed(MergePrecision::kInt8, 0, 512, 15),   // empty payload
  });
  auto opts = fuzz::Options::from_env({});
  QuantizedPayload payload;
  std::vector<float> decoded;
  const auto stats = fuzz::run(
      opts, corpus, kBinaryMutator, [&](const std::string& input) {
        const auto* bytes =
            reinterpret_cast<const std::uint8_t*>(input.data());
        decode_payload({bytes, input.size()}, payload);
        // Accepted payloads are bounded by their own bytes: elems was
        // validated against the wire size before any allocation.
        const auto esize = precision_elem_bytes(payload.precision);
        if (payload.elems * esize > input.size() ||
            payload.scales.size() * sizeof(float) > input.size()) {
          throw std::logic_error("payload fields exceed input size");
        }
        dequantize(payload, decoded);
        if (decoded.size() != payload.elems) {
          throw std::logic_error("dequantize size mismatch");
        }
      });
  EXPECT_GE(stats.iterations, 10000u);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.rejected, 0u);
}

TEST(FuzzQuantPayload, RoundTripSurvivesDecodeAndRejectsHostileScales) {
  // Unfuzzed round trip: what the encoders emit must decode cleanly.
  for (const auto p : {MergePrecision::kFp16, MergePrecision::kInt8}) {
    const auto bytes = encoded_seed(p, 600, 100, 21);
    QuantizedPayload payload;
    decode_payload(
        {reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()},
        payload);
    EXPECT_EQ(payload.precision, p);
    EXPECT_EQ(payload.elems, 600u);
    EXPECT_EQ(payload.rows, 6u);
    std::vector<float> x;
    dequantize(payload, x);
    ASSERT_EQ(x.size(), 600u);
    for (const float v : x) ASSERT_TRUE(std::isfinite(v));
  }

  // Surgical scale corruption: inf loss scale (fp16, offset 12) and a nan
  // per-group scale (int8, offset 32) must be typed errors.
  auto fp16_bytes = encoded_seed(MergePrecision::kFp16, 64, 64, 22);
  const float inf = std::numeric_limits<float>::infinity();
  std::memcpy(fp16_bytes.data() + 12, &inf, sizeof(inf));
  QuantizedPayload payload;
  EXPECT_THROW(
      decode_payload({reinterpret_cast<const std::uint8_t*>(
                          fp16_bytes.data()),
                      fp16_bytes.size()},
                     payload),
      hetero::ParseError);

  auto i8_bytes = encoded_seed(MergePrecision::kInt8, 64, 64, 23);
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  std::memcpy(i8_bytes.data() + 32, &qnan, sizeof(qnan));
  try {
    decode_payload({reinterpret_cast<const std::uint8_t*>(i8_bytes.data()),
                    i8_bytes.size()},
                   payload);
    FAIL() << "expected ParseError";
  } catch (const hetero::ParseError& e) {
    EXPECT_EQ(e.source(), "quant-payload");
    EXPECT_NE(e.offset(), hetero::ParseError::npos);
  }

  // Truncation: every proper prefix is a typed error.
  const auto whole = encoded_seed(MergePrecision::kInt8, 200, 64, 24);
  for (const double frac : {0.0, 0.2, 0.6, 0.99}) {
    const auto cut =
        static_cast<std::size_t>(frac * static_cast<double>(whole.size()));
    EXPECT_THROW(
        decode_payload({reinterpret_cast<const std::uint8_t*>(whole.data()),
                        cut},
                       payload),
        hetero::ParseError)
        << "prefix of " << cut << " bytes";
  }
}

}  // namespace
}  // namespace hetero::comm
