// Fuzzes the CLI-facing parsers: parse_size_list (--hidden lists) and the
// ArgParser numeric getters. Flag values come straight from the user's
// shell; "--gpus=abc" must throw hetero::ParseError (it used to strtoll to
// 0 silently), and a mutated size list must never crash or wrap.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/cli.h"
#include "util/error.h"
#include "util/fuzz.h"

namespace hetero::util {
namespace {

/// ArgParser reports positional/unknown args on stderr; over 10k mutated
/// command lines that is megabytes of noise, so mute stderr for the run.
class StderrSilencer {
 public:
  StderrSilencer() : saved_(dup(2)) {
    std::fflush(stderr);
    if (FILE* sink = std::fopen("/dev/null", "w")) {
      dup2(fileno(sink), 2);
      std::fclose(sink);
    }
  }
  ~StderrSilencer() {
    std::fflush(stderr);
    if (saved_ >= 0) {
      dup2(saved_, 2);
      close(saved_);
    }
  }

 private:
  int saved_;
};

TEST(FuzzCli, ParseSizeListNeverCrashes) {
  fuzz::Corpus corpus({"256,128,64", "48", "1,2,3,4,5,6,7,8", "1024"});
  const fuzz::Mutator mutator({",", "0", "-", "+", " ", "99999999999999999999",
                               "18446744073709551616", "0x", "e9", "1,"});
  auto opts = fuzz::Options::from_env({});
  const auto stats =
      fuzz::run(opts, corpus, mutator, [](const std::string& input) {
        const auto sizes = parse_size_list(input);
        for (const auto s : sizes) {
          if (s == 0) throw std::logic_error("size list accepted a zero");
        }
      });
  EXPECT_GE(stats.iterations, 10000u);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.rejected, 0u);
}

TEST(FuzzCli, ArgParserGettersNeverCrash) {
  fuzz::Corpus corpus({
      "--method adaptive --gpus 4 --gap 0.32 --lr 0.5 --hidden 256,128",
      "--model deep --sparse-merge --seed 7 --batch-max=128",
      "--fault-plan crash@2.5:gpu1 --checkpoint-every 2",
  });
  const fuzz::Mutator mutator({"--", "=", " ", "-", ".", "gpus", "lr",
                               "hidden", "true", "1e999", "nan", ","});
  auto opts = fuzz::Options::from_env({});
  opts.seed = 0xC11FULL;
  StderrSilencer mute;
  const auto stats =
      fuzz::run(opts, corpus, mutator, [](const std::string& input) {
        // Split the fuzz input into an argv the way a shell would.
        std::vector<std::string> words{"fuzz_cli"};
        std::istringstream ss(input);
        std::string word;
        while (ss >> word && words.size() < 64) words.push_back(word);
        std::vector<const char*> argv;
        argv.reserve(words.size());
        for (const auto& w : words) argv.push_back(w.c_str());

        ArgParser args(static_cast<int>(argv.size()), argv.data());
        // Exercise every getter type; each may throw ParseError only.
        args.get_string("method", "adaptive");
        args.get_int("gpus", 4);
        args.get_int("seed", 1);
        args.get_double("gap", 0.32);
        args.get_double("lr", 0.5);
        args.get_bool("sparse-merge", false);
        args.get_size_list("hidden", {48});
        args.report_unknown();
      });
  EXPECT_GE(stats.iterations, 10000u);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.rejected, 0u);
}

}  // namespace
}  // namespace hetero::util
