// Fuzzes the HGCK checkpoint loader and the embedded model-blob loader
// (nn::save_model v1/v2). Seeds are real serialized checkpoints/models;
// the mutator's 8-byte integer smashing reaches the length/count fields,
// so this is the regression guard for "hostile length must throw
// hetero::ParseError, not bad_alloc" (restartable training consumes these
// bytes from disk on every --resume-from).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "fault/checkpoint.h"
#include "nn/deep_mlp.h"
#include "nn/mlp.h"
#include "nn/serialize.h"
#include "util/error.h"
#include "util/fuzz.h"

namespace hetero::fault {
namespace {

namespace fuzz = util::fuzz;

std::string serialized_model_v1() {
  nn::MlpConfig cfg;
  cfg.num_features = 12;
  cfg.hidden = 6;
  cfg.num_classes = 4;
  nn::MlpModel model(cfg);
  std::ostringstream out(std::ios::binary);
  nn::save_model(out, model);
  return out.str();
}

std::string serialized_model_v2() {
  nn::DeepMlpConfig cfg;
  cfg.num_features = 10;
  cfg.hidden = {8, 5};
  cfg.num_classes = 3;
  nn::DeepMlp model(cfg);
  std::ostringstream out(std::ios::binary);
  nn::save_model(out, model);
  return out.str();
}

std::string serialized_checkpoint() {
  TrainingCheckpoint ckpt;
  ckpt.seed = 42;
  ckpt.megabatches_completed = 3;
  ckpt.samples_served = 1280;
  ckpt.round_robin_cursor = 2;
  ckpt.vtime = 1.75;
  ckpt.best_top1 = 0.5;
  ckpt.stagnation = 1;
  ckpt.gpus.resize(3);
  for (std::size_t g = 0; g < ckpt.gpus.size(); ++g) {
    auto& s = ckpt.gpus[g];
    s.batch_size = 32 << g;
    s.learning_rate = 0.5 / static_cast<double>(g + 1);
    s.updates = 10 * g;
    s.alive = g == 2 ? 0 : 1;
    s.busy_seconds = 0.25 * static_cast<double>(g);
    s.rng = util::Rng(g).state();
  }
  ckpt.scaling.interval = 2;
  ckpt.scaling.previous = {32, 64, 128};
  ckpt.scaling.last_direction = {1, -1, 0};
  ckpt.global_blob = serialized_model_v1();
  ckpt.prev_global_blob = serialized_model_v1();
  std::ostringstream out(std::ios::binary);
  save_checkpoint(out, ckpt);
  return out.str();
}

// Binary formats: no text dictionary; the integer-smash and truncate ops do
// the structural damage.
const fuzz::Mutator kBinaryMutator{};

TEST(FuzzCheckpoint, LoaderNeverCrashesOrOverAllocates) {
  fuzz::Corpus corpus({serialized_checkpoint()});
  auto opts = fuzz::Options::from_env({});
  const auto stats =
      fuzz::run(opts, corpus, kBinaryMutator, [](const std::string& input) {
        std::istringstream in(input, std::ios::binary);
        const auto ckpt = load_checkpoint(in);
        // Accepted checkpoints must be bounded by their own bytes: the
        // loader validated every length field against the stream size.
        if (ckpt.global_blob.size() > input.size() ||
            ckpt.prev_global_blob.size() > input.size() ||
            ckpt.gpus.size() > input.size()) {
          throw std::logic_error("checkpoint fields exceed input size");
        }
      });
  EXPECT_GE(stats.iterations, 10000u);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.rejected, 0u);
}

TEST(FuzzCheckpoint, ModelBlobLoaderNeverCrashesOrOverAllocates) {
  fuzz::Corpus corpus({serialized_model_v1(), serialized_model_v2()});
  auto opts = fuzz::Options::from_env({});
  opts.seed = 0xB10BULL;
  const auto stats =
      fuzz::run(opts, corpus, kBinaryMutator, [](const std::string& input) {
        std::istringstream in(input, std::ios::binary);
        const auto model = nn::load_any_model(in);
        // The v1/v2 headers were validated against the payload actually
        // present, so the parameter count is bounded by the input size.
        if (model->num_parameters() * sizeof(float) > input.size()) {
          throw std::logic_error("model larger than its serialized form");
        }
      });
  EXPECT_GE(stats.iterations, 10000u);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.rejected, 0u);
}

}  // namespace
}  // namespace hetero::fault
