// Fuzzes the checkpoint-v3 optimizer-state section (fault/checkpoint.cpp):
// per-replica moment matrices, lazy row counters, and the kind/slots
// metadata. The seeds are real v3 checkpoints with populated adam and
// adagrad state, so the mutator's integer smashing lands on the
// row-counter/element counts (hostile lengths must throw ParseError before
// allocation, never bad_alloc) and the float-byte dictionary injects
// NaN/Inf moments (non-finite state must be rejected — a resumed run would
// poison every subsequent update otherwise).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "fault/checkpoint.h"
#include "nn/mlp.h"
#include "nn/serialize.h"
#include "util/error.h"
#include "util/fuzz.h"

namespace hetero::fault {
namespace {

namespace fuzz = util::fuzz;

std::string serialized_model() {
  nn::MlpConfig cfg;
  cfg.num_features = 12;
  cfg.hidden = 6;
  cfg.num_classes = 4;
  nn::MlpModel model(cfg);
  std::ostringstream out(std::ios::binary);
  nn::save_model(out, model);
  return out.str();
}

// 12*6 + 6 + 6*4 + 4 = 106 parameters per slot, matching the model blob's
// architecture so accepted mutants stay shape-consistent.
constexpr std::size_t kParams = 106;
constexpr std::size_t kRows = 12;

std::string checkpoint_with_optimizer(std::uint8_t kind,
                                      std::uint8_t num_slots,
                                      std::uint8_t has_row_steps) {
  TrainingCheckpoint ckpt;
  ckpt.seed = 7;
  ckpt.megabatches_completed = 2;
  ckpt.samples_served = 512;
  ckpt.gpus.resize(2);
  for (std::size_t g = 0; g < ckpt.gpus.size(); ++g) {
    ckpt.gpus[g].batch_size = 32;
    ckpt.gpus[g].learning_rate = 0.02;
    ckpt.gpus[g].rng = util::Rng(g).state();
  }
  ckpt.opt_kind = kind;
  ckpt.opt_num_slots = num_slots;
  ckpt.opt_has_row_steps = has_row_steps;
  ckpt.opt_replicas.resize(ckpt.gpus.size());
  for (std::size_t g = 0; g < ckpt.opt_replicas.size(); ++g) {
    auto& rep = ckpt.opt_replicas[g];
    rep.step = 10 + g;
    if (has_row_steps) {
      rep.row_steps.resize(kRows);
      for (std::size_t r = 0; r < kRows; ++r) {
        rep.row_steps[r] = static_cast<std::uint32_t>(r + g);
      }
    }
    rep.slots.resize(num_slots);
    for (auto& slot : rep.slots) {
      slot.resize(kParams);
      for (std::size_t i = 0; i < kParams; ++i) {
        slot[i] = 0.125f * static_cast<float>(i % 17) + 0.001f;
      }
    }
  }
  ckpt.global_blob = serialized_model();
  ckpt.prev_global_blob = serialized_model();
  std::ostringstream out(std::ios::binary);
  save_checkpoint(out, ckpt);
  return out.str();
}

TEST(FuzzOptimizerState, LoaderNeverCrashesAcceptsOnlyFiniteBoundedState) {
  // adam (2 slots + row counters), adagrad (1 slot, no counters), sgd
  // (metadata-only records) — every v3 section shape the writer produces.
  fuzz::Corpus corpus({
      checkpoint_with_optimizer(1, 2, 1),  // adam
      checkpoint_with_optimizer(2, 2, 1),  // adamw
      checkpoint_with_optimizer(3, 1, 0),  // adagrad
      checkpoint_with_optimizer(0, 0, 0),  // sgd
  });
  // Little-endian float bytes for NaN, +Inf, -Inf, fp32-max, plus smashed
  // count bytes: the tokens that matter for state-blob hostility.
  const fuzz::Mutator mutator({
      std::string("\x00\x00\xc0\x7f", 4),  // quiet NaN
      std::string("\x00\x00\x80\x7f", 4),  // +inf
      std::string("\x00\x00\x80\xff", 4),  // -inf
      std::string("\xff\xff\x7f\x7f", 4),  // FLT_MAX
      std::string("\xee\xee\xee\xee\xee\xee\xee\xee", 8),  // hostile count
      std::string(8, '\0'),                                // zero count
  });
  auto opts = fuzz::Options::from_env({});
  opts.seed = 0x0975A7Eull;
  const auto stats =
      fuzz::run(opts, corpus, mutator, [](const std::string& input) {
        std::istringstream in(input, std::ios::binary);
        const auto ckpt = load_checkpoint(in);
        // Accepted optimizer state must be bounded by its own bytes and
        // arithmetic-safe: every count validated against the stream, every
        // float finite.
        if (ckpt.opt_replicas.size() > input.size()) {
          throw std::logic_error("replica count exceeds input size");
        }
        for (const auto& rep : ckpt.opt_replicas) {
          if (rep.row_steps.size() * sizeof(std::uint32_t) > input.size()) {
            throw std::logic_error("row counters exceed input size");
          }
          for (const auto& slot : rep.slots) {
            if (slot.size() * sizeof(float) > input.size()) {
              throw std::logic_error("slot exceeds input size");
            }
            for (const float v : slot) {
              if (!std::isfinite(v)) {
                throw std::logic_error("accepted non-finite optimizer state");
              }
            }
          }
        }
      });
  EXPECT_GE(stats.iterations, 10000u);
  EXPECT_GT(stats.accepted, 0u);
  EXPECT_GT(stats.rejected, 0u);
}

}  // namespace
}  // namespace hetero::fault
