#include "slide/slide_trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "slide/lsh_table.h"
#include "slide/simhash.h"

namespace hetero::slide {
namespace {

TEST(SimHash, Deterministic) {
  util::Rng r1(1), r2(1);
  SimHash a(8, 4, 2, r1), b(8, 4, 2, r2);
  std::vector<float> v{1, -2, 3, 0.5, -1, 2, 0, 4};
  EXPECT_EQ(a.signature(0, v), b.signature(0, v));
  EXPECT_EQ(a.signature(1, v), b.signature(1, v));
}

TEST(SimHash, SignatureWithinBits) {
  util::Rng rng(2);
  SimHash h(4, 5, 3, rng);
  std::vector<float> v{1, 2, 3, 4};
  for (std::size_t t = 0; t < 3; ++t) {
    EXPECT_LT(h.signature(t, v), 1u << 5);
  }
}

TEST(SimHash, ScaleInvariant) {
  // sign(r . (c*v)) == sign(r . v) for c > 0.
  util::Rng rng(3);
  SimHash h(6, 8, 2, rng);
  std::vector<float> v{1, -1, 2, 0.5, -3, 1};
  std::vector<float> scaled(v);
  for (auto& x : scaled) x *= 7.5f;
  EXPECT_EQ(h.signature(0, v), h.signature(0, scaled));
}

TEST(SimHash, SimilarVectorsCollideMoreOften) {
  util::Rng rng(4);
  const std::size_t dim = 32;
  SimHash h(dim, 8, 10, rng);

  std::vector<float> base(dim);
  for (auto& x : base) x = static_cast<float>(rng.next_gaussian());
  auto near = base;
  for (auto& x : near) x += 0.1f * static_cast<float>(rng.next_gaussian());
  std::vector<float> far(dim);
  for (auto& x : far) x = static_cast<float>(rng.next_gaussian());

  int near_hits = 0, far_hits = 0;
  for (std::size_t t = 0; t < 10; ++t) {
    near_hits += (h.signature(t, base) == h.signature(t, near));
    far_hits += (h.signature(t, base) == h.signature(t, far));
  }
  EXPECT_GT(near_hits, far_hits);
}

TEST(LshIndex, FindsExactDuplicate) {
  util::Rng rng(5);
  const std::size_t dim = 16;
  std::vector<std::vector<float>> items(20, std::vector<float>(dim));
  for (auto& item : items) {
    for (auto& x : item) x = static_cast<float>(rng.next_gaussian());
  }
  LshIndex index(SimHash(dim, 6, 8, rng), items.size());
  index.rebuild([&](std::size_t i) {
    return std::span<const float>(items[i].data(), dim);
  });
  // Querying with item 7's own vector must retrieve item 7.
  std::vector<std::uint32_t> out;
  index.query({items[7].data(), dim}, 50, out);
  EXPECT_NE(std::find(out.begin(), out.end(), 7u), out.end());
}

TEST(LshIndex, RespectsMaxItems) {
  util::Rng rng(6);
  const std::size_t dim = 8;
  std::vector<float> shared(dim, 1.0f);
  LshIndex index(SimHash(dim, 2, 4, rng), 100);
  index.rebuild([&](std::size_t) {
    return std::span<const float>(shared.data(), dim);  // all collide
  });
  std::vector<std::uint32_t> out;
  index.query({shared.data(), dim}, 10, out);
  EXPECT_LE(out.size(), 10u);
}

TEST(LshIndex, QueryDeduplicatesAgainstExisting) {
  util::Rng rng(7);
  const std::size_t dim = 8;
  std::vector<float> shared(dim, 1.0f);
  LshIndex index(SimHash(dim, 2, 4, rng), 5);
  index.rebuild([&](std::size_t) {
    return std::span<const float>(shared.data(), dim);
  });
  std::vector<std::uint32_t> out{3};  // mandatory item already present
  index.query({shared.data(), dim}, 100, out);
  EXPECT_EQ(std::count(out.begin(), out.end(), 3u), 1);
}

TEST(LshIndex, EmptyBucketsYieldNoCandidates) {
  // All items hash from v; querying with -v flips every hyperplane sign,
  // so every table lands in an untouched bucket and nothing is appended.
  // (Serving layers an exact-scan fallback on top of this empty result.)
  util::Rng rng(9);
  const std::size_t dim = 8;
  std::vector<float> v(dim, 1.0f);
  std::vector<float> negated(dim, -1.0f);
  LshIndex index(SimHash(dim, 8, 4, rng), 10);
  index.rebuild([&](std::size_t) {
    return std::span<const float>(v.data(), dim);
  });
  std::vector<std::uint32_t> out;
  index.query({negated.data(), dim}, 100, out);
  EXPECT_TRUE(out.empty());
}

TEST(LshIndex, QueryIsDeterministic) {
  util::Rng rng(10);
  const std::size_t dim = 16;
  std::vector<std::vector<float>> items(32, std::vector<float>(dim));
  for (auto& item : items) {
    for (auto& x : item) x = static_cast<float>(rng.next_gaussian());
  }
  LshIndex index(SimHash(dim, 4, 6, rng), items.size());
  index.rebuild([&](std::size_t i) {
    return std::span<const float>(items[i].data(), dim);
  });
  std::vector<std::uint32_t> a, b;
  index.query({items[3].data(), dim}, 20, a);
  index.query({items[3].data(), dim}, 20, b);
  EXPECT_EQ(a, b);
}

TEST(LshIndex, QueryKeepsOutOfRangeSeedCandidates) {
  // Pre-seeded mandatory candidates may come from outside the index's item
  // space (the serving head list is sized independently); they must be
  // passed through untouched and never confuse the dedup bitmap.
  util::Rng rng(12);
  const std::size_t dim = 8;
  std::vector<float> shared(dim, 1.0f);
  LshIndex index(SimHash(dim, 2, 4, rng), 5);
  index.rebuild([&](std::size_t) {
    return std::span<const float>(shared.data(), dim);
  });
  std::vector<std::uint32_t> out{999, 2};
  index.query({shared.data(), dim}, 100, out);
  EXPECT_EQ(std::count(out.begin(), out.end(), 999u), 1);
  EXPECT_EQ(std::count(out.begin(), out.end(), 2u), 1);
  EXPECT_EQ(index.num_items(), 5u);
}

TEST(LshIndex, RebuildCountIncrements) {
  util::Rng rng(8);
  std::vector<float> v(4, 1.0f);
  LshIndex index(SimHash(4, 2, 2, rng), 1);
  const auto before = index.rebuilds();
  index.rebuild([&](std::size_t) {
    return std::span<const float>(v.data(), 4);
  });
  EXPECT_EQ(index.rebuilds(), before + 1);
}

class SlideTest : public ::testing::Test {
 protected:
  SlideTest() {
    auto cfg = data::tiny_profile();
    cfg.num_train = 2000;
    dataset_ = data::generate_xml_dataset(cfg);
  }

  SlideConfig config() const {
    SlideConfig cfg;
    cfg.hidden = 16;
    cfg.learning_rate = 0.05;
    cfg.min_active = 8;
    cfg.max_active = 24;
    cfg.rebuild_every = 512;
    cfg.eval_every_samples = 2000;
    cfg.total_samples = 6000;
    cfg.eval_samples = 200;
    return cfg;
  }

  data::XmlDataset dataset_;
};

TEST_F(SlideTest, TrainingImprovesAccuracy) {
  SlideTrainer trainer(dataset_, config());
  const auto result = trainer.train();
  ASSERT_GE(result.curve.size(), 2u);
  EXPECT_GT(result.final_top1(), result.curve.front().top1 + 0.2);
}

TEST_F(SlideTest, OneUpdatePerSample) {
  SlideTrainer trainer(dataset_, config());
  const auto result = trainer.train();
  EXPECT_EQ(result.gpus[0].total_updates, 6000u);
  EXPECT_EQ(result.gpus[0].total_samples, 6000u);
}

TEST_F(SlideTest, CurveCadenceFollowsEvalEvery) {
  SlideTrainer trainer(dataset_, config());
  const auto result = trainer.train();
  // initial + 3 eval points (6000 / 2000).
  EXPECT_EQ(result.curve.size(), 4u);
  EXPECT_EQ(result.curve[1].samples, 2000u);
}

TEST_F(SlideTest, VirtualTimeScalesWithThreads) {
  auto cfg = config();
  cfg.threads = 1;
  const auto slow = SlideTrainer(dataset_, cfg).train();
  cfg.threads = 32;
  const auto fast = SlideTrainer(dataset_, cfg).train();
  EXPECT_GT(slow.total_vtime, 10 * fast.total_vtime);
}

TEST_F(SlideTest, ComputeScaleScalesTime) {
  auto cfg = config();
  cfg.compute_scale = 1.0;
  const auto base = SlideTrainer(dataset_, cfg).train();
  cfg.compute_scale = 50.0;
  const auto scaled = SlideTrainer(dataset_, cfg).train();
  EXPECT_NEAR(scaled.total_vtime / base.total_vtime, 50.0, 1.0);
}

TEST_F(SlideTest, Deterministic) {
  const auto a = SlideTrainer(dataset_, config()).train();
  const auto b = SlideTrainer(dataset_, config()).train();
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.curve[i].top1, b.curve[i].top1);
  }
}

TEST_F(SlideTest, ActiveSetBounded) {
  util::Rng rng(11);
  SlideNetConfig nc;
  nc.num_features = dataset_.train.features.cols();
  nc.num_classes = dataset_.train.labels.cols();
  nc.hidden = 16;
  nc.min_active = 8;
  nc.max_active = 24;
  SlideNetwork net(nc, rng);
  for (std::size_t r = 0; r < 50; ++r) {
    const auto stats = net.train_sample(
        dataset_.train.features.row_cols(r),
        dataset_.train.features.row_values(r),
        dataset_.train.labels.row_cols(r), 0.05f, rng);
    EXPECT_GE(stats.active, std::min<std::size_t>(
                                nc.min_active,
                                dataset_.train.labels.row_nnz(r)));
    // Labels beyond max_active are always kept, so allow that slack.
    EXPECT_LE(stats.active,
              nc.max_active + dataset_.train.labels.row_nnz(r));
    EXPECT_GT(stats.flops, 0.0);
    EXPECT_GE(stats.loss, 0.0);
  }
}

TEST(LshRetrieval, RebuildTracksDriftedVectors) {
  // After neuron vectors move, a rebuild must restore retrieval quality:
  // querying with (a noisy copy of) an item's NEW vector should find it,
  // while the stale index built from the OLD vectors may not.
  util::Rng rng(42);
  const std::size_t dim = 24, items = 64;
  std::vector<std::vector<float>> vecs(items, std::vector<float>(dim));
  for (auto& v : vecs) {
    for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
  }
  LshIndex index(SimHash(dim, 6, 12, rng), items);
  const auto view = [&](std::size_t i) {
    return std::span<const float>(vecs[i].data(), dim);
  };
  index.rebuild(view);

  // Drift every vector to a completely new direction.
  for (auto& v : vecs) {
    for (auto& x : v) x = static_cast<float>(rng.next_gaussian());
  }
  int stale_hits = 0, fresh_hits = 0;
  for (std::size_t probe = 0; probe < 16; ++probe) {
    std::vector<std::uint32_t> out;
    index.query(view(probe), items, out);
    stale_hits += std::find(out.begin(), out.end(),
                            static_cast<std::uint32_t>(probe)) != out.end();
  }
  index.rebuild(view);
  for (std::size_t probe = 0; probe < 16; ++probe) {
    std::vector<std::uint32_t> out;
    index.query(view(probe), items, out);
    fresh_hits += std::find(out.begin(), out.end(),
                            static_cast<std::uint32_t>(probe)) != out.end();
  }
  EXPECT_EQ(fresh_hits, 16);        // own vector always collides with itself
  EXPECT_GT(fresh_hits, stale_hits);  // stale index misses drifted items
}

TEST_F(SlideTest, HigherRebuildFrequencyNotWorse) {
  // More frequent LSH rebuilds keep the active sets sharper; accuracy at
  // the end must not collapse relative to rare rebuilds.
  auto frequent = config();
  frequent.rebuild_every = 256;
  auto rare = config();
  rare.rebuild_every = 100000;  // effectively never
  const auto f = SlideTrainer(dataset_, frequent).train();
  const auto r = SlideTrainer(dataset_, rare).train();
  EXPECT_GE(f.final_top1() + 0.15, r.final_top1());
}

TEST_F(SlideTest, MethodNameAndDataset) {
  SlideTrainer trainer(dataset_, config());
  const auto result = trainer.train();
  EXPECT_EQ(result.method, "slide-cpu");
  EXPECT_EQ(result.dataset, dataset_.name);
}

}  // namespace
}  // namespace hetero::slide
