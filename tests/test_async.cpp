// Asynchronous SGD baseline tests: staleness accounting and convergence
// behavior (Section II: async avoids barriers but risks poor convergence).
#include "core/async_sgd.h"

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "sim/profiles.h"

namespace hetero::core {
namespace {

const data::XmlDataset& dataset() {
  static const data::XmlDataset d = [] {
    auto cfg = data::tiny_profile();
    cfg.num_train = 2000;
    return data::generate_xml_dataset(cfg);
  }();
  return d;
}

TrainerConfig config() {
  TrainerConfig cfg;
  cfg.hidden = 16;
  cfg.batch_max = 32;
  cfg.batches_per_megabatch = 16;
  cfg.num_megabatches = 4;
  cfg.learning_rate = 0.3;
  cfg.eval_samples = 200;
  cfg.compute_scale = 2000.0;
  return cfg;
}

TrainResult run(std::size_t gpus, TrainerConfig cfg = config()) {
  return make_trainer(Method::kAsync, dataset(), cfg,
                      sim::v100_heterogeneous(gpus))
      ->train();
}

TEST(AsyncSgd, ImprovesAccuracy) {
  const auto r = run(2);
  EXPECT_GT(r.final_top1(), r.curve.front().top1 + 0.15);
}

TEST(AsyncSgd, SingleGpuHasZeroStaleness) {
  const auto r = run(1);
  EXPECT_DOUBLE_EQ(r.avg_staleness, 0.0);
}

TEST(AsyncSgd, StalenessNearGpuCountMinusOne) {
  // In steady state each apply sees the other n-1 GPUs' interleaved
  // updates.
  const auto r = run(4);
  EXPECT_GT(r.avg_staleness, 1.5);
  EXPECT_LT(r.avg_staleness, 4.0);
}

TEST(AsyncSgd, StalenessGrowsWithGpuCount) {
  EXPECT_LT(run(2).avg_staleness, run(4).avg_staleness);
}

TEST(AsyncSgd, NoCommunicationCharged) {
  // No barriers, no merging: the shared model lives host-side.
  const auto r = run(4);
  EXPECT_DOUBLE_EQ(r.comm_seconds, 0.0);
}

TEST(AsyncSgd, NoBarrierMeansNoStragglerWait) {
  // With heterogeneous GPUs, total time is governed by throughput, not by
  // the slowest device's barrier arrival: async should finish the same
  // sample budget at least as fast as elastic.
  auto cfg = config();
  const auto async_r = make_trainer(Method::kAsync, dataset(), cfg,
                                    sim::v100_heterogeneous(4, 0.5))
                           ->train();
  const auto elastic_r = make_trainer(Method::kElastic, dataset(), cfg,
                                      sim::v100_heterogeneous(4, 0.5))
                             ->train();
  EXPECT_LE(async_r.total_vtime, elastic_r.total_vtime);
}

TEST(AsyncSgd, Deterministic) {
  const auto a = run(3);
  const auto b = run(3);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.curve[i].top1, b.curve[i].top1);
    EXPECT_DOUBLE_EQ(a.curve[i].vtime, b.curve[i].vtime);
  }
}

TEST(AsyncSgd, UpdateCountsSkewWithSpeed) {
  auto cfg = config();
  cfg.batches_per_megabatch = 32;
  const auto r = make_trainer(Method::kAsync, dataset(), cfg,
                              sim::v100_heterogeneous(4, 0.5))
                     ->train();
  EXPECT_GT(r.gpus[0].total_updates, r.gpus[3].total_updates);
}

TEST(AsyncSgd, SamplesAccountedPerMegabatch) {
  auto cfg = config();
  cfg.num_megabatches = 3;
  const auto r = run(2, cfg);
  std::size_t total = 0;
  for (const auto& g : r.gpus) total += g.total_samples;
  // Every mega-batch processes at least megabatch_samples (the event loop
  // may overshoot by at most one batch per GPU).
  EXPECT_GE(total, cfg.megabatch_samples() * cfg.num_megabatches);
  EXPECT_LE(total, cfg.megabatch_samples() * cfg.num_megabatches +
                       cfg.num_megabatches * 2 * cfg.batch_max);
}

TEST(AsyncSgd, MethodName) {
  EXPECT_EQ(to_string(Method::kAsync), "async-sgd");
  auto t = make_trainer(Method::kAsync, dataset(), config(),
                        sim::v100_heterogeneous(2));
  EXPECT_EQ(t->method_name(), "async-sgd");
}

}  // namespace
}  // namespace hetero::core
