// Multi-node hierarchy tests: topology placement, link-class selection,
// the satellite transfer-cost fixes (self-transfers, concurrent == 0), the
// two-level merge cost model, and end-to-end bit-identity of the merged
// model across topologies.
#include "sim/topology.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <vector>

#include "comm/allreduce.h"
#include "comm/quant.h"
#include "core/adaptive_sgd.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "sim/link_model.h"
#include "sim/profiles.h"

namespace hetero {
namespace {

using sim::LinkModel;
using sim::Topology;

// ---- topology placement ---------------------------------------------------

TEST(Topology, FlatIsSingleNode) {
  const auto t = Topology::flat(4);
  EXPECT_TRUE(t.single_node());
  EXPECT_EQ(t.num_replicas(), 4u);
  EXPECT_EQ(t.cpu_replicas(), 0u);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) EXPECT_TRUE(t.same_node(a, b));
  }
}

TEST(Topology, ClusterLayoutIsNodeMajorWithCpuTail) {
  const auto t = Topology::cluster(2, 2, 1);
  ASSERT_EQ(t.num_replicas(), 5u);
  EXPECT_EQ(t.num_nodes, 2u);
  EXPECT_EQ(t.node_of, (std::vector<int>{0, 0, 1, 1, 0}));
  EXPECT_EQ(t.cpu_replicas(), 1u);
  EXPECT_TRUE(t.is_cpu[4]);
  EXPECT_FALSE(t.is_cpu[0]);
}

TEST(Topology, PartitionedSplitsUnevenlyEarlierNodesFirst) {
  const auto t = Topology::partitioned(2, 5);
  EXPECT_EQ(t.node_of, (std::vector<int>{0, 0, 0, 1, 1}));
}

TEST(Topology, CpuReplicasRoundRobinAcrossNodes) {
  const auto t = Topology::cluster(2, 1, 3);
  // GPU ranks 0,1 on nodes 0,1; CPU ranks 2,3,4 round-robin 0,1,0.
  EXPECT_EQ(t.node_of, (std::vector<int>{0, 1, 0, 1, 0}));
  EXPECT_EQ(t.cpu_replicas(), 3u);
}

TEST(Topology, GroupByNodePreservesRankOrder) {
  const auto t = Topology::cluster(2, 2, 1);  // nodes: 0,0,1,1,0
  const auto groups = t.group_by_node({4, 2, 0, 3});
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{4, 0}));  // node 0
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{2, 3}));  // node 1
  EXPECT_EQ(t.nodes_of({3, 4}), (std::vector<int>{0, 1}));
}

// ---- link-class selection -------------------------------------------------

TEST(Topology, LinkForSelectsPeerNetAndHostClasses) {
  const auto links = sim::cluster_links(Topology::cluster(2, 2, 1));
  // Same-node GPU pair: peer fabric.
  EXPECT_EQ(&links.link_for(0, 1), &links.peer());
  EXPECT_EQ(&links.link_for(2, 3), &links.peer());
  // Cross-node pair: the network.
  EXPECT_EQ(&links.link_for(1, 2), &links.net());
  // CPU replica (rank 4, node 0): host interconnect even within its node.
  EXPECT_EQ(&links.link_for(0, 4), &links.host());
  // Cross-node traffic involving the CPU replica still rides the network.
  EXPECT_EQ(&links.link_for(4, 2), &links.net());
  // kHost endpoint: host link regardless of topology.
  EXPECT_EQ(&links.link_for(LinkModel::kHost, 3), &links.host());
}

TEST(Topology, ClusterLinksAtOneNodeMatchDefaultLinks) {
  const auto flat = sim::default_links(4);
  const auto cluster = sim::cluster_links(Topology::flat(4));
  for (int a = -1; a < 4; ++a) {
    for (int b = -1; b < 4; ++b) {
      EXPECT_EQ(cluster.transfer_seconds(1 << 20, a, b, 2),
                flat.transfer_seconds(1 << 20, a, b, 2))
          << a << "->" << b;
    }
  }
}

// ---- transfer-cost fixes (satellite: LinkModel guards) --------------------

TEST(Topology, SelfTransferIsFree) {
  const auto links = sim::cluster_links(Topology::cluster(2, 2, 1));
  for (int d = 0; d < 5; ++d) {
    EXPECT_EQ(links.transfer_seconds(64 << 20, d, d), 0.0);
    EXPECT_EQ(links.transfer_seconds(64 << 20, d, d, 8), 0.0);
  }
  EXPECT_EQ(links.transfer_seconds(1 << 20, LinkModel::kHost, LinkModel::kHost),
            0.0);
}

TEST(Topology, ZeroConcurrencyDoesNotZeroTheTransfer) {
  const auto links = sim::default_links(2);
#ifdef NDEBUG
  // Release: clamp to one concurrent transfer instead of dividing by zero
  // (which would make bandwidth infinite and the transfer free).
  EXPECT_EQ(links.transfer_seconds(1 << 20, 0, 1, 0),
            links.transfer_seconds(1 << 20, 0, 1, 1));
#else
  EXPECT_DEATH((void)links.transfer_seconds(1 << 20, 0, 1, 0), "concurrent");
#endif
}

// ---- two-level merge cost -------------------------------------------------

TEST(Topology, RanksCostMatchesScalarCostOnFlatTopology) {
  const comm::WirePayload wire{static_cast<double>(8 << 20), 0.0};
  for (auto algo :
       {comm::AllReduceAlgo::kCentral, comm::AllReduceAlgo::kTreeSingleStream,
        comm::AllReduceAlgo::kRingMultiStream}) {
    const comm::AllReducer r(algo, sim::default_links(4), 2);
    const std::vector<std::size_t> ranks{0, 1, 2, 3};
    const auto scalar = r.cost(4, wire);
    const auto ranked = r.cost(std::span<const std::size_t>(ranks), wire);
    EXPECT_EQ(ranked.seconds, scalar.seconds) << to_string(algo);
    EXPECT_EQ(ranked.bytes_moved, scalar.bytes_moved) << to_string(algo);
    EXPECT_EQ(ranked.steps, scalar.steps) << to_string(algo);
  }
}

TEST(Topology, CrossNodeMergeCostsMoreThanSingleNode) {
  // Tree and ring pay for every network crossing. (kCentral is excluded on
  // purpose: two nodes mean two separate PCIe buses, so splitting the host
  // gather across servers legitimately REDUCES host-link contention.)
  const comm::WirePayload wire{static_cast<double>(8 << 20), 0.0};
  const std::vector<std::size_t> ranks{0, 1, 2, 3};
  for (auto algo : {comm::AllReduceAlgo::kTreeSingleStream,
                    comm::AllReduceAlgo::kRingMultiStream}) {
    const comm::AllReducer flat(algo, sim::default_links(4), 2);
    const comm::AllReducer two(
        algo, sim::cluster_links(Topology::cluster(2, 2)), 2);
    const double flat_s =
        flat.cost(std::span<const std::size_t>(ranks), wire).seconds;
    const double two_s =
        two.cost(std::span<const std::size_t>(ranks), wire).seconds;
    EXPECT_GT(two_s, flat_s) << to_string(algo);
  }
}

TEST(Topology, SpreadingGpusAcrossNodesCostsMoreThanOneServer) {
  // Fixed 4-GPU budget: any multi-node placement pays network hops a single
  // server never does. (2x2 vs 4x1 is NOT monotone: single-GPU nodes skip
  // the intra-node phase and broadcast entirely, which can offset the extra
  // ring hops — so only the one-server baseline is ordered.)
  const comm::WirePayload wire{static_cast<double>(8 << 20), 0.0};
  const std::vector<std::size_t> ranks{0, 1, 2, 3};
  std::vector<double> costs;
  for (const std::size_t nodes : {1u, 2u, 4u}) {
    const comm::AllReducer r(comm::AllReduceAlgo::kRingMultiStream,
                             sim::cluster_links(Topology::partitioned(nodes, 4)),
                             2);
    costs.push_back(r.cost(std::span<const std::size_t>(ranks), wire).seconds);
  }
  EXPECT_GT(costs[1], costs[0]);
  EXPECT_GT(costs[2], costs[0]);
}

TEST(Topology, DegradedNodeShrinksHierarchicalCost) {
  // When one node's replicas all crash, the survivors' merge is single-node
  // again: no network hops should be billed.
  const comm::WirePayload wire{static_cast<double>(8 << 20), 0.0};
  const comm::AllReducer r(comm::AllReduceAlgo::kRingMultiStream,
                           sim::cluster_links(Topology::cluster(2, 2)), 2);
  const std::vector<std::size_t> all{0, 1, 2, 3};
  const std::vector<std::size_t> node0{0, 1};
  const auto full = r.cost(std::span<const std::size_t>(all), wire);
  const auto degraded = r.cost(std::span<const std::size_t>(node0), wire);
  EXPECT_LT(degraded.seconds, full.seconds);
  // Survivors on one node pay exactly the flat 2-replica cost.
  const comm::AllReducer flat(comm::AllReduceAlgo::kRingMultiStream,
                              sim::default_links(2), 2);
  EXPECT_EQ(degraded.seconds, flat.cost(2, wire).seconds);
}

// ---- device profiles ------------------------------------------------------

TEST(Topology, ClusterDevicesMatchSingleServerProfileAtOneNode) {
  const auto flat = sim::v100_heterogeneous(3);
  const auto cluster = sim::cluster_devices(1, 3);
  ASSERT_EQ(cluster.size(), flat.size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    EXPECT_EQ(cluster[i].name, flat[i].name);
    EXPECT_DOUBLE_EQ(cluster[i].speed_factor, flat[i].speed_factor);
  }
}

TEST(Topology, CpuReplicaIsOrderOfMagnitudeSlower) {
  const auto devices = sim::cluster_devices(2, 2, 1, 0.32, 0.03, 25.0);
  ASSERT_EQ(devices.size(), 5u);
  const auto& cpu = devices.back();
  EXPECT_NE(cpu.name.find("CPU-replica"), std::string::npos);
  for (std::size_t g = 0; g + 1 < devices.size(); ++g) {
    EXPECT_GE(devices[g].speed_factor, 10.0 * cpu.speed_factor)
        << devices[g].name;
  }
}

// ---- end-to-end bit-identity ----------------------------------------------

const data::XmlDataset& tiny_dataset() {
  static const data::XmlDataset dataset = [] {
    auto cfg = data::tiny_profile();
    cfg.num_train = 2000;
    return data::generate_xml_dataset(cfg);
  }();
  return dataset;
}

core::TrainerConfig fast_config() {
  core::TrainerConfig cfg;
  cfg.hidden = 16;
  cfg.batch_max = 32;
  cfg.batches_per_megabatch = 16;
  cfg.num_megabatches = 3;
  cfg.learning_rate = 0.5;
  cfg.eval_samples = 200;
  cfg.compute_scale = 2000.0;
  return cfg;
}

struct TopoRun {
  core::TrainResult result;
  std::vector<float> model;
};

TopoRun run_with_nodes(core::TrainerConfig cfg, std::size_t nodes) {
  cfg.num_nodes = nodes;
  // Same device specs regardless of node count: only the link topology
  // (and therefore the merge *cost*) differs between the runs.
  core::AdaptiveSgdTrainer trainer(tiny_dataset(), cfg,
                                   sim::v100_heterogeneous(4));
  auto result = trainer.train();
  return {std::move(result), trainer.runtime().global_model().to_flat()};
}

TEST(Topology, TwoLevelMergeBitIdenticalToSingleLevel) {
  // The hierarchy is a cost model: spreading the same four replicas over
  // two nodes must not change a single bit of the merged model — dense,
  // sparse-delta, and compressed (fp16/int8) merge paths alike — while the
  // communication time grows with the network crossings.
  struct Case {
    const char* name;
    bool sparse;
    comm::MergePrecision precision;
  };
  const Case cases[] = {
      {"dense-fp32", false, comm::MergePrecision::kFp32},
      {"sparse-fp32", true, comm::MergePrecision::kFp32},
      {"dense-fp16", false, comm::MergePrecision::kFp16},
      {"dense-int8", false, comm::MergePrecision::kInt8},
  };
  for (const auto& c : cases) {
    auto cfg = fast_config();
    cfg.sparse_merge = c.sparse;
    cfg.merge_precision = c.precision;
    const auto flat = run_with_nodes(cfg, 1);
    const auto two = run_with_nodes(cfg, 2);
    EXPECT_EQ(flat.model, two.model) << c.name;
    EXPECT_GT(two.result.comm_seconds, flat.result.comm_seconds) << c.name;
    ASSERT_EQ(flat.result.curve.size(), two.result.curve.size()) << c.name;
    for (std::size_t i = 0; i < flat.result.curve.size(); ++i) {
      EXPECT_DOUBLE_EQ(flat.result.curve[i].top1, two.result.curve[i].top1)
          << c.name;
    }
    EXPECT_EQ(two.result.num_nodes, 2u);
  }
}

TEST(Topology, CpuReplicaRunDeterministicAcrossKernelThreads) {
  const auto run = [&](std::size_t threads) {
    auto cfg = fast_config();
    cfg.num_nodes = 2;
    cfg.cpu_replicas = 1;
    cfg.batch_min = 4;
    cfg.kernel_threads = threads;
    core::AdaptiveSgdTrainer trainer(tiny_dataset(), cfg,
                                     sim::cluster_devices(2, 2, 1));
    auto result = trainer.train();
    return std::make_pair(std::move(result),
                          trainer.runtime().global_model().to_flat());
  };
  const auto [r1, m1] = run(1);
  const auto [r3, m3] = run(3);
  EXPECT_EQ(m1, m3);
  ASSERT_EQ(r1.curve.size(), r3.curve.size());
  for (std::size_t i = 0; i < r1.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.curve[i].top1, r3.curve[i].top1);
    EXPECT_DOUBLE_EQ(r1.curve[i].vtime, r3.curve[i].vtime);
  }
  EXPECT_EQ(r1.cpu_replicas, 1u);
  EXPECT_EQ(r1.num_nodes, 2u);
}

TEST(Topology, CpuReplicaBatchShrinksUnderAdaptiveScaling) {
  // Algorithm 1 must absorb the 25x-slower CPU replica by shrinking its
  // batch toward b_min while the GPUs stay at (or near) b_max.
  auto cfg = fast_config();
  cfg.batch_max = 128;
  cfg.batch_min = 4;  // beta = b_min/2 = 2 samples per boundary per unit skew
  cfg.batches_per_megabatch = 40;
  cfg.num_megabatches = 10;
  cfg.num_nodes = 2;
  cfg.cpu_replicas = 1;
  core::AdaptiveSgdTrainer trainer(tiny_dataset(), cfg,
                                   sim::cluster_devices(2, 2, 1));
  (void)trainer.train();
  const auto& state = trainer.sgd_state();
  ASSERT_EQ(state.size(), 5u);
  const std::size_t cpu_batch = state.back().batch_size;
  for (std::size_t g = 0; g + 1 < state.size(); ++g) {
    EXPECT_GE(state[g].batch_size, 10 * cpu_batch)
        << "GPU " << g << " batch " << state[g].batch_size << " vs CPU batch "
        << cpu_batch;
  }
}

}  // namespace
}  // namespace hetero
