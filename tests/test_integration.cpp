// End-to-end integration tests: the full experimental pipeline on a scaled
// down Amazon-670k-shaped dataset, checking the relationships the paper's
// figures rely on.
#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/dataset_stats.h"
#include "data/synthetic.h"
#include "sim/gantt.h"
#include "sim/profiles.h"
#include "sim/trace.h"
#include "slide/slide_trainer.h"

namespace hetero {
namespace {

// One shared mini Amazon-shaped dataset for the whole file (generation is
// the expensive part).
const data::XmlDataset& amazon_mini() {
  static const data::XmlDataset dataset = [] {
    auto cfg = data::amazon670k_small();
    cfg.num_features = 2048;
    cfg.num_classes = 256;
    cfg.num_train = 4000;
    cfg.num_test = 800;
    cfg.salient_features_per_class = 16;
    return data::generate_xml_dataset(cfg);
  }();
  return dataset;
}

core::TrainerConfig experiment_config() {
  core::TrainerConfig cfg;
  cfg.hidden = 32;
  cfg.batch_max = 64;
  cfg.batches_per_megabatch = 25;
  cfg.num_megabatches = 5;
  cfg.learning_rate = 0.5;
  cfg.eval_samples = 400;
  cfg.compute_scale = 400.0;
  return cfg;
}

TEST(Integration, DatasetShapeMatchesProfileIntent) {
  const auto stats = data::compute_stats(amazon_mini());
  EXPECT_NEAR(stats.avg_features_per_sample, 76.0, 15.0);
  EXPECT_NEAR(stats.avg_labels_per_sample, 5.0, 1.5);
  EXPECT_GT(stats.feature_nnz_cv, 0.2);  // real nnz variance present
}

TEST(Integration, AdaptiveBeatsElasticAndSyncInTimeToAccuracy) {
  const auto devices = sim::v100_heterogeneous(4);
  std::map<std::string, core::TrainResult> results;
  for (auto method : {core::Method::kAdaptive, core::Method::kElastic,
                      core::Method::kSync}) {
    auto trainer =
        core::make_trainer(method, amazon_mini(), experiment_config(), devices);
    results[core::to_string(method)] = trainer->train();
  }

  // Same samples processed => compare wall-clock of the full run.
  const double t_adaptive = results["adaptive-sgd"].total_vtime;
  const double t_elastic = results["elastic-sgd"].total_vtime;
  const double t_sync = results["sync-sgd-tf"].total_vtime;
  EXPECT_LT(t_adaptive, t_elastic);
  EXPECT_LT(t_elastic, t_sync);

  // Pick a target all methods eventually reach; adaptive reaches it first.
  const double target =
      0.8 * std::min({results["adaptive-sgd"].best_top1(),
                      results["elastic-sgd"].best_top1(),
                      results["sync-sgd-tf"].best_top1()});
  const auto tta_a = results["adaptive-sgd"].time_to_accuracy(target);
  const auto tta_s = results["sync-sgd-tf"].time_to_accuracy(target);
  ASSERT_TRUE(tta_a.has_value());
  ASSERT_TRUE(tta_s.has_value());
  EXPECT_LT(*tta_a, *tta_s);
}

TEST(Integration, MoreGpusFasterWallClock) {
  // Fig. 5a: more GPUs, shorter time for the same sample budget.
  std::vector<double> times;
  for (std::size_t gpus : {1u, 2u, 4u}) {
    auto trainer = core::make_trainer(core::Method::kAdaptive, amazon_mini(),
                                      experiment_config(),
                                      sim::v100_heterogeneous(gpus));
    times.push_back(trainer->train().total_vtime);
  }
  EXPECT_GT(times[0], times[1]);
  EXPECT_GT(times[1], times[2]);
}

TEST(Integration, SlideSlowerThanGpuButStatisticallyEfficient) {
  // Fig. 5: SLIDE needs fewer samples for the same accuracy (more updates)
  // but takes longer wall-clock than any GPU configuration.
  auto gpu_trainer = core::make_trainer(core::Method::kAdaptive, amazon_mini(),
                                        experiment_config(),
                                        sim::v100_heterogeneous(1));
  const auto gpu = gpu_trainer->train();

  slide::SlideConfig scfg;
  scfg.hidden = 32;
  scfg.learning_rate = 0.05;
  // The class space is only 256 wide here, so the active set must be a
  // larger fraction than SLIDE's ~1% at 670k classes for the sampled
  // softmax to be stable.
  scfg.min_active = 48;
  scfg.max_active = 96;
  scfg.rebuild_every = 2048;
  scfg.eval_every_samples = experiment_config().megabatch_samples();
  scfg.total_samples =
      experiment_config().megabatch_samples() * experiment_config().num_megabatches;
  scfg.eval_samples = 400;
  scfg.compute_scale = experiment_config().compute_scale;
  const auto cpu = slide::SlideTrainer(amazon_mini(), scfg).train();

  EXPECT_GT(cpu.total_vtime, gpu.total_vtime);

  // Statistical efficiency: at the first evaluation point (same sample
  // count), SLIDE's accuracy should be at least comparable — it performed
  // megabatch_samples updates vs ~megabatch_samples/batch for the GPU.
  ASSERT_GE(cpu.curve.size(), 2u);
  ASSERT_GE(gpu.curve.size(), 2u);
  EXPECT_GT(cpu.curve[1].top1, gpu.curve[1].top1 * 0.8);
}

TEST(Integration, PerturbationFrequentlyActive) {
  // Fig. 6b: replicas regularize quickly, so perturbation fires at high
  // frequency.
  auto trainer = core::make_trainer(core::Method::kAdaptive, amazon_mini(),
                                    experiment_config(),
                                    sim::v100_heterogeneous(4));
  const auto result = trainer->train();
  EXPECT_GT(result.perturbation_frequency(), 0.5);
}

TEST(Integration, BatchSizesSpreadUnderHeterogeneity) {
  // Fig. 6a: after several mega-batches the fast GPU's batch stays above
  // the slow GPU's.
  auto cfg = experiment_config();
  cfg.num_megabatches = 6;
  cfg.batches_per_megabatch = 40;
  auto trainer = core::make_trainer(core::Method::kAdaptive, amazon_mini(),
                                    cfg, sim::v100_heterogeneous(4, 0.5));
  const auto result = trainer->train();
  const auto& first = result.gpus.front().batch_size;
  const auto& last = result.gpus.back().batch_size;
  ASSERT_FALSE(first.empty());
  EXPECT_GT(first.back(), last.back());
}

TEST(Integration, RingMultiStreamIsDefaultAndFastest) {
  // The merge implementation the trainers use must be the paper's winner.
  core::TrainerConfig cfg = experiment_config();
  EXPECT_EQ(cfg.allreduce, comm::AllReduceAlgo::kRingMultiStream);

  auto ring = comm::AllReducer(comm::AllReduceAlgo::kRingMultiStream,
                               sim::default_links(4), 4);
  auto tree = comm::AllReducer(comm::AllReduceAlgo::kTreeSingleStream,
                               sim::default_links(4), 1);
  // At the paper's model scale (an XML MLP is hundreds of MB) the
  // multi-stream ring wins. For tiny raw buffers the per-step overhead
  // favors the tree; the allreduce bench maps out that crossover.
  const std::size_t model_bytes = 100ull * 1024 * 1024;
  EXPECT_LT(ring.cost(4, model_bytes).seconds,
            tree.cost(4, model_bytes).seconds);
}

TEST(Integration, DeliciousShapedPipeline) {
  // Second dataset shape: many labels per sample (avg ~75 in Table I),
  // heavy feature rows. Verifies the whole pipeline handles dense-ish
  // multi-label rows, not just the Amazon shape.
  auto dcfg = data::delicious200k_small();
  dcfg.num_features = 1536;
  dcfg.num_classes = 128;
  dcfg.num_train = 2000;
  dcfg.num_test = 400;
  dcfg.avg_labels_per_sample = 20.0;
  dcfg.avg_features_per_sample = 120.0;
  const auto ds = data::generate_xml_dataset(dcfg);
  EXPECT_GT(ds.train.labels.avg_row_nnz(), 10.0);

  auto cfg = experiment_config();
  cfg.learning_rate = 0.25;
  cfg.num_megabatches = 3;
  auto trainer = core::make_trainer(core::Method::kAdaptive, ds, cfg,
                                    sim::v100_heterogeneous(4));
  const auto r = trainer->train();
  EXPECT_GT(r.final_top1(), r.curve.front().top1);
  EXPECT_GT(r.final_top1(), 0.15);
}

TEST(Integration, UtilizationGapExplainsSpeedup) {
  // The wall-clock advantage of Adaptive over Elastic must be consistent
  // with the utilization gap the Gantt charts show: elastic wastes exactly
  // the idle time adaptive recovers.
  auto cfg = experiment_config();
  cfg.num_megabatches = 3;
  const auto devices = sim::v100_heterogeneous(4, 0.5);
  const auto a =
      core::make_trainer(core::Method::kAdaptive, amazon_mini(), cfg, devices)
          ->train();
  const auto e =
      core::make_trainer(core::Method::kElastic, amazon_mini(), cfg, devices)
          ->train();
  EXPECT_GT(a.mean_utilization(), e.mean_utilization());
  // Busy time is ~equal (same samples, same kernels up to batch-size
  // effects); the time ratio tracks the utilization ratio.
  const double predicted_ratio = a.mean_utilization() / e.mean_utilization();
  const double actual_ratio = e.total_vtime / a.total_vtime;
  EXPECT_NEAR(predicted_ratio, actual_ratio, 0.15);
}

TEST(Integration, TraceAndGanttCoverFullExperiment) {
  auto cfg = experiment_config();
  cfg.num_megabatches = 2;
  sim::Tracer tracer;
  auto trainer = core::make_trainer(core::Method::kAdaptive, amazon_mini(),
                                    cfg, sim::v100_heterogeneous(4));
  trainer->runtime().set_tracer(&tracer);
  const auto r = trainer->train();

  // One compute event per scheduled batch, comm + merge events per merge.
  std::size_t total_updates = 0;
  for (const auto& g : r.gpus) total_updates += g.total_updates;
  std::size_t compute = 0;
  for (const auto& e : tracer.events()) compute += e.category == "compute";
  EXPECT_EQ(compute, total_updates);

  sim::GanttOptions opts;
  opts.width = 50;
  const auto chart = sim::render_gantt(tracer, opts);
  for (int g = 0; g < 4; ++g) {
    EXPECT_NE(chart.find("gpu" + std::to_string(g)), std::string::npos);
  }
}

TEST(Integration, HigherAccuracyWithMoreGpusOrEqual) {
  // Fig. 4/5: 4 GPUs reach comparable accuracy to 1 GPU for the same sample
  // budget (the paper reports higher on long runs; short multi-GPU runs can
  // trail sequential SGD slightly — see the Delicious-200k ramp-up remark
  // in Section V-B — so we accept a small tolerance here).
  auto cfg = experiment_config();
  auto one = core::make_trainer(core::Method::kAdaptive, amazon_mini(), cfg,
                                sim::v100_heterogeneous(1))
                 ->train();
  auto four = core::make_trainer(core::Method::kAdaptive, amazon_mini(), cfg,
                                 sim::v100_heterogeneous(4))
                  ->train();
  EXPECT_GE(four.best_top1(), one.best_top1() - 0.10);
}

}  // namespace
}  // namespace hetero
