#include "sim/gantt.h"

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "sim/profiles.h"

namespace hetero::sim {
namespace {

TEST(Gantt, EmptyTracer) {
  Tracer tracer;
  EXPECT_EQ(render_gantt(tracer, {}), "(no events)\n");
}

TEST(Gantt, SingleComputeEventFillsCells) {
  Tracer tracer;
  tracer.add({"step", "compute", 0, 0, 0.0, 1.0});
  GanttOptions opts;
  opts.width = 20;
  const auto chart = render_gantt(tracer, opts);
  EXPECT_NE(chart.find("gpu0  |####################|"), std::string::npos);
}

TEST(Gantt, IdleRenderedAsDots) {
  Tracer tracer;
  tracer.add({"step", "compute", 0, 0, 0.0, 0.5});
  tracer.add({"step", "compute", 1, 0, 0.5, 0.5});
  GanttOptions opts;
  opts.width = 10;
  const auto chart = render_gantt(tracer, opts);
  // GPU0 busy first half, idle second; GPU1 the mirror image.
  EXPECT_NE(chart.find("gpu0  |#####.....|"), std::string::npos);
  EXPECT_NE(chart.find("gpu1  |.....#####|"), std::string::npos);
}

TEST(Gantt, CommRenderedAsEquals) {
  Tracer tracer;
  tracer.add({"merge", "comm", 0, 0, 0.0, 1.0});
  GanttOptions opts;
  opts.width = 8;
  const auto chart = render_gantt(tracer, opts);
  EXPECT_NE(chart.find("gpu0  |========|"), std::string::npos);
}

TEST(Gantt, ComputeWinsOverlapsWithComm) {
  Tracer tracer;
  tracer.add({"merge", "comm", 0, 0, 0.0, 1.0});
  tracer.add({"step", "compute", 0, 0, 0.0, 1.0});
  GanttOptions opts;
  opts.width = 4;
  const auto chart = render_gantt(tracer, opts);
  EXPECT_NE(chart.find("|####|"), std::string::npos);
}

TEST(Gantt, HostRowOptional) {
  Tracer tracer;
  tracer.add({"update", "merge", -1, 0, 0.0, 1.0});
  tracer.add({"step", "compute", 0, 0, 0.0, 1.0});
  GanttOptions with_host;
  EXPECT_NE(render_gantt(tracer, with_host).find("host"), std::string::npos);
  GanttOptions no_host;
  no_host.include_host_row = false;
  EXPECT_EQ(render_gantt(tracer, no_host).find("host"), std::string::npos);
}

TEST(Gantt, WindowClipsEvents) {
  Tracer tracer;
  tracer.add({"early", "compute", 0, 0, 0.0, 1.0});
  tracer.add({"late", "compute", 0, 0, 9.0, 1.0});
  GanttOptions opts;
  opts.start = 8.0;
  opts.end = 10.0;
  opts.width = 10;
  const auto chart = render_gantt(tracer, opts);
  // Only the late event falls in the window: second half filled.
  EXPECT_NE(chart.find("gpu0  |.....#####|"), std::string::npos);
}

TEST(Gantt, FullTrainingRunRendersStragglerGaps) {
  auto data_cfg = data::tiny_profile();
  data_cfg.num_train = 1000;
  const auto dataset = data::generate_xml_dataset(data_cfg);
  core::TrainerConfig cfg;
  cfg.hidden = 16;
  cfg.batch_max = 32;
  cfg.batches_per_megabatch = 8;
  cfg.num_megabatches = 1;
  cfg.eval_samples = 50;
  cfg.compute_scale = 2000.0;

  Tracer tracer;
  auto trainer = core::make_trainer(core::Method::kElastic, dataset, cfg,
                                    v100_heterogeneous(2, 0.5));
  trainer->runtime().set_tracer(&tracer);
  trainer->train();

  GanttOptions opts;
  opts.width = 60;
  const auto chart = render_gantt(tracer, opts);
  EXPECT_NE(chart.find("gpu0"), std::string::npos);
  EXPECT_NE(chart.find("gpu1"), std::string::npos);
  // The fast GPU (0) must show idle time (barrier wait) while the slow one
  // computes: its row contains dots somewhere before the merge.
  const auto row0 = chart.substr(chart.find("gpu0"));
  EXPECT_NE(row0.substr(0, 68).find('.'), std::string::npos);
}

}  // namespace
}  // namespace hetero::sim
