#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/histogram.h"
#include "util/rng.h"

namespace hetero::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MatchesDirectComputation) {
  Rng rng(1);
  std::vector<double> values;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.gaussian(10.0, 2.0);
    values.push_back(v);
    s.add(v);
  }
  EXPECT_NEAR(s.mean(), mean_of(values), 1e-9);
  EXPECT_NEAR(s.stddev(), stddev_of(values), 1e-9);
}

TEST(RunningStats, MinMaxTracked) {
  RunningStats s;
  for (double v : {5.0, -2.0, 7.0, 0.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(2);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(0, 100);
    if (i % 2) {
      a.add(v);
    } else {
      b.add(v);
    }
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean_before = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean_before);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean_before);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Quantile, MedianOfOdd) {
  EXPECT_DOUBLE_EQ(quantile({3, 1, 2}, 0.5), 2.0);
}

TEST(Quantile, InterpolatesBetween) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Quantile, Extremes) {
  std::vector<double> v{5, 1, 9, 3};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
}

TEST(Quantile, EmptyReturnsZero) { EXPECT_EQ(quantile({}, 0.5), 0.0); }

TEST(VectorStats, MeanAndStddev) {
  std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean_of(v), 5.0);
  EXPECT_NEAR(stddev_of(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(VectorStats, EmptyAndSingle) {
  EXPECT_EQ(mean_of({}), 0.0);
  EXPECT_EQ(stddev_of({}), 0.0);
  EXPECT_EQ(stddev_of({42.0}), 0.0);
}

TEST(RelativeSpread, Basic) {
  // Fig. 1 gap measure: (max - min) / min.
  EXPECT_NEAR(relative_spread({1.0, 1.32}), 0.32, 1e-12);
}

TEST(RelativeSpread, UniformIsZero) {
  EXPECT_EQ(relative_spread({2.0, 2.0, 2.0}), 0.0);
}

TEST(RelativeSpread, GuardsZeroMin) {
  EXPECT_EQ(relative_spread({0.0, 5.0}), 0.0);
  EXPECT_EQ(relative_spread({}), 0.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.5);    // bin 9
  h.add(-5.0);   // clamped to bin 0
  h.add(100.0);  // clamped to bin 9
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(Histogram, NonFiniteValuesAreHandledWithoutUb) {
  // Pre-fix, add() cast the value to an integer bin BEFORE clamping; for
  // NaN, +/-inf, or anything outside ptrdiff_t range that cast is UB
  // (caught by -fsanitize=float-cast-overflow). Now: NaN is dropped and
  // counted, infinities clamp to the edge bins.
  Histogram h(0.0, 10.0, 10);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.non_finite(), 1u);

  h.add(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.bin_count(9), 1u);
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.non_finite(), 3u);

  // Finite but astronomically out of range: scaled position is far beyond
  // ptrdiff_t, so the pre-clamp cast would also have been UB.
  h.add(1e308);
  EXPECT_EQ(h.bin_count(9), 2u);
  h.add(-1e308);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.non_finite(), 3u);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.25);
  h.add(0.75);
  const auto text = h.render();
  EXPECT_NE(text.find('#'), std::string::npos);
  EXPECT_NE(text.find('2'), std::string::npos);
}

class QuantileOrderParam : public ::testing::TestWithParam<double> {};

TEST_P(QuantileOrderParam, MonotoneInQ) {
  Rng rng(3);
  std::vector<double> v;
  for (int i = 0; i < 200; ++i) v.push_back(rng.uniform(-50, 50));
  const double q = GetParam();
  EXPECT_LE(quantile(v, q), quantile(v, std::min(1.0, q + 0.1)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuantileOrderParam,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9));

}  // namespace
}  // namespace hetero::util
