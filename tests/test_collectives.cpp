#include "comm/collectives.h"

#include <gtest/gtest.h>

#include "comm/allreduce.h"
#include "sim/profiles.h"

namespace hetero::comm {
namespace {

CollectiveParams params(std::size_t n, std::size_t bytes,
                        std::size_t streams = 1) {
  CollectiveParams p;
  p.num_devices = n;
  p.bytes = bytes;
  p.num_streams = streams;
  return p;
}

const sim::LinkModel& links4() {
  static const sim::LinkModel links = sim::default_links(4);
  return links;
}

TEST(Collectives, SingleDeviceIsFree) {
  EXPECT_EQ(broadcast_seconds(links4(), params(1, 1 << 20)), 0.0);
  EXPECT_EQ(reduce_scatter_seconds(links4(), params(1, 1 << 20)), 0.0);
  EXPECT_EQ(all_gather_seconds(links4(), params(1, 1 << 20)), 0.0);
}

TEST(Collectives, MonotoneInBytes) {
  for (auto* fn : {&broadcast_seconds, &reduce_scatter_seconds,
                   &all_gather_seconds, &host_gather_seconds,
                   &host_broadcast_seconds}) {
    EXPECT_LT(fn(links4(), params(4, 1 << 16)),
              fn(links4(), params(4, 1 << 24)));
  }
}

TEST(Collectives, MultiStreamSpeedsUpReduceScatter) {
  const auto p1 = params(4, 64 << 20, 1);
  const auto p4 = params(4, 64 << 20, 4);
  EXPECT_GT(reduce_scatter_seconds(links4(), p1),
            reduce_scatter_seconds(links4(), p4));
}

TEST(Collectives, ReduceScatterCostsMoreThanAllGather) {
  // Same transfer volume, but reduce-scatter adds the reduction compute and
  // kernel launches.
  const auto p = params(4, 64 << 20, 1);
  EXPECT_GT(reduce_scatter_seconds(links4(), p),
            all_gather_seconds(links4(), p));
}

TEST(Collectives, RingAllReduceMatchesPhaseSum) {
  // The single-stream ring all-reduce cost equals reduce-scatter +
  // all-gather (that is its definition).
  const std::size_t bytes = 32 << 20;
  AllReducer ring(AllReduceAlgo::kRingMultiStream, links4(), 1);
  const double whole = ring.cost(4, bytes).seconds;
  const auto p = params(4, bytes, 1);
  const double phases = reduce_scatter_seconds(links4(), p) +
                        all_gather_seconds(links4(), p);
  EXPECT_NEAR(whole, phases, 1e-9);
}

TEST(Collectives, HostLinkSharedAcrossDevices) {
  const auto p2 = params(2, 16 << 20);
  const auto p8 = params(8, 16 << 20);
  EXPECT_LT(host_gather_seconds(links4(), p2),
            host_gather_seconds(links4(), p8));
}

TEST(Collectives, BroadcastLatencyGrowsWithDeviceCount) {
  const sim::LinkModel links8 = sim::default_links(8);
  EXPECT_LT(broadcast_seconds(links8, params(2, 1 << 20)),
            broadcast_seconds(links8, params(8, 1 << 20)));
}

class StreamParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StreamParam, ReduceScatterNeverSlowerWithMoreStreams) {
  const std::size_t s = GetParam();
  const double t1 = reduce_scatter_seconds(links4(), params(4, 128 << 20, s));
  const double t2 =
      reduce_scatter_seconds(links4(), params(4, 128 << 20, s * 2));
  EXPECT_LE(t2, t1 * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(Streams, StreamParam, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace hetero::comm
