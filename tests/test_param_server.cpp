// SSP parameter-server trainer tests (staleness bounds per Ho et al.,
// the convergence framework the paper cites for Algorithm 1's b_min/b_max
// bounds).
#include "core/param_server.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "sim/profiles.h"

namespace hetero::core {
namespace {

const data::XmlDataset& dataset() {
  static const data::XmlDataset d = [] {
    auto cfg = data::tiny_profile();
    cfg.num_train = 2000;
    return data::generate_xml_dataset(cfg);
  }();
  return d;
}

TrainerConfig config() {
  TrainerConfig cfg;
  cfg.hidden = 16;
  cfg.batch_max = 32;
  cfg.batches_per_megabatch = 16;
  cfg.num_megabatches = 3;
  cfg.learning_rate = 0.3;
  cfg.eval_samples = 200;
  cfg.compute_scale = 2000.0;
  return cfg;
}

TrainResult run(std::size_t gpus, std::size_t bound,
                double gap = 0.32, TrainerConfig cfg = config()) {
  ParamServerTrainer trainer(dataset(), cfg,
                             sim::v100_heterogeneous(gpus, gap), bound);
  return trainer.train();
}

TEST(ParamServer, ImprovesAccuracy) {
  const auto r = run(2, 2);
  EXPECT_GT(r.final_top1(), r.curve.front().top1 + 0.15);
  EXPECT_EQ(r.method, "ssp-ps");
}

TEST(ParamServer, StalenessRespectsBound) {
  // With SSP bound s, a gradient can be stale by at most (n-1)*(s+1)
  // applied updates (every other GPU fits at most s+1 updates in the
  // window). The average must be well below that.
  const std::size_t n = 4, s = 1;
  const auto r = run(n, s, 0.5);
  EXPECT_LE(r.avg_staleness,
            static_cast<double>((n - 1) * (s + 1)));
}

TEST(ParamServer, ZeroBoundIsNearSynchronous) {
  const auto tight = run(4, 0, 0.5);
  const auto loose = run(4, 8, 0.5);
  EXPECT_LT(tight.avg_staleness, loose.avg_staleness);
}

TEST(ParamServer, StallsHappenUnderHeterogeneityWithTightBound) {
  TrainerConfig cfg = config();
  ParamServerTrainer trainer(dataset(), cfg, sim::v100_heterogeneous(4, 0.5),
                             /*staleness_bound=*/0);
  trainer.train();
  EXPECT_GT(trainer.ssp_stalls(), 0u);
}

TEST(ParamServer, LooseBoundFasterThanTightUnderHeterogeneity) {
  // The SSP trade-off: a tighter window means more waiting on stragglers.
  const auto tight = run(4, 0, 0.5);
  const auto loose = run(4, 6, 0.5);
  EXPECT_GE(tight.total_vtime, loose.total_vtime * 0.999);
}

TEST(ParamServer, CommChargedForPullPush) {
  const auto r = run(2, 2);
  EXPECT_GT(r.comm_seconds, 0.0);
}

TEST(ParamServer, Deterministic) {
  const auto a = run(3, 2);
  const auto b = run(3, 2);
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.curve[i].top1, b.curve[i].top1);
    EXPECT_DOUBLE_EQ(a.curve[i].vtime, b.curve[i].vtime);
  }
}

TEST(ParamServer, SingleGpuZeroStaleness) {
  const auto r = run(1, 4);
  EXPECT_DOUBLE_EQ(r.avg_staleness, 0.0);
}

class BoundSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BoundSweep, RunsAndAccounts) {
  const auto r = run(3, GetParam());
  std::size_t total = 0;
  for (const auto& g : r.gpus) total += g.total_samples;
  EXPECT_GE(total, config().megabatch_samples() * config().num_megabatches);
  EXPECT_GT(r.final_top1(), 0.1);
}

INSTANTIATE_TEST_SUITE_P(Bounds, BoundSweep, ::testing::Values(0, 1, 2, 4, 16));

}  // namespace
}  // namespace hetero::core
