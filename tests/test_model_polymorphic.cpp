// The model-polymorphic training stack, end to end: DeepMlp gradients
// against central finite differences, and the deep model through the real
// multi-GPU adaptive schedule — threaded bit-identical to inline, delta
// merge bit-identical to the dense oracle, and a one-hidden-layer DeepMlp
// bit-identical to MlpModel through the whole runtime.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "core/adaptive_sgd.h"
#include "core/runtime.h"
#include "data/synthetic.h"
#include "nn/deep_mlp.h"
#include "nn/mlp.h"
#include "nn/model.h"
#include "util/rng.h"

namespace hetero {
namespace {

sparse::CsrMatrix batch_x(std::size_t rows, std::size_t cols,
                          util::Rng& rng) {
  sparse::CsrBuilder b(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<sparse::Entry> entries;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(0.3)) {
        entries.push_back({static_cast<std::uint32_t>(c),
                           static_cast<float>(rng.uniform(0.1, 1.0))});
      }
    }
    if (entries.empty()) entries.push_back({0, 1.0f});
    b.add_row(std::move(entries));
  }
  return b.build();
}

sparse::CsrMatrix batch_y(std::size_t rows, std::size_t classes,
                          util::Rng& rng) {
  sparse::CsrBuilder b(classes);
  for (std::size_t r = 0; r < rows; ++r) {
    b.add_indicator_row({static_cast<std::uint32_t>(rng.next_below(classes))});
  }
  return b.build();
}

// Extracts the analytic gradient through the public Model API only:
// apply_gradients with lr=1 subtracts exactly the gradient, so
// g = flat(before) - flat(after) on a throwaway clone.
std::vector<double> analytic_gradient(const nn::Model& model,
                                      const sparse::CsrMatrix& x,
                                      const sparse::CsrMatrix& y) {
  const auto probe = model.clone();
  const auto ws = probe->make_workspace();
  probe->compute_gradients(x, y, *ws);
  const auto before = probe->to_flat();
  probe->apply_gradients(*ws, 1.0f);
  const auto after = probe->to_flat();
  std::vector<double> g(before.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] = static_cast<double>(before[i]) - static_cast<double>(after[i]);
  }
  return g;
}

TEST(DeepMlpGradients, MatchCentralFiniteDifferences) {
  nn::DeepMlpConfig cfg;
  cfg.num_features = 12;
  cfg.hidden = {6, 5};
  cfg.num_classes = 4;
  nn::DeepMlp model(cfg);
  util::Rng rng(17);
  model.init(rng);

  util::Rng data_rng(18);
  const auto x = batch_x(4, 12, data_rng);
  const auto y = batch_y(4, 4, data_rng);

  const auto g = analytic_gradient(model, x, y);
  const auto theta = model.to_flat();
  const auto ws = model.make_workspace();
  const float eps = 1e-2f;

  // Central differences over every parameter of the (small) model. The
  // check must also catch a gradient that is right in magnitude but wired
  // to the wrong layer, so no sampling.
  nn::DeepMlp probe(cfg);
  std::size_t checked = 0;
  for (std::size_t i = 0; i < theta.size(); ++i) {
    auto perturbed = theta;
    perturbed[i] = theta[i] + eps;
    probe.from_flat(perturbed);
    const double up = probe.forward_loss(x, y, *ws);
    perturbed[i] = theta[i] - eps;
    probe.from_flat(perturbed);
    const double down = probe.forward_loss(x, y, *ws);
    const double numeric = (up - down) / (2.0 * static_cast<double>(eps));
    EXPECT_NEAR(numeric, g[i], 1e-3 + 0.02 * std::abs(g[i])) << "param " << i;
    ++checked;
  }
  EXPECT_EQ(checked, cfg.num_parameters());
}

// ---- Deep model through the real multi-GPU adaptive schedule -------------

class DeepRuntimeTest : public ::testing::Test {
 protected:
  DeepRuntimeTest()
      : dataset_(data::generate_xml_dataset(data::tiny_profile())) {}

  core::TrainerConfig config(nn::ModelKind kind,
                             std::vector<std::size_t> hidden,
                             bool sparse_merge, std::size_t kernel_threads,
                             bool threaded) const {
    core::TrainerConfig cfg;
    cfg.model_kind = kind;
    cfg.hidden = hidden.front();
    cfg.hidden_layers = std::move(hidden);
    cfg.batch_max = 32;
    cfg.batches_per_megabatch = 8;
    cfg.eval_samples = 100;
    cfg.compute_scale = 100.0;
    cfg.sparse_merge = sparse_merge;
    cfg.enable_momentum = true;
    cfg.kernel_threads = kernel_threads;
    if (threaded) cfg.mode = core::ExecutionMode::kThreaded;
    return cfg;
  }

  // The same uneven step/merge schedule used by the delta-merge tests:
  // per-GPU batch sizes and step counts differ, merge weights sum to 1.1
  // (Algorithm 2 can denormalize). Returns the global flats after each of
  // three merges.
  std::vector<std::vector<float>> run_schedule(
      core::MultiGpuRuntime& rt,
      std::vector<core::MultiGpuRuntime::MergeTiming>* timings = nullptr) {
    std::vector<std::vector<float>> globals;
    const std::vector<double> weights = {0.4, 0.3, 0.25, 0.15};
    for (std::size_t mb = 0; mb < 3; ++mb) {
      double sync = 0.0;
      for (std::size_t g = 0; g < rt.num_gpus(); ++g) {
        double t = rt.gpu_free_at(g);
        for (std::size_t s = 0; s < 2 + g; ++s) {
          t = rt.run_update_step(g, rt.next_batch(16 + 4 * g), 0.1, t);
        }
        sync = std::max(sync, t);
      }
      const auto timing = rt.merge_and_update(
          std::span<const double>(weights.data(), rt.num_gpus()), sync);
      if (timings != nullptr) timings->push_back(timing);
      globals.push_back(rt.global_model().to_flat());
      for (std::size_t g = 0; g < rt.num_gpus(); ++g) {
        EXPECT_EQ(rt.replica(g).to_flat(), globals.back());
      }
    }
    return globals;
  }

  data::XmlDataset dataset_;
};

TEST_F(DeepRuntimeTest, ThreadedBitIdenticalToInline) {
  core::MultiGpuRuntime inline_rt(
      dataset_, config(nn::ModelKind::kDeep, {12, 8}, true, 1, false),
      sim::v100_heterogeneous(4));
  core::MultiGpuRuntime threaded_rt(
      dataset_, config(nn::ModelKind::kDeep, {12, 8}, true, 4, true),
      sim::v100_heterogeneous(4));
  const auto inline_globals = run_schedule(inline_rt);
  const auto threaded_globals = run_schedule(threaded_rt);
  ASSERT_EQ(inline_globals.size(), threaded_globals.size());
  for (std::size_t m = 0; m < inline_globals.size(); ++m) {
    ASSERT_EQ(threaded_globals[m], inline_globals[m]) << "merge " << m;
  }
}

TEST_F(DeepRuntimeTest, DeltaMergeBitIdenticalToDenseOracle) {
  core::MultiGpuRuntime dense(
      dataset_, config(nn::ModelKind::kDeep, {12, 8}, false, 1, false),
      sim::v100_heterogeneous(4));
  core::MultiGpuRuntime delta(
      dataset_, config(nn::ModelKind::kDeep, {12, 8}, true, 1, false),
      sim::v100_heterogeneous(4));
  std::vector<core::MultiGpuRuntime::MergeTiming> dense_t, delta_t;
  const auto dense_globals = run_schedule(dense, &dense_t);
  const auto delta_globals = run_schedule(delta, &delta_t);
  ASSERT_EQ(dense_globals.size(), delta_globals.size());
  for (std::size_t m = 0; m < dense_globals.size(); ++m) {
    ASSERT_EQ(delta_globals[m], dense_globals[m]) << "merge " << m;
  }
  // The delta payload must actually shrink: tiny_profile batches touch a
  // small fraction of the input features.
  for (std::size_t m = 0; m < delta_t.size(); ++m) {
    EXPECT_GT(delta_t[m].touched_rows, 0u);
    EXPECT_LT(delta_t[m].payload_bytes, dense_t[m].payload_bytes);
  }
}

TEST_F(DeepRuntimeTest, OneHiddenDeepMatchesMlpThroughRuntime) {
  // Same seed, same schedule: a one-hidden-layer DeepMlp must reproduce the
  // MlpModel runtime bit-for-bit (init consumes the rng identically and the
  // kernel sequences are the same).
  core::MultiGpuRuntime mlp_rt(
      dataset_, config(nn::ModelKind::kMlp, {16}, true, 2, true),
      sim::v100_heterogeneous(4));
  core::MultiGpuRuntime deep_rt(
      dataset_, config(nn::ModelKind::kDeep, {16}, true, 2, true),
      sim::v100_heterogeneous(4));
  const auto mlp_globals = run_schedule(mlp_rt);
  const auto deep_globals = run_schedule(deep_rt);
  ASSERT_EQ(mlp_globals.size(), deep_globals.size());
  for (std::size_t m = 0; m < mlp_globals.size(); ++m) {
    ASSERT_EQ(deep_globals[m], mlp_globals[m]) << "merge " << m;
  }
}

TEST_F(DeepRuntimeTest, AdaptiveTrainerRunsDeepEndToEnd) {
  auto cfg = config(nn::ModelKind::kDeep, {24, 12}, true, 2, true);
  cfg.num_megabatches = 2;
  core::AdaptiveSgdTrainer trainer(dataset_, cfg,
                                   sim::v100_heterogeneous(4, 0.32));
  const auto result = trainer.train();
  EXPECT_EQ(result.merges, 2u);
  ASSERT_FALSE(result.curve.empty());
  // The dynamic scheduler must actually train the deep model, not just
  // shuffle it through the merge path.
  EXPECT_GT(result.best_top1(), result.curve.front().top1);
}

}  // namespace
}  // namespace hetero
