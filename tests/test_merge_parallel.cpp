// Merge-path determinism and equivalence tests.
//
// The merge pipeline promises bit-identical results across every execution
// strategy: serial vs sharded vs threaded reductions, segmented vs flat
// buffers, and the delta (touched-row) path vs the dense oracle. These tests
// enforce that contract with exact bitwise comparisons — EXPECT_EQ on float
// vectors, never EXPECT_NEAR — over fuzzed shapes, perturbed weights with
// sum != 1, momentum on and off, and 1..16 pool threads.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "comm/allreduce.h"
#include "comm/quant.h"
#include "core/merging.h"
#include "core/runtime.h"
#include "data/synthetic.h"
#include "sim/profiles.h"
#include "sparse/sparse_gradient.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hetero {
namespace {

std::vector<float> random_params(std::size_t len, util::Rng& rng) {
  std::vector<float> v(len);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

std::vector<double> perturbed_weights(std::size_t n, util::Rng& rng) {
  // Deliberately NOT summing to 1 (Algorithm 2 perturbation denormalizes).
  std::vector<double> w(n);
  for (auto& x : w) x = rng.uniform(0.05, 0.6);
  return w;
}

// Serial element-at-a-time reference of the fused merge + momentum update —
// the oracle every sharded/threaded/delta path must match bitwise.
void reference_merge(const std::vector<std::vector<float>>& replicas,
                     const std::vector<double>& weights,
                     std::vector<float>& global, std::vector<float>& prev,
                     double gamma, bool momentum) {
  const auto g = static_cast<float>(gamma);
  for (std::size_t j = 0; j < global.size(); ++j) {
    double acc = weights[0] * replicas[0][j];
    for (std::size_t i = 1; i < replicas.size(); ++i) {
      acc += weights[i] * replicas[i][j];
    }
    const auto merged = static_cast<float>(acc);
    if (momentum) {
      const float w = global[j];
      global[j] = merged + g * (w - prev[j]);
      prev[j] = w;
    } else {
      prev[j] = global[j];
      global[j] = merged;
    }
  }
}

kernels::Context pool_ctx(util::ThreadPool* pool, std::size_t threads) {
  kernels::Context ctx{pool, threads};
  ctx.serial_grain = 1;  // force the parallel path even on tiny inputs
  return ctx;
}

TEST(MergeSegment, BitIdenticalToSerialReferenceAcrossThreadsAndShards) {
  util::Rng rng(42);
  const std::size_t kThreadCounts[] = {1, 2, 3, 8, 16};
  const std::size_t kShapes[] = {1, 5, 511, 512, 513, 1000, 4113};
  for (const std::size_t len : kShapes) {
    for (const std::size_t n : {1u, 2u, 3u, 5u}) {
      std::vector<std::vector<float>> replicas;
      for (std::size_t i = 0; i < n; ++i) {
        replicas.push_back(random_params(len, rng));
      }
      const auto weights = perturbed_weights(n, rng);
      const auto global0 = random_params(len, rng);
      const auto prev0 = random_params(len, rng);
      for (const bool momentum : {true, false}) {
        auto ref_global = global0;
        auto ref_prev = prev0;
        reference_merge(replicas, weights, ref_global, ref_prev, 0.9,
                        momentum);
        for (const std::size_t threads : kThreadCounts) {
          util::ThreadPool pool(threads);
          const auto ctx = pool_ctx(&pool, threads);
          for (const std::size_t shards : {1u, 3u, 8u}) {
            auto global = global0;
            auto prev = prev0;
            std::vector<const float*> bases;
            for (const auto& r : replicas) bases.push_back(r.data());
            core::MergeUpdate u{weights, 0.9, momentum};
            core::merge_segment(bases, len, u,
                                {global.data(), global.size()},
                                {prev.data(), prev.size()}, shards, ctx);
            ASSERT_EQ(global, ref_global)
                << "len=" << len << " n=" << n << " threads=" << threads
                << " shards=" << shards << " momentum=" << momentum;
            ASSERT_EQ(prev, ref_prev);
          }
        }
      }
    }
  }
}

TEST(MergeSegment, DeltaPairBitIdenticalToDenseKernel) {
  util::Rng rng(7);
  const std::size_t rows = 257, cols = 48;
  const std::size_t len = rows * cols;
  for (const std::size_t n : {2u, 4u}) {
    for (const bool momentum : {true, false}) {
      const auto global0 = random_params(len, rng);
      const auto prev0 = random_params(len, rng);
      // Replicas equal global except on their own touched rows — the
      // invariant the broadcast establishes and sparse updates preserve.
      sparse::RowSet touched;
      touched.reset(rows);
      std::vector<std::vector<float>> replicas(n, global0);
      for (std::size_t i = 0; i < n; ++i) {
        std::vector<std::uint32_t> mine;
        const std::size_t k = 1 + rng.next_below(rows / 3);
        for (std::size_t t = 0; t < k; ++t) {
          mine.push_back(static_cast<std::uint32_t>(rng.next_below(rows)));
        }
        touched.add(mine);
        for (const auto r : mine) {
          for (std::size_t c = 0; c < cols; ++c) {
            replicas[i][r * cols + c] +=
                static_cast<float>(rng.uniform(-0.5, 0.5));
          }
        }
      }
      const auto weights = perturbed_weights(n, rng);
      core::MergeUpdate u{weights, 0.9, momentum};
      std::vector<const float*> bases;
      for (const auto& r : replicas) bases.push_back(r.data());

      auto dense_global = global0;
      auto dense_prev = prev0;
      core::merge_segment(bases, len, u,
                          {dense_global.data(), len},
                          {dense_prev.data(), len}, 4, {});

      util::ThreadPool pool(4);
      const auto ctx = pool_ctx(&pool, 4);
      auto delta_global = global0;
      auto delta_prev = prev0;
      std::vector<std::uint32_t> sorted;
      touched.sorted_rows(sorted);
      core::merge_touched_rows(bases, sorted, cols, u, delta_global.data(),
                               delta_prev.data(), ctx);
      core::merge_untouched_rows(touched, rows, cols, u,
                                 {delta_global.data(), len},
                                 {delta_prev.data(), len}, ctx);
      ASSERT_EQ(delta_global, dense_global)
          << "n=" << n << " momentum=" << momentum
          << " touched=" << touched.size();
      ASSERT_EQ(delta_prev, dense_prev);
    }
  }
}

TEST(WeightedAverageSegments, MatchesFlatPathAndShardCounts) {
  util::Rng rng(3);
  const std::vector<std::size_t> seg_lens = {100, 1, 777, 64};
  const std::size_t total = 942;
  for (const std::size_t n : {2u, 3u}) {
    std::vector<std::vector<float>> flat_data;
    for (std::size_t i = 0; i < n; ++i) {
      flat_data.push_back(random_params(total, rng));
    }
    const auto weights = perturbed_weights(n, rng);

    // Flat single-shard serial reference.
    auto ref = flat_data;
    {
      comm::AllReducer serial(comm::AllReduceAlgo::kRingMultiStream,
                              sim::default_links(2), 1);
      std::vector<std::span<float>> views;
      for (auto& f : ref) views.emplace_back(f.data(), f.size());
      serial.weighted_average(views, weights);
    }

    for (const std::size_t streams : {1u, 4u, 13u}) {
      for (const std::size_t threads : {1u, 8u}) {
        util::ThreadPool pool(threads);
        const auto ctx = pool_ctx(&pool, threads);
        auto data = flat_data;
        std::vector<comm::SegmentedView> segs(n);
        for (std::size_t i = 0; i < n; ++i) {
          float* p = data[i].data();
          for (const auto sl : seg_lens) {
            segs[i].emplace_back(p, sl);
            p += sl;
          }
        }
        comm::AllReducer reducer(comm::AllReduceAlgo::kRingMultiStream,
                                 sim::default_links(2), streams);
        const auto cost =
            reducer.weighted_average_segments(segs, weights, ctx);
        EXPECT_DOUBLE_EQ(cost.payload_bytes,
                         static_cast<double>(total * sizeof(float)));
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(data[i], ref[i])
              << "streams=" << streams << " threads=" << threads;
        }
      }
    }
  }
}

TEST(RowSet, AddDedupContainsClear) {
  sparse::RowSet set;
  set.reset(100);
  EXPECT_EQ(set.size(), 0u);
  const std::uint32_t a[] = {5, 7, 5, 99, 0, 7};
  set.add(a);
  EXPECT_EQ(set.size(), 4u);
  EXPECT_TRUE(set.contains(5));
  EXPECT_TRUE(set.contains(0));
  EXPECT_TRUE(set.contains(99));
  EXPECT_FALSE(set.contains(1));
  EXPECT_FALSE(set.contains(100));  // out of range

  sparse::RowSet other;
  other.reset(100);
  const std::uint32_t b[] = {5, 42};
  other.add(b);
  set.add(other);
  EXPECT_EQ(set.size(), 5u);

  std::vector<std::uint32_t> sorted;
  set.sorted_rows(sorted);
  EXPECT_EQ(sorted, (std::vector<std::uint32_t>{0, 5, 7, 42, 99}));

  set.clear();
  EXPECT_EQ(set.size(), 0u);
  EXPECT_FALSE(set.contains(5));
  set.add(b);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_FALSE(set.contains(7));  // stale pre-clear entry must not leak
}

TEST(AllReduceCost, RingMultiStreamChargesFractionalChunks) {
  comm::AllReducer reducer(comm::AllReduceAlgo::kRingMultiStream,
                           sim::default_links(4), 8);
  // With 8 streams and 4 replicas, 16- and 8-byte buffers both truncate to
  // 0-byte chunks under the old integer cast — the costs were equal. The
  // fractional fix must strictly order them.
  const auto small = reducer.cost(4, 8);
  const auto large = reducer.cost(4, 16);
  EXPECT_GT(large.seconds, small.seconds);
  EXPECT_DOUBLE_EQ(small.payload_bytes, 8.0);
  EXPECT_DOUBLE_EQ(large.payload_bytes, 16.0);
}

// ---- Runtime-level equivalence: delta merge vs dense oracle --------------

class DeltaMergeRuntimeTest : public ::testing::Test {
 protected:
  DeltaMergeRuntimeTest()
      : dataset_(data::generate_xml_dataset(data::tiny_profile())) {}

  core::TrainerConfig config(bool sparse_merge, bool momentum,
                             std::size_t kernel_threads,
                             bool threaded) const {
    core::TrainerConfig cfg;
    cfg.hidden = 16;
    cfg.batch_max = 32;
    cfg.batches_per_megabatch = 8;
    cfg.eval_samples = 100;
    cfg.compute_scale = 100.0;
    cfg.sparse_merge = sparse_merge;
    cfg.enable_momentum = momentum;
    cfg.kernel_threads = kernel_threads;
    if (threaded) cfg.mode = core::ExecutionMode::kThreaded;
    return cfg;
  }

  // Runs the same step/merge schedule on a runtime and returns the global
  // model flats observed after each of three merges.
  std::vector<std::vector<float>> run_schedule(
      core::MultiGpuRuntime& rt,
      std::vector<core::MultiGpuRuntime::MergeTiming>* timings = nullptr) {
    std::vector<std::vector<float>> globals;
    // Perturbed weights: sum = 1.1 (Algorithm 2 can denormalize).
    const std::vector<double> weights = {0.4, 0.3, 0.25, 0.15};
    for (std::size_t mb = 0; mb < 3; ++mb) {
      double sync = 0.0;
      for (std::size_t g = 0; g < rt.num_gpus(); ++g) {
        double t = rt.gpu_free_at(g);
        for (std::size_t s = 0; s < 2 + g; ++s) {
          t = rt.run_update_step(g, rt.next_batch(16 + 4 * g), 0.1, t);
        }
        sync = std::max(sync, t);
      }
      const auto timing = rt.merge_and_update(
          std::span<const double>(weights.data(), rt.num_gpus()), sync);
      if (timings != nullptr) timings->push_back(timing);
      globals.push_back(rt.global_model().to_flat());
      // Every replica must hold the broadcast global exactly.
      for (std::size_t g = 0; g < rt.num_gpus(); ++g) {
        EXPECT_EQ(rt.replica(g).to_flat(), globals.back());
      }
    }
    return globals;
  }

  data::XmlDataset dataset_;
};

TEST_F(DeltaMergeRuntimeTest, DeltaBitIdenticalToDenseOracle) {
  for (const bool momentum : {true, false}) {
    for (const bool threaded : {false, true}) {
      for (const std::size_t threads : {1u, 4u}) {
        core::MultiGpuRuntime dense(
            dataset_, config(false, momentum, threads, threaded),
            sim::v100_heterogeneous(4));
        core::MultiGpuRuntime delta(
            dataset_, config(true, momentum, threads, threaded),
            sim::v100_heterogeneous(4));
        const auto dense_globals = run_schedule(dense);
        std::vector<core::MultiGpuRuntime::MergeTiming> timings;
        const auto delta_globals = run_schedule(delta, &timings);
        ASSERT_EQ(dense_globals.size(), delta_globals.size());
        for (std::size_t m = 0; m < dense_globals.size(); ++m) {
          ASSERT_EQ(delta_globals[m], dense_globals[m])
              << "merge " << m << " momentum=" << momentum
              << " threaded=" << threaded << " threads=" << threads;
        }
        for (const auto& t : timings) {
          EXPECT_GT(t.touched_rows, 0u);
          EXPECT_LT(t.touched_rows, delta.model_info().num_features);
        }
      }
    }
  }
}

TEST_F(DeltaMergeRuntimeTest, DeltaMergeChargesDeltaBytes) {
  core::MultiGpuRuntime dense(dataset_, config(false, true, 1, false),
                              sim::v100_heterogeneous(4));
  core::MultiGpuRuntime delta(dataset_, config(true, true, 1, false),
                              sim::v100_heterogeneous(4));
  std::vector<core::MultiGpuRuntime::MergeTiming> dense_t, delta_t;
  run_schedule(dense, &dense_t);
  run_schedule(delta, &delta_t);
  for (std::size_t m = 0; m < delta_t.size(); ++m) {
    // tiny_profile batches touch a small fraction of features, so the delta
    // payload — and with it the virtual comm charge — must shrink.
    EXPECT_LT(delta_t[m].payload_bytes, dense_t[m].payload_bytes);
    EXPECT_LT(delta_t[m].allreduce_seconds, dense_t[m].allreduce_seconds);
    EXPECT_LT(delta_t[m].host_roundtrip_seconds,
              dense_t[m].host_roundtrip_seconds);
    EXPECT_DOUBLE_EQ(
        delta_t[m].payload_bytes,
        static_cast<double>(delta.virtual_payload_bytes(
            delta_t[m].touched_rows * delta.model_info().input_cols() +
            delta.model_info().input_cols() +
            delta.model_info().input_cols() * delta.model_info().num_classes +
            delta.model_info().num_classes)));
  }
}

TEST_F(DeltaMergeRuntimeTest, RepeatedDeltaRunsAreDeterministic) {
  const auto run_once = [&] {
    core::MultiGpuRuntime rt(dataset_, config(true, true, 4, true),
                             sim::v100_heterogeneous(4));
    return run_schedule(rt);
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---- Compressed merge payloads (DESIGN.md §10) ---------------------------

class QuantizedMergeRuntimeTest : public DeltaMergeRuntimeTest {
 protected:
  core::TrainerConfig qconfig(comm::MergePrecision precision,
                              bool sparse_merge, std::size_t kernel_threads,
                              bool threaded) const {
    auto cfg = config(sparse_merge, true, kernel_threads, threaded);
    cfg.merge_precision = precision;
    return cfg;
  }
};

TEST_F(QuantizedMergeRuntimeTest, DeterministicAcrossThreadCounts) {
  for (const auto precision :
       {comm::MergePrecision::kFp16, comm::MergePrecision::kInt8}) {
    for (const bool sparse : {true, false}) {
      core::MultiGpuRuntime ref_rt(
          dataset_, qconfig(precision, sparse, 1, false),
          sim::v100_heterogeneous(4));
      const auto ref = run_schedule(ref_rt);
      for (const std::size_t threads : {1u, 4u}) {
        for (const bool threaded : {false, true}) {
          core::MultiGpuRuntime rt(
              dataset_, qconfig(precision, sparse, threads, threaded),
              sim::v100_heterogeneous(4));
          const auto got = run_schedule(rt);
          ASSERT_EQ(got, ref)
              << "precision=" << comm::precision_name(precision)
              << " sparse=" << sparse << " threads=" << threads
              << " threaded=" << threaded;
        }
      }
    }
  }
}

TEST_F(QuantizedMergeRuntimeTest, PayloadBytesShrinkExactly) {
  std::vector<core::MultiGpuRuntime::MergeTiming> fp32_t, fp16_t, int8_t_;
  {
    core::MultiGpuRuntime rt(
        dataset_, qconfig(comm::MergePrecision::kFp32, true, 1, false),
        sim::v100_heterogeneous(4));
    run_schedule(rt, &fp32_t);
  }
  {
    core::MultiGpuRuntime rt(
        dataset_, qconfig(comm::MergePrecision::kFp16, true, 1, false),
        sim::v100_heterogeneous(4));
    run_schedule(rt, &fp16_t);
  }
  {
    core::MultiGpuRuntime rt(
        dataset_, qconfig(comm::MergePrecision::kInt8, true, 1, false),
        sim::v100_heterogeneous(4));
    run_schedule(rt, &int8_t_);
  }
  ASSERT_EQ(fp32_t.size(), fp16_t.size());
  ASSERT_EQ(fp32_t.size(), int8_t_.size());
  for (std::size_t m = 0; m < fp32_t.size(); ++m) {
    // The schedule (and thus the touched-row union) is identical across
    // precisions, so element payloads are exactly 2x / 4x smaller.
    EXPECT_DOUBLE_EQ(fp16_t[m].payload_bytes * 2.0, fp32_t[m].payload_bytes)
        << "merge " << m;
    EXPECT_DOUBLE_EQ(int8_t_[m].payload_bytes * 4.0, fp32_t[m].payload_bytes)
        << "merge " << m;
    // Wire bytes bill the header/scale metadata on top of the elements —
    // strictly more than the payload, still well under the fp32 wire.
    EXPECT_GT(fp16_t[m].wire_bytes, fp16_t[m].payload_bytes);
    EXPECT_GT(int8_t_[m].wire_bytes, int8_t_[m].payload_bytes);
    EXPECT_LT(fp16_t[m].wire_bytes, fp32_t[m].wire_bytes);
    EXPECT_LT(int8_t_[m].wire_bytes, fp16_t[m].wire_bytes);
    EXPECT_DOUBLE_EQ(fp32_t[m].wire_bytes, fp32_t[m].payload_bytes);
    // Cheaper wire = cheaper simulated clock.
    EXPECT_LT(fp16_t[m].allreduce_seconds, fp32_t[m].allreduce_seconds);
    EXPECT_LT(int8_t_[m].allreduce_seconds, fp16_t[m].allreduce_seconds);
  }
}

TEST_F(QuantizedMergeRuntimeTest, ErrorFeedbackTracksFp32Oracle) {
  // Error feedback keeps the quantized global model close to the fp32
  // oracle — the residual carries each merge's rounding error into the
  // next one instead of dropping it. Loose tolerance: this is a sanity
  // bound, the real time-to-accuracy comparison lives in merge_bench.
  core::MultiGpuRuntime fp32_rt(
      dataset_, qconfig(comm::MergePrecision::kFp32, true, 1, false),
      sim::v100_heterogeneous(4));
  const auto fp32_globals = run_schedule(fp32_rt);
  for (const auto precision :
       {comm::MergePrecision::kFp16, comm::MergePrecision::kInt8}) {
    core::MultiGpuRuntime rt(dataset_, qconfig(precision, true, 1, false),
                             sim::v100_heterogeneous(4));
    const auto globals = run_schedule(rt);
    const auto& a = fp32_globals.back();
    const auto& b = globals.back();
    ASSERT_EQ(a.size(), b.size());
    float max_diff = 0.0f;
    for (std::size_t j = 0; j < a.size(); ++j) {
      max_diff = std::max(max_diff, std::fabs(a[j] - b[j]));
    }
    EXPECT_LT(max_diff, 0.05f)
        << comm::precision_name(precision) << " drifted from fp32";
    EXPECT_GT(max_diff, 0.0f);  // quantization is genuinely lossy per merge
  }
}

TEST_F(QuantizedMergeRuntimeTest, RepeatedQuantizedRunsAreDeterministic) {
  for (const auto precision :
       {comm::MergePrecision::kFp16, comm::MergePrecision::kInt8}) {
    const auto run_once = [&] {
      core::MultiGpuRuntime rt(dataset_, qconfig(precision, true, 4, true),
                               sim::v100_heterogeneous(4));
      return run_schedule(rt);
    };
    EXPECT_EQ(run_once(), run_once())
        << comm::precision_name(precision);
  }
}

TEST_F(QuantizedMergeRuntimeTest, LossScaleGrowthOnlyAffectsNextMerge) {
  // Prime the guard so the very first clean merge doubles the scale. The
  // codes for that merge were quantized with the pre-growth scale, so its
  // merged global must be bit-identical to an unprimed run — growth may
  // only change quantization from the *next* merge on.
  const auto cfg = qconfig(comm::MergePrecision::kFp16, true, 1, false);
  core::MultiGpuRuntime primed(dataset_, cfg, sim::v100_heterogeneous(4));
  core::MultiGpuRuntime plain(dataset_, cfg, sim::v100_heterogeneous(4));
  const float scale0 = plain.loss_scale_guard().scale;
  primed.loss_scale_guard().good_streak =
      comm::LossScaleGuard::kGrowEvery - 1;
  const auto primed_globals = run_schedule(primed);
  const auto plain_globals = run_schedule(plain);
  EXPECT_EQ(primed_globals[0], plain_globals[0]);
  // The growth path genuinely fired on merge 0 (all three merges in this
  // schedule are clean, so the unprimed guard never moves).
  EXPECT_EQ(plain.loss_scale_guard().scale, scale0);
  EXPECT_EQ(primed.loss_scale_guard().scale, 2.0f * scale0);
}

TEST_F(QuantizedMergeRuntimeTest, ResidualStateResetOnCrashAndJoin) {
  auto cfg = qconfig(comm::MergePrecision::kInt8, true, 1, false);
  core::MultiGpuRuntime rt(dataset_, cfg, sim::v100_heterogeneous(4));
  ASSERT_TRUE(rt.compressed_merge());
  run_schedule(rt);
  // After a few int8 merges every replica has accumulated some residual.
  for (std::size_t g = 0; g < rt.num_gpus(); ++g) {
    const auto res = rt.residual_state(g);
    ASSERT_FALSE(res.empty());
    bool any = false;
    for (const float v : res) any |= (v != 0.0f);
    EXPECT_TRUE(any) << "replica " << g << " residual never charged";
  }
}

}  // namespace
}  // namespace hetero
