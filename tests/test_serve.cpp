// Online-serving subsystem tests: deterministic top-k tie-breaking,
// snapshot/checkpoint bit-identity, serving from v1/v2/v3 checkpoints,
// hot-swap under concurrent readers (TSan target), adaptive micro-batching,
// backpressure shedding, and the SLIDE candidate path.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/adaptive_sgd.h"
#include "data/synthetic.h"
#include "fault/checkpoint.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "serve/topk.h"
#include "sim/profiles.h"
#include "sparse/csr.h"
#include "util/error.h"

namespace hetero {
namespace {

// ---- deterministic top-k --------------------------------------------------

TEST(ServeTopk, TieBreaksByLabelAscending) {
  const std::vector<float> scores{2.0f, 5.0f, 5.0f, 1.0f, 5.0f};
  std::vector<serve::ScoredLabel> out;
  serve::select_topk(scores, 4, out);
  ASSERT_EQ(out.size(), 4u);
  // Three-way tie at 5.0 resolves by ascending label id.
  EXPECT_EQ(out[0].label, 1u);
  EXPECT_EQ(out[1].label, 2u);
  EXPECT_EQ(out[2].label, 4u);
  EXPECT_EQ(out[3].label, 0u);
}

TEST(ServeTopk, CandidateOverloadMatchesDenseOnFullCoverage) {
  const std::vector<float> scores{0.5f, -1.0f, 0.5f, 3.0f, 0.25f, 3.0f};
  std::vector<serve::ScoredLabel> dense;
  serve::select_topk(scores, 3, dense);

  std::vector<serve::ScoredLabel> cands;
  for (std::size_t j = scores.size(); j-- > 0;) {
    cands.push_back({static_cast<std::uint32_t>(j), scores[j]});
  }
  std::vector<serve::ScoredLabel> sparse_out;
  serve::select_topk(cands, 3, sparse_out);

  ASSERT_EQ(sparse_out.size(), dense.size());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    EXPECT_EQ(sparse_out[i].label, dense[i].label);
    EXPECT_EQ(sparse_out[i].score, dense[i].score);
  }
}

TEST(ServeTopk, KLargerThanInputReturnsEverythingSorted) {
  const std::vector<float> scores{1.0f, 4.0f, 2.0f};
  std::vector<serve::ScoredLabel> out;
  serve::select_topk(scores, 10, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].label, 1u);
  EXPECT_EQ(out[1].label, 2u);
  EXPECT_EQ(out[2].label, 0u);
}

// ---- fixture --------------------------------------------------------------

class ServeTest : public ::testing::Test {
 protected:
  ServeTest() : dataset_(data::generate_xml_dataset(data::tiny_profile())) {}

  core::TrainerConfig config() const {
    core::TrainerConfig cfg;
    cfg.hidden = 16;
    cfg.batch_max = 32;
    cfg.batches_per_megabatch = 8;
    cfg.eval_samples = 100;
    cfg.compute_scale = 100.0;
    cfg.num_megabatches = 4;
    return cfg;
  }

  static std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + name;
  }

  /// Publishes the (untrained) initial global model: cheap snapshot source
  /// for serving-behavior tests that don't care about model quality.
  void publish_initial(serve::SnapshotStore& store) const {
    core::AdaptiveSgdTrainer trainer(dataset_, config(),
                                     sim::v100_heterogeneous(2));
    store.publish(trainer.runtime().global_model(), 0.0);
  }

  serve::Request request_for_row(std::size_t row, std::size_t k = 0) const {
    const auto& q = dataset_.test.features;
    serve::Request req;
    req.k = k;
    const auto cols = q.row_cols(row % q.rows());
    const auto vals = q.row_values(row % q.rows());
    for (std::size_t i = 0; i < cols.size(); ++i) {
      req.features.push_back({cols[i], vals[i]});
    }
    return req;
  }

  static void expect_same_topk(const std::vector<serve::ScoredLabel>& a,
                               const std::vector<serve::ScoredLabel>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].label, b[i].label);
      EXPECT_EQ(a[i].score, b[i].score);  // bitwise, not approximate
    }
  }

  /// Exact top-k straight off a snapshot, bypassing the server.
  std::vector<serve::ScoredLabel> snapshot_topk(
      const serve::ModelSnapshot& snap, std::size_t row,
      std::size_t k) const {
    sparse::CsrBuilder builder(dataset_.test.features.cols());
    builder.add_row(request_for_row(row).features);
    serve::QueryScratch scratch;
    snap.forward_hidden(builder.build(), scratch);
    snap.score_output(scratch);
    std::vector<serve::ScoredLabel> out;
    snap.topk_exact(scratch, 0, k, out);
    return out;
  }

  data::XmlDataset dataset_;
};

// ---- snapshots vs checkpoints ---------------------------------------------

TEST_F(ServeTest, SnapshotAtMergeBoundaryMatchesCheckpointBlob) {
  const auto cfg = config();
  serve::SnapshotStore store;
  core::AdaptiveSgdTrainer trainer(dataset_, cfg, sim::v100_heterogeneous(2));
  trainer.runtime().set_publish_hook(
      [&](const nn::Model& m, double vtime) { store.publish(m, vtime); });
  const auto path = temp_path("serve_boundary.ckpt");
  fault::enable_periodic_checkpoint(trainer, path, 1);
  trainer.train();

  // One publish per merge boundary.
  EXPECT_EQ(store.version(), cfg.num_megabatches);
  const auto snap = store.current();
  ASSERT_NE(snap, nullptr);

  // The checkpoint written at the final boundary holds the exact bytes the
  // snapshot captured: serving and fault tolerance see one model state.
  const auto ckpt = fault::load_checkpoint_file(path);
  EXPECT_EQ(snap->blob(), ckpt.global_blob);
  EXPECT_DOUBLE_EQ(snap->vtime(), ckpt.vtime);
  EXPECT_EQ(fault::capture_checkpoint(trainer).global_blob, snap->blob());
  std::remove(path.c_str());
}

TEST_F(ServeTest, PublishHookFiresAtEveryMergeBoundary) {
  const auto cfg = config();
  core::AdaptiveSgdTrainer trainer(dataset_, cfg, sim::v100_heterogeneous(2));
  std::size_t publishes = 0;
  double last_vtime = -1.0;
  trainer.runtime().set_publish_hook([&](const nn::Model&, double vtime) {
    ++publishes;
    EXPECT_GT(vtime, last_vtime);
    last_vtime = vtime;
  });
  trainer.train();
  EXPECT_EQ(publishes, cfg.num_megabatches);
}

TEST_F(ServeTest, ServeFromCheckpointMatchesInTrainingSnapshot) {
  serve::SnapshotStore in_training;
  core::AdaptiveSgdTrainer trainer(dataset_, config(),
                                   sim::v100_heterogeneous(2));
  trainer.runtime().set_publish_hook(
      [&](const nn::Model& m, double vtime) { in_training.publish(m, vtime); });
  trainer.train();
  const auto path = temp_path("serve_restart.ckpt");
  fault::save_checkpoint_file(path, fault::capture_checkpoint(trainer));

  serve::SnapshotStore restarted;
  restarted.publish_from_file(path);
  ASSERT_TRUE(restarted.has_snapshot());
  EXPECT_EQ(restarted.version(), 1u);
  EXPECT_EQ(restarted.current()->blob(), in_training.current()->blob());
  EXPECT_DOUBLE_EQ(restarted.current()->vtime(),
                   in_training.current()->vtime());

  // End-to-end: identical top-k from both stores for the same queries.
  serve::ServerConfig scfg;
  scfg.workers = 2;
  serve::Server live(in_training, scfg);
  serve::Server restored(restarted, scfg);
  for (std::size_t row = 0; row < 8; ++row) {
    auto a = live.submit(request_for_row(row)).get();
    auto b = restored.submit(request_for_row(row)).get();
    expect_same_topk(a.topk, b.topk);
  }
  std::remove(path.c_str());
}

TEST_F(ServeTest, ServesFromLegacyCheckpointVersions) {
  // A v3 checkpoint from a plain-sgd fp32 run carries a 1-byte
  // compressed=0 flag plus the optimizer section (3 metadata bytes, a u64
  // replica count, and the per-replica records) immediately before the two
  // size-prefixed model blobs. v2 = v3 minus the optimizer section; v1
  // additionally drops the flag byte. Synthesize both by byte surgery (the
  // writer always emits v3) and serve from them.
  core::AdaptiveSgdTrainer trainer(dataset_, config(),
                                   sim::v100_heterogeneous(2));
  trainer.train();
  const auto ckpt = fault::capture_checkpoint(trainer);
  const auto v3_path = temp_path("serve_v3.ckpt");
  fault::save_checkpoint_file(v3_path, ckpt);
  std::string bytes;
  {
    std::ifstream in(v3_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = std::move(buf).str();
  }
  std::size_t opt_section = 3 + 8;
  for (const auto& rep : ckpt.opt_replicas) {
    opt_section += 8;  // step
    if (ckpt.opt_has_row_steps != 0) {
      opt_section += 8 + rep.row_steps.size() * sizeof(std::uint32_t);
    }
    for (const auto& slot : rep.slots) {
      opt_section += 8 + slot.size() * sizeof(float);
    }
  }
  const std::size_t blob_tail = 8 + ckpt.global_blob.size() + 8 +
                                ckpt.prev_global_blob.size();
  const std::size_t flag_at = bytes.size() - (1 + opt_section + blob_tail);
  ASSERT_EQ(bytes[flag_at], 0);  // the compressed=0 flag

  const auto synthesize = [&](std::uint32_t version, std::size_t strip_at,
                              std::size_t strip_len) {
    std::string legacy = bytes;
    std::memcpy(legacy.data() + 4, &version, sizeof(version));
    legacy.erase(strip_at, strip_len);
    const auto path = temp_path("serve_v" + std::to_string(version) + ".ckpt");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(legacy.data(), static_cast<std::streamsize>(legacy.size()));
    return path;
  };
  const auto v2_path = synthesize(2, flag_at + 1, opt_section);
  const auto v1_path = synthesize(1, flag_at, 1 + opt_section);

  serve::SnapshotStore s3, s2, s1;
  s3.publish_from_file(v3_path);
  s2.publish_from_file(v2_path);
  s1.publish_from_file(v1_path);
  for (const serve::SnapshotStore* s : {&s1, &s2, &s3}) {
    EXPECT_EQ((*s).current()->blob(), ckpt.global_blob);
    EXPECT_DOUBLE_EQ((*s).current()->vtime(), ckpt.vtime);
  }

  // Every version serves the same top-k as the in-training state.
  serve::ModelSnapshot reference(trainer.runtime().global_model(), 1,
                                 ckpt.vtime, serve::LshParams{});
  serve::ServerConfig scfg;
  for (serve::SnapshotStore* s : {&s1, &s2, &s3}) {
    serve::Server server(*s, scfg);
    for (std::size_t row = 0; row < 4; ++row) {
      const auto resp = server.submit(request_for_row(row)).get();
      expect_same_topk(resp.topk, snapshot_topk(reference, row, scfg.topk));
    }
  }
  std::remove(v3_path.c_str());
  std::remove(v2_path.c_str());
  std::remove(v1_path.c_str());
}

// ---- serving behavior -----------------------------------------------------

TEST_F(ServeTest, ResultsBitStableAcrossWorkerCountsAndWaveShapes) {
  serve::SnapshotStore store;
  publish_initial(store);

  serve::ServerConfig one;
  one.workers = 1;
  one.max_batch = 1;  // every request its own wave
  serve::ServerConfig many;
  many.workers = 4;
  many.max_batch = 8;  // requests batched into shared waves

  const std::size_t n = 12;
  std::vector<serve::Response> a(n), b(n);
  {
    serve::Server s(store, one);
    std::vector<std::future<serve::Response>> fs;
    for (std::size_t i = 0; i < n; ++i) fs.push_back(s.submit(request_for_row(i)));
    for (std::size_t i = 0; i < n; ++i) a[i] = fs[i].get();
  }
  {
    serve::Server s(store, many);
    std::vector<std::future<serve::Response>> fs;
    for (std::size_t i = 0; i < n; ++i) fs.push_back(s.submit(request_for_row(i)));
    for (std::size_t i = 0; i < n; ++i) b[i] = fs[i].get();
  }
  for (std::size_t i = 0; i < n; ++i) expect_same_topk(a[i].topk, b[i].topk);
}

TEST_F(ServeTest, MicroBatchingServesEveryRequestWithBoundedWaves) {
  serve::SnapshotStore store;
  publish_initial(store);
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.latency_budget_us = 5000;
  serve::Server server(store, cfg);

  const std::size_t n = 24;
  std::vector<std::future<serve::Response>> fs;
  for (std::size_t i = 0; i < n; ++i) fs.push_back(server.submit(request_for_row(i)));
  for (auto& f : fs) {
    const auto r = f.get();
    EXPECT_FALSE(r.shed);
    EXPECT_GE(r.wave_size, 1u);
    EXPECT_LE(r.wave_size, cfg.max_batch);
    EXPECT_LE(r.queue_us, r.service_us);
    EXPECT_EQ(r.topk.size(), cfg.topk);
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.served, n);
  EXPECT_EQ(stats.exact_rows, n);
  EXPECT_GE(stats.waves, (n + cfg.max_batch - 1) / cfg.max_batch);
  EXPECT_LE(stats.waves, n);
}

TEST_F(ServeTest, RequestKOverridesConfigTopk) {
  serve::SnapshotStore store;
  publish_initial(store);
  serve::Server server(store, serve::ServerConfig{});
  EXPECT_EQ(server.submit(request_for_row(0, 9)).get().topk.size(), 9u);
  EXPECT_EQ(server.submit(request_for_row(0)).get().topk.size(),
            server.config().topk);
}

TEST_F(ServeTest, BackpressureShedsPastQueueCap) {
  serve::SnapshotStore store;
  publish_initial(store);
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.max_batch = 1;
  cfg.queue_cap = 1;
  serve::Server server(store, cfg);

  const std::size_t n = 256;
  std::vector<std::future<serve::Response>> fs;
  for (std::size_t i = 0; i < n; ++i) fs.push_back(server.submit(request_for_row(i)));
  std::size_t shed = 0;
  for (auto& f : fs) {
    const auto r = f.get();
    if (r.shed) {
      ++shed;
      EXPECT_TRUE(r.topk.empty());
      EXPECT_EQ(r.retry_after_us, cfg.latency_budget_us);
    } else {
      EXPECT_EQ(r.topk.size(), cfg.topk);
    }
  }
  // A single worker cannot dequeue between every pair of back-to-back
  // submissions with queue_cap=1, so overload is certain.
  EXPECT_GT(shed, 0u);
  const auto stats = server.stats();
  EXPECT_EQ(stats.shed, shed);
  EXPECT_EQ(stats.served + stats.shed, n);
}

TEST_F(ServeTest, SubmitAfterStopShedsImmediately) {
  serve::SnapshotStore store;
  publish_initial(store);
  serve::Server server(store, serve::ServerConfig{});
  server.stop();
  server.stop();  // idempotent
  auto f = server.submit(request_for_row(0));
  ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  const auto r = f.get();
  EXPECT_TRUE(r.shed);
  EXPECT_GT(server.stats().shed, 0u);
}

TEST_F(ServeTest, RejectsOutOfRangeFeaturesAndBadConfigs) {
  serve::SnapshotStore store;
  {
    // No snapshot published yet: serving cannot start.
    EXPECT_THROW(serve::Server(store, serve::ServerConfig{}),
                 std::invalid_argument);
  }
  publish_initial(store);
  {
    serve::ServerConfig cfg;
    cfg.workers = 0;
    EXPECT_THROW(serve::Server(store, cfg), std::invalid_argument);
  }
  serve::Server server(store, serve::ServerConfig{});
  serve::Request req;
  req.features.push_back(
      {static_cast<std::uint32_t>(dataset_.test.features.cols()), 1.0f});
  EXPECT_THROW(server.submit(std::move(req)), hetero::ParseError);
}

TEST_F(ServeTest, PublishFromFileRejectsGarbage) {
  serve::SnapshotStore store;
  EXPECT_THROW(store.publish_from_file(temp_path("serve_missing.bin")),
               hetero::ParseError);
  const auto path = temp_path("serve_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "JUNKJUNKJUNK";
  }
  EXPECT_THROW(store.publish_from_file(path), hetero::ParseError);
  std::remove(path.c_str());
  EXPECT_FALSE(store.has_snapshot());
}

TEST_F(ServeTest, DumpCurrentRoundTripsThroughHgpuBlob) {
  serve::SnapshotStore store;
  publish_initial(store);
  const auto path = temp_path("serve_dump.hgpu");
  store.dump_current(path);

  serve::SnapshotStore reloaded;
  reloaded.publish_from_file(path);
  EXPECT_EQ(reloaded.current()->blob(), store.current()->blob());
  EXPECT_EQ(reloaded.version(), 1u);
  EXPECT_DOUBLE_EQ(reloaded.current()->vtime(), 0.0);
  std::remove(path.c_str());
}

// ---- SLIDE candidate path -------------------------------------------------

TEST_F(ServeTest, LshBundleBuildsLazilyAndIsDeterministic) {
  serve::SnapshotStore store;
  publish_initial(store);
  const auto snap = store.current();
  EXPECT_FALSE(snap->lsh_built());

  serve::ServerConfig cfg;
  cfg.use_lsh = true;
  serve::Server server(store, cfg);
  const auto a = server.submit(request_for_row(0)).get();
  EXPECT_TRUE(snap->lsh_built());
  EXPECT_TRUE(a.lsh_path || a.lsh_fallback);
  const auto b = server.submit(request_for_row(0)).get();
  expect_same_topk(a.topk, b.topk);
  EXPECT_EQ(a.lsh_path, b.lsh_path);
}

TEST_F(ServeTest, LshThinCandidateFallbackMatchesExactScan) {
  // min_candidates above the class count forces the exact-scan fallback on
  // every query. The fallback scores with the candidate-path dot kernel
  // (self-consistency with the LSH path), so it agrees with the dense gemm
  // path on the ranking exactly and on scores up to kernel rounding.
  serve::LshParams lp;
  lp.min_candidates = dataset_.test.labels.cols() + 1;
  serve::SnapshotStore lsh_store(lp);
  serve::SnapshotStore exact_store;
  publish_initial(lsh_store);
  publish_initial(exact_store);

  serve::ServerConfig lsh_cfg;
  lsh_cfg.use_lsh = true;
  serve::Server lsh_server(lsh_store, lsh_cfg);
  serve::Server exact_server(exact_store, serve::ServerConfig{});
  for (std::size_t row = 0; row < 6; ++row) {
    const auto a = lsh_server.submit(request_for_row(row)).get();
    const auto b = exact_server.submit(request_for_row(row)).get();
    EXPECT_TRUE(a.lsh_fallback);
    EXPECT_FALSE(a.lsh_path);
    ASSERT_EQ(a.topk.size(), b.topk.size());
    for (std::size_t i = 0; i < a.topk.size(); ++i) {
      EXPECT_EQ(a.topk[i].label, b.topk[i].label);
      EXPECT_FLOAT_EQ(a.topk[i].score, b.topk[i].score);
    }
  }
  EXPECT_EQ(lsh_server.stats().lsh_fallback_rows, 6u);
  EXPECT_EQ(lsh_server.stats().lsh_rows, 0u);
}

// ---- hot swap under concurrent readers (TSan target) ----------------------

TEST_F(ServeTest, HotSwapUnderConcurrentReaders) {
  const auto cfg = config();
  serve::SnapshotStore store;
  core::AdaptiveSgdTrainer trainer(dataset_, cfg, sim::v100_heterogeneous(2));
  store.publish(trainer.runtime().global_model(), 0.0);
  trainer.runtime().set_publish_hook(
      [&](const nn::Model& m, double vtime) { store.publish(m, vtime); });

  // LSH serving stresses the lazy per-snapshot bundle build (call_once
  // among workers) across every hot swap.
  serve::ServerConfig scfg;
  scfg.workers = 3;
  scfg.use_lsh = true;
  serve::Server server(store, scfg);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> raw_reads{0};
  // A raw reader spinning on the store alongside the server's workers,
  // alternating the cold current() path and the version-gated refresh()
  // fast path; the store is the only synchronization with the publisher.
  std::thread raw_reader([&] {
    std::shared_ptr<const serve::ModelSnapshot> cached;
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = (raw_reads.load(std::memory_order_relaxed) % 2 == 0)
                            ? store.current()
                            : (cached = store.refresh(std::move(cached)));
      ASSERT_NE(snap, nullptr);
      ASSERT_GE(snap->version(), 1u);
      ASSERT_LE(snap->version(), 1 + cfg.num_megabatches);
      raw_reads.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread publisher([&] { trainer.train(); });

  std::uint64_t last_version = 0;
  std::size_t requests = 0;
  while (!done.load(std::memory_order_acquire)) {
    const auto r = server.submit(request_for_row(requests++)).get();
    if (r.shed) continue;
    EXPECT_EQ(r.topk.size(), scfg.topk);
    // Submit-then-get serializes this client: observed versions can only
    // move forward, and never past the published frontier.
    EXPECT_GE(r.snapshot_version, last_version);
    EXPECT_LE(r.snapshot_version + r.version_lag, 1 + cfg.num_megabatches);
    EXPECT_GE(r.freshness_lag, 0.0);
    last_version = r.snapshot_version;
    if (store.version() == 1 + cfg.num_megabatches && requests > 64) {
      done.store(true, std::memory_order_release);
    }
  }
  publisher.join();
  raw_reader.join();
  server.stop();

  EXPECT_EQ(store.version(), 1 + cfg.num_megabatches);
  EXPECT_GT(raw_reads.load(), 0u);
  // The final snapshot is the final merged model, bit for bit.
  EXPECT_EQ(store.current()->blob(),
            fault::capture_checkpoint(trainer).global_blob);
}

}  // namespace
}  // namespace hetero
