// Differential tests of the threaded kernel backend against the serial
// reference: spmm / spmm_t / gemm variants across fuzzed shapes (empty rows,
// 1 thread, more threads than rows), and the touched-row SparseGradient
// against the dense-gradient update path the seed implementation used.
//
// The parallel kernels partition OUTPUT rows, so each output row is
// accumulated in the same order as serial — results must be bit-identical,
// not merely close; most assertions below are exact.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "nn/train_step.h"
#include "sparse/csr.h"
#include "sparse/ops.h"
#include "sparse/sparse_gradient.h"
#include "tensor/ops.h"
#include "util/kernel_context.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hetero {
namespace {

sparse::CsrMatrix fuzz_csr(std::size_t rows, std::size_t cols,
                           double density, util::Rng& rng,
                           bool allow_empty_rows = true) {
  sparse::CsrBuilder b(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<sparse::Entry> entries;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(density)) {
        entries.push_back({static_cast<std::uint32_t>(c),
                           static_cast<float>(rng.uniform(-1.0, 1.0))});
      }
    }
    if (entries.empty() && !allow_empty_rows) entries.push_back({0, 1.0f});
    b.add_row(std::move(entries));
  }
  return b.build();
}

tensor::Matrix fuzz_matrix(std::size_t rows, std::size_t cols,
                           util::Rng& rng) {
  tensor::Matrix m(rows, cols);
  for (auto& v : m.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

// Context that always parallelizes (grain 0), so tiny fuzzed shapes still
// exercise the threaded path.
kernels::Context eager_ctx(util::ThreadPool& pool, std::size_t threads) {
  kernels::Context ctx{&pool, threads};
  ctx.serial_grain = 0;
  return ctx;
}

void expect_bit_identical(const tensor::Matrix& a, const tensor::Matrix& b) {
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

TEST(ParallelKernels, SpmmMatchesSerialAcrossFuzzedShapes) {
  util::ThreadPool pool(4);
  util::Rng rng(42);
  const std::size_t thread_counts[] = {1, 2, 3, 4, 9};  // 9 > any row count
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t rows = rng.next_below(8);  // includes 0-row matrices
    const std::size_t cols = 1 + rng.next_below(40);
    const std::size_t h = 1 + rng.next_below(17);
    const auto x = fuzz_csr(rows, cols, 0.3, rng);  // empty rows likely
    const auto w = fuzz_matrix(cols, h, rng);
    tensor::Matrix serial;
    sparse::spmm(x, w, serial);
    for (const auto t : thread_counts) {
      tensor::Matrix threaded;
      sparse::spmm(x, w, threaded, eager_ctx(pool, t));
      expect_bit_identical(serial, threaded);
    }
  }
}

TEST(ParallelKernels, SpmmTAccumulateMatchesSerial) {
  util::ThreadPool pool(4);
  util::Rng rng(43);
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t rows = 1 + rng.next_below(8);
    const std::size_t cols = 1 + rng.next_below(40);
    const std::size_t h = 1 + rng.next_below(17);
    const auto x = fuzz_csr(rows, cols, 0.3, rng);
    const auto d = fuzz_matrix(rows, h, rng);
    // Non-zero starting G: accumulation (no zeroing) semantics must hold.
    const auto g0 = fuzz_matrix(cols, h, rng);
    tensor::Matrix serial = g0;
    sparse::spmm_t_accumulate(x, d, serial);
    for (const std::size_t t : {2, 4, 9}) {
      tensor::Matrix threaded = g0;
      sparse::spmm_t_accumulate(x, d, threaded, eager_ctx(pool, t));
      expect_bit_identical(serial, threaded);
    }
  }
}

TEST(ParallelKernels, GemmVariantsMatchSerial) {
  util::ThreadPool pool(4);
  util::Rng rng(44);
  for (int iter = 0; iter < 20; ++iter) {
    const std::size_t m = 1 + rng.next_below(9);
    const std::size_t k = 1 + rng.next_below(9);
    const std::size_t n = 1 + rng.next_below(9);
    const auto a = fuzz_matrix(m, k, rng);
    const auto b = fuzz_matrix(k, n, rng);
    const auto bt = fuzz_matrix(n, k, rng);
    const auto at = fuzz_matrix(k, m, rng);
    tensor::Matrix c_serial, c_threaded;

    tensor::gemm(a, b, c_serial);
    for (const std::size_t t : {2, 4, 16}) {
      tensor::gemm(a, b, c_threaded, eager_ctx(pool, t));
      expect_bit_identical(c_serial, c_threaded);
    }
    tensor::gemm_at_b(at, b, c_serial);
    for (const std::size_t t : {2, 4, 16}) {
      tensor::gemm_at_b(at, b, c_threaded, eager_ctx(pool, t));
      expect_bit_identical(c_serial, c_threaded);
    }
    tensor::gemm_a_bt(a, bt, c_serial);
    for (const std::size_t t : {2, 4, 16}) {
      tensor::gemm_a_bt(a, bt, c_threaded, eager_ctx(pool, t));
      expect_bit_identical(c_serial, c_threaded);
    }
  }
}

TEST(ParallelKernels, SerialFallbackBelowGrain) {
  // With the default grain, tiny shapes must not touch the pool at all —
  // verified indirectly: a context with a null pool but num_threads > 1
  // would crash if the parallel path ran, and should_parallelize is false.
  kernels::Context ctx;
  ctx.num_threads = 8;
  EXPECT_FALSE(ctx.should_parallelize(1 << 30));
  util::ThreadPool pool(2);
  kernels::Context small{&pool, 2};
  EXPECT_FALSE(small.should_parallelize(small.serial_grain - 1));
  EXPECT_TRUE(small.should_parallelize(small.serial_grain));
}

TEST(SparseGradient, KeysToTouchedColumns) {
  sparse::CsrBuilder b(10);
  b.add_row({{7, 1.0f}, {2, 2.0f}});
  b.add_row({});
  b.add_row({{2, -1.0f}, {9, 0.5f}});
  const auto x = b.build();
  sparse::SparseGradient g;
  g.reset(x, 4);
  ASSERT_EQ(g.num_rows(), 3u);
  EXPECT_EQ(g.rows()[0], 2u);
  EXPECT_EQ(g.rows()[1], 7u);
  EXPECT_EQ(g.rows()[2], 9u);
  EXPECT_EQ(g.slot_of(2), 0u);
  EXPECT_EQ(g.slot_of(7), 1u);
  EXPECT_EQ(g.slot_of(9), 2u);
  EXPECT_EQ(g.slot_of(0), sparse::SparseGradient::kNoSlot);
  EXPECT_EQ(g.slot_of(12345), sparse::SparseGradient::kNoSlot);
  for (float v : g.values()) EXPECT_EQ(v, 0.0f);

  // Re-keying to a different batch must invalidate the old map entries.
  sparse::CsrBuilder b2(10);
  b2.add_row({{1, 1.0f}});
  g.reset(b2.build(), 4);
  EXPECT_EQ(g.num_rows(), 1u);
  EXPECT_EQ(g.slot_of(1), 0u);
  EXPECT_EQ(g.slot_of(2), sparse::SparseGradient::kNoSlot);
  EXPECT_EQ(g.slot_of(7), sparse::SparseGradient::kNoSlot);
  EXPECT_EQ(g.slot_of(9), sparse::SparseGradient::kNoSlot);
}

TEST(SparseGradient, AccumulateMatchesDenseScatterBitForBit) {
  util::ThreadPool pool(4);
  util::Rng rng(45);
  for (int iter = 0; iter < 10; ++iter) {
    const std::size_t rows = 1 + rng.next_below(6);
    const std::size_t cols = 5 + rng.next_below(50);
    const std::size_t h = 1 + rng.next_below(9);
    const auto x = fuzz_csr(rows, cols, 0.2, rng);
    const auto d = fuzz_matrix(rows, h, rng);

    tensor::Matrix dense(cols, h, 0.0f);
    sparse::spmm_t_accumulate(x, d, dense);

    for (const std::size_t t : {1, 2, 4, 9}) {
      sparse::SparseGradient g;
      g.reset(x, h);
      g.accumulate_spmm_t(x, d, eager_ctx(pool, t));
      tensor::Matrix scattered;
      g.to_dense(scattered);
      expect_bit_identical(dense, scattered);
    }
  }
}

TEST(SparseGradient, ApplyEqualsDenseUpdateBitForBit) {
  // The seed's dense path: zero-filled F x H gradient, spmm_t scatter, then
  // a sort/unique over the batch columns and w = keep*w - lr*g per touched
  // row. The SparseGradient path must update the model bit-for-bit the same.
  util::Rng rng(46);
  const std::size_t f = 60, h = 7;
  const auto x = fuzz_csr(5, f, 0.15, rng);
  const auto d = fuzz_matrix(5, h, rng);
  const float lr = 0.37f, keep = 1.0f - lr * 0.01f;
  const auto w0 = fuzz_matrix(f, h, rng);

  // Dense reference (seed semantics).
  tensor::Matrix dense_grad(f, h, 0.0f);
  sparse::spmm_t_accumulate(x, d, dense_grad);
  tensor::Matrix w_dense = w0;
  std::vector<std::uint32_t> touched(x.col_idx());
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (auto row : touched) {
    float* w = w_dense.data() + static_cast<std::size_t>(row) * h;
    const float* g = dense_grad.data() + static_cast<std::size_t>(row) * h;
    for (std::size_t j = 0; j < h; ++j) w[j] = keep * w[j] - lr * g[j];
  }

  sparse::SparseGradient g;
  g.reset(x, h);
  g.accumulate_spmm_t(x, d, kernels::Context::serial());
  tensor::Matrix w_sparse = w0;
  g.apply_to(w_sparse, lr, keep, kernels::Context::serial());

  expect_bit_identical(w_dense, w_sparse);
}

TEST(SparseGradient, AddScaledAccumulates) {
  sparse::CsrBuilder b(8);
  b.add_row({{1, 1.0f}, {4, 1.0f}});
  const auto x = b.build();
  sparse::SparseGradient g1, g2;
  g1.reset(x, 2);
  g2.reset(x, 2);
  g1.values()[0] = 1.0f;
  g2.values()[0] = 2.0f;
  g1.add_scaled(g2, 0.5f);
  EXPECT_FLOAT_EQ(g1.values()[0], 2.0f);
}

TEST(ParallelKernels, ThreadedSgdStepBitIdenticalToSerial) {
  util::ThreadPool pool(4);
  util::Rng rng(47);
  nn::MlpConfig cfg;
  cfg.num_features = 80;
  cfg.hidden = 16;
  cfg.num_classes = 12;
  nn::MlpModel serial_model(cfg), threaded_model(cfg);
  serial_model.init(rng);
  threaded_model.from_flat(serial_model.to_flat());

  nn::Workspace ws_serial, ws_threaded;
  ws_threaded.ctx = eager_ctx(pool, 4);

  util::Rng data_rng(48);
  for (int step = 0; step < 5; ++step) {
    const auto x = fuzz_csr(6, cfg.num_features, 0.1, data_rng,
                            /*allow_empty_rows=*/false);
    sparse::CsrBuilder yb(cfg.num_classes);
    for (std::size_t r = 0; r < 6; ++r) {
      yb.add_indicator_row(
          {static_cast<std::uint32_t>(data_rng.next_below(cfg.num_classes))});
    }
    const auto y = yb.build();
    const auto sa = nn::sgd_step(serial_model, x, y, 0.1f, ws_serial, 0.01f);
    const auto sb =
        nn::sgd_step(threaded_model, x, y, 0.1f, ws_threaded, 0.01f);
    EXPECT_EQ(sa.loss, sb.loss);
  }
  EXPECT_EQ(serial_model.to_flat(), threaded_model.to_flat());
}

TEST(ParallelKernels, TouchedColumnsMatchesDistinctColumns) {
  util::Rng rng(49);
  for (int iter = 0; iter < 10; ++iter) {
    const auto x = fuzz_csr(1 + rng.next_below(6), 1 + rng.next_below(30),
                            0.3, rng);
    const auto cols = sparse::touched_columns(x);
    EXPECT_EQ(cols.size(), sparse::distinct_columns(x));
    EXPECT_TRUE(std::is_sorted(cols.begin(), cols.end()));
    EXPECT_EQ(std::adjacent_find(cols.begin(), cols.end()), cols.end());
  }
}

}  // namespace
}  // namespace hetero
