#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "tensor/matrix.h"
#include "util/rng.h"

namespace hetero::tensor {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, util::Rng& rng) {
  Matrix m(r, c);
  for (auto& v : m.flat()) v = static_cast<float>(rng.uniform(-1, 1));
  return m;
}

// Reference O(n^3) GEMM used to validate the optimized loop orders.
Matrix reference_gemm(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols(), 0.0f);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      float acc = 0.0f;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = acc;
    }
  return c;
}

void expect_near(const Matrix& a, const Matrix& b, float tol = 1e-4f) {
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a.flat()[i], b.flat()[i], tol) << "at " << i;
  }
}

TEST(Matrix, ShapeAndAccess) {
  Matrix m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  m(1, 2) = 9.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 9.0f);
  EXPECT_FLOAT_EQ(m(0, 0), 1.5f);
}

TEST(Matrix, RowSpanViewsUnderlyingData) {
  Matrix m(2, 2);
  m.row(1)[0] = 5.0f;
  EXPECT_FLOAT_EQ(m(1, 0), 5.0f);
}

TEST(Matrix, FillAndResize) {
  Matrix m(2, 2, 1.0f);
  m.fill(3.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 3.0f);
  m.resize(3, 4, 0.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_FLOAT_EQ(m(2, 3), 0.5f);
}

class GemmShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatchesReference) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(m * 100 + k * 10 + n);
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  Matrix c;
  gemm(a, b, c);
  expect_near(c, reference_gemm(a, b));
}

TEST_P(GemmShapes, AtBMatchesReference) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(m + k + n);
  const auto a = random_matrix(k, m, rng);  // will be transposed
  const auto b = random_matrix(k, n, rng);
  Matrix at(m, k);
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) at(j, i) = a(i, j);
  Matrix c;
  gemm_at_b(a, b, c);
  expect_near(c, reference_gemm(at, b));
}

TEST_P(GemmShapes, ABtMatchesReference) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(m * 7 + k * 3 + n);
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(n, k, rng);
  Matrix bt(k, n);
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) bt(j, i) = b(i, j);
  Matrix c;
  gemm_a_bt(a, b, c);
  expect_near(c, reference_gemm(a, bt));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 1, 7), std::make_tuple(8, 8, 8),
                      std::make_tuple(16, 32, 8), std::make_tuple(3, 17, 5)));

TEST(Ops, AxpyAccumulates) {
  std::vector<float> x{1, 2, 3}, y{10, 20, 30};
  axpy(2.0f, {x.data(), 3}, {y.data(), 3});
  EXPECT_FLOAT_EQ(y[0], 12);
  EXPECT_FLOAT_EQ(y[2], 36);
}

TEST(Ops, AxpbyCombines) {
  std::vector<float> x{1, 2}, y{4, 8};
  axpby(1.0f, {x.data(), 2}, 0.5f, {y.data(), 2});
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], 6.0f);
}

TEST(Ops, Scale) {
  std::vector<float> x{2, -4};
  scale({x.data(), 2}, 0.5f);
  EXPECT_FLOAT_EQ(x[0], 1.0f);
  EXPECT_FLOAT_EQ(x[1], -2.0f);
}

TEST(Ops, AddRowBias) {
  Matrix m(2, 3, 1.0f);
  std::vector<float> bias{1, 2, 3};
  add_row_bias(m, {bias.data(), 3});
  EXPECT_FLOAT_EQ(m(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(m(1, 2), 4.0f);
}

TEST(Ops, ReluClampsNegatives) {
  Matrix m(1, 4);
  m(0, 0) = -1;
  m(0, 1) = 0;
  m(0, 2) = 2;
  m(0, 3) = -0.5;
  relu(m);
  EXPECT_FLOAT_EQ(m(0, 0), 0);
  EXPECT_FLOAT_EQ(m(0, 2), 2);
  EXPECT_FLOAT_EQ(m(0, 3), 0);
}

TEST(Ops, ReluBackwardMasks) {
  Matrix act(1, 3), grad(1, 3, 1.0f);
  act(0, 0) = -1;
  act(0, 1) = 0;
  act(0, 2) = 3;
  relu_backward(act, grad);
  EXPECT_FLOAT_EQ(grad(0, 0), 0);
  EXPECT_FLOAT_EQ(grad(0, 1), 0);  // boundary: gradient 0 at exactly 0
  EXPECT_FLOAT_EQ(grad(0, 2), 1);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  util::Rng rng(9);
  auto m = random_matrix(4, 10, rng);
  softmax_rows(m);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float sum = 0.0f;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      EXPECT_GE(m(i, j), 0.0f);
      sum += m(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(Ops, SoftmaxNumericallyStableForLargeLogits) {
  Matrix m(1, 3);
  m(0, 0) = 1000.0f;
  m(0, 1) = 1001.0f;
  m(0, 2) = 999.0f;
  softmax_rows(m);
  EXPECT_TRUE(std::isfinite(m(0, 0)));
  EXPECT_GT(m(0, 1), m(0, 0));
  EXPECT_GT(m(0, 0), m(0, 2));
}

TEST(Ops, SoftmaxPreservesOrder) {
  Matrix m(1, 4);
  m(0, 0) = 0.1f;
  m(0, 1) = 2.0f;
  m(0, 2) = -1.0f;
  m(0, 3) = 0.5f;
  softmax_rows(m);
  EXPECT_EQ(argmax(m.row(0)), 1u);
}

TEST(Ops, ColumnSums) {
  Matrix m(2, 3);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      m(i, j) = static_cast<float>(i * 3 + j);
  std::vector<float> sums(3);
  column_sums(m, {sums.data(), 3});
  EXPECT_FLOAT_EQ(sums[0], 3);
  EXPECT_FLOAT_EQ(sums[1], 5);
  EXPECT_FLOAT_EQ(sums[2], 7);
}

TEST(Ops, NormsAndDot) {
  std::vector<float> a{3, 4}, b{1, 0};
  EXPECT_DOUBLE_EQ(sum_of_squares({a.data(), 2}), 25.0);
  EXPECT_DOUBLE_EQ(l2_norm({a.data(), 2}), 5.0);
  EXPECT_DOUBLE_EQ(dot({a.data(), 2}, {b.data(), 2}), 3.0);
}

TEST(Ops, ArgmaxFirstOnTies) {
  std::vector<float> v{1, 3, 3, 2};
  EXPECT_EQ(argmax({v.data(), 4}), 1u);
}

TEST(Ops, GemmWithIdentityIsNoOp) {
  util::Rng rng(21);
  const auto a = random_matrix(6, 6, rng);
  Matrix identity(6, 6, 0.0f);
  for (std::size_t i = 0; i < 6; ++i) identity(i, i) = 1.0f;
  Matrix c;
  gemm(a, identity, c);
  expect_near(c, a, 1e-6f);
  gemm(identity, a, c);
  expect_near(c, a, 1e-6f);
}

TEST(Ops, GemmZeroMatrixGivesZero) {
  util::Rng rng(22);
  const auto a = random_matrix(4, 5, rng);
  Matrix zero(5, 3, 0.0f);
  Matrix c;
  gemm(a, zero, c);
  for (float v : c.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Ops, GemmDistributesOverAddition) {
  // A*(B1+B2) == A*B1 + A*B2 (within fp tolerance).
  util::Rng rng(23);
  const auto a = random_matrix(5, 7, rng);
  const auto b1 = random_matrix(7, 4, rng);
  const auto b2 = random_matrix(7, 4, rng);
  Matrix sum(7, 4);
  for (std::size_t i = 0; i < sum.size(); ++i) {
    sum.flat()[i] = b1.flat()[i] + b2.flat()[i];
  }
  Matrix left, r1, r2;
  gemm(a, sum, left);
  gemm(a, b1, r1);
  gemm(a, b2, r2);
  for (std::size_t i = 0; i < left.size(); ++i) {
    EXPECT_NEAR(left.flat()[i], r1.flat()[i] + r2.flat()[i], 1e-4f);
  }
}

TEST(Ops, TransposedGemmsAgreeWithEachOther) {
  // (A^T B)^T == B^T A: gemm_at_b and gemm_a_bt must be consistent.
  util::Rng rng(24);
  const auto a = random_matrix(6, 3, rng);  // k x m
  const auto b = random_matrix(6, 5, rng);  // k x n
  Matrix atb;                               // m x n
  gemm_at_b(a, b, atb);
  Matrix bta;                               // n x m via gemm_a_bt(B^T ... )
  gemm_at_b(b, a, bta);
  for (std::size_t i = 0; i < atb.rows(); ++i) {
    for (std::size_t j = 0; j < atb.cols(); ++j) {
      EXPECT_NEAR(atb(i, j), bta(j, i), 1e-5f);
    }
  }
}

TEST(Ops, SoftmaxUniformOnEqualLogits) {
  Matrix m(1, 8, 3.0f);
  softmax_rows(m);
  for (float v : m.row(0)) EXPECT_NEAR(v, 0.125f, 1e-6f);
}

TEST(Ops, ScaleByZeroAndOne) {
  std::vector<float> x{1, -2, 3};
  scale({x.data(), 3}, 1.0f);
  EXPECT_FLOAT_EQ(x[1], -2.0f);
  scale({x.data(), 3}, 0.0f);
  for (float v : x) EXPECT_EQ(v, 0.0f);
}

TEST(Ops, DotIsSymmetricAndLinear) {
  util::Rng rng(25);
  std::vector<float> a(16), b(16);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  EXPECT_NEAR(dot({a.data(), 16}, {b.data(), 16}),
              dot({b.data(), 16}, {a.data(), 16}), 1e-12);
  EXPECT_NEAR(dot({a.data(), 16}, {a.data(), 16}),
              sum_of_squares({a.data(), 16}), 1e-12);
}

TEST(Ops, InitGaussianStddev) {
  util::Rng rng(11);
  Matrix m(100, 100);
  init_gaussian(m, 0.05, rng);
  double ss = 0.0;
  for (float v : m.flat()) ss += static_cast<double>(v) * v;
  const double stddev = std::sqrt(ss / static_cast<double>(m.size()));
  EXPECT_NEAR(stddev, 0.05, 0.002);
}

}  // namespace
}  // namespace hetero::tensor
