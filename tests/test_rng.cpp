#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace hetero::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 4.5);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 4.5);
  }
}

TEST(Rng, NextBelowBounds) {
  Rng rng(13);
  for (std::uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(n), n);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(23);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianShifted) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(5.0, 0.5);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, LognormalMean) {
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2); with mu = -sigma^2/2 the
  // mean is 1 — the convention the data generator relies on.
  Rng rng(37);
  const double sigma = 0.4;
  const double mu = -0.5 * sigma * sigma;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(mu, sigma);
  EXPECT_NEAR(sum / n, 1.0, 0.02);
}

TEST(Rng, LognormalPositive) {
  Rng rng(41);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(43);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, SplitIndependence) {
  Rng parent(47);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next_u64() == child.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(53);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), original.begin()));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(ZipfSampler, UniformWhenExponentZero) {
  Rng rng(59);
  ZipfSampler sampler(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
}

TEST(ZipfSampler, HeavyHeadWhenSkewed) {
  Rng rng(61);
  ZipfSampler sampler(1000, 1.2);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) ++counts[sampler.sample(rng)];
  // Rank 0 must dominate rank 100 by roughly (101)^1.2.
  EXPECT_GT(counts[0], counts[100] * 20);
}

TEST(ZipfSampler, FrequenciesMonotoneOnAverage) {
  Rng rng(67);
  ZipfSampler sampler(50, 1.0);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 200000; ++i) ++counts[sampler.sample(rng)];
  // Compare decade buckets rather than adjacent ranks (noise).
  int head = 0, tail = 0;
  for (int i = 0; i < 10; ++i) head += counts[i];
  for (int i = 40; i < 50; ++i) tail += counts[i];
  EXPECT_GT(head, tail * 3);
}

TEST(ZipfSampler, AllValuesReachable) {
  Rng rng(71);
  ZipfSampler sampler(5, 1.0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) seen.insert(sampler.sample(rng));
  EXPECT_EQ(seen.size(), 5u);
}

class RngBoundedParam : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngBoundedParam, NextBelowNeverExceeds) {
  Rng rng(GetParam());
  const std::uint64_t n = GetParam() % 97 + 1;
  for (int i = 0; i < 500; ++i) EXPECT_LT(rng.next_below(n), n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngBoundedParam,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace hetero::util
