#include "util/logging.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace hetero::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrip) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LoggingTest, MacroCompilesAndFiltersBelowLevel) {
  set_log_level(LogLevel::kOff);
  // Must not crash or emit; the side-effect expression still runs only if
  // the level passes — verify it does NOT when filtered.
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return "x";
  };
  HETERO_DEBUG << count();
  EXPECT_EQ(evaluations, 0);
  set_log_level(LogLevel::kDebug);
  HETERO_DEBUG << count();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, StreamsArbitraryTypes) {
  set_log_level(LogLevel::kOff);  // silent; exercising the operator<< path
  HETERO_INFO << "value=" << 42 << " f=" << 1.5 << " b=" << true;
  SUCCEED();
}

TEST_F(LoggingTest, ConcurrentLoggingDoesNotCrash) {
  set_log_level(LogLevel::kOff);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 200; ++i) {
        HETERO_WARN << "thread message " << i;
      }
    });
  }
  for (auto& t : threads) t.join();
  SUCCEED();
}

}  // namespace
}  // namespace hetero::util
