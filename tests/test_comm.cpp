#include "comm/allreduce.h"

#include <gtest/gtest.h>

#include "sim/profiles.h"
#include "util/rng.h"

namespace hetero::comm {
namespace {

std::vector<std::vector<float>> random_replicas(std::size_t n,
                                                std::size_t len,
                                                std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<float>> replicas(n, std::vector<float>(len));
  for (auto& r : replicas) {
    for (auto& v : r) v = static_cast<float>(rng.uniform(-2, 2));
  }
  return replicas;
}

std::vector<std::span<float>> views_of(std::vector<std::vector<float>>& r) {
  std::vector<std::span<float>> v;
  for (auto& x : r) v.emplace_back(x.data(), x.size());
  return v;
}

AllReducer make(AllReduceAlgo algo, std::size_t n, std::size_t streams) {
  return AllReducer(algo, sim::default_links(n), streams);
}

TEST(AllReduce, WeightedAverageNumerics) {
  auto replicas = random_replicas(3, 16, 1);
  auto expected = std::vector<double>(16, 0.0);
  const std::vector<double> weights{0.5, 0.3, 0.2};
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      expected[j] += weights[i] * replicas[i][j];
    }
  }
  auto reducer = make(AllReduceAlgo::kRingMultiStream, 3, 3);
  auto views = views_of(replicas);
  reducer.weighted_average(views, weights);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      EXPECT_NEAR(replicas[i][j], expected[j], 1e-5f);
    }
  }
}

TEST(AllReduce, AllAlgorithmsProduceIdenticalResults) {
  const std::vector<double> weights{0.4, 0.35, 0.15, 0.1};
  std::vector<std::vector<std::vector<float>>> copies;
  for (int i = 0; i < 3; ++i) copies.push_back(random_replicas(4, 64, 7));

  auto central = make(AllReduceAlgo::kCentral, 4, 1);
  auto tree = make(AllReduceAlgo::kTreeSingleStream, 4, 1);
  auto ring = make(AllReduceAlgo::kRingMultiStream, 4, 4);
  auto v0 = views_of(copies[0]);
  auto v1 = views_of(copies[1]);
  auto v2 = views_of(copies[2]);
  central.weighted_average(v0, weights);
  tree.weighted_average(v1, weights);
  ring.weighted_average(v2, weights);
  for (std::size_t j = 0; j < 64; ++j) {
    EXPECT_FLOAT_EQ(copies[0][0][j], copies[1][0][j]);
    EXPECT_FLOAT_EQ(copies[0][0][j], copies[2][0][j]);
  }
}

TEST(AllReduce, DenormalizedWeightsNotRenormalized) {
  // Algorithm 2's perturbed weights may sum != 1; the reducer must honor
  // them verbatim.
  auto replicas = random_replicas(2, 4, 3);
  std::vector<float> a = replicas[0], b = replicas[1];
  const std::vector<double> weights{1.1, 0.4};  // sums to 1.5
  auto reducer = make(AllReduceAlgo::kCentral, 2, 1);
  auto views = views_of(replicas);
  reducer.weighted_average(views, weights);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(replicas[0][j], 1.1 * a[j] + 0.4 * b[j], 1e-5f);
  }
}

TEST(AllReduce, SingleReplicaNoCost) {
  auto reducer = make(AllReduceAlgo::kRingMultiStream, 1, 1);
  const auto cost = reducer.cost(1, 1 << 20);
  EXPECT_EQ(cost.seconds, 0.0);
  EXPECT_EQ(cost.bytes_moved, 0.0);
}

TEST(AllReduce, RingMultiStreamAtLeastTwiceTreeAtFourGpus) {
  // The Section IV claim: multi-stream ring merges the model at least 2x
  // faster than the single-stream (NCCL-style) tree.
  const std::size_t model_bytes = 5 * 1024 * 1024;  // ~1.3M params
  auto tree = make(AllReduceAlgo::kTreeSingleStream, 4, 1);
  auto ring = make(AllReduceAlgo::kRingMultiStream, 4, 4);
  const double t_tree = tree.cost(4, model_bytes).seconds;
  const double t_ring = ring.cost(4, model_bytes).seconds;
  EXPECT_GE(t_tree / t_ring, 2.0) << "tree=" << t_tree << " ring=" << t_ring;
}

TEST(AllReduce, SingleStreamRingSlowerThanTreeAtSmallBuffers) {
  // The paper also observes NCCL's tree wins on a single stream. In our
  // cost model that holds where the per-step overheads dominate (below a
  // few MB); at very large buffers the ring's lower data volume wins even
  // single-stream. See EXPERIMENTS.md for the honest-deviation note.
  const std::size_t model_bytes = 2 * 1024 * 1024;
  auto tree = make(AllReduceAlgo::kTreeSingleStream, 4, 1);
  auto ring1 = make(AllReduceAlgo::kRingMultiStream, 4, 1);
  EXPECT_GT(ring1.cost(4, model_bytes).seconds,
            tree.cost(4, model_bytes).seconds);
}

TEST(AllReduce, CentralSlowestOnBigBuffers) {
  // The host link is the bottleneck and it is shared by all GPUs.
  const std::size_t model_bytes = 16 * 1024 * 1024;
  auto central = make(AllReduceAlgo::kCentral, 4, 1);
  auto ring = make(AllReduceAlgo::kRingMultiStream, 4, 4);
  EXPECT_GT(central.cost(4, model_bytes).seconds,
            ring.cost(4, model_bytes).seconds);
}

TEST(AllReduce, MoreStreamsNeverSlower) {
  const std::size_t model_bytes = 8 * 1024 * 1024;
  double prev = 1e9;
  for (std::size_t streams : {1u, 2u, 4u}) {
    auto ring = make(AllReduceAlgo::kRingMultiStream, 4, streams);
    const double t = ring.cost(4, model_bytes).seconds;
    EXPECT_LE(t, prev * 1.0001) << streams << " streams";
    prev = t;
  }
}

TEST(AllReduce, CostGrowsWithBufferSize) {
  for (auto algo : {AllReduceAlgo::kCentral, AllReduceAlgo::kTreeSingleStream,
                    AllReduceAlgo::kRingMultiStream}) {
    auto reducer = make(algo, 4, 4);
    EXPECT_LT(reducer.cost(4, 1 << 16).seconds,
              reducer.cost(4, 1 << 24).seconds)
        << to_string(algo);
  }
}

TEST(AllReduce, CostGrowsWithGpuCountForRing) {
  auto links8 = sim::default_links(8);
  AllReducer r2(AllReduceAlgo::kRingMultiStream, links8, 4);
  EXPECT_LT(r2.cost(2, 1 << 22).seconds, r2.cost(8, 1 << 22).seconds);
}

TEST(AllReduce, BytesMovedAccounting) {
  const std::size_t bytes = 1 << 20;
  auto central = make(AllReduceAlgo::kCentral, 4, 1);
  EXPECT_NEAR(central.cost(4, bytes).bytes_moved, 2.0 * bytes * 4, 1.0);
  auto ring = make(AllReduceAlgo::kRingMultiStream, 4, 4);
  EXPECT_NEAR(ring.cost(4, bytes).bytes_moved, 2.0 * bytes * 3, 1.0);
}

TEST(AllReduce, StepCounts) {
  auto tree = make(AllReduceAlgo::kTreeSingleStream, 4, 1);
  EXPECT_EQ(tree.cost(4, 1 << 20).steps, 4u);  // 2*log2(4)
  auto ring = make(AllReduceAlgo::kRingMultiStream, 4, 4);
  EXPECT_EQ(ring.cost(4, 1 << 20).steps, 6u);  // 2*(n-1)
}

TEST(AllReduce, ToStringNames) {
  EXPECT_EQ(to_string(AllReduceAlgo::kCentral), "central");
  EXPECT_EQ(to_string(AllReduceAlgo::kTreeSingleStream), "tree-1stream");
  EXPECT_EQ(to_string(AllReduceAlgo::kRingMultiStream), "ring-multistream");
}

class GpuCountParam : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GpuCountParam, NumericResultIndependentOfAlgoAndCount) {
  const std::size_t n = GetParam();
  std::vector<double> weights(n, 1.0 / static_cast<double>(n));
  auto a = random_replicas(n, 32, 11);
  auto b = a;
  auto ring = make(AllReduceAlgo::kRingMultiStream, n, n);
  auto tree = make(AllReduceAlgo::kTreeSingleStream, n, 1);
  auto va = views_of(a);
  auto vb = views_of(b);
  ring.weighted_average(va, weights);
  tree.weighted_average(vb, weights);
  for (std::size_t g = 0; g < n; ++g) {
    for (std::size_t j = 0; j < 32; ++j) EXPECT_FLOAT_EQ(a[g][j], b[g][j]);
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, GpuCountParam,
                         ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace hetero::comm
