#include "nn/deep_mlp.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/mlp.h"
#include "nn/train_step.h"
#include "util/rng.h"

namespace hetero::nn {
namespace {

DeepMlpConfig deep_config(std::vector<std::size_t> hidden) {
  DeepMlpConfig cfg;
  cfg.num_features = 24;
  cfg.hidden = std::move(hidden);
  cfg.num_classes = 6;
  return cfg;
}

sparse::CsrMatrix batch_x(std::size_t rows, std::size_t cols,
                          util::Rng& rng) {
  sparse::CsrBuilder b(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<sparse::Entry> entries;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(0.3)) {
        entries.push_back({static_cast<std::uint32_t>(c),
                           static_cast<float>(rng.uniform(0.1, 1.0))});
      }
    }
    if (entries.empty()) entries.push_back({0, 1.0f});
    b.add_row(std::move(entries));
  }
  return b.build();
}

sparse::CsrMatrix batch_y(std::size_t rows, std::size_t classes,
                          util::Rng& rng) {
  sparse::CsrBuilder b(classes);
  for (std::size_t r = 0; r < rows; ++r) {
    b.add_indicator_row({static_cast<std::uint32_t>(rng.next_below(classes))});
  }
  return b.build();
}

TEST(DeepMlp, ParameterCount) {
  const auto cfg = deep_config({8, 4});
  // 24*8+8 + 8*4+4 + 4*6+6 = 200 + 36 + 30 = 266.
  EXPECT_EQ(cfg.num_parameters(), 266u);
  DeepMlp net(cfg);
  EXPECT_EQ(net.num_parameters(), 266u);
  EXPECT_EQ(cfg.num_layers(), 3u);
}

TEST(DeepMlp, FlatRoundTrip) {
  util::Rng rng(1);
  DeepMlp a(deep_config({8, 4}));
  a.init(rng);
  const auto flat = a.to_flat();
  ASSERT_EQ(flat.size(), a.num_parameters());
  DeepMlp b(deep_config({8, 4}));
  b.from_flat(flat);
  EXPECT_EQ(b.to_flat(), flat);
}

TEST(DeepMlp, LossDecreasesAtEveryDepth) {
  for (const auto& hidden : std::vector<std::vector<std::size_t>>{
           {8}, {8, 8}, {12, 8, 6}}) {
    util::Rng rng(7);
    DeepMlp net(deep_config(hidden));
    net.init(rng);
    const auto x = batch_x(8, 24, rng);
    const auto y = batch_y(8, 6, rng);
    const double initial = net.loss(x, y);
    for (int i = 0; i < 80; ++i) net.sgd_step(x, y, 0.3f);
    EXPECT_LT(net.loss(x, y), initial * 0.6)
        << "depth " << hidden.size();
  }
}

TEST(DeepMlp, OneHiddenLayerMatchesMlpModel) {
  // With a single hidden layer DeepMlp and MlpModel implement the same
  // network; starting from identical parameters, one step must produce
  // identical parameters.
  util::Rng rng(3);
  MlpConfig mcfg;
  mcfg.num_features = 24;
  mcfg.hidden = 8;
  mcfg.num_classes = 6;
  MlpModel shallow(mcfg);
  shallow.init(rng);

  DeepMlp deep(deep_config({8}));
  deep.from_flat(shallow.to_flat());  // same flat layout for 1 hidden layer

  util::Rng data_rng(4);
  const auto x = batch_x(5, 24, data_rng);
  const auto y = batch_y(5, 6, data_rng);
  Workspace ws;
  sgd_step(shallow, x, y, 0.2f, ws);
  deep.sgd_step(x, y, 0.2f);

  const auto a = shallow.to_flat();
  const auto b = deep.to_flat();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-6f) << i;
  }
}

TEST(DeepMlp, GradientCheckTwoHiddenLayers) {
  util::Rng rng(5);
  DeepMlp net(deep_config({5, 4}));
  net.init(rng);
  const auto x = batch_x(3, 24, rng);
  const auto y = batch_y(3, 6, rng);

  // Numeric check via loss differences under the update: take one step
  // with tiny lr; loss must not increase (first-order descent property),
  // repeated across several random restarts.
  for (int restart = 0; restart < 5; ++restart) {
    DeepMlp fresh(deep_config({5, 4}));
    util::Rng r2(100 + restart);
    fresh.init(r2);
    const double before = fresh.loss(x, y);
    fresh.sgd_step(x, y, 1e-3f);
    EXPECT_LE(fresh.loss(x, y), before + 1e-6) << restart;
  }
}

TEST(DeepMlp, UntouchedSparseRowsUnchanged) {
  util::Rng rng(6);
  DeepMlp net(deep_config({8}));
  net.init(rng);
  sparse::CsrBuilder bx(24);
  bx.add_row({{3, 1.0f}});
  const auto x = bx.build();
  const auto y = batch_y(1, 6, rng);
  const auto before = net.weights(0);
  net.sgd_step(x, y, 0.5f);
  for (std::size_t f = 0; f < 24; ++f) {
    if (f == 3) continue;
    for (std::size_t h = 0; h < 8; ++h) {
      EXPECT_EQ(net.weights(0)(f, h), before(f, h));
    }
  }
}

TEST(DeepMlp, TrainsOnSyntheticDataset) {
  auto dcfg = data::tiny_profile();
  dcfg.num_train = 1200;
  dcfg.num_test = 300;
  const auto ds = data::generate_xml_dataset(dcfg);
  DeepMlpConfig cfg;
  cfg.num_features = ds.train.features.cols();
  cfg.hidden = {32, 16};
  cfg.num_classes = ds.train.labels.cols();
  util::Rng rng(11);
  DeepMlp net(cfg);
  net.init(rng);

  const double before = net.evaluate_top1(ds.test, 200);
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (std::size_t b = 0; b + 64 <= ds.train.num_samples(); b += 64) {
      const auto x = ds.train.features.slice_rows(b, b + 64);
      const auto y = ds.train.labels.slice_rows(b, b + 64);
      net.sgd_step(x, y, 0.3f);
    }
  }
  EXPECT_GT(net.evaluate_top1(ds.test, 200), before + 0.3);
}

TEST(DeepMlp, L2NormPerParameterPositive) {
  util::Rng rng(12);
  DeepMlp net(deep_config({8, 4}));
  net.init(rng);
  EXPECT_GT(net.l2_norm_per_parameter(), 0.0);
}

}  // namespace
}  // namespace hetero::nn
