#include "nn/deep_mlp.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "nn/evaluate.h"
#include "nn/mlp.h"
#include "nn/train_step.h"
#include "util/rng.h"

namespace hetero::nn {
namespace {

DeepMlpConfig deep_config(std::vector<std::size_t> hidden) {
  DeepMlpConfig cfg;
  cfg.num_features = 24;
  cfg.hidden = std::move(hidden);
  cfg.num_classes = 6;
  return cfg;
}

sparse::CsrMatrix batch_x(std::size_t rows, std::size_t cols,
                          util::Rng& rng) {
  sparse::CsrBuilder b(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<sparse::Entry> entries;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(0.3)) {
        entries.push_back({static_cast<std::uint32_t>(c),
                           static_cast<float>(rng.uniform(0.1, 1.0))});
      }
    }
    if (entries.empty()) entries.push_back({0, 1.0f});
    b.add_row(std::move(entries));
  }
  return b.build();
}

sparse::CsrMatrix batch_y(std::size_t rows, std::size_t classes,
                          util::Rng& rng) {
  sparse::CsrBuilder b(classes);
  for (std::size_t r = 0; r < rows; ++r) {
    b.add_indicator_row({static_cast<std::uint32_t>(rng.next_below(classes))});
  }
  return b.build();
}

TEST(DeepMlp, ParameterCount) {
  const auto cfg = deep_config({8, 4});
  // 24*8+8 + 8*4+4 + 4*6+6 = 200 + 36 + 30 = 266.
  EXPECT_EQ(cfg.num_parameters(), 266u);
  DeepMlp net(cfg);
  EXPECT_EQ(net.num_parameters(), 266u);
  EXPECT_EQ(cfg.num_layers(), 3u);
  EXPECT_EQ(net.info().hidden, (std::vector<std::size_t>{8, 4}));
  EXPECT_EQ(net.info().input_rows(), 24u);
  EXPECT_EQ(net.info().input_cols(), 8u);
}

TEST(DeepMlp, FlatRoundTrip) {
  util::Rng rng(1);
  DeepMlp a(deep_config({8, 4}));
  a.init(rng);
  const auto flat = a.to_flat();
  ASSERT_EQ(flat.size(), a.num_parameters());
  DeepMlp b(deep_config({8, 4}));
  b.from_flat(flat);
  EXPECT_EQ(b.to_flat(), flat);
}

TEST(DeepMlp, SegmentViewsMatchFlatLayout) {
  util::Rng rng(2);
  DeepMlp net(deep_config({8, 4}));
  net.init(rng);
  const auto flat = net.to_flat();
  const auto views = net.segment_views();
  ASSERT_EQ(views.size(), 6u);  // [W,b] x 3 layers
  std::size_t off = 0;
  for (const auto v : views) {
    for (std::size_t j = 0; j < v.size(); ++j) {
      ASSERT_EQ(v[j], flat[off + j]);
    }
    off += v.size();
  }
  EXPECT_EQ(off, net.num_parameters());
}

TEST(DeepMlp, CloneAndCopyFromPreserveParameters) {
  util::Rng rng(9);
  DeepMlp net(deep_config({8, 4}));
  net.init(rng);
  const auto cloned = net.clone();
  EXPECT_EQ(cloned->to_flat(), net.to_flat());

  DeepMlp other(deep_config({8, 4}));
  other.copy_from(net);
  EXPECT_EQ(other.to_flat(), net.to_flat());
}

TEST(DeepMlp, LossDecreasesAtEveryDepth) {
  for (const auto& hidden : std::vector<std::vector<std::size_t>>{
           {8}, {8, 8}, {12, 8, 6}}) {
    util::Rng rng(7);
    DeepMlp net(deep_config(hidden));
    net.init(rng);
    const auto ws = net.make_workspace();
    const auto x = batch_x(8, 24, rng);
    const auto y = batch_y(8, 6, rng);
    const double initial = net.forward_loss(x, y, *ws);
    for (int i = 0; i < 80; ++i) net.train_step(x, y, 0.3f, *ws);
    EXPECT_LT(net.forward_loss(x, y, *ws), initial * 0.6)
        << "depth " << hidden.size();
  }
}

TEST(DeepMlp, OneHiddenLayerBitIdenticalToMlpModel) {
  // With a single hidden layer DeepMlp runs the exact kernel sequence of
  // MlpModel in the exact order; starting from identical parameters, one
  // step must produce bit-identical parameters.
  util::Rng rng(3);
  MlpConfig mcfg;
  mcfg.num_features = 24;
  mcfg.hidden = 8;
  mcfg.num_classes = 6;
  MlpModel shallow(mcfg);
  shallow.init(rng);

  DeepMlp deep(deep_config({8}));
  deep.from_flat(shallow.to_flat());  // same flat layout for 1 hidden layer

  util::Rng data_rng(4);
  const auto x = batch_x(5, 24, data_rng);
  const auto y = batch_y(5, 6, data_rng);
  const auto sws = shallow.make_workspace();
  const auto dws = deep.make_workspace();
  const auto s_stats = shallow.train_step(x, y, 0.2f, *sws);
  const auto d_stats = deep.train_step(x, y, 0.2f, *dws);
  EXPECT_EQ(s_stats.loss, d_stats.loss);

  const auto a = shallow.to_flat();
  const auto b = deep.to_flat();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << i;
  }

  // The virtual-GPU cost report must be identical too, or the simulator
  // would schedule the two models differently.
  const auto sk = shallow.step_kernels(x);
  const auto dk = deep.step_kernels(x);
  ASSERT_EQ(sk.size(), dk.size());
  for (std::size_t i = 0; i < sk.size(); ++i) {
    EXPECT_EQ(sk[i].name, dk[i].name) << i;
    EXPECT_EQ(sk[i].flops, dk[i].flops) << i;
    EXPECT_EQ(sk[i].bytes, dk[i].bytes) << i;
    EXPECT_EQ(sk[i].sparse, dk[i].sparse) << i;
  }
  EXPECT_EQ(shallow.step_memory_bytes(64, 7.0), deep.step_memory_bytes(64, 7.0));
}

TEST(DeepMlp, GradientCheckTwoHiddenLayers) {
  util::Rng rng(5);
  const auto x = batch_x(3, 24, rng);
  const auto y = batch_y(3, 6, rng);

  // Numeric check via loss differences under the update: take one step
  // with tiny lr; loss must not increase (first-order descent property),
  // repeated across several random restarts.
  for (int restart = 0; restart < 5; ++restart) {
    DeepMlp fresh(deep_config({5, 4}));
    util::Rng r2(100 + restart);
    fresh.init(r2);
    const auto ws = fresh.make_workspace();
    const double before = fresh.forward_loss(x, y, *ws);
    fresh.train_step(x, y, 1e-3f, *ws);
    EXPECT_LE(fresh.forward_loss(x, y, *ws), before + 1e-6) << restart;
  }
}

TEST(DeepMlp, UntouchedSparseRowsUnchanged) {
  util::Rng rng(6);
  DeepMlp net(deep_config({8}));
  net.init(rng);
  sparse::CsrBuilder bx(24);
  bx.add_row({{3, 1.0f}});
  const auto x = bx.build();
  const auto y = batch_y(1, 6, rng);
  const auto before = net.weights(0);
  const auto ws = net.make_workspace();
  net.train_step(x, y, 0.5f, *ws);
  // The touched-row key must report exactly the batch's feature rows.
  const auto touched = ws->touched_input_rows();
  ASSERT_EQ(touched.size(), 1u);
  EXPECT_EQ(touched[0], 3u);
  for (std::size_t f = 0; f < 24; ++f) {
    if (f == 3) continue;
    for (std::size_t h = 0; h < 8; ++h) {
      EXPECT_EQ(net.weights(0)(f, h), before(f, h));
    }
  }
}

TEST(DeepMlp, ThreadedKernelsBitIdenticalToSerial) {
  // Same model + batch trained with the serial context and with a 4-worker
  // pool must produce bit-identical parameters (kernels partition output
  // rows; the accumulation order per output element never changes).
  util::Rng rng(21);
  DeepMlp serial(deep_config({12, 8}));
  serial.init(rng);
  const auto threaded_model = serial.clone();
  const auto x = batch_x(16, 24, rng);
  const auto y = batch_y(16, 6, rng);

  const auto sws = serial.make_workspace();
  for (int i = 0; i < 5; ++i) serial.train_step(x, y, 0.2f, *sws);

  util::ThreadPool pool(4);
  const auto tws = threaded_model->make_workspace();
  tws->ctx = kernels::Context{&pool, 4, /*serial_grain=*/1};
  for (int i = 0; i < 5; ++i) threaded_model->train_step(x, y, 0.2f, *tws);

  EXPECT_EQ(serial.to_flat(), threaded_model->to_flat());
}

TEST(DeepMlp, TrainsOnSyntheticDataset) {
  auto dcfg = data::tiny_profile();
  dcfg.num_train = 1200;
  dcfg.num_test = 300;
  const auto ds = data::generate_xml_dataset(dcfg);
  DeepMlpConfig cfg;
  cfg.num_features = ds.train.features.cols();
  cfg.hidden = {32, 16};
  cfg.num_classes = ds.train.labels.cols();
  util::Rng rng(11);
  DeepMlp net(cfg);
  net.init(rng);

  const double before = evaluate(net, ds.test, 200).top1;
  const auto ws = net.make_workspace();
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (std::size_t b = 0; b + 64 <= ds.train.num_samples(); b += 64) {
      const auto x = ds.train.features.slice_rows(b, b + 64);
      const auto y = ds.train.labels.slice_rows(b, b + 64);
      net.train_step(x, y, 0.3f, *ws);
    }
  }
  EXPECT_GT(evaluate(net, ds.test, 200).top1, before + 0.3);
}

TEST(DeepMlp, L2NormPerParameterPositive) {
  util::Rng rng(12);
  DeepMlp net(deep_config({8, 4}));
  net.init(rng);
  EXPECT_GT(net.l2_norm_per_parameter(), 0.0);
}

TEST(ModelFactory, BuildsBothKindsAndValidates) {
  const std::size_t hidden1[] = {16};
  const std::size_t hidden2[] = {16, 8};
  const auto mlp = make_model(ModelKind::kMlp, 24, hidden1, 6);
  EXPECT_EQ(mlp->info().hidden, (std::vector<std::size_t>{16}));
  const auto deep = make_model(ModelKind::kDeep, 24, hidden2, 6);
  EXPECT_EQ(deep->info().hidden, (std::vector<std::size_t>{16, 8}));

  EXPECT_THROW(make_model(ModelKind::kMlp, 24, {}, 6), std::invalid_argument);
  const std::size_t zero[] = {16, 0};
  EXPECT_THROW(make_model(ModelKind::kDeep, 24, zero, 6),
               std::invalid_argument);
  EXPECT_THROW(make_model(ModelKind::kMlp, 24, hidden2, 6),
               std::invalid_argument);
}

}  // namespace
}  // namespace hetero::nn
