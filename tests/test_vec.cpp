// Bit-identity tests for the vec kernel backend (src/tensor/vec/).
//
// The determinism contract says every kernel in the per-ISA tables produces
// bit-identical output on scalar, AVX2, and AVX-512. Part one checks each
// table entry directly against the scalar reference table across fuzzed
// sizes — empty, 1-element, and every tail residue around the 8/16-lane
// widths — plus IEEE edge values (±0, NaN, infinities, denormals) for the
// compare-based kernels. Part two drives the public tensor/sparse/merge
// kernels end to end at every thread and shard count already pinned by
// test_kernels_parallel and test_merge_parallel, switching the active ISA
// between runs: same bits at any thread x shard x ISA combination.
//
// On hosts without AVX the SIMD tables are absent and the sweeps collapse
// to the scalar table checking itself — still a useful no-crash path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/merging.h"
#include "sparse/csr.h"
#include "sparse/ops.h"
#include "sparse/sparse_gradient.h"
#include "tensor/ops.h"
#include "tensor/vec/vec.h"
#include "util/error.h"
#include "util/kernel_context.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hetero {
namespace {

std::vector<vec::Isa> available_isas() {
  std::vector<vec::Isa> isas;
  for (const auto isa :
       {vec::Isa::kScalar, vec::Isa::kAvx2, vec::Isa::kAvx512}) {
    if (vec::isa_supported(isa)) isas.push_back(isa);
  }
  return isas;
}

// Every tail residue of the 8- and 16-lane widths, plus empty, 1-element,
// and block-sized (512 = kMergeBlock) inputs.
const std::size_t kSizes[] = {0,  1,  2,  3,  5,  7,   8,   9,   15,  16,
                              17, 23, 31, 32, 33, 100, 511, 512, 513};

std::vector<float> fuzz_floats(std::size_t n, util::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) {
    // Exact zeros (both signs) keep the skip-zero and compare paths honest.
    if (rng.bernoulli(0.1)) {
      x = rng.bernoulli(0.5) ? 0.0f : -0.0f;
    } else {
      x = static_cast<float>(rng.uniform(-2.0, 2.0));
    }
  }
  return v;
}

template <typename T>
void expect_same_bits(const std::vector<T>& ref, const std::vector<T>& got,
                      const char* what, vec::Isa isa, std::size_t n) {
  ASSERT_EQ(ref.size(), got.size());
  if (ref.empty()) return;  // empty vectors hand memcmp null, which is UB
  EXPECT_EQ(0, std::memcmp(ref.data(), got.data(), ref.size() * sizeof(T)))
      << what << " differs from scalar on " << vec::isa_name(isa)
      << " at n=" << n;
}

class VecBitIdentity : public ::testing::Test {
 protected:
  const vec::VecKernels& scalar_ = *vec::kernels_for(vec::Isa::kScalar);
  std::vector<vec::Isa> isas_ = available_isas();
  util::Rng rng_{20240806};
};

TEST_F(VecBitIdentity, ScalarTableAlwaysPresent) {
  ASSERT_NE(vec::kernels_for(vec::Isa::kScalar), nullptr);
  EXPECT_TRUE(vec::isa_supported(vec::Isa::kScalar));
  // The active table is one of the supported ones.
  EXPECT_TRUE(vec::isa_supported(vec::active_isa()));
}

TEST_F(VecBitIdentity, ElementwiseFloatKernels) {
  for (const std::size_t n : kSizes) {
    const auto x = fuzz_floats(n, rng_);
    const auto y0 = fuzz_floats(n, rng_);
    const auto m0 = fuzz_floats(n, rng_);
    const auto p0 = fuzz_floats(n, rng_);
    const float a = 0.37f, b = -1.25f, gamma = 0.9f;
    for (const auto isa : isas_) {
      const auto& vk = *vec::kernels_for(isa);

      auto ref = y0, got = y0;
      scalar_.axpy(a, x.data(), ref.data(), n);
      vk.axpy(a, x.data(), got.data(), n);
      expect_same_bits(ref, got, "axpy", isa, n);

      ref = y0, got = y0;
      scalar_.axpby(a, x.data(), b, ref.data(), n);
      vk.axpby(a, x.data(), b, got.data(), n);
      expect_same_bits(ref, got, "axpby", isa, n);

      ref = y0, got = y0;
      scalar_.scale(ref.data(), b, n);
      vk.scale(got.data(), b, n);
      expect_same_bits(ref, got, "scale", isa, n);

      ref = y0, got = y0;
      scalar_.add(x.data(), ref.data(), n);
      vk.add(x.data(), got.data(), n);
      expect_same_bits(ref, got, "add", isa, n);

      ref = y0, got = y0;
      scalar_.relu(ref.data(), n);
      vk.relu(got.data(), n);
      expect_same_bits(ref, got, "relu", isa, n);

      ref = y0, got = y0;
      scalar_.relu_backward(x.data(), ref.data(), n);
      vk.relu_backward(x.data(), got.data(), n);
      expect_same_bits(ref, got, "relu_backward", isa, n);

      auto gref = y0, ggot = y0, pref = p0, pgot = p0;
      scalar_.momentum_update(m0.data(), gref.data(), pref.data(), gamma, n);
      vk.momentum_update(m0.data(), ggot.data(), pgot.data(), gamma, n);
      expect_same_bits(gref, ggot, "momentum_update(global)", isa, n);
      expect_same_bits(pref, pgot, "momentum_update(prev)", isa, n);
    }
  }
}

TEST_F(VecBitIdentity, ReluKernelsOnIeeeEdgeValues) {
  const float qnan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const float denorm = std::numeric_limits<float>::denorm_min();
  // 9 values so the AVX2 path exercises a full lane plus a 1-element tail.
  const std::vector<float> edge = {0.0f, -0.0f, qnan,   -qnan, inf,
                                   -inf, denorm, -denorm, -1.5f};
  const std::vector<float> grad = fuzz_floats(edge.size(), rng_);
  for (const auto isa : isas_) {
    const auto& vk = *vec::kernels_for(isa);

    auto ref = edge, got = edge;
    scalar_.relu(ref.data(), ref.size());
    vk.relu(got.data(), got.size());
    expect_same_bits(ref, got, "relu(edge)", isa, edge.size());

    ref = grad, got = grad;
    scalar_.relu_backward(edge.data(), ref.data(), ref.size());
    vk.relu_backward(edge.data(), got.data(), got.size());
    expect_same_bits(ref, got, "relu_backward(edge)", isa, edge.size());
  }
}

TEST_F(VecBitIdentity, AdamAndAdagradUpdateKernels) {
  for (const std::size_t n : kSizes) {
    const auto w0 = fuzz_floats(n, rng_);
    const auto g = fuzz_floats(n, rng_);
    const auto m0 = fuzz_floats(n, rng_);
    // Second moments / accumulators are sums of squares: keep them >= 0 so
    // sqrt sees the values the optimizer actually produces.
    auto v0 = fuzz_floats(n, rng_);
    for (auto& x : v0) x = std::abs(x);

    vec::AdamParams ap;
    ap.lr = 0.05f;
    ap.bias1 = 1.0f / (1.0f - 0.9f * 0.9f);
    ap.bias2 = 1.0f / (1.0f - 0.999f * 0.999f);
    ap.weight_decay = 0.01f;
    ap.keep = 0.995f;
    vec::AdagradParams gp;
    gp.lr = 0.1f;
    gp.weight_decay = 0.01f;

    for (const auto isa : isas_) {
      const auto& vk = *vec::kernels_for(isa);

      auto wr = w0, mr = m0, vr = v0;
      auto wg = w0, mg = m0, vg = v0;
      scalar_.adam_update(wr.data(), g.data(), mr.data(), vr.data(), ap, n);
      vk.adam_update(wg.data(), g.data(), mg.data(), vg.data(), ap, n);
      expect_same_bits(wr, wg, "adam_update(w)", isa, n);
      expect_same_bits(mr, mg, "adam_update(m)", isa, n);
      expect_same_bits(vr, vg, "adam_update(v)", isa, n);

      auto awr = w0, aar = v0;
      auto awg = w0, aag = v0;
      scalar_.adagrad_update(awr.data(), g.data(), aar.data(), gp, n);
      vk.adagrad_update(awg.data(), g.data(), aag.data(), gp, n);
      expect_same_bits(awr, awg, "adagrad_update(w)", isa, n);
      expect_same_bits(aar, aag, "adagrad_update(a)", isa, n);
    }
  }
}

TEST_F(VecBitIdentity, Reductions) {
  for (const std::size_t n : kSizes) {
    const auto x = fuzz_floats(n, rng_);
    const auto y = fuzz_floats(n, rng_);
    const float f_ref = scalar_.dot_f32(x.data(), y.data(), n);
    const double d_ref = scalar_.dot_f64(x.data(), y.data(), n);
    const double s_ref = scalar_.sum_squares(x.data(), n);
    for (const auto isa : isas_) {
      const auto& vk = *vec::kernels_for(isa);
      const float f = vk.dot_f32(x.data(), y.data(), n);
      const double d = vk.dot_f64(x.data(), y.data(), n);
      const double s = vk.sum_squares(x.data(), n);
      EXPECT_EQ(0, std::memcmp(&f_ref, &f, sizeof(float)))
          << "dot_f32 on " << vec::isa_name(isa) << " at n=" << n;
      EXPECT_EQ(0, std::memcmp(&d_ref, &d, sizeof(double)))
          << "dot_f64 on " << vec::isa_name(isa) << " at n=" << n;
      EXPECT_EQ(0, std::memcmp(&s_ref, &s, sizeof(double)))
          << "sum_squares on " << vec::isa_name(isa) << " at n=" << n;
    }
  }
}

TEST_F(VecBitIdentity, MergeKernels) {
  for (const std::size_t n : kSizes) {
    const auto x0 = fuzz_floats(n, rng_);
    const auto x1 = fuzz_floats(n, rng_);
    const auto g0 = fuzz_floats(n, rng_);
    const auto p0 = fuzz_floats(n, rng_);
    const double w0 = 0.625, w1 = 0.375;
    const float gamma = 0.85f;

    std::vector<double> init_ref(n), acc_ref(n), acc_got(n);
    scalar_.merge_init(init_ref.data(), x0.data(), w0, n);
    acc_ref = init_ref;
    scalar_.merge_accum(acc_ref.data(), x1.data(), w1, n);
    for (const auto isa : isas_) {
      const auto& vk = *vec::kernels_for(isa);
      vk.merge_init(acc_got.data(), x0.data(), w0, n);
      expect_same_bits(init_ref, acc_got, "merge_init", isa, n);
      vk.merge_accum(acc_got.data(), x1.data(), w1, n);
      expect_same_bits(acc_ref, acc_got, "merge_accum", isa, n);

      std::vector<float> sref(n), sgot(n);
      scalar_.merge_store(acc_ref.data(), sref.data(), n);
      vk.merge_store(acc_ref.data(), sgot.data(), n);
      expect_same_bits(sref, sgot, "merge_store", isa, n);

      auto gref = g0, ggot = g0, pref = p0, pgot = p0;
      scalar_.merge_finalize_momentum(acc_ref.data(), gref.data(),
                                      pref.data(), gamma, n);
      vk.merge_finalize_momentum(acc_ref.data(), ggot.data(), pgot.data(),
                                 gamma, n);
      expect_same_bits(gref, ggot, "merge_finalize_momentum(g)", isa, n);
      expect_same_bits(pref, pgot, "merge_finalize_momentum(p)", isa, n);

      gref = g0, ggot = g0, pref = p0, pgot = p0;
      scalar_.merge_finalize_plain(acc_ref.data(), gref.data(), pref.data(),
                                   n);
      vk.merge_finalize_plain(acc_ref.data(), ggot.data(), pgot.data(), n);
      expect_same_bits(gref, ggot, "merge_finalize_plain(g)", isa, n);
      expect_same_bits(pref, pgot, "merge_finalize_plain(p)", isa, n);
    }
  }
}

// Fuzzed inputs for the quantization kernels: the usual small values plus
// magnitudes straddling the fp16 overflow threshold (65504), denormals, and
// the occasional NaN/infinity so the clamp/compare paths are exercised.
std::vector<float> fuzz_quant_floats(std::size_t n, util::Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) {
    const double roll = rng.uniform(0.0, 1.0);
    const float sign = rng.bernoulli(0.5) ? 1.0f : -1.0f;
    if (roll < 0.08) {
      x = sign * 0.0f;
    } else if (roll < 0.14) {
      x = sign * std::numeric_limits<float>::denorm_min();
    } else if (roll < 0.20) {
      x = sign * 65504.0f;  // fp16 max finite
    } else if (roll < 0.26) {
      x = sign * static_cast<float>(rng.uniform(60000.0, 80000.0));
    } else if (roll < 0.30) {
      x = sign * std::numeric_limits<float>::max();
    } else if (roll < 0.33) {
      x = sign * std::numeric_limits<float>::infinity();
    } else if (roll < 0.36) {
      x = std::numeric_limits<float>::quiet_NaN();
    } else if (roll < 0.44) {
      // fp16 subnormal range: |x| < 2^-14
      x = sign * static_cast<float>(rng.uniform(0.0, 6.0e-5));
    } else {
      x = sign * static_cast<float>(rng.uniform(0.0, 4.0));
    }
  }
  return v;
}

TEST_F(VecBitIdentity, QuantKernelsBitIdentity) {
  for (const std::size_t n : kSizes) {
    const auto w = fuzz_quant_floats(n, rng_);
    const auto g = fuzz_floats(n, rng_);
    const auto r0 = fuzz_floats(n, rng_);
    const auto x = fuzz_quant_floats(n, rng_);
    const float scale = 1024.0f, inv_scale = 1.0f / 1024.0f;
    const float i8_scale = 0.03125f, i8_mult = 32.0f;
    const double wgt = 0.375;

    // Scalar reference codes feed every ISA's decode-side kernels.
    std::vector<std::uint16_t> q16_ref(n);
    std::vector<std::int8_t> q8_ref(n);
    const std::size_t over_ref =
        scalar_.quant_fp16(x.data(), q16_ref.data(), scale, n);
    scalar_.quant_i8(x.data(), q8_ref.data(), i8_mult, n);
    std::vector<double> acc0(n);
    for (std::size_t i = 0; i < n; ++i) {
      acc0[i] = static_cast<double>(g[i]) * 1.5;
    }

    for (const auto isa : isas_) {
      const auto& vk = *vec::kernels_for(isa);

      auto ref = r0, got = r0;
      scalar_.ef_delta(w.data(), g.data(), ref.data(), n);
      vk.ef_delta(w.data(), g.data(), got.data(), n);
      expect_same_bits(ref, got, "ef_delta", isa, n);

      const float amax_ref = scalar_.absmax(x.data(), n);
      const float amax = vk.absmax(x.data(), n);
      EXPECT_EQ(0, std::memcmp(&amax_ref, &amax, sizeof(float)))
          << "absmax on " << vec::isa_name(isa) << " at n=" << n;

      std::vector<std::uint16_t> q16(n);
      const std::size_t over = vk.quant_fp16(x.data(), q16.data(), scale, n);
      EXPECT_EQ(over_ref, over)
          << "quant_fp16 overflow count on " << vec::isa_name(isa)
          << " at n=" << n;
      expect_same_bits(q16_ref, q16, "quant_fp16", isa, n);

      ref.assign(n, 0.0f), got.assign(n, 0.0f);
      scalar_.dequant_fp16(q16_ref.data(), ref.data(), inv_scale, n);
      vk.dequant_fp16(q16_ref.data(), got.data(), inv_scale, n);
      expect_same_bits(ref, got, "dequant_fp16", isa, n);

      ref = r0, got = r0;
      scalar_.residual_fp16(q16_ref.data(), inv_scale, ref.data(), n);
      vk.residual_fp16(q16_ref.data(), inv_scale, got.data(), n);
      expect_same_bits(ref, got, "residual_fp16", isa, n);

      auto acc_ref = acc0, acc_got = acc0;
      scalar_.merge_accum_fp16(acc_ref.data(), q16_ref.data(), wgt,
                               inv_scale, n);
      vk.merge_accum_fp16(acc_got.data(), q16_ref.data(), wgt, inv_scale, n);
      expect_same_bits(acc_ref, acc_got, "merge_accum_fp16", isa, n);

      std::vector<std::int8_t> q8(n);
      vk.quant_i8(x.data(), q8.data(), i8_mult, n);
      expect_same_bits(q8_ref, q8, "quant_i8", isa, n);

      ref.assign(n, 0.0f), got.assign(n, 0.0f);
      scalar_.dequant_i8(q8_ref.data(), ref.data(), i8_scale, n);
      vk.dequant_i8(q8_ref.data(), got.data(), i8_scale, n);
      expect_same_bits(ref, got, "dequant_i8", isa, n);

      ref = r0, got = r0;
      scalar_.residual_i8(q8_ref.data(), i8_scale, ref.data(), n);
      vk.residual_i8(q8_ref.data(), i8_scale, got.data(), n);
      expect_same_bits(ref, got, "residual_i8", isa, n);

      acc_ref = acc0, acc_got = acc0;
      scalar_.merge_accum_i8(acc_ref.data(), q8_ref.data(), wgt, i8_scale, n);
      vk.merge_accum_i8(acc_got.data(), q8_ref.data(), wgt, i8_scale, n);
      expect_same_bits(acc_ref, acc_got, "merge_accum_i8", isa, n);
    }
  }
}

TEST_F(VecBitIdentity, QuantKernelSemantics) {
  const auto& vk = *vec::kernels_for(vec::active_isa());

  // fp16 exact codes and overflow accounting at the 65504 boundary.
  const std::vector<float> vals = {1.0f,     -2.0f, 65504.0f, -65504.0f,
                                   65520.0f, 0.0f,  -0.0f};
  std::vector<std::uint16_t> q(vals.size());
  const auto over = vk.quant_fp16(vals.data(), q.data(), 1.0f, vals.size());
  EXPECT_EQ(1u, over);  // only 65520 exceeds the max finite half
  EXPECT_EQ(0x3C00u, q[0]);
  EXPECT_EQ(0xC000u, q[1]);
  EXPECT_EQ(0x7BFFu, q[2]);  // +65504, the largest finite half
  EXPECT_EQ(0xFBFFu, q[3]);
  EXPECT_EQ(0x0000u, q[5]);
  EXPECT_EQ(0x8000u, q[6]);  // signed zero survives the round trip
  std::vector<float> back(vals.size());
  vk.dequant_fp16(q.data(), back.data(), 1.0f, vals.size());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(vals[i], back[i]) << "half round trip at i=" << i;
  }

  // int8: RNE rounding, saturation at ±127, NaN lands on +127.
  const std::vector<float> iv = {0.5f,   1.5f,  2.5f, -0.5f, 200.0f, -200.0f,
                                 std::numeric_limits<float>::quiet_NaN(),
                                 std::numeric_limits<float>::infinity()};
  std::vector<std::int8_t> q8(iv.size());
  vk.quant_i8(iv.data(), q8.data(), 1.0f, iv.size());
  EXPECT_EQ(0, q8[0]);   // 0.5 rounds to even 0
  EXPECT_EQ(2, q8[1]);   // 1.5 rounds to even 2
  EXPECT_EQ(2, q8[2]);   // 2.5 rounds to even 2
  EXPECT_EQ(0, q8[3]);
  EXPECT_EQ(127, q8[4]);
  EXPECT_EQ(-127, q8[5]);
  EXPECT_EQ(127, q8[6]);
  EXPECT_EQ(127, q8[7]);

  // absmax ignores NaN via the maxps (m > a) ? m : a expression when the
  // running max is already numeric, and is exactly 0 on empty input.
  EXPECT_EQ(0.0f, vk.absmax(nullptr, 0));
  const std::vector<float> ax = {1.0f, std::numeric_limits<float>::quiet_NaN(),
                                 -3.0f, 2.0f};
  EXPECT_EQ(3.0f, vk.absmax(ax.data(), ax.size()));
}

TEST_F(VecBitIdentity, IsaSelectionErrors) {
  EXPECT_THROW(vec::set_isa_from_string("sse9"), ParseError);
  vec::set_isa_from_string("");  // empty = flag not given, no-op
  EXPECT_THROW(vec::set_isa_from_string("AVX2"), ParseError);  // exact names
  EXPECT_EQ(vec::parse_isa("avx512"), vec::Isa::kAvx512);
  EXPECT_EQ(vec::parse_isa("turbo"), std::nullopt);
  vec::set_isa(vec::best_supported_isa());
}

// ---------------------------------------------------------------------------
// End-to-end: public kernels at every pinned thread/shard count x ISA.
// ---------------------------------------------------------------------------

// Restores the startup-selected ISA when a sweep ends, so test order cannot
// leak a forced ISA into unrelated tests.
struct IsaGuard {
  vec::Isa saved = vec::active_isa();
  ~IsaGuard() { vec::set_isa(saved); }
};

sparse::CsrMatrix fuzz_csr(std::size_t rows, std::size_t cols,
                           double density, util::Rng& rng) {
  sparse::CsrBuilder b(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<sparse::Entry> entries;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(density)) {
        entries.push_back({static_cast<std::uint32_t>(c),
                           static_cast<float>(rng.uniform(-1.0, 1.0))});
      }
    }
    b.add_row(std::move(entries));
  }
  return b.build();
}

tensor::Matrix fuzz_matrix(std::size_t rows, std::size_t cols,
                           util::Rng& rng) {
  tensor::Matrix m(rows, cols);
  for (auto& v : m.flat()) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return m;
}

kernels::Context eager_ctx(util::ThreadPool& pool, std::size_t threads) {
  kernels::Context ctx{&pool, threads};
  ctx.serial_grain = 0;
  return ctx;
}

void expect_bit_identical(const tensor::Matrix& a, const tensor::Matrix& b,
                          const char* what, vec::Isa isa, std::size_t t) {
  ASSERT_TRUE(a.same_shape(b));
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what << " differs on " << vec::isa_name(isa) << " threads=" << t;
}

TEST(VecEndToEnd, SpmmAndGemmAcrossIsaAndThreads) {
  IsaGuard guard;
  util::ThreadPool pool(4);
  util::Rng rng(50);
  // Thread counts pinned by test_kernels_parallel.
  const std::size_t thread_counts[] = {1, 2, 3, 4, 9, 16};
  for (int iter = 0; iter < 8; ++iter) {
    const std::size_t rows = 1 + rng.next_below(7);
    const std::size_t cols = 1 + rng.next_below(40);
    const std::size_t h = 1 + rng.next_below(33);  // crosses lane widths
    const auto x = fuzz_csr(rows, cols, 0.3, rng);
    const auto w = fuzz_matrix(cols, h, rng);
    const auto d = fuzz_matrix(rows, h, rng);
    const auto a = fuzz_matrix(rows, cols, rng);
    const auto bt = fuzz_matrix(h, cols, rng);

    // Scalar serial is the one reference for every ISA x thread combo.
    vec::set_isa(vec::Isa::kScalar);
    tensor::Matrix y_ref, g_ref(cols, h, 0.0f), c_ref;
    sparse::spmm(x, w, y_ref);
    sparse::spmm_t_accumulate(x, d, g_ref);
    tensor::gemm_a_bt(a, bt, c_ref);

    for (const auto isa : available_isas()) {
      vec::set_isa(isa);
      for (const auto t : thread_counts) {
        tensor::Matrix y, g(cols, h, 0.0f), c;
        sparse::spmm(x, w, y, eager_ctx(pool, t));
        expect_bit_identical(y_ref, y, "spmm", isa, t);
        sparse::spmm_t_accumulate(x, d, g, eager_ctx(pool, t));
        expect_bit_identical(g_ref, g, "spmm_t_accumulate", isa, t);
        tensor::gemm_a_bt(a, bt, c, eager_ctx(pool, t));
        expect_bit_identical(c_ref, c, "gemm_a_bt", isa, t);
      }
    }
  }
}

TEST(VecEndToEnd, GemmVariantsAndReductionsAcrossIsa) {
  IsaGuard guard;
  util::ThreadPool pool(4);
  util::Rng rng(51);
  for (int iter = 0; iter < 8; ++iter) {
    const std::size_t m = 1 + rng.next_below(9);
    const std::size_t k = 1 + rng.next_below(20);
    const std::size_t n = 1 + rng.next_below(20);
    const auto a = fuzz_matrix(m, k, rng);
    const auto b = fuzz_matrix(k, n, rng);
    const auto at = fuzz_matrix(k, m, rng);
    std::vector<float> flat = fuzz_floats(1 + rng.next_below(600), rng);
    std::vector<float> flat2 = fuzz_floats(flat.size(), rng);

    vec::set_isa(vec::Isa::kScalar);
    tensor::Matrix c1_ref, c2_ref;
    tensor::gemm(a, b, c1_ref);
    tensor::gemm_at_b(at, b, c2_ref);
    const double ss_ref = tensor::sum_of_squares(flat);
    const double dot_ref = tensor::dot(flat, flat2);

    for (const auto isa : available_isas()) {
      vec::set_isa(isa);
      for (const auto t : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                           std::size_t{16}}) {
        tensor::Matrix c1, c2;
        tensor::gemm(a, b, c1, eager_ctx(pool, t));
        expect_bit_identical(c1_ref, c1, "gemm", isa, t);
        tensor::gemm_at_b(at, b, c2, eager_ctx(pool, t));
        expect_bit_identical(c2_ref, c2, "gemm_at_b", isa, t);
      }
      EXPECT_EQ(ss_ref, tensor::sum_of_squares(flat))
          << "sum_of_squares on " << vec::isa_name(isa);
      EXPECT_EQ(dot_ref, tensor::dot(flat, flat2))
          << "dot on " << vec::isa_name(isa);
    }
  }
}

TEST(VecEndToEnd, MergeSegmentAcrossIsaThreadsShards) {
  IsaGuard guard;
  util::ThreadPool pool(4);
  util::Rng rng(52);
  // Thread/shard counts and lengths pinned by test_merge_parallel; 4113
  // exercises multiple 512-blocks plus a ragged tail.
  const std::size_t threads[] = {1, 2, 3, 8, 16};
  const std::size_t shard_counts[] = {1, 3, 8};
  const std::size_t lens[] = {1, 5, 511, 512, 513, 4113};
  for (const std::size_t len : lens) {
    for (const std::size_t reps : {std::size_t{1}, std::size_t{3}}) {
      std::vector<std::vector<float>> replicas(reps);
      std::vector<const float*> ptrs(reps);
      std::vector<double> weights(reps);
      for (std::size_t i = 0; i < reps; ++i) {
        replicas[i] = fuzz_floats(len, rng);
        ptrs[i] = replicas[i].data();
        weights[i] = 1.0 / static_cast<double>(reps);
      }
      const auto g0 = fuzz_floats(len, rng);
      const auto p0 = fuzz_floats(len, rng);
      for (const bool momentum : {false, true}) {
        core::MergeUpdate u;
        u.weights = weights;
        u.momentum = momentum;
        u.gamma = 0.6;

        vec::set_isa(vec::Isa::kScalar);
        auto g_ref = g0, p_ref = p0;
        core::merge_segment(ptrs, len, u, g_ref, p_ref, 1,
                            kernels::Context::serial());

        for (const auto isa : available_isas()) {
          vec::set_isa(isa);
          for (const auto t : threads) {
            for (const auto s : shard_counts) {
              auto g = g0, p = p0;
              core::merge_segment(ptrs, len, u, g, p, s,
                                  eager_ctx(pool, t));
              ASSERT_EQ(0, std::memcmp(g_ref.data(), g.data(),
                                       len * sizeof(float)))
                  << "merge_segment(global) differs on "
                  << vec::isa_name(isa) << " threads=" << t
                  << " shards=" << s << " len=" << len
                  << " momentum=" << momentum;
              ASSERT_EQ(0, std::memcmp(p_ref.data(), p.data(),
                                       len * sizeof(float)))
                  << "merge_segment(prev) differs on " << vec::isa_name(isa)
                  << " threads=" << t << " shards=" << s << " len=" << len;
            }
          }
        }
      }
    }
  }
}

TEST(VecEndToEnd, SgdApplyAcrossIsa) {
  IsaGuard guard;
  util::Rng rng(53);
  const std::size_t f = 60, h = 17;  // 17: ragged against every lane width
  const auto x = fuzz_csr(6, f, 0.2, rng);
  const auto d = fuzz_matrix(6, h, rng);
  const auto w0 = fuzz_matrix(f, h, rng);
  const float lr = 0.21f, keep = 1.0f - lr * 0.02f;

  vec::set_isa(vec::Isa::kScalar);
  sparse::SparseGradient g_ref;
  g_ref.reset(x, h);
  g_ref.accumulate_spmm_t(x, d, kernels::Context::serial());
  tensor::Matrix w_ref = w0;
  g_ref.apply_to(w_ref, lr, keep, kernels::Context::serial());

  for (const auto isa : available_isas()) {
    vec::set_isa(isa);
    sparse::SparseGradient g;
    g.reset(x, h);
    g.accumulate_spmm_t(x, d, kernels::Context::serial());
    tensor::Matrix w = w0;
    g.apply_to(w, lr, keep, kernels::Context::serial());
    expect_bit_identical(w_ref, w, "sgd apply_to", isa, 1);
  }
}

}  // namespace
}  // namespace hetero
