// nn::Optimizer tests (DESIGN.md §11): the sgd path's bit-identity to the
// fused train_step / apply_gradients, the lazy sparse-Adam contract against
// a per-row dense-Adam oracle (including exact K-step-skip catch-up),
// weight-decay semantics per algorithm, thread x ISA bit-identity for every
// optimizer, and the golden pin that fixes the refactored adaptive trainer
// to the pre-refactor sgd_step bit for bit.
#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/adaptive_sgd.h"
#include "data/synthetic.h"
#include "sim/profiles.h"
#include "sparse/csr.h"
#include "tensor/vec/vec.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace hetero::nn {
namespace {

constexpr std::size_t kFeatures = 24;
constexpr std::size_t kHidden = 17;  // ragged against every SIMD lane width
constexpr std::size_t kClasses = 9;

std::unique_ptr<Model> small_model(util::Rng& rng) {
  const std::size_t hidden[] = {kHidden};
  auto m = make_model(ModelKind::kMlp, kFeatures, hidden, kClasses);
  m->init(rng);
  return m;
}

sparse::CsrMatrix make_batch_x(std::size_t rows, util::Rng& rng,
                               double density = 0.3) {
  sparse::CsrBuilder b(kFeatures);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<sparse::Entry> entries;
    for (std::size_t c = 0; c < kFeatures; ++c) {
      if (rng.bernoulli(density)) {
        entries.push_back({static_cast<std::uint32_t>(c),
                           static_cast<float>(rng.uniform(0.1, 1.0))});
      }
    }
    if (entries.empty()) entries.push_back({0, 1.0f});
    b.add_row(std::move(entries));
  }
  return b.build();
}

sparse::CsrMatrix make_batch_y(std::size_t rows, util::Rng& rng) {
  sparse::CsrBuilder b(kClasses);
  for (std::size_t r = 0; r < rows; ++r) {
    b.add_indicator_row({static_cast<std::uint32_t>(rng.next_below(kClasses))});
  }
  return b.build();
}

/// A batch whose feature rows come only from `features` (one sample per
/// feature) — the tool for steering which W1 rows a step touches.
sparse::CsrMatrix batch_touching(std::span<const std::uint32_t> features) {
  sparse::CsrBuilder b(kFeatures);
  for (const auto f : features) b.add_row({{f, 1.0f}});
  return b.build();
}

void expect_models_bit_equal(Model& a, Model& b, const char* what) {
  EXPECT_EQ(a.to_flat(), b.to_flat()) << what;
}

TEST(OptimizerKindNames, RoundTripAndRejects) {
  for (const auto kind : {OptimizerKind::kSgd, OptimizerKind::kAdam,
                          OptimizerKind::kAdamW, OptimizerKind::kAdagrad}) {
    const auto parsed = parse_optimizer_kind(to_string(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
    const auto from_byte =
        optimizer_kind_from_byte(static_cast<std::uint8_t>(kind));
    ASSERT_TRUE(from_byte.has_value());
    EXPECT_EQ(*from_byte, kind);
  }
  EXPECT_FALSE(parse_optimizer_kind("momentum").has_value());
  EXPECT_FALSE(parse_optimizer_kind("").has_value());
  EXPECT_FALSE(optimizer_kind_from_byte(4).has_value());
  EXPECT_FALSE(optimizer_kind_from_byte(0xff).has_value());
}

TEST(OptimizerShapes, SlotsAlignWithSegments) {
  util::Rng rng(1);
  auto model = small_model(rng);
  const struct {
    OptimizerKind kind;
    std::size_t slots;
    bool lazy;
  } expected[] = {{OptimizerKind::kSgd, 0, false},
                  {OptimizerKind::kAdam, 2, true},
                  {OptimizerKind::kAdamW, 2, true},
                  {OptimizerKind::kAdagrad, 1, false}};
  for (const auto& e : expected) {
    OptimizerConfig cfg;
    cfg.kind = e.kind;
    auto opt = Optimizer::make(cfg, *model);
    EXPECT_EQ(opt->kind(), e.kind);
    EXPECT_EQ(opt->num_slots(), e.slots);
    EXPECT_EQ(opt->row_steps().size(), e.lazy ? kFeatures : 0u);
    const auto segs = model->segment_views();
    for (std::size_t slot = 0; slot < opt->num_slots(); ++slot) {
      const auto views = opt->slot_views(slot);
      ASSERT_EQ(views.size(), segs.size());
      for (std::size_t s = 0; s < segs.size(); ++s) {
        EXPECT_EQ(views[s].size(), segs[s].size()) << "slot " << slot;
      }
    }
  }
}

// The tentpole contract: the sgd optimizer is the pre-refactor update. Both
// against apply_gradients and against the fused train_step.
TEST(SgdOptimizer, BitIdenticalToApplyGradientsAndTrainStep) {
  util::Rng rng(2);
  auto a = small_model(rng);
  auto b = a->clone();
  auto c = a->clone();
  auto opt = Optimizer::make({}, *a);
  auto wa = a->make_workspace();
  auto wb = b->make_workspace();
  auto wc = c->make_workspace();
  util::Rng data_rng(3);
  for (int step = 0; step < 5; ++step) {
    const auto x = make_batch_x(4, data_rng);
    const auto y = make_batch_y(4, data_rng);
    const float wd = step % 2 == 0 ? 0.0f : 1e-3f;
    a->compute_gradients(x, y, *wa);
    opt->apply(*a, *wa, 0.2f, wd);
    b->compute_gradients(x, y, *wb);
    b->apply_gradients(*wb, 0.2f, wd);
    c->train_step(x, y, 0.2f, *wc, wd);
    expect_models_bit_equal(*a, *b, "sgd optimizer vs apply_gradients");
    expect_models_bit_equal(*a, *c, "sgd optimizer vs fused train_step");
  }
}

// Reference Adam/AdamW oracle: dense per-row state advanced only on touched
// steps, with the test (not the optimizer) keeping the per-row counters.
// Runs the scalar kernel row by row, so any divergence in the lazy
// bookkeeping (counter order, bias corrections, segment offsets) shows up
// as a bit mismatch.
struct AdamOracle {
  explicit AdamOracle(Model& model, bool decoupled) : decoupled_(decoupled) {
    for (const auto seg : model.segment_views()) sizes_.push_back(seg.size());
    for (const auto s : sizes_) {
      m_.emplace_back(s, 0.0f);
      v_.emplace_back(s, 0.0f);
    }
    row_t_.assign(kFeatures, 0);
  }

  static float bias(double beta, std::uint64_t t) {
    return static_cast<float>(
        1.0 / (1.0 - std::pow(beta, static_cast<double>(t))));
  }

  void step(Model& model, const ModelWorkspace& ws, float lr, float wd) {
    const auto& vk = *vec::kernels_for(vec::Isa::kScalar);
    auto segs = model.segment_views();
    vec::AdamParams p;
    p.lr = lr;
    p.weight_decay = decoupled_ ? 0.0f : wd;
    p.keep = decoupled_ ? 1.0f - lr * wd : 1.0f;
    const auto views = ws.gradient_views();
    const auto& sg = *views.input;
    const auto rows = sg.rows();
    for (std::size_t s = 0; s < rows.size(); ++s) {
      const std::size_t r = rows[s];
      const std::uint32_t t = ++row_t_[r];
      vec::AdamParams pr = p;
      pr.bias1 = bias(0.9, t);
      pr.bias2 = bias(0.999, t);
      vk.adam_update(segs[0].data() + r * kHidden, sg.slot_values(s).data(),
                     m_[0].data() + r * kHidden, v_[0].data() + r * kHidden,
                     pr, kHidden);
    }
    const std::uint64_t t = ++step_;
    vec::AdamParams pd = p;
    pd.bias1 = bias(0.9, t);
    pd.bias2 = bias(0.999, t);
    for (std::size_t seg = 1; seg < segs.size(); ++seg) {
      vk.adam_update(segs[seg].data(), views.dense[seg - 1].data(),
                     m_[seg].data(), v_[seg].data(), pd, segs[seg].size());
    }
  }

  bool decoupled_;
  std::vector<std::size_t> sizes_;
  std::vector<std::vector<float>> m_, v_;
  std::vector<std::uint32_t> row_t_;
  std::uint64_t step_ = 0;
};

void expect_state_matches_oracle(Optimizer& opt, const AdamOracle& oracle,
                                 int step) {
  const std::vector<std::vector<float>>* slots[2] = {&oracle.m_, &oracle.v_};
  for (std::size_t slot = 0; slot < 2; ++slot) {
    const auto views = opt.slot_views(slot);
    for (std::size_t seg = 0; seg < views.size(); ++seg) {
      ASSERT_EQ(views[seg].size(), (*slots[slot])[seg].size());
      EXPECT_EQ(0, std::memcmp(views[seg].data(), (*slots[slot])[seg].data(),
                               views[seg].size() * sizeof(float)))
          << "slot " << slot << " seg " << seg << " step " << step;
    }
  }
  const auto steps = opt.row_steps();
  ASSERT_EQ(steps.size(), oracle.row_t_.size());
  for (std::size_t r = 0; r < steps.size(); ++r) {
    EXPECT_EQ(steps[r], oracle.row_t_[r]) << "row " << r << " step " << step;
  }
  EXPECT_EQ(opt.step(), oracle.step_);
}

TEST(LazyAdam, MatchesDenseOracleOnTouchedRows) {
  for (const bool decoupled : {false, true}) {
    util::Rng rng(4);
    auto model = small_model(rng);
    auto reference = model->clone();
    OptimizerConfig cfg;
    cfg.kind = decoupled ? OptimizerKind::kAdamW : OptimizerKind::kAdam;
    auto opt = Optimizer::make(cfg, *model);
    AdamOracle oracle(*reference, decoupled);
    auto ws = model->make_workspace();
    auto wr = reference->make_workspace();
    util::Rng data_rng(5);
    for (int step = 0; step < 12; ++step) {
      // Sparse batches: most rows are skipped on most steps, so the lazy
      // counters diverge from the dense step counter almost immediately.
      const auto x = make_batch_x(3, data_rng, 0.15);
      const auto y = make_batch_y(3, data_rng);
      const float wd = 1e-3f;
      model->compute_gradients(x, y, *ws);
      opt->apply(*model, *ws, 0.05f, wd);
      reference->compute_gradients(x, y, *wr);
      oracle.step(*reference, *wr, 0.05f, wd);
      expect_models_bit_equal(*model, *reference,
                              decoupled ? "adamw vs oracle" : "adam vs oracle");
      expect_state_matches_oracle(*opt, oracle, step);
    }
  }
}

// A row skipped for K steps and then revisited must see bias corrections
// for t=2 (its second touched step) — not t=K+2 — and its moments must be
// exactly the dense-Adam moments of its two-step touched subsequence.
TEST(LazyAdam, KStepSkipCatchesUpExactly) {
  constexpr std::uint32_t kRow = 3;
  constexpr int kSkip = 7;
  util::Rng rng(6);
  auto model = small_model(rng);
  auto opt = Optimizer::make({OptimizerKind::kAdam}, *model);
  auto ws = model->make_workspace();
  util::Rng data_rng(7);

  const auto apply_once = [&](const sparse::CsrMatrix& x) {
    const auto y = make_batch_y(x.rows(), data_rng);
    model->compute_gradients(x, y, *ws);
    // Capture the gradient of kRow before apply (the optimizer does not
    // modify the workspace, but copy for clarity).
    std::vector<float> g;
    const auto& sg = *ws->gradient_views().input;
    const auto rows = sg.rows();
    for (std::size_t s = 0; s < rows.size(); ++s) {
      if (rows[s] == kRow) {
        const auto vals = sg.slot_values(s);
        g.assign(vals.begin(), vals.end());
      }
    }
    opt->apply(*model, *ws, 0.05f, 0.0f);
    return g;
  };

  // Step 1: touch kRow (alone). Steps 2..K+1: avoid kRow. Step K+2: kRow.
  const std::uint32_t only[] = {kRow};
  const std::uint32_t others[] = {0, 1, 5};
  const auto g1 = apply_once(batch_touching(only));
  ASSERT_EQ(g1.size(), kHidden);
  // Snapshot kRow's state after its first touch.
  std::vector<float> m1(opt->slot_views(0)[0].begin() + kRow * kHidden,
                        opt->slot_views(0)[0].begin() + (kRow + 1) * kHidden);
  std::vector<float> v1(opt->slot_views(1)[0].begin() + kRow * kHidden,
                        opt->slot_views(1)[0].begin() + (kRow + 1) * kHidden);
  std::vector<float> w1(model->segment_views()[0].begin() + kRow * kHidden,
                        model->segment_views()[0].begin() +
                            (kRow + 1) * kHidden);
  for (int i = 0; i < kSkip; ++i) apply_once(batch_touching(others));
  EXPECT_EQ(opt->row_steps()[kRow], 1u);  // untouched: counter frozen
  // Row state must be untouched bit for bit across the skip.
  EXPECT_EQ(0, std::memcmp(m1.data(),
                           opt->slot_views(0)[0].data() + kRow * kHidden,
                           kHidden * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(w1.data(),
                           model->segment_views()[0].data() + kRow * kHidden,
                           kHidden * sizeof(float)));

  const auto g2 = apply_once(batch_touching(only));
  ASSERT_EQ(g2.size(), kHidden);
  EXPECT_EQ(opt->row_steps()[kRow], 2u);  // t advanced to 2, not kSkip + 2

  // Oracle for the revisit: dense Adam's step-2 update applied to the
  // snapshot, with bias corrections for t=2.
  const auto& vk = *vec::kernels_for(vec::Isa::kScalar);
  vec::AdamParams p;
  p.lr = 0.05f;
  p.bias1 = AdamOracle::bias(0.9, 2);
  p.bias2 = AdamOracle::bias(0.999, 2);
  auto w = w1;
  auto m = m1;
  auto v = v1;
  vk.adam_update(w.data(), g2.data(), m.data(), v.data(), p, kHidden);
  EXPECT_EQ(0, std::memcmp(w.data(),
                           model->segment_views()[0].data() + kRow * kHidden,
                           kHidden * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(m.data(),
                           opt->slot_views(0)[0].data() + kRow * kHidden,
                           kHidden * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(v.data(),
                           opt->slot_views(1)[0].data() + kRow * kHidden,
                           kHidden * sizeof(float)));
}

// Weight-decay semantics (satellite: explicit per optimizer). AdamW's decay
// is decoupled — the moments never see it; Adam's and Adagrad's is coupled —
// the state does see it.
TEST(WeightDecay, AdamWDecoupledAdamAdagradCoupled) {
  util::Rng rng(8);
  auto base = small_model(rng);
  util::Rng data_rng(9);
  const auto x = make_batch_x(4, data_rng);
  const auto y = make_batch_y(4, data_rng);

  const auto run_one = [&](OptimizerKind kind, float wd) {
    auto model = base->clone();
    OptimizerConfig cfg;
    cfg.kind = kind;
    auto opt = Optimizer::make(cfg, *model);
    auto ws = model->make_workspace();
    model->compute_gradients(x, y, *ws);
    opt->apply(*model, *ws, 0.05f, wd);
    std::vector<std::vector<float>> state;
    for (std::size_t slot = 0; slot < opt->num_slots(); ++slot) {
      auto& flat = state.emplace_back();
      for (const auto seg : opt->slot_views(slot)) {
        flat.insert(flat.end(), seg.begin(), seg.end());
      }
    }
    return std::pair{model->to_flat(), state};
  };

  const auto [w_adamw_wd, s_adamw_wd] = run_one(OptimizerKind::kAdamW, 0.1f);
  const auto [w_adamw_0, s_adamw_0] = run_one(OptimizerKind::kAdamW, 0.0f);
  EXPECT_NE(w_adamw_wd, w_adamw_0);  // the decay does shrink parameters
  EXPECT_EQ(s_adamw_wd, s_adamw_0);  // but never enters the moments

  const auto [w_adam_wd, s_adam_wd] = run_one(OptimizerKind::kAdam, 0.1f);
  const auto [w_adam_0, s_adam_0] = run_one(OptimizerKind::kAdam, 0.0f);
  EXPECT_NE(w_adam_wd, w_adam_0);
  EXPECT_NE(s_adam_wd, s_adam_0);  // coupled: g' = g + wd*w feeds moments

  const auto [w_ada_wd, s_ada_wd] = run_one(OptimizerKind::kAdagrad, 0.1f);
  const auto [w_ada_0, s_ada_0] = run_one(OptimizerKind::kAdagrad, 0.0f);
  EXPECT_NE(w_ada_wd, w_ada_0);
  EXPECT_NE(s_ada_wd, s_ada_0);  // coupled: decay enters the accumulator

  // AdamW with wd=0 degenerates to Adam with wd=0, bit for bit.
  EXPECT_EQ(w_adamw_0, w_adam_0);
  EXPECT_EQ(s_adamw_0, s_adam_0);
}

TEST(WeightDecay, UntouchedRowsNeverDecay) {
  // The lazy-decay contract: segment-0 rows absent from the batch are
  // neither updated nor decayed, on every optimizer.
  for (const auto kind : {OptimizerKind::kSgd, OptimizerKind::kAdam,
                          OptimizerKind::kAdamW, OptimizerKind::kAdagrad}) {
    util::Rng rng(10);
    auto model = small_model(rng);
    OptimizerConfig cfg;
    cfg.kind = kind;
    auto opt = Optimizer::make(cfg, *model);
    auto ws = model->make_workspace();
    util::Rng data_rng(11);
    const std::uint32_t touched[] = {2, 4};
    const auto x = batch_touching(touched);
    const auto y = make_batch_y(x.rows(), data_rng);
    const auto before = model->to_flat();
    model->compute_gradients(x, y, *ws);
    opt->apply(*model, *ws, 0.1f, 0.5f);
    const auto after = model->to_flat();
    const auto seg0 = model->segment_views()[0];
    for (std::size_t r = 0; r < kFeatures; ++r) {
      if (r == 2 || r == 4) continue;
      EXPECT_EQ(0, std::memcmp(before.data() + r * kHidden,
                               seg0.data() + r * kHidden,
                               kHidden * sizeof(float)))
          << to_string(kind) << " row " << r;
    }
    EXPECT_NE(before, after) << to_string(kind);
  }
}

TEST(OptimizerReset, ZeroesAllState) {
  util::Rng rng(12);
  auto model = small_model(rng);
  for (const auto kind : {OptimizerKind::kAdam, OptimizerKind::kAdamW,
                          OptimizerKind::kAdagrad}) {
    OptimizerConfig cfg;
    cfg.kind = kind;
    auto opt = Optimizer::make(cfg, *model);
    auto ws = model->make_workspace();
    util::Rng data_rng(13);
    for (int i = 0; i < 3; ++i) {
      const auto x = make_batch_x(4, data_rng);
      const auto y = make_batch_y(4, data_rng);
      model->compute_gradients(x, y, *ws);
      opt->apply(*model, *ws, 0.05f, 0.0f);
    }
    EXPECT_GT(opt->step(), 0u);
    opt->reset_state();
    EXPECT_EQ(opt->step(), 0u);
    for (std::size_t slot = 0; slot < opt->num_slots(); ++slot) {
      for (const auto seg : opt->slot_views(slot)) {
        for (const float x : seg) EXPECT_EQ(x, 0.0f) << to_string(kind);
      }
    }
    for (const auto t : opt->row_steps()) EXPECT_EQ(t, 0u);
  }
}

// Thread x ISA bit-identity: every optimizer's apply produces the same bits
// under any vec table and any workspace thread count as the serial-scalar
// reference.
TEST(OptimizerDeterminism, ThreadAndIsaBitIdentity) {
  struct IsaGuard {
    vec::Isa saved = vec::active_isa();
    ~IsaGuard() { vec::set_isa(saved); }
  } guard;

  std::vector<vec::Isa> isas;
  for (const auto isa :
       {vec::Isa::kScalar, vec::Isa::kAvx2, vec::Isa::kAvx512}) {
    if (vec::isa_supported(isa)) isas.push_back(isa);
  }

  for (const auto kind : {OptimizerKind::kSgd, OptimizerKind::kAdam,
                          OptimizerKind::kAdamW, OptimizerKind::kAdagrad}) {
    // Reference: scalar ISA, serial workspace.
    util::Rng rng(14);
    auto ref_model = small_model(rng);
    const auto init = ref_model->to_flat();
    OptimizerConfig cfg;
    cfg.kind = kind;

    std::vector<sparse::CsrMatrix> xs, ys;
    util::Rng data_rng(15);
    for (int i = 0; i < 6; ++i) {
      xs.push_back(make_batch_x(5, data_rng, 0.25));
      ys.push_back(make_batch_y(5, data_rng));
    }

    const auto run = [&](vec::Isa isa, std::size_t threads) {
      vec::set_isa(isa);
      auto model = ref_model->clone();
      model->from_flat(init);
      auto opt = Optimizer::make(cfg, *model);
      auto ws = model->make_workspace();
      util::ThreadPool pool(threads == 0 ? 1 : threads);
      if (threads > 0) {
        ws->ctx = kernels::Context{&pool, threads};
        ws->ctx.serial_grain = 0;  // parallelize even tiny shapes
      }
      for (std::size_t i = 0; i < xs.size(); ++i) {
        model->compute_gradients(xs[i], ys[i], *ws);
        opt->apply(*model, *ws, 0.05f, 1e-3f);
      }
      std::vector<float> state;
      for (std::size_t slot = 0; slot < opt->num_slots(); ++slot) {
        for (const auto seg : opt->slot_views(slot)) {
          state.insert(state.end(), seg.begin(), seg.end());
        }
      }
      return std::pair{model->to_flat(), state};
    };

    const auto [ref_w, ref_s] = run(vec::Isa::kScalar, 0);
    for (const auto isa : isas) {
      for (const std::size_t threads : {std::size_t{0}, std::size_t{2},
                                        std::size_t{5}}) {
        const auto [w, s] = run(isa, threads);
        EXPECT_EQ(w, ref_w) << to_string(kind) << " isa "
                            << vec::isa_name(isa) << " threads " << threads;
        EXPECT_EQ(s, ref_s) << to_string(kind) << " isa "
                            << vec::isa_name(isa) << " threads " << threads;
      }
    }
  }
}

// ---- golden pin: --optimizer sgd through the full adaptive trainer --------
//
// Captured from the pre-refactor binary (sgd_step fused path) at commit
// "Compress merge payloads". The refactored compute_gradients +
// SgdOptimizer::apply pipeline must reproduce these bits exactly; any
// change here is a behavioral break of the default training path.

std::uint64_t fnv1a(const std::vector<float>& v) {
  std::uint64_t h = 1469598103934665603ull;
  for (const float f : v) {
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    for (int i = 0; i < 4; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

std::uint32_t word_bits(const std::vector<float>& v, std::size_t i) {
  std::uint32_t bits;
  std::memcpy(&bits, &v[i], sizeof(bits));
  return bits;
}

core::TrainerConfig golden_config() {
  core::TrainerConfig cfg;
  cfg.hidden = 16;
  cfg.batch_max = 32;
  cfg.batches_per_megabatch = 16;
  cfg.num_megabatches = 3;
  cfg.learning_rate = 0.5;
  cfg.eval_samples = 200;
  cfg.compute_scale = 2000.0;
  cfg.seed = 20220429;
  return cfg;
}

const data::XmlDataset& golden_dataset() {
  static const data::XmlDataset dataset = [] {
    auto tiny = data::tiny_profile();
    tiny.num_train = 2000;
    return data::generate_xml_dataset(tiny);
  }();
  return dataset;
}

TEST(GoldenSgd, AdaptiveTrainerBitIdenticalToPreRefactor) {
  core::AdaptiveSgdTrainer trainer(golden_dataset(), golden_config(),
                                   sim::v100_heterogeneous(3, 0.32));
  const auto result = trainer.train();
  const auto flat = trainer.runtime().global_model().to_flat();
  ASSERT_EQ(flat.size(), 9296u);
  EXPECT_EQ(fnv1a(flat), 0x9279a5510df03864ull);
  EXPECT_EQ(word_bits(flat, 0), 0x3e38a8d6u);
  EXPECT_EQ(word_bits(flat, flat.size() / 2), 0x3d4f9772u);
  EXPECT_EQ(word_bits(flat, flat.size() - 1), 0xbe06c48au);
  EXPECT_DOUBLE_EQ(result.final_top1(), 0.665);
}

TEST(GoldenSgd, WeightDecaySparseMergeBitIdenticalToPreRefactor) {
  auto cfg = golden_config();
  cfg.weight_decay = 1e-4;
  cfg.sparse_merge = true;
  core::AdaptiveSgdTrainer trainer(golden_dataset(), cfg,
                                   sim::v100_heterogeneous(3, 0.32));
  const auto result = trainer.train();
  const auto flat = trainer.runtime().global_model().to_flat();
  ASSERT_EQ(flat.size(), 9296u);
  EXPECT_EQ(fnv1a(flat), 0xd6c29f47527b8280ull);
  EXPECT_EQ(word_bits(flat, 0), 0x3e38b7bcu);
  EXPECT_EQ(word_bits(flat, flat.size() / 2), 0x3d4f776du);
  EXPECT_EQ(word_bits(flat, flat.size() - 1), 0xbe06b7a4u);
  EXPECT_DOUBLE_EQ(result.final_top1(), 0.665);
}

// All four optimizers drive the full adaptive trainer to a working model,
// deterministically: same config, same bits, run to run.
TEST(OptimizerTrainers, AllKindsTrainAndRepeatBitIdentically) {
  for (const auto kind : {OptimizerKind::kAdam, OptimizerKind::kAdamW,
                          OptimizerKind::kAdagrad}) {
    auto cfg = golden_config();
    cfg.optimizer.kind = kind;
    cfg.learning_rate = kind == OptimizerKind::kAdagrad ? 0.1 : 0.02;
    cfg.weight_decay = 1e-4;
    core::AdaptiveSgdTrainer a(golden_dataset(), cfg,
                               sim::v100_heterogeneous(3, 0.32));
    const auto ra = a.train();
    EXPECT_GT(ra.final_top1(), ra.curve.front().top1) << to_string(kind);
    core::AdaptiveSgdTrainer b(golden_dataset(), cfg,
                               sim::v100_heterogeneous(3, 0.32));
    b.train();
    EXPECT_EQ(a.runtime().global_model().to_flat(),
              b.runtime().global_model().to_flat())
        << to_string(kind);
    for (std::size_t g = 0; g < a.runtime().num_gpus(); ++g) {
      auto& oa = a.runtime().optimizer(g);
      auto& ob = b.runtime().optimizer(g);
      EXPECT_EQ(oa.step(), ob.step());
      for (std::size_t slot = 0; slot < ob.num_slots(); ++slot) {
        const auto va = oa.slot_views(slot);
        const auto vb = ob.slot_views(slot);
        for (std::size_t seg = 0; seg < vb.size(); ++seg) {
          EXPECT_EQ(0, std::memcmp(va[seg].data(), vb[seg].data(),
                                   vb[seg].size() * sizeof(float)))
              << to_string(kind) << " slot " << slot << " seg " << seg;
        }
      }
    }
  }
}

}  // namespace
}  // namespace hetero::nn
