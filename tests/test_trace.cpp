#include "sim/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "sim/profiles.h"

namespace hetero {
namespace {

TEST(Tracer, RecordsEvents) {
  sim::Tracer tracer;
  tracer.add({"k1", "compute", 0, 0, 0.0, 1.0});
  tracer.add({"k2", "comm", 1, 2, 1.0, 0.5});
  EXPECT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.events()[1].name, "k2");
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(Tracer, DeviceBusySeconds) {
  sim::Tracer tracer;
  tracer.add({"a", "compute", 0, 0, 0.0, 1.0});
  tracer.add({"b", "compute", 0, 0, 2.0, 0.25});
  tracer.add({"c", "compute", 1, 0, 0.0, 5.0});
  EXPECT_DOUBLE_EQ(tracer.device_busy_seconds(0), 1.25);
  EXPECT_DOUBLE_EQ(tracer.device_busy_seconds(1), 5.0);
  EXPECT_DOUBLE_EQ(tracer.device_busy_seconds(9), 0.0);
}

TEST(Tracer, ChromeJsonWellFormed) {
  sim::Tracer tracer;
  tracer.add({"step \"x\"\nnl", "compute", 0, 0, 0.001, 0.002});
  tracer.add({"host", "merge", -1, 0, 0.01, 0.001});
  std::ostringstream out;
  tracer.write_chrome_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\\\"x\\\""), std::string::npos);  // escaped quote
  EXPECT_NE(json.find("\\n"), std::string::npos);        // escaped newline
  EXPECT_NE(json.find("\"pid\":1000"), std::string::npos);  // host event
  EXPECT_EQ(json.find('\n'), std::string::npos);  // raw newline never leaks
}

TEST(Tracer, EmptyTraceStillValid) {
  sim::Tracer tracer;
  std::ostringstream out;
  tracer.write_chrome_json(out);
  EXPECT_EQ(out.str(), "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

TEST(Tracer, FileWriteFailsOnBadPath) {
  sim::Tracer tracer;
  EXPECT_THROW(tracer.write_chrome_json_file("/nonexistent/dir/x.json"),
               std::runtime_error);
}

class RuntimeTraceTest : public ::testing::Test {
 protected:
  RuntimeTraceTest()
      : dataset_(data::generate_xml_dataset(data::tiny_profile())) {}
  data::XmlDataset dataset_;
};

TEST_F(RuntimeTraceTest, TrainingProducesComputeAndMergeEvents) {
  core::TrainerConfig cfg;
  cfg.hidden = 16;
  cfg.batch_max = 32;
  cfg.batches_per_megabatch = 8;
  cfg.num_megabatches = 2;
  cfg.eval_samples = 100;
  cfg.compute_scale = 500.0;

  sim::Tracer tracer;
  auto trainer = core::make_trainer(core::Method::kAdaptive, dataset_, cfg,
                                    sim::v100_heterogeneous(2));
  trainer->runtime().set_tracer(&tracer);
  const auto result = trainer->train();

  std::size_t compute = 0, comm = 0, merge = 0;
  for (const auto& e : tracer.events()) {
    if (e.category == "compute") ++compute;
    if (e.category == "comm") ++comm;
    if (e.category == "merge") ++merge;
    EXPECT_GE(e.duration, 0.0);
    EXPECT_GE(e.start, 0.0);
  }
  // 16 steps + 2 merges x (2 comm + 1 host) events.
  EXPECT_EQ(compute, 16u);
  EXPECT_EQ(comm, 4u);
  EXPECT_EQ(merge, 2u);

  // Traced COMPUTE time matches the device's own busy accounting (comm
  // events are barrier time, which VirtualGpu does not count as busy).
  double traced_compute = 0.0;
  for (const auto& e : tracer.events()) {
    if (e.category == "compute" && e.device == 0) traced_compute += e.duration;
  }
  EXPECT_NEAR(traced_compute, trainer->runtime().gpu(0).busy_seconds(),
              trainer->runtime().gpu(0).busy_seconds() * 1e-9);
  EXPECT_GT(result.final_top1(), 0.0);
}

TEST_F(RuntimeTraceTest, EventsAreTimeOrderedPerDeviceStream) {
  core::TrainerConfig cfg;
  cfg.hidden = 16;
  cfg.batch_max = 32;
  cfg.batches_per_megabatch = 10;
  cfg.num_megabatches = 1;
  cfg.eval_samples = 50;
  cfg.compute_scale = 500.0;

  sim::Tracer tracer;
  auto trainer = core::make_trainer(core::Method::kAdaptive, dataset_, cfg,
                                    sim::v100_heterogeneous(3));
  trainer->runtime().set_tracer(&tracer);
  trainer->train();

  std::map<int, double> last_end;
  for (const auto& e : tracer.events()) {
    if (e.category != "compute") continue;
    EXPECT_GE(e.start + 1e-12, last_end[e.device])
        << "overlap on device " << e.device;
    last_end[e.device] = e.start + e.duration;
  }
}

}  // namespace
}  // namespace hetero
