#include "core/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace hetero::core {
namespace {

TEST(InlineExecutor, RunsImmediately) {
  InlineExecutor ex;
  int value = 0;
  ex.dispatch(0, [&] { value = 42; });
  EXPECT_EQ(value, 42);  // no barrier needed
  ex.barrier();
}

TEST(ThreadedExecutor, BarrierWaitsForAllWork) {
  ThreadedExecutor ex(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 30; ++i) {
    ex.dispatch(static_cast<std::size_t>(i % 3), [&] { counter++; });
  }
  ex.barrier();
  EXPECT_EQ(counter.load(), 30);
}

TEST(ThreadedExecutor, PerDeviceFifoOrder) {
  ThreadedExecutor ex(2);
  std::vector<int> order0, order1;
  for (int i = 0; i < 50; ++i) {
    ex.dispatch(0, [&, i] { order0.push_back(i); });
    ex.dispatch(1, [&, i] { order1.push_back(i); });
  }
  ex.barrier();
  ASSERT_EQ(order0.size(), 50u);
  ASSERT_EQ(order1.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order0[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(order1[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadedExecutor, RepeatedBarriersSafe) {
  ThreadedExecutor ex(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    ex.dispatch(0, [&] { counter++; });
    ex.dispatch(1, [&] { counter++; });
    ex.barrier();
    EXPECT_EQ(counter.load(), (round + 1) * 2);
  }
}

TEST(ThreadedExecutor, BarrierOnIdleExecutorReturns) {
  ThreadedExecutor ex(4);
  ex.barrier();  // must not deadlock
  SUCCEED();
}

TEST(ThreadedExecutor, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadedExecutor ex(2);
    for (int i = 0; i < 10; ++i) {
      ex.dispatch(static_cast<std::size_t>(i % 2), [&] { counter++; });
    }
    ex.barrier();
  }  // destructor joins managers
  EXPECT_EQ(counter.load(), 10);
}

TEST(MakeExecutor, FactorySelectsBackend) {
  auto inline_ex = make_executor(false, 2);
  auto threaded_ex = make_executor(true, 2);
  EXPECT_NE(dynamic_cast<InlineExecutor*>(inline_ex.get()), nullptr);
  EXPECT_NE(dynamic_cast<ThreadedExecutor*>(threaded_ex.get()), nullptr);
}

TEST(ThreadedExecutor, WorkOnDistinctDevicesIsolated) {
  // Each device's work only touches its own slot: no synchronization
  // needed beyond the per-device FIFO (this is the property the runtime's
  // replica-confinement relies on).
  ThreadedExecutor ex(4);
  std::vector<long> sums(4, 0);
  for (int i = 0; i < 100; ++i) {
    for (std::size_t g = 0; g < 4; ++g) {
      ex.dispatch(g, [&sums, g] { sums[g] += static_cast<long>(g) + 1; });
    }
  }
  ex.barrier();
  for (std::size_t g = 0; g < 4; ++g) {
    EXPECT_EQ(sums[g], 100 * (static_cast<long>(g) + 1));
  }
}

}  // namespace
}  // namespace hetero::core
