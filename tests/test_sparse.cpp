#include "sparse/csr.h"

#include <gtest/gtest.h>

#include "sparse/ops.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace hetero::sparse {
namespace {

CsrMatrix random_csr(std::size_t rows, std::size_t cols, double density,
                     util::Rng& rng) {
  CsrBuilder builder(cols);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<Entry> entries;
    for (std::size_t c = 0; c < cols; ++c) {
      if (rng.bernoulli(density)) {
        entries.push_back({static_cast<std::uint32_t>(c),
                           static_cast<float>(rng.uniform(-1, 1))});
      }
    }
    builder.add_row(std::move(entries));
  }
  return builder.build();
}

tensor::Matrix to_dense(const CsrMatrix& m) {
  tensor::Matrix d(m.rows(), m.cols(), 0.0f);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto cols = m.row_cols(r);
    const auto vals = m.row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i) d(r, cols[i]) = vals[i];
  }
  return d;
}

TEST(CsrBuilder, SortsColumnsWithinRow) {
  CsrBuilder b(10);
  b.add_row({{5, 1.0f}, {2, 2.0f}, {8, 3.0f}});
  const auto m = b.build();
  const auto cols = m.row_cols(0);
  EXPECT_EQ(cols[0], 2u);
  EXPECT_EQ(cols[1], 5u);
  EXPECT_EQ(cols[2], 8u);
  EXPECT_TRUE(m.validate());
}

TEST(CsrBuilder, SumsDuplicateColumns) {
  CsrBuilder b(4);
  b.add_row({{1, 1.0f}, {1, 2.5f}, {3, 1.0f}});
  const auto m = b.build();
  EXPECT_EQ(m.row_nnz(0), 2u);
  EXPECT_FLOAT_EQ(m.row_values(0)[0], 3.5f);
}

TEST(CsrBuilder, EmptyRowsAllowed) {
  CsrBuilder b(4);
  b.add_row({});
  b.add_row({{0, 1.0f}});
  b.add_row({});
  const auto m = b.build();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.row_nnz(0), 0u);
  EXPECT_EQ(m.row_nnz(1), 1u);
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_TRUE(m.validate());
}

TEST(CsrBuilder, IndicatorRow) {
  CsrBuilder b(8);
  b.add_indicator_row({7, 1, 4});
  const auto m = b.build();
  EXPECT_EQ(m.row_nnz(0), 3u);
  for (float v : m.row_values(0)) EXPECT_FLOAT_EQ(v, 1.0f);
}

TEST(CsrBuilder, BuildResetsBuilder) {
  CsrBuilder b(4);
  b.add_row({{0, 1.0f}});
  auto m1 = b.build();
  b.add_row({{1, 2.0f}});
  auto m2 = b.build();
  EXPECT_EQ(m1.rows(), 1u);
  EXPECT_EQ(m2.rows(), 1u);
  EXPECT_EQ(m2.row_cols(0)[0], 1u);
}

TEST(CsrMatrix, RangeNnz) {
  CsrBuilder b(4);
  b.add_row({{0, 1.0f}});
  b.add_row({{0, 1.0f}, {1, 1.0f}});
  b.add_row({{2, 1.0f}});
  const auto m = b.build();
  EXPECT_EQ(m.range_nnz(0, 3), 4u);
  EXPECT_EQ(m.range_nnz(1, 2), 2u);
  EXPECT_EQ(m.range_nnz(1, 1), 0u);
}

TEST(CsrMatrix, SliceRows) {
  util::Rng rng(1);
  const auto m = random_csr(10, 6, 0.4, rng);
  const auto slice = m.slice_rows(3, 7);
  EXPECT_EQ(slice.rows(), 4u);
  EXPECT_EQ(slice.cols(), 6u);
  EXPECT_TRUE(slice.validate());
  const auto dense_full = to_dense(m);
  const auto dense_slice = to_dense(slice);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 6; ++c)
      EXPECT_FLOAT_EQ(dense_slice(r, c), dense_full(r + 3, c));
}

TEST(CsrMatrix, SliceEmptyRange) {
  util::Rng rng(2);
  const auto m = random_csr(5, 4, 0.5, rng);
  const auto slice = m.slice_rows(2, 2);
  EXPECT_EQ(slice.rows(), 0u);
  EXPECT_EQ(slice.nnz(), 0u);
}

TEST(CsrMatrix, GatherRows) {
  util::Rng rng(3);
  const auto m = random_csr(8, 5, 0.5, rng);
  std::vector<std::size_t> ids{7, 0, 3, 3};
  const auto g = m.gather_rows(ids);
  EXPECT_EQ(g.rows(), 4u);
  EXPECT_TRUE(g.validate());
  const auto dense_full = to_dense(m);
  const auto dense_g = to_dense(g);
  for (std::size_t i = 0; i < ids.size(); ++i)
    for (std::size_t c = 0; c < 5; ++c)
      EXPECT_FLOAT_EQ(dense_g(i, c), dense_full(ids[i], c));
}

TEST(CsrMatrix, RowContains) {
  CsrBuilder b(10);
  b.add_row({{2, 1.0f}, {5, 1.0f}, {9, 1.0f}});
  const auto m = b.build();
  EXPECT_TRUE(m.row_contains(0, 5));
  EXPECT_FALSE(m.row_contains(0, 4));
}

TEST(CsrMatrix, AvgRowNnz) {
  CsrBuilder b(4);
  b.add_row({{0, 1.0f}});
  b.add_row({{0, 1.0f}, {1, 1.0f}, {2, 1.0f}});
  const auto m = b.build();
  EXPECT_DOUBLE_EQ(m.avg_row_nnz(), 2.0);
}

TEST(CsrMatrix, ValidateCatchesUnsortedColumns) {
  CsrMatrix bad(1, 4, {0, 2}, {3, 1}, {1.0f, 1.0f});
  EXPECT_FALSE(bad.validate());
}

TEST(CsrMatrix, ValidateCatchesOutOfRangeColumn) {
  CsrMatrix bad(1, 2, {0, 1}, {5}, {1.0f});
  EXPECT_FALSE(bad.validate());
}

TEST(CsrMatrix, EmptyMatrix) {
  CsrMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_EQ(m.avg_row_nnz(), 0.0);
}

class SpmmShapes : public ::testing::TestWithParam<std::tuple<int, int, int, double>> {};

TEST_P(SpmmShapes, SpmmMatchesDenseGemm) {
  const auto [rows, cols, h, density] = GetParam();
  util::Rng rng(rows * 31 + cols);
  const auto x = random_csr(rows, cols, density, rng);
  tensor::Matrix w(cols, h);
  for (auto& v : w.flat()) v = static_cast<float>(rng.uniform(-1, 1));
  tensor::Matrix y_sparse, y_dense;
  spmm(x, w, y_sparse);
  tensor::gemm(to_dense(x), w, y_dense);
  ASSERT_TRUE(y_sparse.same_shape(y_dense));
  for (std::size_t i = 0; i < y_sparse.size(); ++i) {
    EXPECT_NEAR(y_sparse.flat()[i], y_dense.flat()[i], 1e-4f);
  }
}

TEST_P(SpmmShapes, SpmmTMatchesDenseGemm) {
  const auto [rows, cols, h, density] = GetParam();
  util::Rng rng(rows * 17 + cols);
  const auto x = random_csr(rows, cols, density, rng);
  tensor::Matrix d(rows, h);
  for (auto& v : d.flat()) v = static_cast<float>(rng.uniform(-1, 1));
  tensor::Matrix g(cols, h, 0.0f), g_ref;
  spmm_t_accumulate(x, d, g);
  tensor::gemm_at_b(to_dense(x), d, g_ref);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_NEAR(g.flat()[i], g_ref.flat()[i], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpmmShapes,
    ::testing::Values(std::make_tuple(1, 5, 3, 0.5),
                      std::make_tuple(4, 8, 2, 0.25),
                      std::make_tuple(16, 32, 8, 0.1),
                      std::make_tuple(7, 13, 5, 0.9),
                      std::make_tuple(3, 40, 6, 0.02)));

TEST(SparseOps, SpmmTAccumulatesOnExisting) {
  util::Rng rng(5);
  const auto x = random_csr(3, 4, 0.5, rng);
  tensor::Matrix d(3, 2, 1.0f);
  tensor::Matrix g(4, 2, 10.0f), delta(4, 2, 0.0f);
  spmm_t_accumulate(x, d, delta);
  spmm_t_accumulate(x, d, g);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_NEAR(g.flat()[i], 10.0f + delta.flat()[i], 1e-5f);
  }
}

TEST(SparseOps, FlopAndByteCounts) {
  CsrBuilder b(10);
  b.add_row({{1, 1.0f}, {2, 1.0f}});
  b.add_row({{3, 1.0f}});
  const auto x = b.build();
  EXPECT_EQ(spmm_flops(x, 16), 2u * 3u * 16u);
  EXPECT_GT(spmm_bytes(x, 16), 3u * 16u * sizeof(float));
}

TEST(SparseOps, TransposeMatchesDense) {
  util::Rng rng(11);
  const auto x = random_csr(7, 5, 0.4, rng);
  const auto xt = transpose(x);
  EXPECT_EQ(xt.rows(), x.cols());
  EXPECT_EQ(xt.cols(), x.rows());
  EXPECT_EQ(xt.nnz(), x.nnz());
  EXPECT_TRUE(xt.validate());
  const auto d = to_dense(x);
  const auto dt = to_dense(xt);
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c)
      EXPECT_FLOAT_EQ(dt(c, r), d(r, c));
}

TEST(SparseOps, TransposeIsInvolution) {
  util::Rng rng(12);
  const auto x = random_csr(9, 6, 0.3, rng);
  const auto xtt = transpose(transpose(x));
  EXPECT_EQ(xtt.row_ptr(), x.row_ptr());
  EXPECT_EQ(xtt.col_idx(), x.col_idx());
  EXPECT_EQ(xtt.values(), x.values());
}

TEST(SparseOps, TransposeEmptyAndEmptyRows) {
  CsrBuilder b(4);
  b.add_row({});
  b.add_row({{1, 2.0f}});
  const auto xt = transpose(b.build());
  EXPECT_EQ(xt.rows(), 4u);
  EXPECT_EQ(xt.nnz(), 1u);
  EXPECT_EQ(xt.row_nnz(1), 1u);
  EXPECT_FLOAT_EQ(xt.row_values(1)[0], 2.0f);
}

TEST(SparseOps, ColumnNnzCounts) {
  CsrBuilder b(4);
  b.add_row({{0, 1.0f}, {2, 1.0f}});
  b.add_row({{2, 1.0f}});
  const auto counts = column_nnz(b.build());
  EXPECT_EQ(counts, (std::vector<std::size_t>{1, 0, 2, 0}));
}

TEST(SparseOps, FrobeniusNorm) {
  CsrBuilder b(4);
  b.add_row({{0, 3.0f}, {1, 4.0f}});
  EXPECT_DOUBLE_EQ(frobenius_norm(b.build()), 5.0);
}

TEST(SparseOps, DistinctColumns) {
  CsrBuilder b(10);
  b.add_row({{1, 1.0f}, {2, 1.0f}});
  b.add_row({{2, 1.0f}, {7, 1.0f}});
  const auto x = b.build();
  EXPECT_EQ(distinct_columns(x), 3u);
}

// Randomized differential sweep: slicing, gathering, and transposing random
// matrices must always agree with the dense reference.
class RandomCsrSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomCsrSweep, SliceGatherTransposeAgreeWithDense) {
  util::Rng rng(GetParam());
  const auto rows = 2 + rng.next_below(20);
  const auto cols = 2 + rng.next_below(30);
  const double density = rng.uniform(0.02, 0.6);
  const auto m = random_csr(rows, cols, density, rng);
  ASSERT_TRUE(m.validate());
  const auto dense = to_dense(m);

  // Random row-range slice.
  const auto begin = rng.next_below(rows);
  const auto end = begin + rng.next_below(rows - begin + 1);
  const auto slice = m.slice_rows(begin, end);
  ASSERT_TRUE(slice.validate());
  const auto dslice = to_dense(slice);
  for (std::size_t r = 0; r < slice.rows(); ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      ASSERT_FLOAT_EQ(dslice(r, c), dense(begin + r, c));
    }
  }

  // Random gather (with repeats).
  std::vector<std::size_t> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(rng.next_below(rows));
  const auto gathered = m.gather_rows(ids);
  ASSERT_TRUE(gathered.validate());
  const auto dgather = to_dense(gathered);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t c = 0; c < cols; ++c) {
      ASSERT_FLOAT_EQ(dgather(i, c), dense(ids[i], c));
    }
  }

  // Transpose involution + nnz conservation.
  const auto t = transpose(m);
  ASSERT_TRUE(t.validate());
  EXPECT_EQ(t.nnz(), m.nnz());
  const auto tt = transpose(t);
  EXPECT_EQ(tt.col_idx(), m.col_idx());
  EXPECT_EQ(tt.values(), m.values());

  // Column counts from transpose rows match column_nnz.
  const auto counts = column_nnz(m);
  for (std::size_t c = 0; c < cols; ++c) {
    ASSERT_EQ(t.row_nnz(c), counts[c]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCsrSweep,
                         ::testing::Range<std::uint64_t>(1000, 1012));

TEST(SparseOps, SpmmLinearInValues) {
  // spmm(2*X, W) == 2 * spmm(X, W).
  util::Rng rng(31);
  const auto x = random_csr(6, 9, 0.4, rng);
  CsrMatrix x2(x.rows(), x.cols(), std::vector<std::size_t>(x.row_ptr()),
               std::vector<std::uint32_t>(x.col_idx()), [&] {
                 auto v = x.values();
                 for (auto& f : v) f *= 2.0f;
                 return v;
               }());
  tensor::Matrix w(9, 4);
  for (auto& v : w.flat()) v = static_cast<float>(rng.uniform(-1, 1));
  tensor::Matrix y1, y2;
  spmm(x, w, y1);
  spmm(x2, w, y2);
  for (std::size_t i = 0; i < y1.size(); ++i) {
    EXPECT_NEAR(y2.flat()[i], 2.0f * y1.flat()[i], 1e-5f);
  }
}

}  // namespace
}  // namespace hetero::sparse
