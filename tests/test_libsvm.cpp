#include "sparse/libsvm.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "data/synthetic.h"
#include "util/error.h"

namespace hetero::sparse {
namespace {

TEST(Libsvm, ParsesBasicRows) {
  std::istringstream in(
      "1,3 0:0.5 4:1.5\n"
      "2 1:2.0\n");
  const auto ds = read_libsvm(in);
  ASSERT_EQ(ds.num_samples(), 2u);
  EXPECT_EQ(ds.features.cols(), 5u);  // max index + 1
  EXPECT_EQ(ds.labels.cols(), 4u);
  EXPECT_EQ(ds.labels.row_cols(0)[0], 1u);
  EXPECT_EQ(ds.labels.row_cols(0)[1], 3u);
  EXPECT_FLOAT_EQ(ds.features.row_values(0)[1], 1.5f);
}

TEST(Libsvm, HeaderLineSetsDimensions) {
  std::istringstream in(
      "2 100 50\n"
      "0 1:1.0\n"
      "1 2:1.0\n");
  const auto ds = read_libsvm(in);
  EXPECT_EQ(ds.features.cols(), 100u);
  EXPECT_EQ(ds.labels.cols(), 50u);
}

TEST(Libsvm, ExplicitDimensionsOverride) {
  std::istringstream in("0 1:1.0\n");
  const auto ds = read_libsvm(in, 64, 16);
  EXPECT_EQ(ds.features.cols(), 64u);
  EXPECT_EQ(ds.labels.cols(), 16u);
}

TEST(Libsvm, OneBasedIndices) {
  std::istringstream in("0 1:7.0\n");
  const auto ds = read_libsvm(in, 0, 0, /*one_based_indices=*/true);
  EXPECT_EQ(ds.features.row_cols(0)[0], 0u);
  EXPECT_FLOAT_EQ(ds.features.row_values(0)[0], 7.0f);
}

TEST(Libsvm, ZeroIndexInOneBasedFileThrows) {
  std::istringstream in("0 0:7.0\n");
  EXPECT_THROW(read_libsvm(in, 0, 0, true), std::runtime_error);
}

TEST(Libsvm, IndexExceedingDeclaredThrows) {
  std::istringstream in("0 99:1.0\n");
  EXPECT_THROW(read_libsvm(in, 10, 10), std::runtime_error);
}

TEST(Libsvm, SkipsCommentsAndBlanks) {
  std::istringstream in(
      "# comment\n"
      "\n"
      "0 1:1.0\n");
  const auto ds = read_libsvm(in);
  EXPECT_EQ(ds.num_samples(), 1u);
}

TEST(Libsvm, MalformedTokenThrows) {
  std::istringstream in("0 1:1.0 garbage\n");
  EXPECT_THROW(read_libsvm(in), std::runtime_error);
}

// ---- malformed-input corpus (untrusted-file hardening) --------------------
// Each row exercises a distinct way real-world files go bad. All must be
// rejected with hetero::ParseError naming the offending line — never parsed
// silently into wrong data (the pre-fix strtoul/strtof paths turned
// "abc:1.0" into feature 0 and "1.0x" into 1.0).

TEST(Libsvm, GarbageFeatureIndexThrowsInsteadOfParsingAsZero) {
  std::istringstream in("0 abc:1.0\n");
  EXPECT_THROW(read_libsvm(in), hetero::ParseError);
}

TEST(Libsvm, LabelWithTrailingGarbageThrows) {
  std::istringstream in("2x 1:1.0\n");
  EXPECT_THROW(read_libsvm(in), hetero::ParseError);
}

TEST(Libsvm, NegativeFeatureIndexThrows) {
  // strtoul silently negates "-1" into 2^64-1; the strict parser rejects it.
  std::istringstream in("0 -1:1.0\n");
  EXPECT_THROW(read_libsvm(in), hetero::ParseError);
}

TEST(Libsvm, OverflowingFeatureIndexThrows) {
  std::istringstream in("0 99999999999:1.0\n");
  EXPECT_THROW(read_libsvm(in), hetero::ParseError);
}

TEST(Libsvm, ValueWithTrailingGarbageThrows) {
  std::istringstream in("0 1:1.0x\n");
  EXPECT_THROW(read_libsvm(in), hetero::ParseError);
}

TEST(Libsvm, NonFiniteValueThrows) {
  std::istringstream in("0 1:nan\n");
  EXPECT_THROW(read_libsvm(in), hetero::ParseError);
  std::istringstream in2("0 1:inf\n");
  EXPECT_THROW(read_libsvm(in2), hetero::ParseError);
}

TEST(Libsvm, ErrorNamesTheOffendingLine) {
  std::istringstream in(
      "0 1:1.0\n"
      "0 1:1.0\n"
      "0 bad:1.0\n");
  try {
    read_libsvm(in);
    FAIL() << "expected ParseError";
  } catch (const hetero::ParseError& e) {
    EXPECT_EQ(e.source(), "libsvm");
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Libsvm, IndexAtDeclaredBoundThrowsWithLine) {
  std::istringstream in("0 10:1.0\n");
  try {
    read_libsvm(in, /*num_features=*/10, /*num_labels=*/10);
    FAIL() << "expected ParseError";
  } catch (const hetero::ParseError& e) {
    EXPECT_EQ(e.line(), 1u);
  }
}

TEST(Libsvm, OverflowingHeaderCountThrows) {
  // All-digit tokens, so this IS shaped like a header — the count must
  // still go through the strict (range-checked) parser.
  std::istringstream in("2 99999999999999999999 5\n0 1:1.0\n");
  EXPECT_THROW(read_libsvm(in), hetero::ParseError);
}

TEST(Libsvm, RoundTripPreservesData) {
  // Generate a synthetic dataset, write it, read it back, compare.
  auto cfg = data::tiny_profile();
  cfg.num_train = 50;
  cfg.num_test = 10;
  const auto ds = data::generate_xml_dataset(cfg);

  std::stringstream buffer;
  write_libsvm(buffer, ds.train);
  const auto back = read_libsvm(buffer);

  ASSERT_EQ(back.num_samples(), ds.train.num_samples());
  EXPECT_EQ(back.features.cols(), ds.train.features.cols());
  EXPECT_EQ(back.labels.cols(), ds.train.labels.cols());
  EXPECT_EQ(back.features.nnz(), ds.train.features.nnz());
  for (std::size_t r = 0; r < back.num_samples(); ++r) {
    const auto a = back.features.row_cols(r);
    const auto b = ds.train.features.row_cols(r);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]);
      EXPECT_NEAR(back.features.row_values(r)[i],
                  ds.train.features.row_values(r)[i], 1e-4f);
    }
    const auto la = back.labels.row_cols(r);
    const auto lb = ds.train.labels.row_cols(r);
    ASSERT_EQ(la.size(), lb.size());
    for (std::size_t i = 0; i < la.size(); ++i) EXPECT_EQ(la[i], lb[i]);
  }
}

TEST(Libsvm, FileRoundTrip) {
  auto cfg = data::tiny_profile();
  cfg.num_train = 20;
  cfg.num_test = 5;
  const auto ds = data::generate_xml_dataset(cfg);
  const std::string path = ::testing::TempDir() + "/ds.svm";
  write_libsvm_file(path, ds.train);
  const auto back = read_libsvm_file(path);
  EXPECT_EQ(back.num_samples(), ds.train.num_samples());
  EXPECT_EQ(back.features.nnz(), ds.train.features.nnz());
  std::remove(path.c_str());
}

TEST(Libsvm, MissingFileThrows) {
  EXPECT_THROW(read_libsvm_file("/nonexistent/path.svm"), std::runtime_error);
}

}  // namespace
}  // namespace hetero::sparse
