// Fault-tolerance subsystem tests: fault plans, injection, elastic
// membership (degraded merging), OOM clamping, and checkpointed recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "comm/quant.h"
#include "core/adaptive_sgd.h"
#include "core/merging.h"
#include "core/runtime.h"
#include "data/synthetic.h"
#include "fault/checkpoint.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "sim/profiles.h"
#include "sim/trace.h"
#include "util/error.h"
#include "util/rng.h"

namespace hetero {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  FaultTest() : dataset_(data::generate_xml_dataset(data::tiny_profile())) {}

  core::TrainerConfig config() const {
    core::TrainerConfig cfg;
    cfg.hidden = 16;
    cfg.batch_max = 32;
    cfg.batches_per_megabatch = 8;
    cfg.eval_samples = 100;
    cfg.compute_scale = 100.0;
    cfg.num_megabatches = 4;
    return cfg;
  }

  static std::string temp_path(const std::string& name) {
    return ::testing::TempDir() + name;
  }

  data::XmlDataset dataset_;
};

// ---- fault plans ----------------------------------------------------------

TEST_F(FaultTest, PlanParsesAllEventKinds) {
  const auto plan = fault::FaultPlan::parse(
      "slow@0.5+1.0x0.4:gpu0;stall@1.0+0.25:gpu2;crash@2.5:gpu1;"
      "join@4.0:gpu1;oom@0.25+3.0x0.5:gpu3");
  ASSERT_EQ(plan.events.size(), 5u);
  // Sorted by time.
  EXPECT_EQ(plan.events[0].kind, fault::FaultKind::kOom);
  EXPECT_DOUBLE_EQ(plan.events[0].time, 0.25);
  EXPECT_EQ(plan.events[0].device, 3u);
  EXPECT_EQ(plan.events[1].kind, fault::FaultKind::kSlowdown);
  EXPECT_DOUBLE_EQ(plan.events[1].duration, 1.0);
  EXPECT_DOUBLE_EQ(plan.events[1].factor, 0.4);
  EXPECT_EQ(plan.events[4].kind, fault::FaultKind::kJoin);
  EXPECT_NO_THROW(plan.validate(4));
}

TEST_F(FaultTest, PlanRoundTripsThroughToString) {
  const auto plan = fault::FaultPlan::parse(
      "slow@0.125+0.75x0.333:gpu1;crash@2.5:gpu1;join@3.75:gpu1");
  const auto reparsed = fault::FaultPlan::parse(plan.to_string());
  ASSERT_EQ(reparsed.events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(reparsed.events[i].kind, plan.events[i].kind);
    EXPECT_EQ(reparsed.events[i].device, plan.events[i].device);
    EXPECT_DOUBLE_EQ(reparsed.events[i].time, plan.events[i].time);
    EXPECT_DOUBLE_EQ(reparsed.events[i].duration, plan.events[i].duration);
    EXPECT_DOUBLE_EQ(reparsed.events[i].factor, plan.events[i].factor);
  }
}

TEST_F(FaultTest, PlanRejectsMalformedSpecs) {
  EXPECT_THROW(fault::FaultPlan::parse("melt@1.0:gpu0"),
               hetero::ParseError);
  EXPECT_THROW(fault::FaultPlan::parse("crash@:gpu0"), hetero::ParseError);
  EXPECT_THROW(fault::FaultPlan::parse("crash@1.0"), hetero::ParseError);
  EXPECT_THROW(fault::FaultPlan::parse("crash@1.0:cpu0"),
               hetero::ParseError);
  EXPECT_THROW(fault::FaultPlan::parse("slow@1.0+abcx0.5:gpu0"),
               hetero::ParseError);
}

TEST_F(FaultTest, PlanValidateCatchesBadMembershipAndWindows) {
  // Crash of an already-dead device.
  EXPECT_THROW(
      fault::FaultPlan::parse("crash@1.0:gpu1;crash@2.0:gpu1").validate(2),
      hetero::ParseError);
  // Join of an alive device.
  EXPECT_THROW(fault::FaultPlan::parse("join@1.0:gpu0").validate(2),
               hetero::ParseError);
  // Device index out of range.
  EXPECT_THROW(fault::FaultPlan::parse("crash@1.0:gpu5").validate(2),
               hetero::ParseError);
  // Slowdown without a duration; factor out of range.
  EXPECT_THROW(fault::FaultPlan::parse("slow@1.0x0.5:gpu0").validate(2),
               hetero::ParseError);
  EXPECT_THROW(fault::FaultPlan::parse("slow@1.0+1.0x1.5:gpu0").validate(2),
               hetero::ParseError);
  // A plan may not kill every device.
  EXPECT_THROW(
      fault::FaultPlan::parse("crash@1.0:gpu0;crash@1.0:gpu1").validate(2),
      hetero::ParseError);
}

TEST_F(FaultTest, RandomPlanIsSeededAndSparesDeviceZero) {
  fault::RandomFaultConfig rcfg;
  rcfg.horizon = 8.0;
  rcfg.slowdown_rate = 2.0;
  rcfg.stall_rate = 1.0;
  rcfg.crash_fraction = 0.5;
  rcfg.rejoin = true;
  const auto a = fault::FaultPlan::random(4, rcfg, 7);
  const auto b = fault::FaultPlan::random(4, rcfg, 7);
  const auto c = fault::FaultPlan::random(4, rcfg, 8);
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_NE(a.to_string(), c.to_string());
  EXPECT_FALSE(a.empty());
  EXPECT_NO_THROW(a.validate(4));
  for (const auto& ev : a.events) {
    if (ev.kind == fault::FaultKind::kCrash) {
      EXPECT_NE(ev.device, 0u);
    }
  }
}

// ---- scheduling around faulted devices (satellite 2) ----------------------

TEST_F(FaultTest, NoDispatchInsideStallOrAfterCrash) {
  auto cfg = config();
  // Healthy probe run to scale the fault times to the run's actual span.
  core::AdaptiveSgdTrainer probe(dataset_, cfg, sim::v100_heterogeneous(3));
  const double span = probe.train().total_vtime;
  const double stall_end = 0.3 * span;
  const double crash_at = 0.5 * span;

  core::AdaptiveSgdTrainer trainer(dataset_, cfg,
                                   sim::v100_heterogeneous(3));
  fault::FaultPlan plan;
  plan.events.push_back(
      {fault::FaultKind::kStall, 0, 0.0, stall_end, 1.0, 0});
  plan.events.push_back({fault::FaultKind::kCrash, 1, crash_at, 0.0, 1.0, 0});
  fault::FaultInjector(plan).arm(trainer.runtime());

  sim::Tracer tracer;
  trainer.runtime().set_tracer(&tracer);
  const auto result = trainer.train();

  ASSERT_GT(tracer.size(), 0u);
  for (const auto& ev : tracer.events()) {
    if (ev.category != "compute") continue;
    if (ev.device == 0) {
      EXPECT_FALSE(ev.start >= 0.0 && ev.start < stall_end)
          << "compute started inside gpu0's stall window at " << ev.start;
    }
    if (ev.device == 1) {
      EXPECT_LT(ev.start, crash_at) << "compute started on crashed gpu1";
    }
  }
  EXPECT_EQ(result.faults.stalls, 1u);
  EXPECT_EQ(result.faults.crashes, 1u);
  EXPECT_GE(result.faults.degraded_merges, 1u);
  // The crashed replica is out of the merge group by the end.
  EXPECT_EQ(result.curve.back().alive_gpus, 2u);
}

TEST_F(FaultTest, NextFreeGpuSkipsStalledDeviceUntilWindowEnds) {
  core::MultiGpuRuntime rt(dataset_, config(), sim::v100_heterogeneous(2));
  rt.gpu(0).add_stall(0.0, 5.0);
  // Both devices idle at t=0, but gpu0 cannot start work before 5.0.
  EXPECT_EQ(rt.next_free_gpu(), 1u);
  EXPECT_DOUBLE_EQ(rt.gpu_free_at(0), 5.0);
}

TEST_F(FaultTest, AllReplicasCrashedThrows) {
  auto cfg = config();
  core::AdaptiveSgdTrainer trainer(dataset_, cfg,
                                   sim::v100_heterogeneous(2));
  trainer.runtime().schedule_crash(0, 0.0);
  trainer.runtime().schedule_crash(1, 0.0);
  EXPECT_THROW(trainer.train(), std::runtime_error);
}

// ---- degraded-mode merging (tentpole + satellite 3) -----------------------

TEST_F(FaultTest, CrashRenormalizationBitIdenticalToSurvivorOracle) {
  for (const bool sparse : {false, true}) {
    auto cfg = config();
    cfg.sparse_merge = sparse;
    core::MultiGpuRuntime rt(dataset_, cfg, sim::v100_heterogeneous(3));
    for (int i = 0; i < 6; ++i) {
      const auto g = static_cast<std::size_t>(i % 3);
      rt.run_update_step(g, rt.next_batch(32), 0.2, rt.gpu_free_at(g));
    }
    rt.math_barrier();
    const auto r0 = rt.replica(0).to_flat();
    const auto r2 = rt.replica(2).to_flat();
    auto oracle_global = rt.global_model().to_flat();
    auto oracle_prev = rt.prev_global_model().to_flat();

    double now = 0.0;
    for (std::size_t g = 0; g < 3; ++g) {
      now = std::max(now, rt.gpu(g).device_free_at());
    }
    rt.schedule_crash(1, now);
    const auto crashed = rt.apply_crashes_until(now);
    ASSERT_EQ(crashed, (std::vector<std::size_t>{1}));
    EXPECT_FALSE(rt.replica_alive(1));
    EXPECT_EQ(rt.num_alive(), 2u);

    const std::vector<double> survivor_w{0.7, 0.3};
    const std::vector<std::size_t> alive_idx{0, 2};
    const auto full = core::expand_alive_weights(survivor_w, alive_idx, 3);
    EXPECT_EQ(full, (std::vector<double>{0.7, 0.0, 0.3}));
    rt.merge_and_update(full, now);

    // Survivor-only oracle: the fused merge kernel applied to exactly the
    // two surviving replicas with the compacted weights.
    const float* bases[2] = {r0.data(), r2.data()};
    const core::MergeUpdate u{survivor_w, cfg.momentum_gamma,
                              cfg.enable_momentum};
    core::merge_segment(std::span<const float* const>(bases, 2),
                        oracle_global.size(), u,
                        {oracle_global.data(), oracle_global.size()},
                        {oracle_prev.data(), oracle_prev.size()},
                        /*min_shards=*/1, {});
    EXPECT_EQ(rt.global_model().to_flat(), oracle_global)
        << "sparse=" << sparse;
    EXPECT_EQ(rt.prev_global_model().to_flat(), oracle_prev)
        << "sparse=" << sparse;
    EXPECT_EQ(rt.fault_stats().degraded_merges, 1u);
  }
}

// Satellite 3: an N-replica run in which one replica crashes mid-stream is
// bit-identical to an (N-1)-replica run started from the pre-crash global
// model, with the crashed replica's batches drawn and discarded.
TEST_F(FaultTest, CrashRunMatchesSurvivorOnlyRun) {
  for (const bool sparse : {false, true}) {
    auto cfg = config();
    cfg.sparse_merge = sparse;

    // --- run A: 3 replicas, gpu1 crashes before the second merge -----------
    core::MultiGpuRuntime a(dataset_, cfg, sim::v100_heterogeneous(3));
    // Phase 1 (healthy): 6 steps round-robin, merge over all three.
    for (int i = 0; i < 6; ++i) {
      const auto g = static_cast<std::size_t>(i % 3);
      a.run_update_step(g, a.next_batch(32), 0.2, a.gpu_free_at(g));
    }
    a.math_barrier();
    double sync_a = 0.0;
    for (std::size_t g = 0; g < 3; ++g) {
      sync_a = std::max(sync_a, a.gpu(g).device_free_at());
    }
    const std::vector<double> healthy_w{1.0 / 3, 1.0 / 3, 1.0 / 3};
    a.merge_and_update(healthy_w, sync_a);
    const std::size_t phase1_samples = a.samples_served();

    // --- run B: 2 replicas seeded from A's post-phase-1 state --------------
    core::MultiGpuRuntime b(dataset_, cfg, sim::v100_heterogeneous(2));
    b.global_model().copy_from(a.global_model());
    b.prev_global_model().copy_from(a.prev_global_model());
    b.broadcast_global();
    b.skip_samples(phase1_samples);

    // Phase 2: gpu1 is dead on A (killed at its current clock); B replays
    // the same dispatch schedule, drawing and discarding gpu1's batches.
    a.schedule_crash(1, a.gpu(1).device_free_at());
    for (int i = 0; i < 6; ++i) {
      const auto g = static_cast<std::size_t>(i % 3);
      auto batch_a = a.next_batch(32);
      if (g == 1) {
        EXPECT_THROW(
            a.run_update_step(1, std::move(batch_a), 0.2, a.gpu_free_at(1)),
            sim::DeviceUnavailable);
        b.next_batch(32);  // discard the crashed replica's batch
        continue;
      }
      a.run_update_step(g, std::move(batch_a), 0.2, a.gpu_free_at(g));
      const std::size_t bg = g == 0 ? 0 : 1;
      b.run_update_step(bg, b.next_batch(32), 0.2, b.gpu_free_at(bg));
    }
    a.math_barrier();
    b.math_barrier();

    double all_free_a = 0.0;
    for (std::size_t g = 0; g < 3; ++g) {
      all_free_a = std::max(all_free_a, a.gpu(g).device_free_at());
    }
    ASSERT_EQ(a.apply_crashes_until(all_free_a),
              (std::vector<std::size_t>{1}));

    const std::vector<double> survivor_w{0.6, 0.4};
    const auto full =
        core::expand_alive_weights(survivor_w, std::vector<std::size_t>{0, 2},
                                   3);
    a.merge_and_update(full, all_free_a);

    double sync_b = 0.0;
    for (std::size_t g = 0; g < 2; ++g) {
      sync_b = std::max(sync_b, b.gpu(g).device_free_at());
    }
    b.merge_and_update(survivor_w, sync_b);

    EXPECT_EQ(a.global_model().to_flat(), b.global_model().to_flat())
        << "sparse=" << sparse;
    EXPECT_EQ(a.prev_global_model().to_flat(),
              b.prev_global_model().to_flat())
        << "sparse=" << sparse;
  }
}

// ---- OOM clamping (satellite 1) -------------------------------------------

TEST_F(FaultTest, OomClampsBatchToLargestThatFits) {
  auto cfg = config();
  core::AdaptiveSgdTrainer trainer(dataset_, cfg,
                                   sim::v100_heterogeneous(2));
  auto& rt = trainer.runtime();
  // Cap gpu1's memory so its resident state plus an 8-sample step fits but
  // the full 32-sample step does not.
  const double avg_nnz = dataset_.train.features.avg_row_nnz();
  const auto cap = 2 * rt.global_model().num_bytes() +
                   rt.global_model().step_memory_bytes(8, avg_nnz);
  rt.gpu(1).add_memory_cap(0.0, std::numeric_limits<double>::infinity(), cap);

  const auto result = trainer.train();
  EXPECT_GE(result.faults.oom_clamps, 1u);
  const auto& sgd = trainer.sgd_state();
  EXPECT_LT(sgd[1].batch_size, 32u);
  EXPECT_GE(sgd[1].batch_size, 1u);
  // The clamped learning rate follows the linear scaling rule downward.
  EXPECT_LT(sgd[1].learning_rate, cfg.learning_rate);
  // The run completed all mega-batches despite the pressure.
  EXPECT_EQ(result.curve.back().megabatch, cfg.num_megabatches);
}

// ---- crash + rejoin at the trainer level ----------------------------------

TEST_F(FaultTest, CrashThenJoinShrinksAndRestoresMembership) {
  auto cfg = config();
  cfg.num_megabatches = 6;

  // Healthy run to place the crash/join times inside the run.
  core::AdaptiveSgdTrainer healthy(dataset_, cfg,
                                   sim::v100_heterogeneous(3));
  const auto healthy_result = healthy.train();
  const double total = healthy_result.total_vtime;

  core::AdaptiveSgdTrainer trainer(dataset_, cfg,
                                   sim::v100_heterogeneous(3));
  fault::FaultPlan plan;
  plan.events.push_back(
      {fault::FaultKind::kCrash, 1, 0.35 * total, 0.0, 1.0, 0});
  plan.events.push_back(
      {fault::FaultKind::kJoin, 1, 0.6 * total, 0.0, 1.0, 0});
  fault::FaultInjector(plan).arm(trainer.runtime());

  const auto result = trainer.train();
  EXPECT_EQ(result.faults.crashes, 1u);
  EXPECT_EQ(result.faults.joins, 1u);
  EXPECT_GE(result.faults.degraded_merges, 1u);
  EXPECT_GT(result.faults.recovery_seconds, 0.0);

  std::size_t min_alive = 3;
  for (const auto& p : result.curve) {
    min_alive = std::min(min_alive, p.alive_gpus);
  }
  EXPECT_EQ(min_alive, 2u);
  EXPECT_EQ(result.curve.back().alive_gpus, 3u);
  // The rejoined replica restarts at b_max with the base learning rate.
  EXPECT_EQ(trainer.sgd_state()[1].batch_size, cfg.batch_max);
}

TEST_F(FaultTest, SamePlanSameSeedReproducesBitIdenticalRuns) {
  const auto run = [&]() {
    auto cfg = config();
    core::AdaptiveSgdTrainer trainer(dataset_, cfg,
                                     sim::v100_heterogeneous(3));
    fault::FaultInjector(
        fault::FaultPlan::parse("slow@0.2+0.4x0.5:gpu2;crash@0.9:gpu1"))
        .arm(trainer.runtime());
    auto result = trainer.train();
    return std::make_pair(std::move(result),
                          trainer.runtime().global_model().to_flat());
  };
  const auto [r1, m1] = run();
  const auto [r2, m2] = run();
  EXPECT_EQ(m1, m2);
  ASSERT_EQ(r1.curve.size(), r2.curve.size());
  for (std::size_t i = 0; i < r1.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.curve[i].vtime, r2.curve[i].vtime);
    EXPECT_DOUBLE_EQ(r1.curve[i].top1, r2.curve[i].top1);
    EXPECT_EQ(r1.curve[i].alive_gpus, r2.curve[i].alive_gpus);
  }
  EXPECT_EQ(r1.faults.crashes, r2.faults.crashes);
  EXPECT_EQ(r1.faults.degraded_merges, r2.faults.degraded_merges);
  EXPECT_DOUBLE_EQ(r1.faults.recovery_seconds, r2.faults.recovery_seconds);
}

// ---- checkpointed recovery (tentpole) -------------------------------------

TEST_F(FaultTest, CheckpointFileRoundTripsAllFields) {
  auto cfg = config();
  cfg.num_megabatches = 2;
  core::AdaptiveSgdTrainer trainer(dataset_, cfg,
                                   sim::v100_heterogeneous(2));
  trainer.train();
  const auto ckpt = fault::capture_checkpoint(trainer);

  const auto path = temp_path("fault_roundtrip.ckpt");
  fault::save_checkpoint_file(path, ckpt);
  const auto loaded = fault::load_checkpoint_file(path);

  EXPECT_EQ(loaded.seed, ckpt.seed);
  EXPECT_EQ(loaded.megabatches_completed, ckpt.megabatches_completed);
  EXPECT_EQ(loaded.samples_served, ckpt.samples_served);
  EXPECT_EQ(loaded.round_robin_cursor, ckpt.round_robin_cursor);
  EXPECT_DOUBLE_EQ(loaded.vtime, ckpt.vtime);
  EXPECT_DOUBLE_EQ(loaded.best_top1, ckpt.best_top1);
  EXPECT_EQ(loaded.stagnation, ckpt.stagnation);
  ASSERT_EQ(loaded.gpus.size(), ckpt.gpus.size());
  for (std::size_t g = 0; g < ckpt.gpus.size(); ++g) {
    EXPECT_EQ(loaded.gpus[g].batch_size, ckpt.gpus[g].batch_size);
    EXPECT_DOUBLE_EQ(loaded.gpus[g].learning_rate,
                     ckpt.gpus[g].learning_rate);
    EXPECT_EQ(loaded.gpus[g].alive, ckpt.gpus[g].alive);
    EXPECT_DOUBLE_EQ(loaded.gpus[g].busy_seconds, ckpt.gpus[g].busy_seconds);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(loaded.gpus[g].rng.s[i], ckpt.gpus[g].rng.s[i]);
    }
  }
  EXPECT_EQ(loaded.scaling.interval, ckpt.scaling.interval);
  EXPECT_EQ(loaded.scaling.previous, ckpt.scaling.previous);
  EXPECT_EQ(loaded.global_blob, ckpt.global_blob);
  EXPECT_EQ(loaded.prev_global_blob, ckpt.prev_global_blob);
  std::remove(path.c_str());
}

// ---- corrupt / hostile checkpoint bytes (untrusted-input hardening) -------

// A serialized checkpoint small enough to corrupt surgically.
std::string tiny_checkpoint_bytes() {
  fault::TrainingCheckpoint ckpt;
  ckpt.seed = 7;
  ckpt.megabatches_completed = 2;
  ckpt.gpus.resize(2);
  for (std::size_t g = 0; g < ckpt.gpus.size(); ++g) {
    ckpt.gpus[g].batch_size = 32;
    ckpt.gpus[g].rng = util::Rng(g).state();
  }
  ckpt.scaling.previous = {32, 64};
  ckpt.scaling.last_direction = {1, -1};
  ckpt.global_blob = std::string(96, 'G');
  ckpt.prev_global_blob = std::string(96, 'P');
  std::ostringstream out(std::ios::binary);
  fault::save_checkpoint(out, ckpt);
  return out.str();
}

fault::TrainingCheckpoint load_from_bytes(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  return fault::load_checkpoint(in);
}

void write_u64_at(std::string& bytes, std::size_t offset, std::uint64_t v) {
  ASSERT_LE(offset + sizeof(v), bytes.size());
  std::memcpy(bytes.data() + offset, &v, sizeof(v));
}

TEST_F(FaultTest, CorruptCheckpointWrongMagicIsTypedError) {
  auto bytes = tiny_checkpoint_bytes();
  bytes[0] = 'X';
  try {
    load_from_bytes(bytes);
    FAIL() << "expected ParseError";
  } catch (const hetero::ParseError& e) {
    EXPECT_EQ(e.source(), "checkpoint");
    EXPECT_NE(e.offset(), hetero::ParseError::npos);
  }
}

TEST_F(FaultTest, CorruptCheckpointHostileBlobLengthIsTypedErrorNotBadAlloc) {
  // The global-model blob length field sits before the last two
  // size-prefixed blobs. A hostile 2^63 length must be rejected against the
  // remaining stream size BEFORE any allocation happens — the pre-fix code
  // fed it straight into std::string::resize (bad_alloc/length_error).
  auto bytes = tiny_checkpoint_bytes();
  const std::size_t global_len_at = bytes.size() - (8 + 96 + 8 + 96);
  write_u64_at(bytes, global_len_at, std::uint64_t{1} << 63);
  EXPECT_THROW(load_from_bytes(bytes), hetero::ParseError);

  // A length just past the bytes actually present is equally hostile.
  auto near = tiny_checkpoint_bytes();
  write_u64_at(near, global_len_at, 96 + 1024);
  EXPECT_THROW(load_from_bytes(near), hetero::ParseError);
}

TEST_F(FaultTest, CorruptCheckpointHostileGpuCountIsTypedError) {
  // num_gpus lives at byte 64 (magic+version+6 u64/f64 header fields); a
  // corrupt count must fail the remaining-size check, not resize() a
  // multi-exabyte vector.
  auto bytes = tiny_checkpoint_bytes();
  write_u64_at(bytes, 64, std::uint64_t{1} << 62);
  EXPECT_THROW(load_from_bytes(bytes), hetero::ParseError);
}

TEST_F(FaultTest, TruncatedCheckpointTailIsTypedError) {
  const auto bytes = tiny_checkpoint_bytes();
  // Every proper prefix must produce a clean typed error (torn write /
  // partial download), never UB or a crash.
  for (const double frac : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    const auto cut = static_cast<std::size_t>(
        frac * static_cast<double>(bytes.size()));
    EXPECT_THROW(load_from_bytes(bytes.substr(0, cut)), hetero::ParseError)
        << "prefix of " << cut << " bytes";
  }
}

TEST_F(FaultTest, CheckpointUnsupportedVersionIsTypedError) {
  auto bytes = tiny_checkpoint_bytes();
  bytes[4] = 9;  // version u32 follows the 4-byte magic
  EXPECT_THROW(load_from_bytes(bytes), hetero::ParseError);
}

TEST_F(FaultTest, ResumeFromCorruptFileIsTypedError) {
  // End-to-end through the file API --resume-from uses.
  auto bytes = tiny_checkpoint_bytes();
  const auto path = temp_path("fault_corrupt.ckpt");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_THROW(fault::load_checkpoint_file(path), hetero::ParseError);
  std::remove(path.c_str());
}

TEST_F(FaultTest, ResumedRunBitIdenticalToUninterrupted) {
  auto cfg = config();
  cfg.num_megabatches = 6;
  cfg.adaptive_scaling_cadence = true;  // exercise the scheduler snapshot

  // Uninterrupted reference.
  core::AdaptiveSgdTrainer full(dataset_, cfg, sim::v100_heterogeneous(3));
  const auto full_result = full.train();

  // Interrupted run: stop after 3 mega-batches, checkpoint, resume.
  auto cfg3 = cfg;
  cfg3.num_megabatches = 3;
  core::AdaptiveSgdTrainer first_half(dataset_, cfg3,
                                      sim::v100_heterogeneous(3));
  first_half.train();
  const auto path = temp_path("fault_resume.ckpt");
  fault::save_checkpoint_file(path, fault::capture_checkpoint(first_half));

  core::AdaptiveSgdTrainer resumed(dataset_, cfg,
                                   sim::v100_heterogeneous(3));
  fault::restore_checkpoint(resumed, fault::load_checkpoint_file(path));
  const auto resumed_result = resumed.train();

  // The resumed curve re-records the restored boundary, then continues with
  // mega-batches 4..6 — every shared boundary must match bit-exactly.
  ASSERT_EQ(resumed_result.curve.size(), 4u);
  ASSERT_EQ(full_result.curve.size(), 7u);
  for (std::size_t i = 0; i < resumed_result.curve.size(); ++i) {
    const auto& r = resumed_result.curve[i];
    const auto& f = full_result.curve[3 + i];
    EXPECT_EQ(r.megabatch, f.megabatch);
    EXPECT_DOUBLE_EQ(r.vtime, f.vtime) << "megabatch " << f.megabatch;
    EXPECT_EQ(r.samples, f.samples);
    EXPECT_DOUBLE_EQ(r.top1, f.top1) << "megabatch " << f.megabatch;
    EXPECT_DOUBLE_EQ(r.top5, f.top5);
    EXPECT_DOUBLE_EQ(r.test_loss, f.test_loss);
    if (i > 0) {
      EXPECT_DOUBLE_EQ(r.train_loss, f.train_loss);
    }
  }
  EXPECT_EQ(resumed.runtime().global_model().to_flat(),
            full.runtime().global_model().to_flat());
  EXPECT_EQ(resumed.runtime().prev_global_model().to_flat(),
            full.runtime().prev_global_model().to_flat());
  const auto& sgd_full = full.sgd_state();
  const auto& sgd_resumed = resumed.sgd_state();
  for (std::size_t g = 0; g < sgd_full.size(); ++g) {
    EXPECT_EQ(sgd_resumed[g].batch_size, sgd_full[g].batch_size);
    EXPECT_DOUBLE_EQ(sgd_resumed[g].learning_rate,
                     sgd_full[g].learning_rate);
  }
  std::remove(path.c_str());
}

// ---- compressed-merge state in checkpoints (format v2) --------------------

TEST_F(FaultTest, QuantizedResumedRunBitIdenticalToUninterrupted) {
  // The error-feedback residuals are part of the merge state: if the
  // checkpoint dropped them, the resumed run's first merge would quantize
  // different values and diverge bitwise from the uninterrupted run.
  for (const auto precision :
       {comm::MergePrecision::kFp16, comm::MergePrecision::kInt8}) {
    auto cfg = config();
    cfg.num_megabatches = 6;
    cfg.merge_precision = precision;

    core::AdaptiveSgdTrainer full(dataset_, cfg, sim::v100_heterogeneous(3));
    const auto full_result = full.train();

    auto cfg3 = cfg;
    cfg3.num_megabatches = 3;
    core::AdaptiveSgdTrainer first_half(dataset_, cfg3,
                                        sim::v100_heterogeneous(3));
    first_half.train();
    const auto path = temp_path("fault_resume_quant.ckpt");
    fault::save_checkpoint_file(path, fault::capture_checkpoint(first_half));

    core::AdaptiveSgdTrainer resumed(dataset_, cfg,
                                     sim::v100_heterogeneous(3));
    fault::restore_checkpoint(resumed, fault::load_checkpoint_file(path));
    const auto resumed_result = resumed.train();

    ASSERT_EQ(resumed_result.curve.size(), 4u);
    ASSERT_EQ(full_result.curve.size(), 7u);
    for (std::size_t i = 0; i < resumed_result.curve.size(); ++i) {
      EXPECT_DOUBLE_EQ(resumed_result.curve[i].vtime,
                       full_result.curve[3 + i].vtime)
          << comm::precision_name(precision) << " megabatch "
          << full_result.curve[3 + i].megabatch;
      EXPECT_DOUBLE_EQ(resumed_result.curve[i].top1,
                       full_result.curve[3 + i].top1)
          << comm::precision_name(precision);
    }
    EXPECT_EQ(resumed.runtime().global_model().to_flat(),
              full.runtime().global_model().to_flat())
        << comm::precision_name(precision);
    EXPECT_EQ(resumed.runtime().prev_global_model().to_flat(),
              full.runtime().prev_global_model().to_flat());
    for (std::size_t g = 0; g < resumed.runtime().num_gpus(); ++g) {
      const auto a = resumed.runtime().residual_state(g);
      const auto b = full.runtime().residual_state(g);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                               a.size() * sizeof(float)))
          << comm::precision_name(precision) << " residual replica " << g;
    }
    std::remove(path.c_str());
  }
}

TEST_F(FaultTest, CheckpointRoundTripsCompressionState) {
  auto cfg = config();
  cfg.num_megabatches = 2;
  cfg.merge_precision = comm::MergePrecision::kInt8;
  core::AdaptiveSgdTrainer trainer(dataset_, cfg,
                                   sim::v100_heterogeneous(2));
  trainer.train();
  const auto ckpt = fault::capture_checkpoint(trainer);
  EXPECT_EQ(ckpt.compressed, 1u);
  ASSERT_EQ(ckpt.residual_blobs.size(), 2u);
  bool any = false;
  for (const auto& blob : ckpt.residual_blobs) {
    EXPECT_EQ(blob.size(),
              trainer.runtime().global_model().num_parameters() *
                  sizeof(float));
    for (const char c : blob) any |= (c != 0);
  }
  EXPECT_TRUE(any) << "int8 merges must leave a nonzero residual";

  const auto path = temp_path("fault_quant_roundtrip.ckpt");
  fault::save_checkpoint_file(path, ckpt);
  const auto loaded = fault::load_checkpoint_file(path);
  EXPECT_EQ(loaded.compressed, ckpt.compressed);
  EXPECT_EQ(loaded.loss_scale, ckpt.loss_scale);
  EXPECT_EQ(loaded.loss_scale_streak, ckpt.loss_scale_streak);
  EXPECT_EQ(loaded.residual_blobs, ckpt.residual_blobs);
  std::remove(path.c_str());
}

TEST_F(FaultTest, RestoreRejectsCompressionMismatch) {
  auto cfg = config();
  cfg.num_megabatches = 2;
  cfg.merge_precision = comm::MergePrecision::kFp16;
  core::AdaptiveSgdTrainer quant(dataset_, cfg, sim::v100_heterogeneous(2));
  quant.train();
  const auto ckpt = fault::capture_checkpoint(quant);

  // A checkpoint carrying residuals cannot restore into an fp32 runtime.
  auto cfg_fp32 = cfg;
  cfg_fp32.merge_precision = comm::MergePrecision::kFp32;
  core::AdaptiveSgdTrainer plain(dataset_, cfg_fp32,
                                 sim::v100_heterogeneous(2));
  EXPECT_THROW(fault::restore_checkpoint(plain, ckpt), std::runtime_error);

  // The reverse direction is allowed: an fp32 checkpoint restores into a
  // compressed runtime with zero residuals and the default loss scale.
  core::AdaptiveSgdTrainer plain2(dataset_, cfg_fp32,
                                  sim::v100_heterogeneous(2));
  plain2.train();
  const auto plain_ckpt = fault::capture_checkpoint(plain2);
  EXPECT_EQ(plain_ckpt.compressed, 0u);
  core::AdaptiveSgdTrainer quant2(dataset_, cfg, sim::v100_heterogeneous(2));
  // Dirty the error-feedback state first: restore must reset it
  // explicitly rather than trust the runtime to be freshly constructed.
  quant2.runtime().loss_scale_guard().scale = 64.0f;
  quant2.runtime().loss_scale_guard().good_streak = 7;
  for (std::size_t g = 0; g < quant2.runtime().num_gpus(); ++g) {
    auto res = quant2.runtime().residual_state(g);
    ASSERT_FALSE(res.empty());
    res[0] = 0.5f;
  }
  fault::restore_checkpoint(quant2, plain_ckpt);
  for (std::size_t g = 0; g < quant2.runtime().num_gpus(); ++g) {
    for (const float v : quant2.runtime().residual_state(g)) {
      ASSERT_EQ(v, 0.0f);
    }
  }
  EXPECT_EQ(quant2.runtime().loss_scale_guard().scale,
            comm::LossScaleGuard{}.scale);
  EXPECT_EQ(quant2.runtime().loss_scale_guard().good_streak, 0u);
}

TEST_F(FaultTest, CheckpointVersion1StillLoads) {
  // A v1 checkpoint is a v3 one minus the merge-compression section (a
  // single 0 flag byte when uncompressed) and the optimizer section (3
  // metadata bytes + u64 record count when the run used stateless sgd with
  // no captured replicas). Rewrite the version field and strip both.
  auto bytes = tiny_checkpoint_bytes();
  const std::uint32_t v1 = 1;
  std::memcpy(bytes.data() + 4, &v1, sizeof(v1));
  const std::size_t kOptSection = 3 + 8;
  const std::size_t flag_at =
      bytes.size() - (1 + kOptSection + 8 + 96 + 8 + 96);
  ASSERT_EQ(bytes[flag_at], 0);  // the compressed=0 flag
  bytes.erase(flag_at, 1 + kOptSection);
  const auto loaded = load_from_bytes(bytes);
  EXPECT_EQ(loaded.compressed, 0u);
  EXPECT_TRUE(loaded.residual_blobs.empty());
  EXPECT_EQ(loaded.global_blob, std::string(96, 'G'));
  EXPECT_EQ(loaded.prev_global_blob, std::string(96, 'P'));
}

TEST_F(FaultTest, CorruptCheckpointHostileResidualCountIsTypedError) {
  // Build a compressed checkpoint, then blast the residual count field.
  fault::TrainingCheckpoint ckpt;
  ckpt.gpus.resize(1);
  ckpt.compressed = 1;
  ckpt.residual_blobs = {std::string(8, 'R')};
  ckpt.global_blob = std::string(16, 'G');
  ckpt.prev_global_blob = std::string(16, 'P');
  std::ostringstream out(std::ios::binary);
  fault::save_checkpoint(out, ckpt);
  auto bytes = out.str();
  // residual count u64 sits before {8-len + 8 bytes} + the empty optimizer
  // section (3 + 8 bytes) + two 16-byte blobs.
  const std::size_t kOptSection = 3 + 8;
  const std::size_t count_at =
      bytes.size() - (8 + 8 + kOptSection + 8 + 16 + 8 + 16 + 8);
  write_u64_at(bytes, count_at, std::uint64_t{1} << 61);
  EXPECT_THROW(load_from_bytes(bytes), hetero::ParseError);

  // Out-of-range loss scale is rejected as well (f64 before the streak and
  // the residual count).
  auto bad_scale = out.str();
  const std::size_t scale_at =
      bad_scale.size() - (8 + 8 + 8 + 8 + kOptSection + 8 + 16 + 8 + 16 + 8);
  const double huge = 1e300;
  std::memcpy(bad_scale.data() + scale_at, &huge, sizeof(huge));
  EXPECT_THROW(load_from_bytes(bad_scale), hetero::ParseError);
}

TEST_F(FaultTest, QuantizedCrashZeroesResidualOfDeadReplica) {
  auto cfg = config();
  cfg.num_megabatches = 6;
  cfg.merge_precision = comm::MergePrecision::kInt8;

  core::AdaptiveSgdTrainer healthy(dataset_, cfg, sim::v100_heterogeneous(3));
  const double total = healthy.train().total_vtime;
  for (std::size_t g = 0; g < healthy.runtime().num_gpus(); ++g) {
    bool any = false;
    for (const float v : healthy.runtime().residual_state(g)) {
      any |= (v != 0.0f);
    }
    EXPECT_TRUE(any) << "healthy replica " << g;
  }

  // Crash gpu1 mid-run with no rejoin: its residual is zeroed at the crash
  // and never written again, while survivors keep accumulating.
  core::AdaptiveSgdTrainer trainer(dataset_, cfg, sim::v100_heterogeneous(3));
  fault::FaultPlan plan;
  plan.events.push_back(
      {fault::FaultKind::kCrash, 1, 0.35 * total, 0.0, 1.0, 0});
  fault::FaultInjector(plan).arm(trainer.runtime());
  const auto result = trainer.train();
  ASSERT_EQ(result.faults.crashes, 1u);
  for (const float v : trainer.runtime().residual_state(1)) {
    ASSERT_EQ(v, 0.0f);
  }
  bool any = false;
  for (const float v : trainer.runtime().residual_state(0)) {
    any |= (v != 0.0f);
  }
  EXPECT_TRUE(any) << "survivor residual should be nonzero";
}

TEST_F(FaultTest, PeriodicCheckpointHookWritesAtCadenceAndEnd) {
  auto cfg = config();
  cfg.num_megabatches = 3;
  core::AdaptiveSgdTrainer trainer(dataset_, cfg,
                                   sim::v100_heterogeneous(2));
  const auto path = temp_path("fault_periodic.ckpt");
  fault::enable_periodic_checkpoint(trainer, path, 2);
  trainer.train();
  // Written at mega-batch 2 and overwritten at the final (3rd) boundary.
  const auto ckpt = fault::load_checkpoint_file(path);
  EXPECT_EQ(ckpt.megabatches_completed, 3u);
  EXPECT_EQ(ckpt.samples_served, trainer.runtime().samples_served());
  std::remove(path.c_str());
}

TEST_F(FaultTest, RestoreRejectsMismatchedTrainer) {
  auto cfg = config();
  cfg.num_megabatches = 2;
  core::AdaptiveSgdTrainer trainer(dataset_, cfg,
                                   sim::v100_heterogeneous(2));
  trainer.train();
  const auto ckpt = fault::capture_checkpoint(trainer);

  // Wrong GPU count.
  core::AdaptiveSgdTrainer three(dataset_, cfg, sim::v100_heterogeneous(3));
  EXPECT_THROW(fault::restore_checkpoint(three, ckpt), std::runtime_error);
  // Wrong seed.
  auto cfg_seed = cfg;
  cfg_seed.seed = 999;
  core::AdaptiveSgdTrainer other_seed(dataset_, cfg_seed,
                                      sim::v100_heterogeneous(2));
  EXPECT_THROW(fault::restore_checkpoint(other_seed, ckpt),
               std::runtime_error);
}

TEST_F(FaultTest, ResumeWithFaultPlanSkipsAlreadyAppliedEvents) {
  auto cfg = config();
  cfg.num_megabatches = 6;

  // Healthy probe run to place the crash inside the checkpointed half.
  core::AdaptiveSgdTrainer probe(dataset_, cfg, sim::v100_heterogeneous(3));
  const double span = probe.train().total_vtime;
  fault::FaultPlan plan;
  plan.events.push_back(
      {fault::FaultKind::kCrash, 2, 0.25 * span, 0.0, 1.0, 0});

  core::AdaptiveSgdTrainer reference(dataset_, cfg,
                                     sim::v100_heterogeneous(3));
  fault::FaultInjector(plan).arm(reference.runtime());
  const auto ref_result = reference.train();
  ASSERT_EQ(ref_result.faults.crashes, 1u);

  auto cfg3 = cfg;
  cfg3.num_megabatches = 3;
  core::AdaptiveSgdTrainer first_half(dataset_, cfg3,
                                      sim::v100_heterogeneous(3));
  fault::FaultInjector(plan).arm(first_half.runtime());
  first_half.train();
  const auto ckpt = fault::capture_checkpoint(first_half);
  ASSERT_EQ(ckpt.gpus[2].alive, 0u);  // crash applied before the checkpoint

  core::AdaptiveSgdTrainer resumed(dataset_, cfg,
                                   sim::v100_heterogeneous(3));
  fault::restore_checkpoint(resumed, ckpt);
  // Re-arm with the checkpoint vtime: the crash must not fire again.
  fault::FaultInjector(plan).arm(resumed.runtime(), ckpt.vtime);
  const auto resumed_result = resumed.train();
  EXPECT_EQ(resumed_result.faults.crashes, 0u);  // fresh stats, no re-fire
  EXPECT_EQ(resumed.runtime().global_model().to_flat(),
            reference.runtime().global_model().to_flat());
}

// ---- optimizer state: moment merge + checkpoints (format v3) --------------

namespace {

std::vector<float> flat_optimizer_state(nn::Optimizer& opt,
                                        std::size_t slot) {
  std::vector<float> flat;
  for (const auto seg : opt.slot_views(slot)) {
    flat.insert(flat.end(), seg.begin(), seg.end());
  }
  return flat;
}

}  // namespace

// The survivor-renormalized moment merge must equal the oracle computed
// over exactly the surviving replicas: renormalized weights, per-element
// double accumulation in replica index order, one rounding to float.
TEST_F(FaultTest, MomentMergeBitIdenticalToSurvivorOracle) {
  auto cfg = config();
  cfg.optimizer.kind = nn::OptimizerKind::kAdam;
  cfg.moment_merge = core::MomentMerge::kAverage;
  core::MultiGpuRuntime rt(dataset_, cfg, sim::v100_heterogeneous(3));
  for (int i = 0; i < 9; ++i) {
    const auto g = static_cast<std::size_t>(i % 3);
    rt.run_update_step(g, rt.next_batch(32), 0.02, rt.gpu_free_at(g));
  }
  rt.math_barrier();

  double now = 0.0;
  for (std::size_t g = 0; g < 3; ++g) {
    now = std::max(now, rt.gpu(g).device_free_at());
  }
  rt.schedule_crash(1, now);
  ASSERT_EQ(rt.apply_crashes_until(now), (std::vector<std::size_t>{1}));

  // Pre-merge snapshots of the survivors' state.
  std::vector<std::vector<float>> pre0, pre2;
  for (std::size_t slot = 0; slot < 2; ++slot) {
    pre0.push_back(flat_optimizer_state(rt.optimizer(0), slot));
    pre2.push_back(flat_optimizer_state(rt.optimizer(2), slot));
  }
  std::vector<std::uint32_t> steps0(rt.optimizer(0).row_steps().begin(),
                                    rt.optimizer(0).row_steps().end());
  std::vector<std::uint32_t> steps2(rt.optimizer(2).row_steps().begin(),
                                    rt.optimizer(2).row_steps().end());
  const std::uint64_t step0 = rt.optimizer(0).step();
  const std::uint64_t step2 = rt.optimizer(2).step();

  const std::vector<double> survivor_w{0.7, 0.3};
  const auto full = core::expand_alive_weights(
      survivor_w, std::vector<std::size_t>{0, 2}, 3);
  rt.merge_and_update(full, now);

  // Oracle: weights renormalized over the survivors (the perturbation may
  // denormalize Algorithm-2 weights; state must stay a convex combination).
  const double wsum = survivor_w[0] + survivor_w[1];
  const double w0 = survivor_w[0] / wsum;
  const double w2 = survivor_w[1] / wsum;
  for (std::size_t slot = 0; slot < 2; ++slot) {
    std::vector<float> expect(pre0[slot].size());
    for (std::size_t j = 0; j < expect.size(); ++j) {
      expect[j] = static_cast<float>(
          w0 * static_cast<double>(pre0[slot][j]) +
          w2 * static_cast<double>(pre2[slot][j]));
    }
    for (const std::size_t g : {std::size_t{0}, std::size_t{2}}) {
      const auto got = flat_optimizer_state(rt.optimizer(g), slot);
      ASSERT_EQ(got.size(), expect.size());
      EXPECT_EQ(0, std::memcmp(got.data(), expect.data(),
                               got.size() * sizeof(float)))
          << "slot " << slot << " replica " << g;
    }
  }
  // Row counters and dense step take the max over the survivors — written
  // back to both so the survivor set stays bit-equal.
  for (std::size_t r = 0; r < steps0.size(); ++r) {
    const auto want = std::max(steps0[r], steps2[r]);
    EXPECT_EQ(rt.optimizer(0).row_steps()[r], want) << "row " << r;
    EXPECT_EQ(rt.optimizer(2).row_steps()[r], want) << "row " << r;
  }
  EXPECT_EQ(rt.optimizer(0).step(), std::max(step0, step2));
  EXPECT_EQ(rt.optimizer(2).step(), std::max(step0, step2));
  // The crashed replica's state was reset, not merged.
  for (const float x : flat_optimizer_state(rt.optimizer(1), 0)) {
    ASSERT_EQ(x, 0.0f);
  }
}

TEST_F(FaultTest, MomentMergeKeepAndResetPolicies) {
  for (const auto policy :
       {core::MomentMerge::kKeep, core::MomentMerge::kReset}) {
    auto cfg = config();
    cfg.optimizer.kind = nn::OptimizerKind::kAdagrad;
    cfg.moment_merge = policy;
    core::MultiGpuRuntime rt(dataset_, cfg, sim::v100_heterogeneous(2));
    for (int i = 0; i < 4; ++i) {
      const auto g = static_cast<std::size_t>(i % 2);
      rt.run_update_step(g, rt.next_batch(32), 0.1, rt.gpu_free_at(g));
    }
    rt.math_barrier();
    const auto pre = flat_optimizer_state(rt.optimizer(0), 0);
    double now = 0.0;
    for (std::size_t g = 0; g < 2; ++g) {
      now = std::max(now, rt.gpu(g).device_free_at());
    }
    rt.merge_and_update(std::vector<double>{0.5, 0.5}, now);
    const auto post = flat_optimizer_state(rt.optimizer(0), 0);
    if (policy == core::MomentMerge::kKeep) {
      EXPECT_EQ(pre, post);  // local state rides through the merge
    } else {
      for (const float x : post) ASSERT_EQ(x, 0.0f);
      EXPECT_EQ(rt.optimizer(0).step(), 0u);
    }
  }
}

TEST_F(FaultTest, CheckpointV3RoundTripsOptimizerState) {
  auto cfg = config();
  cfg.optimizer.kind = nn::OptimizerKind::kAdam;
  cfg.weight_decay = 1e-4;
  core::AdaptiveSgdTrainer trainer(dataset_, cfg, sim::v100_heterogeneous(3));
  trainer.train();
  const auto ckpt = fault::capture_checkpoint(trainer);
  EXPECT_EQ(ckpt.opt_kind,
            static_cast<std::uint8_t>(nn::OptimizerKind::kAdam));
  EXPECT_EQ(ckpt.opt_num_slots, 2u);
  EXPECT_EQ(ckpt.opt_has_row_steps, 1u);
  ASSERT_EQ(ckpt.opt_replicas.size(), 3u);

  std::ostringstream out(std::ios::binary);
  fault::save_checkpoint(out, ckpt);
  std::istringstream in(out.str(), std::ios::binary);
  const auto loaded = fault::load_checkpoint(in);
  EXPECT_EQ(loaded.opt_kind, ckpt.opt_kind);
  EXPECT_EQ(loaded.opt_num_slots, ckpt.opt_num_slots);
  EXPECT_EQ(loaded.opt_has_row_steps, ckpt.opt_has_row_steps);
  ASSERT_EQ(loaded.opt_replicas.size(), ckpt.opt_replicas.size());
  for (std::size_t g = 0; g < ckpt.opt_replicas.size(); ++g) {
    EXPECT_EQ(loaded.opt_replicas[g].step, ckpt.opt_replicas[g].step);
    EXPECT_EQ(loaded.opt_replicas[g].row_steps,
              ckpt.opt_replicas[g].row_steps);
    ASSERT_EQ(loaded.opt_replicas[g].slots.size(),
              ckpt.opt_replicas[g].slots.size());
    for (std::size_t s = 0; s < ckpt.opt_replicas[g].slots.size(); ++s) {
      const auto& a = ckpt.opt_replicas[g].slots[s];
      const auto& b = loaded.opt_replicas[g].slots[s];
      ASSERT_EQ(a.size(), b.size());
      EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
          << "replica " << g << " slot " << s;
    }
  }
}

TEST_F(FaultTest, AdamResumedRunBitIdenticalToUninterrupted) {
  // The v3 optimizer section is what makes a stateful-optimizer resume
  // exact: if the moments or lazy row counters were dropped, the resumed
  // run's first post-restore step would bias-correct differently and
  // diverge bitwise.
  auto cfg = config();
  cfg.num_megabatches = 6;
  cfg.optimizer.kind = nn::OptimizerKind::kAdamW;
  cfg.learning_rate = 0.02;
  cfg.weight_decay = 1e-4;

  core::AdaptiveSgdTrainer full(dataset_, cfg, sim::v100_heterogeneous(3));
  const auto full_result = full.train();

  auto cfg3 = cfg;
  cfg3.num_megabatches = 3;
  core::AdaptiveSgdTrainer first_half(dataset_, cfg3,
                                      sim::v100_heterogeneous(3));
  first_half.train();
  const auto path = temp_path("fault_resume_adam.ckpt");
  fault::save_checkpoint_file(path, fault::capture_checkpoint(first_half));

  core::AdaptiveSgdTrainer resumed(dataset_, cfg, sim::v100_heterogeneous(3));
  fault::restore_checkpoint(resumed, fault::load_checkpoint_file(path));
  const auto resumed_result = resumed.train();

  ASSERT_EQ(resumed_result.curve.size(), 4u);
  ASSERT_EQ(full_result.curve.size(), 7u);
  for (std::size_t i = 0; i < resumed_result.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(resumed_result.curve[i].top1,
                     full_result.curve[3 + i].top1)
        << "megabatch " << full_result.curve[3 + i].megabatch;
  }
  EXPECT_EQ(resumed.runtime().global_model().to_flat(),
            full.runtime().global_model().to_flat());
  EXPECT_EQ(resumed.runtime().prev_global_model().to_flat(),
            full.runtime().prev_global_model().to_flat());
  for (std::size_t g = 0; g < full.runtime().num_gpus(); ++g) {
    auto& of = full.runtime().optimizer(g);
    auto& orr = resumed.runtime().optimizer(g);
    EXPECT_EQ(orr.step(), of.step()) << "replica " << g;
    const auto rf = of.row_steps();
    const auto rr = orr.row_steps();
    ASSERT_EQ(rf.size(), rr.size());
    EXPECT_EQ(0, std::memcmp(rf.data(), rr.data(),
                             rf.size() * sizeof(std::uint32_t)))
        << "replica " << g;
    for (std::size_t slot = 0; slot < of.num_slots(); ++slot) {
      const auto a = flat_optimizer_state(of, slot);
      const auto b = flat_optimizer_state(orr, slot);
      ASSERT_EQ(a.size(), b.size());
      EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
          << "replica " << g << " slot " << slot;
    }
  }
  std::remove(path.c_str());
}

TEST_F(FaultTest, RestoreRejectsOptimizerKindMismatch) {
  auto cfg = config();
  cfg.optimizer.kind = nn::OptimizerKind::kAdagrad;
  core::AdaptiveSgdTrainer adagrad(dataset_, cfg, sim::v100_heterogeneous(2));
  adagrad.train();
  const auto ckpt = fault::capture_checkpoint(adagrad);

  auto adam_cfg = cfg;
  adam_cfg.optimizer.kind = nn::OptimizerKind::kAdam;
  core::AdaptiveSgdTrainer adam(dataset_, adam_cfg,
                                sim::v100_heterogeneous(2));
  EXPECT_THROW(fault::restore_checkpoint(adam, ckpt), std::runtime_error);
}

TEST_F(FaultTest, CorruptCheckpointHostileOptimizerSectionIsTypedError) {
  auto cfg = config();
  cfg.optimizer.kind = nn::OptimizerKind::kAdam;
  core::AdaptiveSgdTrainer trainer(dataset_, cfg, sim::v100_heterogeneous(2));
  trainer.train();
  const auto ckpt = fault::capture_checkpoint(trainer);
  std::ostringstream out(std::ios::binary);
  fault::save_checkpoint(out, ckpt);
  const std::string bytes = out.str();

  // Locate the optimizer section tail-relative: the two size-prefixed model
  // blobs are always the final records, and the section length follows
  // exactly from the captured struct.
  const std::size_t tail =
      (8 + ckpt.global_blob.size()) + (8 + ckpt.prev_global_blob.size());
  std::size_t section = 3 + 8;
  for (const auto& rep : ckpt.opt_replicas) {
    section += 8;  // step
    section += 8 + rep.row_steps.size() * sizeof(std::uint32_t);
    for (const auto& slot : rep.slots) {
      section += 8 + slot.size() * sizeof(float);
    }
  }
  const std::size_t start = bytes.size() - tail - section;

  const auto expect_parse_error = [&](std::string mutated, const char* what) {
    std::istringstream in(mutated, std::ios::binary);
    EXPECT_THROW(fault::load_checkpoint(in), ParseError) << what;
  };

  // Out-of-range optimizer kind byte.
  auto bad_kind = bytes;
  bad_kind[start] = 0x07;
  expect_parse_error(bad_kind, "kind byte");

  // Kind/shape mismatch: the sgd byte with adam-shaped slot metadata.
  auto sgd_kind = bytes;
  sgd_kind[start] = 0x00;
  expect_parse_error(sgd_kind, "kind vs shape");

  // Hostile row-counter count of replica 0 (would allocate ~2^60 entries
  // if the loader trusted it).
  auto bad_rows = bytes;
  const std::size_t row_count_at = start + 3 + 8 + 8;
  for (int i = 0; i < 8; ++i) {
    bad_rows[row_count_at + i] = static_cast<char>(0xee);
  }
  expect_parse_error(bad_rows, "row-counter count");

  // Hostile element count of replica 0 slot 0 (truncated moment matrix:
  // the count claims more floats than the stream holds).
  auto bad_slot = bytes;
  const std::size_t slot_count_at =
      row_count_at + 8 +
      ckpt.opt_replicas[0].row_steps.size() * sizeof(std::uint32_t);
  for (int i = 0; i < 8; ++i) {
    bad_slot[slot_count_at + i] = static_cast<char>(0xee);
  }
  expect_parse_error(bad_slot, "slot element count");

  // Non-finite moment value: loaded state must be arithmetic-safe.
  auto nan_ckpt = ckpt;
  nan_ckpt.opt_replicas[0].slots[1][3] =
      std::numeric_limits<float>::quiet_NaN();
  std::ostringstream nan_out(std::ios::binary);
  fault::save_checkpoint(nan_out, nan_ckpt);
  expect_parse_error(nan_out.str(), "non-finite moment");

  auto inf_ckpt = ckpt;
  inf_ckpt.opt_replicas[1].slots[0][0] =
      std::numeric_limits<float>::infinity();
  std::ostringstream inf_out(std::ios::binary);
  fault::save_checkpoint(inf_out, inf_ckpt);
  expect_parse_error(inf_out.str(), "infinite moment");

  // The pristine bytes still load.
  std::istringstream ok(bytes, std::ios::binary);
  EXPECT_NO_THROW(fault::load_checkpoint(ok));
}

// ---- node-level fault events (multi-node hierarchy) -----------------------

TEST_F(FaultTest, NodeEventsParseAndRoundTrip) {
  const auto plan = fault::FaultPlan::parse(
      "slow@0.5+1.0x0.4:node1;crash@2.0:node1;partition@4.0+1.5:node0");
  ASSERT_EQ(plan.events.size(), 3u);
  for (const auto& ev : plan.events) EXPECT_TRUE(ev.node_target);
  EXPECT_EQ(plan.events[1].kind, fault::FaultKind::kCrash);
  EXPECT_EQ(plan.events[1].device, 1u);
  EXPECT_EQ(plan.events[2].kind, fault::FaultKind::kPartition);
  EXPECT_DOUBLE_EQ(plan.events[2].duration, 1.5);

  const auto reparsed = fault::FaultPlan::parse(plan.to_string());
  ASSERT_EQ(reparsed.events.size(), plan.events.size());
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    EXPECT_EQ(reparsed.events[i].kind, plan.events[i].kind);
    EXPECT_EQ(reparsed.events[i].device, plan.events[i].device);
    EXPECT_EQ(reparsed.events[i].node_target, plan.events[i].node_target);
    EXPECT_DOUBLE_EQ(reparsed.events[i].time, plan.events[i].time);
    EXPECT_DOUBLE_EQ(reparsed.events[i].duration, plan.events[i].duration);
  }
}

TEST_F(FaultTest, NodeEventValidationRejectsBadPlans) {
  const auto topo = sim::Topology::cluster(2, 2);
  // Node index out of range.
  EXPECT_THROW(fault::FaultPlan::parse("crash@1.0:node2").validate(topo),
               hetero::ParseError);
  // partition is node-level only.
  EXPECT_THROW(
      fault::FaultPlan::parse("partition@1.0+0.5:gpu1").validate(topo),
      hetero::ParseError);
  // partition needs a heal time.
  EXPECT_THROW(fault::FaultPlan::parse("partition@1.0:node1").validate(topo),
               hetero::ParseError);
  // Crashing a node then one of its (already dead) replicas is invalid.
  EXPECT_THROW(
      fault::FaultPlan::parse("crash@1.0:node1;crash@2.0:gpu3").validate(topo),
      hetero::ParseError);
  // Crashing both nodes leaves nobody alive.
  EXPECT_THROW(
      fault::FaultPlan::parse("crash@1.0:node0;crash@1.0:node1").validate(topo),
      hetero::ParseError);
}

TEST_F(FaultTest, NodeEventsExpandToPerReplicaEvents) {
  const auto topo = sim::Topology::cluster(2, 2, 1);  // nodes: 0,0,1,1,0
  const auto plan =
      fault::FaultPlan::parse("crash@1.0:node1;partition@3.0+2.0:node0");
  const auto expanded = plan.expand(topo);
  // node1 crash -> replicas {2,3}; node0 partition -> crash+join on {0,1,4}.
  ASSERT_EQ(expanded.events.size(), 8u);
  for (const auto& ev : expanded.events) {
    EXPECT_FALSE(ev.node_target);
    EXPECT_NE(ev.kind, fault::FaultKind::kPartition);
  }
  EXPECT_EQ(expanded.events[0].kind, fault::FaultKind::kCrash);
  EXPECT_EQ(expanded.events[0].device, 2u);
  EXPECT_EQ(expanded.events[1].device, 3u);
  std::size_t crashes_at_3 = 0, joins_at_5 = 0;
  for (const auto& ev : expanded.events) {
    if (ev.kind == fault::FaultKind::kCrash && ev.time == 3.0) ++crashes_at_3;
    if (ev.kind == fault::FaultKind::kJoin && ev.time == 5.0) ++joins_at_5;
  }
  EXPECT_EQ(crashes_at_3, 3u);
  EXPECT_EQ(joins_at_5, 3u);
}

// Satellite: a whole-node crash armed through the injector produces exactly
// the survivor-renormalized merge — bit-identical to the fused merge kernel
// applied to the surviving node's replicas alone.
TEST_F(FaultTest, WholeNodeCrashRenormalizationMatchesSurvivorOracle) {
  for (const bool sparse : {false, true}) {
    auto cfg = config();
    cfg.sparse_merge = sparse;
    cfg.num_nodes = 2;
    core::MultiGpuRuntime rt(dataset_, cfg, sim::cluster_devices(2, 2));
    ASSERT_EQ(rt.links().topology().num_nodes, 2u);
    for (int i = 0; i < 8; ++i) {
      const auto g = static_cast<std::size_t>(i % 4);
      rt.run_update_step(g, rt.next_batch(32), 0.2, rt.gpu_free_at(g));
    }
    rt.math_barrier();
    const auto r0 = rt.replica(0).to_flat();
    const auto r1 = rt.replica(1).to_flat();
    auto oracle_global = rt.global_model().to_flat();
    auto oracle_prev = rt.prev_global_model().to_flat();

    double now = 0.0;
    for (std::size_t g = 0; g < 4; ++g) {
      now = std::max(now, rt.gpu(g).device_free_at());
    }
    // Kill node 1 (replicas 2 and 3) through the injector's node path.
    fault::FaultPlan plan;
    plan.events.push_back(
        {fault::FaultKind::kCrash, 1, now, 0.0, 1.0, 0, true});
    fault::FaultInjector(plan).arm(rt);
    const auto crashed = rt.apply_crashes_until(now);
    ASSERT_EQ(crashed, (std::vector<std::size_t>{2, 3}));
    EXPECT_EQ(rt.num_alive(), 2u);
    EXPECT_EQ(rt.fault_stats().node_events, 1u);

    const std::vector<double> survivor_w{0.55, 0.45};
    const std::vector<std::size_t> alive_idx{0, 1};
    const auto full = core::expand_alive_weights(survivor_w, alive_idx, 4);
    rt.merge_and_update(full, now);

    const float* bases[2] = {r0.data(), r1.data()};
    const core::MergeUpdate u{survivor_w, cfg.momentum_gamma,
                              cfg.enable_momentum};
    core::merge_segment(std::span<const float* const>(bases, 2),
                        oracle_global.size(), u,
                        {oracle_global.data(), oracle_global.size()},
                        {oracle_prev.data(), oracle_prev.size()},
                        /*min_shards=*/1, {});
    EXPECT_EQ(rt.global_model().to_flat(), oracle_global) << "sparse=" << sparse;
    EXPECT_EQ(rt.prev_global_model().to_flat(), oracle_prev)
        << "sparse=" << sparse;
    EXPECT_EQ(rt.fault_stats().degraded_merges, 1u);
  }
}

// A node partition heals: the node's replicas leave the merge group for the
// outage and are all re-admitted afterwards.
TEST_F(FaultTest, NodePartitionHealsWithFullMembership) {
  auto cfg = config();
  cfg.num_nodes = 2;
  core::AdaptiveSgdTrainer healthy(dataset_, cfg, sim::cluster_devices(2, 2));
  const double total = healthy.train().total_vtime;

  core::AdaptiveSgdTrainer trainer(dataset_, cfg, sim::cluster_devices(2, 2));
  fault::FaultInjector(
      fault::FaultPlan::parse("partition@" + std::to_string(0.3 * total) +
                              "+" + std::to_string(0.3 * total) + ":node1"))
      .arm(trainer.runtime());
  const auto result = trainer.train();
  EXPECT_EQ(result.faults.node_events, 1u);
  EXPECT_EQ(result.faults.crashes, 2u);
  EXPECT_EQ(result.faults.joins, 2u);
  EXPECT_GE(result.faults.degraded_merges, 1u);
  std::size_t min_alive = 4;
  for (const auto& p : result.curve) min_alive = std::min(min_alive, p.alive_gpus);
  EXPECT_EQ(min_alive, 2u);
  EXPECT_EQ(result.curve.back().alive_gpus, 4u);
}

}  // namespace
}  // namespace hetero
