// Cross-cutting invariants, swept over every training method and GPU count
// (parameterized property tests). These pin down the contracts the figures
// rely on: monotone virtual time, exact sample accounting, post-merge
// replica consistency, finite parameters, and cost-model scaling.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "sim/profiles.h"

namespace hetero::core {
namespace {

const data::XmlDataset& dataset() {
  static const data::XmlDataset d = [] {
    auto cfg = data::tiny_profile();
    cfg.num_train = 2000;
    return data::generate_xml_dataset(cfg);
  }();
  return d;
}

TrainerConfig base_config() {
  TrainerConfig cfg;
  cfg.hidden = 16;
  cfg.batch_max = 32;
  cfg.batches_per_megabatch = 12;
  cfg.num_megabatches = 3;
  cfg.learning_rate = 0.3;
  cfg.eval_samples = 150;
  cfg.compute_scale = 1000.0;
  return cfg;
}

using Case = std::tuple<Method, std::size_t>;

class TrainerProperty : public ::testing::TestWithParam<Case> {
 protected:
  static std::unique_ptr<Trainer> make(TrainerConfig cfg) {
    const auto [method, gpus] = GetParam();
    return make_trainer(method, dataset(), cfg,
                        sim::v100_heterogeneous(gpus));
  }
};

TEST_P(TrainerProperty, CurveVirtualTimeStrictlyIncreases) {
  const auto r = make(base_config())->train();
  for (std::size_t i = 1; i < r.curve.size(); ++i) {
    EXPECT_GT(r.curve[i].vtime, r.curve[i - 1].vtime) << i;
  }
}

TEST_P(TrainerProperty, SamplesMonotoneAndMeetBudget) {
  const auto cfg = base_config();
  const auto r = make(cfg)->train();
  for (std::size_t i = 1; i < r.curve.size(); ++i) {
    EXPECT_GE(r.curve[i].samples, r.curve[i - 1].samples);
  }
  // Every method must process at least the mega-batch quota per merge
  // (sync/crossbow round the batch count down to a multiple of n, so allow
  // one round of slack per mega-batch).
  const auto [method, gpus] = GetParam();
  const std::size_t slack = gpus * cfg.batch_max * cfg.num_megabatches;
  EXPECT_GE(r.curve.back().samples + slack,
            cfg.megabatch_samples() * cfg.num_megabatches);
}

TEST_P(TrainerProperty, PerGpuAccountingConsistent) {
  const auto cfg = base_config();
  const auto [method, gpus] = GetParam();
  const auto r = make(cfg)->train();
  std::size_t total_samples = 0;
  for (const auto& g : r.gpus) {
    total_samples += g.total_samples;
    EXPECT_GE(g.busy_seconds, 0.0);
    EXPECT_LE(g.busy_seconds, r.total_vtime + 1e-9);
    EXPECT_EQ(g.batch_size.size(), g.updates.size());
  }
  // The curve counts samples drawn from the stream; the asynchronous
  // trainer may have up to one batch per GPU in flight (drawn, not yet
  // applied) at the measurement point.
  EXPECT_LE(total_samples, r.curve.back().samples);
  EXPECT_GE(total_samples + gpus * cfg.batch_max, r.curve.back().samples);
}

TEST_P(TrainerProperty, GlobalModelStaysFinite) {
  auto trainer = make(base_config());
  trainer->train();
  for (float v : trainer->runtime().global_model().to_flat()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

TEST_P(TrainerProperty, VirtualTimeScalesWithComputeScale) {
  auto cfg = base_config();
  const double t1 = make(cfg)->train().total_vtime;
  cfg.compute_scale *= 4.0;
  const double t4 = make(cfg)->train().total_vtime;
  // Compute dominates at these scales: 4x work -> roughly 3-4x time (some
  // constant comm/launch overhead dilutes it).
  EXPECT_GT(t4, 2.0 * t1);
  EXPECT_LT(t4, 5.0 * t1);
}

TEST_P(TrainerProperty, CurvePassesMatchSamples) {
  const auto r = make(base_config())->train();
  for (const auto& p : r.curve) {
    EXPECT_NEAR(p.passes,
                static_cast<double>(p.samples) /
                    static_cast<double>(dataset().train.num_samples()),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, TrainerProperty,
    ::testing::Combine(::testing::Values(Method::kAdaptive, Method::kElastic,
                                         Method::kSync, Method::kCrossbow,
                                         Method::kAsync),
                       ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      std::string name = to_string(std::get<0>(info.param)) + "_x" +
                         std::to_string(std::get<1>(info.param));
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Merge-based methods only: replica consistency and communication charges.
class MergeProperty : public ::testing::TestWithParam<Method> {};

TEST_P(MergeProperty, ReplicasHoldGlobalModelAfterTraining) {
  auto trainer = make_trainer(GetParam(), dataset(), base_config(),
                              sim::v100_heterogeneous(3));
  trainer->train();
  auto& rt = trainer->runtime();
  for (std::size_t g = 0; g < rt.num_gpus(); ++g) {
    EXPECT_DOUBLE_EQ(rt.replica(g).squared_distance(rt.global_model()), 0.0)
        << "replica " << g;
  }
}

TEST_P(MergeProperty, CommunicationTimeCharged) {
  auto trainer = make_trainer(GetParam(), dataset(), base_config(),
                              sim::v100_heterogeneous(3));
  const auto r = trainer->train();
  EXPECT_GT(r.comm_seconds, 0.0);
  EXPECT_LT(r.comm_seconds, r.total_vtime);
}

INSTANTIATE_TEST_SUITE_P(Methods, MergeProperty,
                         ::testing::Values(Method::kAdaptive,
                                           Method::kElastic),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace hetero::core
