// Internal base for the stateful optimizers (adam/adamw/adagrad): state
// matrices shaped by Model::segment_views() at construction, flat per-slot
// storage addressed per segment, plus the lazy per-row step counters of the
// sparse input layer. Not part of the public nn/ surface — include
// nn/optimizer.h instead.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nn/optimizer.h"

namespace hetero::nn::detail {

class StatefulOptimizer : public Optimizer {
 public:
  StatefulOptimizer(Model& model, std::size_t num_slots, bool lazy_row_steps)
      : input_rows_(model.info().input_rows()),
        input_cols_(model.info().input_cols()) {
    std::size_t offset = 0;
    for (const auto seg : model.segment_views()) {
      seg_offsets_.push_back(offset);
      seg_sizes_.push_back(seg.size());
      offset += seg.size();
    }
    slots_.assign(num_slots, std::vector<float>(offset, 0.0f));
    if (lazy_row_steps) row_steps_.assign(input_rows_, 0);
  }

  std::size_t num_slots() const override { return slots_.size(); }

  std::vector<std::span<float>> slot_views(std::size_t slot) override {
    assert(slot < slots_.size());
    std::vector<std::span<float>> views;
    views.reserve(seg_sizes_.size());
    for (std::size_t seg = 0; seg < seg_sizes_.size(); ++seg) {
      views.push_back({slots_[slot].data() + seg_offsets_[seg],
                       seg_sizes_[seg]});
    }
    return views;
  }

  std::span<std::uint32_t> row_steps() override { return row_steps_; }
  std::uint64_t step() const override { return step_; }
  void set_step(std::uint64_t step) override { step_ = step; }

  void reset_state() override {
    for (auto& slot : slots_) slot.assign(slot.size(), 0.0f);
    row_steps_.assign(row_steps_.size(), 0);
    step_ = 0;
  }

 protected:
  /// 1 / (1 - beta^t): the Adam bias correction, computed in double and
  /// rounded once — the same value for a given (beta, t) on every ISA and
  /// thread count.
  static float bias_correction(double beta, std::uint64_t t) {
    return static_cast<float>(
        1.0 / (1.0 - std::pow(beta, static_cast<double>(t))));
  }

  float* slot_seg(std::size_t slot, std::size_t seg) {
    return slots_[slot].data() + seg_offsets_[seg];
  }

  std::size_t input_rows_ = 0;
  std::size_t input_cols_ = 0;
  std::vector<std::size_t> seg_sizes_;
  std::vector<std::size_t> seg_offsets_;
  std::vector<std::vector<float>> slots_;  // flat num_parameters each
  std::vector<std::uint32_t> row_steps_;   // empty unless lazy (adam/adamw)
  std::uint64_t step_ = 0;
};

std::unique_ptr<Optimizer> make_adam_optimizer(const OptimizerConfig& cfg,
                                               Model& model, bool decoupled);
std::unique_ptr<Optimizer> make_adagrad_optimizer(const OptimizerConfig& cfg,
                                                  Model& model);

}  // namespace hetero::nn::detail
