// Optimizer abstraction: the update rule applied to a model's parameters
// from the gradients staged in its workspace, with per-replica state
// matrices shaped by Model::segment_views().
//
// Four algorithms (DESIGN.md §11):
//   sgd     — delegates to Model::apply_gradients, the fused path that is
//             bit-identical to the pre-refactor sgd_step. No state.
//   adam    — per-coordinate first/second moments with bias correction and
//             coupled L2 (weight decay folded into the gradient).
//   adamw   — Adam with DECOUPLED weight decay: the parameter is shrunk by
//             (1 - lr*wd) multiplicatively, the gradient stays undecayed.
//   adagrad — per-coordinate squared-gradient accumulator, coupled L2.
//
// Lazy touched-row state for segment 0 (SparseAdam semantics): the sparse
// input layer's moments advance ONLY for the rows present in the step's
// SparseGradient, so the fast path stays O(touched) like the SGD update.
// Each row carries its own step counter t_r, incremented when the row is
// touched; bias corrections 1/(1 - beta^t_r) are computed from it, so a row
// skipped for K steps and then revisited behaves exactly like dense Adam
// run on its touched subsequence — the catch-up is exact, not approximate.
// Dense-tail segments (biases, upper layers) advance every step with one
// shared counter.
//
// Lazy weight-decay contract (all optimizers): segment 0 decays only
// batch-touched rows — an untouched row is neither updated nor decayed, on
// any optimizer. The semantics per algorithm:
//   sgd/adagrad — coupled L2. sgd keeps the historical multiplicative form
//     w = (1 - lr*wd)*w - lr*g, which is algebraically w - lr*(g + wd*w)
//     folded into one keep factor (and is what pre-refactor sgd_step
//     computed, preserving bit-identity); adagrad folds wd*w into the
//     gradient BEFORE the accumulator so the decay sees adaptive scaling.
//   adamw — decoupled: w = (1 - lr*wd)*w - lr*adam_update(g); the decay
//     never enters the moments.
//   adam — coupled like adagrad: g' = g + wd*w feeds both moments.
//
// All update arithmetic goes through VecKernels (adam_update /
// adagrad_update / the SGD kernels), so scalar/AVX2/AVX-512 produce
// bit-identical parameters, and the segment-0 loop partitions touched rows
// via kernels::parallel_for_ranges — bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "nn/model.h"

namespace hetero::nn {

enum class OptimizerKind : std::uint8_t {
  kSgd = 0,
  kAdam = 1,
  kAdamW = 2,
  kAdagrad = 3,
};

/// Display / flag / checkpoint name: "sgd", "adam", "adamw", "adagrad".
std::string to_string(OptimizerKind kind);

/// Parses a flag value; nullopt on anything but the four names.
std::optional<OptimizerKind> parse_optimizer_kind(const std::string& text);

/// Parses a checkpoint byte; nullopt when out of range (untrusted input).
std::optional<OptimizerKind> optimizer_kind_from_byte(std::uint8_t b);

struct OptimizerConfig {
  OptimizerKind kind = OptimizerKind::kSgd;
  double beta1 = 0.9;    // adam/adamw first-moment decay
  double beta2 = 0.999;  // adam/adamw second-moment decay
  double eps = 1e-8;     // adam/adamw denominator floor
  double adagrad_eps = 1e-10;
};

/// One replica's update rule + state. Created per replica (and once for the
/// global model of the gradient-aggregating trainers) via make(); state is
/// shaped by the model passed at construction and applies only to models of
/// that architecture.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  virtual OptimizerKind kind() const = 0;

  /// Applies the gradients staged in `ws` to `model` and advances the
  /// state. `model` must match the constructing architecture. Segment 0 is
  /// updated lazily over ws.gradient_views().input's touched rows.
  virtual void apply(Model& model, const ModelWorkspace& ws, float lr,
                     float weight_decay) = 0;

  /// Number of state matrices: 0 (sgd), 1 (adagrad: accumulator), 2
  /// (adam/adamw: first moment then second moment).
  virtual std::size_t num_slots() const = 0;

  /// Per-segment views of state slot `slot` (< num_slots()), aligned with
  /// Model::segment_views() — the moment-merge and checkpoint paths walk
  /// these exactly like parameter segments.
  virtual std::vector<std::span<float>> slot_views(std::size_t slot) = 0;

  /// Per-row lazy step counters for segment 0 (adam/adamw only; empty
  /// otherwise). Length info().input_rows().
  virtual std::span<std::uint32_t> row_steps() = 0;

  /// Dense-tail step counter (steps applied since construction/reset).
  virtual std::uint64_t step() const = 0;
  virtual void set_step(std::uint64_t step) = 0;

  /// Zeroes all state (moments, accumulators, row counters, step). Used
  /// when a replica crashes or (re)joins, and when a checkpoint without
  /// optimizer state restores into this runtime.
  virtual void reset_state() = 0;

  /// Factory. The model defines the state shapes; it is not retained.
  static std::unique_ptr<Optimizer> make(const OptimizerConfig& cfg,
                                         Model& model);
};

}  // namespace hetero::nn
