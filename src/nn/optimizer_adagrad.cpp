// Adagrad over the lazy sparse-state contract (nn/optimizer.h).
//
// The squared-gradient accumulator advances only for touched rows of
// segment 0 — with no bias correction there are no per-row counters to
// maintain; a skipped row's accumulator simply stays put, which IS the
// exact lazy semantics. Weight decay is coupled L2 folded into the
// gradient before the accumulator (g' = g + wd*w), so the decay is scaled
// adaptively like the gradient itself, and untouched rows do not decay
// (the lazy-decay contract in the header).
#include <cassert>
#include <cstdint>
#include <memory>

#include "nn/optimizer_state.h"
#include "tensor/vec/vec.h"
#include "util/kernel_context.h"

namespace hetero::nn::detail {
namespace {

class AdagradOptimizer final : public StatefulOptimizer {
 public:
  AdagradOptimizer(const OptimizerConfig& cfg, Model& model)
      : StatefulOptimizer(model, /*num_slots=*/1, /*lazy_row_steps=*/false),
        eps_(static_cast<float>(cfg.adagrad_eps)) {}

  OptimizerKind kind() const override { return OptimizerKind::kAdagrad; }

  void apply(Model& model, const ModelWorkspace& ws, float lr,
             float weight_decay) override {
    auto segs = model.segment_views();
    assert(segs.size() == seg_sizes_.size());
    const auto views = ws.gradient_views();
    const auto& sg = *views.input;
    assert(sg.logical_rows() == input_rows_);
    assert(sg.cols() == input_cols_);
    const auto& vk = vec::kernels();

    vec::AdagradParams p;
    p.lr = lr;
    p.eps = eps_;
    p.weight_decay = weight_decay;

    // Lazy segment 0: touched rows only.
    float* w0 = segs[0].data();
    float* a0 = slot_seg(0, 0);
    const auto rows = sg.rows();
    const std::size_t h = input_cols_;
    kernels::parallel_for_ranges(
        ws.ctx, rows.size(), rows.size() * h * 3,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t s = begin; s < end; ++s) {
            const std::size_t r = rows[s];
            vk.adagrad_update(w0 + r * h, sg.slot_values(s).data(),
                              a0 + r * h, p, h);
          }
        });

    // Dense tail.
    ++step_;
    for (std::size_t seg = 1; seg < segs.size(); ++seg) {
      assert(views.dense[seg - 1].size() == segs[seg].size());
      vk.adagrad_update(segs[seg].data(), views.dense[seg - 1].data(),
                        slot_seg(0, seg), p, segs[seg].size());
    }
  }

 private:
  float eps_;
};

}  // namespace

std::unique_ptr<Optimizer> make_adagrad_optimizer(const OptimizerConfig& cfg,
                                                  Model& model) {
  return std::make_unique<AdagradOptimizer>(cfg, model);
}

}  // namespace hetero::nn::detail
