#include "nn/mlp.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/train_step.h"
#include "tensor/ops.h"

namespace hetero::nn {

namespace {

ModelInfo make_info(const MlpConfig& cfg) {
  ModelInfo info;
  info.num_features = cfg.num_features;
  info.hidden = {cfg.hidden};
  info.num_classes = cfg.num_classes;
  info.num_parameters = cfg.num_parameters();
  return info;
}

}  // namespace

MlpModel::MlpModel(const MlpConfig& cfg)
    : cfg_(cfg),
      info_(make_info(cfg)),
      w1_(cfg.num_features, cfg.hidden),
      b1_(cfg.hidden, 0.0f),
      w2_(cfg.hidden, cfg.num_classes),
      b2_(cfg.num_classes, 0.0f) {}

void MlpModel::init(util::Rng& rng) {
  tensor::init_gaussian(w1_, 1.0 / std::sqrt(static_cast<double>(
                                 std::max<std::size_t>(1, cfg_.num_features))),
                        rng);
  tensor::init_gaussian(w2_, 1.0 / std::sqrt(static_cast<double>(
                                 std::max<std::size_t>(1, cfg_.hidden))),
                        rng);
  std::fill(b1_.begin(), b1_.end(), 0.0f);
  std::fill(b2_.begin(), b2_.end(), 0.0f);
}

std::unique_ptr<Model> MlpModel::clone() const {
  return std::make_unique<MlpModel>(*this);
}

void MlpModel::copy_from(const Model& other) {
  const auto& src = dynamic_cast<const MlpModel&>(other);
  assert(src.num_parameters() == num_parameters());
  w1_ = src.w1_;
  b1_ = src.b1_;
  w2_ = src.w2_;
  b2_ = src.b2_;
}

std::unique_ptr<ModelWorkspace> MlpModel::make_workspace() const {
  return std::make_unique<Workspace>();
}

std::vector<float> MlpModel::to_flat() const {
  std::vector<float> flat;
  flat.reserve(num_parameters());
  flat.insert(flat.end(), w1_.flat().begin(), w1_.flat().end());
  flat.insert(flat.end(), b1_.begin(), b1_.end());
  flat.insert(flat.end(), w2_.flat().begin(), w2_.flat().end());
  flat.insert(flat.end(), b2_.begin(), b2_.end());
  return flat;
}

void MlpModel::from_flat(std::span<const float> flat) {
  assert(flat.size() == num_parameters());
  const float* p = flat.data();
  std::copy_n(p, w1_.size(), w1_.data());
  p += w1_.size();
  std::copy_n(p, b1_.size(), b1_.data());
  p += b1_.size();
  std::copy_n(p, w2_.size(), w2_.data());
  p += w2_.size();
  std::copy_n(p, b2_.size(), b2_.data());
}

std::vector<std::span<float>> MlpModel::segment_views() {
  return {std::span<float>{w1_.data(), w1_.size()},
          std::span<float>{b1_.data(), b1_.size()},
          std::span<float>{w2_.data(), w2_.size()},
          std::span<float>{b2_.data(), b2_.size()}};
}

double MlpModel::l2_norm_per_parameter() const {
  double ss = tensor::sum_of_squares(w1_.flat());
  ss += tensor::sum_of_squares({b1_.data(), b1_.size()});
  ss += tensor::sum_of_squares(w2_.flat());
  ss += tensor::sum_of_squares({b2_.data(), b2_.size()});
  return std::sqrt(ss) / static_cast<double>(num_parameters());
}

StepStats MlpModel::train_step(const sparse::CsrMatrix& x,
                               const sparse::CsrMatrix& y, float lr,
                               ModelWorkspace& ws, float weight_decay) {
  return sgd_step(*this, x, y, lr, dynamic_cast<Workspace&>(ws),
                  weight_decay);
}

StepStats MlpModel::compute_gradients(const sparse::CsrMatrix& x,
                                      const sparse::CsrMatrix& y,
                                      ModelWorkspace& ws) const {
  return nn::compute_gradients(*this, x, y, dynamic_cast<Workspace&>(ws));
}

void MlpModel::apply_gradients(const ModelWorkspace& ws, float lr,
                               float weight_decay) {
  nn::apply_gradients(*this, dynamic_cast<const Workspace&>(ws), lr,
                      weight_decay);
}

double MlpModel::forward_loss(const sparse::CsrMatrix& x,
                              const sparse::CsrMatrix& y,
                              ModelWorkspace& ws) const {
  return nn::forward_loss(*this, x, y, dynamic_cast<Workspace&>(ws));
}

std::vector<sim::KernelDesc> MlpModel::step_kernels(
    const sparse::CsrMatrix& x) const {
  return nn::step_kernels(cfg_, x);
}

std::size_t MlpModel::step_memory_bytes(std::size_t batch_size,
                                        double avg_nnz) const {
  return nn::step_memory_bytes(cfg_, batch_size, avg_nnz);
}

namespace {

double segment_squared_distance(std::span<const float> a,
                                std::span<const float> b) {
  assert(a.size() == b.size());
  double ss = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    ss += d * d;
  }
  return ss;
}

}  // namespace

double MlpModel::squared_distance(const MlpModel& other) const {
  assert(num_parameters() == other.num_parameters());
  // Segment-by-segment over the parameter tensors in place: no O(params)
  // to_flat() copies just to diff two models.
  return segment_squared_distance(w1_.flat(), other.w1_.flat()) +
         segment_squared_distance({b1_.data(), b1_.size()},
                                  {other.b1_.data(), other.b1_.size()}) +
         segment_squared_distance(w2_.flat(), other.w2_.flat()) +
         segment_squared_distance({b2_.data(), b2_.size()},
                                  {other.b2_.data(), other.b2_.size()});
}

}  // namespace hetero::nn
