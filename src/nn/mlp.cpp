#include "nn/mlp.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tensor/ops.h"

namespace hetero::nn {

MlpModel::MlpModel(const MlpConfig& cfg)
    : cfg_(cfg),
      w1_(cfg.num_features, cfg.hidden),
      b1_(cfg.hidden, 0.0f),
      w2_(cfg.hidden, cfg.num_classes),
      b2_(cfg.num_classes, 0.0f) {}

void MlpModel::init(util::Rng& rng) {
  tensor::init_gaussian(w1_, 1.0 / std::sqrt(static_cast<double>(
                                 std::max<std::size_t>(1, cfg_.num_features))),
                        rng);
  tensor::init_gaussian(w2_, 1.0 / std::sqrt(static_cast<double>(
                                 std::max<std::size_t>(1, cfg_.hidden))),
                        rng);
  std::fill(b1_.begin(), b1_.end(), 0.0f);
  std::fill(b2_.begin(), b2_.end(), 0.0f);
}

std::vector<float> MlpModel::to_flat() const {
  std::vector<float> flat;
  flat.reserve(num_parameters());
  flat.insert(flat.end(), w1_.flat().begin(), w1_.flat().end());
  flat.insert(flat.end(), b1_.begin(), b1_.end());
  flat.insert(flat.end(), w2_.flat().begin(), w2_.flat().end());
  flat.insert(flat.end(), b2_.begin(), b2_.end());
  return flat;
}

void MlpModel::from_flat(std::span<const float> flat) {
  assert(flat.size() == num_parameters());
  const float* p = flat.data();
  std::copy_n(p, w1_.size(), w1_.data());
  p += w1_.size();
  std::copy_n(p, b1_.size(), b1_.data());
  p += b1_.size();
  std::copy_n(p, w2_.size(), w2_.data());
  p += w2_.size();
  std::copy_n(p, b2_.size(), b2_.data());
}

std::vector<std::span<float>> MlpModel::segment_views() {
  return {std::span<float>{w1_.data(), w1_.size()},
          std::span<float>{b1_.data(), b1_.size()},
          std::span<float>{w2_.data(), w2_.size()},
          std::span<float>{b2_.data(), b2_.size()}};
}

double MlpModel::l2_norm_per_parameter() const {
  double ss = tensor::sum_of_squares(w1_.flat());
  ss += tensor::sum_of_squares({b1_.data(), b1_.size()});
  ss += tensor::sum_of_squares(w2_.flat());
  ss += tensor::sum_of_squares({b2_.data(), b2_.size()});
  return std::sqrt(ss) / static_cast<double>(num_parameters());
}

namespace {

double segment_squared_distance(std::span<const float> a,
                                std::span<const float> b) {
  assert(a.size() == b.size());
  double ss = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    ss += d * d;
  }
  return ss;
}

}  // namespace

double MlpModel::squared_distance(const MlpModel& other) const {
  assert(num_parameters() == other.num_parameters());
  // Segment-by-segment over the parameter tensors in place: no O(params)
  // to_flat() copies just to diff two models.
  return segment_squared_distance(w1_.flat(), other.w1_.flat()) +
         segment_squared_distance({b1_.data(), b1_.size()},
                                  {other.b1_.data(), other.b1_.size()}) +
         segment_squared_distance(w2_.flat(), other.w2_.flat()) +
         segment_squared_distance({b2_.data(), b2_.size()},
                                  {other.b2_.data(), other.b2_.size()});
}

}  // namespace hetero::nn
