// Arbitrary-depth sparse-input MLP — the framework-generality extension.
//
// The paper evaluates on the SLIDE testbed's 3-layer MLP (one hidden
// layer), which MlpModel implements; HeteroGPU itself is positioned as a
// framework "for sparse deep learning" in general. DeepMlp provides the
// deeper architectures (sparse input -> H1 -> ... -> Hk -> softmax) with
// the same interface contract: sparse first layer, dense hidden stack,
// multi-label cross-entropy, flat parameter serialization for all-reduce
// merging.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/libsvm.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace hetero::nn {

struct DeepMlpConfig {
  std::size_t num_features = 0;
  std::vector<std::size_t> hidden = {64};  // at least one hidden layer
  std::size_t num_classes = 0;

  std::size_t num_layers() const { return hidden.size() + 1; }
  std::size_t num_parameters() const;
};

class DeepMlp {
 public:
  DeepMlp() = default;
  explicit DeepMlp(const DeepMlpConfig& cfg);

  /// Weights ~ N(0, 1/sqrt(fan_in)), biases zero.
  void init(util::Rng& rng);

  const DeepMlpConfig& config() const { return cfg_; }
  std::size_t num_parameters() const { return cfg_.num_parameters(); }

  std::vector<float> to_flat() const;
  void from_flat(std::span<const float> flat);

  /// One SGD step (forward + backward + update). Returns mean loss.
  double sgd_step(const sparse::CsrMatrix& x, const sparse::CsrMatrix& y,
                  float lr);

  /// Mean multi-label cross-entropy without updating.
  double loss(const sparse::CsrMatrix& x, const sparse::CsrMatrix& y);

  /// Top-1 accuracy over a test prefix.
  double evaluate_top1(const sparse::LabeledDataset& test,
                       std::size_t max_samples = 0,
                       std::size_t eval_batch = 256);

  double l2_norm_per_parameter() const;

  /// Layer weight matrices (layer 0 is the sparse input layer).
  const tensor::Matrix& weights(std::size_t layer) const {
    return weights_[layer];
  }

 private:
  /// Forward into the activation stack; probs end in acts_.back().
  void forward(const sparse::CsrMatrix& x);
  double loss_from_probs(const sparse::CsrMatrix& y) const;

  DeepMlpConfig cfg_;
  std::vector<tensor::Matrix> weights_;          // per layer
  std::vector<std::vector<float>> biases_;       // per layer
  // Scratch: pre-activations and post-activations per layer.
  std::vector<tensor::Matrix> pre_;
  std::vector<tensor::Matrix> acts_;
  std::vector<tensor::Matrix> deltas_;
  tensor::Matrix grad_w_;
  std::vector<float> grad_b_;
};

}  // namespace hetero::nn
