// Arbitrary-depth sparse-input MLP — the framework-generality extension.
//
// The paper evaluates on the SLIDE testbed's 3-layer MLP (one hidden
// layer), which MlpModel implements; HeteroGPU itself is positioned as a
// framework "for sparse deep learning" in general, and the journal version
// evaluates deeper sparse architectures. DeepMlp provides them
// (sparse input -> H1 -> ... -> Hk -> softmax) on the same fast path as
// MlpModel: parallel kernels::Context-routed math, a touched-row
// SparseGradient for the sparse input layer, reused per-layer workspace
// buffers, and in-place segment_views for the sharded/delta merge.
//
// With a single hidden layer, DeepMlp runs the exact same kernel sequence
// in the exact same order as MlpModel, so its results (and virtual-GPU
// costs) are bit-identical to the shallow model — tested in
// tests/test_model_polymorphic.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/model.h"
#include "sparse/sparse_gradient.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace hetero::nn {

struct DeepMlpConfig {
  std::size_t num_features = 0;
  std::vector<std::size_t> hidden = {64};  // at least one hidden layer
  std::size_t num_classes = 0;

  std::size_t num_layers() const { return hidden.size() + 1; }
  std::size_t num_parameters() const;
};

/// DeepMlp's concrete ModelWorkspace: per-layer activation/delta buffers
/// plus the per-layer gradients. The sparse input layer's gradient is a
/// touched-row SparseGradient keyed per batch (no O(F x H1) dense buffer);
/// dense-layer gradients are reused matrices. All buffers persist across
/// steps, so steady-state training does no per-batch allocation.
struct DeepWorkspace : ModelWorkspace {
  // Indexed by hidden layer (0 .. num_hidden-1); the output layer's
  // activations live in the base `probs`.
  std::vector<tensor::Matrix> pre;     // batch x H_l, pre-activation
  std::vector<tensor::Matrix> acts;    // batch x H_l, post-ReLU
  // Indexed by layer (0 .. num_layers-1); deltas.back() is batch x C.
  std::vector<tensor::Matrix> deltas;

  sparse::SparseGradient grad_w1;      // touched rows of F x H1
  std::vector<tensor::Matrix> grad_w;  // dense layers 1..L-1 (index l-1)
  std::vector<std::vector<float>> grad_b;  // all layers

  void ensure(const DeepMlpConfig& cfg);

  std::span<const std::uint32_t> touched_input_rows() const override {
    return grad_w1.rows();
  }
  void swap_gradients(ModelWorkspace& other) override;
  /// Segment order W0,b0,W1,b1,...: dense spans are [b0, W1, b1, ...].
  GradientViews gradient_views() const override {
    GradientViews views;
    views.input = &grad_w1;
    views.dense.push_back({grad_b[0].data(), grad_b[0].size()});
    for (std::size_t l = 1; l < grad_b.size(); ++l) {
      views.dense.push_back(grad_w[l - 1].flat());
      views.dense.push_back({grad_b[l].data(), grad_b[l].size()});
    }
    return views;
  }
};

class DeepMlp : public Model {
 public:
  DeepMlp() = default;
  explicit DeepMlp(const DeepMlpConfig& cfg);

  /// Weights ~ N(0, 1/sqrt(fan_in)), biases zero.
  void init(util::Rng& rng) override;

  const DeepMlpConfig& config() const { return cfg_; }
  const ModelInfo& info() const override { return info_; }

  std::unique_ptr<Model> clone() const override;
  void copy_from(const Model& other) override;
  std::unique_ptr<ModelWorkspace> make_workspace() const override;

  /// Flat order: W0,b0,W1,b1,...,W_{L-1},b_{L-1} (layer 0 = sparse input).
  std::vector<float> to_flat() const override;
  void from_flat(std::span<const float> flat) override;

  /// In-place parameter views: one [weights, biases] pair per layer, in
  /// flat order. Segment 0 is the sparse F x H1 input layer the delta
  /// merge reduces by touched rows.
  std::vector<std::span<float>> segment_views() override;

  double l2_norm_per_parameter() const override;

  StepStats train_step(const sparse::CsrMatrix& x, const sparse::CsrMatrix& y,
                       float lr, ModelWorkspace& ws,
                       float weight_decay = 0.0f) override;
  StepStats compute_gradients(const sparse::CsrMatrix& x,
                              const sparse::CsrMatrix& y,
                              ModelWorkspace& ws) const override;
  void apply_gradients(const ModelWorkspace& ws, float lr,
                       float weight_decay = 0.0f) override;
  double forward_loss(const sparse::CsrMatrix& x, const sparse::CsrMatrix& y,
                      ModelWorkspace& ws) const override;

  std::vector<sim::KernelDesc> step_kernels(
      const sparse::CsrMatrix& x) const override;
  std::size_t step_memory_bytes(std::size_t batch_size,
                                double avg_nnz) const override;

  /// Layer weight matrices / biases (layer 0 is the sparse input layer).
  const tensor::Matrix& weights(std::size_t layer) const {
    return weights_[layer];
  }
  const std::vector<float>& biases(std::size_t layer) const {
    return biases_[layer];
  }

 private:
  /// Forward into ws (probs end in ws.probs); returns mean CE loss.
  double forward_impl(const sparse::CsrMatrix& x, const sparse::CsrMatrix& y,
                      DeepWorkspace& ws) const;

  DeepMlpConfig cfg_;
  ModelInfo info_;
  std::vector<tensor::Matrix> weights_;     // per layer
  std::vector<std::vector<float>> biases_;  // per layer
};

}  // namespace hetero::nn
