// Test-set evaluation: top-k accuracy (the paper reports top-1 on the
// testing dataset after every mega-batch).
#pragma once

#include <cstddef>

#include "nn/model.h"
#include "sparse/libsvm.h"

namespace hetero::nn {

struct EvalResult {
  double top1 = 0.0;       // fraction of samples whose argmax is a true label
  double top5 = 0.0;       // fraction with a true label in the top 5 scores
  /// XML Repository precision metrics: P@k = |top-k ∩ true| / k, averaged
  /// over samples. P@1 == top1.
  double p_at_3 = 0.0;
  double p_at_5 = 0.0;
  double loss = 0.0;       // mean cross-entropy
  std::size_t samples = 0;
};

/// Evaluates on up to `max_samples` rows of the test set (0 = all), in
/// batches of `eval_batch`. Using a fixed prefix keeps mega-batch-boundary
/// evaluation cheap and comparable across algorithms; the paper likewise
/// excludes evaluation time from its measurements.
/// Works for any nn::Model; probs are read from the workspace the model
/// itself creates (no architecture knowledge here beyond num_classes).
EvalResult evaluate(const Model& model, const sparse::LabeledDataset& test,
                    std::size_t max_samples = 0, std::size_t eval_batch = 256);

}  // namespace hetero::nn
