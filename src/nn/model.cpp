#include "nn/model.h"

#include <cassert>
#include <stdexcept>

#include "nn/deep_mlp.h"
#include "nn/mlp.h"

namespace hetero::nn {

double Model::squared_distance(const Model& other) const {
  assert(num_parameters() == other.num_parameters());
  const auto a = to_flat();
  const auto b = other.to_flat();
  double ss = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    ss += d * d;
  }
  return ss;
}

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kMlp:
      return "mlp";
    case ModelKind::kDeep:
      return "deep";
  }
  return "unknown";
}

std::unique_ptr<Model> make_model(ModelKind kind, std::size_t num_features,
                                  std::span<const std::size_t> hidden,
                                  std::size_t num_classes) {
  if (hidden.empty()) {
    throw std::invalid_argument("model requires at least one hidden layer");
  }
  for (std::size_t h : hidden) {
    if (h == 0) {
      throw std::invalid_argument("hidden layer sizes must be positive");
    }
  }
  switch (kind) {
    case ModelKind::kMlp: {
      if (hidden.size() != 1) {
        throw std::invalid_argument(
            "--model mlp takes exactly one hidden width (use --model deep "
            "for multi-layer architectures)");
      }
      MlpConfig cfg;
      cfg.num_features = num_features;
      cfg.hidden = hidden.front();
      cfg.num_classes = num_classes;
      return std::make_unique<MlpModel>(cfg);
    }
    case ModelKind::kDeep: {
      DeepMlpConfig cfg;
      cfg.num_features = num_features;
      cfg.hidden.assign(hidden.begin(), hidden.end());
      cfg.num_classes = num_classes;
      return std::make_unique<DeepMlp>(cfg);
    }
  }
  throw std::invalid_argument("unknown model kind");
}

}  // namespace hetero::nn
