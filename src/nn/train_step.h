// One SGD training step ("epoch" in the paper's terminology: the paper calls
// processing one batch an epoch — see Figure 2) on one model replica:
// forward pass, backward pass, parameter update.
//
// Besides doing the real math on the CPU, `sgd_step` reports the list of
// sim::KernelDesc the equivalent GPU execution would launch, so the virtual
// GPU can be charged an accurate, input-dependent cost: the sparse kernels'
// flops/bytes depend on the batch nnz, which is how sparse-data variance
// turns into GPU-time variance.
#pragma once

#include <vector>

#include "nn/mlp.h"
#include "nn/model.h"
#include "sim/cost_model.h"
#include "sparse/csr.h"
#include "sparse/ops.h"
#include "sparse/sparse_gradient.h"
#include "util/kernel_context.h"

namespace hetero::nn {

/// Scratch buffers reused across steps (avoids per-batch allocation).
/// MlpModel's concrete ModelWorkspace; `probs` and `ctx` live in the base.
///
/// The layer-1 gradient is a touched-row sparse::SparseGradient keyed per
/// batch: compute_gradients records the batch's distinct feature columns
/// once, and apply_gradients reuses that key — no per-step O(F x H) dense
/// zero/fill and no second sort of the column ids.
struct Workspace : ModelWorkspace {
  tensor::Matrix h_pre;     // batch x H, pre-activation
  tensor::Matrix h;         // batch x H, post-ReLU
  tensor::Matrix delta2;    // batch x C, output delta
  tensor::Matrix delta1;    // batch x H, hidden delta
  sparse::SparseGradient grad_w1;  // touched rows of F x H
  tensor::Matrix grad_w2;   // H x C
  std::vector<float> grad_b1;
  std::vector<float> grad_b2;

  void ensure(const MlpConfig& cfg);

  std::span<const std::uint32_t> touched_input_rows() const override {
    return grad_w1.rows();
  }
  void swap_gradients(ModelWorkspace& other) override;
  /// Segment order W1, b1, W2, b2: dense spans are [b1, W2, b2].
  GradientViews gradient_views() const override {
    return {&grad_w1,
            {{grad_b1.data(), grad_b1.size()},
             {grad_w2.data(), grad_w2.rows() * grad_w2.cols()},
             {grad_b2.data(), grad_b2.size()}}};
  }
};

/// Runs forward+backward+update on `model` with learning rate `lr`.
/// `x` is the sparse feature batch, `y` the sparse indicator labels
/// (targets are uniform over each sample's positive labels).
/// `weight_decay` applies L2 regularization with the same sparsity pattern
/// as the gradient (only parameters touched by the batch decay).
StepStats sgd_step(MlpModel& model, const sparse::CsrMatrix& x,
                   const sparse::CsrMatrix& y, float lr, Workspace& ws,
                   float weight_decay = 0.0f);

/// Forward + backward only: leaves the batch-mean gradients in
/// ws.grad_w1/grad_b1/grad_w2/grad_b2 without touching the model.
/// Baselines that aggregate gradients (synchronous SGD) or mix gradient and
/// elastic terms (CROSSBOW) use this + apply_gradients.
StepStats compute_gradients(const MlpModel& model, const sparse::CsrMatrix& x,
                            const sparse::CsrMatrix& y, Workspace& ws);

/// Applies the gradients in `ws` to `model` with learning rate `lr`.
/// The W1 rows carrying gradient (and, for consistency, decay) are the
/// touched-row key stored in ws.grad_w1 by compute_gradients, so the
/// workspace is self-contained — no batch needed here.
void apply_gradients(MlpModel& model, const Workspace& ws, float lr,
                     float weight_decay = 0.0f);

/// Forward + loss only (no update); probs are left in ws.probs.
double forward_loss(const MlpModel& model, const sparse::CsrMatrix& x,
                    const sparse::CsrMatrix& y, Workspace& ws);

/// Kernel sequence a GPU would launch for one sgd_step on this batch.
/// The simulator charges sequence time (fused or not) for it.
std::vector<sim::KernelDesc> step_kernels(const MlpConfig& cfg,
                                          const sparse::CsrMatrix& x);

/// Estimated device memory footprint of training state for a batch of
/// `batch_size` samples with `avg_nnz` non-zeros per sample: activations,
/// deltas, gradients, and the CSR batch itself. Model parameters are charged
/// separately. Used to derive b_max from GPU memory.
std::size_t step_memory_bytes(const MlpConfig& cfg, std::size_t batch_size,
                              double avg_nnz);

}  // namespace hetero::nn
