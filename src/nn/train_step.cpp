#include "nn/train_step.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "tensor/ops.h"

namespace hetero::nn {

void Workspace::swap_gradients(ModelWorkspace& other) {
  auto& o = dynamic_cast<Workspace&>(other);
  std::swap(grad_w1, o.grad_w1);
  std::swap(grad_w2, o.grad_w2);
  std::swap(grad_b1, o.grad_b1);
  std::swap(grad_b2, o.grad_b2);
}

void Workspace::ensure(const MlpConfig& cfg) {
  // grad_w1 is keyed per batch by compute_gradients; nothing to pre-size
  // here (and nothing O(num_features) to zero).
  if (grad_w2.rows() != cfg.hidden || grad_w2.cols() != cfg.num_classes) {
    grad_w2.resize(cfg.hidden, cfg.num_classes);
  }
  grad_b1.assign(cfg.hidden, 0.0f);
  grad_b2.assign(cfg.num_classes, 0.0f);
}

namespace {

/// Forward pass into ws.h_pre / ws.h / ws.probs; returns mean CE loss.
double forward_impl(const MlpModel& model, const sparse::CsrMatrix& x,
                    const sparse::CsrMatrix& y, Workspace& ws) {
  const auto& cfg = model.config();
  assert(x.cols() == cfg.num_features);
  assert(y.cols() == cfg.num_classes);
  assert(x.rows() == y.rows());

  sparse::spmm(x, model.w1(), ws.h_pre, ws.ctx);
  tensor::add_row_bias(ws.h_pre, {model.b1().data(), model.b1().size()});
  ws.h = ws.h_pre;
  tensor::relu(ws.h);

  tensor::gemm(ws.h, model.w2(), ws.probs, ws.ctx);
  tensor::add_row_bias(ws.probs, {model.b2().data(), model.b2().size()});
  tensor::softmax_rows(ws.probs);

  // Multi-label cross-entropy with a uniform target over positive labels:
  //   L = -(1/|P|) sum_{c in P} log p_c, averaged over the batch.
  double loss = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto labels = y.row_cols(r);
    if (labels.empty()) continue;
    const float* p = ws.probs.data() + r * cfg.num_classes;
    double row_loss = 0.0;
    for (auto c : labels) {
      row_loss -= std::log(std::max(1e-12f, p[c]));
    }
    loss += row_loss / static_cast<double>(labels.size());
  }
  return loss / static_cast<double>(std::max<std::size_t>(1, x.rows()));
}

}  // namespace

double forward_loss(const MlpModel& model, const sparse::CsrMatrix& x,
                    const sparse::CsrMatrix& y, Workspace& ws) {
  return forward_impl(model, x, y, ws);
}

StepStats compute_gradients(const MlpModel& model, const sparse::CsrMatrix& x,
                            const sparse::CsrMatrix& y, Workspace& ws) {
  const auto& cfg = model.config();
  ws.ensure(cfg);

  StepStats stats;
  stats.batch_size = x.rows();
  stats.batch_nnz = x.nnz();
  stats.loss = forward_impl(model, x, y, ws);

  const auto batch = static_cast<float>(x.rows());
  const float inv_batch = 1.0f / batch;

  // Output delta: (probs - target) / batch, target uniform over positives.
  ws.delta2 = ws.probs;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto labels = y.row_cols(r);
    if (labels.empty()) continue;
    const float share = 1.0f / static_cast<float>(labels.size());
    float* d = ws.delta2.data() + r * cfg.num_classes;
    for (auto c : labels) d[c] -= share;
  }
  tensor::scale(ws.delta2.flat(), inv_batch);

  // Gradients of layer 2.
  tensor::gemm_at_b(ws.h, ws.delta2, ws.grad_w2, ws.ctx);
  tensor::column_sums(ws.delta2, {ws.grad_b2.data(), ws.grad_b2.size()});

  // Hidden delta: delta1 = delta2 * W2^T, masked by ReLU.
  tensor::gemm_a_bt(ws.delta2, model.w2(), ws.delta1, ws.ctx);
  tensor::relu_backward(ws.h_pre, ws.delta1);

  // Gradients of layer 1: touched-row sparse gradient. Keying records the
  // batch's distinct feature columns once (apply_gradients reuses the key);
  // only the packed touched x H block is zeroed and scattered into — the
  // full F x H buffer is never materialized.
  ws.grad_w1.reset(x, cfg.hidden);
  ws.grad_w1.accumulate_spmm_t(x, ws.delta1, ws.ctx);
  tensor::column_sums(ws.delta1, {ws.grad_b1.data(), ws.grad_b1.size()});
  return stats;
}

void apply_gradients(MlpModel& model, const Workspace& ws, float lr,
                     float weight_decay) {
  // Decoupled L2 decay factor; 1.0 when decay is off.
  const float keep = 1.0f - lr * weight_decay;
  // W1 is updated sparsely over the touched-row key computed with the
  // gradient: only the feature rows present in that batch carry gradient
  // (and, for consistency, decay).
  ws.grad_w1.apply_to(model.w1(), lr, keep, ws.ctx);
  if (weight_decay != 0.0f) {
    tensor::scale({model.b1().data(), model.b1().size()}, keep);
    tensor::scale(model.w2().flat(), keep);
    tensor::scale({model.b2().data(), model.b2().size()}, keep);
  }
  tensor::axpy(-lr, {ws.grad_b1.data(), ws.grad_b1.size()},
               {model.b1().data(), model.b1().size()});
  tensor::axpy(-lr, ws.grad_w2.flat(), model.w2().flat());
  tensor::axpy(-lr, {ws.grad_b2.data(), ws.grad_b2.size()},
               {model.b2().data(), model.b2().size()});
}

StepStats sgd_step(MlpModel& model, const sparse::CsrMatrix& x,
                   const sparse::CsrMatrix& y, float lr, Workspace& ws,
                   float weight_decay) {
  const StepStats stats = compute_gradients(model, x, y, ws);
  apply_gradients(model, ws, lr, weight_decay);
  return stats;
}

std::vector<sim::KernelDesc> step_kernels(const MlpConfig& cfg,
                                          const sparse::CsrMatrix& x) {
  const double b = static_cast<double>(x.rows());
  const double h = static_cast<double>(cfg.hidden);
  const double c = static_cast<double>(cfg.num_classes);
  const double nnz = static_cast<double>(x.nnz());
  const double f4 = sizeof(float);

  std::vector<sim::KernelDesc> kernels;
  const auto add = [&](double flops, double bytes, bool sparse,
                       const char* name) {
    kernels.push_back({flops, bytes, sparse, name});
  };

  // Forward.
  add(2 * nnz * h, nnz * (4 + f4) + nnz * h * f4 + b * h * f4, true,
      "spmm_fwd1");
  add(b * h, 2 * b * h * f4, false, "bias_relu1");
  add(2 * b * h * c, (b * h + h * c + b * c) * f4, false, "gemm_fwd2");
  add(b * c * 4, 2 * b * c * f4, false, "bias_softmax");
  // Backward.
  add(b * c, 2 * b * c * f4, false, "delta2");
  add(2 * b * h * c, (b * h + b * c + h * c) * f4, false, "gemm_grad_w2");
  add(2 * b * h * c, (b * c + h * c + b * h) * f4, false, "gemm_delta1");
  add(b * h, 2 * b * h * f4, false, "relu_bwd");
  add(2 * nnz * h, nnz * (4 + f4) + nnz * h * f4, true, "spmm_t_grad_w1");
  // Updates (sparse for W1: rows touched by the batch only).
  add(2 * nnz * h, 2 * nnz * h * f4, true, "update_w1");
  add(2 * h * c, 3 * h * c * f4, false, "update_w2");
  add(h + c, 2 * (h + c) * f4, false, "update_bias");
  return kernels;
}

std::size_t step_memory_bytes(const MlpConfig& cfg, std::size_t batch_size,
                              double avg_nnz) {
  const std::size_t h = cfg.hidden;
  const std::size_t c = cfg.num_classes;
  const double nnz = avg_nnz * static_cast<double>(batch_size);
  // Activations + deltas (h_pre, h, probs, delta1, delta2) and batch CSR.
  const double activations =
      static_cast<double>(batch_size) * (2.0 * static_cast<double>(h) +
                                         2.0 * static_cast<double>(c) +
                                         static_cast<double>(h)) *
      sizeof(float);
  const double csr = nnz * (sizeof(std::uint32_t) + sizeof(float));
  // Dense layer-2 gradient + sparse layer-1 gradient rows.
  const double grads =
      (static_cast<double>(h) * c + nnz * static_cast<double>(h)) *
      sizeof(float);
  return static_cast<std::size_t>(activations + csr + grads);
}

}  // namespace hetero::nn
