// Adam and AdamW over the lazy sparse-state contract (nn/optimizer.h).
//
// Segment 0 (sparse input layer): moments advance only for the rows in the
// step's SparseGradient, each row on its own step counter, so the bias
// corrections see exactly the row's touched subsequence — SparseAdam
// semantics with exact catch-up. The touched rows are partitioned across
// workers with kernels::parallel_for_ranges; rows are distinct, so the
// per-row counter increments and the state writes are race-free and the
// result is bit-identical at any thread count.
//
// Dense tail (biases, upper layers): every segment advances each apply on
// one shared counter, full-span kernel calls.
//
// Adam couples L2 into the gradient (g' = g + wd*w, feeding both moments);
// AdamW decouples it (keep = 1 - lr*wd on the parameter, moments see the
// raw gradient). Both go through the single fused vec adam_update kernel.
#include <cassert>
#include <cstdint>
#include <memory>

#include "nn/optimizer_state.h"
#include "tensor/vec/vec.h"
#include "util/kernel_context.h"

namespace hetero::nn::detail {
namespace {

class AdamOptimizer final : public StatefulOptimizer {
 public:
  AdamOptimizer(const OptimizerConfig& cfg, Model& model, bool decoupled)
      : StatefulOptimizer(model, /*num_slots=*/2, /*lazy_row_steps=*/true),
        beta1_(cfg.beta1),
        beta2_(cfg.beta2),
        eps_(static_cast<float>(cfg.eps)),
        decoupled_(decoupled) {}

  OptimizerKind kind() const override {
    return decoupled_ ? OptimizerKind::kAdamW : OptimizerKind::kAdam;
  }

  void apply(Model& model, const ModelWorkspace& ws, float lr,
             float weight_decay) override {
    auto segs = model.segment_views();
    assert(segs.size() == seg_sizes_.size());
    const auto views = ws.gradient_views();
    const auto& sg = *views.input;
    assert(sg.logical_rows() == input_rows_);
    assert(sg.cols() == input_cols_);
    const auto& vk = vec::kernels();

    vec::AdamParams base;
    base.lr = lr;
    base.beta1 = static_cast<float>(beta1_);
    base.beta2 = static_cast<float>(beta2_);
    base.eps = eps_;
    base.weight_decay = decoupled_ ? 0.0f : weight_decay;
    base.keep = decoupled_ ? 1.0f - lr * weight_decay : 1.0f;

    // Lazy segment 0: each touched row advances its own counter.
    float* w0 = segs[0].data();
    float* m0 = slot_seg(0, 0);
    float* v0 = slot_seg(1, 0);
    const auto rows = sg.rows();
    const std::size_t h = input_cols_;
    kernels::parallel_for_ranges(
        ws.ctx, rows.size(), rows.size() * h * 4,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t s = begin; s < end; ++s) {
            const std::size_t r = rows[s];
            const std::uint32_t t = ++row_steps_[r];
            vec::AdamParams p = base;
            p.bias1 = bias_correction(beta1_, t);
            p.bias2 = bias_correction(beta2_, t);
            vk.adam_update(w0 + r * h, sg.slot_values(s).data(), m0 + r * h,
                           v0 + r * h, p, h);
          }
        });

    // Dense tail: one shared counter for all remaining segments.
    const std::uint64_t t = ++step_;
    vec::AdamParams p = base;
    p.bias1 = bias_correction(beta1_, t);
    p.bias2 = bias_correction(beta2_, t);
    for (std::size_t seg = 1; seg < segs.size(); ++seg) {
      assert(views.dense[seg - 1].size() == segs[seg].size());
      vk.adam_update(segs[seg].data(), views.dense[seg - 1].data(),
                     slot_seg(0, seg), slot_seg(1, seg), p, segs[seg].size());
    }
  }

 private:
  double beta1_;
  double beta2_;
  float eps_;
  bool decoupled_;
};

}  // namespace

std::unique_ptr<Optimizer> make_adam_optimizer(const OptimizerConfig& cfg,
                                               Model& model, bool decoupled) {
  return std::make_unique<AdamOptimizer>(cfg, model, decoupled);
}

}  // namespace hetero::nn::detail
