// The paper's evaluation model: a 3-layer Multi-Layer Perceptron with ReLU
// hidden activation, softmax multi-class output, and cross-entropy loss,
// over sparse high-dimensional input (the SLIDE testbed configuration,
// Section V-A).
//
//   layer 1: sparse input (F)  -> hidden (H), ReLU
//   layer 2: hidden (H)        -> classes (C), softmax
//
// Parameters: W1 (F x H), b1 (H), W2 (H x C), b2 (C).
//
// MlpModel implements nn::Model; the depth-specialized training math lives
// in train_step.* as free functions (also used directly by tests/benches)
// and the virtual interface delegates to them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/model.h"
#include "tensor/matrix.h"
#include "util/rng.h"

namespace hetero::nn {

struct MlpConfig {
  std::size_t num_features = 0;
  std::size_t hidden = 64;
  std::size_t num_classes = 0;

  std::size_t num_parameters() const {
    return num_features * hidden + hidden + hidden * num_classes + num_classes;
  }
};

class MlpModel : public Model {
 public:
  MlpModel() = default;
  explicit MlpModel(const MlpConfig& cfg);

  /// Random initialization: weights ~ N(0, 1/sqrt(fan_in)), biases zero.
  /// All replicas and all algorithms start from the same model in the
  /// paper's methodology, so initialize once and copy.
  void init(util::Rng& rng) override;

  const MlpConfig& config() const { return cfg_; }
  const ModelInfo& info() const override { return info_; }

  tensor::Matrix& w1() { return w1_; }
  const tensor::Matrix& w1() const { return w1_; }
  std::vector<float>& b1() { return b1_; }
  const std::vector<float>& b1() const { return b1_; }
  tensor::Matrix& w2() { return w2_; }
  const tensor::Matrix& w2() const { return w2_; }
  std::vector<float>& b2() { return b2_; }
  const std::vector<float>& b2() const { return b2_; }

  std::unique_ptr<Model> clone() const override;
  void copy_from(const Model& other) override;
  std::unique_ptr<ModelWorkspace> make_workspace() const override;

  /// Serializes all parameters into one flat buffer (order: W1,b1,W2,b2).
  std::vector<float> to_flat() const override;
  void from_flat(std::span<const float> flat) override;

  /// In-place views of the parameter tensors in to_flat() order
  /// (W1, b1, W2, b2). The merge path reduces these directly, replacing the
  /// per-merge to_flat()/from_flat() staging copies.
  std::vector<std::span<float>> segment_views() override;

  /// L2 norm over all parameters divided by the parameter count — the
  /// regularization measure gating weight perturbation in Algorithm 2.
  double l2_norm_per_parameter() const override;

  StepStats train_step(const sparse::CsrMatrix& x, const sparse::CsrMatrix& y,
                       float lr, ModelWorkspace& ws,
                       float weight_decay = 0.0f) override;
  StepStats compute_gradients(const sparse::CsrMatrix& x,
                              const sparse::CsrMatrix& y,
                              ModelWorkspace& ws) const override;
  void apply_gradients(const ModelWorkspace& ws, float lr,
                       float weight_decay = 0.0f) override;
  double forward_loss(const sparse::CsrMatrix& x, const sparse::CsrMatrix& y,
                      ModelWorkspace& ws) const override;

  std::vector<sim::KernelDesc> step_kernels(
      const sparse::CsrMatrix& x) const override;
  std::size_t step_memory_bytes(std::size_t batch_size,
                                double avg_nnz) const override;

  /// Squared L2 distance to another MlpModel, segment-by-segment in place
  /// (no flat copies). The Model-level overload remains available.
  double squared_distance(const MlpModel& other) const;
  using Model::squared_distance;

 private:
  MlpConfig cfg_;
  ModelInfo info_;
  tensor::Matrix w1_;
  std::vector<float> b1_;
  tensor::Matrix w2_;
  std::vector<float> b2_;
};

}  // namespace hetero::nn
