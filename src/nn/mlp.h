// The paper's evaluation model: a 3-layer Multi-Layer Perceptron with ReLU
// hidden activation, softmax multi-class output, and cross-entropy loss,
// over sparse high-dimensional input (the SLIDE testbed configuration,
// Section V-A).
//
//   layer 1: sparse input (F)  -> hidden (H), ReLU
//   layer 2: hidden (H)        -> classes (C), softmax
//
// Parameters: W1 (F x H), b1 (H), W2 (H x C), b2 (C).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.h"
#include "util/rng.h"

namespace hetero::nn {

struct MlpConfig {
  std::size_t num_features = 0;
  std::size_t hidden = 64;
  std::size_t num_classes = 0;

  std::size_t num_parameters() const {
    return num_features * hidden + hidden + hidden * num_classes + num_classes;
  }
};

class MlpModel {
 public:
  MlpModel() = default;
  explicit MlpModel(const MlpConfig& cfg);

  /// Random initialization: weights ~ N(0, 1/sqrt(fan_in)), biases zero.
  /// All replicas and all algorithms start from the same model in the
  /// paper's methodology, so initialize once and copy.
  void init(util::Rng& rng);

  const MlpConfig& config() const { return cfg_; }
  std::size_t num_parameters() const { return cfg_.num_parameters(); }
  std::size_t num_bytes() const { return num_parameters() * sizeof(float); }

  tensor::Matrix& w1() { return w1_; }
  const tensor::Matrix& w1() const { return w1_; }
  std::vector<float>& b1() { return b1_; }
  const std::vector<float>& b1() const { return b1_; }
  tensor::Matrix& w2() { return w2_; }
  const tensor::Matrix& w2() const { return w2_; }
  std::vector<float>& b2() { return b2_; }
  const std::vector<float>& b2() const { return b2_; }

  /// Serializes all parameters into one flat buffer (order: W1,b1,W2,b2).
  std::vector<float> to_flat() const;
  void from_flat(std::span<const float> flat);

  /// In-place views of the parameter tensors in to_flat() order
  /// (W1, b1, W2, b2). The merge path reduces these directly, replacing the
  /// per-merge to_flat()/from_flat() staging copies.
  std::vector<std::span<float>> segment_views();

  /// L2 norm over all parameters divided by the parameter count — the
  /// regularization measure gating weight perturbation in Algorithm 2.
  double l2_norm_per_parameter() const;

  /// Squared L2 distance to another model (test/diagnostic helper).
  double squared_distance(const MlpModel& other) const;

 private:
  MlpConfig cfg_;
  tensor::Matrix w1_;
  std::vector<float> b1_;
  tensor::Matrix w2_;
  std::vector<float> b2_;
};

}  // namespace hetero::nn
