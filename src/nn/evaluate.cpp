#include "nn/evaluate.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "tensor/ops.h"

namespace hetero::nn {

EvalResult evaluate(const Model& model, const sparse::LabeledDataset& test,
                    std::size_t max_samples, std::size_t eval_batch) {
  EvalResult result;
  const std::size_t n =
      max_samples == 0 ? test.num_samples()
                       : std::min(max_samples, test.num_samples());
  if (n == 0) return result;

  const auto ws_ptr = model.make_workspace();
  auto& ws = *ws_ptr;
  const std::size_t c = model.info().num_classes;
  std::size_t top1_hits = 0, top5_hits = 0;
  std::size_t p3_hits = 0, p5_hits = 0;  // summed |top-k ∩ true|
  double loss = 0.0;

  for (std::size_t begin = 0; begin < n; begin += eval_batch) {
    const std::size_t end = std::min(begin + eval_batch, n);
    const auto x = test.features.slice_rows(begin, end);
    const auto y = test.labels.slice_rows(begin, end);
    loss += model.forward_loss(x, y, ws) * static_cast<double>(end - begin);

    for (std::size_t r = 0; r < x.rows(); ++r) {
      const auto labels = y.row_cols(r);
      if (labels.empty()) continue;
      const float* p = ws.probs.data() + r * c;

      // Top-5 by partial selection.
      std::size_t top_idx[5];
      float top_val[5];
      std::size_t filled = 0;
      for (std::size_t j = 0; j < c; ++j) {
        if (filled < 5) {
          top_idx[filled] = j;
          top_val[filled] = p[j];
          ++filled;
          // Keep the smallest at the end.
          for (std::size_t k = filled; k-- > 1;) {
            if (top_val[k] > top_val[k - 1]) {
              std::swap(top_val[k], top_val[k - 1]);
              std::swap(top_idx[k], top_idx[k - 1]);
            }
          }
        } else if (p[j] > top_val[4]) {
          top_val[4] = p[j];
          top_idx[4] = j;
          for (std::size_t k = 4; k-- > 0;) {
            if (top_val[k + 1] > top_val[k]) {
              std::swap(top_val[k + 1], top_val[k]);
              std::swap(top_idx[k + 1], top_idx[k]);
            } else {
              break;
            }
          }
        }
      }

      const auto is_true = [&](std::size_t cls) {
        return std::binary_search(labels.begin(), labels.end(),
                                  static_cast<std::uint32_t>(cls));
      };
      if (is_true(top_idx[0])) ++top1_hits;
      bool any_in_top5 = false;
      for (std::size_t k = 0; k < std::min<std::size_t>(5, filled); ++k) {
        if (is_true(top_idx[k])) {
          any_in_top5 = true;
          if (k < 3) ++p3_hits;
          ++p5_hits;
        }
      }
      if (any_in_top5) ++top5_hits;
    }
  }

  result.samples = n;
  result.top1 = static_cast<double>(top1_hits) / static_cast<double>(n);
  result.top5 = static_cast<double>(top5_hits) / static_cast<double>(n);
  result.p_at_3 = static_cast<double>(p3_hits) / (3.0 * static_cast<double>(n));
  result.p_at_5 = static_cast<double>(p5_hits) / (5.0 * static_cast<double>(n));
  result.loss = loss / static_cast<double>(n);
  return result;
}

}  // namespace hetero::nn
