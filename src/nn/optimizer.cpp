#include "nn/optimizer.h"

#include <cassert>

#include "nn/optimizer_state.h"

namespace hetero::nn {

std::string to_string(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return "sgd";
    case OptimizerKind::kAdam:
      return "adam";
    case OptimizerKind::kAdamW:
      return "adamw";
    case OptimizerKind::kAdagrad:
      return "adagrad";
  }
  return "unknown";
}

std::optional<OptimizerKind> parse_optimizer_kind(const std::string& text) {
  if (text == "sgd") return OptimizerKind::kSgd;
  if (text == "adam") return OptimizerKind::kAdam;
  if (text == "adamw") return OptimizerKind::kAdamW;
  if (text == "adagrad") return OptimizerKind::kAdagrad;
  return std::nullopt;
}

std::optional<OptimizerKind> optimizer_kind_from_byte(std::uint8_t b) {
  if (b > static_cast<std::uint8_t>(OptimizerKind::kAdagrad)) {
    return std::nullopt;
  }
  return static_cast<OptimizerKind>(b);
}

namespace {

/// The fused SGD path: Model::apply_gradients IS the pre-refactor sgd_step
/// update (train_step == compute_gradients + apply_gradients), so routing
/// through this class is bit-identical to the old fused step by
/// construction. Stateless; the step counter only feeds diagnostics and
/// checkpoint round-trips.
class SgdOptimizer final : public Optimizer {
 public:
  OptimizerKind kind() const override { return OptimizerKind::kSgd; }

  void apply(Model& model, const ModelWorkspace& ws, float lr,
             float weight_decay) override {
    model.apply_gradients(ws, lr, weight_decay);
    ++step_;
  }

  std::size_t num_slots() const override { return 0; }
  std::vector<std::span<float>> slot_views(std::size_t) override {
    assert(false && "sgd has no state slots");
    return {};
  }
  std::span<std::uint32_t> row_steps() override { return {}; }
  std::uint64_t step() const override { return step_; }
  void set_step(std::uint64_t step) override { step_ = step; }
  void reset_state() override { step_ = 0; }

 private:
  std::uint64_t step_ = 0;
};

}  // namespace

std::unique_ptr<Optimizer> Optimizer::make(const OptimizerConfig& cfg,
                                           Model& model) {
  switch (cfg.kind) {
    case OptimizerKind::kSgd:
      return std::make_unique<SgdOptimizer>();
    case OptimizerKind::kAdam:
      return detail::make_adam_optimizer(cfg, model, /*decoupled=*/false);
    case OptimizerKind::kAdamW:
      return detail::make_adam_optimizer(cfg, model, /*decoupled=*/true);
    case OptimizerKind::kAdagrad:
      return detail::make_adagrad_optimizer(cfg, model);
  }
  assert(false && "unknown optimizer kind");
  return std::make_unique<SgdOptimizer>();
}

}  // namespace hetero::nn
