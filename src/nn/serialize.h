// Model checkpointing: a small self-describing binary format.
//
// Version 1 (single-hidden-layer MLP):
//   magic "HGPU" | version=1 u32 | num_features u64 | hidden u64 |
//   num_classes u64 | float32 parameters in to_flat() order (W1, b1, W2, b2).
//
// Version 2 (arbitrary layer list):
//   magic "HGPU" | version=2 u32 | num_hidden u64 | num_features u64 |
//   hidden[0..num_hidden) u64 | num_classes u64 | float32 parameters in
//   to_flat() order (W_l, b_l per layer).
//
// save_model writes v1 for an MlpModel — old checkpoints and old readers
// keep working byte-for-byte — and v2 for everything else. Little-endian
// host order (the format is a local checkpoint, not a wire protocol).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "nn/mlp.h"
#include "nn/model.h"

namespace hetero::nn {

/// Writes the model; throws std::runtime_error on I/O failure.
/// MlpModel is written as v1 (byte-identical to the legacy format);
/// any other model kind is written as v2.
void save_model(std::ostream& out, const Model& model);
void save_model_file(const std::string& path, const Model& model);

/// Reads a checkpoint of any supported version; throws hetero::ParseError
/// (a std::runtime_error) on malformed input — bad magic, truncation, and
/// headers whose implied parameter payload exceeds the remaining stream
/// size (checked before any allocation). v1 yields an MlpModel, v2 a
/// DeepMlp.
std::unique_ptr<Model> load_any_model(std::istream& in);
std::unique_ptr<Model> load_any_model_file(const std::string& path);

/// Legacy readers: accept only checkpoints loadable as a single-hidden-layer
/// MlpModel (v1, or v2 with exactly one hidden layer).
MlpModel load_model(std::istream& in);
MlpModel load_model_file(const std::string& path);

}  // namespace hetero::nn
