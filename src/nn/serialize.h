// Model checkpointing: a small self-describing binary format.
//
// Layout: magic "HGPU" | version u32 | num_features u64 | hidden u64 |
// num_classes u64 | float32 parameters in to_flat() order (W1, b1, W2, b2).
// Little-endian host order (the format is a local checkpoint, not a wire
// protocol).
#pragma once

#include <iosfwd>
#include <string>

#include "nn/mlp.h"

namespace hetero::nn {

/// Writes the model; throws std::runtime_error on I/O failure.
void save_model(std::ostream& out, const MlpModel& model);
void save_model_file(const std::string& path, const MlpModel& model);

/// Reads a model; throws std::runtime_error on malformed input.
MlpModel load_model(std::istream& in);
MlpModel load_model_file(const std::string& path);

}  // namespace hetero::nn
