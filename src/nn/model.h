// Model abstraction: the contract between a neural network and the
// multi-GPU training stack.
//
// The paper's evaluation model is a 3-layer MLP (MlpModel), but HeteroGPU is
// positioned as a framework for sparse deep learning in general, and the
// journal version evaluates deeper architectures. Everything above this
// interface — MultiGpuRuntime, the trainers, the fused merge kernels in
// core/merging, the sharded all-reduce, checkpointing, the CLI — is written
// against nn::Model, so a new architecture plugs into the whole stack
// (dynamic scheduling, delta merging, cost accounting, serialization) by
// implementing this one interface.
//
// Contract highlights:
//   - segment_views() exposes the parameters as an ordered list of in-place
//     tensor views. Segment 0 MUST be the sparse input layer, row-major
//     (info().input_rows() x info().input_cols()): the delta merge reduces
//     touched rows of that segment and applies the closed-form update to
//     the rest. Concatenating the segments defines the flat checkpoint /
//     all-reduce index space.
//   - compute_gradients/apply_gradients split so gradient-aggregating
//     trainers (sync SGD, CROSSBOW, parameter server) can stage gradients;
//     train_step fuses them for the replica-local trainers.
//   - The first-layer gradient must be touched-row sparse: the workspace
//     reports the rows via touched_input_rows(), which is what feeds the
//     per-replica RowSet unions of the delta-aware merge.
//   - step_kernels/step_memory_bytes report the virtual-GPU cost of one
//     training step so the simulator charges depth- and nnz-dependent time.
//   - All math routes through the workspace's kernels::Context: serial by
//     default, n-way parallel when a ThreadPool is attached, bit-identical
//     either way (kernels partition output rows).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/cost_model.h"
#include "sparse/csr.h"
#include "sparse/sparse_gradient.h"
#include "tensor/matrix.h"
#include "util/kernel_context.h"
#include "util/rng.h"

namespace hetero::nn {

/// Architecture metadata shared by every model implementation.
struct ModelInfo {
  std::size_t num_features = 0;        // input dimension (sparse layer rows)
  std::vector<std::size_t> hidden;     // hidden widths; front() = layer-1 cols
  std::size_t num_classes = 0;
  std::size_t num_parameters = 0;

  std::size_t num_layers() const { return hidden.size() + 1; }
  /// Shape of the sparse input layer (segment 0 of segment_views()).
  std::size_t input_rows() const { return num_features; }
  std::size_t input_cols() const { return hidden.empty() ? 0 : hidden.front(); }
  std::size_t num_bytes() const { return num_parameters * sizeof(float); }
};

/// Per-replica scratch state for training steps. Concrete models pair with
/// a concrete workspace (created by Model::make_workspace); trainers only
/// touch this base.
class ModelWorkspace {
 public:
  virtual ~ModelWorkspace() = default;

  /// Softmax output of the last forward pass (batch x num_classes). Written
  /// by forward_loss/compute_gradients; read by evaluation.
  tensor::Matrix probs;

  /// Kernel execution backend: serial by default; point at a ThreadPool
  /// (kernels::Context{&pool, n}) for n-way parallel kernels. Threaded
  /// results are bit-identical to serial.
  kernels::Context ctx;

  /// Sorted logical rows of the sparse input layer touched by the gradient
  /// currently held in this workspace (valid until the next
  /// compute_gradients). Feeds the delta-merge RowSet unions.
  virtual std::span<const std::uint32_t> touched_input_rows() const = 0;

  /// Swaps the gradient tensors with `other` (same dynamic type; asserted).
  /// Gradient-aggregating trainers stage per-batch gradients this way
  /// without copying, leaving both workspaces reusable.
  virtual void swap_gradients(ModelWorkspace& other) = 0;

  /// Read-only views of the gradients staged by the last compute_gradients,
  /// aligned with Model::segment_views(): `input` is the touched-row sparse
  /// gradient of segment 0, `dense` holds one flat span per remaining
  /// segment, in segment order. This is how nn::Optimizer implementations
  /// consume gradients without knowing the concrete workspace type.
  struct GradientViews {
    const sparse::SparseGradient* input = nullptr;
    std::vector<std::span<const float>> dense;
  };
  virtual GradientViews gradient_views() const = 0;
};

struct StepStats {
  double loss = 0.0;           // mean cross-entropy over the batch
  std::size_t batch_size = 0;
  std::size_t batch_nnz = 0;
};

class Model {
 public:
  virtual ~Model() = default;

  virtual const ModelInfo& info() const = 0;
  std::size_t num_parameters() const { return info().num_parameters; }
  std::size_t num_bytes() const { return info().num_bytes(); }

  /// Random initialization (weights ~ N(0, 1/sqrt(fan_in)), biases zero).
  /// All replicas start from one init + broadcast (paper methodology).
  virtual void init(util::Rng& rng) = 0;

  /// Deep copy preserving the dynamic type.
  virtual std::unique_ptr<Model> clone() const = 0;

  /// Copies parameters from `other` (same architecture; asserted). The
  /// broadcast primitive — replicas are refreshed from the global model
  /// without reallocation.
  virtual void copy_from(const Model& other) = 0;

  /// Creates a workspace matching this architecture.
  virtual std::unique_ptr<ModelWorkspace> make_workspace() const = 0;

  /// In-place views of the parameter tensors. Segment 0 is the sparse input
  /// layer (see the contract above); concatenation order defines the flat
  /// format. Views stay valid while the model is alive.
  virtual std::vector<std::span<float>> segment_views() = 0;

  /// L2 norm over all parameters / parameter count (Algorithm 2 gate).
  virtual double l2_norm_per_parameter() const = 0;

  // --- training ------------------------------------------------------------

  /// Forward + backward + update with learning rate `lr`. Returns the mean
  /// cross-entropy. The workspace keeps the step's gradients (and their
  /// touched_input_rows) until the next step.
  virtual StepStats train_step(const sparse::CsrMatrix& x,
                               const sparse::CsrMatrix& y, float lr,
                               ModelWorkspace& ws,
                               float weight_decay = 0.0f) = 0;

  /// Forward + backward only: gradients stay in `ws`, the model is not
  /// touched.
  virtual StepStats compute_gradients(const sparse::CsrMatrix& x,
                                      const sparse::CsrMatrix& y,
                                      ModelWorkspace& ws) const = 0;

  /// Applies the gradients staged in `ws` with learning rate `lr`. Sparse
  /// first layer: only the touched rows carry gradient (and decay).
  virtual void apply_gradients(const ModelWorkspace& ws, float lr,
                               float weight_decay = 0.0f) = 0;

  /// Forward + loss only (no gradients); probs are left in ws.probs.
  virtual double forward_loss(const sparse::CsrMatrix& x,
                              const sparse::CsrMatrix& y,
                              ModelWorkspace& ws) const = 0;

  // --- virtual-GPU cost reporting ------------------------------------------

  /// Kernel sequence a GPU would launch for one train_step on this batch.
  virtual std::vector<sim::KernelDesc> step_kernels(
      const sparse::CsrMatrix& x) const = 0;

  /// Device memory footprint of one step's transient state (activations,
  /// deltas, gradients, batch CSR) for the given batch shape.
  virtual std::size_t step_memory_bytes(std::size_t batch_size,
                                        double avg_nnz) const = 0;

  // --- flat format (checkpoints / diagnostics; NOT on the training path) ---

  /// Serializes all parameters into one flat buffer in segment order.
  virtual std::vector<float> to_flat() const = 0;
  virtual void from_flat(std::span<const float> flat) = 0;

  /// Squared L2 distance to another model of the same architecture
  /// (test/diagnostic helper; allocates flats).
  double squared_distance(const Model& other) const;
};

/// Registered model families the runtime/CLI can instantiate.
enum class ModelKind { kMlp, kDeep };

std::string to_string(ModelKind kind);

/// Factory: builds a model of `kind` over the given architecture.
/// kMlp requires exactly one hidden width; kDeep accepts one or more.
/// Throws std::invalid_argument on an empty hidden list or a zero width.
std::unique_ptr<Model> make_model(ModelKind kind, std::size_t num_features,
                                  std::span<const std::size_t> hidden,
                                  std::size_t num_classes);

}  // namespace hetero::nn
