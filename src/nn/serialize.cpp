#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "nn/deep_mlp.h"
#include "util/error.h"

namespace hetero::nn {

namespace {
constexpr char kMagic[4] = {'H', 'G', 'P', 'U'};
constexpr std::uint32_t kVersionMlp = 1;
constexpr std::uint32_t kVersionLayerList = 2;
// Sanity bound for v2 headers: a corrupt num_hidden must fail fast instead
// of driving a multi-gigabyte allocation.
constexpr std::uint64_t kMaxHiddenLayers = 1024;

[[noreturn]] void bad_blob(std::istream& in, const std::string& what) {
  in.clear();
  const auto pos = in.tellg();
  throw ParseError("model-checkpoint", what, ParseError::npos,
                   pos == std::istream::pos_type(-1)
                       ? ParseError::npos
                       : static_cast<std::size_t>(pos));
}

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) bad_blob(in, "truncated input");
  return value;
}

// A hostile header (e.g. num_features = 2^60) must not drive the model
// constructor into a huge allocation: the float32 parameter payload that a
// header implies has to actually be present in the stream. Parameter counts
// are accumulated in 128-bit so the overflow-prone products (features x
// hidden) cannot wrap before the check.
void check_params_present(std::istream& in, unsigned __int128 num_params) {
  const auto pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) return;  // non-seekable: no bound
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos) return;
  const auto remaining = static_cast<unsigned __int128>(end - pos);
  if (num_params * sizeof(float) > remaining) {
    bad_blob(in, "header implies more parameters than the stream holds");
  }
}

void write_params(std::ostream& out, const Model& model) {
  const auto flat = model.to_flat();
  out.write(reinterpret_cast<const char*>(flat.data()),
            static_cast<std::streamsize>(flat.size() * sizeof(float)));
  if (!out) throw std::runtime_error("model checkpoint: write failed");
}

void read_params(std::istream& in, Model& model) {
  std::vector<float> flat(model.num_parameters());
  in.read(reinterpret_cast<char*>(flat.data()),
          static_cast<std::streamsize>(flat.size() * sizeof(float)));
  if (!in) bad_blob(in, "truncated parameters");
  model.from_flat(flat);
}
}  // namespace

void save_model(std::ostream& out, const Model& model) {
  out.write(kMagic, sizeof(kMagic));
  if (const auto* mlp = dynamic_cast<const MlpModel*>(&model)) {
    write_pod(out, kVersionMlp);
    write_pod(out, static_cast<std::uint64_t>(mlp->config().num_features));
    write_pod(out, static_cast<std::uint64_t>(mlp->config().hidden));
    write_pod(out, static_cast<std::uint64_t>(mlp->config().num_classes));
  } else {
    const auto& info = model.info();
    write_pod(out, kVersionLayerList);
    write_pod(out, static_cast<std::uint64_t>(info.hidden.size()));
    write_pod(out, static_cast<std::uint64_t>(info.num_features));
    for (const std::size_t h : info.hidden) {
      write_pod(out, static_cast<std::uint64_t>(h));
    }
    write_pod(out, static_cast<std::uint64_t>(info.num_classes));
  }
  write_params(out, model);
}

void save_model_file(const std::string& path, const Model& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("model checkpoint: cannot open " + path);
  save_model(out, model);
}

std::unique_ptr<Model> load_any_model(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    bad_blob(in, "bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version == kVersionMlp) {
    const auto num_features = read_pod<std::uint64_t>(in);
    const auto hidden = read_pod<std::uint64_t>(in);
    const auto num_classes = read_pod<std::uint64_t>(in);
    if (num_features == 0 || hidden == 0 || num_classes == 0) {
      bad_blob(in, "zero model dimension");
    }
    // W1 + b1 + W2 + b2, in 128-bit so hostile dimensions cannot wrap.
    const auto params =
        static_cast<unsigned __int128>(num_features) * hidden + hidden +
        static_cast<unsigned __int128>(hidden) * num_classes + num_classes;
    check_params_present(in, params);
    MlpConfig cfg;
    cfg.num_features = static_cast<std::size_t>(num_features);
    cfg.hidden = static_cast<std::size_t>(hidden);
    cfg.num_classes = static_cast<std::size_t>(num_classes);
    auto model = std::make_unique<MlpModel>(cfg);
    read_params(in, *model);
    return model;
  }
  if (version == kVersionLayerList) {
    const auto num_hidden = read_pod<std::uint64_t>(in);
    if (num_hidden == 0 || num_hidden > kMaxHiddenLayers) {
      bad_blob(in, "bad hidden-layer count " + std::to_string(num_hidden));
    }
    DeepMlpConfig cfg;
    cfg.num_features = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
    cfg.hidden.clear();
    for (std::uint64_t l = 0; l < num_hidden; ++l) {
      const auto width = read_pod<std::uint64_t>(in);
      if (width == 0) {
        bad_blob(in, "zero-width hidden layer");
      }
      cfg.hidden.push_back(static_cast<std::size_t>(width));
    }
    cfg.num_classes = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
    if (cfg.num_features == 0 || cfg.num_classes == 0) {
      bad_blob(in, "zero model dimension");
    }
    unsigned __int128 params = 0;
    std::uint64_t prev = static_cast<std::uint64_t>(cfg.num_features);
    for (const std::size_t h : cfg.hidden) {
      params += static_cast<unsigned __int128>(prev) * h + h;
      prev = h;
    }
    params += static_cast<unsigned __int128>(prev) * cfg.num_classes +
              cfg.num_classes;
    check_params_present(in, params);
    auto model = std::make_unique<DeepMlp>(cfg);
    read_params(in, *model);
    return model;
  }
  bad_blob(in, "unsupported version " + std::to_string(version));
}

std::unique_ptr<Model> load_any_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("model checkpoint: cannot open " + path);
  return load_any_model(in);
}

MlpModel load_model(std::istream& in) {
  const auto any = load_any_model(in);
  if (const auto* mlp = dynamic_cast<const MlpModel*>(any.get())) {
    return *mlp;
  }
  const auto& info = any->info();
  if (info.hidden.size() != 1) {
    throw std::runtime_error(
        "model checkpoint: not loadable as a single-hidden-layer MLP");
  }
  // v2 checkpoint with one hidden layer: same flat layout as MlpModel.
  MlpConfig cfg;
  cfg.num_features = info.num_features;
  cfg.hidden = info.hidden.front();
  cfg.num_classes = info.num_classes;
  MlpModel model(cfg);
  model.from_flat(any->to_flat());
  return model;
}

MlpModel load_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("model checkpoint: cannot open " + path);
  return load_model(in);
}

}  // namespace hetero::nn
