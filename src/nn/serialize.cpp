#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace hetero::nn {

namespace {
constexpr char kMagic[4] = {'H', 'G', 'P', 'U'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("model checkpoint: truncated input");
  return value;
}
}  // namespace

void save_model(std::ostream& out, const MlpModel& model) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(model.config().num_features));
  write_pod(out, static_cast<std::uint64_t>(model.config().hidden));
  write_pod(out, static_cast<std::uint64_t>(model.config().num_classes));
  const auto flat = model.to_flat();
  out.write(reinterpret_cast<const char*>(flat.data()),
            static_cast<std::streamsize>(flat.size() * sizeof(float)));
  if (!out) throw std::runtime_error("model checkpoint: write failed");
}

void save_model_file(const std::string& path, const MlpModel& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("model checkpoint: cannot open " + path);
  save_model(out, model);
}

MlpModel load_model(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("model checkpoint: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("model checkpoint: unsupported version " +
                             std::to_string(version));
  }
  MlpConfig cfg;
  cfg.num_features = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  cfg.hidden = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  cfg.num_classes = static_cast<std::size_t>(read_pod<std::uint64_t>(in));

  MlpModel model(cfg);
  std::vector<float> flat(cfg.num_parameters());
  in.read(reinterpret_cast<char*>(flat.data()),
          static_cast<std::streamsize>(flat.size() * sizeof(float)));
  if (!in) throw std::runtime_error("model checkpoint: truncated parameters");
  model.from_flat(flat);
  return model;
}

MlpModel load_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("model checkpoint: cannot open " + path);
  return load_model(in);
}

}  // namespace hetero::nn
