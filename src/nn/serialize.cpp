#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "nn/deep_mlp.h"

namespace hetero::nn {

namespace {
constexpr char kMagic[4] = {'H', 'G', 'P', 'U'};
constexpr std::uint32_t kVersionMlp = 1;
constexpr std::uint32_t kVersionLayerList = 2;
// Sanity bound for v2 headers: a corrupt num_hidden must fail fast instead
// of driving a multi-gigabyte allocation.
constexpr std::uint64_t kMaxHiddenLayers = 1024;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("model checkpoint: truncated input");
  return value;
}

void write_params(std::ostream& out, const Model& model) {
  const auto flat = model.to_flat();
  out.write(reinterpret_cast<const char*>(flat.data()),
            static_cast<std::streamsize>(flat.size() * sizeof(float)));
  if (!out) throw std::runtime_error("model checkpoint: write failed");
}

void read_params(std::istream& in, Model& model) {
  std::vector<float> flat(model.num_parameters());
  in.read(reinterpret_cast<char*>(flat.data()),
          static_cast<std::streamsize>(flat.size() * sizeof(float)));
  if (!in) throw std::runtime_error("model checkpoint: truncated parameters");
  model.from_flat(flat);
}
}  // namespace

void save_model(std::ostream& out, const Model& model) {
  out.write(kMagic, sizeof(kMagic));
  if (const auto* mlp = dynamic_cast<const MlpModel*>(&model)) {
    write_pod(out, kVersionMlp);
    write_pod(out, static_cast<std::uint64_t>(mlp->config().num_features));
    write_pod(out, static_cast<std::uint64_t>(mlp->config().hidden));
    write_pod(out, static_cast<std::uint64_t>(mlp->config().num_classes));
  } else {
    const auto& info = model.info();
    write_pod(out, kVersionLayerList);
    write_pod(out, static_cast<std::uint64_t>(info.hidden.size()));
    write_pod(out, static_cast<std::uint64_t>(info.num_features));
    for (const std::size_t h : info.hidden) {
      write_pod(out, static_cast<std::uint64_t>(h));
    }
    write_pod(out, static_cast<std::uint64_t>(info.num_classes));
  }
  write_params(out, model);
}

void save_model_file(const std::string& path, const Model& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("model checkpoint: cannot open " + path);
  save_model(out, model);
}

std::unique_ptr<Model> load_any_model(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("model checkpoint: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version == kVersionMlp) {
    MlpConfig cfg;
    cfg.num_features = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
    cfg.hidden = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
    cfg.num_classes = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
    auto model = std::make_unique<MlpModel>(cfg);
    read_params(in, *model);
    return model;
  }
  if (version == kVersionLayerList) {
    const auto num_hidden = read_pod<std::uint64_t>(in);
    if (num_hidden == 0 || num_hidden > kMaxHiddenLayers) {
      throw std::runtime_error("model checkpoint: bad hidden-layer count " +
                               std::to_string(num_hidden));
    }
    DeepMlpConfig cfg;
    cfg.num_features = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
    cfg.hidden.clear();
    for (std::uint64_t l = 0; l < num_hidden; ++l) {
      const auto width = read_pod<std::uint64_t>(in);
      if (width == 0) {
        throw std::runtime_error("model checkpoint: zero-width hidden layer");
      }
      cfg.hidden.push_back(static_cast<std::size_t>(width));
    }
    cfg.num_classes = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
    auto model = std::make_unique<DeepMlp>(cfg);
    read_params(in, *model);
    return model;
  }
  throw std::runtime_error("model checkpoint: unsupported version " +
                           std::to_string(version));
}

std::unique_ptr<Model> load_any_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("model checkpoint: cannot open " + path);
  return load_any_model(in);
}

MlpModel load_model(std::istream& in) {
  const auto any = load_any_model(in);
  if (const auto* mlp = dynamic_cast<const MlpModel*>(any.get())) {
    return *mlp;
  }
  const auto& info = any->info();
  if (info.hidden.size() != 1) {
    throw std::runtime_error(
        "model checkpoint: not loadable as a single-hidden-layer MLP");
  }
  // v2 checkpoint with one hidden layer: same flat layout as MlpModel.
  MlpConfig cfg;
  cfg.num_features = info.num_features;
  cfg.hidden = info.hidden.front();
  cfg.num_classes = info.num_classes;
  MlpModel model(cfg);
  model.from_flat(any->to_flat());
  return model;
}

MlpModel load_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("model checkpoint: cannot open " + path);
  return load_model(in);
}

}  // namespace hetero::nn
