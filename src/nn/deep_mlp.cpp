#include "nn/deep_mlp.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "sparse/ops.h"
#include "tensor/ops.h"

namespace hetero::nn {

std::size_t DeepMlpConfig::num_parameters() const {
  std::size_t total = 0;
  std::size_t in = num_features;
  for (std::size_t h : hidden) {
    total += in * h + h;
    in = h;
  }
  total += in * num_classes + num_classes;
  return total;
}

DeepMlp::DeepMlp(const DeepMlpConfig& cfg) : cfg_(cfg) {
  assert(!cfg.hidden.empty());
  std::size_t in = cfg.num_features;
  for (std::size_t h : cfg.hidden) {
    weights_.emplace_back(in, h);
    biases_.emplace_back(h, 0.0f);
    in = h;
  }
  weights_.emplace_back(in, cfg.num_classes);
  biases_.emplace_back(cfg.num_classes, 0.0f);
  pre_.resize(weights_.size());
  acts_.resize(weights_.size());
  deltas_.resize(weights_.size());
}

void DeepMlp::init(util::Rng& rng) {
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    const double fan_in = static_cast<double>(
        std::max<std::size_t>(1, weights_[l].rows()));
    tensor::init_gaussian(weights_[l], 1.0 / std::sqrt(fan_in), rng);
    std::fill(biases_[l].begin(), biases_[l].end(), 0.0f);
  }
}

std::vector<float> DeepMlp::to_flat() const {
  std::vector<float> flat;
  flat.reserve(num_parameters());
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    flat.insert(flat.end(), weights_[l].flat().begin(),
                weights_[l].flat().end());
    flat.insert(flat.end(), biases_[l].begin(), biases_[l].end());
  }
  return flat;
}

void DeepMlp::from_flat(std::span<const float> flat) {
  assert(flat.size() == num_parameters());
  const float* p = flat.data();
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    std::copy_n(p, weights_[l].size(), weights_[l].data());
    p += weights_[l].size();
    std::copy_n(p, biases_[l].size(), biases_[l].data());
    p += biases_[l].size();
  }
}

void DeepMlp::forward(const sparse::CsrMatrix& x) {
  const std::size_t layers = weights_.size();
  for (std::size_t l = 0; l < layers; ++l) {
    if (l == 0) {
      sparse::spmm(x, weights_[0], pre_[0]);
    } else {
      tensor::gemm(acts_[l - 1], weights_[l], pre_[l]);
    }
    tensor::add_row_bias(pre_[l], {biases_[l].data(), biases_[l].size()});
    acts_[l] = pre_[l];
    if (l + 1 < layers) {
      tensor::relu(acts_[l]);
    } else {
      tensor::softmax_rows(acts_[l]);
    }
  }
}

double DeepMlp::loss_from_probs(const sparse::CsrMatrix& y) const {
  const auto& probs = acts_.back();
  double total = 0.0;
  for (std::size_t r = 0; r < y.rows(); ++r) {
    const auto labels = y.row_cols(r);
    if (labels.empty()) continue;
    const float* p = probs.data() + r * cfg_.num_classes;
    double row = 0.0;
    for (auto c : labels) row -= std::log(std::max(1e-12f, p[c]));
    total += row / static_cast<double>(labels.size());
  }
  return total / static_cast<double>(std::max<std::size_t>(1, y.rows()));
}

double DeepMlp::loss(const sparse::CsrMatrix& x, const sparse::CsrMatrix& y) {
  forward(x);
  return loss_from_probs(y);
}

double DeepMlp::sgd_step(const sparse::CsrMatrix& x,
                         const sparse::CsrMatrix& y, float lr) {
  const std::size_t layers = weights_.size();
  forward(x);
  const double step_loss = loss_from_probs(y);
  const float inv_batch = 1.0f / static_cast<float>(x.rows());

  // Output delta.
  deltas_.back() = acts_.back();
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto labels = y.row_cols(r);
    if (labels.empty()) continue;
    const float share = 1.0f / static_cast<float>(labels.size());
    float* d = deltas_.back().data() + r * cfg_.num_classes;
    for (auto c : labels) d[c] -= share;
  }
  tensor::scale(deltas_.back().flat(), inv_batch);

  // Backward through the dense stack, updating as we go (gradients for
  // layer l depend only on delta_l and act_{l-1}, both already final).
  for (std::size_t l = layers; l-- > 0;) {
    // Propagate delta to the previous layer BEFORE updating weights_[l].
    if (l > 0) {
      tensor::gemm_a_bt(deltas_[l], weights_[l], deltas_[l - 1]);
      tensor::relu_backward(pre_[l - 1], deltas_[l - 1]);
    }

    grad_b_.assign(weights_[l].cols(), 0.0f);
    tensor::column_sums(deltas_[l], {grad_b_.data(), grad_b_.size()});
    tensor::axpy(-lr, {grad_b_.data(), grad_b_.size()},
                 {biases_[l].data(), biases_[l].size()});

    if (l == 0) {
      // Sparse layer: accumulate and apply only the touched rows.
      grad_w_.resize(weights_[0].rows(), weights_[0].cols(), 0.0f);
      sparse::spmm_t_accumulate(x, deltas_[0], grad_w_);
      std::vector<std::uint32_t> touched(x.col_idx());
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()),
                    touched.end());
      const std::size_t h = weights_[0].cols();
      for (auto row : touched) {
        float* w = weights_[0].data() + static_cast<std::size_t>(row) * h;
        const float* g = grad_w_.data() + static_cast<std::size_t>(row) * h;
        for (std::size_t j = 0; j < h; ++j) w[j] -= lr * g[j];
      }
    } else {
      tensor::gemm_at_b(acts_[l - 1], deltas_[l], grad_w_);
      tensor::axpy(-lr, grad_w_.flat(), weights_[l].flat());
    }
  }
  return step_loss;
}

double DeepMlp::evaluate_top1(const sparse::LabeledDataset& test,
                              std::size_t max_samples,
                              std::size_t eval_batch) {
  const std::size_t n = max_samples == 0
                            ? test.num_samples()
                            : std::min(max_samples, test.num_samples());
  if (n == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t begin = 0; begin < n; begin += eval_batch) {
    const std::size_t end = std::min(begin + eval_batch, n);
    const auto x = test.features.slice_rows(begin, end);
    forward(x);
    const auto& probs = acts_.back();
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const auto best = tensor::argmax(probs.row(r));
      if (test.labels.row_contains(begin + r,
                                   static_cast<std::uint32_t>(best))) {
        ++hits;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

double DeepMlp::l2_norm_per_parameter() const {
  double ss = 0.0;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    ss += tensor::sum_of_squares(weights_[l].flat());
    ss += tensor::sum_of_squares({biases_[l].data(), biases_[l].size()});
  }
  return std::sqrt(ss) / static_cast<double>(num_parameters());
}

}  // namespace hetero::nn
