#include "nn/deep_mlp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>
#include <utility>

#include "sparse/ops.h"
#include "tensor/ops.h"

namespace hetero::nn {

std::size_t DeepMlpConfig::num_parameters() const {
  std::size_t total = 0;
  std::size_t in = num_features;
  for (std::size_t h : hidden) {
    total += in * h + h;
    in = h;
  }
  total += in * num_classes + num_classes;
  return total;
}

void DeepWorkspace::ensure(const DeepMlpConfig& cfg) {
  const std::size_t nh = cfg.hidden.size();
  const std::size_t layers = cfg.num_layers();
  pre.resize(nh);
  acts.resize(nh);
  deltas.resize(layers);
  // grad_w1 is keyed per batch by compute_gradients; nothing to pre-size.
  grad_w.resize(layers - 1);
  grad_b.resize(layers);
  std::size_t in = cfg.hidden.front();
  for (std::size_t l = 1; l < layers; ++l) {
    const std::size_t out =
        l < nh ? cfg.hidden[l] : cfg.num_classes;
    if (grad_w[l - 1].rows() != in || grad_w[l - 1].cols() != out) {
      grad_w[l - 1].resize(in, out);
    }
    in = out;
  }
  for (std::size_t l = 0; l < layers; ++l) {
    const std::size_t out = l < nh ? cfg.hidden[l] : cfg.num_classes;
    grad_b[l].assign(out, 0.0f);
  }
}

void DeepWorkspace::swap_gradients(ModelWorkspace& other) {
  auto& o = dynamic_cast<DeepWorkspace&>(other);
  std::swap(grad_w1, o.grad_w1);
  std::swap(grad_w, o.grad_w);
  std::swap(grad_b, o.grad_b);
}

namespace {

ModelInfo make_info(const DeepMlpConfig& cfg) {
  ModelInfo info;
  info.num_features = cfg.num_features;
  info.hidden = cfg.hidden;
  info.num_classes = cfg.num_classes;
  info.num_parameters = cfg.num_parameters();
  return info;
}

}  // namespace

DeepMlp::DeepMlp(const DeepMlpConfig& cfg) : cfg_(cfg), info_(make_info(cfg)) {
  assert(!cfg.hidden.empty());
  std::size_t in = cfg.num_features;
  for (std::size_t h : cfg.hidden) {
    weights_.emplace_back(in, h);
    biases_.emplace_back(h, 0.0f);
    in = h;
  }
  weights_.emplace_back(in, cfg.num_classes);
  biases_.emplace_back(cfg.num_classes, 0.0f);
}

void DeepMlp::init(util::Rng& rng) {
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    const double fan_in = static_cast<double>(
        std::max<std::size_t>(1, weights_[l].rows()));
    tensor::init_gaussian(weights_[l], 1.0 / std::sqrt(fan_in), rng);
    std::fill(biases_[l].begin(), biases_[l].end(), 0.0f);
  }
}

std::unique_ptr<Model> DeepMlp::clone() const {
  return std::make_unique<DeepMlp>(*this);
}

void DeepMlp::copy_from(const Model& other) {
  const auto& src = dynamic_cast<const DeepMlp&>(other);
  assert(src.num_parameters() == num_parameters());
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    weights_[l] = src.weights_[l];
    biases_[l] = src.biases_[l];
  }
}

std::unique_ptr<ModelWorkspace> DeepMlp::make_workspace() const {
  return std::make_unique<DeepWorkspace>();
}

std::vector<float> DeepMlp::to_flat() const {
  std::vector<float> flat;
  flat.reserve(num_parameters());
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    flat.insert(flat.end(), weights_[l].flat().begin(),
                weights_[l].flat().end());
    flat.insert(flat.end(), biases_[l].begin(), biases_[l].end());
  }
  return flat;
}

void DeepMlp::from_flat(std::span<const float> flat) {
  assert(flat.size() == num_parameters());
  const float* p = flat.data();
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    std::copy_n(p, weights_[l].size(), weights_[l].data());
    p += weights_[l].size();
    std::copy_n(p, biases_[l].size(), biases_[l].data());
    p += biases_[l].size();
  }
}

std::vector<std::span<float>> DeepMlp::segment_views() {
  std::vector<std::span<float>> views;
  views.reserve(2 * weights_.size());
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    views.push_back({weights_[l].data(), weights_[l].size()});
    views.push_back({biases_[l].data(), biases_[l].size()});
  }
  return views;
}

double DeepMlp::l2_norm_per_parameter() const {
  double ss = 0.0;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    ss += tensor::sum_of_squares(weights_[l].flat());
    ss += tensor::sum_of_squares({biases_[l].data(), biases_[l].size()});
  }
  return std::sqrt(ss) / static_cast<double>(num_parameters());
}

double DeepMlp::forward_impl(const sparse::CsrMatrix& x,
                             const sparse::CsrMatrix& y,
                             DeepWorkspace& ws) const {
  assert(x.cols() == cfg_.num_features);
  assert(y.cols() == cfg_.num_classes);
  assert(x.rows() == y.rows());
  const std::size_t nh = cfg_.hidden.size();

  // Hidden stack. The single-hidden case runs the exact MlpModel sequence
  // (spmm, bias, copy, relu, gemm, bias, softmax) so results bit-match.
  for (std::size_t l = 0; l < nh; ++l) {
    if (l == 0) {
      sparse::spmm(x, weights_[0], ws.pre[0], ws.ctx);
    } else {
      tensor::gemm(ws.acts[l - 1], weights_[l], ws.pre[l], ws.ctx);
    }
    tensor::add_row_bias(ws.pre[l], {biases_[l].data(), biases_[l].size()});
    ws.acts[l] = ws.pre[l];
    tensor::relu(ws.acts[l]);
  }

  // Output layer straight into the shared probs buffer.
  tensor::gemm(ws.acts[nh - 1], weights_[nh], ws.probs, ws.ctx);
  tensor::add_row_bias(ws.probs,
                       {biases_[nh].data(), biases_[nh].size()});
  tensor::softmax_rows(ws.probs);

  // Multi-label cross-entropy, uniform target over positive labels.
  double loss = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto labels = y.row_cols(r);
    if (labels.empty()) continue;
    const float* p = ws.probs.data() + r * cfg_.num_classes;
    double row_loss = 0.0;
    for (auto c : labels) {
      row_loss -= std::log(std::max(1e-12f, p[c]));
    }
    loss += row_loss / static_cast<double>(labels.size());
  }
  return loss / static_cast<double>(std::max<std::size_t>(1, x.rows()));
}

double DeepMlp::forward_loss(const sparse::CsrMatrix& x,
                             const sparse::CsrMatrix& y,
                             ModelWorkspace& ws) const {
  auto& dws = dynamic_cast<DeepWorkspace&>(ws);
  dws.ensure(cfg_);
  return forward_impl(x, y, dws);
}

StepStats DeepMlp::compute_gradients(const sparse::CsrMatrix& x,
                                     const sparse::CsrMatrix& y,
                                     ModelWorkspace& ws) const {
  auto& dws = dynamic_cast<DeepWorkspace&>(ws);
  dws.ensure(cfg_);
  const std::size_t layers = cfg_.num_layers();
  const std::size_t nh = cfg_.hidden.size();

  StepStats stats;
  stats.batch_size = x.rows();
  stats.batch_nnz = x.nnz();
  stats.loss = forward_impl(x, y, dws);

  const float inv_batch = 1.0f / static_cast<float>(x.rows());

  // Output delta: (probs - target) / batch, target uniform over positives.
  auto& dlast = dws.deltas[layers - 1];
  dlast = dws.probs;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto labels = y.row_cols(r);
    if (labels.empty()) continue;
    const float share = 1.0f / static_cast<float>(labels.size());
    float* d = dlast.data() + r * cfg_.num_classes;
    for (auto c : labels) d[c] -= share;
  }
  tensor::scale(dlast.flat(), inv_batch);

  // Output-layer gradients.
  tensor::gemm_at_b(dws.acts[nh - 1], dlast, dws.grad_w[layers - 2],
                    dws.ctx);
  tensor::column_sums(dlast, {dws.grad_b[layers - 1].data(),
                              dws.grad_b[layers - 1].size()});

  // Propagate down the dense stack; deltas are w.r.t. pre-activations.
  for (std::size_t l = layers - 1; l-- > 0;) {
    tensor::gemm_a_bt(dws.deltas[l + 1], weights_[l + 1], dws.deltas[l],
                      dws.ctx);
    tensor::relu_backward(dws.pre[l], dws.deltas[l]);
    if (l > 0) {
      tensor::gemm_at_b(dws.acts[l - 1], dws.deltas[l], dws.grad_w[l - 1],
                        dws.ctx);
      tensor::column_sums(dws.deltas[l],
                          {dws.grad_b[l].data(), dws.grad_b[l].size()});
    }
  }

  // Sparse input layer: touched-row gradient keyed by this batch. No
  // F x H1 dense buffer is ever materialized.
  dws.grad_w1.reset(x, cfg_.hidden.front());
  dws.grad_w1.accumulate_spmm_t(x, dws.deltas[0], dws.ctx);
  tensor::column_sums(dws.deltas[0],
                      {dws.grad_b[0].data(), dws.grad_b[0].size()});
  return stats;
}

void DeepMlp::apply_gradients(const ModelWorkspace& ws, float lr,
                              float weight_decay) {
  const auto& dws = dynamic_cast<const DeepWorkspace&>(ws);
  const std::size_t layers = cfg_.num_layers();
  // Decoupled L2 decay factor; 1.0 when decay is off.
  const float keep = 1.0f - lr * weight_decay;
  // Sparse input layer: only the feature rows present in the batch carry
  // gradient (and, for consistency, decay).
  dws.grad_w1.apply_to(weights_[0], lr, keep, dws.ctx);
  if (weight_decay != 0.0f) {
    tensor::scale({biases_[0].data(), biases_[0].size()}, keep);
    for (std::size_t l = 1; l < layers; ++l) {
      tensor::scale(weights_[l].flat(), keep);
      tensor::scale({biases_[l].data(), biases_[l].size()}, keep);
    }
  }
  tensor::axpy(-lr, {dws.grad_b[0].data(), dws.grad_b[0].size()},
               {biases_[0].data(), biases_[0].size()});
  for (std::size_t l = 1; l < layers; ++l) {
    tensor::axpy(-lr, dws.grad_w[l - 1].flat(), weights_[l].flat());
    tensor::axpy(-lr, {dws.grad_b[l].data(), dws.grad_b[l].size()},
                 {biases_[l].data(), biases_[l].size()});
  }
}

StepStats DeepMlp::train_step(const sparse::CsrMatrix& x,
                              const sparse::CsrMatrix& y, float lr,
                              ModelWorkspace& ws, float weight_decay) {
  const StepStats stats = compute_gradients(x, y, ws);
  apply_gradients(ws, lr, weight_decay);
  return stats;
}

std::vector<sim::KernelDesc> DeepMlp::step_kernels(
    const sparse::CsrMatrix& x) const {
  const std::size_t layers = cfg_.num_layers();
  const double b = static_cast<double>(x.rows());
  const double nnz = static_cast<double>(x.nnz());
  const double c = static_cast<double>(cfg_.num_classes);
  const double h1 = static_cast<double>(cfg_.hidden.front());
  const double f4 = sizeof(float);

  // out[l] = output width of layer l.
  std::vector<double> out;
  out.reserve(layers);
  for (std::size_t h : cfg_.hidden) out.push_back(static_cast<double>(h));
  out.push_back(c);

  std::vector<sim::KernelDesc> kernels;
  const auto add = [&](double flops, double bytes, bool sparse,
                       std::string name) {
    kernels.push_back({flops, bytes, sparse, std::move(name)});
  };

  // Forward. With one hidden layer this emits MlpModel's exact list
  // (same names, formulas, and order), so the simulator charges the two
  // paths identical virtual time.
  add(2 * nnz * h1, nnz * (4 + f4) + nnz * h1 * f4 + b * h1 * f4, true,
      "spmm_fwd1");
  add(b * h1, 2 * b * h1 * f4, false, "bias_relu1");
  for (std::size_t l = 1; l < layers; ++l) {
    const double m = out[l - 1], n = out[l];
    add(2 * b * m * n, (b * m + m * n + b * n) * f4, false,
        "gemm_fwd" + std::to_string(l + 1));
    if (l + 1 < layers) {
      add(b * n, 2 * b * n * f4, false, "bias_relu" + std::to_string(l + 1));
    } else {
      add(b * c * 4, 2 * b * c * f4, false, "bias_softmax");
    }
  }
  // Backward.
  add(b * c, 2 * b * c * f4, false, "delta" + std::to_string(layers));
  for (std::size_t l = layers; l-- > 1;) {
    const double m = out[l - 1], n = out[l];
    add(2 * b * m * n, (b * m + b * n + m * n) * f4, false,
        "gemm_grad_w" + std::to_string(l + 1));
    add(2 * b * m * n, (b * n + m * n + b * m) * f4, false,
        "gemm_delta" + std::to_string(l));
    add(b * m, 2 * b * m * f4, false,
        l == 1 ? std::string("relu_bwd") : "relu_bwd" + std::to_string(l));
  }
  add(2 * nnz * h1, nnz * (4 + f4) + nnz * h1 * f4, true, "spmm_t_grad_w1");
  // Updates (sparse for the input layer: rows touched by the batch only).
  add(2 * nnz * h1, 2 * nnz * h1 * f4, true, "update_w1");
  for (std::size_t l = 1; l < layers; ++l) {
    const double m = out[l - 1], n = out[l];
    add(2 * m * n, 3 * m * n * f4, false,
        "update_w" + std::to_string(l + 1));
  }
  double bias_total = 0.0;
  for (double n : out) bias_total += n;
  add(bias_total, 2 * bias_total * f4, false, "update_bias");
  return kernels;
}

std::size_t DeepMlp::step_memory_bytes(std::size_t batch_size,
                                       double avg_nnz) const {
  const double c = static_cast<double>(cfg_.num_classes);
  const double h1 = static_cast<double>(cfg_.hidden.front());
  const double nnz = avg_nnz * static_cast<double>(batch_size);
  double sum_hidden = 0.0;
  for (std::size_t h : cfg_.hidden) sum_hidden += static_cast<double>(h);
  // Per hidden layer: pre + act + delta; output layer: probs + delta.
  const double activations =
      static_cast<double>(batch_size) * (3.0 * sum_hidden + 2.0 * c) *
      sizeof(float);
  const double csr = nnz * (sizeof(std::uint32_t) + sizeof(float));
  // Dense-layer gradients + sparse input-layer gradient rows.
  double dense_w = 0.0;
  double in = h1;
  for (std::size_t l = 1; l < cfg_.num_layers(); ++l) {
    const double n = l < cfg_.hidden.size()
                         ? static_cast<double>(cfg_.hidden[l])
                         : c;
    dense_w += in * n;
    in = n;
  }
  const double grads = (dense_w + nnz * h1) * sizeof(float);
  return static_cast<std::size_t>(activations + csr + grads);
}

}  // namespace hetero::nn
