// SimHash (random hyperplane) LSH for SLIDE-style adaptive neuron sampling.
//
// Each of the L tables hashes a vector to a K-bit signature: bit k is the
// sign of the dot product with a random Gaussian hyperplane. Vectors with
// high cosine similarity collide with high probability, so hashing a hidden
// activation retrieves output neurons whose weight vectors have large inner
// product with it — the neurons that matter for softmax.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace hetero::slide {

class SimHash {
 public:
  /// `dim`-dimensional inputs, `k` bits per signature, `l` tables.
  SimHash(std::size_t dim, std::size_t k, std::size_t l, util::Rng& rng);

  /// Signature of `v` under table `table` (k bits packed in a u64).
  std::uint64_t signature(std::size_t table, std::span<const float> v) const;

  std::size_t dim() const { return dim_; }
  std::size_t bits() const { return k_; }
  std::size_t tables() const { return l_; }
  std::size_t buckets_per_table() const { return 1ull << k_; }

 private:
  std::size_t dim_;
  std::size_t k_;
  std::size_t l_;
  // Hyperplanes laid out [table][bit][dim].
  std::vector<float> planes_;
};

}  // namespace hetero::slide
