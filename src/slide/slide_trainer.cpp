#include "slide/slide_trainer.h"

#include <algorithm>

#include "data/sample_stream.h"

namespace hetero::slide {

namespace {
SlideNetConfig net_config(const data::XmlDataset& dataset,
                          const SlideConfig& cfg) {
  SlideNetConfig nc;
  nc.num_features = dataset.train.features.cols();
  nc.num_classes = dataset.train.labels.cols();
  nc.hidden = cfg.hidden;
  nc.k_bits = cfg.k_bits;
  nc.l_tables = cfg.l_tables;
  nc.min_active = cfg.min_active;
  nc.max_active = std::min(cfg.max_active, nc.num_classes);
  return nc;
}
}  // namespace

SlideTrainer::SlideTrainer(const data::XmlDataset& dataset,
                           const SlideConfig& cfg)
    : dataset_(dataset), cfg_(cfg), rng_(cfg.seed),
      net_(net_config(dataset, cfg), rng_) {}

core::TrainResult SlideTrainer::train() {
  core::TrainResult result;
  result.method = "slide-cpu";
  result.dataset = dataset_.name;
  result.num_gpus = 0;
  result.gpus.resize(1);  // one trace for the CPU

  const double rate = static_cast<double>(cfg_.threads) *
                      cfg_.per_thread_gflops * 1e9 *
                      cfg_.parallel_efficiency;
  // LSH rebuild work: rehash every neuron under every table/bit.
  const double rebuild_flops =
      cfg_.compute_scale * 2.0 *
      static_cast<double>(net_.config().num_classes) *
      static_cast<double>(cfg_.l_tables * cfg_.k_bits) *
      static_cast<double>(cfg_.hidden);

  data::SampleStream stream(dataset_.train.num_samples(),
                            cfg_.seed ^ 0xa5a5a5a5ULL);
  double vtime = 0.0;
  double loss_sum = 0.0;
  std::size_t loss_count = 0;
  std::size_t updates_since_rebuild = 0;
  std::size_t samples_since_eval = 0;
  std::size_t megabatch = 0;

  const auto record = [&]() {
    core::CurvePoint p;
    p.vtime = vtime;
    p.samples = stream.samples_served();
    p.passes = static_cast<double>(p.samples) /
               static_cast<double>(stream.dataset_size());
    p.megabatch = megabatch;
    p.top1 = net_.evaluate_top1(dataset_.test, cfg_.eval_samples);
    p.train_loss = loss_count
                       ? loss_sum / static_cast<double>(loss_count)
                       : 0.0;
    result.curve.push_back(p);
    loss_sum = 0.0;
    loss_count = 0;
  };

  record();  // initial point

  const float lr = static_cast<float>(cfg_.learning_rate);
  while (stream.samples_served() < cfg_.total_samples) {
    const auto rows = stream.next(1);
    const std::size_t r = rows[0];
    const auto stats = net_.train_sample(
        dataset_.train.features.row_cols(r),
        dataset_.train.features.row_values(r),
        dataset_.train.labels.row_cols(r), lr, rng_);
    vtime += cfg_.compute_scale * stats.flops / rate;
    loss_sum += stats.loss;
    ++loss_count;
    result.gpus[0].total_updates += 1;
    result.gpus[0].total_samples += 1;

    if (++updates_since_rebuild >= cfg_.rebuild_every) {
      net_.rebuild_lsh();
      // Rebuild parallelizes across threads but stalls updates.
      vtime += rebuild_flops / rate;
      updates_since_rebuild = 0;
    }
    if (++samples_since_eval >= cfg_.eval_every_samples) {
      ++megabatch;
      samples_since_eval = 0;
      record();
    }
  }
  if (samples_since_eval != 0) {
    ++megabatch;
    record();
  }
  result.total_vtime = vtime;
  result.gpus[0].busy_seconds = vtime;
  return result;
}

}  // namespace hetero::slide
