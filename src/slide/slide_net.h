// SLIDE-style network: one ReLU hidden layer + sampled softmax output whose
// active neuron set is selected per sample by LSH (Chen et al., "SLIDE: In
// Defense of Smart Algorithms over Hardware Acceleration", the paper's CPU
// baseline).
//
// Layout differs from nn::MlpModel: the output weights are stored
// neuron-major (C x H) so a neuron's weight vector is contiguous — needed
// both for per-neuron LSH hashing and for touching only the active rows.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "slide/lsh_table.h"
#include "sparse/libsvm.h"
#include "util/rng.h"

namespace hetero::slide {

struct SlideNetConfig {
  std::size_t num_features = 0;
  std::size_t hidden = 64;
  std::size_t num_classes = 0;
  std::size_t k_bits = 6;
  std::size_t l_tables = 8;
  /// Bounds on the active output set (true labels always included).
  std::size_t min_active = 32;
  std::size_t max_active = 128;
};

struct SampleStats {
  double loss = 0.0;
  std::size_t active = 0;      // active output neurons
  double flops = 0.0;          // work estimate for the CPU cost model
};

class SlideNetwork {
 public:
  SlideNetwork(const SlideNetConfig& cfg, util::Rng& rng);

  /// One asynchronous SGD update from a single sample (SLIDE processes one
  /// sample per thread). Active set = true labels ∪ LSH(h) ∪ random fill.
  SampleStats train_sample(std::span<const std::uint32_t> x_cols,
                           std::span<const float> x_vals,
                           std::span<const std::uint32_t> labels, float lr,
                           util::Rng& rng);

  /// Rehashes all output neurons (called every `rebuild_every` updates).
  void rebuild_lsh();

  /// Full-softmax top-1 accuracy on a test prefix (evaluation uses the
  /// exact forward pass, not the sampled one).
  double evaluate_top1(const sparse::LabeledDataset& test,
                       std::size_t max_samples) const;

  const SlideNetConfig& config() const { return cfg_; }
  std::size_t lsh_rebuilds() const { return lsh_.rebuilds(); }

 private:
  void hidden_forward(std::span<const std::uint32_t> x_cols,
                      std::span<const float> x_vals,
                      std::vector<float>& h) const;

  SlideNetConfig cfg_;
  std::vector<float> w1_;  // F x H, row-major per feature
  std::vector<float> b1_;  // H
  std::vector<float> wn_;  // C x H, row-major per neuron
  std::vector<float> bn_;  // C
  LshIndex lsh_;

  // Scratch (single-writer; the trainer serializes updates).
  std::vector<float> h_;
  std::vector<float> dh_;
  std::vector<std::uint32_t> active_;
  std::vector<float> logits_;
};

}  // namespace hetero::slide
