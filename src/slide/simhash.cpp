#include "slide/simhash.h"

#include <cassert>

namespace hetero::slide {

SimHash::SimHash(std::size_t dim, std::size_t k, std::size_t l,
                 util::Rng& rng)
    : dim_(dim), k_(k), l_(l), planes_(dim * k * l) {
  assert(k_ >= 1 && k_ <= 20);
  for (auto& p : planes_) p = static_cast<float>(rng.next_gaussian());
}

std::uint64_t SimHash::signature(std::size_t table,
                                 std::span<const float> v) const {
  assert(table < l_);
  assert(v.size() == dim_);
  std::uint64_t sig = 0;
  const float* base = planes_.data() + table * k_ * dim_;
  for (std::size_t bit = 0; bit < k_; ++bit) {
    const float* plane = base + bit * dim_;
    float acc = 0.0f;
    for (std::size_t d = 0; d < dim_; ++d) acc += plane[d] * v[d];
    sig |= static_cast<std::uint64_t>(acc > 0.0f) << bit;
  }
  return sig;
}

}  // namespace hetero::slide
