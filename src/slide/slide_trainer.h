// SLIDE trainer: asynchronous per-sample SGD across many CPU threads.
//
// Real math runs sequentially (single-writer, which is the race-free limit
// of Hogwild-style updates); the CPU *cost model* accounts for the
// multi-threaded wall-clock the paper's testbed would observe:
//
//   virtual_seconds = serial_flops / (threads * per_thread_gflops * eff)
//
// plus serialized LSH rebuild time. SLIDE performs one model update per
// SAMPLE, which is why its statistical efficiency beats the GPU methods in
// Fig. 5b while its hardware efficiency loses in Fig. 5a.
#pragma once

#include "core/metrics.h"
#include "data/synthetic.h"
#include "slide/slide_net.h"

namespace hetero::slide {

struct SlideConfig {
  std::size_t hidden = 64;
  double learning_rate = 0.01;  // per-sample updates want a smaller rate
  std::size_t k_bits = 6;
  std::size_t l_tables = 8;
  std::size_t min_active = 32;
  std::size_t max_active = 128;
  std::size_t rebuild_every = 4096;  // updates between LSH rebuilds

  /// Samples between accuracy measurements; set this to the GPU trainers'
  /// mega-batch size so Fig. 5 curves share their x-axis cadence.
  std::size_t eval_every_samples = 12'800;
  std::size_t total_samples = 128'000;
  std::size_t eval_samples = 1000;

  // --- CPU cost model (Intel 6226R-class: 16 cores / 32 threads) ----------
  std::size_t threads = 32;
  double per_thread_gflops = 1.2;
  double parallel_efficiency = 0.85;
  /// Must match the GPU trainers' compute_scale so virtual times compare.
  double compute_scale = 1.0;

  std::uint64_t seed = 12345;
};

class SlideTrainer {
 public:
  SlideTrainer(const data::XmlDataset& dataset, const SlideConfig& cfg);

  core::TrainResult train();

  const SlideNetwork& network() const { return net_; }

 private:
  const data::XmlDataset& dataset_;
  SlideConfig cfg_;
  util::Rng rng_;
  SlideNetwork net_;
};

}  // namespace hetero::slide
