// Bucketed LSH index over output-layer neurons.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "slide/simhash.h"

namespace hetero::slide {

class LshIndex {
 public:
  LshIndex(SimHash hasher, std::size_t num_items);

  /// Rehashes every item from its current vector (O(items * L * K * dim)).
  /// `vector_of` returns item i's vector.
  template <typename VecFn>
  void rebuild(VecFn vector_of) {
    for (auto& table : tables_) {
      for (auto& bucket : table) bucket.clear();
    }
    for (std::size_t i = 0; i < num_items_; ++i) {
      const auto v = vector_of(i);
      for (std::size_t t = 0; t < hasher_.tables(); ++t) {
        tables_[t][hasher_.signature(t, v)].push_back(
            static_cast<std::uint32_t>(i));
      }
    }
    ++rebuilds_;
  }

  /// Items colliding with `query` in any table, deduplicated, appended to
  /// `out` (which may already contain mandatory items; duplicates vs those
  /// are also removed). Stops adding once `out` reaches `max_items`.
  void query(std::span<const float> query_vec, std::size_t max_items,
             std::vector<std::uint32_t>& out) const;

  std::size_t rebuilds() const { return rebuilds_; }
  std::size_t num_items() const { return num_items_; }
  const SimHash& hasher() const { return hasher_; }

 private:
  SimHash hasher_;
  std::size_t num_items_;
  std::vector<std::vector<std::vector<std::uint32_t>>> tables_;
  std::size_t rebuilds_ = 0;
};

}  // namespace hetero::slide
