#include "slide/lsh_table.h"

#include <algorithm>

namespace hetero::slide {

LshIndex::LshIndex(SimHash hasher, std::size_t num_items)
    : hasher_(std::move(hasher)), num_items_(num_items) {
  tables_.resize(hasher_.tables());
  for (auto& table : tables_) table.resize(hasher_.buckets_per_table());
}

void LshIndex::query(std::span<const float> query_vec, std::size_t max_items,
                     std::vector<std::uint32_t>& out) const {
  for (std::size_t t = 0; t < tables_.size() && out.size() < max_items; ++t) {
    const auto sig = hasher_.signature(t, query_vec);
    for (auto item : tables_[t][sig]) {
      if (out.size() >= max_items) break;
      if (std::find(out.begin(), out.end(), item) == out.end()) {
        out.push_back(item);
      }
    }
  }
}

}  // namespace hetero::slide
