#include "slide/lsh_table.h"

namespace hetero::slide {

LshIndex::LshIndex(SimHash hasher, std::size_t num_items)
    : hasher_(std::move(hasher)), num_items_(num_items) {
  tables_.resize(hasher_.tables());
  for (auto& table : tables_) table.resize(hasher_.buckets_per_table());
}

void LshIndex::query(std::span<const float> query_vec, std::size_t max_items,
                     std::vector<std::uint32_t>& out) const {
  if (out.size() >= max_items) return;
  // Membership bitmap instead of a linear scan of `out` per candidate:
  // queries against wide output layers were O(candidates^2) before, which
  // dominated the serving LSH path.
  std::vector<char> seen(num_items_, 0);
  for (const auto item : out) {
    if (item < num_items_) seen[item] = 1;
  }
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    const auto sig = hasher_.signature(t, query_vec);
    for (const auto item : tables_[t][sig]) {
      if (seen[item]) continue;
      seen[item] = 1;
      out.push_back(item);
      if (out.size() >= max_items) return;
    }
  }
}

}  // namespace hetero::slide
