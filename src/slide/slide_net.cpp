#include "slide/slide_net.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hetero::slide {

SlideNetwork::SlideNetwork(const SlideNetConfig& cfg, util::Rng& rng)
    : cfg_(cfg),
      w1_(cfg.num_features * cfg.hidden),
      b1_(cfg.hidden, 0.0f),
      wn_(cfg.num_classes * cfg.hidden),
      bn_(cfg.num_classes, 0.0f),
      lsh_(SimHash(cfg.hidden, cfg.k_bits, cfg.l_tables, rng),
           cfg.num_classes) {
  const float s1 =
      1.0f / std::sqrt(static_cast<float>(std::max<std::size_t>(1,
                                              cfg.num_features)));
  for (auto& w : w1_) w = static_cast<float>(rng.next_gaussian()) * s1;
  const float s2 = 1.0f / std::sqrt(static_cast<float>(cfg.hidden));
  for (auto& w : wn_) w = static_cast<float>(rng.next_gaussian()) * s2;
  rebuild_lsh();
}

void SlideNetwork::rebuild_lsh() {
  const std::size_t h = cfg_.hidden;
  lsh_.rebuild([&](std::size_t neuron) {
    return std::span<const float>(wn_.data() + neuron * h, h);
  });
}

void SlideNetwork::hidden_forward(std::span<const std::uint32_t> x_cols,
                                  std::span<const float> x_vals,
                                  std::vector<float>& h) const {
  const std::size_t hd = cfg_.hidden;
  h.assign(b1_.begin(), b1_.end());
  for (std::size_t i = 0; i < x_cols.size(); ++i) {
    const float v = x_vals[i];
    const float* row = w1_.data() + static_cast<std::size_t>(x_cols[i]) * hd;
    for (std::size_t j = 0; j < hd; ++j) h[j] += v * row[j];
  }
  for (auto& x : h) x = std::max(x, 0.0f);
}

SampleStats SlideNetwork::train_sample(std::span<const std::uint32_t> x_cols,
                                       std::span<const float> x_vals,
                                       std::span<const std::uint32_t> labels,
                                       float lr, util::Rng& rng) {
  SampleStats stats;
  const std::size_t hd = cfg_.hidden;

  hidden_forward(x_cols, x_vals, h_);

  // Active set: true labels first (they must receive gradient), then LSH
  // candidates, then random negatives up to min_active.
  active_.assign(labels.begin(), labels.end());
  lsh_.query({h_.data(), h_.size()}, cfg_.max_active, active_);
  while (active_.size() < cfg_.min_active) {
    const auto c = static_cast<std::uint32_t>(rng.next_below(cfg_.num_classes));
    if (std::find(active_.begin(), active_.end(), c) == active_.end()) {
      active_.push_back(c);
    }
  }
  stats.active = active_.size();

  // Sampled softmax over the active set.
  logits_.resize(active_.size());
  float max_logit = -1e30f;
  for (std::size_t a = 0; a < active_.size(); ++a) {
    const float* w = wn_.data() + static_cast<std::size_t>(active_[a]) * hd;
    float acc = bn_[active_[a]];
    for (std::size_t j = 0; j < hd; ++j) acc += w[j] * h_[j];
    logits_[a] = acc;
    max_logit = std::max(max_logit, acc);
  }
  float z = 0.0f;
  for (auto& l : logits_) {
    l = std::exp(l - max_logit);
    z += l;
  }
  const float inv_z = 1.0f / z;
  for (auto& l : logits_) l *= inv_z;

  const float share =
      labels.empty() ? 0.0f : 1.0f / static_cast<float>(labels.size());
  for (std::size_t a = 0; a < active_.size(); ++a) {
    const bool is_label =
        std::find(labels.begin(), labels.end(), active_[a]) != labels.end();
    if (is_label) stats.loss -= std::log(std::max(1e-12f, logits_[a]));
    logits_[a] -= is_label ? share : 0.0f;  // delta_a = p_a - y_a
  }
  if (!labels.empty()) stats.loss *= share;

  // Hidden delta from PRE-update neuron weights, then update active rows.
  dh_.assign(hd, 0.0f);
  for (std::size_t a = 0; a < active_.size(); ++a) {
    const float delta = logits_[a];
    float* w = wn_.data() + static_cast<std::size_t>(active_[a]) * hd;
    for (std::size_t j = 0; j < hd; ++j) dh_[j] += delta * w[j];
    for (std::size_t j = 0; j < hd; ++j) w[j] -= lr * delta * h_[j];
    bn_[active_[a]] -= lr * delta;
  }
  for (std::size_t j = 0; j < hd; ++j) {
    if (h_[j] <= 0.0f) dh_[j] = 0.0f;  // ReLU mask
  }

  // Input layer: only rows for the sample's non-zero features.
  for (std::size_t i = 0; i < x_cols.size(); ++i) {
    const float v = x_vals[i];
    float* row = w1_.data() + static_cast<std::size_t>(x_cols[i]) * hd;
    for (std::size_t j = 0; j < hd; ++j) row[j] -= lr * v * dh_[j];
  }
  for (std::size_t j = 0; j < hd; ++j) b1_[j] -= lr * dh_[j];

  // Work estimate: hidden forward + active forward/backward + W1 update +
  // LSH hashing of the hidden vector.
  const double a = static_cast<double>(stats.active);
  const double nnz = static_cast<double>(x_cols.size());
  const double hdd = static_cast<double>(hd);
  stats.flops = 2.0 * nnz * hdd            // hidden forward
                + 4.0 * a * hdd            // active logits + updates
                + 2.0 * a * hdd            // hidden delta
                + 2.0 * nnz * hdd          // W1 update
                + static_cast<double>(cfg_.l_tables * cfg_.k_bits) * hdd;
  return stats;
}

double SlideNetwork::evaluate_top1(const sparse::LabeledDataset& test,
                                   std::size_t max_samples) const {
  const std::size_t n = max_samples == 0
                            ? test.num_samples()
                            : std::min(max_samples, test.num_samples());
  if (n == 0) return 0.0;
  const std::size_t hd = cfg_.hidden;
  std::vector<float> h;
  std::size_t hits = 0;
  for (std::size_t r = 0; r < n; ++r) {
    hidden_forward(test.features.row_cols(r), test.features.row_values(r), h);
    float best = -1e30f;
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < cfg_.num_classes; ++c) {
      const float* w = wn_.data() + c * hd;
      float acc = bn_[c];
      for (std::size_t j = 0; j < hd; ++j) acc += w[j] * h[j];
      if (acc > best) {
        best = acc;
        best_c = c;
      }
    }
    if (test.labels.row_contains(r, static_cast<std::uint32_t>(best_c))) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

}  // namespace hetero::slide
