#include "comm/quant.h"

#include <cmath>
#include <cstring>

#include "tensor/vec/vec.h"
#include "util/error.h"

namespace hetero::comm {

namespace {

constexpr char kMagic[4] = {'H', 'Q', 'P', 'K'};
constexpr std::uint8_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 32;
constexpr const char* kSource = "quant-payload";

void write_bytes(std::vector<std::uint8_t>& out, std::size_t off,
                 const void* p, std::size_t n) {
  std::memcpy(out.data() + off, p, n);
}

template <class T>
T read_at(std::span<const std::uint8_t> bytes, std::size_t off) {
  T v;
  std::memcpy(&v, bytes.data() + off, sizeof(T));
  return v;
}

std::uint64_t group_count(std::uint64_t elems, std::uint32_t cols) {
  return elems == 0 ? 0 : (elems + cols - 1) / cols;
}

// Writes the 32-byte header. cols must be >= 1 when elems > 0.
void write_header(std::vector<std::uint8_t>& out, MergePrecision p,
                  std::uint32_t cols, float loss_scale, std::uint64_t rows,
                  std::uint64_t elems) {
  const std::uint8_t version = kVersion;
  const auto precision = static_cast<std::uint8_t>(p);
  const std::uint16_t reserved = 0;
  write_bytes(out, 0, kMagic, 4);
  write_bytes(out, 4, &version, 1);
  write_bytes(out, 5, &precision, 1);
  write_bytes(out, 6, &reserved, 2);
  write_bytes(out, 8, &cols, 4);
  write_bytes(out, 12, &loss_scale, 4);
  write_bytes(out, 16, &rows, 8);
  write_bytes(out, 24, &elems, 8);
}

[[noreturn]] void bad_payload(const std::string& what, std::size_t offset) {
  throw ParseError(kSource, what, ParseError::npos, offset);
}

}  // namespace

const char* precision_name(MergePrecision p) {
  switch (p) {
    case MergePrecision::kFp32:
      return "fp32";
    case MergePrecision::kFp16:
      return "fp16";
    case MergePrecision::kInt8:
      return "int8";
  }
  return "unknown";
}

std::optional<MergePrecision> parse_precision(const std::string& text) {
  if (text == "fp32") return MergePrecision::kFp32;
  if (text == "fp16") return MergePrecision::kFp16;
  if (text == "int8") return MergePrecision::kInt8;
  return std::nullopt;
}

std::size_t precision_elem_bytes(MergePrecision p) {
  switch (p) {
    case MergePrecision::kFp32:
      return 4;
    case MergePrecision::kFp16:
      return 2;
    case MergePrecision::kInt8:
      return 1;
  }
  return 4;
}

std::size_t encoded_payload_bytes(MergePrecision p, std::uint64_t rows,
                                  std::uint64_t elems) {
  const std::size_t scales =
      p == MergePrecision::kInt8 ? static_cast<std::size_t>(rows) * 4 : 0;
  return kHeaderBytes + scales +
         static_cast<std::size_t>(elems) * precision_elem_bytes(p);
}

WirePayload wire_payload(MergePrecision p, std::uint64_t rows,
                         std::uint64_t elems) {
  WirePayload w;
  w.payload_bytes =
      static_cast<double>(elems) *
      static_cast<double>(precision_elem_bytes(p));
  if (p == MergePrecision::kFp32) return w;  // no metadata: raw floats
  w.metadata_bytes =
      static_cast<double>(encoded_payload_bytes(p, rows, elems)) -
      w.payload_bytes;
  return w;
}

std::size_t encode_fp16(std::span<const float> x, std::uint32_t cols,
                        float scale, std::vector<std::uint8_t>& out) {
  const std::uint64_t elems = x.size();
  const std::uint64_t rows = group_count(elems, cols);
  out.resize(encoded_payload_bytes(MergePrecision::kFp16, rows, elems));
  write_header(out, MergePrecision::kFp16, cols, scale, rows, elems);
  // vector storage is allocator-aligned and the code region starts at byte
  // 32, so the uint16 view is always aligned.
  auto* codes = reinterpret_cast<std::uint16_t*>(out.data() + kHeaderBytes);
  return vec::kernels().quant_fp16(x.data(), codes, scale, elems);
}

void encode_i8(std::span<const float> x, std::uint32_t cols,
               std::vector<std::uint8_t>& out) {
  const std::uint64_t elems = x.size();
  const std::uint64_t rows = group_count(elems, cols);
  out.resize(encoded_payload_bytes(MergePrecision::kInt8, rows, elems));
  write_header(out, MergePrecision::kInt8, cols, 1.0f, rows, elems);
  auto* scales = reinterpret_cast<float*>(out.data() + kHeaderBytes);
  auto* codes = reinterpret_cast<std::int8_t*>(out.data() + kHeaderBytes +
                                               rows * sizeof(float));
  const auto& vk = vec::kernels();
  for (std::uint64_t g = 0; g < rows; ++g) {
    const std::size_t base = static_cast<std::size_t>(g) * cols;
    const std::size_t len =
        std::min<std::size_t>(cols, static_cast<std::size_t>(elems) - base);
    const float amax = vk.absmax(x.data() + base, len);
    float store = 0.0f;   // dequantization scale shipped on the wire
    float mult = 0.0f;    // quantization multiplier
    if (amax > 0.0f && std::isfinite(amax)) {
      store = amax / 127.0f;
      mult = 127.0f / amax;
    }
    scales[g] = store;
    vk.quant_i8(x.data() + base, codes + base, mult, len);
  }
}

void decode_payload(std::span<const std::uint8_t> bytes,
                    QuantizedPayload& out) {
  if (bytes.size() < kHeaderBytes) {
    bad_payload("truncated header (" + std::to_string(bytes.size()) +
                    " of " + std::to_string(kHeaderBytes) + " bytes)",
                bytes.size());
  }
  if (std::memcmp(bytes.data(), kMagic, 4) != 0) {
    bad_payload("bad magic (expected \"HQPK\")", 0);
  }
  const auto version = read_at<std::uint8_t>(bytes, 4);
  if (version != kVersion) {
    bad_payload("unsupported version " + std::to_string(version), 4);
  }
  const auto precision_byte = read_at<std::uint8_t>(bytes, 5);
  if (precision_byte != static_cast<std::uint8_t>(MergePrecision::kFp16) &&
      precision_byte != static_cast<std::uint8_t>(MergePrecision::kInt8)) {
    bad_payload("invalid precision " + std::to_string(precision_byte) +
                    " (fp32 merges never encode payloads)",
                5);
  }
  const auto precision = static_cast<MergePrecision>(precision_byte);
  if (read_at<std::uint16_t>(bytes, 6) != 0) {
    bad_payload("nonzero reserved field", 6);
  }
  const auto cols = read_at<std::uint32_t>(bytes, 8);
  const auto loss_scale = read_at<float>(bytes, 12);
  const auto rows = read_at<std::uint64_t>(bytes, 16);
  const auto elems = read_at<std::uint64_t>(bytes, 24);

  if (elems == 0) {
    if (rows != 0) bad_payload("empty payload with nonzero rows", 16);
  } else {
    if (cols == 0) bad_payload("zero group width with nonzero elems", 8);
    if (rows == 0) bad_payload("zero rows with nonzero elems", 16);
    const auto cap = static_cast<unsigned __int128>(rows) * cols;
    const auto prev = static_cast<unsigned __int128>(rows - 1) * cols;
    if (elems > cap || elems <= prev) {
      bad_payload("rows/cols/elems mismatch (rows=" + std::to_string(rows) +
                      " cols=" + std::to_string(cols) +
                      " elems=" + std::to_string(elems) + ")",
                  24);
    }
  }
  if (precision == MergePrecision::kFp16) {
    const float inv = 1.0f / loss_scale;
    if (!std::isfinite(loss_scale) || loss_scale <= 0.0f ||
        !std::isfinite(inv) || !std::isfinite(inv * 65504.0f)) {
      bad_payload("invalid fp16 loss scale", 12);
    }
  } else if (loss_scale != 1.0f) {
    bad_payload("int8 payload with loss scale != 1", 12);
  }

  const std::size_t scale_bytes =
      precision == MergePrecision::kInt8
          ? static_cast<std::size_t>(rows) * sizeof(float)
          : 0;
  const auto expected = static_cast<unsigned __int128>(kHeaderBytes) +
                        scale_bytes +
                        static_cast<unsigned __int128>(elems) *
                            precision_elem_bytes(precision);
  if (expected != bytes.size()) {
    bad_payload("length mismatch (payload declares " +
                    std::to_string(static_cast<double>(expected)) +
                    " bytes, buffer has " + std::to_string(bytes.size()) +
                    ")",
                bytes.size());
  }

  out.precision = precision;
  out.cols = cols;
  out.rows = rows;
  out.elems = elems;
  out.loss_scale = loss_scale;
  out.scales.clear();
  out.fp16.clear();
  out.i8.clear();
  if (precision == MergePrecision::kInt8) {
    out.scales.resize(static_cast<std::size_t>(rows));
    std::memcpy(out.scales.data(), bytes.data() + kHeaderBytes, scale_bytes);
    for (std::size_t g = 0; g < out.scales.size(); ++g) {
      const float s = out.scales[g];
      // A zero scale (all-zero group) is legitimate; non-finite, negative,
      // or overflow-inducing scales are hostile.
      if (!std::isfinite(s) || s < 0.0f || !std::isfinite(s * 127.0f)) {
        bad_payload("invalid scale for group " + std::to_string(g),
                    kHeaderBytes + g * sizeof(float));
      }
    }
    out.i8.resize(static_cast<std::size_t>(elems));
    std::memcpy(out.i8.data(), bytes.data() + kHeaderBytes + scale_bytes,
                static_cast<std::size_t>(elems));
  } else {
    out.fp16.resize(static_cast<std::size_t>(elems));
    std::memcpy(out.fp16.data(), bytes.data() + kHeaderBytes,
                static_cast<std::size_t>(elems) * sizeof(std::uint16_t));
  }
}

void dequantize(const QuantizedPayload& p, std::vector<float>& x) {
  x.resize(static_cast<std::size_t>(p.elems));
  if (p.elems == 0) return;
  const auto& vk = vec::kernels();
  if (p.precision == MergePrecision::kFp16) {
    vk.dequant_fp16(p.fp16.data(), x.data(), 1.0f / p.loss_scale,
                    x.size());
    return;
  }
  for (std::uint64_t g = 0; g < p.rows; ++g) {
    const std::size_t base = static_cast<std::size_t>(g) * p.cols;
    const std::size_t len = std::min<std::size_t>(p.cols, x.size() - base);
    vk.dequant_i8(p.i8.data() + base, x.data() + base, p.scales[g], len);
  }
}

}  // namespace hetero::comm
