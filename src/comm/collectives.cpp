#include "comm/collectives.h"

#include <algorithm>
#include <cmath>

namespace hetero::comm {

namespace {
constexpr double kReduceLaunchSeconds = 15e-6;

double reduce_seconds(double bytes, double reduce_gbs) {
  return 3.0 * bytes / (reduce_gbs * 1e9);
}
}  // namespace

double broadcast_seconds(const sim::LinkModel& links,
                         const CollectiveParams& p) {
  if (p.num_devices <= 1) return 0.0;
  const auto rounds = static_cast<std::size_t>(
      std::ceil(std::log2(static_cast<double>(p.num_devices))));
  // Pipelined: the buffer crosses one link once, later rounds only add hop
  // latency (transfers in one round use distinct links).
  return links.transfer_seconds(p.bytes, 0, 1, 1) +
         static_cast<double>(rounds - 1) * links.peer().latency_us * 1e-6;
}

double reduce_scatter_seconds(const sim::LinkModel& links,
                              const CollectiveParams& p) {
  if (p.num_devices <= 1) return 0.0;
  const std::size_t streams = std::max<std::size_t>(1, p.num_streams);
  const double chunk = static_cast<double>(p.bytes) /
                       static_cast<double>(streams) /
                       static_cast<double>(p.num_devices);
  // Fractional chunk: truncating to whole bytes underbills small buffers at
  // high stream counts (a sub-byte chunk would be charged latency only).
  const double xfer = links.transfer_seconds_frac(chunk, 0, 1, 1);
  const double red = reduce_seconds(chunk, p.reduce_gbs);
  const double per_step =
      (streams > 1 ? std::max(xfer, red) : xfer + red) + kReduceLaunchSeconds;
  return static_cast<double>(p.num_devices - 1) * per_step;
}

double all_gather_seconds(const sim::LinkModel& links,
                          const CollectiveParams& p) {
  if (p.num_devices <= 1) return 0.0;
  const std::size_t streams = std::max<std::size_t>(1, p.num_streams);
  const double chunk = static_cast<double>(p.bytes) /
                       static_cast<double>(streams) /
                       static_cast<double>(p.num_devices);
  const double xfer = links.transfer_seconds_frac(chunk, 0, 1, 1);
  // No reduction, but every step still launches a copy kernel.
  return static_cast<double>(p.num_devices - 1) *
         (xfer + kReduceLaunchSeconds);
}

double host_gather_seconds(const sim::LinkModel& links,
                           const CollectiveParams& p) {
  if (p.num_devices == 0) return 0.0;
  return links.transfer_seconds(p.bytes, 0, sim::LinkModel::kHost,
                                p.num_devices);
}

double host_broadcast_seconds(const sim::LinkModel& links,
                              const CollectiveParams& p) {
  if (p.num_devices == 0) return 0.0;
  return links.transfer_seconds(p.bytes, sim::LinkModel::kHost, 0,
                                p.num_devices);
}

}  // namespace hetero::comm
