#include "comm/collectives.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hetero::comm {

namespace {
constexpr double kReduceLaunchSeconds = 15e-6;

double reduce_seconds(double bytes, double reduce_gbs) {
  return 3.0 * bytes / (reduce_gbs * 1e9);
}

std::vector<std::size_t> effective_ranks(const CollectiveParams& p) {
  if (!p.ranks.empty()) return p.ranks;
  std::vector<std::size_t> r(p.num_devices);
  std::iota(r.begin(), r.end(), std::size_t{0});
  return r;
}

// Slowest hop of the ring ranks[0] -> ranks[1] -> ... -> ranks[0]. Ring
// steps are synchronous, so every step is paced by its worst link.
double worst_ring_hop_frac(const sim::LinkModel& links,
                           const std::vector<std::size_t>& ranks,
                           double bytes) {
  double worst = 0.0;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const int src = static_cast<int>(ranks[i]);
    const int dst = static_cast<int>(ranks[(i + 1) % ranks.size()]);
    worst = std::max(worst, links.transfer_seconds_frac(bytes, src, dst, 1));
  }
  return worst;
}
}  // namespace

double broadcast_seconds(const sim::LinkModel& links,
                         const CollectiveParams& p) {
  const std::vector<std::size_t> ranks = effective_ranks(p);
  const std::size_t n = ranks.size();
  if (n <= 1) return 0.0;
  const auto rounds = static_cast<std::size_t>(
      std::ceil(std::log2(static_cast<double>(n))));
  // Pipelined: the buffer crosses the first hop once; each later round only
  // adds the latency of its slowest hop (transfers in one round use
  // distinct links). Round k pairs sender i with receiver i + 2^k.
  double seconds = links.transfer_seconds(
      p.bytes, static_cast<int>(ranks[0]), static_cast<int>(ranks[1]), 1);
  for (std::size_t k = 1; k < rounds; ++k) {
    const std::size_t stride = std::size_t{1} << k;
    double round_latency = 0.0;
    for (std::size_t i = 0; i < stride && i + stride < n; ++i) {
      const auto& link = links.link_for(static_cast<int>(ranks[i]),
                                        static_cast<int>(ranks[i + stride]));
      round_latency = std::max(round_latency, link.latency_us * 1e-6);
    }
    seconds += round_latency;
  }
  return seconds;
}

double reduce_scatter_seconds(const sim::LinkModel& links,
                              const CollectiveParams& p) {
  const std::vector<std::size_t> ranks = effective_ranks(p);
  const std::size_t n = ranks.size();
  if (n <= 1) return 0.0;
  const std::size_t streams = std::max<std::size_t>(1, p.num_streams);
  const double chunk = static_cast<double>(p.bytes) /
                       static_cast<double>(streams) /
                       static_cast<double>(n);
  // Fractional chunk: truncating to whole bytes underbills small buffers at
  // high stream counts (a sub-byte chunk would be charged latency only).
  const double xfer = worst_ring_hop_frac(links, ranks, chunk);
  const double red = reduce_seconds(chunk, p.reduce_gbs);
  const double per_step =
      (streams > 1 ? std::max(xfer, red) : xfer + red) + kReduceLaunchSeconds;
  return static_cast<double>(n - 1) * per_step;
}

double all_gather_seconds(const sim::LinkModel& links,
                          const CollectiveParams& p) {
  const std::vector<std::size_t> ranks = effective_ranks(p);
  const std::size_t n = ranks.size();
  if (n <= 1) return 0.0;
  const std::size_t streams = std::max<std::size_t>(1, p.num_streams);
  const double chunk = static_cast<double>(p.bytes) /
                       static_cast<double>(streams) /
                       static_cast<double>(n);
  const double xfer = worst_ring_hop_frac(links, ranks, chunk);
  // No reduction, but every step still launches a copy kernel.
  return static_cast<double>(n - 1) * (xfer + kReduceLaunchSeconds);
}

double host_gather_seconds(const sim::LinkModel& links,
                           const CollectiveParams& p) {
  const std::vector<std::size_t> ranks = effective_ranks(p);
  if (ranks.empty()) return 0.0;
  return links.transfer_seconds(p.bytes, static_cast<int>(ranks[0]),
                                sim::LinkModel::kHost, ranks.size());
}

double host_broadcast_seconds(const sim::LinkModel& links,
                              const CollectiveParams& p) {
  const std::vector<std::size_t> ranks = effective_ranks(p);
  if (ranks.empty()) return 0.0;
  return links.transfer_seconds(p.bytes, sim::LinkModel::kHost,
                                static_cast<int>(ranks[0]), ranks.size());
}

}  // namespace hetero::comm
