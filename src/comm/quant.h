// Merge-payload compression: fp16 / int8 quantization of the merge deltas
// with per-group scales (DESIGN.md §10).
//
// The delta-aware merge ships each replica's touched-row delta (and the
// dense tail) to its peers; at XML scale those bytes dominate the merge
// cost. This module quantizes the shipped deltas — fp16 with a single
// dynamic loss scale, or int8 with one fp32 scale per group (a W1 row in
// sparse mode, a 512-element block elsewhere) — into a self-describing
// wire payload, and validates/decodes such payloads back. The per-element
// math runs on the hetero::vec quantization kernels, so encode/decode are
// bit-identical on every ISA.
//
// The decoder is an untrusted-input surface (the fuzzers replay mutated
// payloads): decode_payload() either succeeds or throws hetero::ParseError
// with a byte offset — hostile scales (0 / inf / nan), truncated buffers
// and length mismatches are all typed errors, never UB.
//
// Wire layout (little-endian, all offsets fixed):
//   0  u8[4]  magic "HQPK"
//   4  u8     version (1)
//   5  u8     precision (1 = fp16, 2 = int8; fp32 never encodes)
//   6  u16    reserved (0)
//   8  u32    cols   — scale-group width (last group may be short)
//   12 f32    loss_scale — fp16 quantization scale S (1.0 for int8)
//   16 u64    rows   — number of scale groups (= ceil(elems / cols))
//   24 u64    elems  — total element count
//   32 f32[rows]  per-group scales (int8 only)
//   then elems x element-size code bytes (u16 halves / i8 codes)
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "comm/allreduce.h"

namespace hetero::comm {

enum class MergePrecision : std::uint8_t { kFp32 = 0, kFp16 = 1, kInt8 = 2 };

/// Display / flag name: "fp32", "fp16", "int8".
const char* precision_name(MergePrecision p);

/// Parses a flag value; nullopt on anything but the three names.
std::optional<MergePrecision> parse_precision(const std::string& text);

/// Bytes per element on the wire: 4 / 2 / 1.
std::size_t precision_elem_bytes(MergePrecision p);

/// Dynamic fp16 loss-scale guard in the style of torch.cuda.amp: deltas are
/// quantized as half(delta * scale); if any element overflows fp16 range
/// the merge halves the scale and requantizes (deterministic — only the
/// overflow *count being nonzero* matters, never float comparison order),
/// and after kGrowEvery consecutive clean merges the scale doubles back.
/// Guards against fp16 underflow on small late-training deltas.
struct LossScaleGuard {
  static constexpr float kMinScale = 1.0f;
  static constexpr float kMaxScale = 65536.0f;
  static constexpr std::uint32_t kGrowEvery = 64;

  float scale = 1024.0f;
  std::uint32_t good_streak = 0;

  void on_overflow() {
    scale = scale * 0.5f < kMinScale ? kMinScale : scale * 0.5f;
    good_streak = 0;
  }
  void on_clean_merge() {
    if (++good_streak >= kGrowEvery) {
      good_streak = 0;
      if (scale < kMaxScale) scale *= 2.0f;
    }
  }
};

/// A decoded quantized payload. Code/scale storage is owned (copied out of
/// the wire bytes — no alignment assumptions on the input buffer), and the
/// vectors are reused across decode calls on the same object.
struct QuantizedPayload {
  MergePrecision precision = MergePrecision::kFp16;
  std::uint32_t cols = 0;
  std::uint64_t rows = 0;
  std::uint64_t elems = 0;
  float loss_scale = 1.0f;
  std::vector<float> scales;        // int8: one per group; fp16: empty
  std::vector<std::uint16_t> fp16;  // fp16 codes (elems entries)
  std::vector<std::int8_t> i8;      // int8 codes (elems entries)
};

/// Exact encoded size of a payload with the given shape.
std::size_t encoded_payload_bytes(MergePrecision p, std::uint64_t rows,
                                  std::uint64_t elems);

/// Billing split for the simulated transfer: element data vs metadata
/// (header + loss scale + int8 per-group scales).
WirePayload wire_payload(MergePrecision p, std::uint64_t rows,
                         std::uint64_t elems);

/// Quantizes `x` (grouped by `cols`; the last group may be short) into the
/// fp16 wire format with loss scale `scale`, appending nothing — `out` is
/// resized to the exact encoded size. Returns the number of elements that
/// overflowed fp16 range (|x*scale| > 65504); on a nonzero return the
/// caller halves the scale and re-encodes (x is not modified).
std::size_t encode_fp16(std::span<const float> x, std::uint32_t cols,
                        float scale, std::vector<std::uint8_t>& out);

/// Quantizes `x` into the int8 wire format with one scale per group:
/// scale_g = absmax_g / 127, code = rne(clamp(x * 127 / absmax_g)). An
/// all-zero (or non-finite-absmax) group gets scale 0 and zero codes.
void encode_i8(std::span<const float> x, std::uint32_t cols,
               std::vector<std::uint8_t>& out);

/// Validates and decodes a quantized payload into `out` (storage reused).
/// Throws hetero::ParseError (source "quant-payload", byte offset set) on
/// any malformed input: bad magic/version/precision, inconsistent
/// rows/cols/elems, non-finite or negative or overflow-inducing scales,
/// truncated buffers, and trailing bytes.
void decode_payload(std::span<const std::uint8_t> bytes,
                    QuantizedPayload& out);

/// Dequantizes a decoded payload into `x` (resized to elems). Used by
/// tests and the fuzzer's sanity pass; the merge hot path instead feeds the
/// codes straight into the fused vec merge_accum_{fp16,i8} kernels.
void dequantize(const QuantizedPayload& p, std::vector<float>& x);

}  // namespace hetero::comm
