#include "comm/allreduce.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "comm/collectives.h"
#include "tensor/vec/vec.h"

namespace hetero::comm {

std::string to_string(AllReduceAlgo algo) {
  switch (algo) {
    case AllReduceAlgo::kCentral:
      return "central";
    case AllReduceAlgo::kTreeSingleStream:
      return "tree-1stream";
    case AllReduceAlgo::kRingMultiStream:
      return "ring-multistream";
  }
  return "?";
}

AllReducer::AllReducer(AllReduceAlgo algo, sim::LinkModel links,
                       std::size_t num_streams)
    : algo_(algo), links_(std::move(links)),
      num_streams_(std::max<std::size_t>(1, num_streams)) {}

namespace {

// Accumulator block kept on the stack so the reduction streams each replica
// once and never materializes a model-sized double buffer.
constexpr std::size_t kReduceBlock = 512;

// Reduces flat range [begin, end) of the concatenated segment space across
// replicas: x_i[j] <- float(sum_i w_i x_i[j]). Replica 0 initializes the
// accumulator and the remaining replicas are added in index order — the
// fixed per-element order the determinism contract relies on.
void reduce_flat_range(std::span<const SegmentedView> replicas,
                       std::span<const double> weights, std::size_t begin,
                       std::size_t end) {
  const std::size_t n = replicas.size();
  const std::size_t num_segments = replicas[0].size();
  const auto& vk = vec::kernels();
  std::size_t seg_start = 0;
  for (std::size_t s = 0; s < num_segments && seg_start < end; ++s) {
    const std::size_t seg_len = replicas[0][s].size();
    const std::size_t seg_end = seg_start + seg_len;
    const std::size_t lo = std::max(begin, seg_start);
    const std::size_t hi = std::min(end, seg_end);
    for (std::size_t o = lo; o < hi; o += kReduceBlock) {
      const std::size_t len = std::min(kReduceBlock, hi - o);
      const std::size_t off = o - seg_start;
      double acc[kReduceBlock];
      vk.merge_init(acc, replicas[0][s].data() + off, weights[0], len);
      for (std::size_t i = 1; i < n; ++i) {
        vk.merge_accum(acc, replicas[i][s].data() + off, weights[i], len);
      }
      for (std::size_t i = 0; i < n; ++i) {
        vk.merge_store(acc, replicas[i][s].data() + off, len);
      }
    }
    seg_start = seg_end;
  }
}

}  // namespace

AllReduceCost AllReducer::weighted_average(
    std::vector<std::span<float>> replicas, std::span<const double> weights,
    const kernels::Context& ctx) const {
  std::vector<SegmentedView> segmented;
  segmented.reserve(replicas.size());
  for (auto& r : replicas) segmented.push_back(SegmentedView{r});
  return weighted_average_segments(segmented, weights, ctx);
}

AllReduceCost AllReducer::weighted_average_segments(
    std::span<const SegmentedView> replicas, std::span<const double> weights,
    const kernels::Context& ctx) const {
  assert(!replicas.empty());
  assert(replicas.size() == weights.size());
  const std::size_t num_segments = replicas[0].size();
  std::size_t total = 0;
  for (std::size_t s = 0; s < num_segments; ++s) {
    for (const auto& r : replicas) {
      assert(r.size() == num_segments);
      assert(r[s].size() == replicas[0][s].size());
      (void)r;
    }
    total += replicas[0][s].size();
  }
  if (total > 0) {
    // At least one shard per paper stream; more when the pool has idle
    // workers. Shards partition elements, so any count is bit-identical.
    const std::size_t work = total * replicas.size();
    std::size_t shards = num_streams_;
    if (ctx.should_parallelize(work)) {
      shards = std::max(shards, ctx.workers_for(total));
    }
    shards = std::min(shards, total);
    kernels::parallel_for_ranges(
        ctx, shards, work, [&](std::size_t s0, std::size_t s1) {
          for (std::size_t s = s0; s < s1; ++s) {
            const std::size_t a = total * s / shards;
            const std::size_t b = total * (s + 1) / shards;
            reduce_flat_range(replicas, weights, a, b);
          }
        });
  }
  return cost(replicas.size(), total * sizeof(float));
}

AllReduceCost AllReducer::cost(std::size_t num_replicas,
                               std::size_t buffer_bytes,
                               double reduce_gbs) const {
  return cost(num_replicas,
              WirePayload{static_cast<double>(buffer_bytes), 0.0},
              reduce_gbs);
}

AllReduceCost AllReducer::cost(std::size_t num_replicas,
                               const WirePayload& wire,
                               double reduce_gbs) const {
  const sim::Topology& topo = links_.topology();
  if (!topo.single_node() || topo.cpu_replicas() > 0) {
    // Non-trivial topology: name the first num_replicas ranks explicitly so
    // hops are billed on the links they actually ride.
    std::vector<std::size_t> ranks(
        std::min(num_replicas, links_.num_devices()));
    std::iota(ranks.begin(), ranks.end(), std::size_t{0});
    return cost(ranks, wire, reduce_gbs);
  }
  AllReduceCost out;
  out.payload_bytes = wire.payload_bytes;
  out.wire_bytes = wire.total();
  const auto n = num_replicas;
  if (n <= 1) return out;
  // Transfer/reduce time is driven by everything on the wire — element
  // data plus compression metadata.
  const double bytes = wire.total();
  const auto buffer_bytes = static_cast<std::size_t>(bytes);
  // Reduction compute: read two operands, write one (3x traffic).
  const auto reduce_seconds = [&](double b) {
    return 3.0 * b / (reduce_gbs * 1e9);
  };
  // Launching the per-step reduction kernel costs a fixed overhead that does
  // not overlap even in multi-stream mode; this is what makes the naive
  // single-stream ring lose to the pipelined tree (Section IV observation).
  constexpr double kReduceLaunchSeconds = 15e-6;
  const double step_latency = links_.peer().latency_us * 1e-6;

  switch (algo_) {
    case AllReduceAlgo::kCentral: {
      // n GPUs -> host (sharing the host link), host reduce, host -> n GPUs.
      const double up = links_.transfer_seconds(buffer_bytes,
                                                /*src=*/0, sim::LinkModel::kHost,
                                                /*concurrent=*/n);
      const double down = links_.transfer_seconds(buffer_bytes,
                                                  sim::LinkModel::kHost, 0, n);
      const double host_reduce =
          reduce_seconds(bytes) * static_cast<double>(n - 1);
      out.seconds = up + host_reduce + down;
      out.bytes_moved = 2.0 * bytes * static_cast<double>(n);
      out.steps = 2;
      break;
    }
    case AllReduceAlgo::kTreeSingleStream: {
      // NCCL-style pipelined tree: the buffer is chunked and streamed up the
      // reduce tree and back down the broadcast tree, so the full buffer
      // crosses a link twice (up + down) with the reduction pipelined behind
      // the transfer; each of the 2*ceil(log2 n) rounds adds one hop
      // latency. This is the "more efficient on a single stream"
      // implementation the paper compares against.
      const auto rounds = static_cast<std::size_t>(
          std::ceil(std::log2(static_cast<double>(n))));
      const double xfer = links_.transfer_seconds(buffer_bytes, 0, 1, 1);
      out.seconds = 2.0 * xfer + reduce_seconds(bytes) +
                    static_cast<double>(2 * rounds - 2) * step_latency;
      out.bytes_moved = 2.0 * bytes * static_cast<double>(n - 1);
      out.steps = 2 * rounds;
      break;
    }
    case AllReduceAlgo::kRingMultiStream: {
      // P partitions of size bytes/P; each runs ring reduce-scatter +
      // all-gather: 2(n-1) steps of chunks sized (bytes/P)/n. Streams start
      // at distinct GPUs, so at any step concurrent streams occupy distinct
      // links (no bandwidth sharing) and the reduction compute overlaps the
      // transfer. With P == 1 the reduce serializes with the transfer
      // (classic single-stream ring). The per-step reduce-kernel launch
      // never overlaps.
      const std::size_t p = num_streams_;
      const double chunk = bytes / static_cast<double>(p) /
                           static_cast<double>(n);
      // Fractional chunk: truncating to whole bytes underbilled small
      // buffers at high stream counts (sub-byte chunks charged latency
      // only), which matters once delta merges shrink the payload.
      const double xfer = links_.transfer_seconds_frac(chunk, 0, 1, 1);
      const double red = reduce_seconds(chunk);
      // Reduce-scatter steps pay the reduction; all-gather steps only
      // forward shards. Every step launches a kernel (reduce or copy).
      const double rs_step = (p > 1 ? std::max(xfer, red) : xfer + red) +
                             kReduceLaunchSeconds;
      const double ag_step = xfer + kReduceLaunchSeconds;
      out.seconds = static_cast<double>(n - 1) * (rs_step + ag_step);
      out.bytes_moved = 2.0 * bytes * static_cast<double>(n - 1);
      out.steps = 2 * (n - 1);
      break;
    }
  }
  return out;
}

namespace {

// Slowest hop of the ring ranks[0] -> ranks[1] -> ... -> ranks[0]: ring
// steps are synchronous, so every step is paced by its worst link.
double worst_ring_hop_frac(const sim::LinkModel& links,
                           std::span<const std::size_t> ranks, double bytes) {
  double worst = 0.0;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const int src = static_cast<int>(ranks[i]);
    const int dst = static_cast<int>(ranks[(i + 1) % ranks.size()]);
    worst = std::max(worst, links.transfer_seconds_frac(bytes, src, dst, 1));
  }
  return worst;
}

// Worst full-buffer transfer among participant pairs (tree rounds pair
// arbitrary participants; the slowest pair paces a pipelined round).
double worst_pair_xfer(const sim::LinkModel& links,
                       std::span<const std::size_t> ranks,
                       std::size_t bytes) {
  double worst = 0.0;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    for (std::size_t j = i + 1; j < ranks.size(); ++j) {
      worst = std::max(worst,
                       links.transfer_seconds(bytes, static_cast<int>(ranks[i]),
                                              static_cast<int>(ranks[j]), 1));
    }
  }
  return worst;
}

double worst_pair_latency(const sim::LinkModel& links,
                          std::span<const std::size_t> ranks) {
  double worst = 0.0;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    for (std::size_t j = i + 1; j < ranks.size(); ++j) {
      const auto& link = links.link_for(static_cast<int>(ranks[i]),
                                        static_cast<int>(ranks[j]));
      worst = std::max(worst, link.latency_us * 1e-6);
    }
  }
  return worst;
}

}  // namespace

AllReduceCost AllReducer::single_level_cost(std::span<const std::size_t> ranks,
                                            const WirePayload& wire,
                                            double reduce_gbs) const {
  AllReduceCost out;
  out.payload_bytes = wire.payload_bytes;
  out.wire_bytes = wire.total();
  const std::size_t n = ranks.size();
  if (n <= 1) return out;
  const double bytes = wire.total();
  const auto buffer_bytes = static_cast<std::size_t>(bytes);
  const auto reduce_seconds = [&](double b) {
    return 3.0 * b / (reduce_gbs * 1e9);
  };
  constexpr double kReduceLaunchSeconds = 15e-6;
  // On an all-peer node this equals the peer latency — the scalar-overload
  // arithmetic exactly; a CPU replica in the group drags rounds to the
  // host-link latency.
  const double step_latency = worst_pair_latency(links_, ranks);

  switch (algo_) {
    case AllReduceAlgo::kCentral: {
      const double up =
          links_.transfer_seconds(buffer_bytes, static_cast<int>(ranks[0]),
                                  sim::LinkModel::kHost, n);
      const double down = links_.transfer_seconds(
          buffer_bytes, sim::LinkModel::kHost, static_cast<int>(ranks[0]), n);
      const double host_reduce =
          reduce_seconds(bytes) * static_cast<double>(n - 1);
      out.seconds = up + host_reduce + down;
      out.bytes_moved = 2.0 * bytes * static_cast<double>(n);
      out.steps = 2;
      break;
    }
    case AllReduceAlgo::kTreeSingleStream: {
      const auto rounds = static_cast<std::size_t>(
          std::ceil(std::log2(static_cast<double>(n))));
      const double xfer = worst_pair_xfer(links_, ranks, buffer_bytes);
      out.seconds = 2.0 * xfer + reduce_seconds(bytes) +
                    static_cast<double>(2 * rounds - 2) * step_latency;
      out.bytes_moved = 2.0 * bytes * static_cast<double>(n - 1);
      out.steps = 2 * rounds;
      break;
    }
    case AllReduceAlgo::kRingMultiStream: {
      const std::size_t p = num_streams_;
      const double chunk = bytes / static_cast<double>(p) /
                           static_cast<double>(n);
      const double xfer = worst_ring_hop_frac(links_, ranks, chunk);
      const double red = reduce_seconds(chunk);
      const double rs_step = (p > 1 ? std::max(xfer, red) : xfer + red) +
                             kReduceLaunchSeconds;
      const double ag_step = xfer + kReduceLaunchSeconds;
      out.seconds = static_cast<double>(n - 1) * (rs_step + ag_step);
      out.bytes_moved = 2.0 * bytes * static_cast<double>(n - 1);
      out.steps = 2 * (n - 1);
      break;
    }
  }
  return out;
}

AllReduceCost AllReducer::cost(std::span<const std::size_t> ranks,
                               const WirePayload& wire,
                               double reduce_gbs) const {
  const sim::Topology& topo = links_.topology();
  const std::vector<std::size_t> rank_vec(ranks.begin(), ranks.end());
  const auto groups = topo.group_by_node(rank_vec);
  if (groups.size() <= 1) return single_level_cost(ranks, wire, reduce_gbs);

  // Two-level merge: (1) the configured algorithm within each node — nodes
  // run concurrently, the slowest paces the phase; (2) a chunked ring over
  // one leader rank per node, riding the network links (the fbcollective
  // allreduce_ring_chunked shape: reduce-scatter + all-gather on
  // bytes/(streams*nodes) chunks); (3) leaders broadcast the merged model
  // within their node. The merged values are the flat weighted sum either
  // way — hierarchy only changes where the bytes travel.
  AllReduceCost out;
  out.payload_bytes = wire.payload_bytes;
  out.wire_bytes = wire.total();
  const double bytes = wire.total();
  const auto reduce_secs = [&](double b) {
    return 3.0 * b / (reduce_gbs * 1e9);
  };
  constexpr double kReduceLaunchSeconds = 15e-6;

  double intra_seconds = 0.0;
  std::size_t intra_steps = 0;
  std::size_t largest_group = 1;
  for (const auto& g : groups) {
    largest_group = std::max(largest_group, g.size());
    if (g.size() <= 1) continue;
    const AllReduceCost c = single_level_cost(g, wire, reduce_gbs);
    intra_seconds = std::max(intra_seconds, c.seconds);
    intra_steps = std::max(intra_steps, c.steps);
    out.bytes_moved += c.bytes_moved;
  }

  std::vector<std::size_t> leaders;
  leaders.reserve(groups.size());
  for (const auto& g : groups) leaders.push_back(g.front());
  const std::size_t nodes = leaders.size();
  const double chunk = bytes / static_cast<double>(num_streams_) /
                       static_cast<double>(nodes);
  const double hop = worst_ring_hop_frac(links_, leaders, chunk);
  const double red = reduce_secs(chunk);
  const double rs_step =
      (num_streams_ > 1 ? std::max(hop, red) : hop + red) +
      kReduceLaunchSeconds;
  const double ag_step = hop + kReduceLaunchSeconds;
  const double inter_seconds =
      static_cast<double>(nodes - 1) * (rs_step + ag_step);
  out.bytes_moved += 2.0 * bytes * static_cast<double>(nodes - 1);

  double bcast_seconds = 0.0;
  for (const auto& g : groups) {
    if (g.size() <= 1) continue;
    CollectiveParams p;
    p.bytes = static_cast<std::size_t>(bytes);
    p.ranks = g;
    bcast_seconds = std::max(bcast_seconds, broadcast_seconds(links_, p));
    out.bytes_moved += bytes * static_cast<double>(g.size() - 1);
  }

  out.seconds = intra_seconds + inter_seconds + bcast_seconds;
  out.steps = intra_steps + 2 * (nodes - 1) +
              static_cast<std::size_t>(std::ceil(
                  std::log2(static_cast<double>(largest_group))));
  return out;
}

}  // namespace hetero::comm
