#include "comm/allreduce.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hetero::comm {

std::string to_string(AllReduceAlgo algo) {
  switch (algo) {
    case AllReduceAlgo::kCentral:
      return "central";
    case AllReduceAlgo::kTreeSingleStream:
      return "tree-1stream";
    case AllReduceAlgo::kRingMultiStream:
      return "ring-multistream";
  }
  return "?";
}

AllReducer::AllReducer(AllReduceAlgo algo, sim::LinkModel links,
                       std::size_t num_streams)
    : algo_(algo), links_(std::move(links)),
      num_streams_(std::max<std::size_t>(1, num_streams)) {}

AllReduceCost AllReducer::weighted_average(
    std::vector<std::span<float>> replicas,
    std::span<const double> weights) const {
  assert(!replicas.empty());
  assert(replicas.size() == weights.size());
  const std::size_t len = replicas[0].size();
  for (const auto& r : replicas) {
    assert(r.size() == len);
    (void)r;
  }

  // Numeric merge: out = sum_i w_i * x_i, in fixed index order so that all
  // algorithms (and stream counts) produce bit-identical results.
  merge_acc_.assign(len, 0.0);
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    const double w = weights[i];
    const float* x = replicas[i].data();
    for (std::size_t j = 0; j < len; ++j) merge_acc_[j] += w * x[j];
  }
  for (auto& r : replicas) {
    for (std::size_t j = 0; j < len; ++j) {
      r[j] = static_cast<float>(merge_acc_[j]);
    }
  }

  return cost(replicas.size(), len * sizeof(float));
}

AllReduceCost AllReducer::cost(std::size_t num_replicas,
                               std::size_t buffer_bytes,
                               double reduce_gbs) const {
  AllReduceCost out;
  const auto n = num_replicas;
  if (n <= 1) return out;
  const double bytes = static_cast<double>(buffer_bytes);
  // Reduction compute: read two operands, write one (3x traffic).
  const auto reduce_seconds = [&](double b) {
    return 3.0 * b / (reduce_gbs * 1e9);
  };
  // Launching the per-step reduction kernel costs a fixed overhead that does
  // not overlap even in multi-stream mode; this is what makes the naive
  // single-stream ring lose to the pipelined tree (Section IV observation).
  constexpr double kReduceLaunchSeconds = 15e-6;
  const double step_latency = links_.peer().latency_us * 1e-6;

  switch (algo_) {
    case AllReduceAlgo::kCentral: {
      // n GPUs -> host (sharing the host link), host reduce, host -> n GPUs.
      const double up = links_.transfer_seconds(buffer_bytes,
                                                /*src=*/0, sim::LinkModel::kHost,
                                                /*concurrent=*/n);
      const double down = links_.transfer_seconds(buffer_bytes,
                                                  sim::LinkModel::kHost, 0, n);
      const double host_reduce =
          reduce_seconds(bytes) * static_cast<double>(n - 1);
      out.seconds = up + host_reduce + down;
      out.bytes_moved = 2.0 * bytes * static_cast<double>(n);
      out.steps = 2;
      break;
    }
    case AllReduceAlgo::kTreeSingleStream: {
      // NCCL-style pipelined tree: the buffer is chunked and streamed up the
      // reduce tree and back down the broadcast tree, so the full buffer
      // crosses a link twice (up + down) with the reduction pipelined behind
      // the transfer; each of the 2*ceil(log2 n) rounds adds one hop
      // latency. This is the "more efficient on a single stream"
      // implementation the paper compares against.
      const auto rounds = static_cast<std::size_t>(
          std::ceil(std::log2(static_cast<double>(n))));
      const double xfer = links_.transfer_seconds(buffer_bytes, 0, 1, 1);
      out.seconds = 2.0 * xfer + reduce_seconds(bytes) +
                    static_cast<double>(2 * rounds - 2) * step_latency;
      out.bytes_moved = 2.0 * bytes * static_cast<double>(n - 1);
      out.steps = 2 * rounds;
      break;
    }
    case AllReduceAlgo::kRingMultiStream: {
      // P partitions of size bytes/P; each runs ring reduce-scatter +
      // all-gather: 2(n-1) steps of chunks sized (bytes/P)/n. Streams start
      // at distinct GPUs, so at any step concurrent streams occupy distinct
      // links (no bandwidth sharing) and the reduction compute overlaps the
      // transfer. With P == 1 the reduce serializes with the transfer
      // (classic single-stream ring). The per-step reduce-kernel launch
      // never overlaps.
      const std::size_t p = num_streams_;
      const double chunk = bytes / static_cast<double>(p) /
                           static_cast<double>(n);
      const auto chunk_bytes = static_cast<std::size_t>(chunk);
      const double xfer = links_.transfer_seconds(chunk_bytes, 0, 1, 1);
      const double red = reduce_seconds(chunk);
      // Reduce-scatter steps pay the reduction; all-gather steps only
      // forward shards. Every step launches a kernel (reduce or copy).
      const double rs_step = (p > 1 ? std::max(xfer, red) : xfer + red) +
                             kReduceLaunchSeconds;
      const double ag_step = xfer + kReduceLaunchSeconds;
      out.seconds = static_cast<double>(n - 1) * (rs_step + ag_step);
      out.bytes_moved = 2.0 * bytes * static_cast<double>(n - 1);
      out.steps = 2 * (n - 1);
      break;
    }
  }
  return out;
}

}  // namespace hetero::comm
