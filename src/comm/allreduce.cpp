#include "comm/allreduce.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tensor/vec/vec.h"

namespace hetero::comm {

std::string to_string(AllReduceAlgo algo) {
  switch (algo) {
    case AllReduceAlgo::kCentral:
      return "central";
    case AllReduceAlgo::kTreeSingleStream:
      return "tree-1stream";
    case AllReduceAlgo::kRingMultiStream:
      return "ring-multistream";
  }
  return "?";
}

AllReducer::AllReducer(AllReduceAlgo algo, sim::LinkModel links,
                       std::size_t num_streams)
    : algo_(algo), links_(std::move(links)),
      num_streams_(std::max<std::size_t>(1, num_streams)) {}

namespace {

// Accumulator block kept on the stack so the reduction streams each replica
// once and never materializes a model-sized double buffer.
constexpr std::size_t kReduceBlock = 512;

// Reduces flat range [begin, end) of the concatenated segment space across
// replicas: x_i[j] <- float(sum_i w_i x_i[j]). Replica 0 initializes the
// accumulator and the remaining replicas are added in index order — the
// fixed per-element order the determinism contract relies on.
void reduce_flat_range(std::span<const SegmentedView> replicas,
                       std::span<const double> weights, std::size_t begin,
                       std::size_t end) {
  const std::size_t n = replicas.size();
  const std::size_t num_segments = replicas[0].size();
  const auto& vk = vec::kernels();
  std::size_t seg_start = 0;
  for (std::size_t s = 0; s < num_segments && seg_start < end; ++s) {
    const std::size_t seg_len = replicas[0][s].size();
    const std::size_t seg_end = seg_start + seg_len;
    const std::size_t lo = std::max(begin, seg_start);
    const std::size_t hi = std::min(end, seg_end);
    for (std::size_t o = lo; o < hi; o += kReduceBlock) {
      const std::size_t len = std::min(kReduceBlock, hi - o);
      const std::size_t off = o - seg_start;
      double acc[kReduceBlock];
      vk.merge_init(acc, replicas[0][s].data() + off, weights[0], len);
      for (std::size_t i = 1; i < n; ++i) {
        vk.merge_accum(acc, replicas[i][s].data() + off, weights[i], len);
      }
      for (std::size_t i = 0; i < n; ++i) {
        vk.merge_store(acc, replicas[i][s].data() + off, len);
      }
    }
    seg_start = seg_end;
  }
}

}  // namespace

AllReduceCost AllReducer::weighted_average(
    std::vector<std::span<float>> replicas, std::span<const double> weights,
    const kernels::Context& ctx) const {
  std::vector<SegmentedView> segmented;
  segmented.reserve(replicas.size());
  for (auto& r : replicas) segmented.push_back(SegmentedView{r});
  return weighted_average_segments(segmented, weights, ctx);
}

AllReduceCost AllReducer::weighted_average_segments(
    std::span<const SegmentedView> replicas, std::span<const double> weights,
    const kernels::Context& ctx) const {
  assert(!replicas.empty());
  assert(replicas.size() == weights.size());
  const std::size_t num_segments = replicas[0].size();
  std::size_t total = 0;
  for (std::size_t s = 0; s < num_segments; ++s) {
    for (const auto& r : replicas) {
      assert(r.size() == num_segments);
      assert(r[s].size() == replicas[0][s].size());
      (void)r;
    }
    total += replicas[0][s].size();
  }
  if (total > 0) {
    // At least one shard per paper stream; more when the pool has idle
    // workers. Shards partition elements, so any count is bit-identical.
    const std::size_t work = total * replicas.size();
    std::size_t shards = num_streams_;
    if (ctx.should_parallelize(work)) {
      shards = std::max(shards, ctx.workers_for(total));
    }
    shards = std::min(shards, total);
    kernels::parallel_for_ranges(
        ctx, shards, work, [&](std::size_t s0, std::size_t s1) {
          for (std::size_t s = s0; s < s1; ++s) {
            const std::size_t a = total * s / shards;
            const std::size_t b = total * (s + 1) / shards;
            reduce_flat_range(replicas, weights, a, b);
          }
        });
  }
  return cost(replicas.size(), total * sizeof(float));
}

AllReduceCost AllReducer::cost(std::size_t num_replicas,
                               std::size_t buffer_bytes,
                               double reduce_gbs) const {
  return cost(num_replicas,
              WirePayload{static_cast<double>(buffer_bytes), 0.0},
              reduce_gbs);
}

AllReduceCost AllReducer::cost(std::size_t num_replicas,
                               const WirePayload& wire,
                               double reduce_gbs) const {
  AllReduceCost out;
  out.payload_bytes = wire.payload_bytes;
  out.wire_bytes = wire.total();
  const auto n = num_replicas;
  if (n <= 1) return out;
  // Transfer/reduce time is driven by everything on the wire — element
  // data plus compression metadata.
  const double bytes = wire.total();
  const auto buffer_bytes = static_cast<std::size_t>(bytes);
  // Reduction compute: read two operands, write one (3x traffic).
  const auto reduce_seconds = [&](double b) {
    return 3.0 * b / (reduce_gbs * 1e9);
  };
  // Launching the per-step reduction kernel costs a fixed overhead that does
  // not overlap even in multi-stream mode; this is what makes the naive
  // single-stream ring lose to the pipelined tree (Section IV observation).
  constexpr double kReduceLaunchSeconds = 15e-6;
  const double step_latency = links_.peer().latency_us * 1e-6;

  switch (algo_) {
    case AllReduceAlgo::kCentral: {
      // n GPUs -> host (sharing the host link), host reduce, host -> n GPUs.
      const double up = links_.transfer_seconds(buffer_bytes,
                                                /*src=*/0, sim::LinkModel::kHost,
                                                /*concurrent=*/n);
      const double down = links_.transfer_seconds(buffer_bytes,
                                                  sim::LinkModel::kHost, 0, n);
      const double host_reduce =
          reduce_seconds(bytes) * static_cast<double>(n - 1);
      out.seconds = up + host_reduce + down;
      out.bytes_moved = 2.0 * bytes * static_cast<double>(n);
      out.steps = 2;
      break;
    }
    case AllReduceAlgo::kTreeSingleStream: {
      // NCCL-style pipelined tree: the buffer is chunked and streamed up the
      // reduce tree and back down the broadcast tree, so the full buffer
      // crosses a link twice (up + down) with the reduction pipelined behind
      // the transfer; each of the 2*ceil(log2 n) rounds adds one hop
      // latency. This is the "more efficient on a single stream"
      // implementation the paper compares against.
      const auto rounds = static_cast<std::size_t>(
          std::ceil(std::log2(static_cast<double>(n))));
      const double xfer = links_.transfer_seconds(buffer_bytes, 0, 1, 1);
      out.seconds = 2.0 * xfer + reduce_seconds(bytes) +
                    static_cast<double>(2 * rounds - 2) * step_latency;
      out.bytes_moved = 2.0 * bytes * static_cast<double>(n - 1);
      out.steps = 2 * rounds;
      break;
    }
    case AllReduceAlgo::kRingMultiStream: {
      // P partitions of size bytes/P; each runs ring reduce-scatter +
      // all-gather: 2(n-1) steps of chunks sized (bytes/P)/n. Streams start
      // at distinct GPUs, so at any step concurrent streams occupy distinct
      // links (no bandwidth sharing) and the reduction compute overlaps the
      // transfer. With P == 1 the reduce serializes with the transfer
      // (classic single-stream ring). The per-step reduce-kernel launch
      // never overlaps.
      const std::size_t p = num_streams_;
      const double chunk = bytes / static_cast<double>(p) /
                           static_cast<double>(n);
      // Fractional chunk: truncating to whole bytes underbilled small
      // buffers at high stream counts (sub-byte chunks charged latency
      // only), which matters once delta merges shrink the payload.
      const double xfer = links_.transfer_seconds_frac(chunk, 0, 1, 1);
      const double red = reduce_seconds(chunk);
      // Reduce-scatter steps pay the reduction; all-gather steps only
      // forward shards. Every step launches a kernel (reduce or copy).
      const double rs_step = (p > 1 ? std::max(xfer, red) : xfer + red) +
                             kReduceLaunchSeconds;
      const double ag_step = xfer + kReduceLaunchSeconds;
      out.seconds = static_cast<double>(n - 1) * (rs_step + ag_step);
      out.bytes_moved = 2.0 * bytes * static_cast<double>(n - 1);
      out.steps = 2 * (n - 1);
      break;
    }
  }
  return out;
}

}  // namespace hetero::comm
