// Cost models for the individual collective primitives the all-reduce
// implementations are built from. Exposed separately so benches and tests
// can study each phase: a ring all-reduce is reduce-scatter + all-gather,
// a tree all-reduce is reduce + broadcast, and the central scheme is
// gather + broadcast over the host link.
//
// All functions return virtual seconds for `n` devices moving a buffer of
// `bytes`, on the given link model.
#pragma once

#include <cstddef>

#include "sim/link_model.h"

namespace hetero::comm {

struct CollectiveParams {
  std::size_t num_devices = 0;
  std::size_t bytes = 0;
  std::size_t num_streams = 1;
  double reduce_gbs = 300.0;  // on-device reduction throughput
};

/// One-to-all broadcast over peer links, binomial tree: ceil(log2 n) rounds
/// each forwarding the full buffer.
double broadcast_seconds(const sim::LinkModel& links,
                         const CollectiveParams& p);

/// Ring reduce-scatter: after (n-1) steps every device holds the reduced
/// 1/n-th shard. Multi-stream partitions overlap transfer and reduction.
double reduce_scatter_seconds(const sim::LinkModel& links,
                              const CollectiveParams& p);

/// Ring all-gather: (n-1) steps circulating 1/n-th shards (no reduction).
double all_gather_seconds(const sim::LinkModel& links,
                          const CollectiveParams& p);

/// All-to-host gather over the shared host link.
double host_gather_seconds(const sim::LinkModel& links,
                           const CollectiveParams& p);

/// Host-to-all broadcast over the shared host link.
double host_broadcast_seconds(const sim::LinkModel& links,
                              const CollectiveParams& p);

}  // namespace hetero::comm
