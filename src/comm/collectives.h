// Cost models for the individual collective primitives the all-reduce
// implementations are built from. Exposed separately so benches and tests
// can study each phase: a ring all-reduce is reduce-scatter + all-gather,
// a tree all-reduce is reduce + broadcast, and the central scheme is
// gather + broadcast over the host link.
//
// All functions return virtual seconds for the participating devices moving
// a buffer of `bytes` on the given link model. Participants are named by
// `ranks`; an empty `ranks` means devices 0..num_devices-1 (the original
// single-server behaviour). Costs are routed through the actual src/dst
// ranks, so a hop that crosses nodes (or touches a CPU replica) is charged
// at that link's bandwidth/latency, not a hard-coded peer pair.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/link_model.h"

namespace hetero::comm {

struct CollectiveParams {
  std::size_t num_devices = 0;
  std::size_t bytes = 0;
  std::size_t num_streams = 1;
  double reduce_gbs = 300.0;  // on-device reduction throughput
  /// Participating device ranks. Empty = iota(num_devices). When set, the
  /// participant count is ranks.size() and every hop is billed on the link
  /// the (src, dst) pair actually rides.
  std::vector<std::size_t> ranks;
};

/// One-to-all broadcast, binomial tree: ceil(log2 n) rounds each forwarding
/// the full buffer (pipelined: later rounds add hop latency only).
double broadcast_seconds(const sim::LinkModel& links,
                         const CollectiveParams& p);

/// Ring reduce-scatter: after (n-1) steps every device holds the reduced
/// 1/n-th shard. Multi-stream partitions overlap transfer and reduction.
/// Each step is paced by the slowest hop of the ring.
double reduce_scatter_seconds(const sim::LinkModel& links,
                              const CollectiveParams& p);

/// Ring all-gather: (n-1) steps circulating 1/n-th shards (no reduction).
double all_gather_seconds(const sim::LinkModel& links,
                          const CollectiveParams& p);

/// All-to-host gather over the shared host link.
double host_gather_seconds(const sim::LinkModel& links,
                           const CollectiveParams& p);

/// Host-to-all broadcast over the shared host link.
double host_broadcast_seconds(const sim::LinkModel& links,
                              const CollectiveParams& p);

}  // namespace hetero::comm
