// Weighted all-reduce for model merging (Section IV, "All-reduce Model
// Merging").
//
// The paper implements specialized tree- and ring-based *multi-stream*
// all-reduce aggregation because NCCL either lacks multi-stream support
// (no transfer/compute overlap) or targets multi-server topologies. Three
// algorithms are provided here:
//
//   kCentral          — every GPU ships its replica to the host, the host
//                       reduces and broadcasts back (parameter-server style;
//                       this is what TensorFlow central-storage does).
//   kTreeSingleStream — log2(n) pairwise reduce rounds + log2(n) broadcast
//                       rounds, full buffer per round, one stream.
//   kRingMultiStream  — the paper's method: the model is split into
//                       `num_streams` partitions, each partition runs a
//                       ring reduce-scatter + all-gather on its own stream
//                       *starting from a different GPU*, so concurrent
//                       streams always occupy distinct links and transfer
//                       overlaps reduction compute completely. With
//                       num_streams == 1 this degrades to the classic
//                       single-stream ring.
//
// Every algorithm computes the same numeric result:
//     out = sum_i weights[i] * replica_i           (then copied to all)
// so algorithm choice only affects the virtual-time cost — mirroring the
// paper, where the merging math is fixed and the all-reduce implementation
// is a performance decision. The returned cost is derived from the
// sim::LinkModel and device reduce throughput.
//
// Determinism contract: the reduction accumulates in double precision over
// replicas in index order (replica 0 initializes the accumulator), one
// element at a time. Sharding the element space — across streams or across
// ThreadPool workers — partitions elements without reordering the
// per-element sum, so every stream/thread/shard count produces bit-identical
// results.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "sim/link_model.h"
#include "sim/virtual_gpu.h"
#include "util/kernel_context.h"

namespace hetero::comm {

enum class AllReduceAlgo { kCentral, kTreeSingleStream, kRingMultiStream };

std::string to_string(AllReduceAlgo algo);

struct AllReduceCost {
  double seconds = 0.0;        // virtual wall-clock of the collective
  double bytes_moved = 0.0;    // total bytes crossing any link
  std::size_t steps = 0;       // number of communication steps (per stream)
  // Element data the collective was charged for: the full model in dense
  // merges, the touched-row delta in sparse merges — rows x hidden x
  // element size, where the element size depends on the merge precision
  // (4 bytes fp32, 2 fp16, 1 int8). Diagnostic for benches/tests; seconds
  // already reflects it.
  double payload_bytes = 0.0;
  // Everything on the wire: payload_bytes plus compression metadata
  // (per-group scales, header, loss scale). Equal to payload_bytes for
  // uncompressed merges. seconds/bytes_moved are derived from this total,
  // so compression metadata is billed honestly.
  double wire_bytes = 0.0;
};

/// Bytes-on-wire description of one merge transfer. Splitting element data
/// from metadata lets payload_bytes record the pure element-size reduction
/// (4x for int8, 2x for fp16) while the simulated transfer still pays for
/// the scales it ships.
struct WirePayload {
  double payload_bytes = 0.0;   // element data: elems x element size
  double metadata_bytes = 0.0;  // scales + header + loss scale
  double total() const { return payload_bytes + metadata_bytes; }
};

/// One replica's parameters as an ordered list of in-place tensor views
/// (e.g. the W1/b1/W2/b2 segments of nn::MlpModel::segment_views()).
/// Segment k must have the same length on every replica; concatenating the
/// segments defines the flat reduction index space.
using SegmentedView = std::vector<std::span<float>>;

class AllReducer {
 public:
  AllReducer(AllReduceAlgo algo, sim::LinkModel links,
             std::size_t num_streams);

  /// Numerically merges the replicas in-place: every replica ends holding
  /// sum_i weights[i] * replica_i. Weights are NOT renormalized here — the
  /// perturbed weights of Algorithm 2 may deliberately sum to != 1.
  ///
  /// Returns the virtual cost for `num_replicas` GPUs holding buffers of
  /// the given size. Cost does not depend on the weights.
  AllReduceCost weighted_average(std::vector<std::span<float>> replicas,
                                 std::span<const double> weights,
                                 const kernels::Context& ctx = {}) const;

  /// Zero-copy segmented variant: merges each replica's segments in place
  /// (no flattening copies). The flat index space is partitioned into at
  /// least num_streams() shards — mirroring the paper's multi-stream
  /// partitions — and shards are reduced on the ctx thread pool. Per the
  /// determinism contract above, the result is bit-identical to the serial
  /// single-shard reduction for any shard/thread count.
  AllReduceCost weighted_average_segments(
      std::span<const SegmentedView> replicas, std::span<const double> weights,
      const kernels::Context& ctx = {}) const;

  /// Cost-only query (used by benches sweeping buffer sizes without data).
  /// Under elastic membership the caller passes the ALIVE replica count:
  /// the ring/tree cost model re-derives its step count over the degraded
  /// topology, so losing a device also shrinks the collective.
  AllReduceCost cost(std::size_t num_replicas, std::size_t buffer_bytes,
                     double reduce_gbs = 300.0) const;

  /// Compressed-payload variant: the transfer (and the fractional ring
  /// chunks) is billed at wire.total() bytes, while the returned
  /// payload_bytes records only the element data — so a fp16/int8 merge
  /// shows the exact 2x/4x element reduction and still pays for its scale
  /// metadata. The plain-size overload is equivalent to a WirePayload with
  /// zero metadata.
  AllReduceCost cost(std::size_t num_replicas, const WirePayload& wire,
                     double reduce_gbs = 300.0) const;

  /// Topology-aware cost for the named participant ranks. When every rank
  /// lives on one node this is the flat single-level collective over the
  /// ranks' actual links (bit-identical to the scalar overload on an
  /// all-peer single-node topology). When ranks span nodes the merge is
  /// two-level: the configured algorithm within each node (over peer/host
  /// links, slowest node paces the phase), a chunked inter-node ring over
  /// one leader rank per node (network links), then an intra-node broadcast
  /// of the result. The merged *values* are identical either way — only the
  /// virtual-time cost reflects the hierarchy.
  AllReduceCost cost(std::span<const std::size_t> ranks,
                     const WirePayload& wire,
                     double reduce_gbs = 300.0) const;

  AllReduceAlgo algo() const { return algo_; }
  std::size_t num_streams() const { return num_streams_; }

 private:
  /// Flat (single-level) collective over the given ranks' actual links.
  AllReduceCost single_level_cost(std::span<const std::size_t> ranks,
                                  const WirePayload& wire,
                                  double reduce_gbs) const;

  AllReduceAlgo algo_;
  sim::LinkModel links_;
  std::size_t num_streams_;
};

}  // namespace hetero::comm
