// Blocking MPMC queue for event messages between GPU managers and the
// dynamic scheduler (the paper's "stand-alone asynchronous threads that
// communicate through event messages", Section IV).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace hetero::util {

template <typename T>
class EventQueue {
 public:
  void push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;  // closed queues drop new work
      queue_.push_back(std::move(value));
    }
    cv_.notify_one();
  }

  /// Blocks until an element is available or the queue is closed.
  /// Returns nullopt only when closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Closes the queue: pending pops drain remaining items then return
  /// nullopt; further pushes are ignored.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace hetero::util
