#include "util/error.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace hetero::util {

namespace {

[[noreturn]] void bad_token(const std::string& token, const std::string& kind,
                            const std::string& source, std::size_t line) {
  throw ParseError(source, "'" + token + "' is not a valid " + kind, line);
}

}  // namespace

std::uint64_t parse_u64_strict(const std::string& token,
                               const std::string& source, std::size_t line,
                               std::uint64_t max) {
  // strtoull silently accepts a leading '-' (negating modulo 2^64) and
  // leading whitespace; both are malformed here.
  if (token.empty() || !(token[0] >= '0' && token[0] <= '9')) {
    bad_token(token, "unsigned integer", source, line);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) {
    bad_token(token, "unsigned integer", source, line);
  }
  if (errno == ERANGE || value > max) {
    throw ParseError(source,
                     "'" + token + "' is out of range (max " +
                         std::to_string(max) + ")",
                     line);
  }
  return static_cast<std::uint64_t>(value);
}

std::int64_t parse_i64_strict(const std::string& token,
                              const std::string& source, std::size_t line) {
  if (token.empty() ||
      !((token[0] >= '0' && token[0] <= '9') || token[0] == '-' ||
        token[0] == '+')) {
    bad_token(token, "integer", source, line);
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size() || end == token.c_str()) {
    bad_token(token, "integer", source, line);
  }
  if (errno == ERANGE) {
    throw ParseError(source, "'" + token + "' is out of range", line);
  }
  return static_cast<std::int64_t>(value);
}

double parse_f64_strict(const std::string& token, const std::string& source,
                        std::size_t line, bool allow_non_finite) {
  if (token.empty() ||
      std::isspace(static_cast<unsigned char>(token[0]))) {
    bad_token(token, "number", source, line);
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || end == token.c_str()) {
    bad_token(token, "number", source, line);
  }
  if (errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL)) {
    throw ParseError(source, "'" + token + "' overflows a double", line);
  }
  if (!allow_non_finite && !std::isfinite(value)) {
    throw ParseError(source, "'" + token + "' is not finite", line);
  }
  return value;
}

float parse_f32_strict(const std::string& token, const std::string& source,
                       std::size_t line) {
  if (token.empty() ||
      std::isspace(static_cast<unsigned char>(token[0]))) {
    bad_token(token, "number", source, line);
  }
  errno = 0;
  char* end = nullptr;
  const float value = std::strtof(token.c_str(), &end);
  if (end != token.c_str() + token.size() || end == token.c_str()) {
    bad_token(token, "number", source, line);
  }
  if (errno == ERANGE &&
      (value == HUGE_VALF || value == -HUGE_VALF)) {
    throw ParseError(source, "'" + token + "' overflows a float", line);
  }
  if (!std::isfinite(value)) {
    throw ParseError(source, "'" + token + "' is not finite", line);
  }
  return value;
}

}  // namespace hetero::util
