// Streaming statistics helpers used by the metrics recorder and benches.
#pragma once

#include <cstddef>
#include <vector>

namespace hetero::util {

/// Welford's online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the q-quantile (q in [0,1]) with linear interpolation.
/// The input vector is copied and sorted; prefer batching queries.
double quantile(std::vector<double> values, double q);

/// Mean of a vector (0 for empty input).
double mean_of(const std::vector<double>& values);

/// Sample standard deviation of a vector (0 when size < 2).
double stddev_of(const std::vector<double>& values);

/// Relative spread: (max - min) / min. Used to report the Fig. 1 style
/// fastest-to-slowest GPU gap. Returns 0 for empty input or min == 0.
double relative_spread(const std::vector<double>& values);

}  // namespace hetero::util
