// Deterministic random number generation for the HeteroGPU framework.
//
// Everything in this repository that consumes randomness goes through Rng so
// that experiments and tests are reproducible bit-for-bit from a single seed.
// The generator is xoshiro256** (public domain, Blackman & Vigna), seeded via
// splitmix64 so that nearby integer seeds produce uncorrelated streams.
#pragma once

#include <cstdint>
#include <vector>

namespace hetero::util {

/// splitmix64 step: used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** pseudo-random generator with helper distributions.
///
/// Not thread-safe; give each thread / simulated device its own instance
/// (see `Rng::split`).
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed (expanded via splitmix64).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached pair).
  double next_gaussian();

  /// Normal with the given mean / stddev.
  double gaussian(double mean, double stddev);

  /// Lognormal: exp(N(mu, sigma)). Used for per-batch GPU jitter.
  double lognormal(double mu, double sigma);

  /// Bernoulli trial with probability p.
  bool bernoulli(double p);

  /// Zipf-distributed integer in [0, n), exponent s (s >= 0; s == 0 is
  /// uniform). Uses an inverse-CDF table amortized by ZipfSampler; this
  /// convenience method is O(n) per call, prefer ZipfSampler in loops.
  std::uint64_t zipf(std::uint64_t n, double s);

  /// Derives an independent child generator (for per-device streams).
  Rng split();

  /// Full generator state, including the cached Box-Muller pair — restoring
  /// it resumes the exact draw sequence (checkpointed recovery).
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double cached_gaussian = 0.0;
    bool has_cached_gaussian = false;
  };

  State state() const {
    return State{{s_[0], s_[1], s_[2], s_[3]}, cached_gaussian_,
                 has_cached_gaussian_};
  }

  void set_state(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
    cached_gaussian_ = st.cached_gaussian;
    has_cached_gaussian_ = st.has_cached_gaussian;
  }

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// Precomputed inverse-CDF sampler for the Zipf distribution over [0, n).
///
/// Sampling is O(log n) per draw; building the table is O(n). Used by the
/// synthetic XML data generator where feature and label popularity follow
/// power laws.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double exponent);

  std::uint64_t sample(Rng& rng) const;

  std::uint64_t size() const { return n_; }
  double exponent() const { return exponent_; }

 private:
  std::uint64_t n_;
  double exponent_;
  std::vector<double> cdf_;
};

}  // namespace hetero::util
