// Fixed-bin histogram used for nnz-per-sample and timing distributions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hetero::util {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); values outside — including +/-inf — are
  /// clamped to the edge bins. NaN values are dropped (counted separately,
  /// see non_finite()); they are never cast to an integer bin.
  Histogram(double lo, double hi, std::size_t num_bins);

  void add(double value);

  std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t num_bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }

  /// Number of non-finite values seen: NaNs (dropped) plus +/-infs
  /// (clamped into the edge bins but flagged here).
  std::size_t non_finite() const { return non_finite_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Renders an ASCII bar chart (used by bench binaries for quick viewing).
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t non_finite_ = 0;
};

}  // namespace hetero::util
