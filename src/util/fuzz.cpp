#include "util/fuzz.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "util/error.h"

namespace hetero::util::fuzz {

namespace {

// Bytes that matter to the text grammars under test (delimiters, signs,
// exponent markers) plus classic boundary bytes for the binary formats.
constexpr char kInterestingBytes[] = {
    ':', ',', ';', '@', '+', '-', 'x', '.', ' ', '\t', '\n', '#',
    '0', '1', '9', 'e', 'E', 'g', 'p', 'u', '\0', '\x7f', '\x80', '\xff'};

// Length/count fields in binary formats are 64-bit; smashing 8 bytes with
// these values is how the fuzzer reaches "hostile length" code paths.
constexpr std::uint64_t kInterestingU64[] = {
    0,
    1,
    0x7fULL,
    0xffULL,
    0x7fffULL,
    0xffffULL,
    0x7fffffffULL,
    0x80000000ULL,
    0xffffffffULL,
    0x100000000ULL,
    0x7fffffffffffffffULL,
    0x8000000000000000ULL,
    0xffffffffffffffffULL,
};

}  // namespace

Corpus::Corpus(std::vector<std::string> seeds) : entries_(std::move(seeds)) {
  if (entries_.empty()) entries_.emplace_back();
}

const std::string& Corpus::pick(Rng& rng) const {
  return entries_[static_cast<std::size_t>(rng.next_below(entries_.size()))];
}

void Corpus::add(std::string input) {
  if (entries_.size() >= max_entries_) return;
  entries_.push_back(std::move(input));
}

Mutator::Mutator(std::vector<std::string> dictionary)
    : dictionary_(std::move(dictionary)) {}

std::string Mutator::mutate(const std::string& input, Rng& rng) const {
  std::string out = input;
  const auto ops = 1 + rng.next_below(4);
  for (std::uint64_t op = 0; op < ops; ++op) {
    // Positions are drawn over size()+1 so insertions can hit the end and
    // mutations still apply to an empty string.
    const auto pos = static_cast<std::size_t>(rng.next_below(out.size() + 1));
    switch (rng.next_below(10)) {
      case 0:  // flip one bit
        if (!out.empty()) {
          out[pos % out.size()] ^=
              static_cast<char>(1u << rng.next_below(8));
        }
        break;
      case 1:  // overwrite with a random byte
        if (!out.empty()) {
          out[pos % out.size()] = static_cast<char>(rng.next_below(256));
        }
        break;
      case 2:  // overwrite with an interesting byte
        if (!out.empty()) {
          out[pos % out.size()] = kInterestingBytes[static_cast<std::size_t>(
              rng.next_below(sizeof(kInterestingBytes)))];
        }
        break;
      case 3:  // insert an interesting byte
        out.insert(out.begin() + static_cast<std::ptrdiff_t>(pos),
                   kInterestingBytes[static_cast<std::size_t>(
                       rng.next_below(sizeof(kInterestingBytes)))]);
        break;
      case 4: {  // erase a span
        if (!out.empty()) {
          const auto begin = pos % out.size();
          const auto len = 1 + rng.next_below(
                                   std::min<std::uint64_t>(16, out.size() - begin));
          out.erase(begin, static_cast<std::size_t>(len));
        }
        break;
      }
      case 5: {  // duplicate a span (stresses repeated-token handling)
        if (!out.empty()) {
          const auto begin = pos % out.size();
          const auto len = 1 + rng.next_below(
                                   std::min<std::uint64_t>(32, out.size() - begin));
          out.insert(begin, out.substr(begin, static_cast<std::size_t>(len)));
        }
        break;
      }
      case 6:  // truncate (binary formats: simulates a torn write)
        out.resize(pos);
        break;
      case 7: {  // splice in a dictionary token
        if (!dictionary_.empty()) {
          const auto& tok = dictionary_[static_cast<std::size_t>(
              rng.next_below(dictionary_.size()))];
          out.insert(pos, tok);
        }
        break;
      }
      case 8: {  // append random digits (number-length stressing)
        const auto digits = 1 + rng.next_below(24);
        for (std::uint64_t d = 0; d < digits; ++d) {
          out.insert(out.begin() + static_cast<std::ptrdiff_t>(
                         std::min(pos, out.size())),
                     static_cast<char>('0' + rng.next_below(10)));
        }
        break;
      }
      case 9: {  // smash 8 bytes with an interesting u64 (length fields)
        if (out.size() >= 8) {
          const auto begin = pos % (out.size() - 7);
          const std::uint64_t v = kInterestingU64[static_cast<std::size_t>(
              rng.next_below(std::size(kInterestingU64)))];
          std::memcpy(out.data() + begin, &v, sizeof v);
        }
        break;
      }
    }
    if (out.size() > max_output_bytes_) out.resize(max_output_bytes_);
  }
  return out;
}

Options Options::from_env(Options base) {
  if (const char* env = std::getenv("HETERO_FUZZ_ITERS")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      base.iterations = static_cast<std::size_t>(v);
    }
  }
  return base;
}

Stats run(const Options& opts, Corpus& corpus, const Mutator& mutator,
          const std::function<void(const std::string&)>& target) {
  Rng rng(opts.seed);
  Stats stats;
  for (std::size_t i = 0; i < opts.iterations; ++i) {
    const std::string& base = corpus.pick(rng);
    const std::string input = rng.next_double() < opts.pristine_probability
                                  ? base
                                  : mutator.mutate(base, rng);
    stats.max_input_bytes = std::max(stats.max_input_bytes, input.size());
    ++stats.iterations;
    try {
      target(input);
      ++stats.accepted;
      if (opts.grow_corpus && input != base) corpus.add(input);
    } catch (const ParseError&) {
      ++stats.rejected;  // the documented rejection path — success
    }
    // Anything else (std::bad_alloc, std::logic_error, stray
    // std::runtime_error, ...) propagates: the parser broke its contract.
  }
  stats.corpus_size = corpus.size();
  return stats;
}

}  // namespace hetero::util::fuzz
