// Minimal leveled logger.
//
// The framework logs scheduling decisions, merge weights, and batch-size
// updates at Debug level; benches and examples run at Info by default.
// Logging is globally synchronized so interleaved GPU-manager threads
// produce readable output.
#pragma once

#include <sstream>
#include <string>

namespace hetero::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level (default Info).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line (thread-safe). Prefer the HETERO_LOG macro.
void log_line(LogLevel level, const std::string& message);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace hetero::util

#define HETERO_LOG(level)                                      \
  if (static_cast<int>(level) <                                \
      static_cast<int>(::hetero::util::log_level())) {         \
  } else                                                       \
    ::hetero::util::detail::LogMessage(level)

#define HETERO_DEBUG HETERO_LOG(::hetero::util::LogLevel::kDebug)
#define HETERO_INFO HETERO_LOG(::hetero::util::LogLevel::kInfo)
#define HETERO_WARN HETERO_LOG(::hetero::util::LogLevel::kWarn)
#define HETERO_ERROR HETERO_LOG(::hetero::util::LogLevel::kError)
