#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace hetero::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Avoid the all-zero state (xoshiro fixed point).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::next_gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = next_double();
  double u2 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) {
  return mean + stddev * next_gaussian();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(gaussian(mu, sigma));
}

bool Rng::bernoulli(double p) { return next_double() < p; }

std::uint64_t Rng::zipf(std::uint64_t n, double s) {
  ZipfSampler sampler(n, s);
  return sampler.sample(*this);
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd2b74407b1ce6e93ULL); }

ZipfSampler::ZipfSampler(std::uint64_t n, double exponent)
    : n_(n), exponent_(exponent), cdf_(n) {
  assert(n > 0);
  double acc = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = acc;
  }
  const double inv = 1.0 / acc;
  for (auto& c : cdf_) c *= inv;
  cdf_.back() = 1.0;  // guard against rounding.
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  // Binary search for the first cdf entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

}  // namespace hetero::util
