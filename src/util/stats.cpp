#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace hetero::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  mean_ = (n1 * mean_ + n2 * other.mean_) / n;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double stddev_of(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean_of(values);
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values.size() - 1));
}

double relative_spread(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
  if (*mn == 0.0) return 0.0;
  return (*mx - *mn) / *mn;
}

}  // namespace hetero::util
