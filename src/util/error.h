// Typed errors for untrusted input.
//
// Everything the system reads from the outside world — libSVM/XML datasets,
// HGCK checkpoints, fault-plan spec strings, CLI flag values — goes through
// parsers that throw ParseError on malformed bytes. Callers (notably
// hetero_train) can then distinguish "your input is bad" (catch ParseError,
// print the diagnostic, exit non-zero) from "the system has a bug" (any
// other exception). ParseError carries the input source name plus, when
// known, a 1-based line number (text formats) or a byte offset (binary
// formats) so the diagnostic points at the offending spot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace hetero {

class ParseError : public std::runtime_error {
 public:
  /// Sentinel for "no line / no offset context".
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  ParseError(std::string source, const std::string& what,
             std::size_t line = npos, std::size_t offset = npos)
      : std::runtime_error(format(source, what, line, offset)),
        source_(std::move(source)),
        line_(line),
        offset_(offset) {}

  /// Which untrusted surface rejected the input ("libsvm", "checkpoint",
  /// "fault-plan", "cli", "size-list", "model-checkpoint").
  const std::string& source() const { return source_; }

  /// 1-based line number for text formats; npos when not applicable.
  std::size_t line() const { return line_; }

  /// Byte offset for binary formats; npos when not applicable.
  std::size_t offset() const { return offset_; }

 private:
  static std::string format(const std::string& source, const std::string& what,
                            std::size_t line, std::size_t offset) {
    std::string msg = source;
    if (line != npos) msg += ", line " + std::to_string(line);
    if (offset != npos) msg += ", byte " + std::to_string(offset);
    msg += ": " + what;
    return msg;
  }

  std::string source_;
  std::size_t line_;
  std::size_t offset_;
};

namespace util {

// Strict numeric parsing shared by the text parsers: the whole token must be
// consumed, overflow/underflow is an error, and the result must be
// representable. All throw ParseError naming `source` (and `line` when
// given) so the caller's diagnostic points at the bad token.

/// Unsigned integer; rejects sign, trailing garbage, and values > max.
std::uint64_t parse_u64_strict(const std::string& token,
                               const std::string& source,
                               std::size_t line = ParseError::npos,
                               std::uint64_t max = UINT64_MAX);

/// Signed integer; rejects trailing garbage and out-of-range values.
std::int64_t parse_i64_strict(const std::string& token,
                              const std::string& source,
                              std::size_t line = ParseError::npos);

/// Double; rejects trailing garbage and overflow. Accepts inf/nan spellings
/// only when `allow_non_finite` is set (binary formats that round-trip).
double parse_f64_strict(const std::string& token, const std::string& source,
                        std::size_t line = ParseError::npos,
                        bool allow_non_finite = false);

/// Float; rejects trailing garbage, overflow, and non-finite values.
float parse_f32_strict(const std::string& token, const std::string& source,
                       std::size_t line = ParseError::npos);

}  // namespace util
}  // namespace hetero
