// Deterministic, seed-driven mutational fuzzing for untrusted-input parsers.
//
// Unlike libFuzzer/AFL this harness is a plain library: a fixed util::Rng
// seed fully determines the input sequence, so a fuzz run is a reproducible
// test (same seed => same 10k inputs, bit for bit) that can run under any
// sanitizer preset (asan/ubsan/tsan) in seconds. The contract every target
// must satisfy:
//
//   for any byte string: the parser either succeeds, or throws
//   hetero::ParseError — it never crashes, trips UB, throws anything else,
//   or allocates unboundedly (allocations must be bounded by input size).
//
// fuzz::run enforces the exception side of that contract (ParseError is
// counted as a clean rejection; any other exception propagates and fails
// the test); the sanitizer presets enforce the crash/UB side.
//
// Usage (see tests/fuzz/):
//   fuzz::Corpus corpus({"0 1:1.0", "2 100 50"});
//   fuzz::Mutator mut({":", ",", "1e308", "-1"});
//   auto stats = fuzz::run(fuzz::Options::from_env({}), corpus, mut,
//                          [](const std::string& input) { parse(input); });
//   EXPECT_GE(stats.iterations, 10000u);
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.h"

namespace hetero::util::fuzz {

/// Pool of inputs mutations are derived from. Starts from hand-written valid
/// seeds; inputs the target accepted are added back (bounded) so mutation
/// walks deeper into the accepted grammar over time.
class Corpus {
 public:
  explicit Corpus(std::vector<std::string> seeds);

  const std::string& pick(Rng& rng) const;
  void add(std::string input);

  std::size_t size() const { return entries_.size(); }
  void set_max_entries(std::size_t n) { max_entries_ = n; }

 private:
  std::vector<std::string> entries_;
  std::size_t max_entries_ = 4096;
};

/// Random byte- and token-level mutations. A dictionary of format-specific
/// tokens (delimiters, keywords, magic values) makes mutants structure-aware
/// enough to reach past the first validation layer.
class Mutator {
 public:
  explicit Mutator(std::vector<std::string> dictionary = {});

  /// Applies 1..4 random mutation ops; output size is capped.
  std::string mutate(const std::string& input, Rng& rng) const;

  void set_max_output_bytes(std::size_t n) { max_output_bytes_ = n; }

 private:
  std::vector<std::string> dictionary_;
  std::size_t max_output_bytes_ = 1 << 14;
};

struct Options {
  std::size_t iterations = 10000;
  std::uint64_t seed = 0x48655455ULL;  // fixed default: runs are reproducible
  bool grow_corpus = true;
  /// Occasionally feed the unmutated corpus entry (keeps the accepting path
  /// exercised); probability in [0,1).
  double pristine_probability = 0.05;

  /// Returns `base` with iterations overridden by the HETERO_FUZZ_ITERS
  /// environment variable when set (longer soak runs without a rebuild).
  static Options from_env(Options base);
};

struct Stats {
  std::size_t iterations = 0;    // inputs fed to the target
  std::size_t accepted = 0;      // target returned normally
  std::size_t rejected = 0;      // target threw hetero::ParseError
  std::size_t corpus_size = 0;   // corpus entries after the run
  std::size_t max_input_bytes = 0;
};

/// Drives `target` through opts.iterations mutated inputs. ParseError from
/// the target counts as a clean rejection; any other exception propagates
/// (the fuzz test should let it fail the test framework).
Stats run(const Options& opts, Corpus& corpus, const Mutator& mutator,
          const std::function<void(const std::string&)>& target);

}  // namespace hetero::util::fuzz
