#include "util/cli.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace hetero::util {

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "ignoring positional argument '%s'\n", arg.c_str());
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // boolean flag form
    }
  }
}

std::optional<std::string> ArgParser::take(const std::string& name) {
  consumed_.push_back(name);
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& def) {
  return take(name).value_or(def);
}

std::int64_t ArgParser::get_int(const std::string& name, std::int64_t def) {
  auto v = take(name);
  if (!v) return def;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& name, double def) {
  auto v = take(name);
  if (!v) return def;
  return std::strtod(v->c_str(), nullptr);
}

bool ArgParser::get_bool(const std::string& name, bool def) {
  auto v = take(name);
  if (!v) return def;
  return *v == "true" || *v == "1" || *v == "yes";
}

bool ArgParser::report_unknown() const {
  bool any = false;
  for (const auto& [name, value] : values_) {
    if (std::find(consumed_.begin(), consumed_.end(), name) ==
        consumed_.end()) {
      std::fprintf(stderr, "unknown flag --%s=%s\n", name.c_str(),
                   value.c_str());
      any = true;
    }
  }
  return any;
}

}  // namespace hetero::util
