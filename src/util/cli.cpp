#include "util/cli.h"

#include <algorithm>
#include <cstdio>

#include "util/error.h"

namespace hetero::util {

std::vector<std::size_t> parse_size_list(const std::string& text) {
  if (text.empty()) {
    throw ParseError("size-list", "list is empty");
  }
  std::vector<std::size_t> sizes;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    auto comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string token = text.substr(pos, comma - pos);
    if (token.empty()) {
      throw ParseError("size-list",
                       "'" + text + "' has an empty element", ParseError::npos,
                       pos);
    }
    const auto value = parse_u64_strict(token, "size-list");
    if (value == 0) {
      throw ParseError("size-list", "'" + text + "' contains a zero entry",
                       ParseError::npos, pos);
    }
    sizes.push_back(static_cast<std::size_t>(value));
    pos = comma + 1;
  }
  return sizes;
}

ArgParser::ArgParser(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "ignoring positional argument '%s'\n", arg.c_str());
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // boolean flag form
    }
  }
}

std::optional<std::string> ArgParser::take(const std::string& name) {
  consumed_.push_back(name);
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& def) {
  return take(name).value_or(def);
}

std::int64_t ArgParser::get_int(const std::string& name, std::int64_t def) {
  auto v = take(name);
  if (!v) return def;
  return parse_i64_strict(*v, "cli: flag --" + name);
}

double ArgParser::get_double(const std::string& name, double def) {
  auto v = take(name);
  if (!v) return def;
  return parse_f64_strict(*v, "cli: flag --" + name);
}

std::vector<std::size_t> ArgParser::get_size_list(
    const std::string& name, std::vector<std::size_t> def) {
  auto v = take(name);
  if (!v) return def;
  return parse_size_list(*v);
}

bool ArgParser::get_bool(const std::string& name, bool def) {
  auto v = take(name);
  if (!v) return def;
  return *v == "true" || *v == "1" || *v == "yes";
}

bool ArgParser::report_unknown() const {
  bool any = false;
  for (const auto& [name, value] : values_) {
    if (std::find(consumed_.begin(), consumed_.end(), name) ==
        consumed_.end()) {
      std::fprintf(stderr, "unknown flag --%s=%s\n", name.c_str(),
                   value.c_str());
      any = true;
    }
  }
  return any;
}

}  // namespace hetero::util
