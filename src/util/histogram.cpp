#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace hetero::util {

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo), hi_(hi), counts_(num_bins, 0) {
  assert(hi > lo);
  assert(num_bins > 0);
}

void Histogram::add(double value) {
  const double t = (value - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

std::string Histogram::render(std::size_t width) const {
  std::size_t max_count = 1;
  for (auto c : counts_) max_count = std::max(max_count, c);
  std::string out;
  char line[160];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[b]) /
                                 static_cast<double>(max_count) *
                                 static_cast<double>(width));
    std::snprintf(line, sizeof(line), "[%10.3f, %10.3f) %8zu ", bin_lo(b),
                  bin_hi(b), counts_[b]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace hetero::util
