#include "util/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace hetero::util {

Histogram::Histogram(double lo, double hi, std::size_t num_bins)
    : lo_(lo), hi_(hi), counts_(num_bins, 0) {
  assert(hi > lo);
  assert(num_bins > 0);
}

void Histogram::add(double value) {
  if (std::isnan(value)) {
    // A NaN has no bin; dropping it deterministically (and counting it)
    // beats the old float->integer cast, which was UB before the clamp ran.
    ++non_finite_;
    return;
  }
  // Clamp in double space: for values far outside [lo, hi) — including
  // +/-inf and finite values whose scaled position exceeds PTRDIFF_MAX —
  // the cast itself would be UB, so the edge bins are chosen before any
  // float->integer conversion happens.
  const double t = (value - lo_) / (hi_ - lo_);
  std::size_t bin;
  if (!(t > 0.0)) {
    bin = 0;
  } else if (t >= 1.0) {
    bin = counts_.size() - 1;
  } else {
    bin = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
    bin = std::min(bin, counts_.size() - 1);  // t just below 1 can round up
  }
  if (std::isinf(value)) ++non_finite_;
  ++counts_[bin];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

std::string Histogram::render(std::size_t width) const {
  std::size_t max_count = 1;
  for (auto c : counts_) max_count = std::max(max_count, c);
  std::string out;
  char line[160];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[b]) /
                                 static_cast<double>(max_count) *
                                 static_cast<double>(width));
    std::snprintf(line, sizeof(line), "[%10.3f, %10.3f) %8zu ", bin_lo(b),
                  bin_hi(b), counts_[b]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace hetero::util
