#include "util/csv.h"

#include <cassert>
#include <cstdio>

namespace hetero::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path), width_(header.size()) {
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  assert(cells.size() == width_);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  char buf[64];
  for (double c : cells) {
    std::snprintf(buf, sizeof(buf), "%.6g", c);
    formatted.emplace_back(buf);
  }
  row(formatted);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace hetero::util
