#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace hetero::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& f) {
  if (n == 0) return;
  const std::size_t num_chunks = std::min(n, workers_.size());
  std::atomic<std::size_t> next{0};
  std::vector<std::future<void>> futures;
  futures.reserve(num_chunks);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    futures.push_back(submit([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        f(i);
      }
    }));
  }
  for (auto& fut : futures) fut.get();
}

}  // namespace hetero::util
