// nnz-balanced range partitioning for CSR-shaped work.
//
// Splitting rows evenly serializes skewed batches (a few heavy rows land on
// one worker); splitting the row_ptr prefix sums evenly balances the actual
// non-zero count instead. Extracted from spmm's open-coded loop so every
// CSR-walking kernel shares one implementation.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace hetero::kernels {

/// One contiguous row range [begin, end).
using RowRange = std::pair<std::size_t, std::size_t>;

/// Splits the rows of a CSR matrix into at most `workers` contiguous
/// ranges whose non-zero counts are approximately equal. `row_ptr` is the
/// CSR row-pointer array (rows + 1 monotone entries, back() == nnz).
/// Empty ranges are dropped, so the result may have fewer than `workers`
/// entries; the ranges returned are disjoint, ascending, and cover
/// [0, rows) exactly. workers == 0 is treated as 1.
std::vector<RowRange> nnz_balanced_ranges(std::span<const std::size_t> row_ptr,
                                          std::size_t workers);

}  // namespace hetero::kernels
