// Execution context for the CPU compute kernels.
//
// A kernels::Context carries an optional util::ThreadPool plus the worker
// count a kernel may use. Every parallel kernel partitions its OUTPUT rows
// into contiguous ranges (one per worker), so no two workers ever write the
// same cache line and — because each output row is still accumulated in the
// same serial order — threaded results are bit-identical to the serial
// reference. Kernels fall back to the serial path when the estimated work is
// below `serial_grain` (threading overhead would dominate) or when no pool
// is attached.
//
// The context is deliberately a dumb aggregate: trainers own the pool (one
// per runtime, shared by all virtual-GPU managers; ThreadPool::submit is
// thread-safe) and hand out `Context{pool, threads}` per replica workspace,
// which is how worker counts are configured per virtual GPU.
#pragma once

#include <cstddef>
#include <future>
#include <vector>

#include "util/thread_pool.h"

namespace hetero::kernels {

struct Context {
  util::ThreadPool* pool = nullptr;
  std::size_t num_threads = 1;
  /// Minimum work (≈ flops) before a kernel goes parallel; below this the
  /// fork/join overhead (~µs) exceeds the compute saved.
  std::size_t serial_grain = 64 * 1024;

  /// Serial context (the default for code that never set one up).
  static Context serial() { return Context{}; }

  bool parallel_enabled() const { return pool != nullptr && num_threads > 1; }

  /// True when a kernel with `total_work` work units should use the pool.
  bool should_parallelize(std::size_t total_work) const {
    return parallel_enabled() && total_work >= serial_grain;
  }

  /// Number of workers a kernel over `n` partitionable items may use.
  std::size_t workers_for(std::size_t n) const {
    if (!parallel_enabled()) return 1;
    std::size_t w = num_threads;
    if (pool->size() < w) w = pool->size();
    if (n < w) w = n;
    return w == 0 ? 1 : w;
  }
};

/// Runs fn(begin, end) over a contiguous partition of [0, n), using the
/// context's pool when `total_work` clears the serial-fallback threshold.
/// fn must be race-free across disjoint ranges (the kernels achieve this by
/// always partitioning output rows). Blocks until every range completes.
template <typename Fn>
void parallel_for_ranges(const Context& ctx, std::size_t n,
                         std::size_t total_work, Fn&& fn) {
  if (n == 0) return;
  const std::size_t workers =
      ctx.should_parallelize(total_work) ? ctx.workers_for(n) : 1;
  if (workers <= 1) {
    fn(std::size_t{0}, n);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t begin = n * w / workers;
    const std::size_t end = n * (w + 1) / workers;
    futures.push_back(ctx.pool->submit([begin, end, &fn] { fn(begin, end); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace hetero::kernels
