// Minimal command-line flag parser for examples and bench binaries.
//
// Supports --name=value and --name value forms plus boolean --flag.
// Unknown flags are an error so typos do not silently change experiments.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hetero::util {

/// Parses a comma-separated size list ("256,128,64") into positive sizes.
/// Throws hetero::ParseError on an empty list, an empty element, trailing
/// garbage ("12x"), overflow, or a zero entry — experiment configs must
/// fail loudly.
std::vector<std::size_t> parse_size_list(const std::string& text);

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// Declares a flag with a default, returning the parsed value. The
  /// numeric forms throw hetero::ParseError naming the flag when the value
  /// is not a number — "--gpus=abc" must not silently become 0.
  std::string get_string(const std::string& name, const std::string& def);
  std::int64_t get_int(const std::string& name, std::int64_t def);
  double get_double(const std::string& name, double def);
  bool get_bool(const std::string& name, bool def);

  /// Comma-separated size list, e.g. --hidden 256,128,64. Throws
  /// hetero::ParseError (via parse_size_list) on malformed input.
  std::vector<std::size_t> get_size_list(const std::string& name,
                                         std::vector<std::size_t> def);

  /// True if any unknown/undeclared flags remain; prints them to stderr.
  /// Call after all get_* declarations.
  bool report_unknown() const;

  const std::string& program_name() const { return program_; }

 private:
  std::optional<std::string> take(const std::string& name);

  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::vector<std::string> consumed_;
};

}  // namespace hetero::util
