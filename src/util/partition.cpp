#include "util/partition.h"

#include <algorithm>
#include <cassert>

namespace hetero::kernels {

std::vector<RowRange> nnz_balanced_ranges(std::span<const std::size_t> row_ptr,
                                          std::size_t workers) {
  std::vector<RowRange> ranges;
  if (row_ptr.size() <= 1) return ranges;  // zero rows
  const std::size_t rows = row_ptr.size() - 1;
  const std::size_t nnz = row_ptr.back();
  if (workers == 0) workers = 1;
  ranges.reserve(std::min(workers, rows));

  std::size_t r0 = 0;
  for (std::size_t c = 0; c < workers; ++c) {
    // Cut at the row boundary whose prefix sum is NEAREST the c-th nnz
    // quantile. Rounding down only (the last boundary at or below the
    // target) degenerates when a heavy row straddles every quantile from
    // the left — e.g. a heavy FIRST row pulls all cuts to 0 and the whole
    // matrix lands on one worker. Nearest rounding isolates a heavy row at
    // either end. The final range always extends to `rows` so every row is
    // covered even when trailing rows are empty.
    const std::size_t target = nnz * (c + 1) / workers;
    std::size_t r1 = rows;
    if (c + 1 < workers) {
      const auto lo =
          std::upper_bound(row_ptr.begin(), row_ptr.end(), target) -
          row_ptr.begin() - 1;
      r1 = static_cast<std::size_t>(lo);
      if (r1 < rows &&
          target - row_ptr[r1] > row_ptr[r1 + 1] - target) {
        ++r1;
      }
    }
    if (r1 < r0) r1 = r0;
    if (r1 > rows) r1 = rows;
    if (r1 > r0) ranges.emplace_back(r0, r1);
    r0 = r1;
  }
  assert(ranges.empty() || (ranges.front().first == 0 &&
                            ranges.back().second == rows));
  return ranges;
}

}  // namespace hetero::kernels
