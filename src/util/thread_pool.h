// Simple fixed-size thread pool.
//
// Used by the threaded MultiGpuRuntime mode (one worker per GPU manager plus
// the scheduler) and by data-parallel helpers (dataset generation, batched
// evaluation). The deterministic discrete-event runtime does not use threads.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace hetero::util {

class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns a future for its completion/result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Runs f(i) for i in [0, n) across the pool and waits for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& f);

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace hetero::util
