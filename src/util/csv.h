// Tiny CSV writer used by benches to dump figure series next to the
// human-readable tables (so plots can be regenerated offline).
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace hetero::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; the number of cells must match the header.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with %.6g.
  void row_numeric(const std::vector<double>& cells);

  bool ok() const { return static_cast<bool>(out_); }
  const std::string& path() const { return path_; }

  static std::string escape(const std::string& cell);

 private:
  std::string path_;
  std::ofstream out_;
  std::size_t width_;
};

}  // namespace hetero::util
