#include "sim/topology.h"

#include <algorithm>
#include <cassert>

namespace hetero::sim {

std::vector<int> Topology::nodes_of(
    const std::vector<std::size_t>& ranks) const {
  std::vector<int> nodes;
  for (std::size_t r : ranks) {
    assert(r < node_of.size());
    nodes.push_back(node_of[r]);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

std::vector<std::vector<std::size_t>> Topology::group_by_node(
    const std::vector<std::size_t>& ranks) const {
  const std::vector<int> nodes = nodes_of(ranks);
  std::vector<std::vector<std::size_t>> groups(nodes.size());
  for (std::size_t r : ranks) {
    const auto it =
        std::lower_bound(nodes.begin(), nodes.end(), node_of[r]);
    groups[static_cast<std::size_t>(it - nodes.begin())].push_back(r);
  }
  return groups;
}

Topology Topology::flat(std::size_t num_replicas) {
  Topology t;
  t.num_nodes = 1;
  t.node_of.assign(num_replicas, 0);
  t.is_cpu.assign(num_replicas, false);
  return t;
}

Topology Topology::cluster(std::size_t nodes, std::size_t gpus_per_node,
                           std::size_t cpu_replicas) {
  return partitioned(nodes, nodes * gpus_per_node, cpu_replicas);
}

Topology Topology::partitioned(std::size_t nodes, std::size_t gpus,
                               std::size_t cpu_replicas) {
  assert(nodes >= 1);
  Topology t;
  t.num_nodes = nodes;
  const std::size_t base = gpus / nodes;
  const std::size_t extra = gpus % nodes;
  for (std::size_t n = 0; n < nodes; ++n) {
    const std::size_t owned = base + (n < extra ? 1 : 0);
    for (std::size_t g = 0; g < owned; ++g) {
      t.node_of.push_back(static_cast<int>(n));
      t.is_cpu.push_back(false);
    }
  }
  for (std::size_t c = 0; c < cpu_replicas; ++c) {
    t.node_of.push_back(static_cast<int>(c % nodes));
    t.is_cpu.push_back(true);
  }
  return t;
}

}  // namespace hetero::sim
