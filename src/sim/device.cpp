#include "sim/device.h"

#include <cstdio>

namespace hetero::sim {

std::string describe(const DeviceSpec& spec) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s speed=%.3f dense=%.0fGF sparse=%.0fGF bw=%.0fGB/s "
                "launch=%.1fus jitter=%.3f mem=%.1fGB",
                spec.name.c_str(), spec.speed_factor, spec.dense_gflops,
                spec.sparse_gflops, spec.mem_bandwidth_gbs,
                spec.launch_overhead_us, spec.jitter_sigma,
                static_cast<double>(spec.memory_bytes) / (1024.0 * 1024 * 1024));
  return buf;
}

}  // namespace hetero::sim
