#include "sim/gantt.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

namespace hetero::sim {

std::string render_gantt(const Tracer& tracer, const GanttOptions& options) {
  if (tracer.events().empty()) return "(no events)\n";

  double end = options.end;
  if (end <= options.start) {
    for (const auto& e : tracer.events()) {
      end = std::max(end, e.start + e.duration);
    }
  }
  const double span = end - options.start;
  if (span <= 0.0) return "(empty window)\n";
  const std::size_t width = std::max<std::size_t>(2, options.width);

  // Collect lane ids (devices, optionally host = -1).
  std::vector<int> lanes;
  for (const auto& e : tracer.events()) {
    if (e.device < 0 && !options.include_host_row) continue;
    if (std::find(lanes.begin(), lanes.end(), e.device) == lanes.end()) {
      lanes.push_back(e.device);
    }
  }
  std::sort(lanes.begin(), lanes.end());

  std::map<int, std::string> rows;
  for (int lane : lanes) rows[lane] = std::string(width, '.');

  const auto priority = [](const std::string& category) {
    if (category == "compute") return 2;
    if (category == "comm") return 1;
    return 1;  // merge/host work renders like comm
  };
  const auto glyph = [](const std::string& category) {
    return category == "compute" ? '#' : '=';
  };
  std::map<int, std::vector<int>> cell_priority;
  for (int lane : lanes) cell_priority[lane].assign(width, 0);

  for (const auto& e : tracer.events()) {
    auto row = rows.find(e.device);
    if (row == rows.end()) continue;
    const double s = std::max(e.start, options.start);
    const double t = std::min(e.start + e.duration, end);
    if (t <= s) continue;
    auto from = static_cast<std::size_t>((s - options.start) / span *
                                         static_cast<double>(width));
    auto to = static_cast<std::size_t>((t - options.start) / span *
                                       static_cast<double>(width));
    from = std::min(from, width - 1);
    to = std::min(std::max(to, from + 1), width);
    const int p = priority(e.category);
    for (std::size_t i = from; i < to; ++i) {
      if (p >= cell_priority[e.device][i]) {
        row->second[i] = glyph(e.category);
        cell_priority[e.device][i] = p;
      }
    }
  }

  std::string out;
  char label[64];
  std::snprintf(label, sizeof(label), "virtual time %.6f .. %.6f s\n",
                options.start, end);
  out += label;
  for (int lane : lanes) {
    if (lane < 0) {
      std::snprintf(label, sizeof(label), "%-6s|", "host");
    } else {
      std::snprintf(label, sizeof(label), "gpu%-3d|", lane);
    }
    out += label;
    out += rows[lane];
    out += "|\n";
  }
  out += "        '#' compute   '=' merge/comm   '.' idle (barrier wait)\n";
  return out;
}

}  // namespace hetero::sim
