// ASCII Gantt rendering of a traced schedule — a terminal version of the
// paper's Figure 2: one row per GPU, '#' for compute, '=' for communication
// (merging), '.' for idle/barrier wait. Makes the straggler gaps that
// Adaptive SGD removes directly visible in a terminal.
#pragma once

#include <string>

#include "sim/trace.h"

namespace hetero::sim {

struct GanttOptions {
  double start = 0.0;           // window start (virtual seconds)
  double end = 0.0;             // window end; 0 = last event end
  std::size_t width = 100;      // characters per row
  bool include_host_row = true; // show the scheduler/host lane
};

/// Renders tracer events into a fixed-width ASCII chart. Devices are sorted
/// by id; overlapping categories resolve as compute > comm > idle.
std::string render_gantt(const Tracer& tracer, const GanttOptions& options);

}  // namespace hetero::sim
