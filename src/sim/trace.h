// Execution tracing for the simulated multi-GPU server.
//
// Records kernel/step/collective intervals on the virtual timeline and
// exports them in the Chrome trace-event JSON format, so a training run can
// be inspected in chrome://tracing or Perfetto: one row per (GPU, stream),
// straggler gaps and merge barriers visible at a glance.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace hetero::sim {

struct TraceEvent {
  std::string name;       // e.g. "sgd_step b=128 nnz=9312"
  std::string category;   // "compute", "comm", "merge"
  int device = 0;         // GPU id; -1 for host/scheduler
  std::size_t stream = 0;
  double start = 0.0;     // virtual seconds
  double duration = 0.0;  // virtual seconds
};

class Tracer {
 public:
  void add(TraceEvent event) { events_.push_back(std::move(event)); }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Writes the Chrome trace-event JSON ("traceEvents" array of complete
  /// 'X' events; microsecond timestamps).
  void write_chrome_json(std::ostream& out) const;
  void write_chrome_json_file(const std::string& path) const;

  /// Total traced busy time for one device (diagnostics/tests).
  double device_busy_seconds(int device) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace hetero::sim
