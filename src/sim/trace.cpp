#include "sim/trace.h"

#include <fstream>
#include <ostream>
#include <stdexcept>

namespace hetero::sim {

namespace {
std::string escape_json(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}
}  // namespace

void Tracer::write_chrome_json(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) out << ',';
    first = false;
    // pid = device (host events go to pid 1000), tid = stream.
    const int pid = e.device < 0 ? 1000 : e.device;
    out << "{\"name\":\"" << escape_json(e.name) << "\",\"cat\":\""
        << escape_json(e.category) << "\",\"ph\":\"X\",\"pid\":" << pid
        << ",\"tid\":" << e.stream << ",\"ts\":" << e.start * 1e6
        << ",\"dur\":" << e.duration * 1e6 << "}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
}

void Tracer::write_chrome_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("tracer: cannot open " + path);
  write_chrome_json(out);
}

double Tracer::device_busy_seconds(int device) const {
  double total = 0.0;
  for (const auto& e : events_) {
    if (e.device == device) total += e.duration;
  }
  return total;
}

}  // namespace hetero::sim
