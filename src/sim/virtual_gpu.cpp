#include "sim/virtual_gpu.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <string>

namespace hetero::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

OutOfDeviceMemory::OutOfDeviceMemory(int device, std::size_t requested,
                                     std::size_t available)
    : std::runtime_error("device " + std::to_string(device) +
                         ": requested " + std::to_string(requested) +
                         " bytes, " + std::to_string(available) + " free"),
      device_(device) {}

DeviceUnavailable::DeviceUnavailable(int device, double time)
    : std::runtime_error("device " + std::to_string(device) +
                         " is dead at t=" + std::to_string(time)),
      device_(device),
      time_(time) {}

VirtualGpu::VirtualGpu(int id, DeviceSpec spec, std::uint64_t seed,
                       std::size_t num_streams)
    : id_(id), spec_(std::move(spec)), rng_(seed),
      stream_free_at_(std::max<std::size_t>(1, num_streams), 0.0),
      dead_after_(kInf) {}

double VirtualGpu::submit(std::size_t stream,
                          const std::vector<KernelDesc>& kernels,
                          double earliest_start, bool fused,
                          std::size_t active_managers) {
  assert(stream < stream_free_at_.size());
  const double start =
      next_available(std::max(earliest_start, stream_free_at_[stream]));
  if (start >= dead_after_) {
    // Freeze the clocks at the kill point so next_schedulable() reads the
    // device as permanently unavailable from here on.
    wait_all_until(dead_after_);
    throw DeviceUnavailable(id_, start);
  }

  // Transient degradation (thermal throttling / interference).
  if (spec_.transient_probability > 0.0 && start >= degraded_until_ &&
      rng_.bernoulli(spec_.transient_probability)) {
    degraded_until_ = start + spec_.transient_duration;
    ++transient_episodes_;
  }
  double throughput = 1.0;
  if (start < degraded_until_ && spec_.transient_factor != 1.0) {
    throughput *= spec_.transient_factor;
  }
  throughput *= slowdown_factor_at(start);
  double duration;
  if (throughput != 1.0) {
    DeviceSpec degraded = spec_;
    degraded.speed_factor *= throughput;
    duration = CostModel::sequence_seconds(kernels, degraded, fused,
                                           active_managers, rng_);
  } else {
    duration = CostModel::sequence_seconds(kernels, spec_, fused,
                                           active_managers, rng_);
  }
  stream_free_at_[stream] = start + duration;
  busy_seconds_ += duration;
  return stream_free_at_[stream];
}

double VirtualGpu::stream_free_at(std::size_t stream) const {
  assert(stream < stream_free_at_.size());
  return stream_free_at_[stream];
}

double VirtualGpu::device_free_at() const {
  return *std::max_element(stream_free_at_.begin(), stream_free_at_.end());
}

void VirtualGpu::wait_all_until(double time) {
  for (auto& t : stream_free_at_) t = std::max(t, time);
}

void VirtualGpu::add_slowdown(double start, double end, double factor) {
  assert(factor > 0.0);
  if (end <= start) return;
  slowdowns_.push_back({start, end, factor, 0});
}

void VirtualGpu::add_stall(double start, double end) {
  if (end <= start) return;
  stalls_.push_back({start, end, 1.0, 0});
}

void VirtualGpu::add_memory_cap(double start, double end, std::size_t bytes) {
  if (end <= start) return;
  memory_caps_.push_back({start, end, 1.0, bytes});
}

void VirtualGpu::kill_at(double time) {
  dead_after_ = std::min(dead_after_, time);
}

void VirtualGpu::revive_at(double time) {
  dead_after_ = kInf;
  wait_all_until(time);
}

double VirtualGpu::next_available(double t) const {
  // Windows are few and may overlap; iterate to a fixed point.
  bool moved = true;
  while (moved) {
    moved = false;
    for (const auto& w : stalls_) {
      if (t >= w.start && t < w.end) {
        t = w.end;
        moved = true;
      }
    }
  }
  return t;
}

double VirtualGpu::next_schedulable(double t) const {
  const double u = next_available(t);
  return u < dead_after_ ? u : kInf;
}

void VirtualGpu::restore_timing(double clock, double busy_seconds,
                                double degraded_until,
                                std::size_t transient_episodes) {
  for (auto& t : stream_free_at_) t = clock;
  busy_seconds_ = busy_seconds;
  degraded_until_ = degraded_until;
  transient_episodes_ = transient_episodes;
}

double VirtualGpu::slowdown_factor_at(double t) const {
  double factor = 1.0;
  for (const auto& w : slowdowns_) {
    if (t >= w.start && t < w.end) factor *= w.factor;
  }
  return factor;
}

std::size_t VirtualGpu::memory_capacity_at(double at) const {
  std::size_t capacity = spec_.memory_bytes;
  for (const auto& w : memory_caps_) {
    if (at >= w.start && at < w.end) capacity = std::min(capacity, w.bytes);
  }
  return capacity;
}

void VirtualGpu::allocate(std::size_t bytes, double at) {
  const std::size_t capacity = memory_capacity_at(at);
  const std::size_t available =
      capacity > memory_used_ ? capacity - memory_used_ : 0;
  if (bytes > available) {
    throw OutOfDeviceMemory(id_, bytes, available);
  }
  memory_used_ += bytes;
}

void VirtualGpu::free(std::size_t bytes) {
  assert(bytes <= memory_used_);
  memory_used_ -= bytes;
}

std::size_t VirtualGpu::max_batch_for(std::size_t bytes_per_sample,
                                      double at) const {
  if (bytes_per_sample == 0) return 0;
  const std::size_t capacity = memory_capacity_at(at);
  const std::size_t available =
      capacity > memory_used_ ? capacity - memory_used_ : 0;
  return available / bytes_per_sample;
}

}  // namespace hetero::sim
