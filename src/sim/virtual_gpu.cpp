#include "sim/virtual_gpu.h"

#include <algorithm>
#include <cassert>
#include <string>

namespace hetero::sim {

OutOfDeviceMemory::OutOfDeviceMemory(int device, std::size_t requested,
                                     std::size_t available)
    : std::runtime_error("device " + std::to_string(device) +
                         ": requested " + std::to_string(requested) +
                         " bytes, " + std::to_string(available) + " free"),
      device_(device) {}

VirtualGpu::VirtualGpu(int id, DeviceSpec spec, std::uint64_t seed,
                       std::size_t num_streams)
    : id_(id), spec_(std::move(spec)), rng_(seed),
      stream_free_at_(std::max<std::size_t>(1, num_streams), 0.0) {}

double VirtualGpu::submit(std::size_t stream,
                          const std::vector<KernelDesc>& kernels,
                          double earliest_start, bool fused,
                          std::size_t active_managers) {
  assert(stream < stream_free_at_.size());
  const double start = std::max(earliest_start, stream_free_at_[stream]);

  // Transient degradation (thermal throttling / interference).
  if (spec_.transient_probability > 0.0 && start >= degraded_until_ &&
      rng_.bernoulli(spec_.transient_probability)) {
    degraded_until_ = start + spec_.transient_duration;
    ++transient_episodes_;
  }
  double duration;
  if (start < degraded_until_ && spec_.transient_factor != 1.0) {
    DeviceSpec degraded = spec_;
    degraded.speed_factor *= spec_.transient_factor;
    duration = CostModel::sequence_seconds(kernels, degraded, fused,
                                           active_managers, rng_);
  } else {
    duration = CostModel::sequence_seconds(kernels, spec_, fused,
                                           active_managers, rng_);
  }
  stream_free_at_[stream] = start + duration;
  busy_seconds_ += duration;
  return stream_free_at_[stream];
}

double VirtualGpu::stream_free_at(std::size_t stream) const {
  assert(stream < stream_free_at_.size());
  return stream_free_at_[stream];
}

double VirtualGpu::device_free_at() const {
  return *std::max_element(stream_free_at_.begin(), stream_free_at_.end());
}

void VirtualGpu::wait_all_until(double time) {
  for (auto& t : stream_free_at_) t = std::max(t, time);
}

void VirtualGpu::allocate(std::size_t bytes) {
  if (bytes > memory_free()) {
    throw OutOfDeviceMemory(id_, bytes, memory_free());
  }
  memory_used_ += bytes;
}

void VirtualGpu::free(std::size_t bytes) {
  assert(bytes <= memory_used_);
  memory_used_ -= bytes;
}

std::size_t VirtualGpu::max_batch_for(std::size_t bytes_per_sample) const {
  if (bytes_per_sample == 0) return 0;
  return memory_free() / bytes_per_sample;
}

}  // namespace hetero::sim
