#include "sim/profiles.h"

#include <cassert>
#include <string>

namespace hetero::sim {

std::vector<DeviceSpec> v100_heterogeneous(std::size_t n, double max_gap,
                                           double jitter_sigma) {
  assert(n >= 1);
  std::vector<DeviceSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    DeviceSpec& s = specs[i];
    s.name = "V100-16GB#" + std::to_string(i);
    // Uniform spacing of epoch time (1/speed) in [1, 1+max_gap].
    const double slowdown =
        n == 1 ? 1.0
               : 1.0 + max_gap * static_cast<double>(i) /
                           static_cast<double>(n - 1);
    s.speed_factor = 1.0 / slowdown;
    s.jitter_sigma = jitter_sigma;
  }
  return specs;
}

std::vector<DeviceSpec> v100_homogeneous(std::size_t n, double jitter_sigma) {
  assert(n >= 1);
  std::vector<DeviceSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].name = "V100-16GB#" + std::to_string(i);
    specs[i].jitter_sigma = jitter_sigma;
  }
  return specs;
}

std::vector<DeviceSpec> v100_custom(const std::vector<double>& speed_factors,
                                    double jitter_sigma) {
  assert(!speed_factors.empty());
  std::vector<DeviceSpec> specs(speed_factors.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    assert(speed_factors[i] > 0.0);
    specs[i].name = "V100-16GB#" + std::to_string(i);
    specs[i].speed_factor = speed_factors[i];
    specs[i].jitter_sigma = jitter_sigma;
  }
  return specs;
}

DeviceSpec cpu_replica_spec(double slowdown, std::size_t index,
                            double jitter_sigma) {
  assert(slowdown >= 1.0);
  DeviceSpec s;
  s.name = "CPU-replica#" + std::to_string(index);
  s.speed_factor = 1.0 / slowdown;
  // Thread-pool dispatch, not a CUDA launch; and no shared CUDA context to
  // contend on.
  s.launch_overhead_us = 2.0;
  s.launch_contention = 0.0;
  s.jitter_sigma = jitter_sigma;
  s.memory_bytes = 256ull * 1024 * 1024 * 1024;  // host RAM
  return s;
}

std::vector<DeviceSpec> cluster_devices(std::size_t nodes,
                                        std::size_t gpus_per_node,
                                        std::size_t cpu_replicas,
                                        double max_gap, double jitter_sigma,
                                        double cpu_slowdown) {
  assert(nodes >= 1);
  std::vector<DeviceSpec> specs;
  for (std::size_t n = 0; n < nodes; ++n) {
    const auto node = v100_heterogeneous(gpus_per_node, max_gap, jitter_sigma);
    for (std::size_t g = 0; g < node.size(); ++g) {
      DeviceSpec s = node[g];
      if (nodes > 1) {
        s.name = "node" + std::to_string(n) + ":V100-16GB#" +
                 std::to_string(g);
      }
      specs.push_back(std::move(s));
    }
  }
  for (std::size_t c = 0; c < cpu_replicas; ++c) {
    specs.push_back(cpu_replica_spec(cpu_slowdown, c, jitter_sigma));
  }
  return specs;
}

LinkModel default_links(std::size_t num_devices) {
  LinkSpec peer;   // NVLink-class
  peer.bandwidth_gbs = 24.0;
  peer.latency_us = 10.0;
  LinkSpec host;   // PCIe 3.0 x16-class
  host.bandwidth_gbs = 12.0;
  host.latency_us = 15.0;
  return LinkModel(num_devices, peer, host);
}

LinkModel cluster_links(const Topology& topology, double net_gbs,
                        double net_latency_us) {
  assert(net_gbs > 0.0);
  LinkSpec peer;   // NVLink-class
  peer.bandwidth_gbs = 24.0;
  peer.latency_us = 10.0;
  LinkSpec host;   // PCIe 3.0 x16-class
  host.bandwidth_gbs = 12.0;
  host.latency_us = 15.0;
  LinkSpec net;    // Ethernet/IB-class
  net.bandwidth_gbs = net_gbs;
  net.latency_us = net_latency_us;
  return LinkModel(topology, peer, host, net);
}

}  // namespace hetero::sim
