#include "sim/profiles.h"

#include <cassert>
#include <string>

namespace hetero::sim {

std::vector<DeviceSpec> v100_heterogeneous(std::size_t n, double max_gap,
                                           double jitter_sigma) {
  assert(n >= 1);
  std::vector<DeviceSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    DeviceSpec& s = specs[i];
    s.name = "V100-16GB#" + std::to_string(i);
    // Uniform spacing of epoch time (1/speed) in [1, 1+max_gap].
    const double slowdown =
        n == 1 ? 1.0
               : 1.0 + max_gap * static_cast<double>(i) /
                           static_cast<double>(n - 1);
    s.speed_factor = 1.0 / slowdown;
    s.jitter_sigma = jitter_sigma;
  }
  return specs;
}

std::vector<DeviceSpec> v100_homogeneous(std::size_t n, double jitter_sigma) {
  assert(n >= 1);
  std::vector<DeviceSpec> specs(n);
  for (std::size_t i = 0; i < n; ++i) {
    specs[i].name = "V100-16GB#" + std::to_string(i);
    specs[i].jitter_sigma = jitter_sigma;
  }
  return specs;
}

std::vector<DeviceSpec> v100_custom(const std::vector<double>& speed_factors,
                                    double jitter_sigma) {
  assert(!speed_factors.empty());
  std::vector<DeviceSpec> specs(speed_factors.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    assert(speed_factors[i] > 0.0);
    specs[i].name = "V100-16GB#" + std::to_string(i);
    specs[i].speed_factor = speed_factors[i];
    specs[i].jitter_sigma = jitter_sigma;
  }
  return specs;
}

LinkModel default_links(std::size_t num_devices) {
  LinkSpec peer;   // NVLink-class
  peer.bandwidth_gbs = 24.0;
  peer.latency_us = 10.0;
  LinkSpec host;   // PCIe 3.0 x16-class
  host.bandwidth_gbs = 12.0;
  host.latency_us = 15.0;
  return LinkModel(num_devices, peer, host);
}

}  // namespace hetero::sim
