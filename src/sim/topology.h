// Placement of replica ranks onto nodes for the multi-node hierarchy.
//
// A Topology maps every replica rank (GPU or CPU compute replica) to a
// node index and records which ranks are CPU replicas. Replica ranks are
// laid out node-major: node 0's GPUs first, then node 1's, ..., with CPU
// replicas appended at the tail (round-robined across nodes). The
// single-node special case (`Topology::flat`) reproduces the original
// one-server layout exactly, so all pre-hierarchy call sites keep their
// behaviour bit-for-bit.
#pragma once

#include <cstddef>
#include <vector>

namespace hetero::sim {

struct Topology {
  std::size_t num_nodes = 1;
  /// Node index per replica rank.
  std::vector<int> node_of;
  /// True for CPU compute replicas (attached over the host link, not peer).
  std::vector<bool> is_cpu;

  std::size_t num_replicas() const { return node_of.size(); }
  bool single_node() const { return num_nodes <= 1; }
  bool same_node(int a, int b) const {
    return node_of[static_cast<std::size_t>(a)] ==
           node_of[static_cast<std::size_t>(b)];
  }
  std::size_t cpu_replicas() const {
    std::size_t n = 0;
    for (bool c : is_cpu) n += c ? 1 : 0;
    return n;
  }

  /// Node index per rank in `ranks`, deduplicated, ascending.
  std::vector<int> nodes_of(const std::vector<std::size_t>& ranks) const;

  /// Ranks grouped by node (ascending node order; only nodes that own at
  /// least one of `ranks` appear). Rank order within a group follows the
  /// order of `ranks`.
  std::vector<std::vector<std::size_t>> group_by_node(
      const std::vector<std::size_t>& ranks) const;

  /// One server holding all `num_replicas` ranks (the original layout).
  static Topology flat(std::size_t num_replicas);

  /// `nodes` servers with `gpus_per_node` GPUs each (node-major ranks),
  /// plus `cpu_replicas` CPU ranks appended at the tail, round-robined
  /// across nodes.
  static Topology cluster(std::size_t nodes, std::size_t gpus_per_node,
                          std::size_t cpu_replicas = 0);

  /// `gpus` GPUs split as evenly as possible across `nodes` servers
  /// (node-major; earlier nodes take the remainder), plus `cpu_replicas`
  /// CPU ranks at the tail. Equals cluster() when gpus divides evenly.
  static Topology partitioned(std::size_t nodes, std::size_t gpus,
                              std::size_t cpu_replicas = 0);
};

}  // namespace hetero::sim
