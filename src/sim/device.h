// Device specifications for the simulated multi-GPU server.
//
// The paper's testbed is a single server with 4 NVIDIA V100-16GB GPUs
// (Section V-A) whose observed epoch times on an *identical* batch differ by
// up to 32% (Figure 1). We model each GPU with published V100 peak numbers
// scaled by a per-device `speed_factor` (static heterogeneity: clock/memory
// latency differences between "identical" parts) plus per-kernel lognormal
// jitter (dynamic heterogeneity: thermal/scheduling oscillation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace hetero::sim {

struct DeviceSpec {
  std::string name = "V100-16GB";

  /// Relative throughput multiplier (1.0 = nominal). Epoch time scales with
  /// 1 / speed_factor, so a 0.76 device is ~32% slower than a 1.0 device.
  double speed_factor = 1.0;

  /// Peak dense fp32 throughput, GFLOP/s (V100: ~14,000).
  double dense_gflops = 14'000.0;

  /// Effective sparse (irregular gather/scatter) throughput, GFLOP/s.
  /// Sparse kernels are memory-latency bound; cuSPARSE SpMM on XML-shaped
  /// inputs reaches only a few percent of peak.
  double sparse_gflops = 420.0;

  /// HBM2 bandwidth, GB/s (V100: 900).
  double mem_bandwidth_gbs = 900.0;

  /// Per-kernel launch overhead in microseconds. The paper observes this
  /// overhead grows when several GPU managers share the CUDA environment;
  /// see CostModel::launch_seconds for the contention term.
  double launch_overhead_us = 8.0;

  /// Extra launch overhead per additional concurrently-active GPU manager
  /// (fraction of launch_overhead_us). Models the Section IV interference.
  double launch_contention = 0.6;

  /// Lognormal sigma of the multiplicative per-invocation jitter.
  double jitter_sigma = 0.03;

  /// Transient slowdown injection — dynamic heterogeneity beyond jitter
  /// (thermal throttling, a co-located job stealing SM time). With
  /// probability `transient_probability` per kernel-sequence submission the
  /// device enters a degraded state where throughput is multiplied by
  /// `transient_factor` for `transient_duration` virtual seconds.
  double transient_probability = 0.0;
  double transient_factor = 1.0;
  double transient_duration = 0.0;

  /// Device memory capacity in bytes (V100-16GB).
  std::size_t memory_bytes = 16ull * 1024 * 1024 * 1024;
};

/// Returns a human-readable one-line description.
std::string describe(const DeviceSpec& spec);

}  // namespace hetero::sim
