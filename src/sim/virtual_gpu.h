// A virtual GPU: per-device virtual timeline, execution streams, memory
// accounting, and a private jitter RNG.
//
// The simulator is *passive*: callers (the MultiGpuRuntime, the all-reduce
// implementations) decide when work starts; VirtualGpu computes when it
// finishes and tracks per-stream availability. All times are virtual seconds
// since experiment start.
//
// Fault windows (armed by fault::FaultInjector against the virtual timeline):
//   - slowdown windows multiply throughput for work starting inside them,
//     composing with the DeviceSpec transient mechanism;
//   - stall windows make the device unavailable between two virtual times —
//     submissions are pushed past the window;
//   - kill_at / revive_at model a crashed replica leaving and re-entering
//     the server: no kernel may start at or after the kill time.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "sim/cost_model.h"
#include "sim/device.h"
#include "util/rng.h"

namespace hetero::sim {

/// Thrown when a simulated allocation exceeds device memory — the same
/// failure mode that forces the paper to cap b_max by "the maximum size of
/// a batch that fits in the GPU memory".
class OutOfDeviceMemory : public std::runtime_error {
 public:
  OutOfDeviceMemory(int device, std::size_t requested, std::size_t available);
  int device() const { return device_; }

 private:
  int device_;
};

/// Thrown when work would start on a device at or after its kill time — the
/// dispatch decision raced a scheduled crash. Schedulers avoid dead devices
/// via next_schedulable(); trainers that catch this drop the batch (the
/// crashed replica's pending updates are discarded at the merge anyway).
class DeviceUnavailable : public std::runtime_error {
 public:
  DeviceUnavailable(int device, double time);
  int device() const { return device_; }
  double time() const { return time_; }

 private:
  int device_;
  double time_;
};

class VirtualGpu {
 public:
  /// `num_streams` independent execution lanes (CUDA streams).
  VirtualGpu(int id, DeviceSpec spec, std::uint64_t seed,
             std::size_t num_streams = 4);

  int id() const { return id_; }
  const DeviceSpec& spec() const { return spec_; }
  std::size_t num_streams() const { return stream_free_at_.size(); }

  // --- execution -----------------------------------------------------------

  /// Runs a kernel sequence on `stream`, starting no earlier than
  /// `earliest_start`, the stream's previous work, and the end of any stall
  /// window covering the start. Returns the completion time and advances the
  /// stream clock. Throws DeviceUnavailable when the start would land at or
  /// after the kill time (clocks are first advanced to the kill time so the
  /// device reads as unschedulable from then on).
  double submit(std::size_t stream, const std::vector<KernelDesc>& kernels,
                double earliest_start, bool fused = true,
                std::size_t active_managers = 1);

  /// Blocks stream semantics: time at which `stream` is free.
  double stream_free_at(std::size_t stream) const;

  /// Time at which every stream is free (device idle).
  double device_free_at() const;

  /// Synchronizes all streams to at least `time` (event wait).
  void wait_all_until(double time);

  /// Total virtual seconds this device spent executing submitted work
  /// (excludes idle/wait time). Utilization = busy / device_free_at().
  double busy_seconds() const { return busy_seconds_; }

  /// Number of transient-slowdown episodes entered so far.
  std::size_t transient_episodes() const { return transient_episodes_; }

  // --- fault windows -------------------------------------------------------

  /// Multiplies throughput by `factor` for work starting in [start, end).
  /// Factors of overlapping windows (and the transient mechanism) compose.
  void add_slowdown(double start, double end, double factor);

  /// Device unavailable in [start, end): no kernel may start inside the
  /// window; submissions are pushed to `end`.
  void add_stall(double start, double end);

  /// Caps usable memory at `bytes` for allocations made in [start, end)
  /// (simulated OOM pressure: co-tenant allocations, fragmentation).
  void add_memory_cap(double start, double end, std::size_t bytes);

  /// Permanent failure: no work may start at or after `time` (until a
  /// revive). Earlier of multiple kills wins.
  void kill_at(double time);

  /// Re-enters a killed device at `time` (elastic join): clears the kill
  /// and advances all stream clocks to at least `time`.
  void revive_at(double time);

  bool dead_at(double time) const { return time >= dead_after_; }
  double dead_after() const { return dead_after_; }

  /// Earliest time >= t not inside a stall window (ignores the kill).
  double next_available(double t) const;

  /// Earliest time >= t at which new work may start, or +infinity when the
  /// device is dead by then — the scheduler's dispatch predicate.
  double next_schedulable(double t) const;

  /// Restores the device timeline from a checkpoint: every stream clock set
  /// to `clock`, cumulative busy time and transient-degradation state to
  /// the stored values (the jitter RNG is restored separately via rng()).
  void restore_timing(double clock, double busy_seconds, double degraded_until,
                      std::size_t transient_episodes);

  double degraded_until() const { return degraded_until_; }

  // --- memory --------------------------------------------------------------

  /// Reserves bytes at virtual time `at`; throws OutOfDeviceMemory when
  /// exceeding the capacity in effect at that time.
  void allocate(std::size_t bytes, double at = 0.0);
  void free(std::size_t bytes);
  std::size_t memory_used() const { return memory_used_; }
  std::size_t memory_free() const { return spec_.memory_bytes - memory_used_; }

  /// Usable capacity for an allocation made at virtual time `at` (device
  /// memory reduced by any covering memory-cap window).
  std::size_t memory_capacity_at(double at) const;

  /// Largest batch (in samples) fitting in free memory at time `at` given a
  /// per-sample footprint estimate. Used to derive b_max.
  std::size_t max_batch_for(std::size_t bytes_per_sample,
                            double at = 0.0) const;

  util::Rng& rng() { return rng_; }
  const util::Rng& rng() const { return rng_; }

 private:
  struct Window {
    double start = 0.0;
    double end = 0.0;
    double factor = 1.0;     // slowdown windows
    std::size_t bytes = 0;   // memory-cap windows
  };

  double slowdown_factor_at(double t) const;

  int id_;
  DeviceSpec spec_;
  util::Rng rng_;
  std::vector<double> stream_free_at_;
  std::size_t memory_used_ = 0;
  double busy_seconds_ = 0.0;
  double degraded_until_ = 0.0;
  std::size_t transient_episodes_ = 0;
  std::vector<Window> slowdowns_;
  std::vector<Window> stalls_;
  std::vector<Window> memory_caps_;
  double dead_after_;  // +infinity while healthy
};

}  // namespace hetero::sim
