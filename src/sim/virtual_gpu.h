// A virtual GPU: per-device virtual timeline, execution streams, memory
// accounting, and a private jitter RNG.
//
// The simulator is *passive*: callers (the MultiGpuRuntime, the all-reduce
// implementations) decide when work starts; VirtualGpu computes when it
// finishes and tracks per-stream availability. All times are virtual seconds
// since experiment start.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "sim/cost_model.h"
#include "sim/device.h"
#include "util/rng.h"

namespace hetero::sim {

/// Thrown when a simulated allocation exceeds device memory — the same
/// failure mode that forces the paper to cap b_max by "the maximum size of
/// a batch that fits in the GPU memory".
class OutOfDeviceMemory : public std::runtime_error {
 public:
  OutOfDeviceMemory(int device, std::size_t requested, std::size_t available);
  int device() const { return device_; }

 private:
  int device_;
};

class VirtualGpu {
 public:
  /// `num_streams` independent execution lanes (CUDA streams).
  VirtualGpu(int id, DeviceSpec spec, std::uint64_t seed,
             std::size_t num_streams = 4);

  int id() const { return id_; }
  const DeviceSpec& spec() const { return spec_; }
  std::size_t num_streams() const { return stream_free_at_.size(); }

  // --- execution -----------------------------------------------------------

  /// Runs a kernel sequence on `stream`, starting no earlier than
  /// `earliest_start` and no earlier than the stream's previous work.
  /// Returns the completion time and advances the stream clock.
  double submit(std::size_t stream, const std::vector<KernelDesc>& kernels,
                double earliest_start, bool fused = true,
                std::size_t active_managers = 1);

  /// Blocks stream semantics: time at which `stream` is free.
  double stream_free_at(std::size_t stream) const;

  /// Time at which every stream is free (device idle).
  double device_free_at() const;

  /// Synchronizes all streams to at least `time` (event wait).
  void wait_all_until(double time);

  /// Total virtual seconds this device spent executing submitted work
  /// (excludes idle/wait time). Utilization = busy / device_free_at().
  double busy_seconds() const { return busy_seconds_; }

  /// Number of transient-slowdown episodes entered so far.
  std::size_t transient_episodes() const { return transient_episodes_; }

  // --- memory --------------------------------------------------------------

  /// Reserves bytes; throws OutOfDeviceMemory when exceeding capacity.
  void allocate(std::size_t bytes);
  void free(std::size_t bytes);
  std::size_t memory_used() const { return memory_used_; }
  std::size_t memory_free() const { return spec_.memory_bytes - memory_used_; }

  /// Largest batch (in samples) fitting in free memory given a per-sample
  /// footprint estimate. Used to derive b_max.
  std::size_t max_batch_for(std::size_t bytes_per_sample) const;

  util::Rng& rng() { return rng_; }

 private:
  int id_;
  DeviceSpec spec_;
  util::Rng rng_;
  std::vector<double> stream_free_at_;
  std::size_t memory_used_ = 0;
  double busy_seconds_ = 0.0;
  double degraded_until_ = 0.0;
  std::size_t transient_episodes_ = 0;
};

}  // namespace hetero::sim
