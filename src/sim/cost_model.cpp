#include "sim/cost_model.h"

#include <algorithm>
#include <cassert>

namespace hetero::sim {

double CostModel::kernel_seconds(const KernelDesc& kernel,
                                 const DeviceSpec& spec) {
  const double gflops = kernel.sparse ? spec.sparse_gflops : spec.dense_gflops;
  const double compute = kernel.flops / (gflops * 1e9);
  const double memory = kernel.bytes / (spec.mem_bandwidth_gbs * 1e9);
  return std::max(compute, memory) / spec.speed_factor;
}

double CostModel::launch_seconds(std::size_t num_launches,
                                 std::size_t active_managers,
                                 const DeviceSpec& spec) {
  assert(active_managers >= 1);
  const double per_launch =
      spec.launch_overhead_us * 1e-6 *
      (1.0 + spec.launch_contention *
                 static_cast<double>(active_managers - 1));
  return per_launch * static_cast<double>(num_launches);
}

double CostModel::sequence_seconds(const std::vector<KernelDesc>& kernels,
                                   const DeviceSpec& spec, bool fused,
                                   std::size_t active_managers,
                                   util::Rng& rng) {
  double compute = 0.0;
  for (const auto& k : kernels) compute += kernel_seconds(k, spec);
  const double jitter =
      spec.jitter_sigma > 0.0 ? rng.lognormal(0.0, spec.jitter_sigma) : 1.0;
  const std::size_t launches = fused ? (kernels.empty() ? 0 : 1)
                                     : kernels.size();
  return compute * jitter + launch_seconds(launches, active_managers, spec);
}

}  // namespace hetero::sim
