// Interconnect model for the single-server multi-GPU topology.
//
// Transfers are charged latency + bytes/bandwidth. GPU<->GPU (peer-to-peer)
// and CPU<->GPU (host) links have separate specs; the default profile is
// PCIe 3.0 x16-class for host and NVLink-class for peers, matching a V100
// server. Stream-level concurrency is handled by the callers (all-reduce
// partitions ride separate streams); the link model optionally divides
// bandwidth among concurrent transfers on the same link.
#pragma once

#include <cstddef>
#include <vector>

namespace hetero::sim {

struct LinkSpec {
  double bandwidth_gbs = 24.0;  // NVLink 2.0 single direction per link
  double latency_us = 10.0;
};

class LinkModel {
 public:
  LinkModel(std::size_t num_devices, LinkSpec peer, LinkSpec host);

  /// Seconds to move `bytes` from device `src` to device `dst`
  /// (device index, or kHost for the CPU side). `concurrent` transfers
  /// share the link bandwidth equally.
  double transfer_seconds(std::size_t bytes, int src, int dst,
                          std::size_t concurrent = 1) const;

  /// Fractional-byte variant for chunked collectives: a multi-stream ring
  /// moves bytes/(streams*n) per step, which is rarely a whole number of
  /// bytes — truncating it to std::size_t underbills small buffers at high
  /// stream counts (down to a latency-only charge).
  double transfer_seconds_frac(double bytes, int src, int dst,
                               std::size_t concurrent = 1) const;

  std::size_t num_devices() const { return num_devices_; }
  const LinkSpec& peer() const { return peer_; }
  const LinkSpec& host() const { return host_; }

  static constexpr int kHost = -1;

 private:
  std::size_t num_devices_;
  LinkSpec peer_;
  LinkSpec host_;
};

}  // namespace hetero::sim
