// Interconnect model for single-server and multi-node topologies.
//
// Transfers are charged latency + bytes/bandwidth. Three link classes are
// distinguished: GPU<->GPU peer links within a node (NVLink-class),
// CPU<->GPU host links (PCIe-class — also used by CPU compute replicas,
// which have no peer fabric), and the inter-node network (Ethernet/IB-class).
// The default profile is PCIe 3.0 x16 for host and NVLink for peers,
// matching a V100 server. Stream-level concurrency is handled by the
// callers (all-reduce partitions ride separate streams); the link model
// optionally divides bandwidth among concurrent transfers on the same link.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/topology.h"

namespace hetero::sim {

struct LinkSpec {
  double bandwidth_gbs = 24.0;  // NVLink 2.0 single direction per link
  double latency_us = 10.0;
};

class LinkModel {
 public:
  /// Single-server model: every device pair rides the peer link.
  LinkModel(std::size_t num_devices, LinkSpec peer, LinkSpec host);

  /// Topology-aware model: same-node GPU pairs ride `peer`, pairs that
  /// involve a CPU replica (or kHost) ride `host`, and cross-node pairs
  /// ride `net`.
  LinkModel(Topology topology, LinkSpec peer, LinkSpec host, LinkSpec net);

  /// Seconds to move `bytes` from device `src` to device `dst`
  /// (device index, or kHost for the CPU side). `concurrent` transfers
  /// share the link bandwidth equally. Self-transfers (`src == dst`) are
  /// free — nothing crosses a link.
  double transfer_seconds(std::size_t bytes, int src, int dst,
                          std::size_t concurrent = 1) const;

  /// Fractional-byte variant for chunked collectives: a multi-stream ring
  /// moves bytes/(streams*n) per step, which is rarely a whole number of
  /// bytes — truncating it to std::size_t underbills small buffers at high
  /// stream counts (down to a latency-only charge).
  double transfer_seconds_frac(double bytes, int src, int dst,
                               std::size_t concurrent = 1) const;

  /// The link class a (src, dst) pair rides.
  const LinkSpec& link_for(int src, int dst) const;

  std::size_t num_devices() const { return topology_.num_replicas(); }
  const LinkSpec& peer() const { return peer_; }
  const LinkSpec& host() const { return host_; }
  const LinkSpec& net() const { return net_; }
  const Topology& topology() const { return topology_; }

  static constexpr int kHost = -1;

 private:
  Topology topology_;
  LinkSpec peer_;
  LinkSpec host_;
  LinkSpec net_;
};

}  // namespace hetero::sim
