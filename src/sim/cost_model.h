// Roofline-style kernel cost model.
//
// A kernel is described by its flop count, bytes moved, and whether it is a
// sparse (irregular) kernel. Virtual execution time on a device is
//
//   t = max(flops / throughput, bytes / bandwidth) / speed_factor * jitter
//
// where throughput is the dense or sparse effective rate. Launch overhead is
// charged separately (per kernel, or once per fused group) and grows with
// the number of concurrently active GPU managers, reproducing the CUDA
// environment interference that motivates kernel fusion in Section IV.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/device.h"
#include "util/rng.h"

namespace hetero::sim {

struct KernelDesc {
  double flops = 0.0;
  double bytes = 0.0;
  bool sparse = false;
  std::string name;
};

class CostModel {
 public:
  /// Pure compute time of one kernel (no launch overhead, no jitter).
  static double kernel_seconds(const KernelDesc& kernel,
                               const DeviceSpec& spec);

  /// Launch overhead for `num_launches` kernel launches with
  /// `active_managers` GPU-manager threads currently submitting work.
  static double launch_seconds(std::size_t num_launches,
                               std::size_t active_managers,
                               const DeviceSpec& spec);

  /// Total time for a kernel sequence on one stream. If `fused`, primitive
  /// kernels are grouped into a single launch (Section IV kernel fusion);
  /// otherwise each kernel pays its own launch overhead. Jitter is one
  /// lognormal draw applied to the compute portion (launch overhead is
  /// deterministic).
  static double sequence_seconds(const std::vector<KernelDesc>& kernels,
                                 const DeviceSpec& spec, bool fused,
                                 std::size_t active_managers, util::Rng& rng);
};

}  // namespace hetero::sim
