#include "sim/link_model.h"

#include <cassert>
#include <utility>

namespace hetero::sim {

LinkModel::LinkModel(std::size_t num_devices, LinkSpec peer, LinkSpec host)
    : topology_(Topology::flat(num_devices)),
      peer_(peer),
      host_(host),
      net_(peer) {}

LinkModel::LinkModel(Topology topology, LinkSpec peer, LinkSpec host,
                     LinkSpec net)
    : topology_(std::move(topology)), peer_(peer), host_(host), net_(net) {}

const LinkSpec& LinkModel::link_for(int src, int dst) const {
  if (src == kHost || dst == kHost) return host_;
  const auto s = static_cast<std::size_t>(src);
  const auto d = static_cast<std::size_t>(dst);
  assert(s < topology_.num_replicas() && d < topology_.num_replicas());
  if (!topology_.same_node(src, dst)) return net_;
  // CPU compute replicas have no peer fabric: same-node traffic to or from
  // one crosses the host interconnect.
  if (topology_.is_cpu[s] || topology_.is_cpu[d]) return host_;
  return peer_;
}

double LinkModel::transfer_seconds(std::size_t bytes, int src, int dst,
                                   std::size_t concurrent) const {
  return transfer_seconds_frac(static_cast<double>(bytes), src, dst,
                               concurrent);
}

double LinkModel::transfer_seconds_frac(double bytes, int src, int dst,
                                        std::size_t concurrent) const {
  assert(src == kHost ||
         static_cast<std::size_t>(src) < topology_.num_replicas());
  assert(dst == kHost ||
         static_cast<std::size_t>(dst) < topology_.num_replicas());
  // A self-transfer never crosses a link: no latency, no bytes on the wire.
  if (src == dst) return 0.0;
  // concurrent == 0 is a caller bug (division by zero would silently yield
  // +inf bandwidth → zero transfer time); assert in debug, clamp in release.
  assert(concurrent >= 1);
  if (concurrent == 0) concurrent = 1;
  const LinkSpec& link = link_for(src, dst);
  const double bandwidth =
      link.bandwidth_gbs * 1e9 / static_cast<double>(concurrent);
  return link.latency_us * 1e-6 + bytes / bandwidth;
}

}  // namespace hetero::sim
