#include "sim/link_model.h"

#include <cassert>

namespace hetero::sim {

LinkModel::LinkModel(std::size_t num_devices, LinkSpec peer, LinkSpec host)
    : num_devices_(num_devices), peer_(peer), host_(host) {}

double LinkModel::transfer_seconds(std::size_t bytes, int src, int dst,
                                   std::size_t concurrent) const {
  return transfer_seconds_frac(static_cast<double>(bytes), src, dst,
                               concurrent);
}

double LinkModel::transfer_seconds_frac(double bytes, int src, int dst,
                                        std::size_t concurrent) const {
  assert(src == kHost || static_cast<std::size_t>(src) < num_devices_);
  assert(dst == kHost || static_cast<std::size_t>(dst) < num_devices_);
  assert(concurrent >= 1);
  const bool host_side = (src == kHost) || (dst == kHost);
  const LinkSpec& link = host_side ? host_ : peer_;
  const double bandwidth =
      link.bandwidth_gbs * 1e9 / static_cast<double>(concurrent);
  return link.latency_us * 1e-6 + bytes / bandwidth;
}

}  // namespace hetero::sim
