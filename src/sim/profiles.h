// Server heterogeneity profiles.
//
// The default profile reproduces Figure 1: four same-model V100s whose
// epoch times on an identical batch spread by up to ~32% fastest-to-slowest.
// Epoch time scales with 1/speed_factor, so factors are spaced uniformly in
// 1/speed between 1.0 and 1.0 + max_gap.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/device.h"
#include "sim/link_model.h"

namespace hetero::sim {

/// `n` V100-class devices with a fastest-to-slowest epoch-time gap of
/// `max_gap` (default 0.32 per Figure 1) and the given per-kernel jitter.
std::vector<DeviceSpec> v100_heterogeneous(std::size_t n,
                                           double max_gap = 0.32,
                                           double jitter_sigma = 0.03);

/// `n` identical devices (for ablating away static heterogeneity).
std::vector<DeviceSpec> v100_homogeneous(std::size_t n,
                                         double jitter_sigma = 0.03);

/// Custom server: one V100-class device per entry of `speed_factors`
/// (1.0 = nominal throughput). Lets experiments model arbitrary mixes,
/// e.g. {1.0, 1.0, 0.5} = two healthy cards plus one badly-throttled one.
std::vector<DeviceSpec> v100_custom(const std::vector<double>& speed_factors,
                                    double jitter_sigma = 0.03);

/// Default single-server link model: NVLink-class peer links, PCIe host.
LinkModel default_links(std::size_t num_devices);

}  // namespace hetero::sim
