// Server heterogeneity profiles.
//
// The default profile reproduces Figure 1: four same-model V100s whose
// epoch times on an identical batch spread by up to ~32% fastest-to-slowest.
// Epoch time scales with 1/speed_factor, so factors are spaced uniformly in
// 1/speed between 1.0 and 1.0 + max_gap.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/device.h"
#include "sim/link_model.h"

namespace hetero::sim {

/// `n` V100-class devices with a fastest-to-slowest epoch-time gap of
/// `max_gap` (default 0.32 per Figure 1) and the given per-kernel jitter.
std::vector<DeviceSpec> v100_heterogeneous(std::size_t n,
                                           double max_gap = 0.32,
                                           double jitter_sigma = 0.03);

/// `n` identical devices (for ablating away static heterogeneity).
std::vector<DeviceSpec> v100_homogeneous(std::size_t n,
                                         double jitter_sigma = 0.03);

/// Custom server: one V100-class device per entry of `speed_factors`
/// (1.0 = nominal throughput). Lets experiments model arbitrary mixes,
/// e.g. {1.0, 1.0, 0.5} = two healthy cards plus one badly-throttled one.
std::vector<DeviceSpec> v100_custom(const std::vector<double>& speed_factors,
                                    double jitter_sigma = 0.03);

/// CPU compute replica per Ma & Rusu's "Heterogeneous CPU+GPU SGD": a
/// `slowdown`x slower device than a nominal V100 on the training kernel mix
/// (they report 10-50x depending on sparsity). Modeled through speed_factor
/// so the roofline shape is shared with the GPUs; launch overhead is a
/// function call, not a CUDA launch, and host RAM is plentiful.
DeviceSpec cpu_replica_spec(double slowdown = 25.0, std::size_t index = 0,
                            double jitter_sigma = 0.03);

/// Devices for an N-node cluster: `nodes * gpus_per_node` V100s laid out
/// node-major, each node carrying the same Figure-1 heterogeneity spread
/// (identical servers), plus `cpu_replicas` CPU compute replicas appended
/// at the tail. At nodes=1, cpu_replicas=0 this is exactly
/// v100_heterogeneous(gpus_per_node, max_gap, jitter_sigma).
std::vector<DeviceSpec> cluster_devices(std::size_t nodes,
                                        std::size_t gpus_per_node,
                                        std::size_t cpu_replicas = 0,
                                        double max_gap = 0.32,
                                        double jitter_sigma = 0.03,
                                        double cpu_slowdown = 25.0);

/// Default single-server link model: NVLink-class peer links, PCIe host.
LinkModel default_links(std::size_t num_devices);

/// Link model for a cluster topology: NVLink-class peers within a node,
/// PCIe for host and CPU-replica traffic, and an Ethernet/IB-class network
/// link between nodes (default 100 Gb InfiniBand-class: 12.5 GB/s, 50 us).
/// At one node with no CPU replicas the network link is never selected, so
/// this degenerates to default_links bit-for-bit.
LinkModel cluster_links(const Topology& topology, double net_gbs = 12.5,
                        double net_latency_us = 50.0);

}  // namespace hetero::sim
