// Dense row-major matrix of floats.
//
// Deliberately minimal: the MLP needs batched dense GEMM-like products,
// element-wise activation, and flat views for all-reduce merging. Storage is
// a contiguous std::vector<float> so a Matrix can be treated as a flat
// parameter buffer by the communication layer.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace hetero::tensor {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  std::span<float> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const float> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<float> flat() { return {data_.data(), data_.size()}; }
  std::span<const float> flat() const { return {data_.data(), data_.size()}; }

  /// Sets every element to `value`.
  void fill(float value);

  /// Resizes (content is unspecified afterwards except newly default-filled).
  void resize(std::size_t rows, std::size_t cols, float fill = 0.0f);

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace hetero::tensor
