// AVX2 Vec wrappers: 8-lane float and 4-lane double over ymm registers.
//
// Only compiled into the avx2/avx512 kernel TUs (CMake adds -mavx2 -mfma
// -ffp-contract=off to exactly those sources). No fused operations are used
// anywhere: bit-identity with the scalar table requires the same two
// roundings per mul+add as the scalar expression, and -ffp-contract=off
// stops GCC from fusing the intrinsic mul/add pairs (they are plain vector
// operators under the hood) on its own.
//
// Tail handling is masked: load_n/store_n use vmaskmov with a mask built
// from a constant table, so element-wise kernels never read or write past
// the span while still running the identical per-element expressions on the
// live lanes.
#pragma once

#if !defined(__AVX2__)
#error "vec256.h requires -mavx2"
#endif
#if !defined(__F16C__)
#error "vec256.h requires -mf16c (fp16 quantization kernels)"
#endif

#include <immintrin.h>

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace hetero::vec {

namespace detail256 {
// mask_table[n] has the low n lanes set (all-ones) and the rest clear.
alignas(32) inline constexpr int kMaskTable[9][8] = {
    {0, 0, 0, 0, 0, 0, 0, 0},
    {-1, 0, 0, 0, 0, 0, 0, 0},
    {-1, -1, 0, 0, 0, 0, 0, 0},
    {-1, -1, -1, 0, 0, 0, 0, 0},
    {-1, -1, -1, -1, 0, 0, 0, 0},
    {-1, -1, -1, -1, -1, 0, 0, 0},
    {-1, -1, -1, -1, -1, -1, 0, 0},
    {-1, -1, -1, -1, -1, -1, -1, 0},
    {-1, -1, -1, -1, -1, -1, -1, -1},
};
inline __m256i mask(std::size_t n) {
  assert(n <= 8);
  return _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kMaskTable[n]));
}
}  // namespace detail256

struct Avx2F {
  static constexpr std::size_t kWidth = 8;
  __m256 v;

  static Avx2F load(const float* p) { return {_mm256_loadu_ps(p)}; }
  static Avx2F load_n(const float* p, std::size_t n) {
    return {_mm256_maskload_ps(p, detail256::mask(n))};
  }
  void store(float* p) const { _mm256_storeu_ps(p, v); }
  void store_n(float* p, std::size_t n) const {
    _mm256_maskstore_ps(p, detail256::mask(n), v);
  }
  static Avx2F broadcast(float x) { return {_mm256_set1_ps(x)}; }
  static Avx2F zero() { return {_mm256_setzero_ps()}; }

  friend Avx2F operator+(Avx2F a, Avx2F b) {
    return {_mm256_add_ps(a.v, b.v)};
  }
  friend Avx2F operator-(Avx2F a, Avx2F b) {
    return {_mm256_sub_ps(a.v, b.v)};
  }
  friend Avx2F operator*(Avx2F a, Avx2F b) {
    return {_mm256_mul_ps(a.v, b.v)};
  }
  /// divps — IEEE correctly rounded, matches the scalar division bit for bit.
  friend Avx2F operator/(Avx2F a, Avx2F b) {
    return {_mm256_div_ps(a.v, b.v)};
  }
  /// sqrtps — IEEE correctly rounded, matches std::sqrt bit for bit.
  static Avx2F sqrt(Avx2F a) { return {_mm256_sqrt_ps(a.v)}; }

  /// max(v, 0): max_ps(0, v) returns v on NaN and -0.0 on -0.0, exactly the
  /// scalar (v < 0) ? 0 : v.
  static Avx2F relu(Avx2F a) {
    return {_mm256_max_ps(_mm256_setzero_ps(), a.v)};
  }
  /// (mask <= 0) ? 0 : g. NLE_UQ is true on mask > 0 and on NaN, matching
  /// the scalar comparison's NaN behavior.
  static Avx2F zero_where_nonpositive(Avx2F mask, Avx2F g) {
    const __m256 keep =
        _mm256_cmp_ps(mask.v, _mm256_setzero_ps(), _CMP_NLE_UQ);
    return {_mm256_and_ps(g.v, keep)};
  }

  // --- Quantization ops. The scalar table spells out these instructions'
  // exact NaN/operand-order semantics; see vec_scalar.h. ---

  /// andps with 0x7FFFFFFF — clears the sign bit.
  static Avx2F abs(Avx2F a) {
    const __m256 m = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
    return {_mm256_and_ps(a.v, m)};
  }
  /// maxps: (a > b) ? a : b — returns b when either operand is NaN.
  static Avx2F max(Avx2F a, Avx2F b) { return {_mm256_max_ps(a.v, b.v)}; }
  /// minps: (a < b) ? a : b — returns b when either operand is NaN.
  static Avx2F min(Avx2F a, Avx2F b) { return {_mm256_min_ps(a.v, b.v)}; }
  /// Number of lanes with |a| > limit (CMP_GT_OQ: false on NaN).
  static std::size_t count_abs_gt(Avx2F a, Avx2F limit) {
    const __m256 cmp = _mm256_cmp_ps(abs(a).v, limit.v, _CMP_GT_OQ);
    return static_cast<std::size_t>(std::popcount(
        static_cast<unsigned>(_mm256_movemask_ps(cmp)) & 0xFFu));
  }

  /// 8 half-precision values widened to float (vcvtph2ps, exact).
  static Avx2F load_half(const std::uint16_t* p) {
    return {_mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)))};
  }
  static Avx2F load_half_n(const std::uint16_t* p, std::size_t n) {
    assert(n <= 8);
    alignas(16) std::uint16_t buf[8] = {};
    std::memcpy(buf, p, n * sizeof(std::uint16_t));
    return {_mm256_cvtph_ps(
        _mm_load_si128(reinterpret_cast<const __m128i*>(buf)))};
  }
  /// vcvtps2ph with round-to-nearest-even.
  void store_half(std::uint16_t* p) const {
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(p),
        _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
  }
  void store_half_n(std::uint16_t* p, std::size_t n) const {
    assert(n <= 8);
    alignas(16) std::uint16_t buf[8];
    _mm_store_si128(
        reinterpret_cast<__m128i*>(buf),
        _mm256_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
    std::memcpy(p, buf, n * sizeof(std::uint16_t));
  }

  /// 8 int8 values widened to float (exact).
  static Avx2F load_i8(const std::int8_t* p) {
    const __m128i b = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
    return {_mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b))};
  }
  static Avx2F load_i8_n(const std::int8_t* p, std::size_t n) {
    assert(n <= 8);
    alignas(16) std::int8_t buf[16] = {};
    std::memcpy(buf, p, n);
    return {_mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(
        _mm_load_si128(reinterpret_cast<const __m128i*>(buf))))};
  }
  /// cvtps2dq (round-to-nearest-even under the default MXCSR mode) then
  /// pack to int8. The caller clamps to [-127, 127], so the saturating
  /// packs are exact.
  void store_i8_rne(std::int8_t* p) const {
    const __m256i i32 = _mm256_cvtps_epi32(v);
    const __m128i lo = _mm256_castsi256_si128(i32);
    const __m128i hi = _mm256_extracti128_si256(i32, 1);
    const __m128i p16 = _mm_packs_epi32(lo, hi);
    const __m128i p8 = _mm_packs_epi16(p16, p16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(p), p8);
  }
  void store_i8_rne_n(std::int8_t* p, std::size_t n) const {
    assert(n <= 8);
    alignas(16) std::int8_t buf[8];
    store_i8_rne(buf);
    std::memcpy(p, buf, n);
  }
};

/// 4-lane float vector (xmm). Only used as Avx2D::NarrowF in the mixed
/// double->float finalize kernels, so it carries just the float arithmetic
/// those need.
struct Sse4F {
  static constexpr std::size_t kWidth = 4;
  __m128 v;

  static Sse4F load(const float* p) { return {_mm_loadu_ps(p)}; }
  void store(float* p) const { _mm_storeu_ps(p, v); }
  static Sse4F broadcast(float x) { return {_mm_set1_ps(x)}; }

  friend Sse4F operator+(Sse4F a, Sse4F b) { return {_mm_add_ps(a.v, b.v)}; }
  friend Sse4F operator-(Sse4F a, Sse4F b) { return {_mm_sub_ps(a.v, b.v)}; }
  friend Sse4F operator*(Sse4F a, Sse4F b) { return {_mm_mul_ps(a.v, b.v)}; }
};

/// 4-lane double vector whose from_float/store_float convert a half ymm of
/// floats. Element-wise double kernels (merge accumulation) use it; the
/// 8-lane virtual-accumulator reductions build their lane pairs from it.
struct Avx2D {
  static constexpr std::size_t kWidth = 4;
  using NarrowF = Sse4F;
  __m256d v;

  static Avx2D load(const double* p) { return {_mm256_loadu_pd(p)}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  static Avx2D broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static Avx2D zero() { return {_mm256_setzero_pd()}; }
  static Avx2D from_float(const float* p) {
    return {_mm256_cvtps_pd(_mm_loadu_ps(p))};
  }
  void store_float(float* p) const { _mm_storeu_ps(p, _mm256_cvtpd_ps(v)); }
  NarrowF to_float() const { return {_mm256_cvtpd_ps(v)}; }

  friend Avx2D operator+(Avx2D a, Avx2D b) {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend Avx2D operator-(Avx2D a, Avx2D b) {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  friend Avx2D operator*(Avx2D a, Avx2D b) {
    return {_mm256_mul_pd(a.v, b.v)};
  }
};

}  // namespace hetero::vec
