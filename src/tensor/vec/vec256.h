// AVX2 Vec wrappers: 8-lane float and 4-lane double over ymm registers.
//
// Only compiled into the avx2/avx512 kernel TUs (CMake adds -mavx2 -mfma
// -ffp-contract=off to exactly those sources). No fused operations are used
// anywhere: bit-identity with the scalar table requires the same two
// roundings per mul+add as the scalar expression, and -ffp-contract=off
// stops GCC from fusing the intrinsic mul/add pairs (they are plain vector
// operators under the hood) on its own.
//
// Tail handling is masked: load_n/store_n use vmaskmov with a mask built
// from a constant table, so element-wise kernels never read or write past
// the span while still running the identical per-element expressions on the
// live lanes.
#pragma once

#if !defined(__AVX2__)
#error "vec256.h requires -mavx2"
#endif

#include <immintrin.h>

#include <cassert>
#include <cstddef>

namespace hetero::vec {

namespace detail256 {
// mask_table[n] has the low n lanes set (all-ones) and the rest clear.
alignas(32) inline constexpr int kMaskTable[9][8] = {
    {0, 0, 0, 0, 0, 0, 0, 0},
    {-1, 0, 0, 0, 0, 0, 0, 0},
    {-1, -1, 0, 0, 0, 0, 0, 0},
    {-1, -1, -1, 0, 0, 0, 0, 0},
    {-1, -1, -1, -1, 0, 0, 0, 0},
    {-1, -1, -1, -1, -1, 0, 0, 0},
    {-1, -1, -1, -1, -1, -1, 0, 0},
    {-1, -1, -1, -1, -1, -1, -1, 0},
    {-1, -1, -1, -1, -1, -1, -1, -1},
};
inline __m256i mask(std::size_t n) {
  assert(n <= 8);
  return _mm256_load_si256(
      reinterpret_cast<const __m256i*>(kMaskTable[n]));
}
}  // namespace detail256

struct Avx2F {
  static constexpr std::size_t kWidth = 8;
  __m256 v;

  static Avx2F load(const float* p) { return {_mm256_loadu_ps(p)}; }
  static Avx2F load_n(const float* p, std::size_t n) {
    return {_mm256_maskload_ps(p, detail256::mask(n))};
  }
  void store(float* p) const { _mm256_storeu_ps(p, v); }
  void store_n(float* p, std::size_t n) const {
    _mm256_maskstore_ps(p, detail256::mask(n), v);
  }
  static Avx2F broadcast(float x) { return {_mm256_set1_ps(x)}; }
  static Avx2F zero() { return {_mm256_setzero_ps()}; }

  friend Avx2F operator+(Avx2F a, Avx2F b) {
    return {_mm256_add_ps(a.v, b.v)};
  }
  friend Avx2F operator-(Avx2F a, Avx2F b) {
    return {_mm256_sub_ps(a.v, b.v)};
  }
  friend Avx2F operator*(Avx2F a, Avx2F b) {
    return {_mm256_mul_ps(a.v, b.v)};
  }

  /// max(v, 0): max_ps(0, v) returns v on NaN and -0.0 on -0.0, exactly the
  /// scalar (v < 0) ? 0 : v.
  static Avx2F relu(Avx2F a) {
    return {_mm256_max_ps(_mm256_setzero_ps(), a.v)};
  }
  /// (mask <= 0) ? 0 : g. NLE_UQ is true on mask > 0 and on NaN, matching
  /// the scalar comparison's NaN behavior.
  static Avx2F zero_where_nonpositive(Avx2F mask, Avx2F g) {
    const __m256 keep =
        _mm256_cmp_ps(mask.v, _mm256_setzero_ps(), _CMP_NLE_UQ);
    return {_mm256_and_ps(g.v, keep)};
  }
};

/// 4-lane float vector (xmm). Only used as Avx2D::NarrowF in the mixed
/// double->float finalize kernels, so it carries just the float arithmetic
/// those need.
struct Sse4F {
  static constexpr std::size_t kWidth = 4;
  __m128 v;

  static Sse4F load(const float* p) { return {_mm_loadu_ps(p)}; }
  void store(float* p) const { _mm_storeu_ps(p, v); }
  static Sse4F broadcast(float x) { return {_mm_set1_ps(x)}; }

  friend Sse4F operator+(Sse4F a, Sse4F b) { return {_mm_add_ps(a.v, b.v)}; }
  friend Sse4F operator-(Sse4F a, Sse4F b) { return {_mm_sub_ps(a.v, b.v)}; }
  friend Sse4F operator*(Sse4F a, Sse4F b) { return {_mm_mul_ps(a.v, b.v)}; }
};

/// 4-lane double vector whose from_float/store_float convert a half ymm of
/// floats. Element-wise double kernels (merge accumulation) use it; the
/// 8-lane virtual-accumulator reductions build their lane pairs from it.
struct Avx2D {
  static constexpr std::size_t kWidth = 4;
  using NarrowF = Sse4F;
  __m256d v;

  static Avx2D load(const double* p) { return {_mm256_loadu_pd(p)}; }
  void store(double* p) const { _mm256_storeu_pd(p, v); }
  static Avx2D broadcast(double x) { return {_mm256_set1_pd(x)}; }
  static Avx2D zero() { return {_mm256_setzero_pd()}; }
  static Avx2D from_float(const float* p) {
    return {_mm256_cvtps_pd(_mm_loadu_ps(p))};
  }
  void store_float(float* p) const { _mm_storeu_ps(p, _mm256_cvtpd_ps(v)); }
  NarrowF to_float() const { return {_mm256_cvtpd_ps(v)}; }

  friend Avx2D operator+(Avx2D a, Avx2D b) {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend Avx2D operator-(Avx2D a, Avx2D b) {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  friend Avx2D operator*(Avx2D a, Avx2D b) {
    return {_mm256_mul_pd(a.v, b.v)};
  }
};

}  // namespace hetero::vec
