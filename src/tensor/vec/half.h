// Software IEEE-754 binary16 <-> binary32 conversion, bit-matching the
// hardware F16C instructions (vcvtps2ph with round-to-nearest-even /
// vcvtph2ps) on every input class: normals, subnormals, signed zero,
// infinity, and NaN (quiet bit forced, payload truncated to the top 10
// mantissa bits — exactly what vcvtps2ph produces).
//
// The scalar kernel table uses these functions directly; the AVX2/AVX-512
// tables use the F16C/AVX-512F conversion instructions. The fp16 kernels'
// cross-ISA bit-identity contract (DESIGN.md §9/§10) therefore rests on
// this file matching the hardware, which tests/test_vec.cpp pins over
// denormals, ±max-range values and fuzzed inputs.
#pragma once

#include <bit>
#include <cstdint>

namespace hetero::vec {

inline std::uint16_t float_to_half(float f) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::uint32_t abs = bits & 0x7FFFFFFFu;
  if (abs >= 0x7F800000u) {  // inf / NaN
    if (abs == 0x7F800000u) return static_cast<std::uint16_t>(sign | 0x7C00u);
    // NaN: keep the top 10 payload bits, force the quiet bit like vcvtps2ph.
    return static_cast<std::uint16_t>(sign | 0x7E00u | ((abs >> 13) & 0x3FFu));
  }
  if (abs >= 0x38800000u) {
    // Normal half range (>= 2^-14 before rounding). Round the 13 dropped
    // mantissa bits to nearest-even by adding the rounding bias; a mantissa
    // overflow carries cleanly into the exponent field.
    const std::uint32_t rounded = abs + 0x00000FFFu + ((abs >> 13) & 1u);
    if (rounded >= 0x47800000u) {  // rounds to >= 2^16 -> infinity
      return static_cast<std::uint16_t>(sign | 0x7C00u);
    }
    return static_cast<std::uint16_t>(sign | ((rounded - 0x38000000u) >> 13));
  }
  if (abs < 0x33000000u) {  // below 2^-25: underflows to signed zero
    return static_cast<std::uint16_t>(sign);
  }
  // Subnormal half (or a value that rounds up to the smallest normal). The
  // result unit is 2^-24; shift the 24-bit significand down with
  // round-to-nearest-even on the remainder. exp >= 102 here, so shift <= 24.
  const std::uint32_t exp = abs >> 23;
  const std::uint32_t mant = (abs & 0x7FFFFFu) | 0x800000u;
  const std::uint32_t shift = 126u - exp;
  const std::uint32_t q = mant >> shift;
  const std::uint32_t rem = mant & ((1u << shift) - 1u);
  const std::uint32_t half_ulp = 1u << (shift - 1u);
  std::uint32_t h = q;
  if (rem > half_ulp || (rem == half_ulp && (q & 1u) != 0)) ++h;
  // h == 1024 overflows the 10-bit field into exponent 1 — the smallest
  // normal half, which is exactly the right bit pattern.
  return static_cast<std::uint16_t>(sign | h);
}

inline float half_to_float(std::uint16_t h) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1Fu;
  const std::uint32_t mant = h & 0x3FFu;
  std::uint32_t bits;
  if (exp == 0x1Fu) {  // inf / NaN (payload shifts up, like vcvtph2ps)
    bits = sign | 0x7F800000u | (mant << 13);
  } else if (exp != 0) {  // normal
    bits = sign | ((exp + 112u) << 23) | (mant << 13);
  } else if (mant != 0) {  // subnormal: value = mant * 2^-24, renormalize
    const int p = 31 - std::countl_zero(mant);  // highest set bit, 0..9
    bits = sign | (static_cast<std::uint32_t>(103 + p) << 23) |
           ((mant << (23 - p)) & 0x7FFFFFu);
  } else {  // signed zero
    bits = sign;
  }
  return std::bit_cast<float>(bits);
}

}  // namespace hetero::vec
