// SIMD-vectorized kernel backend with runtime ISA dispatch.
//
// In the style of ATen's cpu/vec headers: fixed-width Vec wrappers over
// scalar / AVX2+FMA / AVX-512 (vec_scalar.h, vec256.h, vec512.h), generic
// kernel bodies (vec_impl.h) instantiated once per ISA in separate
// translation units compiled with the matching -m flags, and a function
// table selected once at startup. The binary always runs on baseline
// x86-64: nothing outside the per-ISA TUs is compiled with AVX flags, and
// the dispatcher only installs a table the host CPU supports.
//
// Determinism contract (pinned by tests/test_vec.cpp): every kernel in the
// table produces bit-identical output on every ISA.
//  * Element-wise kernels (axpy, axpby, scale, relu, merge accumulation,
//    ...) evaluate the exact same unfused expression per element; lane
//    width only changes how many elements are processed per instruction,
//    never the per-element operation order. The per-ISA TUs are compiled
//    with -ffp-contract=off so the compiler cannot fuse the mul+add pairs
//    into FMAs (which round once instead of twice) behind our back.
//  * Reductions (dot_f32, dot_f64, sum_squares) accumulate into a fixed
//    8-lane virtual accumulator — element p always lands in lane p mod 8,
//    on every ISA — and the lanes are combined with one fixed reduction
//    tree: t_i = l_i + l_{i+4}, u_0 = t_0 + t_2, u_1 = t_1 + t_3,
//    total = u_0 + u_1. The scalar table keeps 8 named accumulators; AVX2
//    uses one 8-float ymm (or two 4-double ymm); AVX-512 deliberately
//    sticks to the same 8-lane shape (256-bit accumulators for float,
//    one 8-double zmm) so the sums match AVX2 and scalar bit for bit.
//
// ISA selection order: HETERO_ISA environment variable (scalar|avx2|avx512)
// if set, else the best ISA both compiled in and reported by cpuid.
// `--isa` on the CLI binaries calls set_isa() before any kernel runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace hetero::vec {

enum class Isa { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Display / flag name: "scalar", "avx2", "avx512".
const char* isa_name(Isa isa);

/// Parses a flag/env value; nullopt on anything but the three names.
std::optional<Isa> parse_isa(const std::string& text);

/// True when `isa` is both compiled into this binary and supported by the
/// host CPU (cpuid). kScalar is always supported.
bool isa_supported(Isa isa);

/// Best supported ISA on this host (avx512 > avx2 > scalar).
Isa best_supported_isa();

/// Per-element constants of one fused Adam/AdamW update call (see the
/// adam_update table entry for the exact expression). bias1/bias2 are the
/// 1/(1 - beta^t) corrections for the step the touched row is on — the lazy
/// sparse path passes a different t per row, the dense path one t per call.
struct AdamParams {
  float lr = 0.0f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float bias1 = 1.0f;         // 1 / (1 - beta1^t)
  float bias2 = 1.0f;         // 1 / (1 - beta2^t)
  float weight_decay = 0.0f;  // coupled L2 folded into the gradient (Adam)
  float keep = 1.0f;          // decoupled multiplicative decay (AdamW)
};

/// Per-element constants of one Adagrad update call.
struct AdagradParams {
  float lr = 0.0f;
  float eps = 1e-10f;
  float weight_decay = 0.0f;  // coupled L2 folded into the gradient
};

/// The per-ISA kernel table. Every pointer is non-null in every table.
/// Sizes are element counts; all pointers may alias only as documented at
/// the call sites (no kernel reads an output span it has already written
/// within one call).
struct VecKernels {
  Isa isa;

  // y[i] += a * x[i]
  void (*axpy)(float a, const float* x, float* y, std::size_t n);
  // y[i] = a * x[i] + b * y[i]
  void (*axpby)(float a, const float* x, float b, float* y, std::size_t n);
  // x[i] *= a
  void (*scale)(float* x, float a, std::size_t n);
  // y[i] += x[i]
  void (*add)(const float* x, float* y, std::size_t n);
  // x[i] = max(x[i], 0) with the scalar std::max(v, 0.0f) NaN/-0 semantics
  void (*relu)(float* x, std::size_t n);
  // g[i] = (a[i] <= 0) ? 0 : g[i]   (NaN activations keep their gradient)
  void (*relu_backward)(const float* a, float* g, std::size_t n);
  // global[i] = merged[i] + gamma * (global[i] - prev[i]); prev[i] = old
  // global[i]  (the Algorithm-2 momentum step of momentum_global_update)
  void (*momentum_update)(const float* merged, float* global, float* prev,
                          float gamma, std::size_t n);

  // Fixed 8-virtual-lane reductions (see the determinism contract above).
  float (*dot_f32)(const float* a, const float* b, std::size_t n);
  double (*dot_f64)(const float* a, const float* b, std::size_t n);
  double (*sum_squares)(const float* x, std::size_t n);

  // Fused-merge building blocks over a double accumulator block
  // (core/merging.cpp, comm/allreduce.cpp). Element-wise in double.
  // acc[i] = w * x[i]
  void (*merge_init)(double* acc, const float* x, double w, std::size_t n);
  // acc[i] += w * x[i]
  void (*merge_accum)(double* acc, const float* x, double w, std::size_t n);
  // x[i] = float(acc[i])
  void (*merge_store)(const double* acc, float* x, std::size_t n);
  // w = g[i]; g[i] = float(acc[i]) + gamma * (w - p[i]); p[i] = w
  void (*merge_finalize_momentum)(const double* acc, float* g, float* p,
                                  float gamma, std::size_t n);
  // p[i] = g[i]; g[i] = float(acc[i])
  void (*merge_finalize_plain)(const double* acc, float* g, float* p,
                               std::size_t n);

  // Merge-payload quantization kernels (DESIGN.md §10). The dequantized
  // value is always the single-rounded float `code * scale`; the fused
  // merge accumulators widen that exact float to double, so all ISAs agree
  // bit for bit.
  // r[i] = (w[i] - g[i]) + r[i]  (error-feedback delta accumulation)
  void (*ef_delta)(const float* w, const float* g, float* r, std::size_t n);
  // max over |x[i]| (0 when n == 0); fixed 8-virtual-lane + fixed tree with
  // the maxps expression (m > a) ? m : a at every site
  float (*absmax)(const float* x, std::size_t n);
  // q[i] = half(x[i] * scale) RNE; returns count of |x[i] * scale| > 65504
  // (fp16 overflow — feeds the dynamic loss-scale guard)
  std::size_t (*quant_fp16)(const float* x, std::uint16_t* q, float scale,
                            std::size_t n);
  // x[i] = float(q[i]) * inv_scale
  void (*dequant_fp16)(const std::uint16_t* q, float* x, float inv_scale,
                       std::size_t n);
  // r[i] -= float(q[i]) * inv_scale
  void (*residual_fp16)(const std::uint16_t* q, float inv_scale, float* r,
                        std::size_t n);
  // acc[i] += w * double(float(q[i]) * inv_scale)
  void (*merge_accum_fp16)(double* acc, const std::uint16_t* q, double w,
                           float inv_scale, std::size_t n);
  // q[i] = rne(clamp(x[i] * scale, -127, 127)); NaN products land on +127
  void (*quant_i8)(const float* x, std::int8_t* q, float scale,
                   std::size_t n);
  // x[i] = float(q[i]) * scale
  void (*dequant_i8)(const std::int8_t* q, float* x, float scale,
                     std::size_t n);
  // r[i] -= float(q[i]) * scale
  void (*residual_i8)(const std::int8_t* q, float scale, float* r,
                      std::size_t n);
  // acc[i] += w * double(float(q[i]) * scale)
  void (*merge_accum_i8)(double* acc, const std::int8_t* q, double w,
                         float scale, std::size_t n);

  // Optimizer update kernels (nn/optimizer.*, DESIGN.md §11). Element-wise
  // with sqrtps/divps — both IEEE correctly rounded, so every ISA produces
  // the same bits. One fused kernel covers Adam (coupled L2 via
  // weight_decay, keep = 1) and AdamW (weight_decay = 0, decoupled
  // keep = 1 - lr*wd); bias corrections arrive precomputed per row step.
  //   g' = g[i] + weight_decay * w[i]
  //   m[i] = beta1 * m[i] + (1 - beta1) * g'
  //   v[i] = beta2 * v[i] + (1 - beta2) * (g' * g')
  //   w[i] = keep * w[i] - lr * ((m[i] * bias1) / (sqrt(v[i] * bias2) + eps))
  void (*adam_update)(float* w, const float* g, float* m, float* v,
                      const AdamParams& p, std::size_t n);
  //   g' = g[i] + weight_decay * w[i]
  //   a[i] = a[i] + g' * g'
  //   w[i] = w[i] - lr * (g' / (sqrt(a[i]) + eps))
  void (*adagrad_update)(float* w, const float* g, float* a,
                         const AdagradParams& p, std::size_t n);
};

/// The active table. First use resolves HETERO_ISA (throwing
/// hetero::ParseError on an unknown or unsupported value) and falls back to
/// best_supported_isa(). Cheap enough to call per kernel invocation; hot
/// loops should still hoist the reference out of their inner loops.
const VecKernels& kernels();

/// Table for a specific ISA, or nullptr when unsupported on this host.
/// Used by tests/benches to compare ISAs side by side without touching the
/// global dispatch state.
const VecKernels* kernels_for(Isa isa);

/// Currently active ISA.
Isa active_isa();

/// Forces the active ISA (the `--isa` flag). Throws hetero::ParseError when
/// the ISA is not compiled in or not supported by the host CPU.
void set_isa(Isa isa);

/// Parses and applies an ISA name; throws hetero::ParseError on an unknown
/// name or unsupported ISA. Empty string is a no-op (flag not given).
void set_isa_from_string(const std::string& name);

}  // namespace hetero::vec
