// Scalar kernel table: the reference lanes every SIMD table must bit-match.
// Compiled with -ffp-contract=off like the SIMD TUs so the compiler cannot
// fuse the mul+add pairs on targets where that would change rounding.
#include "tensor/vec/vec_impl.h"
#include "tensor/vec/vec_scalar.h"

namespace hetero::vec::detail {

VecKernels make_scalar_table() {
  return impl::make_table<ScalarF, ScalarD, ScalarF>(Isa::kScalar);
}

}  // namespace hetero::vec::detail
