// Generic kernel bodies for the vec backend, templated over the Vec wrapper
// types (vec_scalar.h / vec256.h / vec512.h) and instantiated once per ISA
// translation unit via make_table<>.
//
// Every body evaluates the exact per-element expression of the scalar code
// it replaces (see the call sites in tensor/ops.cpp, sparse/ops.cpp,
// core/merging.cpp) — no fused multiply-adds, no reassociation. The
// reductions follow the fixed 8-virtual-lane contract documented in vec.h:
// element p lands in lane p mod 8 on every ISA, the main loop consumes 8
// elements per iteration, the tail element at offset t past the last full
// virtual row therefore lands in lane t, and the lanes are combined with
// one fixed tree.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "tensor/vec/vec.h"

namespace hetero::vec::impl {

// ---------------------------------------------------------------------------
// Element-wise float kernels over VF. Lane width only changes how many
// elements one iteration touches, never the per-element expression.
// ---------------------------------------------------------------------------

// y[i] += a * x[i]
template <class VF>
void axpy(float a, const float* x, float* y, std::size_t n) {
  constexpr std::size_t W = VF::kWidth;
  const VF av = VF::broadcast(a);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    (VF::load(y + i) + av * VF::load(x + i)).store(y + i);
  }
  if (const std::size_t r = n - i) {
    (VF::load_n(y + i, r) + av * VF::load_n(x + i, r)).store_n(y + i, r);
  }
}

// y[i] = a * x[i] + b * y[i]
template <class VF>
void axpby(float a, const float* x, float b, float* y, std::size_t n) {
  constexpr std::size_t W = VF::kWidth;
  const VF av = VF::broadcast(a);
  const VF bv = VF::broadcast(b);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    (av * VF::load(x + i) + bv * VF::load(y + i)).store(y + i);
  }
  if (const std::size_t r = n - i) {
    (av * VF::load_n(x + i, r) + bv * VF::load_n(y + i, r)).store_n(y + i, r);
  }
}

// x[i] *= a
template <class VF>
void scale(float* x, float a, std::size_t n) {
  constexpr std::size_t W = VF::kWidth;
  const VF av = VF::broadcast(a);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    (VF::load(x + i) * av).store(x + i);
  }
  if (const std::size_t r = n - i) {
    (VF::load_n(x + i, r) * av).store_n(x + i, r);
  }
}

// y[i] += x[i]
template <class VF>
void add(const float* x, float* y, std::size_t n) {
  constexpr std::size_t W = VF::kWidth;
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    (VF::load(y + i) + VF::load(x + i)).store(y + i);
  }
  if (const std::size_t r = n - i) {
    (VF::load_n(y + i, r) + VF::load_n(x + i, r)).store_n(y + i, r);
  }
}

// x[i] = max(x[i], 0) with std::max's NaN/-0 semantics
template <class VF>
void relu(float* x, std::size_t n) {
  constexpr std::size_t W = VF::kWidth;
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    VF::relu(VF::load(x + i)).store(x + i);
  }
  if (const std::size_t r = n - i) {
    VF::relu(VF::load_n(x + i, r)).store_n(x + i, r);
  }
}

// g[i] = (a[i] <= 0) ? 0 : g[i]
template <class VF>
void relu_backward(const float* a, float* g, std::size_t n) {
  constexpr std::size_t W = VF::kWidth;
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    VF::zero_where_nonpositive(VF::load(a + i), VF::load(g + i))
        .store(g + i);
  }
  if (const std::size_t r = n - i) {
    VF::zero_where_nonpositive(VF::load_n(a + i, r), VF::load_n(g + i, r))
        .store_n(g + i, r);
  }
}

// w = global[i]; global[i] = merged[i] + gamma * (w - prev[i]); prev[i] = w
template <class VF>
void momentum_update(const float* merged, float* global, float* prev,
                     float gamma, std::size_t n) {
  constexpr std::size_t W = VF::kWidth;
  const VF gv = VF::broadcast(gamma);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    const VF w = VF::load(global + i);
    (VF::load(merged + i) + gv * (w - VF::load(prev + i))).store(global + i);
    w.store(prev + i);
  }
  if (const std::size_t r = n - i) {
    const VF w = VF::load_n(global + i, r);
    (VF::load_n(merged + i, r) + gv * (w - VF::load_n(prev + i, r)))
        .store_n(global + i, r);
    w.store_n(prev + i, r);
  }
}

// ---------------------------------------------------------------------------
// Fixed 8-virtual-lane reductions. RF/VD must satisfy kWidth <= 8 and
// 8 % kWidth == 0 so the 8-lane accumulator splits evenly across registers:
// scalar keeps 8 one-lane accumulators, AVX2 one 8-float ymm (or two
// 4-double ymm), AVX-512 reuses the AVX2 float shape and one 8-double zmm.
// ---------------------------------------------------------------------------

inline float reduce_tree8(const float* l) {
  const float t0 = l[0] + l[4];
  const float t1 = l[1] + l[5];
  const float t2 = l[2] + l[6];
  const float t3 = l[3] + l[7];
  const float u0 = t0 + t2;
  const float u1 = t1 + t3;
  return u0 + u1;
}

inline double reduce_tree8d(const double* l) {
  const double t0 = l[0] + l[4];
  const double t1 = l[1] + l[5];
  const double t2 = l[2] + l[6];
  const double t3 = l[3] + l[7];
  const double u0 = t0 + t2;
  const double u1 = t1 + t3;
  return u0 + u1;
}

// sum_p a[p] * b[p] in float (gemm_a_bt inner product).
template <class RF>
float dot_f32(const float* a, const float* b, std::size_t n) {
  constexpr std::size_t W = RF::kWidth;
  static_assert(W <= 8 && 8 % W == 0, "reduction lanes must tile 8");
  constexpr std::size_t kAcc = 8 / W;
  RF acc[kAcc];
  for (auto& v : acc) v = RF::zero();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (std::size_t k = 0; k < kAcc; ++k) {
      acc[k] = acc[k] + RF::load(a + i + k * W) * RF::load(b + i + k * W);
    }
  }
  alignas(32) float lanes[8];
  for (std::size_t k = 0; k < kAcc; ++k) acc[k].store(lanes + k * W);
  // The main loop consumed a multiple of 8, so tail element t belongs to
  // lane t — same accumulation expression, scalar this time.
  for (std::size_t l = 0; i < n; ++i, ++l) {
    lanes[l] = lanes[l] + a[i] * b[i];
  }
  return reduce_tree8(lanes);
}

// sum_p double(a[p]) * b[p] (tensor::dot).
template <class VD>
double dot_f64(const float* a, const float* b, std::size_t n) {
  constexpr std::size_t W = VD::kWidth;
  static_assert(W <= 8 && 8 % W == 0, "reduction lanes must tile 8");
  constexpr std::size_t kAcc = 8 / W;
  VD acc[kAcc];
  for (auto& v : acc) v = VD::zero();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (std::size_t k = 0; k < kAcc; ++k) {
      acc[k] = acc[k] +
               VD::from_float(a + i + k * W) * VD::from_float(b + i + k * W);
    }
  }
  alignas(64) double lanes[8];
  for (std::size_t k = 0; k < kAcc; ++k) acc[k].store(lanes + k * W);
  for (std::size_t l = 0; i < n; ++i, ++l) {
    lanes[l] = lanes[l] + static_cast<double>(a[i]) * b[i];
  }
  return reduce_tree8d(lanes);
}

// sum_p double(x[p]) * x[p] (tensor::sum_of_squares).
template <class VD>
double sum_squares(const float* x, std::size_t n) {
  constexpr std::size_t W = VD::kWidth;
  static_assert(W <= 8 && 8 % W == 0, "reduction lanes must tile 8");
  constexpr std::size_t kAcc = 8 / W;
  VD acc[kAcc];
  for (auto& v : acc) v = VD::zero();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (std::size_t k = 0; k < kAcc; ++k) {
      const VD v = VD::from_float(x + i + k * W);
      acc[k] = acc[k] + v * v;
    }
  }
  alignas(64) double lanes[8];
  for (std::size_t k = 0; k < kAcc; ++k) acc[k].store(lanes + k * W);
  for (std::size_t l = 0; i < n; ++i, ++l) {
    lanes[l] = lanes[l] + static_cast<double>(x[i]) * x[i];
  }
  return reduce_tree8d(lanes);
}

// ---------------------------------------------------------------------------
// Fused-merge building blocks over a double accumulator block. Element-wise
// in double, scalar tails (the accumulator blocks are at most 512 elements,
// so the tail is cold). The finalize kernels narrow through VD::NarrowF —
// a float type of the same lane count.
// ---------------------------------------------------------------------------

// acc[i] = w * x[i]
template <class VD>
void merge_init(double* acc, const float* x, double w, std::size_t n) {
  constexpr std::size_t W = VD::kWidth;
  const VD wv = VD::broadcast(w);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    (wv * VD::from_float(x + i)).store(acc + i);
  }
  for (; i < n; ++i) acc[i] = w * x[i];
}

// acc[i] += w * x[i]
template <class VD>
void merge_accum(double* acc, const float* x, double w, std::size_t n) {
  constexpr std::size_t W = VD::kWidth;
  const VD wv = VD::broadcast(w);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    (VD::load(acc + i) + wv * VD::from_float(x + i)).store(acc + i);
  }
  for (; i < n; ++i) acc[i] = acc[i] + w * x[i];
}

// x[i] = float(acc[i])
template <class VD>
void merge_store(const double* acc, float* x, std::size_t n) {
  constexpr std::size_t W = VD::kWidth;
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    VD::load(acc + i).store_float(x + i);
  }
  for (; i < n; ++i) x[i] = static_cast<float>(acc[i]);
}

// w = g[i]; g[i] = float(acc[i]) + gamma * (w - p[i]); p[i] = w
template <class VD>
void merge_finalize_momentum(const double* acc, float* g, float* p,
                             float gamma, std::size_t n) {
  using NF = typename VD::NarrowF;
  constexpr std::size_t W = VD::kWidth;
  static_assert(NF::kWidth == W, "NarrowF must match the double lane count");
  const NF gv = NF::broadcast(gamma);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    const NF af = VD::load(acc + i).to_float();
    const NF w = NF::load(g + i);
    (af + gv * (w - NF::load(p + i))).store(g + i);
    w.store(p + i);
  }
  for (; i < n; ++i) {
    const float w = g[i];
    g[i] = static_cast<float>(acc[i]) + gamma * (w - p[i]);
    p[i] = w;
  }
}

// p[i] = g[i]; g[i] = float(acc[i])
template <class VD>
void merge_finalize_plain(const double* acc, float* g, float* p,
                          std::size_t n) {
  using NF = typename VD::NarrowF;
  constexpr std::size_t W = VD::kWidth;
  static_assert(NF::kWidth == W, "NarrowF must match the double lane count");
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    NF::load(g + i).store(p + i);
    VD::load(acc + i).to_float().store(g + i);
  }
  for (; i < n; ++i) {
    p[i] = g[i];
    g[i] = static_cast<float>(acc[i]);
  }
}

// ---------------------------------------------------------------------------
// Quantization kernels (DESIGN.md §10). Element-wise over VF with the same
// width-agnostic discipline as above; the dequantized value is always the
// single-rounded float `code * scale`, and the merge accumulators widen that
// float to double exactly — so every ISA sees the same per-element bits.
// ---------------------------------------------------------------------------

// r[i] = (w[i] - g[i]) + r[i]  (error-feedback delta: replica minus global
// plus the carried residual, in exactly this association)
template <class VF>
void ef_delta(const float* w, const float* g, float* r, std::size_t n) {
  constexpr std::size_t W = VF::kWidth;
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    ((VF::load(w + i) - VF::load(g + i)) + VF::load(r + i)).store(r + i);
  }
  if (const std::size_t r_n = n - i) {
    ((VF::load_n(w + i, r_n) - VF::load_n(g + i, r_n)) +
     VF::load_n(r + i, r_n))
        .store_n(r + i, r_n);
  }
}

// max over |x[i]|; 0 when n == 0. Fixed 8-virtual-lane accumulator like the
// sum reductions, combined with the same fixed tree — but using the maxps
// expression (m > a) ? m : a at every site, so all ISAs agree bit for bit.
template <class RF>
float absmax(const float* x, std::size_t n) {
  constexpr std::size_t W = RF::kWidth;
  static_assert(W <= 8 && 8 % W == 0, "reduction lanes must tile 8");
  constexpr std::size_t kAcc = 8 / W;
  RF acc[kAcc];
  for (auto& v : acc) v = RF::zero();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (std::size_t k = 0; k < kAcc; ++k) {
      acc[k] = RF::max(acc[k], RF::abs(RF::load(x + i + k * W)));
    }
  }
  alignas(32) float lanes[8];
  for (std::size_t k = 0; k < kAcc; ++k) acc[k].store(lanes + k * W);
  for (std::size_t l = 0; i < n; ++i, ++l) {
    const float a = std::fabs(x[i]);
    lanes[l] = lanes[l] > a ? lanes[l] : a;
  }
  const float t0 = lanes[0] > lanes[4] ? lanes[0] : lanes[4];
  const float t1 = lanes[1] > lanes[5] ? lanes[1] : lanes[5];
  const float t2 = lanes[2] > lanes[6] ? lanes[2] : lanes[6];
  const float t3 = lanes[3] > lanes[7] ? lanes[3] : lanes[7];
  const float u0 = t0 > t2 ? t0 : t2;
  const float u1 = t1 > t3 ? t1 : t3;
  return u0 > u1 ? u0 : u1;
}

// q[i] = half(x[i] * scale), round-to-nearest-even; returns the number of
// elements with |x[i] * scale| > 65504 (the fp16 overflow count driving the
// dynamic loss-scale guard). Dead tail lanes are zero-filled and can never
// exceed the limit.
template <class VF>
std::size_t quant_fp16(const float* x, std::uint16_t* q, float scale,
                       std::size_t n) {
  constexpr std::size_t W = VF::kWidth;
  const VF sv = VF::broadcast(scale);
  const VF lim = VF::broadcast(65504.0f);
  std::size_t over = 0;
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    const VF v = VF::load(x + i) * sv;
    over += VF::count_abs_gt(v, lim);
    v.store_half(q + i);
  }
  if (const std::size_t r = n - i) {
    const VF v = VF::load_n(x + i, r) * sv;
    over += VF::count_abs_gt(v, lim);
    v.store_half_n(q + i, r);
  }
  return over;
}

// x[i] = float(q[i]) * inv_scale  (the canonical dequantized value: one
// float multiply, single rounding)
template <class VF>
void dequant_fp16(const std::uint16_t* q, float* x, float inv_scale,
                  std::size_t n) {
  constexpr std::size_t W = VF::kWidth;
  const VF sv = VF::broadcast(inv_scale);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    (VF::load_half(q + i) * sv).store(x + i);
  }
  if (const std::size_t r = n - i) {
    (VF::load_half_n(q + i, r) * sv).store_n(x + i, r);
  }
}

// r[i] = r[i] - float(q[i]) * inv_scale  (subtract what the receivers will
// reconstruct; the leftovers carry to the next merge)
template <class VF>
void residual_fp16(const std::uint16_t* q, float inv_scale, float* r,
                   std::size_t n) {
  constexpr std::size_t W = VF::kWidth;
  const VF sv = VF::broadcast(inv_scale);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    (VF::load(r + i) - VF::load_half(q + i) * sv).store(r + i);
  }
  if (const std::size_t r_n = n - i) {
    (VF::load_n(r + i, r_n) - VF::load_half_n(q + i, r_n) * sv)
        .store_n(r + i, r_n);
  }
}

// acc[i] += w * double(float(q[i]) * inv_scale)  (fused dequantize +
// weighted accumulate into the merge's double block)
template <class VF, class VD>
void merge_accum_fp16(double* acc, const std::uint16_t* q, double w,
                      float inv_scale, std::size_t n) {
  constexpr std::size_t WF = VF::kWidth;
  constexpr std::size_t WD = VD::kWidth;
  static_assert(WF % WD == 0, "float width must tile the double width");
  const VF sv = VF::broadcast(inv_scale);
  const VD wv = VD::broadcast(w);
  alignas(64) float tmp[WF];
  std::size_t i = 0;
  for (; i + WF <= n; i += WF) {
    (VF::load_half(q + i) * sv).store(tmp);
    for (std::size_t k = 0; k < WF / WD; ++k) {
      (VD::load(acc + i + k * WD) + wv * VD::from_float(tmp + k * WD))
          .store(acc + i + k * WD);
    }
  }
  if (const std::size_t r = n - i) {
    (VF::load_half_n(q + i, r) * sv).store(tmp);
    for (std::size_t k = 0; k < r; ++k) {
      acc[i + k] = acc[i + k] + w * static_cast<double>(tmp[k]);
    }
  }
}

// q[i] = rne(clamp(x[i] * scale, -127, 127)). The clamp is written as
// minps-then-maxps so a NaN product deterministically lands on +127 on
// every ISA, and the float->int conversion is round-to-nearest-even
// (cvtps2dq under the default MXCSR mode / std::nearbyintf).
template <class VF>
void quant_i8(const float* x, std::int8_t* q, float scale, std::size_t n) {
  constexpr std::size_t W = VF::kWidth;
  const VF sv = VF::broadcast(scale);
  const VF hi = VF::broadcast(127.0f);
  const VF lo = VF::broadcast(-127.0f);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    VF::max(VF::min(VF::load(x + i) * sv, hi), lo).store_i8_rne(q + i);
  }
  if (const std::size_t r = n - i) {
    VF::max(VF::min(VF::load_n(x + i, r) * sv, hi), lo)
        .store_i8_rne_n(q + i, r);
  }
}

// x[i] = float(q[i]) * scale
template <class VF>
void dequant_i8(const std::int8_t* q, float* x, float scale, std::size_t n) {
  constexpr std::size_t W = VF::kWidth;
  const VF sv = VF::broadcast(scale);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    (VF::load_i8(q + i) * sv).store(x + i);
  }
  if (const std::size_t r = n - i) {
    (VF::load_i8_n(q + i, r) * sv).store_n(x + i, r);
  }
}

// r[i] = r[i] - float(q[i]) * scale
template <class VF>
void residual_i8(const std::int8_t* q, float scale, float* r,
                 std::size_t n) {
  constexpr std::size_t W = VF::kWidth;
  const VF sv = VF::broadcast(scale);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    (VF::load(r + i) - VF::load_i8(q + i) * sv).store(r + i);
  }
  if (const std::size_t r_n = n - i) {
    (VF::load_n(r + i, r_n) - VF::load_i8_n(q + i, r_n) * sv)
        .store_n(r + i, r_n);
  }
}

// acc[i] += w * double(float(q[i]) * scale)
template <class VF, class VD>
void merge_accum_i8(double* acc, const std::int8_t* q, double w, float scale,
                    std::size_t n) {
  constexpr std::size_t WF = VF::kWidth;
  constexpr std::size_t WD = VD::kWidth;
  static_assert(WF % WD == 0, "float width must tile the double width");
  const VF sv = VF::broadcast(scale);
  const VD wv = VD::broadcast(w);
  alignas(64) float tmp[WF];
  std::size_t i = 0;
  for (; i + WF <= n; i += WF) {
    (VF::load_i8(q + i) * sv).store(tmp);
    for (std::size_t k = 0; k < WF / WD; ++k) {
      (VD::load(acc + i + k * WD) + wv * VD::from_float(tmp + k * WD))
          .store(acc + i + k * WD);
    }
  }
  if (const std::size_t r = n - i) {
    (VF::load_i8_n(q + i, r) * sv).store(tmp);
    for (std::size_t k = 0; k < r; ++k) {
      acc[i + k] = acc[i + k] + w * static_cast<double>(tmp[k]);
    }
  }
}

// ---------------------------------------------------------------------------
// Optimizer update kernels (DESIGN.md §11). Element-wise over VF; the only
// non-arithmetic primitives are sqrt and division, both IEEE correctly
// rounded on every ISA (sqrtss/sqrtps, divss/divps), so the per-element
// bits match across tables just like the mul/add kernels above.
// ---------------------------------------------------------------------------

// Fused Adam/AdamW step (see vec.h for the exact per-element expression).
template <class VF>
void adam_update(float* w, const float* g, float* m, float* v,
                 const AdamParams& p, std::size_t n) {
  constexpr std::size_t W = VF::kWidth;
  const VF lr = VF::broadcast(p.lr);
  const VF b1 = VF::broadcast(p.beta1);
  const VF c1 = VF::broadcast(1.0f - p.beta1);
  const VF b2 = VF::broadcast(p.beta2);
  const VF c2 = VF::broadcast(1.0f - p.beta2);
  const VF eps = VF::broadcast(p.eps);
  const VF bc1 = VF::broadcast(p.bias1);
  const VF bc2 = VF::broadcast(p.bias2);
  const VF wd = VF::broadcast(p.weight_decay);
  const VF keep = VF::broadcast(p.keep);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    const VF wv = VF::load(w + i);
    const VF gv = VF::load(g + i) + wd * wv;
    const VF mv = b1 * VF::load(m + i) + c1 * gv;
    const VF vv = b2 * VF::load(v + i) + c2 * (gv * gv);
    mv.store(m + i);
    vv.store(v + i);
    (keep * wv - lr * ((mv * bc1) / (VF::sqrt(vv * bc2) + eps)))
        .store(w + i);
  }
  if (const std::size_t r = n - i) {
    const VF wv = VF::load_n(w + i, r);
    const VF gv = VF::load_n(g + i, r) + wd * wv;
    const VF mv = b1 * VF::load_n(m + i, r) + c1 * gv;
    const VF vv = b2 * VF::load_n(v + i, r) + c2 * (gv * gv);
    mv.store_n(m + i, r);
    vv.store_n(v + i, r);
    (keep * wv - lr * ((mv * bc1) / (VF::sqrt(vv * bc2) + eps)))
        .store_n(w + i, r);
  }
}

// Adagrad step (see vec.h for the exact per-element expression).
template <class VF>
void adagrad_update(float* w, const float* g, float* a,
                    const AdagradParams& p, std::size_t n) {
  constexpr std::size_t W = VF::kWidth;
  const VF lr = VF::broadcast(p.lr);
  const VF eps = VF::broadcast(p.eps);
  const VF wd = VF::broadcast(p.weight_decay);
  std::size_t i = 0;
  for (; i + W <= n; i += W) {
    const VF wv = VF::load(w + i);
    const VF gv = VF::load(g + i) + wd * wv;
    const VF av = VF::load(a + i) + gv * gv;
    av.store(a + i);
    (wv - lr * (gv / (VF::sqrt(av) + eps))).store(w + i);
  }
  if (const std::size_t r = n - i) {
    const VF wv = VF::load_n(w + i, r);
    const VF gv = VF::load_n(g + i, r) + wd * wv;
    const VF av = VF::load_n(a + i, r) + gv * gv;
    av.store_n(a + i, r);
    (wv - lr * (gv / (VF::sqrt(av) + eps))).store_n(w + i, r);
  }
}

// ---------------------------------------------------------------------------
// Table assembly. VF: element-wise float type. VD: double type (also used
// for the double reductions). RF: float reduction type — the avx512 table
// passes the 8-lane AVX2 type here to honor the 8-virtual-lane contract.
// ---------------------------------------------------------------------------

template <class VF, class VD, class RF>
VecKernels make_table(Isa isa) {
  VecKernels t{};
  t.isa = isa;
  t.axpy = &axpy<VF>;
  t.axpby = &axpby<VF>;
  t.scale = &scale<VF>;
  t.add = &add<VF>;
  t.relu = &relu<VF>;
  t.relu_backward = &relu_backward<VF>;
  t.momentum_update = &momentum_update<VF>;
  t.dot_f32 = &dot_f32<RF>;
  t.dot_f64 = &dot_f64<VD>;
  t.sum_squares = &sum_squares<VD>;
  t.merge_init = &merge_init<VD>;
  t.merge_accum = &merge_accum<VD>;
  t.merge_store = &merge_store<VD>;
  t.merge_finalize_momentum = &merge_finalize_momentum<VD>;
  t.merge_finalize_plain = &merge_finalize_plain<VD>;
  t.ef_delta = &ef_delta<VF>;
  t.absmax = &absmax<RF>;
  t.quant_fp16 = &quant_fp16<VF>;
  t.dequant_fp16 = &dequant_fp16<VF>;
  t.residual_fp16 = &residual_fp16<VF>;
  t.merge_accum_fp16 = &merge_accum_fp16<VF, VD>;
  t.quant_i8 = &quant_i8<VF>;
  t.dequant_i8 = &dequant_i8<VF>;
  t.residual_i8 = &residual_i8<VF>;
  t.merge_accum_i8 = &merge_accum_i8<VF, VD>;
  t.adam_update = &adam_update<VF>;
  t.adagrad_update = &adagrad_update<VF>;
  return t;
}

}  // namespace hetero::vec::impl
