// AVX-512F Vec wrappers: 16-lane float and 8-lane double over zmm
// registers, with native mask registers for the tails.
//
// Only compiled into the avx512 kernel TU (-mavx512f -mavx2 -mfma
// -ffp-contract=off). Same no-FMA rule as vec256.h. Note the reductions in
// the avx512 table do NOT use the 16-lane float type: the determinism
// contract fixes the virtual accumulator at 8 lanes, so dot_f32 runs on
// 256-bit registers even in the avx512 TU (see vec_impl.h), and the
// double-precision reductions use exactly one 8-lane Avx512D accumulator.
#pragma once

#if !defined(__AVX512F__)
#error "vec512.h requires -mavx512f"
#endif

#include <immintrin.h>

#include <cassert>
#include <cstddef>

#include "tensor/vec/vec256.h"  // Avx2F: the 8-lane reduction + NarrowF type

namespace hetero::vec {

struct Avx512F {
  static constexpr std::size_t kWidth = 16;
  __m512 v;

  static Avx512F load(const float* p) { return {_mm512_loadu_ps(p)}; }
  static Avx512F load_n(const float* p, std::size_t n) {
    assert(n <= 16);
    const __mmask16 m = static_cast<__mmask16>((1u << n) - 1u);
    return {_mm512_maskz_loadu_ps(m, p)};
  }
  void store(float* p) const { _mm512_storeu_ps(p, v); }
  void store_n(float* p, std::size_t n) const {
    assert(n <= 16);
    const __mmask16 m = static_cast<__mmask16>((1u << n) - 1u);
    _mm512_mask_storeu_ps(p, m, v);
  }
  static Avx512F broadcast(float x) { return {_mm512_set1_ps(x)}; }
  static Avx512F zero() { return {_mm512_setzero_ps()}; }

  friend Avx512F operator+(Avx512F a, Avx512F b) {
    return {_mm512_add_ps(a.v, b.v)};
  }
  friend Avx512F operator-(Avx512F a, Avx512F b) {
    return {_mm512_sub_ps(a.v, b.v)};
  }
  friend Avx512F operator*(Avx512F a, Avx512F b) {
    return {_mm512_mul_ps(a.v, b.v)};
  }

  static Avx512F relu(Avx512F a) {
    return {_mm512_max_ps(_mm512_setzero_ps(), a.v)};
  }
  static Avx512F zero_where_nonpositive(Avx512F mask, Avx512F g) {
    // keep lanes where !(mask <= 0): mask > 0 or NaN, like the scalar test.
    const __mmask16 keep =
        _mm512_cmp_ps_mask(mask.v, _mm512_setzero_ps(), _CMP_NLE_UQ);
    return {_mm512_maskz_mov_ps(keep, g.v)};
  }
};

struct Avx512D {
  static constexpr std::size_t kWidth = 8;
  using NarrowF = Avx2F;
  __m512d v;

  static Avx512D load(const double* p) { return {_mm512_loadu_pd(p)}; }
  void store(double* p) const { _mm512_storeu_pd(p, v); }
  static Avx512D broadcast(double x) { return {_mm512_set1_pd(x)}; }
  static Avx512D zero() { return {_mm512_setzero_pd()}; }
  static Avx512D from_float(const float* p) {
    return {_mm512_cvtps_pd(_mm256_loadu_ps(p))};
  }
  void store_float(float* p) const {
    _mm256_storeu_ps(p, _mm512_cvtpd_ps(v));
  }
  NarrowF to_float() const { return {_mm512_cvtpd_ps(v)}; }

  friend Avx512D operator+(Avx512D a, Avx512D b) {
    return {_mm512_add_pd(a.v, b.v)};
  }
  friend Avx512D operator-(Avx512D a, Avx512D b) {
    return {_mm512_sub_pd(a.v, b.v)};
  }
  friend Avx512D operator*(Avx512D a, Avx512D b) {
    return {_mm512_mul_pd(a.v, b.v)};
  }
};

}  // namespace hetero::vec
