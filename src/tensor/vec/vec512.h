// AVX-512F Vec wrappers: 16-lane float and 8-lane double over zmm
// registers, with native mask registers for the tails.
//
// Only compiled into the avx512 kernel TU (-mavx512f -mavx2 -mfma
// -ffp-contract=off). Same no-FMA rule as vec256.h. Note the reductions in
// the avx512 table do NOT use the 16-lane float type: the determinism
// contract fixes the virtual accumulator at 8 lanes, so dot_f32 runs on
// 256-bit registers even in the avx512 TU (see vec_impl.h), and the
// double-precision reductions use exactly one 8-lane Avx512D accumulator.
#pragma once

#if !defined(__AVX512F__)
#error "vec512.h requires -mavx512f"
#endif

#include <immintrin.h>

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "tensor/vec/vec256.h"  // Avx2F: the 8-lane reduction + NarrowF type

namespace hetero::vec {

struct Avx512F {
  static constexpr std::size_t kWidth = 16;
  __m512 v;

  static Avx512F load(const float* p) { return {_mm512_loadu_ps(p)}; }
  static Avx512F load_n(const float* p, std::size_t n) {
    assert(n <= 16);
    const __mmask16 m = static_cast<__mmask16>((1u << n) - 1u);
    return {_mm512_maskz_loadu_ps(m, p)};
  }
  void store(float* p) const { _mm512_storeu_ps(p, v); }
  void store_n(float* p, std::size_t n) const {
    assert(n <= 16);
    const __mmask16 m = static_cast<__mmask16>((1u << n) - 1u);
    _mm512_mask_storeu_ps(p, m, v);
  }
  static Avx512F broadcast(float x) { return {_mm512_set1_ps(x)}; }
  static Avx512F zero() { return {_mm512_setzero_ps()}; }

  friend Avx512F operator+(Avx512F a, Avx512F b) {
    return {_mm512_add_ps(a.v, b.v)};
  }
  friend Avx512F operator-(Avx512F a, Avx512F b) {
    return {_mm512_sub_ps(a.v, b.v)};
  }
  friend Avx512F operator*(Avx512F a, Avx512F b) {
    return {_mm512_mul_ps(a.v, b.v)};
  }
  /// divps — IEEE correctly rounded, matches the scalar division bit for bit.
  friend Avx512F operator/(Avx512F a, Avx512F b) {
    return {_mm512_div_ps(a.v, b.v)};
  }
  /// sqrtps — IEEE correctly rounded, matches std::sqrt bit for bit.
  static Avx512F sqrt(Avx512F a) { return {_mm512_sqrt_ps(a.v)}; }

  static Avx512F relu(Avx512F a) {
    return {_mm512_max_ps(_mm512_setzero_ps(), a.v)};
  }
  static Avx512F zero_where_nonpositive(Avx512F mask, Avx512F g) {
    // keep lanes where !(mask <= 0): mask > 0 or NaN, like the scalar test.
    const __mmask16 keep =
        _mm512_cmp_ps_mask(mask.v, _mm512_setzero_ps(), _CMP_NLE_UQ);
    return {_mm512_maskz_mov_ps(keep, g.v)};
  }

  // --- Quantization ops; same per-element semantics as vec_scalar.h /
  // vec256.h. Tails go through small stack buffers because the masked
  // 16-bit/8-bit loads would need AVX512BW+VL, which this TU does not
  // compile with. ---

  /// Clears the sign bit (integer and: _mm512_and_ps needs AVX512DQ).
  static Avx512F abs(Avx512F a) {
    return {_mm512_castsi512_ps(_mm512_and_si512(
        _mm512_castps_si512(a.v), _mm512_set1_epi32(0x7FFFFFFF)))};
  }
  /// vmaxps: (a > b) ? a : b — returns b when either operand is NaN.
  static Avx512F max(Avx512F a, Avx512F b) {
    return {_mm512_max_ps(a.v, b.v)};
  }
  /// vminps: (a < b) ? a : b — returns b when either operand is NaN.
  static Avx512F min(Avx512F a, Avx512F b) {
    return {_mm512_min_ps(a.v, b.v)};
  }
  /// Number of lanes with |a| > limit (CMP_GT_OQ: false on NaN).
  static std::size_t count_abs_gt(Avx512F a, Avx512F limit) {
    const __mmask16 cmp = _mm512_cmp_ps_mask(abs(a).v, limit.v, _CMP_GT_OQ);
    return static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(cmp)));
  }

  /// 16 half-precision values widened to float (vcvtph2ps, exact).
  static Avx512F load_half(const std::uint16_t* p) {
    return {_mm512_cvtph_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)))};
  }
  static Avx512F load_half_n(const std::uint16_t* p, std::size_t n) {
    assert(n <= 16);
    alignas(32) std::uint16_t buf[16] = {};
    std::memcpy(buf, p, n * sizeof(std::uint16_t));
    return {_mm512_cvtph_ps(
        _mm256_load_si256(reinterpret_cast<const __m256i*>(buf)))};
  }
  /// vcvtps2ph with round-to-nearest-even.
  void store_half(std::uint16_t* p) const {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(p),
        _mm512_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
  }
  void store_half_n(std::uint16_t* p, std::size_t n) const {
    assert(n <= 16);
    alignas(32) std::uint16_t buf[16];
    _mm256_store_si256(
        reinterpret_cast<__m256i*>(buf),
        _mm512_cvtps_ph(v, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC));
    std::memcpy(p, buf, n * sizeof(std::uint16_t));
  }

  /// 16 int8 values widened to float (exact).
  static Avx512F load_i8(const std::int8_t* p) {
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    return {_mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(b))};
  }
  static Avx512F load_i8_n(const std::int8_t* p, std::size_t n) {
    assert(n <= 16);
    alignas(16) std::int8_t buf[16] = {};
    std::memcpy(buf, p, n);
    return {_mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(
        _mm_load_si128(reinterpret_cast<const __m128i*>(buf))))};
  }
  /// vcvtps2dq (round-to-nearest-even under the default MXCSR mode) then
  /// vpmovdb truncation — exact because the caller clamps to [-127, 127].
  void store_i8_rne(std::int8_t* p) const {
    const __m512i i32 = _mm512_cvtps_epi32(v);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p),
                     _mm512_cvtepi32_epi8(i32));
  }
  void store_i8_rne_n(std::int8_t* p, std::size_t n) const {
    assert(n <= 16);
    alignas(16) std::int8_t buf[16];
    store_i8_rne(buf);
    std::memcpy(p, buf, n);
  }
};

struct Avx512D {
  static constexpr std::size_t kWidth = 8;
  using NarrowF = Avx2F;
  __m512d v;

  static Avx512D load(const double* p) { return {_mm512_loadu_pd(p)}; }
  void store(double* p) const { _mm512_storeu_pd(p, v); }
  static Avx512D broadcast(double x) { return {_mm512_set1_pd(x)}; }
  static Avx512D zero() { return {_mm512_setzero_pd()}; }
  static Avx512D from_float(const float* p) {
    return {_mm512_cvtps_pd(_mm256_loadu_ps(p))};
  }
  void store_float(float* p) const {
    _mm256_storeu_ps(p, _mm512_cvtpd_ps(v));
  }
  NarrowF to_float() const { return {_mm512_cvtpd_ps(v)}; }

  friend Avx512D operator+(Avx512D a, Avx512D b) {
    return {_mm512_add_pd(a.v, b.v)};
  }
  friend Avx512D operator-(Avx512D a, Avx512D b) {
    return {_mm512_sub_pd(a.v, b.v)};
  }
  friend Avx512D operator*(Avx512D a, Avx512D b) {
    return {_mm512_mul_pd(a.v, b.v)};
  }
};

}  // namespace hetero::vec
