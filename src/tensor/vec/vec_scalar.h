// Width-1 "vector" types: the scalar reference lanes of the vec backend.
//
// These exist so vec_impl.h can instantiate the exact same generic kernel
// bodies for the scalar table as for the SIMD tables — the per-element
// expressions are shared by construction, which is most of the bit-identity
// argument. The tail paths (load_n / store_n) are unreachable at width 1.
#pragma once

#include <cassert>
#include <cstddef>

namespace hetero::vec {

struct ScalarF {
  static constexpr std::size_t kWidth = 1;
  float v;

  static ScalarF load(const float* p) { return {*p}; }
  static ScalarF load_n(const float* p, [[maybe_unused]] std::size_t n) {
    assert(n == 1);
    return {*p};
  }
  void store(float* p) const { *p = v; }
  void store_n(float* p, [[maybe_unused]] std::size_t n) const {
    assert(n == 1);
    *p = v;
  }
  static ScalarF broadcast(float x) { return {x}; }
  static ScalarF zero() { return {0.0f}; }

  friend ScalarF operator+(ScalarF a, ScalarF b) { return {a.v + b.v}; }
  friend ScalarF operator-(ScalarF a, ScalarF b) { return {a.v - b.v}; }
  friend ScalarF operator*(ScalarF a, ScalarF b) { return {a.v * b.v}; }

  /// max(v, 0) with std::max's exact tie/NaN behavior: (v < 0) ? 0 : v.
  static ScalarF relu(ScalarF a) { return {a.v < 0.0f ? 0.0f : a.v}; }
  /// (mask <= 0) ? 0 : g — keeps g when mask is NaN, like the scalar loop.
  static ScalarF zero_where_nonpositive(ScalarF mask, ScalarF g) {
    return {mask.v <= 0.0f ? 0.0f : g.v};
  }
};

struct ScalarD {
  static constexpr std::size_t kWidth = 1;
  /// Float type of the same lane count, for the mixed double->float
  /// finalize kernels.
  using NarrowF = ScalarF;
  double v;

  static ScalarD load(const double* p) { return {*p}; }
  void store(double* p) const { *p = v; }
  static ScalarD broadcast(double x) { return {x}; }
  static ScalarD zero() { return {0.0}; }
  /// Widens kWidth floats starting at p.
  static ScalarD from_float(const float* p) {
    return {static_cast<double>(*p)};
  }
  /// Narrows back to float (round-to-nearest, like static_cast<float>).
  void store_float(float* p) const { *p = static_cast<float>(v); }
  NarrowF to_float() const { return {static_cast<float>(v)}; }

  friend ScalarD operator+(ScalarD a, ScalarD b) { return {a.v + b.v}; }
  friend ScalarD operator-(ScalarD a, ScalarD b) { return {a.v - b.v}; }
  friend ScalarD operator*(ScalarD a, ScalarD b) { return {a.v * b.v}; }
};

}  // namespace hetero::vec
