// Width-1 "vector" types: the scalar reference lanes of the vec backend.
//
// These exist so vec_impl.h can instantiate the exact same generic kernel
// bodies for the scalar table as for the SIMD tables — the per-element
// expressions are shared by construction, which is most of the bit-identity
// argument. The tail paths (load_n / store_n) are unreachable at width 1.
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "tensor/vec/half.h"

namespace hetero::vec {

struct ScalarF {
  static constexpr std::size_t kWidth = 1;
  float v;

  static ScalarF load(const float* p) { return {*p}; }
  static ScalarF load_n(const float* p, [[maybe_unused]] std::size_t n) {
    assert(n == 1);
    return {*p};
  }
  void store(float* p) const { *p = v; }
  void store_n(float* p, [[maybe_unused]] std::size_t n) const {
    assert(n == 1);
    *p = v;
  }
  static ScalarF broadcast(float x) { return {x}; }
  static ScalarF zero() { return {0.0f}; }

  friend ScalarF operator+(ScalarF a, ScalarF b) { return {a.v + b.v}; }
  friend ScalarF operator-(ScalarF a, ScalarF b) { return {a.v - b.v}; }
  friend ScalarF operator*(ScalarF a, ScalarF b) { return {a.v * b.v}; }
  /// divss — IEEE correctly rounded, bit-identical to divps on every ISA.
  friend ScalarF operator/(ScalarF a, ScalarF b) { return {a.v / b.v}; }
  /// sqrtss — IEEE correctly rounded, bit-identical to sqrtps on every ISA.
  static ScalarF sqrt(ScalarF a) { return {std::sqrt(a.v)}; }

  /// max(v, 0) with std::max's exact tie/NaN behavior: (v < 0) ? 0 : v.
  static ScalarF relu(ScalarF a) { return {a.v < 0.0f ? 0.0f : a.v}; }
  /// (mask <= 0) ? 0 : g — keeps g when mask is NaN, like the scalar loop.
  static ScalarF zero_where_nonpositive(ScalarF mask, ScalarF g) {
    return {mask.v <= 0.0f ? 0.0f : g.v};
  }

  // --- Quantization ops (see DESIGN.md §10). Every comparison below is
  // written in the exact operand order of the matching AVX min/max/cmp
  // instruction, so NaN propagation is bit-identical across ISAs. ---

  /// |v| — clears the sign bit, like andps with 0x7FFFFFFF.
  static ScalarF abs(ScalarF a) { return {std::fabs(a.v)}; }
  /// maxps(a, b): (a > b) ? a : b — returns b when either operand is NaN.
  static ScalarF max(ScalarF a, ScalarF b) {
    return {a.v > b.v ? a.v : b.v};
  }
  /// minps(a, b): (a < b) ? a : b — returns b when either operand is NaN.
  static ScalarF min(ScalarF a, ScalarF b) {
    return {a.v < b.v ? a.v : b.v};
  }
  /// Number of lanes with |a| > limit (false for NaN, like CMP_GT_OQ).
  static std::size_t count_abs_gt(ScalarF a, ScalarF limit) {
    return std::fabs(a.v) > limit.v ? 1u : 0u;
  }

  /// kWidth half-precision values widened to float (exact).
  static ScalarF load_half(const std::uint16_t* p) {
    return {half_to_float(*p)};
  }
  static ScalarF load_half_n(const std::uint16_t* p,
                             [[maybe_unused]] std::size_t n) {
    assert(n == 1);
    return {half_to_float(*p)};
  }
  /// Narrows to half with round-to-nearest-even (matches vcvtps2ph).
  void store_half(std::uint16_t* p) const { *p = float_to_half(v); }
  void store_half_n(std::uint16_t* p, [[maybe_unused]] std::size_t n) const {
    assert(n == 1);
    *p = float_to_half(v);
  }

  /// kWidth int8 values widened to float (exact).
  static ScalarF load_i8(const std::int8_t* p) {
    return {static_cast<float>(*p)};
  }
  static ScalarF load_i8_n(const std::int8_t* p,
                           [[maybe_unused]] std::size_t n) {
    assert(n == 1);
    return {static_cast<float>(*p)};
  }
  /// Round-to-nearest-even int8 store (matches cvtps2dq under the default
  /// MXCSR rounding mode). The caller clamps to [-127, 127] first.
  void store_i8_rne(std::int8_t* p) const {
    *p = static_cast<std::int8_t>(
        static_cast<int>(std::nearbyintf(v)));
  }
  void store_i8_rne_n(std::int8_t* p, [[maybe_unused]] std::size_t n) const {
    assert(n == 1);
    store_i8_rne(p);
  }
};

struct ScalarD {
  static constexpr std::size_t kWidth = 1;
  /// Float type of the same lane count, for the mixed double->float
  /// finalize kernels.
  using NarrowF = ScalarF;
  double v;

  static ScalarD load(const double* p) { return {*p}; }
  void store(double* p) const { *p = v; }
  static ScalarD broadcast(double x) { return {x}; }
  static ScalarD zero() { return {0.0}; }
  /// Widens kWidth floats starting at p.
  static ScalarD from_float(const float* p) {
    return {static_cast<double>(*p)};
  }
  /// Narrows back to float (round-to-nearest, like static_cast<float>).
  void store_float(float* p) const { *p = static_cast<float>(v); }
  NarrowF to_float() const { return {static_cast<float>(v)}; }

  friend ScalarD operator+(ScalarD a, ScalarD b) { return {a.v + b.v}; }
  friend ScalarD operator-(ScalarD a, ScalarD b) { return {a.v - b.v}; }
  friend ScalarD operator*(ScalarD a, ScalarD b) { return {a.v * b.v}; }
};

}  // namespace hetero::vec
