// Runtime ISA dispatch for the vec kernel backend.
//
// The three kernel tables live in their own TUs (vec_kernels_*.cpp), each
// compiled with exactly the -m flags its intrinsics need; this file is
// compiled for baseline x86-64 and only ever *calls through* a table the
// host CPU supports, so the binary cannot hit an illegal instruction on a
// non-AVX host. Selection order: explicit set_isa() (the --isa flag) wins,
// else the HETERO_ISA environment variable, else the best ISA cpuid
// reports. An unknown or unsupported request is a typed ParseError — user
// input problem, not a bug.
#include "tensor/vec/vec.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "util/error.h"

namespace hetero::vec {

namespace detail {
VecKernels make_scalar_table();
#if defined(HETERO_VEC_AVX2)
VecKernels make_avx2_table();
#endif
#if defined(HETERO_VEC_AVX512)
VecKernels make_avx512_table();
#endif
}  // namespace detail

namespace {

bool cpu_has_avx2() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  // f16c: the fp16 quantization kernels in the AVX2 table use
  // vcvtps2ph/vcvtph2ps (in practice every AVX2 CPU has F16C).
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
         __builtin_cpu_supports("f16c");
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx512f") && cpu_has_avx2();
#else
  return false;
#endif
}

std::atomic<const VecKernels*> g_active{nullptr};

[[noreturn]] void throw_unsupported(const std::string& source, Isa isa) {
  throw ParseError(source, std::string("ISA '") + isa_name(isa) +
                               "' is not supported on this host (compiled " +
                               "out or missing from cpuid)");
}

// Resolves HETERO_ISA (ParseError on junk), else best supported.
const VecKernels* resolve_default() {
  const char* env = std::getenv("HETERO_ISA");
  if (env != nullptr && env[0] != '\0') {
    const auto isa = parse_isa(env);
    if (!isa) {
      throw ParseError("HETERO_ISA",
                       std::string("unknown ISA '") + env +
                           "' (expected scalar, avx2, or avx512)");
    }
    const VecKernels* t = kernels_for(*isa);
    if (t == nullptr) throw_unsupported("HETERO_ISA", *isa);
    return t;
  }
  return kernels_for(best_supported_isa());
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::optional<Isa> parse_isa(const std::string& text) {
  if (text == "scalar") return Isa::kScalar;
  if (text == "avx2") return Isa::kAvx2;
  if (text == "avx512") return Isa::kAvx512;
  return std::nullopt;
}

const VecKernels* kernels_for(Isa isa) {
  switch (isa) {
    case Isa::kScalar: {
      static const VecKernels table = detail::make_scalar_table();
      return &table;
    }
    case Isa::kAvx2: {
#if defined(HETERO_VEC_AVX2)
      if (cpu_has_avx2()) {
        static const VecKernels table = detail::make_avx2_table();
        return &table;
      }
#endif
      return nullptr;
    }
    case Isa::kAvx512: {
#if defined(HETERO_VEC_AVX512)
      if (cpu_has_avx512()) {
        static const VecKernels table = detail::make_avx512_table();
        return &table;
      }
#endif
      return nullptr;
    }
  }
  return nullptr;
}

bool isa_supported(Isa isa) { return kernels_for(isa) != nullptr; }

Isa best_supported_isa() {
  if (isa_supported(Isa::kAvx512)) return Isa::kAvx512;
  if (isa_supported(Isa::kAvx2)) return Isa::kAvx2;
  return Isa::kScalar;
}

const VecKernels& kernels() {
  const VecKernels* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    // First use. A concurrent first call resolves the same table; the
    // double store is benign.
    t = resolve_default();
    g_active.store(t, std::memory_order_release);
  }
  return *t;
}

Isa active_isa() { return kernels().isa; }

void set_isa(Isa isa) {
  const VecKernels* t = kernels_for(isa);
  if (t == nullptr) throw_unsupported("--isa", isa);
  g_active.store(t, std::memory_order_release);
}

void set_isa_from_string(const std::string& name) {
  if (name.empty()) return;
  const auto isa = parse_isa(name);
  if (!isa) {
    throw ParseError("--isa", std::string("unknown ISA '") + name +
                                  "' (expected scalar, avx2, or avx512)");
  }
  set_isa(*isa);
}

}  // namespace hetero::vec
