// AVX-512 kernel table TU. CMake compiles exactly this file with
// -mavx512f -mavx2 -mfma -ffp-contract=off. The float reduction type is the
// 8-lane AVX2 wrapper: the determinism contract fixes the virtual
// accumulator at 8 lanes, so dot_f32 must not widen to 16.
#include "tensor/vec/vec512.h"
#include "tensor/vec/vec_impl.h"

namespace hetero::vec::detail {

VecKernels make_avx512_table() {
  return impl::make_table<Avx512F, Avx512D, Avx2F>(Isa::kAvx512);
}

}  // namespace hetero::vec::detail
