// AVX2 kernel table TU. CMake compiles exactly this file with
// -mavx2 -mfma -ffp-contract=off; nothing here may be called unless cpuid
// reported AVX2+FMA (the dispatcher in vec.cpp guarantees that).
#include "tensor/vec/vec256.h"
#include "tensor/vec/vec_impl.h"

namespace hetero::vec::detail {

VecKernels make_avx2_table() {
  return impl::make_table<Avx2F, Avx2D, Avx2F>(Isa::kAvx2);
}

}  // namespace hetero::vec::detail
