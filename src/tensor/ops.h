// Dense kernels for the MLP: GEMM variants, element-wise ops, softmax,
// reductions, and parameter initialization.
//
// These are the CPU "reference kernels" the GPU simulator charges virtual
// time for; they are written as straightforward blocked loops (the paper's
// GPU kernels come from cuSPARSE/cuBLAS, which we cannot use here).
#pragma once

#include <cstdint>
#include <span>

#include "tensor/matrix.h"
#include "util/kernel_context.h"
#include "util/rng.h"

namespace hetero::tensor {

/// C = A * B  (A: m x k, B: k x n, C: m x n). C is overwritten.
/// The context variant partitions the rows of C across the pool (race-free;
/// bit-identical to serial) and falls back to serial below the work grain.
void gemm(const Matrix& a, const Matrix& b, Matrix& c);
void gemm(const Matrix& a, const Matrix& b, Matrix& c,
          const kernels::Context& ctx);

/// C = A^T * B (A: k x m, B: k x n, C: m x n). C is overwritten.
/// Parallel variant partitions the output rows (columns of A).
void gemm_at_b(const Matrix& a, const Matrix& b, Matrix& c);
void gemm_at_b(const Matrix& a, const Matrix& b, Matrix& c,
               const kernels::Context& ctx);

/// C = A * B^T (A: m x k, B: n x k, C: m x n). C is overwritten.
/// Parallel variant partitions the rows of C.
void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& c);
void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& c,
               const kernels::Context& ctx);

/// y += alpha * x (flat spans of equal length).
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// y = alpha * x + beta * y.
void axpby(float alpha, std::span<const float> x, float beta,
           std::span<float> y);

/// x *= alpha.
void scale(std::span<float> x, float alpha);

/// Adds `bias` (length = cols) to every row of `m`.
void add_row_bias(Matrix& m, std::span<const float> bias);

/// In-place ReLU.
void relu(Matrix& m);

/// grad *= 1[activation > 0] element-wise (ReLU backward).
void relu_backward(const Matrix& activation, Matrix& grad);

/// Row-wise softmax, numerically stabilized (subtract row max).
void softmax_rows(Matrix& m);

/// Column sums of `m` into `out` (length = cols). Used for bias gradients.
void column_sums(const Matrix& m, std::span<float> out);

/// Sum of squares of a flat span.
double sum_of_squares(std::span<const float> x);

/// L2 norm of a flat span.
double l2_norm(std::span<const float> x);

/// Dot product of two flat spans of equal length.
double dot(std::span<const float> a, std::span<const float> b);

/// Index of the maximum element of a span (first on ties).
std::size_t argmax(std::span<const float> x);

/// Fills `m` with N(0, stddev) samples — the paper initializes weights from
/// a normal distribution scaled by layer width.
void init_gaussian(Matrix& m, double stddev, util::Rng& rng);

}  // namespace hetero::tensor
