#include "tensor/ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "tensor/vec/vec.h"

namespace hetero::tensor {

void gemm(const Matrix& a, const Matrix& b, Matrix& c) {
  gemm(a, b, c, kernels::Context::serial());
}

void gemm(const Matrix& a, const Matrix& b, Matrix& c,
          const kernels::Context& ctx) {
  assert(a.cols() == b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  c.resize(m, n, 0.0f);
  const auto& vk = vec::kernels();
  // Row blocks of C are independent; within a block the i-k-j loop order
  // streams B rows and accumulates into C rows (each a vectorized axpy).
  parallel_for_ranges(ctx, m, m * k * n, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      float* ci = c.data() + i * n;
      const float* ai = a.data() + i * k;
      for (std::size_t p = 0; p < k; ++p) {
        const float av = ai[p];
        if (av == 0.0f) continue;
        vk.axpy(av, b.data() + p * n, ci, n);
      }
    }
  });
}

void gemm_at_b(const Matrix& a, const Matrix& b, Matrix& c) {
  gemm_at_b(a, b, c, kernels::Context::serial());
}

void gemm_at_b(const Matrix& a, const Matrix& b, Matrix& c,
               const kernels::Context& ctx) {
  assert(a.rows() == b.rows());
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  c.resize(m, n, 0.0f);
  const auto& vk = vec::kernels();
  // Partition the output rows (columns of A): each worker owns C rows
  // [i0, i1) and scans all k input rows, so no write races and per-row
  // accumulation order (p ascending) matches the serial loop exactly.
  parallel_for_ranges(ctx, m, m * k * n, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t p = 0; p < k; ++p) {
      const float* ap = a.data() + p * m;
      const float* bp = b.data() + p * n;
      for (std::size_t i = i0; i < i1; ++i) {
        const float av = ap[i];
        if (av == 0.0f) continue;
        vk.axpy(av, bp, c.data() + i * n, n);
      }
    }
  });
}

void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& c) {
  gemm_a_bt(a, b, c, kernels::Context::serial());
}

void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& c,
               const kernels::Context& ctx) {
  assert(a.cols() == b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  c.resize(m, n, 0.0f);
  const auto& vk = vec::kernels();
  // Each C element is an inner product over k. dot_f32 uses the fixed
  // 8-virtual-lane accumulator, so the sum is identical on every ISA (and
  // independent of the thread partition, which never splits a row).
  parallel_for_ranges(ctx, m, m * k * n, [&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const float* ai = a.data() + i * k;
      float* ci = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) {
        ci[j] = vk.dot_f32(ai, b.data() + j * k, k);
      }
    }
  });
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  assert(x.size() == y.size());
  vec::kernels().axpy(alpha, x.data(), y.data(), x.size());
}

void axpby(float alpha, std::span<const float> x, float beta,
           std::span<float> y) {
  assert(x.size() == y.size());
  vec::kernels().axpby(alpha, x.data(), beta, y.data(), x.size());
}

void scale(std::span<float> x, float alpha) {
  vec::kernels().scale(x.data(), alpha, x.size());
}

void add_row_bias(Matrix& m, std::span<const float> bias) {
  assert(bias.size() == m.cols());
  const auto& vk = vec::kernels();
  for (std::size_t i = 0; i < m.rows(); ++i) {
    vk.add(bias.data(), m.data() + i * m.cols(), m.cols());
  }
}

void relu(Matrix& m) {
  vec::kernels().relu(m.data(), m.size());
}

void relu_backward(const Matrix& activation, Matrix& grad) {
  assert(activation.same_shape(grad));
  vec::kernels().relu_backward(activation.data(), grad.data(), grad.size());
}

void softmax_rows(Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    float* row = m.data() + i * m.cols();
    float mx = row[0];
    for (std::size_t j = 1; j < m.cols(); ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    const float inv = 1.0f / sum;
    for (std::size_t j = 0; j < m.cols(); ++j) row[j] *= inv;
  }
}

void column_sums(const Matrix& m, std::span<float> out) {
  assert(out.size() == m.cols());
  std::fill(out.begin(), out.end(), 0.0f);
  const auto& vk = vec::kernels();
  for (std::size_t i = 0; i < m.rows(); ++i) {
    vk.add(m.data() + i * m.cols(), out.data(), m.cols());
  }
}

double sum_of_squares(std::span<const float> x) {
  // 8-virtual-lane reduction: identical on every ISA (see vec.h).
  return vec::kernels().sum_squares(x.data(), x.size());
}

double l2_norm(std::span<const float> x) { return std::sqrt(sum_of_squares(x)); }

double dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  return vec::kernels().dot_f64(a.data(), b.data(), a.size());
}

std::size_t argmax(std::span<const float> x) {
  assert(!x.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] > x[best]) best = i;
  }
  return best;
}

void init_gaussian(Matrix& m, double stddev, util::Rng& rng) {
  for (auto& v : m.flat())
    v = static_cast<float>(rng.gaussian(0.0, stddev));
}

}  // namespace hetero::tensor
