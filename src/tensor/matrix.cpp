#include "tensor/matrix.h"

#include <algorithm>

namespace hetero::tensor {

void Matrix::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::resize(std::size_t rows, std::size_t cols, float fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

}  // namespace hetero::tensor
