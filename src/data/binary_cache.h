// Compact binary caching of generated datasets.
//
// Generating the large synthetic profiles costs seconds (hash sets per
// sample); experiments that sweep many configurations over one dataset can
// save it once and reload in milliseconds. Format: magic "HGDS" | version |
// name | 4 CSR matrices (train/test x features/labels) as raw arrays.
// Host-endian local cache, not a wire format.
#pragma once

#include <iosfwd>
#include <string>

#include "data/synthetic.h"

namespace hetero::data {

void save_dataset(std::ostream& out, const XmlDataset& dataset);
void save_dataset_file(const std::string& path, const XmlDataset& dataset);

/// Throws std::runtime_error on malformed input.
XmlDataset load_dataset(std::istream& in);
XmlDataset load_dataset_file(const std::string& path);

}  // namespace hetero::data
