// Deterministic shuffled sample stream.
//
// The dynamic scheduler (Section IV) dispatches batches one-by-one from the
// training set; a mega-batch is a fixed number of *samples*, not batches.
// SampleStream provides the underlying ordered-but-shuffled cursor: repeated
// calls hand out disjoint row-id runs; when the dataset is exhausted it
// reshuffles (a new data pass) and continues.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace hetero::data {

class SampleStream {
 public:
  SampleStream(std::size_t num_samples, std::uint64_t seed);

  /// Returns the next `n` row ids (possibly crossing a reshuffle boundary).
  std::vector<std::size_t> next(std::size_t n);

  /// Fast-forwards the stream past `n` ids without materializing them:
  /// consumes exactly the RNG draws and cursor/pass movement that `next(n)`
  /// would. Used by checkpointed recovery to replay the sample position.
  void skip(std::size_t n);

  /// Total samples handed out so far.
  std::size_t samples_served() const { return served_; }

  /// Completed passes over the dataset (an "epoch" in the dataset sense;
  /// note the paper uses "epoch" for one batch step — see core/README note).
  std::size_t passes() const { return passes_; }

  std::size_t dataset_size() const { return order_.size(); }

 private:
  void reshuffle();

  util::Rng rng_;
  std::vector<std::size_t> order_;
  std::size_t cursor_ = 0;
  std::size_t served_ = 0;
  std::size_t passes_ = 0;
};

}  // namespace hetero::data
