#include "data/sample_stream.h"

#include <cassert>
#include <numeric>

namespace hetero::data {

SampleStream::SampleStream(std::size_t num_samples, std::uint64_t seed)
    : rng_(seed), order_(num_samples) {
  assert(num_samples > 0);
  std::iota(order_.begin(), order_.end(), 0);
  reshuffle();
}

void SampleStream::reshuffle() {
  rng_.shuffle(order_);
  cursor_ = 0;
}

std::vector<std::size_t> SampleStream::next(std::size_t n) {
  std::vector<std::size_t> out;
  out.reserve(n);
  while (out.size() < n) {
    if (cursor_ == order_.size()) {
      ++passes_;
      reshuffle();
    }
    out.push_back(order_[cursor_++]);
  }
  served_ += n;
  return out;
}

void SampleStream::skip(std::size_t n) {
  std::size_t remaining = n;
  while (remaining > 0) {
    if (cursor_ == order_.size()) {
      ++passes_;
      reshuffle();
    }
    const std::size_t take = std::min(remaining, order_.size() - cursor_);
    cursor_ += take;
    remaining -= take;
  }
  served_ += n;
}

}  // namespace hetero::data
