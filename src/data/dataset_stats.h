// Dataset shape statistics (the columns of Table I) plus nnz-variation
// measures used to characterize the sparse-data heterogeneity source.
#pragma once

#include <iosfwd>
#include <string>

#include "data/synthetic.h"

namespace hetero::data {

struct DatasetStats {
  std::string name;
  std::size_t num_features = 0;
  std::size_t num_classes = 0;
  std::size_t num_train = 0;
  std::size_t num_test = 0;
  double avg_features_per_sample = 0.0;
  double avg_labels_per_sample = 0.0;
  /// Coefficient of variation of per-sample feature nnz (stddev / mean):
  /// the paper's "number of non-zero features varies significantly".
  double feature_nnz_cv = 0.0;
  /// Maximum / minimum per-batch nnz ratio for the given batch size, over a
  /// sequential batching of the training set.
  double batch_nnz_spread = 0.0;
};

/// Computes stats; batch_size controls the batch-level spread measure.
DatasetStats compute_stats(const XmlDataset& dataset,
                           std::size_t batch_size = 128);

/// Prints a Table-I style row.
void print_stats_row(std::ostream& os, const DatasetStats& stats);
void print_stats_header(std::ostream& os);

}  // namespace hetero::data
