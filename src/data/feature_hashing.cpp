#include "data/feature_hashing.h"

#include <vector>

#include "util/rng.h"

namespace hetero::data {

namespace {
// Stateless splitmix-style hash of (feature, seed).
std::uint64_t mix(std::uint64_t x, std::uint64_t seed) {
  std::uint64_t state = x * 0x9e3779b97f4a7c15ULL + seed;
  return util::splitmix64(state);
}
}  // namespace

sparse::CsrMatrix hash_features(const sparse::CsrMatrix& features,
                                const FeatureHashConfig& cfg) {
  const std::size_t buckets = 1ull << cfg.bits;
  sparse::CsrBuilder builder(buckets);
  std::vector<sparse::Entry> entries;
  for (std::size_t r = 0; r < features.rows(); ++r) {
    entries.clear();
    const auto cols = features.row_cols(r);
    const auto vals = features.row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      const std::uint64_t h = mix(cols[i], cfg.seed);
      const auto bucket = static_cast<std::uint32_t>(h & (buckets - 1));
      // Bit 63 supplies the sign, independent of the bucket bits.
      const float sign =
          cfg.signed_hash && (h >> 63) ? -1.0f : 1.0f;
      entries.push_back({bucket, sign * vals[i]});
    }
    builder.add_row(entries);  // builder sums colliding buckets
  }
  return builder.build();
}

void hash_dataset_features(sparse::LabeledDataset& dataset,
                           const FeatureHashConfig& cfg) {
  dataset.features = hash_features(dataset.features, cfg);
}

}  // namespace hetero::data
