#include "data/dataset_stats.h"

#include <algorithm>
#include <ostream>

#include "util/stats.h"

namespace hetero::data {

DatasetStats compute_stats(const XmlDataset& dataset, std::size_t batch_size) {
  DatasetStats s;
  s.name = dataset.name;
  s.num_features = dataset.train.features.cols();
  s.num_classes = dataset.train.labels.cols();
  s.num_train = dataset.train.num_samples();
  s.num_test = dataset.test.num_samples();
  s.avg_features_per_sample = dataset.train.features.avg_row_nnz();
  s.avg_labels_per_sample = dataset.train.labels.avg_row_nnz();

  util::RunningStats per_sample;
  for (std::size_t r = 0; r < s.num_train; ++r) {
    per_sample.add(static_cast<double>(dataset.train.features.row_nnz(r)));
  }
  s.feature_nnz_cv =
      per_sample.mean() > 0 ? per_sample.stddev() / per_sample.mean() : 0.0;

  std::vector<double> batch_nnz;
  for (std::size_t b = 0; b + batch_size <= s.num_train; b += batch_size) {
    batch_nnz.push_back(static_cast<double>(
        dataset.train.features.range_nnz(b, b + batch_size)));
  }
  if (!batch_nnz.empty()) {
    const auto [mn, mx] =
        std::minmax_element(batch_nnz.begin(), batch_nnz.end());
    s.batch_nnz_spread = *mn > 0 ? *mx / *mn : 0.0;
  }
  return s;
}

void print_stats_header(std::ostream& os) {
  os << "dataset              features   classes   train    test   "
        "avg f/sample  avg c/sample  nnz CV  batch nnz max/min\n";
}

void print_stats_row(std::ostream& os, const DatasetStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-20s %8zu  %8zu  %6zu  %6zu     %8.1f      %8.1f  %6.3f  %10.3f\n",
                s.name.c_str(), s.num_features, s.num_classes, s.num_train,
                s.num_test, s.avg_features_per_sample, s.avg_labels_per_sample,
                s.feature_nnz_cv, s.batch_nnz_spread);
  os << buf;
}

}  // namespace hetero::data
