#include "data/binary_cache.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace hetero::data {

namespace {
constexpr char kMagic[4] = {'H', 'G', 'D', 'S'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("dataset cache: truncated input");
  return value;
}

template <typename T>
void write_vec(std::ostream& out, const std::vector<T>& v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vec(std::istream& in) {
  const auto n = read_pod<std::uint64_t>(in);
  std::vector<T> v(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
  if (!in) throw std::runtime_error("dataset cache: truncated array");
  return v;
}

void write_csr(std::ostream& out, const sparse::CsrMatrix& m) {
  write_pod(out, static_cast<std::uint64_t>(m.rows()));
  write_pod(out, static_cast<std::uint64_t>(m.cols()));
  write_vec(out, m.row_ptr());
  write_vec(out, m.col_idx());
  write_vec(out, m.values());
}

sparse::CsrMatrix read_csr(std::istream& in) {
  const auto rows = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  const auto cols = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
  auto row_ptr = read_vec<std::size_t>(in);
  auto col_idx = read_vec<std::uint32_t>(in);
  auto values = read_vec<float>(in);
  if (row_ptr.size() != rows + 1 || col_idx.size() != values.size() ||
      (rows > 0 && row_ptr.back() != col_idx.size())) {
    throw std::runtime_error("dataset cache: inconsistent CSR arrays");
  }
  sparse::CsrMatrix m(rows, cols, std::move(row_ptr), std::move(col_idx),
                      std::move(values));
  if (!m.validate()) {
    throw std::runtime_error("dataset cache: CSR validation failed");
  }
  return m;
}
}  // namespace

void save_dataset(std::ostream& out, const XmlDataset& dataset) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(dataset.name.size()));
  out.write(dataset.name.data(),
            static_cast<std::streamsize>(dataset.name.size()));
  write_csr(out, dataset.train.features);
  write_csr(out, dataset.train.labels);
  write_csr(out, dataset.test.features);
  write_csr(out, dataset.test.labels);
  if (!out) throw std::runtime_error("dataset cache: write failed");
}

void save_dataset_file(const std::string& path, const XmlDataset& dataset) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("dataset cache: cannot open " + path);
  save_dataset(out, dataset);
}

XmlDataset load_dataset(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("dataset cache: bad magic");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw std::runtime_error("dataset cache: unsupported version");
  }
  const auto name_len = read_pod<std::uint64_t>(in);
  std::string name(static_cast<std::size_t>(name_len), '\0');
  in.read(name.data(), static_cast<std::streamsize>(name_len));
  if (!in) throw std::runtime_error("dataset cache: truncated name");

  XmlDataset dataset;
  dataset.name = std::move(name);
  dataset.train.features = read_csr(in);
  dataset.train.labels = read_csr(in);
  dataset.test.features = read_csr(in);
  dataset.test.labels = read_csr(in);
  if (dataset.train.features.rows() != dataset.train.labels.rows() ||
      dataset.test.features.rows() != dataset.test.labels.rows()) {
    throw std::runtime_error("dataset cache: split row mismatch");
  }
  return dataset;
}

XmlDataset load_dataset_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("dataset cache: cannot open " + path);
  return load_dataset(in);
}

}  // namespace hetero::data
