// Feature hashing ("the hashing trick"): projects a sparse dataset's
// feature space down to 2^bits buckets with a sign hash. Standard practice
// for XML-scale feature spaces (Amazon-670k has 135,909 raw features) when
// the first layer must fit device memory; lets the real Repository datasets
// run through this framework at reduced width with bounded distortion.
#pragma once

#include <cstdint>

#include "sparse/libsvm.h"

namespace hetero::data {

struct FeatureHashConfig {
  std::size_t bits = 12;        // target dimensionality = 2^bits
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  bool signed_hash = true;      // multiply value by +/-1 (variance control)
};

/// Hashes the feature space of `features`; labels are untouched.
/// Collisions sum (with signs when enabled).
sparse::CsrMatrix hash_features(const sparse::CsrMatrix& features,
                                const FeatureHashConfig& cfg);

/// Convenience: hashes both splits of a dataset in place.
void hash_dataset_features(sparse::LabeledDataset& dataset,
                           const FeatureHashConfig& cfg);

}  // namespace hetero::data
