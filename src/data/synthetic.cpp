#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "util/rng.h"

namespace hetero::data {

SyntheticXmlConfig amazon670k_small() {
  SyntheticXmlConfig cfg;
  cfg.name = "amazon670k-small";
  cfg.num_features = 8'192;
  cfg.num_classes = 2'048;
  cfg.num_train = 16'000;
  cfg.num_test = 3'200;
  cfg.avg_features_per_sample = 76.0;
  cfg.avg_labels_per_sample = 5.0;
  cfg.feature_zipf = 1.05;
  cfg.label_zipf = 1.10;
  cfg.nnz_sigma = 0.45;
  cfg.salient_features_per_class = 24;
  cfg.signal_fraction = 0.8;
  cfg.seed = 20220101;
  return cfg;
}

SyntheticXmlConfig delicious200k_small() {
  SyntheticXmlConfig cfg;
  cfg.name = "delicious200k-small";
  cfg.num_features = 12'288;
  cfg.num_classes = 1'024;
  cfg.num_train = 10'000;
  cfg.num_test = 2'000;
  cfg.avg_features_per_sample = 302.0;
  cfg.avg_labels_per_sample = 75.0;
  cfg.feature_zipf = 0.95;
  cfg.label_zipf = 0.85;
  cfg.nnz_sigma = 0.35;
  cfg.salient_features_per_class = 16;
  cfg.signal_fraction = 0.7;
  cfg.seed = 20220202;
  return cfg;
}

SyntheticXmlConfig tiny_profile() {
  SyntheticXmlConfig cfg;
  cfg.name = "tiny";
  cfg.num_features = 512;
  cfg.num_classes = 64;
  cfg.num_train = 1'500;
  cfg.num_test = 400;
  cfg.avg_features_per_sample = 20.0;
  cfg.avg_labels_per_sample = 2.0;
  cfg.feature_zipf = 1.0;
  cfg.label_zipf = 1.0;
  cfg.nnz_sigma = 0.4;
  cfg.salient_features_per_class = 10;
  cfg.signal_fraction = 0.85;
  cfg.seed = 7;
  return cfg;
}

namespace {

// Salient feature sets: class c owns `salient` features drawn from the
// feature popularity distribution (so popular features are shared across
// classes, as in real bag-of-words data).
std::vector<std::vector<std::uint32_t>> build_salient_sets(
    const SyntheticXmlConfig& cfg, util::Rng& rng,
    const util::ZipfSampler& feature_sampler) {
  std::vector<std::vector<std::uint32_t>> sets(cfg.num_classes);
  for (auto& set : sets) {
    std::unordered_set<std::uint32_t> chosen;
    while (chosen.size() < cfg.salient_features_per_class) {
      chosen.insert(static_cast<std::uint32_t>(feature_sampler.sample(rng)));
    }
    set.assign(chosen.begin(), chosen.end());
    std::sort(set.begin(), set.end());
  }
  return sets;
}

sparse::LabeledDataset generate_split(
    const SyntheticXmlConfig& cfg, std::size_t num_samples, util::Rng& rng,
    const util::ZipfSampler& feature_sampler,
    const util::ZipfSampler& label_sampler,
    const std::vector<std::vector<std::uint32_t>>& salient) {
  sparse::CsrBuilder features(cfg.num_features);
  sparse::CsrBuilder labels(cfg.num_classes);

  // Lognormal multiplier with mean 1: shift mu by -sigma^2/2.
  const double mu = -0.5 * cfg.nnz_sigma * cfg.nnz_sigma;

  for (std::size_t s = 0; s < num_samples; ++s) {
    // --- labels ---
    const double label_mult = rng.lognormal(mu, cfg.nnz_sigma * 0.5);
    auto num_labels = static_cast<std::size_t>(
        std::max(1.0, std::round(cfg.avg_labels_per_sample * label_mult)));
    num_labels = std::min(num_labels, cfg.num_classes);
    std::unordered_set<std::uint32_t> label_set;
    while (label_set.size() < num_labels) {
      label_set.insert(static_cast<std::uint32_t>(label_sampler.sample(rng)));
    }
    std::vector<std::uint32_t> label_vec(label_set.begin(), label_set.end());

    // --- features ---
    const double feat_mult = rng.lognormal(mu, cfg.nnz_sigma);
    auto num_feats = static_cast<std::size_t>(
        std::max(2.0, std::round(cfg.avg_features_per_sample * feat_mult)));
    num_feats = std::min(num_feats, cfg.num_features);
    const auto num_signal =
        static_cast<std::size_t>(cfg.signal_fraction *
                                 static_cast<double>(num_feats));

    // Draw DISTINCT feature ids so the row's nnz hits num_feats exactly
    // (duplicates would silently shrink rows below the Table I targets).
    std::unordered_set<std::uint32_t> chosen;
    std::vector<sparse::Entry> entries;
    entries.reserve(num_feats);
    const auto add_feature = [&](std::uint32_t feat) {
      if (chosen.insert(feat).second) {
        entries.push_back(
            {feat, static_cast<float>(rng.lognormal(0.0, 0.25))});
      }
    };
    // Signal features from the positive labels' salient sets. The pool may
    // be smaller than num_signal, so bound the attempts and let background
    // noise fill the remainder.
    for (std::size_t attempts = 0;
         entries.size() < num_signal && attempts < 4 * num_signal;
         ++attempts) {
      const auto label = label_vec[rng.next_below(label_vec.size())];
      const auto& set = salient[label];
      add_feature(set[rng.next_below(set.size())]);
    }
    for (std::size_t attempts = 0;
         entries.size() < num_feats && attempts < 20 * num_feats;
         ++attempts) {
      add_feature(static_cast<std::uint32_t>(feature_sampler.sample(rng)));
    }
    features.add_row(std::move(entries));
    labels.add_indicator_row(std::move(label_vec));
  }
  return {features.build(), labels.build()};
}

}  // namespace

XmlDataset generate_xml_dataset(const SyntheticXmlConfig& cfg) {
  util::Rng rng(cfg.seed);
  util::ZipfSampler feature_sampler(cfg.num_features, cfg.feature_zipf);
  util::ZipfSampler label_sampler(cfg.num_classes, cfg.label_zipf);
  const auto salient = build_salient_sets(cfg, rng, feature_sampler);

  XmlDataset out;
  out.name = cfg.name;
  out.train = generate_split(cfg, cfg.num_train, rng, feature_sampler,
                             label_sampler, salient);
  out.test = generate_split(cfg, cfg.num_test, rng, feature_sampler,
                            label_sampler, salient);
  return out;
}

}  // namespace hetero::data
