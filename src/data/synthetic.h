// Synthetic extreme multi-label classification (XML) data generator.
//
// The paper evaluates on Amazon-670k and Delicious-200k from the Extreme
// Classification Repository. Those datasets cannot be redistributed here, so
// this generator produces sparse datasets with the same *shape* statistics
// (Table I): very high feature/class dimensionality, few non-zero features
// per sample, few positive labels per sample, and heavy-tailed popularity of
// both features and labels.
//
// Construction is label-driven so that the task is learnable by the paper's
// 3-layer MLP: every class owns a small set of salient features; a sample
// first draws its labels from a Zipf popularity distribution, then draws
// most of its features from the salient sets of its labels plus Zipf
// background noise. Per-sample non-zero counts follow a lognormal multiplier
// around the target mean — this produces the batch-to-batch nnz variance
// that is one of the paper's two heterogeneity sources (Section I).
#pragma once

#include <cstdint>
#include <string>

#include "sparse/libsvm.h"

namespace hetero::data {

struct SyntheticXmlConfig {
  std::string name = "synthetic";
  std::size_t num_features = 10'000;
  std::size_t num_classes = 1'000;
  std::size_t num_train = 20'000;
  std::size_t num_test = 4'000;

  /// Target mean non-zero features / positive labels per sample.
  double avg_features_per_sample = 76.0;
  double avg_labels_per_sample = 5.0;

  /// Zipf exponents for feature / label popularity (0 = uniform).
  double feature_zipf = 1.05;
  double label_zipf = 1.05;

  /// Lognormal sigma of the per-sample nnz multiplier. Larger values mean
  /// more per-batch work variance (more heterogeneity pressure).
  double nnz_sigma = 0.45;

  /// Number of salient features owned by each class.
  std::size_t salient_features_per_class = 24;

  /// Fraction of a sample's features drawn from its labels' salient sets
  /// (the rest is background noise). Higher = easier task.
  double signal_fraction = 0.8;

  std::uint64_t seed = 42;
};

/// Profile approximating Amazon-670k scaled ~50x down (Table I row 1:
/// 135,909 features / 670,091 classes / 490,449 train / avg 76 features,
/// 5 labels per sample).
SyntheticXmlConfig amazon670k_small();

/// Profile approximating Delicious-200k scaled ~50x down (Table I row 2:
/// 782,585 features / 205,443 classes / 196,606 train / avg 302 features,
/// 75 labels per sample).
SyntheticXmlConfig delicious200k_small();

/// Tiny profile for unit tests (fast to generate and train).
SyntheticXmlConfig tiny_profile();

/// Train + test split with shared generator state.
struct XmlDataset {
  std::string name;
  sparse::LabeledDataset train;
  sparse::LabeledDataset test;
};

/// Generates the dataset deterministically from cfg.seed.
XmlDataset generate_xml_dataset(const SyntheticXmlConfig& cfg);

}  // namespace hetero::data
