#include "serve/topk.h"

#include <algorithm>

namespace hetero::serve {

namespace {

// Bounded selection: `out` is kept as a max-first sorted array of at most k
// entries; insertion keeps the ranks_before order, so the final result needs
// no extra sort. k is small (≤ tens) in serving, so the O(k) shift per
// accepted candidate beats heap bookkeeping.
void insert_bounded(std::vector<ScoredLabel>& out, std::size_t k,
                    ScoredLabel cand) {
  if (out.size() == k && !ranks_before(cand, out.back())) return;
  const auto pos = std::upper_bound(
      out.begin(), out.end(), cand,
      [](const ScoredLabel& a, const ScoredLabel& b) {
        return ranks_before(a, b);
      });
  out.insert(pos, cand);
  if (out.size() > k) out.pop_back();
}

}  // namespace

void select_topk(std::span<const float> scores, std::size_t k,
                 std::vector<ScoredLabel>& out) {
  out.clear();
  if (k == 0) return;
  out.reserve(std::min(k, scores.size()));
  for (std::size_t c = 0; c < scores.size(); ++c) {
    insert_bounded(out, k, {static_cast<std::uint32_t>(c), scores[c]});
  }
}

void select_topk(std::span<const ScoredLabel> candidates, std::size_t k,
                 std::vector<ScoredLabel>& out) {
  out.clear();
  if (k == 0) return;
  out.reserve(std::min(k, candidates.size()));
  for (const auto& cand : candidates) insert_bounded(out, k, cand);
}

}  // namespace hetero::serve
