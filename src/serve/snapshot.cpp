#include "serve/snapshot.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <vector>
#include <sstream>
#include <stdexcept>

#include "fault/checkpoint.h"
#include "nn/deep_mlp.h"
#include "nn/mlp.h"
#include "nn/serialize.h"
#include "sparse/ops.h"
#include "tensor/ops.h"
#include "util/error.h"
#include "util/kernel_context.h"
#include "util/rng.h"

namespace hetero::serve {

namespace {

std::string serialize_model(const nn::Model& model) {
  std::ostringstream out(std::ios::binary);
  nn::save_model(out, model);
  return std::move(out).str();
}

}  // namespace

ModelSnapshot::ModelSnapshot(const nn::Model& global, std::uint64_t version,
                             double vtime, const LshParams& lsh)
    : model_(global.clone()),
      version_(version),
      vtime_(vtime),
      blob_(serialize_model(*model_)),
      lsh_(lsh) {
  // Resolve per-layer weight/bias views once. Scoring reads these raw
  // pointers; the clone they point into lives exactly as long as we do.
  if (const auto* mlp = dynamic_cast<const nn::MlpModel*>(model_.get())) {
    weights_ = {&mlp->w1(), &mlp->w2()};
    biases_ = {mlp->b1(), mlp->b2()};
  } else if (const auto* deep =
                 dynamic_cast<const nn::DeepMlp*>(model_.get())) {
    const std::size_t layers = deep->info().num_layers();
    for (std::size_t l = 0; l < layers; ++l) {
      weights_.push_back(&deep->weights(l));
      biases_.emplace_back(deep->biases(l));
    }
  } else {
    throw std::invalid_argument(
        "ModelSnapshot: unknown model kind (no layer accessors)");
  }
  assert(weights_.size() == info().num_layers());
}

void ModelSnapshot::forward_hidden(const sparse::CsrMatrix& x,
                                   QueryScratch& s) const {
  const std::size_t hidden_layers = info().hidden.size();
  s.acts.resize(hidden_layers);
  const auto ctx = kernels::Context::serial();
  sparse::spmm(x, *weights_[0], s.acts[0], ctx);
  tensor::add_row_bias(s.acts[0], biases_[0]);
  tensor::relu(s.acts[0]);
  for (std::size_t l = 1; l < hidden_layers; ++l) {
    tensor::gemm(s.acts[l - 1], *weights_[l], s.acts[l], ctx);
    tensor::add_row_bias(s.acts[l], biases_[l]);
    tensor::relu(s.acts[l]);
  }
}

void ModelSnapshot::score_output(QueryScratch& s) const {
  tensor::gemm(s.acts.back(), *weights_.back(), s.logits,
               kernels::Context::serial());
  tensor::add_row_bias(s.logits, biases_.back());
}

void ModelSnapshot::topk_exact(const QueryScratch& s, std::size_t row,
                               std::size_t k,
                               std::vector<ScoredLabel>& out) const {
  select_topk(s.logits.row(row), k, out);
}

const ModelSnapshot::LshBundle& ModelSnapshot::lsh_bundle() const {
  std::call_once(lsh_once_, [this] {
    const tensor::Matrix& wout = *weights_.back();  // H x C
    const std::size_t h = wout.rows(), c = wout.cols();
    auto bundle = std::make_unique<LshBundle>(LshBundle{
        tensor::Matrix(),
        tensor::Matrix(),
        {},
        slide::LshIndex(
            [&] {
              // Fixed seed: identical hyperplanes for every snapshot, so
              // candidate sets depend only on the published weights.
              util::Rng rng(lsh_.seed);
              return slide::SimHash(h + 2, lsh_.bits, lsh_.tables, rng);
            }(),
            c),
        lsh_.max_candidates != 0 ? lsh_.max_candidates : c / 2});
    bundle->wout_t.resize(c, h, 0.0f);
    float* dst = bundle->wout_t.data();
    for (std::size_t i = 0; i < h; ++i) {
      const float* src = wout.row(i).data();
      for (std::size_t j = 0; j < c; ++j) dst[j * h + i] = src[j];
    }
    // Asymmetric MIPS transform (see LshBundle): equalize augmented item
    // norms at M so SimHash collisions rank by dot + bias.
    const auto& bias = biases_.back();
    double m2 = 0.0;
    std::vector<double> item_norm2(c);
    for (std::size_t j = 0; j < c; ++j) {
      double n2 = static_cast<double>(bias[j]) * bias[j];
      for (const float w : bundle->wout_t.row(j)) {
        n2 += static_cast<double>(w) * w;
      }
      item_norm2[j] = n2;
      m2 = std::max(m2, n2);
    }
    bundle->aug.resize(c, h + 2, 0.0f);
    for (std::size_t j = 0; j < c; ++j) {
      float* row = bundle->aug.row(j).data();
      const float* wj = bundle->wout_t.row(j).data();
      for (std::size_t i = 0; i < h; ++i) row[i] = wj[i];
      row[h] = bias[j];
      row[h + 1] =
          static_cast<float>(std::sqrt(std::max(0.0, m2 - item_norm2[j])));
    }
    // Head list: classes ranked by output-weight norm (descending; label id
    // breaks ties so the order is deterministic). These are always scored.
    const std::size_t head_size =
        std::min(c, lsh_.head != 0 ? lsh_.head : std::max<std::size_t>(1, c / 8));
    std::vector<std::uint32_t> order(c);
    for (std::size_t j = 0; j < c; ++j) order[j] = static_cast<std::uint32_t>(j);
    std::partial_sort(order.begin(), order.begin() + head_size, order.end(),
                      [&](std::uint32_t a, std::uint32_t b) {
                        const double na = item_norm2[a], nb = item_norm2[b];
                        if (na != nb) return na > nb;
                        return a < b;
                      });
    bundle->head.assign(order.begin(), order.begin() + head_size);
    bundle->index.rebuild(
        [&](std::size_t item) { return bundle->aug.row(item); });
    bundle_ = std::move(bundle);
    lsh_built_.store(true, std::memory_order_release);
  });
  return *bundle_;
}

float ModelSnapshot::candidate_score(std::span<const float> h,
                                     std::uint32_t label) const {
  return static_cast<float>(tensor::dot(h, bundle_->wout_t.row(label))) +
         biases_.back()[label];
}

bool ModelSnapshot::topk_lsh(std::size_t row, std::size_t k, QueryScratch& s,
                             std::vector<ScoredLabel>& out) const {
  const LshBundle& bundle = lsh_bundle();
  const auto h = s.acts.back().row(row);
  // Augmented MIPS query [h, 1, 0] matching the index's item transform.
  s.aug_query.assign(h.begin(), h.end());
  s.aug_query.push_back(1.0f);
  s.aug_query.push_back(0.0f);
  // Mandatory head candidates first, then query-dependent LSH collisions
  // (query dedups against the seeded head and caps at max_candidates).
  s.candidates.assign(bundle.head.begin(), bundle.head.end());
  bundle.index.query(s.aug_query, bundle.max_candidates, s.candidates);

  const std::size_t floor =
      std::max(k, lsh_.min_candidates != 0 ? lsh_.min_candidates : 4 * k);
  if (s.candidates.size() < floor) {
    // Thin candidate set (cold hash region / empty buckets): exact scan of
    // this row. Scored with the same dot kernel as the candidate path so
    // the fallback is self-consistent.
    const std::size_t c = info().num_classes;
    s.row_scores.resize(c);
    for (std::size_t j = 0; j < c; ++j) {
      s.row_scores[j] = candidate_score(h, static_cast<std::uint32_t>(j));
    }
    select_topk(s.row_scores, k, out);
    return false;
  }

  s.cand_scores.clear();
  s.cand_scores.reserve(s.candidates.size());
  for (const std::uint32_t label : s.candidates) {
    s.cand_scores.push_back({label, candidate_score(h, label)});
  }
  select_topk(s.cand_scores, k, out);
  return true;
}

std::shared_ptr<const ModelSnapshot> SnapshotStore::publish(
    const nn::Model& global, double vtime) {
  // The snapshot clone + serialization happens under the mutex, which only
  // stalls refresh() callers whose cached version is already stale and cold
  // current() readers — steady-state workers pass the version check and
  // keep serving the previous snapshot until the store below completes.
  std::lock_guard lock(mutex_);
  const std::uint64_t v = version_.load(std::memory_order_relaxed) + 1;
  auto snap = std::make_shared<const ModelSnapshot>(global, v, vtime, lsh_);
  current_ = snap;
  latest_vtime_.store(vtime, std::memory_order_release);
  // Bumped last: a version observed by refresh() has its snapshot in place.
  version_.store(v, std::memory_order_release);
  return snap;
}

std::shared_ptr<const ModelSnapshot> SnapshotStore::current() const {
  std::lock_guard lock(mutex_);
  return current_;
}

std::shared_ptr<const ModelSnapshot> SnapshotStore::refresh(
    std::shared_ptr<const ModelSnapshot> cached) const {
  if (cached && cached->version() == version_.load(std::memory_order_acquire)) {
    return cached;
  }
  std::lock_guard lock(mutex_);
  return current_;
}

std::shared_ptr<const ModelSnapshot> SnapshotStore::publish_from_file(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ParseError("snapshot", "cannot open " + path);
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic)) {
    throw ParseError("snapshot", "truncated header in " + path);
  }
  in.seekg(0);
  const std::string tag(magic, sizeof(magic));
  if (tag == "HGPU") {
    const auto model = nn::load_any_model(in);
    return publish(*model, 0.0);
  }
  if (tag == "HGCK") {
    in.close();
    const fault::TrainingCheckpoint ckpt = fault::load_checkpoint_file(path);
    std::istringstream blob(ckpt.global_blob, std::ios::binary);
    const auto model = nn::load_any_model(blob);
    return publish(*model, ckpt.vtime);
  }
  throw ParseError("snapshot",
                   "unrecognized magic in " + path + " (want HGPU or HGCK)");
}

void SnapshotStore::dump_current(const std::string& path) const {
  const auto snap = current();
  if (!snap) {
    throw std::runtime_error("SnapshotStore::dump_current: no snapshot");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(snap->blob().data(),
            static_cast<std::streamsize>(snap->blob().size()));
  if (!out) {
    throw std::runtime_error("SnapshotStore::dump_current: write failed: " +
                             path);
  }
}

}  // namespace hetero::serve
