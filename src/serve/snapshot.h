// Lock-free versioned model snapshots for online serving.
//
// Training publishes an immutable copy of the global model at every merge
// boundary (MultiGpuRuntime's publish hook); serving workers re-validate
// their cached snapshot with one atomic version load per wave and never
// block the merge path. A snapshot owns everything a query needs:
//
//   - a deep clone of the nn::Model at publication time,
//   - per-layer weight/bias views resolved once (no virtual dispatch or
//     dynamic_cast on the hot path),
//   - the model's serialized HGPU blob, eagerly captured so a snapshot can
//     be dumped to disk and is byte-comparable to the global-model blob
//     inside an HGCK checkpoint taken at the same boundary,
//   - a lazily built SLIDE bundle (transposed output layer + LshIndex),
//     constructed under std::call_once by the first LSH query against this
//     version and shared by all workers thereafter.
//
// Snapshots are immutable after construction. SnapshotStore hands them
// over with a version-gated fast path: workers re-validate their cached
// snapshot against an atomic version counter (wait-free, one relaxed-cost
// load per wave) and only touch the store's mutex on the wave right after
// a merge published a new version. (std::atomic<std::shared_ptr> would
// express this directly, but libstdc++ 12 unlocks its reader path with a
// relaxed fetch_sub, which ThreadSanitizer cannot form a happens-before
// edge from — the serve suite runs under the tsan preset, so the store
// avoids it by construction rather than by suppression.)
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "nn/model.h"
#include "serve/topk.h"
#include "slide/lsh_table.h"
#include "sparse/csr.h"
#include "tensor/matrix.h"

namespace hetero::serve {

/// SLIDE candidate-generation knobs. Defaults target >= 0.95 exact-vs-LSH
/// top-k recall on the synthetic extreme-classification workload while
/// scoring a fraction of the output layer.
struct LshParams {
  std::size_t bits = 8;            // K: signature bits per table
  std::size_t tables = 8;          // L: hash tables
  std::size_t head = 0;            // mandatory head candidates; 0 = C/8
  std::size_t max_candidates = 0;  // cap on scored neurons; 0 = C/2
  std::size_t min_candidates = 0;  // exact fallback below this; 0 = 4*k
  std::uint64_t seed = 0x51DEu;    // fixed: same planes every rebuild
};

/// Per-worker scratch for forward passes and top-k extraction. Reused
/// across waves so the steady state allocates nothing.
struct QueryScratch {
  std::vector<tensor::Matrix> acts;        // hidden activations, per layer
  tensor::Matrix logits;                   // wave x C (exact path)
  std::vector<float> aug_query;            // [h, 1, 0] MIPS query vector
  std::vector<std::uint32_t> candidates;   // LSH collision set
  std::vector<ScoredLabel> cand_scores;    // scored candidates
  std::vector<float> row_scores;           // dense scores (fallback path)
};

class ModelSnapshot {
 public:
  /// Deep-copies `global`. Throws std::invalid_argument for model kinds
  /// without per-layer weight accessors (MlpModel and DeepMlp are known).
  ModelSnapshot(const nn::Model& global, std::uint64_t version, double vtime,
                const LshParams& lsh);

  std::uint64_t version() const { return version_; }
  /// Virtual training time at publication (freshness reference point).
  double vtime() const { return vtime_; }
  const nn::ModelInfo& info() const { return model_->info(); }
  const nn::Model& model() const { return *model_; }

  /// Serialized HGPU bytes of the model, captured at construction.
  /// Byte-identical to the `global_blob` of a checkpoint taken at the same
  /// merge boundary, and loadable by nn::load_any_model.
  const std::string& blob() const { return blob_; }

  // --- scoring -------------------------------------------------------------

  /// Runs the hidden stack on a CSR wave of queries: acts.back() holds the
  /// final hidden activations (wave x H_last). Serial kernels — worker
  /// threads are the parallelism, and per-row independence keeps results
  /// identical no matter how requests are grouped into waves.
  void forward_hidden(const sparse::CsrMatrix& x, QueryScratch& s) const;

  /// Dense output layer over acts.back(): s.logits = acts * Wout + bias.
  void score_output(QueryScratch& s) const;

  /// Exact top-k of wave row `row` from s.logits (score_output first).
  void topk_exact(const QueryScratch& s, std::size_t row, std::size_t k,
                  std::vector<ScoredLabel>& out) const;

  /// SLIDE top-k of wave row `row` from acts.back() (forward_hidden first):
  /// queries the per-snapshot LshIndex for candidate neurons and scores
  /// only those. Returns true when the candidate set was used; false when
  /// it was thinner than max(k, min_candidates) and the row fell back to an
  /// exact scan. Both paths share the deterministic tie-break.
  bool topk_lsh(std::size_t row, std::size_t k, QueryScratch& s,
                std::vector<ScoredLabel>& out) const;

  /// True once some query has forced the SLIDE bundle build.
  bool lsh_built() const { return lsh_built_.load(std::memory_order_acquire); }

 private:
  // SimHash ranks by cosine, but serving top-k ranks by inner product plus
  // bias, which trained output layers dominate with per-class norms. The
  // index therefore hashes the asymmetric MIPS transform (Shrivastava &
  // Li): item c becomes [w_c, b_c, sqrt(M^2 - |w_c|^2 - b_c^2)] with
  // M = max_c sqrt(|w_c|^2 + b_c^2), a query becomes [h, 1, 0]. Every
  // augmented item has norm M, so collision probability is monotone in
  // dot(h, w_c) + b_c — exactly the serving score.
  // Candidate generation is hybrid. A static *head list* — the classes
  // with the largest output-weight norms, which dominate trained
  // extreme-classification top-k — is seeded as mandatory candidates, and
  // the LSH tables add query-dependent tail candidates on top (the
  // pre-seeded-`out` idiom of LshIndex::query).
  struct LshBundle {
    tensor::Matrix wout_t;  // C x H transpose of the output weights
    tensor::Matrix aug;     // C x (H+2) augmented vectors fed to the index
    std::vector<std::uint32_t> head;  // norm-ranked mandatory candidates
    slide::LshIndex index;
    std::size_t max_candidates = 0;
  };

  const LshBundle& lsh_bundle() const;
  float candidate_score(std::span<const float> h, std::uint32_t label) const;

  std::unique_ptr<nn::Model> model_;
  std::uint64_t version_ = 0;
  double vtime_ = 0.0;
  std::string blob_;
  LshParams lsh_;

  // Resolved layer views into *model_ (layers 0..L-2 hidden, L-1 output).
  std::vector<const tensor::Matrix*> weights_;
  std::vector<std::span<const float>> biases_;

  mutable std::once_flag lsh_once_;
  mutable std::unique_ptr<LshBundle> bundle_;
  mutable std::atomic<bool> lsh_built_{false};
};

/// Publication point between training and serving. publish() is called from
/// the training thread at merge boundaries; refresh() is the reader fast
/// path — wait-free while the cached snapshot is still the newest, which is
/// every wave except the first after a merge.
class SnapshotStore {
 public:
  explicit SnapshotStore(LshParams lsh = {}) : lsh_(lsh) {}

  /// Clones `global` into a new immutable snapshot (version = previous + 1)
  /// and swaps it in. Returns the published snapshot. The version counter
  /// is bumped last, so a version observed by refresh() always has its
  /// snapshot already in place.
  std::shared_ptr<const ModelSnapshot> publish(const nn::Model& global,
                                               double vtime);

  /// Latest published snapshot, or nullptr before the first publish.
  /// Copies the pointer under a briefly-held mutex; serving workers use
  /// refresh() instead and hit this path only when the version moved.
  std::shared_ptr<const ModelSnapshot> current() const;

  /// Returns `cached` unchanged while it is still the newest published
  /// snapshot (a single atomic version read, no locking); otherwise copies
  /// the newer snapshot under the mutex.
  std::shared_ptr<const ModelSnapshot> refresh(
      std::shared_ptr<const ModelSnapshot> cached) const;

  bool has_snapshot() const { return version() != 0; }
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  /// Latest virtual training time reported by the publisher. Responses
  /// report `latest_vtime() - snapshot->vtime()` as the freshness lag.
  double latest_vtime() const {
    return latest_vtime_.load(std::memory_order_acquire);
  }

  /// Loads a model from `path` and publishes it. Accepts either an HGPU
  /// model blob (e.g. a dump_current() file) or an HGCK training
  /// checkpoint, sniffed by magic; a checkpoint also restores the virtual
  /// time. Throws hetero::ParseError on malformed input.
  std::shared_ptr<const ModelSnapshot> publish_from_file(
      const std::string& path);

  /// Writes the current snapshot's HGPU blob to `path` (loadable by
  /// publish_from_file and nn::load_any_model_file). Throws
  /// std::runtime_error if nothing has been published or on I/O failure.
  void dump_current(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const ModelSnapshot> current_;  // guarded by mutex_
  std::atomic<std::uint64_t> version_{0};
  std::atomic<double> latest_vtime_{0.0};
  LshParams lsh_;
};

}  // namespace hetero::serve
