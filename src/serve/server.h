// Concurrent online-inference server.
//
// N worker threads (util::ThreadPool) pull sparse queries from a bounded
// MPMC queue and serve them against the SnapshotStore's current snapshot.
// Three policies from DESIGN.md §12:
//
//   Adaptive micro-batching — a worker that picks up a request keeps
//   collecting queued requests into one wave (a single CSR spmm forward)
//   until either max_batch requests are gathered or an adaptive window
//   expires. The window tracks the arrival rate (EWMA of interarrival
//   times, the serving analogue of the Algorithm-1 batch scaler: size the
//   batch to what the traffic actually delivers) and is clamped to half
//   the latency budget so batching can never consume the whole budget.
//   When the backlog already covers a full wave the window is zero.
//
//   Backpressure — once the queue holds queue_cap requests, submissions
//   are shed synchronously: the future resolves immediately with
//   shed=true and a retry_after_us hint, and the shed is counted. Memory
//   stays bounded under overload.
//
//   Hot-swap — each wave re-reads store.current(); a merge boundary
//   publishing a new version is picked up by the next wave with no pause.
//   Responses carry the snapshot version and freshness lag so clients can
//   see how stale their answer is.
//
// Determinism: per-request results are bit-stable regardless of worker
// count or how requests are grouped into waves, because every kernel on
// the serving path computes each output row from its own input row only,
// and top-k tie-breaking is by label id (serve/topk.h).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/snapshot.h"
#include "sparse/csr.h"
#include "util/thread_pool.h"

namespace hetero::serve {

struct ServerConfig {
  std::size_t workers = 2;
  std::size_t max_batch = 8;           // wave size cap
  std::size_t queue_cap = 1024;        // backpressure threshold
  std::uint64_t latency_budget_us = 2000;
  std::size_t topk = 5;                // default k (Request::k = 0)
  bool use_lsh = false;                // SLIDE candidate path
};

/// One sparse query: (feature, value) pairs, column-space = num_features.
struct Request {
  std::vector<sparse::Entry> features;
  std::size_t k = 0;  // 0 = ServerConfig::topk
};

struct Response {
  std::vector<ScoredLabel> topk;

  // Provenance / freshness.
  std::uint64_t snapshot_version = 0;
  std::uint64_t version_lag = 0;   // store version - serving version
  double freshness_lag = 0.0;      // latest vtime - serving snapshot vtime

  // Path taken.
  bool lsh_path = false;      // scored LSH candidates only
  bool lsh_fallback = false;  // LSH mode but candidates were thin

  // Backpressure.
  bool shed = false;
  std::uint64_t retry_after_us = 0;

  // Timing/shape (zero for shed responses).
  std::size_t wave_size = 0;
  std::uint64_t queue_us = 0;    // submit -> wave start
  std::uint64_t service_us = 0;  // submit -> response ready
};

struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t waves = 0;
  std::uint64_t exact_rows = 0;
  std::uint64_t lsh_rows = 0;
  std::uint64_t lsh_fallback_rows = 0;
};

class Server {
 public:
  /// Starts cfg.workers serving threads immediately. The store must hold a
  /// snapshot already (publish the initial model, or publish_from_file,
  /// before constructing); throws std::invalid_argument otherwise, or on a
  /// zero-sized config.
  Server(SnapshotStore& store, ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  using Clock = std::chrono::steady_clock;

  /// Enqueues a query. Throws hetero::ParseError when a feature column is
  /// out of range for the served model. Under backpressure the returned
  /// future is already resolved with shed=true.
  std::future<Response> submit(Request req);

  /// Drains the queue, then stops and joins the workers. Idempotent;
  /// called by the destructor. submit() after stop() sheds.
  void stop();

  ServerStats stats() const;
  const ServerConfig& config() const { return cfg_; }

 private:
  struct Pending {
    Request req;
    std::promise<Response> promise;
    Clock::time_point enqueued;
  };

  void worker_loop();
  std::chrono::microseconds wave_window(std::size_t backlog) const;

  SnapshotStore& store_;
  ServerConfig cfg_;
  std::size_t num_features_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  double ewma_interarrival_us_ = 0.0;  // guarded by mutex_
  Clock::time_point last_arrival_;     // guarded by mutex_
  bool saw_arrival_ = false;           // guarded by mutex_

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> waves_{0};
  std::atomic<std::uint64_t> exact_rows_{0};
  std::atomic<std::uint64_t> lsh_rows_{0};
  std::atomic<std::uint64_t> lsh_fallback_rows_{0};

  std::vector<std::future<void>> worker_done_;
  std::unique_ptr<util::ThreadPool> pool_;  // last member: joins first
};

}  // namespace hetero::serve
