// Deterministic top-k label extraction for the serving path.
//
// Serving results must be bit-stable across worker counts, wave groupings,
// and SIMD ISAs (DESIGN.md §12), so ties are never left to container or
// scan order: the selection order is *score descending, label id ascending
// on exact float equality* — the same rule in the exact full-scan path and
// the LSH candidate path. Two runs that produce the same logits therefore
// produce the same top-k byte for byte.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hetero::serve {

/// One ranked output label.
struct ScoredLabel {
  std::uint32_t label = 0;
  float score = 0.0f;

  bool operator==(const ScoredLabel&) const = default;
};

/// Strict ranking order: higher score first, lower label id on equal score.
inline bool ranks_before(const ScoredLabel& a, const ScoredLabel& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.label < b.label;
}

/// Selects the top `k` classes of a dense score vector (label = index) into
/// `out` (cleared first), sorted by ranks_before. O(C log k).
void select_topk(std::span<const float> scores, std::size_t k,
                 std::vector<ScoredLabel>& out);

/// Same selection over an explicit candidate list (LSH path). Duplicate
/// labels must not occur (the LSH index deduplicates); the result is
/// independent of the candidates' input order.
void select_topk(std::span<const ScoredLabel> candidates, std::size_t k,
                 std::vector<ScoredLabel>& out);

}  // namespace hetero::serve
