#include "serve/server.h"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/error.h"

namespace hetero::serve {

namespace {

std::uint64_t elapsed_us(Server::Clock::time_point from,
                         Server::Clock::time_point to);

}  // namespace

Server::Server(SnapshotStore& store, ServerConfig cfg)
    : store_(store), cfg_(cfg) {
  if (cfg_.workers == 0 || cfg_.max_batch == 0 || cfg_.queue_cap == 0 ||
      cfg_.topk == 0) {
    throw std::invalid_argument(
        "serve::Server: workers, max_batch, queue_cap, topk must be > 0");
  }
  const auto snap = store_.current();
  if (!snap) {
    throw std::invalid_argument(
        "serve::Server: store holds no snapshot; publish the initial model "
        "(or publish_from_file) before starting the server");
  }
  num_features_ = snap->info().num_features;
  // Neutral prior: a full wave spread evenly over half the latency budget.
  ewma_interarrival_us_ = static_cast<double>(cfg_.latency_budget_us) / 2.0 /
                          static_cast<double>(cfg_.max_batch);
  pool_ = std::make_unique<util::ThreadPool>(cfg_.workers);
  worker_done_.reserve(cfg_.workers);
  for (std::size_t i = 0; i < cfg_.workers; ++i) {
    worker_done_.push_back(pool_->submit([this] { worker_loop(); }));
  }
}

Server::~Server() { stop(); }

std::future<Response> Server::submit(Request req) {
  for (const auto& e : req.features) {
    if (e.col >= num_features_) {
      throw ParseError("serve-request",
                       "feature column " + std::to_string(e.col) +
                           " out of range (num_features=" +
                           std::to_string(num_features_) + ")");
    }
  }
  std::promise<Response> promise;
  std::future<Response> fut = promise.get_future();
  const auto now = Clock::now();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stop_ || queue_.size() >= cfg_.queue_cap) {
      lock.unlock();
      shed_.fetch_add(1, std::memory_order_relaxed);
      Response r;
      r.shed = true;
      r.retry_after_us = cfg_.latency_budget_us;
      promise.set_value(std::move(r));
      return fut;
    }
    if (saw_arrival_) {
      const auto dt = static_cast<double>(elapsed_us(last_arrival_, now));
      ewma_interarrival_us_ = 0.8 * ewma_interarrival_us_ + 0.2 * dt;
    }
    last_arrival_ = now;
    saw_arrival_ = true;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    queue_.push_back(Pending{std::move(req), std::move(promise), now});
  }
  cv_.notify_one();
  return fut;
}

std::chrono::microseconds Server::wave_window(std::size_t backlog) const {
  // Caller holds mutex_. A backlog already covering a wave means batching
  // costs nothing to wait for — go immediately.
  if (backlog >= cfg_.max_batch) return std::chrono::microseconds(0);
  const double cap = static_cast<double>(cfg_.latency_budget_us) / 2.0;
  const double want = ewma_interarrival_us_ *
                      static_cast<double>(cfg_.max_batch - backlog);
  return std::chrono::microseconds(
      static_cast<std::int64_t>(std::min(cap, want)));
}

void Server::worker_loop() {
  QueryScratch scratch;
  std::vector<Pending> wave;
  std::shared_ptr<const ModelSnapshot> snap;
  for (;;) {
    wave.clear();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and queue drained
      const auto window = wave_window(queue_.size());
      wave.push_back(std::move(queue_.front()));
      queue_.pop_front();
      const auto deadline = Clock::now() + window;
      while (wave.size() < cfg_.max_batch) {
        if (!queue_.empty()) {
          wave.push_back(std::move(queue_.front()));
          queue_.pop_front();
          continue;
        }
        if (stop_) break;
        if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) break;
        if (Clock::now() >= deadline) break;
      }
    }

    // Counted at formation, not completion: anyone who has observed all of
    // a wave's responses must also observe the wave in stats().
    waves_.fetch_add(1, std::memory_order_relaxed);
    const auto wave_start = Clock::now();
    // Re-validated per wave: this is the hot-swap point. Wait-free while
    // the cached snapshot is still newest; the store never goes back to
    // empty, so snap is non-null.
    snap = store_.refresh(std::move(snap));
    sparse::CsrBuilder builder(num_features_);
    for (const auto& p : wave) {
      builder.add_row(std::span<const sparse::Entry>(p.req.features));
    }
    const sparse::CsrMatrix x = builder.build();
    snap->forward_hidden(x, scratch);
    if (!cfg_.use_lsh) snap->score_output(scratch);

    const std::uint64_t latest_version = store_.version();
    const double latest_vtime = store_.latest_vtime();
    for (std::size_t i = 0; i < wave.size(); ++i) {
      Pending& p = wave[i];
      const std::size_t k = p.req.k != 0 ? p.req.k : cfg_.topk;
      Response r;
      if (cfg_.use_lsh) {
        const bool used = snap->topk_lsh(i, k, scratch, r.topk);
        r.lsh_path = used;
        r.lsh_fallback = !used;
        (used ? lsh_rows_ : lsh_fallback_rows_)
            .fetch_add(1, std::memory_order_relaxed);
      } else {
        snap->topk_exact(scratch, i, k, r.topk);
        exact_rows_.fetch_add(1, std::memory_order_relaxed);
      }
      r.snapshot_version = snap->version();
      r.version_lag = latest_version - snap->version();
      r.freshness_lag = latest_vtime - snap->vtime();
      r.wave_size = wave.size();
      r.queue_us = elapsed_us(p.enqueued, wave_start);
      r.service_us = elapsed_us(p.enqueued, Clock::now());
      served_.fetch_add(1, std::memory_order_relaxed);
      p.promise.set_value(std::move(r));
    }
  }
}

void Server::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& f : worker_done_) {
    if (f.valid()) f.get();
  }
  worker_done_.clear();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.waves = waves_.load(std::memory_order_relaxed);
  s.exact_rows = exact_rows_.load(std::memory_order_relaxed);
  s.lsh_rows = lsh_rows_.load(std::memory_order_relaxed);
  s.lsh_fallback_rows = lsh_fallback_rows_.load(std::memory_order_relaxed);
  return s;
}

namespace {

std::uint64_t elapsed_us(Server::Clock::time_point from,
                         Server::Clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count());
}

}  // namespace

}  // namespace hetero::serve
