// Deterministic fault plans: a seeded schedule of virtual-time fault events
// against the simulated devices.
//
// A plan is either parsed from a compact spec string (CLI `--fault-plan`) or
// generated pseudo-randomly from a seed; either way the same plan and the
// same training seed reproduce bit-identical runs. Events are applied to the
// runtime by fault::FaultInjector.
//
// Spec grammar (semicolon-separated events):
//   kind@time[+duration][xfactor]:gpuN
//     kind     slow | stall | crash | join | oom
//     time     virtual seconds of the event start
//     duration window length (slow/stall/oom); omitted => open-ended for
//              oom, instantaneous kinds (crash/join) never take one
//     factor   slow: throughput multiplier in (0,1]; oom: fraction of
//              device memory left usable in (0,1)
//   e.g. "slow@0.5+1.0x0.4:gpu0;crash@2.5:gpu1;join@4.0:gpu1"
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hetero::fault {

enum class FaultKind {
  kSlowdown,  // transient throughput degradation window
  kStall,     // device unavailable window
  kCrash,     // replica permanently lost (until a later join)
  kJoin,      // replica (re-)enters at the next merge boundary
  kOom,       // memory-cap window forcing simulated OOM pressure
};

std::string to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kSlowdown;
  std::size_t device = 0;
  double time = 0.0;
  /// Window length for slow/stall/oom; <= 0 means open-ended (oom) and is
  /// meaningless for crash/join.
  double duration = 0.0;
  /// Slowdown: throughput multiplier. Oom: usable-memory fraction (ignored
  /// when mem_bytes is set).
  double factor = 1.0;
  /// Oom only: absolute usable-memory cap in bytes (overrides factor).
  std::size_t mem_bytes = 0;
};

/// Knobs for FaultPlan::random.
struct RandomFaultConfig {
  double horizon = 10.0;        // events drawn in [0, horizon)
  double slowdown_rate = 0.2;   // expected slowdowns per device per horizon
  double stall_rate = 0.1;      // expected stalls per device per horizon
  double crash_fraction = 0.0;  // fraction of devices (never device 0)
  bool rejoin = false;          // crashed devices rejoin later
  double mean_outage = 2.0;     // mean crash->join gap
  double mean_duration = 0.5;   // mean slowdown/stall window length
  double slowdown_factor = 0.5; // throughput multiplier for slowdowns
};

struct FaultPlan {
  std::vector<FaultEvent> events;  // sorted by (time, device, kind)

  bool empty() const { return events.empty(); }

  /// Parses the spec grammar above; throws hetero::ParseError with a
  /// position hint on malformed input. Events are sorted by time.
  static FaultPlan parse(const std::string& spec);

  /// Seeded pseudo-random plan over `num_devices` devices. Device 0 is
  /// never crashed so at least one replica always survives.
  static FaultPlan random(std::size_t num_devices,
                          const RandomFaultConfig& cfg, std::uint64_t seed);

  /// Renders the plan back into the spec grammar (round-trips through
  /// parse(): numeric fields printed at max precision).
  std::string to_string() const;

  /// Checks device indices, window parameters, and crash/join ordering by
  /// replaying per-device alive state (crash-on-dead or join-on-alive is
  /// invalid). Throws hetero::ParseError.
  void validate(std::size_t num_devices) const;
};

}  // namespace hetero::fault
