// Deterministic fault plans: a seeded schedule of virtual-time fault events
// against the simulated devices.
//
// A plan is either parsed from a compact spec string (CLI `--fault-plan`) or
// generated pseudo-randomly from a seed; either way the same plan and the
// same training seed reproduce bit-identical runs. Events are applied to the
// runtime by fault::FaultInjector.
//
// Spec grammar (semicolon-separated events):
//   kind@time[+duration][xfactor]:gpuN | kind@time[+duration][xfactor]:nodeN
//     kind     slow | stall | crash | join | oom | partition
//     time     virtual seconds of the event start
//     duration window length (slow/stall/oom: device window; partition:
//              outage length before the node heals); omitted => open-ended
//              for oom, instantaneous kinds (crash/join) never take one
//     factor   slow: throughput multiplier in (0,1]; oom: fraction of
//              device memory left usable in (0,1)
//   A nodeN target applies the event to every replica the topology places
//   on that node (whole-node crash/rejoin flips the full node's membership
//   at the next merge boundary). `partition` is node-level only: the node
//   drops out of the merge group at `time` and rejoins at `time+duration`,
//   under the same survivor-renormalization contract as per-device crashes.
//   e.g. "slow@0.5+1.0x0.4:gpu0;crash@2.5:node1;partition@4.0+1.5:node0"
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/topology.h"

namespace hetero::fault {

enum class FaultKind {
  kSlowdown,   // transient throughput degradation window
  kStall,      // device unavailable window
  kCrash,      // replica permanently lost (until a later join)
  kJoin,       // replica (re-)enters at the next merge boundary
  kOom,        // memory-cap window forcing simulated OOM pressure
  kPartition,  // node-level: network partition for +duration, then heal
};

std::string to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kSlowdown;
  std::size_t device = 0;
  double time = 0.0;
  /// Window length for slow/stall/oom; <= 0 means open-ended (oom) and is
  /// meaningless for crash/join.
  double duration = 0.0;
  /// Slowdown: throughput multiplier. Oom: usable-memory fraction (ignored
  /// when mem_bytes is set).
  double factor = 1.0;
  /// Oom only: absolute usable-memory cap in bytes (overrides factor).
  std::size_t mem_bytes = 0;
  /// When true, `device` names a node index and the event applies to every
  /// replica the topology places on that node.
  bool node_target = false;
};

/// Knobs for FaultPlan::random.
struct RandomFaultConfig {
  double horizon = 10.0;        // events drawn in [0, horizon)
  double slowdown_rate = 0.2;   // expected slowdowns per device per horizon
  double stall_rate = 0.1;      // expected stalls per device per horizon
  double crash_fraction = 0.0;  // fraction of devices (never device 0)
  bool rejoin = false;          // crashed devices rejoin later
  double mean_outage = 2.0;     // mean crash->join gap
  double mean_duration = 0.5;   // mean slowdown/stall window length
  double slowdown_factor = 0.5; // throughput multiplier for slowdowns
};

struct FaultPlan {
  std::vector<FaultEvent> events;  // sorted by (time, device, kind)

  bool empty() const { return events.empty(); }

  /// Parses the spec grammar above; throws hetero::ParseError with a
  /// position hint on malformed input. Events are sorted by time.
  static FaultPlan parse(const std::string& spec);

  /// Seeded pseudo-random plan over `num_devices` devices. Device 0 is
  /// never crashed so at least one replica always survives.
  static FaultPlan random(std::size_t num_devices,
                          const RandomFaultConfig& cfg, std::uint64_t seed);

  /// Renders the plan back into the spec grammar (round-trips through
  /// parse(): numeric fields printed at max precision).
  std::string to_string() const;

  /// Checks device indices, window parameters, and crash/join ordering by
  /// replaying per-device alive state (crash-on-dead or join-on-alive is
  /// invalid). Throws hetero::ParseError. Node-level events are validated
  /// against a single-node topology holding all `num_devices` replicas.
  void validate(std::size_t num_devices) const;

  /// Topology-aware validation: node indices are range-checked against
  /// `topo.num_nodes` and node events are expanded before the alive-state
  /// replay (a whole-node crash kills every replica the node owns, so a
  /// later per-device crash on one of them is invalid). Throws
  /// hetero::ParseError.
  void validate(const sim::Topology& topo) const;

  /// Device-level plan with every node event expanded over the topology:
  /// slow/stall/oom fan out to one window per owned replica, crash/join
  /// flip every owned replica, and partition becomes crash@time +
  /// join@time+duration per replica. The result contains no node_target
  /// events and is sorted by (time, device).
  FaultPlan expand(const sim::Topology& topo) const;
};

}  // namespace hetero::fault
