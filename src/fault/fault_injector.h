// Applies a FaultPlan to a runtime: window faults (slowdown/stall/oom) are
// armed directly on the virtual devices, membership faults (crash/join) are
// registered with the runtime's elastic-membership schedule so they take
// effect at merge boundaries.
#pragma once

#include "core/runtime.h"
#include "fault/fault_plan.h"

namespace hetero::fault {

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Validates the plan against the runtime's device count and arms every
  /// event. Counters land in runtime.fault_stats(). When re-arming on a
  /// checkpoint-restored runtime, pass the checkpoint's virtual time as
  /// `applied_until`: membership events (crash/join) at or before it are
  /// already reflected in the restored alive flags and are skipped; window
  /// faults are always re-armed (they are stateless lookups by start time).
  void arm(core::MultiGpuRuntime& runtime, double applied_until = -1.0) const;

 private:
  FaultPlan plan_;
};

}  // namespace hetero::fault
